// Experiment E10 — safety/liveness under adversarial sweeps (§5.2-5.3,
// Theorems 5.1-5.3).
//
// Runs generated deals against the full adversary gallery over many seeds
// and reports, per adversary: commit rate, abort rate, safety violations
// for compliant parties (MUST be zero), weak-liveness violations (MUST be
// zero), and the run outcome mix. This is the empirical counterpart of the
// paper's correctness theorems.
//
// Both protocols run through the same ProtocolDriver loop; the only
// protocol-specific pieces left are the adversary gallery itself and how
// the outcome mix is bucketed (timelock can end mixed, the CBC's failure
// mode is non-atomicity).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/adversaries.h"
#include "core/checker.h"

using namespace xdeal;
using namespace xdeal::bench;

namespace {

struct AdversaryStats {
  std::string name;
  int runs = 0;
  int commits = 0;
  int aborts = 0;
  int mixed = 0;          // timelock: mixed settle; CBC: non-atomic
  int safety_violations = 0;
  int liveness_violations = 0;
};

std::unique_ptr<TimelockParty> MakeTimelock(int kind) {
  switch (kind) {
    case 0: return nullptr;  // compliant baseline
    case 1: return std::make_unique<CrashingTimelockParty>(TlPhase::kEscrow);
    case 2: return std::make_unique<CrashingTimelockParty>(TlPhase::kTransfer);
    case 3: return std::make_unique<VoteWithholdingParty>();
    case 4: return std::make_unique<NonForwardingParty>();
    case 5: return std::make_unique<OfflineAfterVoteParty>();
    case 6: return std::make_unique<DoubleSpendingParty>();
    case 7: return std::make_unique<ShortTransferParty>();
    case 8: return std::make_unique<LateVotingParty>(100000);
    default: return nullptr;
  }
}

const char* kTimelockNames[] = {
    "compliant",       "crash@escrow",   "crash@transfer",
    "vote-withholder", "non-forwarder",  "offline-after-vote",
    "double-spender",  "short-transfer", "late-voter",
};

std::unique_ptr<CbcParty> MakeCbc(int kind) {
  switch (kind) {
    case 0: return nullptr;
    case 1: return std::make_unique<CbcCrashBeforeVoteParty>();
    case 2: return std::make_unique<CbcAlwaysAbortParty>();
    case 3: return std::make_unique<CbcRescindRacerParty>();
    case 4: return std::make_unique<CbcFakeProofParty>();
    default: return nullptr;
  }
}

const char* kCbcNames[] = {
    "compliant", "crash-before-vote", "always-abort", "rescind-racer",
    "fake-proof",
};

AdversaryStats RunGallery(Protocol protocol, int kind, const char* name,
                          int num_seeds, GenParams gen) {
  AdversaryStats stats;
  stats.name = name;
  for (int seed = 1; seed <= num_seeds; ++seed) {
    EnvConfig config;
    config.seed = seed;
    DealEnv env(std::move(config));
    gen.seed = seed * (protocol == Protocol::kTimelock ? 31 : 57) + kind;
    DealSpec spec = GenerateRandomDeal(&env, gen);
    uint32_t deviant = spec.parties[seed % spec.parties.size()].v;

    DealTimings timings = DealTimings::DefaultsFor(protocol);
    timings.delta = 120;
    std::unique_ptr<CbcService> service;
    std::unique_ptr<ProtocolDriver> driver;
    if (protocol == Protocol::kCbc) {
      CbcService::Options service_options;
      service_options.validator_seed = "adv-bench";
      service = std::make_unique<CbcService>(&env.world(), service_options);
      driver = std::make_unique<CbcDriver>(service.get());
    } else {
      driver = std::make_unique<TimelockDriver>();
    }

    SingleDeviantFactory factory(
        deviant, kind > 0 ? [kind] { return MakeTimelock(kind); }
                          : SingleDeviantFactory::TimelockMaker(nullptr),
        kind > 0 ? [kind] { return MakeCbc(kind); }
                 : SingleDeviantFactory::CbcMaker(nullptr));
    std::unique_ptr<DealRuntime> runtime =
        driver->CreateDeal(&env.world(), spec, timings, &factory);
    if (!runtime->Deploy().ok()) continue;
    DealChecker checker(&env.world(), spec, runtime->escrow_contracts());
    checker.CaptureInitial();
    env.world().scheduler().Run();
    DealResult result = runtime->Collect();

    ++stats.runs;
    if (protocol == Protocol::kTimelock) {
      if (result.released_contracts == spec.NumAssets()) ++stats.commits;
      if (result.refunded_contracts == spec.NumAssets()) ++stats.aborts;
      if (result.released_contracts > 0 && result.refunded_contracts > 0) {
        ++stats.mixed;
      }
    } else {
      if (result.committed) ++stats.commits;
      if (result.aborted) ++stats.aborts;
      if (!result.atomic) ++stats.mixed;
    }
    for (PartyId p : spec.parties) {
      if (kind > 0 && p.v == deviant) continue;
      PartyVerdict v = checker.Evaluate(p);
      if (!v.property1) ++stats.safety_violations;
      if (!v.weak_liveness) ++stats.liveness_violations;
    }
  }
  return stats;
}

void PrintStats(const std::vector<AdversaryStats>& stats, bool cbc) {
  std::printf("%-20s %6s %8s %8s %7s %14s %16s\n", "adversary", "runs",
              "commits", "aborts", cbc ? "nonat" : "mixed",
              "safety_violns", "liveness_violns");
  for (const AdversaryStats& s : stats) {
    std::printf("%-20s %6d %8d %8d %7d %14d %16d\n", s.name.c_str(), s.runs,
                s.commits, s.aborts, s.mixed, s.safety_violations,
                s.liveness_violations);
  }
}

}  // namespace

int main() {
  const int kSeeds = 20;
  GenParams gen;
  gen.n_parties = 4;
  gen.m_assets = 3;
  gen.t_transfers = 8;
  gen.num_chains = 2;

  std::printf("=== Timelock protocol, 4-party deals, %d seeds per "
              "adversary, deviant rotates over parties ===\n", kSeeds);
  std::vector<AdversaryStats> tl_stats;
  for (int kind = 0; kind <= 8; ++kind) {
    tl_stats.push_back(RunGallery(Protocol::kTimelock, kind,
                                  kTimelockNames[kind], kSeeds, gen));
  }
  PrintStats(tl_stats, false);

  std::printf("\n=== CBC protocol, same workloads ===\n");
  std::vector<AdversaryStats> cbc_stats;
  for (int kind = 0; kind <= 4; ++kind) {
    cbc_stats.push_back(
        RunGallery(Protocol::kCbc, kind, kCbcNames[kind], kSeeds, gen));
  }
  PrintStats(cbc_stats, true);

  std::printf("\nexpected: zero safety and liveness violations everywhere "
              "(Theorems 5.1-5.2, §6.1); compliant rows commit 100%%; "
              "disruptive adversaries abort; 'nonat' (non-atomic CBC "
              "outcomes) must be zero.\n");
  return 0;
}
