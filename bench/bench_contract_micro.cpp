// Experiment E11 — contract-operation microbenchmarks (google-benchmark).
//
// Wall-clock costs of the primitive operations the paper's gas analysis
// counts (§7.1): token transfer, escrow deposit (4 writes), tentative
// transfer (2 writes), path-signature vote verification (|p| signature
// checks), and CBC certificate verification (2f+1 checks). Gas counts are
// asserted in the test suite; this binary shows where simulated wall time
// actually goes (signature verification dominates, as the paper's gas
// schedule predicts).

#include <benchmark/benchmark.h>

#include "cbc/validators.h"
#include "chain/world.h"
#include "contracts/deal_info.h"
#include "contracts/timelock_escrow.h"

namespace xdeal {
namespace {

struct MicroWorld {
  MicroWorld() {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    for (int i = 0; i < 16; ++i) {
      parties.push_back(world->RegisterParty("p" + std::to_string(i)));
    }
    chain = world->CreateChain("c", 10);
    token_id = chain->Deploy(
        std::make_unique<FungibleToken>("TOK", parties[0]));
    token = chain->As<FungibleToken>(token_id);
    for (PartyId p : parties) token->Mint(Holder::Party(p), 1u << 30);
  }

  CallContext Ctx(PartyId sender) {
    gas = std::make_unique<GasMeter>();
    CallContext ctx;
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = sender;
    ctx.now = 0;
    ctx.gas = gas.get();
    return ctx;
  }

  std::unique_ptr<World> world;
  std::vector<PartyId> parties;
  Blockchain* chain = nullptr;
  ContractId token_id;
  FungibleToken* token = nullptr;
  std::unique_ptr<GasMeter> gas;
};

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
}
BENCHMARK(BM_Sha256_1KiB);

void BM_SchnorrSign(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed("bench");
  Bytes msg = ToBytes("a commit vote");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed("bench");
  Bytes msg = ToBytes("a commit vote");
  Signature sig = kp.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Verify(kp.public_key(), msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_TokenTransfer(benchmark::State& state) {
  MicroWorld w;
  CallContext ctx = w.Ctx(w.parties[0]);
  Holder a = Holder::Party(w.parties[0]);
  Holder b = Holder::Party(w.parties[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.token->Transfer(ctx, a, a, b, 1));
  }
}
BENCHMARK(BM_TokenTransfer);

void BM_EscrowDeposit(benchmark::State& state) {
  // Full escrow call (approve + 4-write deposit) through the contract.
  MicroWorld w;
  for (auto _ : state) {
    state.PauseTiming();
    auto escrow = std::make_unique<TimelockEscrowContract>(
        AssetKind::kFungible, w.token_id);
    ContractId escrow_id = w.chain->Deploy(std::move(escrow));
    CallContext setup = w.Ctx(w.parties[0]);
    w.token->Approve(setup, Holder::Party(w.parties[0]),
                     Holder::Party(w.parties[0]),
                     Holder::OfContract(escrow_id), 100);
    DealInfo info;
    info.deal_id = MakeDealId("micro", state.iterations());
    info.plist = {w.parties[0], w.parties[1]};
    info.t0 = 1000;
    info.delta = 100;
    ByteWriter args;
    args.Raw(info.deal_id.bytes.data(), 32);
    args.U32(2);
    args.U32(w.parties[0].v);
    args.U32(w.parties[1].v);
    args.U64(info.t0);
    args.U64(info.delta);
    args.U64(100);
    CallContext ctx = w.Ctx(w.parties[0]);
    ByteReader reader(args.bytes());
    state.ResumeTiming();

    benchmark::DoNotOptimize(
        w.chain->contract(escrow_id)->Invoke(ctx, "escrow", reader));
  }
}
BENCHMARK(BM_EscrowDeposit);

void BM_PathVoteVerify(benchmark::State& state) {
  // Contract-side verification of a path-signature vote of length |p|.
  const size_t path_len = static_cast<size_t>(state.range(0));
  MicroWorld w;
  DealInfo info;
  info.deal_id = MakeDealId("micro-vote", 1);
  for (size_t i = 0; i < 16; ++i) info.plist.push_back(w.parties[i]);
  info.t0 = 0;
  info.delta = 1u << 20;

  PathVote vote;
  vote.voter = w.parties[0];
  for (uint32_t d = 0; d < path_len; ++d) {
    vote.path.emplace_back(
        w.parties[d],
        w.world->KeyPairOf(w.parties[d])
            .Sign(TimelockVoteMessage(info.deal_id, vote.voter, d)));
  }

  for (auto _ : state) {
    // Verify all |p| signatures the way the contract does.
    bool ok = true;
    for (uint32_t d = 0; d < vote.path.size(); ++d) {
      const auto& [signer, sig] = vote.path[d];
      ok = ok && Verify(w.world->keys().PublicKeyOf(signer).value(),
                        TimelockVoteMessage(info.deal_id, vote.voter, d),
                        sig);
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetLabel(std::to_string(path_len) + " sigs = " +
                 std::to_string(path_len * kGasSigVerify) + " gas");
}
BENCHMARK(BM_PathVoteVerify)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_CbcProofVerify(benchmark::State& state) {
  // Certificate verification for f in {1, 2, 4, 7}: 2f+1 signatures.
  const size_t f = static_cast<size_t>(state.range(0));
  ValidatorSet validators =
      ValidatorSet::Create(f, "micro-" + std::to_string(f));
  Hash256 deal = MakeDealId("micro-cbc", f);
  Hash256 h = Sha256Digest("start");
  StatusCertificate cert;
  cert.deal_id = deal;
  cert.start_hash = h;
  cert.outcome = kDealCommitted;
  cert.epoch = 0;
  // Honest quorum signature set via the duplicate-free path.
  CbcProof proof;
  proof.status = cert;
  {
    // Sign with the real validator keys (use IssueByzantineStatus-like
    // manual quorum: reuse ValidatorSet by issuing over a log-free message).
    Bytes message =
        StatusCertificate::Message(deal, h, kDealCommitted, 0);
    // Grab quorum signatures by reconstructing the key pairs.
    for (size_t i = 0; i < 2 * f + 1; ++i) {
      KeyPair kp = KeyPair::FromSeed("micro-" + std::to_string(f) +
                                     "/validator/0/" + std::to_string(i));
      proof.status.sigs.push_back(
          ValidatorSig{kp.public_key(), kp.Sign(message)});
    }
  }
  std::vector<PublicKey> keys = validators.CurrentPublicKeys();

  for (auto _ : state) {
    GasMeter gas;
    benchmark::DoNotOptimize(
        VerifyCbcProof(proof, deal, h, keys, 0, &gas));
  }
  state.SetLabel(std::to_string(2 * f + 1) + " sigs = " +
                 std::to_string((2 * f + 1) * kGasSigVerify) + " gas");
}
BENCHMARK(BM_CbcProofVerify)->Arg(1)->Arg(2)->Arg(4)->Arg(7);

}  // namespace
}  // namespace xdeal

BENCHMARK_MAIN();
