// Experiment E7 — the §9 cost comparison between the protocols.
//
// "If we assume (reasonably) that 2f+1 ... usually exceeds n ... it will
//  usually be more expensive to commit a CBC deal (O(m(2f+1))) than a
//  timelock deal (O(mn^2)). But one gets what one pays for: the CBC
//  protocol works in a more demanding model."
//
// This bench sweeps n × f at fixed m and prints measured commit-phase gas
// for both protocols, marking the cheaper one per cell, so the measured
// crossover frontier (CBC wins once 2f+1 < measured path-signature work)
// is visible.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"

using namespace xdeal;
using namespace xdeal::bench;

int main() {
  const size_t m = 4;
  std::printf("Commit-phase gas: timelock (varies with n) vs CBC (varies "
              "with f), m=%zu\n\n", m);

  std::vector<size_t> ns = {2, 3, 4, 6, 8, 12};
  std::vector<size_t> fs = {1, 2, 4, 7, 10, 16};

  // Timelock commit gas per n (independent of f).
  std::vector<uint64_t> tl_gas;
  for (size_t n : ns) {
    DealShape shape;
    shape.n = n;
    shape.m = m;
    shape.t = n + m - 1;
    tl_gas.push_back(RunTimelockDeal(shape).gas_commit);
  }
  // CBC commit gas per f (measured at n=4; flat in n).
  std::vector<uint64_t> cbc_gas;
  for (size_t f : fs) {
    DealShape shape;
    shape.n = 4;
    shape.m = m;
    shape.t = 4 + m - 1;
    cbc_gas.push_back(RunCbcDeal(shape, f).gas_commit);
  }

  std::printf("rows: n (timelock);  columns: f (CBC).  Cell: cheaper "
              "protocol ('TL' or 'CBC')\n\n");
  std::printf("%14s", "tl_gas \\ f =");
  for (size_t j = 0; j < fs.size(); ++j) std::printf("%8zu", fs[j]);
  std::printf("\n%14s", "cbc_gas:");
  for (uint64_t g : cbc_gas) std::printf("%8" PRIu64, g / 1000);
  std::printf("  (x1000 gas)\n");
  for (size_t i = 0; i < ns.size(); ++i) {
    std::printf("n=%3zu %7" PRIu64 "k ", ns[i], tl_gas[i] / 1000);
    for (size_t j = 0; j < fs.size(); ++j) {
      std::printf("%8s", tl_gas[i] <= cbc_gas[j] ? "TL" : "CBC");
    }
    std::printf("\n");
  }

  std::printf("\nexpected: TL cheaper in the upper-right region (small n, "
              "large f); CBC cheaper bottom-left (large n, small f).\n"
              "The paper's expectation (2f+1 > n typically => CBC more "
              "expensive) corresponds to the region above the frontier.\n");
  return 0;
}
