// Micro-benchmark: per-signature vs batched Schnorr verification for CBC
// status certificates.
//
// A CBC status certificate carries 2f+1 validator signatures over the same
// status message; every escrow "decide" call verifies all of them. The
// classic path is 2f+1 independent Verify() calls (two full modular
// exponentiations each); the batched path (crypto/schnorr.h BatchVerify)
// reduces the whole certificate to ONE combined check evaluated as a single
// shared-squaring multi-exponentiation. This bench measures both paths at
// f ∈ {1, 2, 4} (k = 2f+1 signatures) over a population of distinct
// certificates, checks they agree — including a corrupted certificate that
// must fall back and name the culprit — and emits the costs into the BENCH
// JSON family (crypto_* metrics; wall-clock, so never baseline-gated — the
// conformance_ok bit is the exact-gated part).
//
// Usage:  bench_crypto_micro [--fs=1,2,4] [--certs=200]
//                            [--json=BENCH_crypto_micro.json] [--seed=1]

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "crypto/schnorr.h"

namespace xdeal {
namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One synthetic status certificate: k validators, each signing the same
/// status message — exactly the shape VerifyQuorum batches.
struct Cert {
  std::vector<BatchItem> items;
};

std::vector<Cert> MakeCerts(size_t num_certs, size_t k, size_t f,
                            uint64_t seed) {
  // Keys model a fixed validator committee: derived once per f, shared by
  // every certificate, like a CbcService shard's committee.
  std::vector<KeyPair> committee;
  committee.reserve(k);
  for (size_t v = 0; v < k; ++v) {
    committee.push_back(KeyPair::FromSeed("crypto-micro-" +
                                          std::to_string(seed) + "-f" +
                                          std::to_string(f) + "-v" +
                                          std::to_string(v)));
  }
  std::vector<Cert> certs(num_certs);
  for (size_t c = 0; c < num_certs; ++c) {
    std::string message = "status-cert-" + std::to_string(seed) + "-f" +
                          std::to_string(f) + "-" + std::to_string(c);
    Bytes bytes(message.begin(), message.end());
    certs[c].items.reserve(k);
    for (size_t v = 0; v < k; ++v) {
      certs[c].items.push_back(
          {committee[v].public_key(), bytes, committee[v].Sign(bytes)});
    }
  }
  return certs;
}

bool RunMicro(size_t f, size_t num_certs, uint64_t seed,
              bench::JsonReport* json) {
  const size_t k = 2 * f + 1;
  std::vector<Cert> certs = MakeCerts(num_certs, k, f, seed);

  // Path 1: per-signature verification, 2f+1 Verify() calls per cert.
  auto start = std::chrono::steady_clock::now();
  size_t per_sig_valid = 0;
  for (const Cert& cert : certs) {
    bool all = true;
    for (const BatchItem& item : cert.items) {
      all = Verify(item.key, item.message, item.sig) && all;
    }
    if (all) ++per_sig_valid;
  }
  double per_cert_ms = WallMs(start);

  // Path 2: one BatchVerify per cert.
  start = std::chrono::steady_clock::now();
  size_t batch_valid = 0;
  size_t fallbacks = 0;
  for (const Cert& cert : certs) {
    BatchVerifyResult verdict = BatchVerify(cert.items);
    if (verdict.ok) ++batch_valid;
    if (verdict.used_fallback) ++fallbacks;
  }
  double batch_ms = WallMs(start);

  bool ok = true;
  if (per_sig_valid != num_certs || batch_valid != num_certs ||
      fallbacks != 0) {
    std::printf("CRYPTO MICRO FAILURE: f=%zu valid per-sig %zu batch %zu "
                "fallbacks %zu (want %zu/%zu/0)\n",
                f, per_sig_valid, batch_valid, fallbacks, num_certs,
                num_certs);
    ok = false;
  }

  // Equivalence under corruption: flip one signature in the middle of a
  // cert; the batch must fail, report the fallback ran, and name exactly
  // that index.
  Cert corrupted = certs[0];
  const int bad_index = static_cast<int>(k / 2);
  corrupted.items[bad_index].sig.s =
      corrupted.items[bad_index].sig.s.Add(U256(1));
  BatchVerifyResult verdict = BatchVerify(corrupted.items);
  if (verdict.ok || !verdict.used_fallback || verdict.first_bad != bad_index) {
    std::printf("CRYPTO MICRO FAILURE: f=%zu corrupted cert verdict ok=%d "
                "fallback=%d first_bad=%d (want 0/1/%d)\n",
                f, verdict.ok ? 1 : 0, verdict.used_fallback ? 1 : 0,
                verdict.first_bad, bad_index);
    ok = false;
  }

  double sigs = static_cast<double>(num_certs * k);
  double per_cert_sigs_per_sec = sigs / (per_cert_ms / 1000.0);
  double batch_sigs_per_sec = sigs / (batch_ms / 1000.0);
  double speedup = batch_ms > 0.0 ? per_cert_ms / batch_ms : 0.0;
  std::printf("%3zu %3zu %7zu %14.1f %14.1f %11.0f %11.0f %8.2fx\n", f, k,
              num_certs, per_cert_ms, batch_ms, per_cert_sigs_per_sec,
              batch_sigs_per_sec, speedup);

  bench::JsonReport::Labels labels = {{"f", std::to_string(f)}};
  json->AddMetric("crypto_percert_wall_ms", per_cert_ms, "ms", labels);
  json->AddMetric("crypto_batch_wall_ms", batch_ms, "ms", labels);
  json->AddMetric("crypto_percert_sigs_per_sec", per_cert_sigs_per_sec,
                  "1/s", labels);
  json->AddMetric("crypto_batch_sigs_per_sec", batch_sigs_per_sec, "1/s",
                  labels);
  json->AddMetric("crypto_batch_speedup", speedup, "x", labels);
  return ok;
}

}  // namespace
}  // namespace xdeal

int main(int argc, char** argv) {
  using namespace xdeal;
  const char* json_path = bench::FlagValue(argc, argv, "json");
  const char* seed_flag = bench::FlagValue(argc, argv, "seed");
  const char* certs_flag = bench::FlagValue(argc, argv, "certs");
  uint64_t seed =
      seed_flag != nullptr ? std::strtoull(seed_flag, nullptr, 10) : 1;
  size_t num_certs =
      certs_flag != nullptr ? std::strtoull(certs_flag, nullptr, 10) : 200;
  if (num_certs == 0) num_certs = 1;
  std::vector<size_t> fs = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "fs"), {1, 2, 4});

  bench::JsonReport json("crypto_micro");
  json.AddConfig("seed", seed);
  json.AddConfig("certs", static_cast<uint64_t>(num_certs));

  std::printf("=== Schnorr certificate verification: per-signature vs one "
              "batched multi-exponentiation ===\n");
  std::printf("%3s %3s %7s %14s %14s %11s %11s %9s\n", "f", "k", "certs",
              "per-cert (ms)", "batched (ms)", "sigs/s", "batch sigs/s",
              "speedup");
  bool ok = true;
  for (size_t f : fs) {
    if (f == 0) continue;
    ok = RunMicro(f, num_certs, seed, &json) && ok;
  }
  // The exact-gated conformance bit: both paths agreed on every cert and
  // blame attribution worked. The wall-clock metrics above are advisory.
  json.AddMetric("conformance_ok", ok ? 1 : 0);

  if (json_path != nullptr && !json.WriteFile(json_path)) ok = false;
  if (!ok) std::printf("CRYPTO MICRO FAILED\n");
  return ok ? 0 : 1;
}
