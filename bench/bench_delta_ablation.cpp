// Ablation — sizing Δ against denial-of-service (§5.3, §9).
//
// "Like any synchronous-model protocol, Δ must be chosen large enough to
//  make denial-of-service attacks prohibitively expensive. ... if Δ is
//  chosen too small, parties may be vulnerable" — and the watchtower remark
// suggests delegation as the orthogonal cure.
//
// We re-run the §5.3 attack (Alice and Carol silenced right as commit votes
// land) while sweeping (a) the synchrony parameter Δ and (b) the attack
// duration, with and without a watchtower, and report the outcome: COMMIT
// (attack defeated), abort (clean), or MIXED (Bob keeps coins and tickets —
// the §5.3 theft). Expected: theft only when the attack outlasts Δ-scaled
// deadlines and no watchtower is armed; the required Δ grows linearly with
// the attack duration; a watchtower makes even tiny Δ safe.

#include <cstdio>

#include "core/checker.h"
#include "core/timelock_run.h"
#include "core/watchtower.h"
#include "tests/scenario_util.h"

using namespace xdeal;

namespace {

const char* RunOnce(Tick delta, Tick attack_len, bool with_tower) {
  auto base = std::make_unique<SynchronousNetwork>(1, 10);
  Tick attack_start = 450;  // votes land ~450-460 (see adversary_gallery)
  auto dos = std::make_unique<TargetedDosNetwork>(
      std::move(base), attack_start, attack_start + attack_len);
  TargetedDosNetwork* dos_ptr = dos.get();
  BrokerScenario s = MakeBrokerScenario(7, std::move(dos));
  dos_ptr->AddTarget(Endpoint{s.alice.v});
  dos_ptr->AddTarget(Endpoint{s.carol.v});

  TimelockConfig config;
  config.delta = delta;
  TimelockRun run(&s.env->world(), s.spec, config);
  if (!run.Start().ok()) return "ERR";
  std::unique_ptr<Watchtower> tower;
  if (with_tower) {
    PartyId op = s.env->AddParty("tower");
    tower = std::make_unique<Watchtower>(&s.env->world(), s.spec,
                                         run.deployment(), op,
                                         std::vector<PartyId>{s.alice,
                                                              s.carol});
    tower->Arm();
  }
  s.env->world().scheduler().Run();
  TimelockResult r = run.Collect();
  if (r.released_contracts == s.spec.NumAssets()) return "COMMIT";
  if (r.released_contracts == 0) return "abort";
  return "MIXED!";
}

}  // namespace

int main() {
  std::printf("§5.3 DoS ablation on the broker deal — outcome per (Δ, "
              "attack duration)\n");
  std::printf("MIXED! = the theft outcome (coins released to Bob, tickets "
              "refunded to Bob)\n\n");

  std::vector<Tick> deltas = {40, 80, 160, 320, 640, 1280, 2560};
  std::vector<Tick> attack_lens = {0, 100, 200, 400, 800, 1600, 3200};

  for (bool tower : {false, true}) {
    std::printf("--- %s watchtower ---\n", tower ? "WITH" : "without");
    std::printf("%10s", "Δ \\ atk");
    for (Tick len : attack_lens) std::printf("%9llu",
        static_cast<unsigned long long>(len));
    std::printf("\n");
    for (Tick delta : deltas) {
      std::printf("%10llu", static_cast<unsigned long long>(delta));
      for (Tick len : attack_lens) {
        std::printf("%9s", RunOnce(delta, len, tower));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("expected: without a tower, MIXED! appears where the attack "
              "outlasts the vote-forwarding window (~Δ) but not the full "
              "refund wall; larger Δ pushes the dangerous band right "
              "(more expensive attacks); with a tower, no Δ is unsafe.\n");
  return 0;
}
