// Exhaustive interleaving verification bench: DPOR model checking over a
// curated cell set (2-3-party timelock + CBC deals, synchronous and §5.3
// DoS-window networks), via ScenarioSweep's kExhaustive mode.
//
// Unlike the sampled benches, every reported count is a property of the
// deal itself, not of a seed: the number of inequivalent delivery orders,
// the number of sleep-set-pruned re-executions, and the number of violating
// orders are all deterministic, so CI exact-gates them in
// BENCH_baseline.json. The bench also verifies the two explorer invariants
// on every configuration:
//   - the exhaustive report fingerprint is identical at every thread count
//     (per-root-branch parallelism folds in branch order), and
//   - every cell completes (no branch hits the execution budget), honest
//     cells have zero violating orders, every cross-chain timelock
//     DoS-window cell rediscovers the §5.3 safety violation exhaustively,
//     and the single-chain DoS cell stays safe (no vote forwarding to
//     attack — the window is harmless without a cross-chain dependency).
//
// Exit status is nonzero if any invariant fails, so this binary doubles as
// the exhaustive conformance gate.
//
// Usage:  bench_explore [--threads=1,4] [--json=BENCH_explore.json]
//                       [--seed=1] [--max-runs=250000]

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/scenario_sweep.h"

using namespace xdeal;

namespace {

SweepAxes ExploreAxes() {
  SweepAxes axes;
  axes.shapes = {
      {2, 1, 2, 1, 0},  // 2 parties, 1 asset, 2 transfers, 1 chain
      {2, 2, 3, 2, 0},  // 2 parties swapping 2 assets across 2 chains
  };
  axes.protocols = {Protocol::kTimelock, Protocol::kCbc};
  axes.adversaries = {SweepAdversary::kNone};
  axes.networks = {SweepNetwork::kSynchronous, SweepNetwork::kDosWindow};
  // DoS beneficiary position: with the beneficiary at 1 its incoming chain
  // completes while the blinded party's refunds — the §5.3 mixed outcome.
  axes.positions = {1};
  axes.seeds_per_cell = 1;
  return axes;
}

std::string CellLabel(const ScenarioSpec& sc) {
  return std::string(ToString(sc.protocol)) + "/" + ToString(sc.network) +
         "/n" + std::to_string(sc.shape.n_parties) + "c" +
         std::to_string(sc.shape.num_chains);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> thread_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "threads"), {1, 4});
  const char* json_path = bench::FlagValue(argc, argv, "json");
  const char* seed_flag = bench::FlagValue(argc, argv, "seed");
  const char* max_runs_flag = bench::FlagValue(argc, argv, "max-runs");
  uint64_t base_seed =
      seed_flag != nullptr ? std::strtoull(seed_flag, nullptr, 10) : 1;
  if (base_seed == 0) base_seed = 1;

  SweepAxes axes = ExploreAxes();
  std::printf("=== exhaustive interleaving verification, hardware "
              "threads: %u ===\n",
              std::thread::hardware_concurrency());

  bench::JsonReport json("bench_explore");
  json.AddConfig("base_seed", base_seed);
  json.AddConfig("hardware_threads",
                 static_cast<uint64_t>(std::thread::hardware_concurrency()));

  struct Row {
    size_t threads;
    double ms;
    ExhaustiveSweepReport report;
  };
  std::vector<Row> rows;
  for (size_t threads : thread_counts) {
    SweepOptions opts;
    opts.base_seed = base_seed;
    opts.num_threads = threads;
    opts.mode = SweepMode::kExhaustive;
    if (max_runs_flag != nullptr) {
      opts.max_runs_per_branch = std::strtoull(max_runs_flag, nullptr, 10);
    }
    auto start = std::chrono::steady_clock::now();
    ExhaustiveSweepReport report = RunExhaustiveSweep(axes, opts);
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    rows.push_back(Row{threads, ms, std::move(report)});
  }

  std::printf("%8s %12s %9s %10s %10s %11s\n", "threads", "wall (ms)",
              "speedup", "orders", "pruned", "violations");
  bool ok = true;
  for (const Row& row : rows) {
    double speedup = rows[0].ms / row.ms;
    std::printf("%8zu %12.1f %8.2fx %10" PRIu64 " %10" PRIu64 " %11" PRIu64
                "\n",
                row.threads, row.ms, speedup, row.report.orders,
                row.report.sleep_blocked, row.report.violations);
    if (row.report.fingerprint != rows[0].report.fingerprint) {
      std::printf("  FINGERPRINT MISMATCH at %zu threads: %016" PRIx64
                  " != %016" PRIx64 "\n",
                  row.threads, row.report.fingerprint,
                  rows[0].report.fingerprint);
      ok = false;
    }
    if (!row.report.complete) {
      std::printf("  INCOMPLETE at %zu threads: a branch hit the budget\n",
                  row.threads);
      ok = false;
    }
    bench::JsonReport::Labels labels = {
        {"threads", std::to_string(row.threads)}};
    json.AddMetric("wall_ms", row.ms, "ms", labels);
    json.AddMetric("orders_per_sec", row.report.orders / (row.ms / 1000.0),
                   "1/s", labels);
    json.AddMetric("speedup", speedup, "x", labels);
  }

  // Per-cell exact metrics (first configuration; all configurations agree
  // bit-for-bit or the fingerprint check above already failed).
  const ExhaustiveSweepReport& report = rows[0].report;
  std::printf("\n--- exhaustive cells ---\n%s", report.Summary().c_str());
  for (const ExhaustiveCellOutcome& cell : report.cells) {
    bench::JsonReport::Labels labels = {{"cell", CellLabel(cell.spec)}};
    json.AddMetric("explore_orders",
                   static_cast<double>(cell.report.stats.orders), "",
                   labels);
    json.AddMetric("explore_pruned",
                   static_cast<double>(cell.report.stats.sleep_blocked), "",
                   labels);
    json.AddMetric("explore_executions",
                   static_cast<double>(cell.report.stats.executions), "",
                   labels);
    json.AddMetric("explore_root_branches",
                   static_cast<double>(cell.report.stats.root_branches), "",
                   labels);
    json.AddMetric("explore_violations",
                   static_cast<double>(cell.report.violation_count), "",
                   labels);
    // §5.3 needs a cross-chain dependency to break: the attack cuts off
    // vote *forwarding*, so the timelock DoS cell on two chains must
    // violate in every order, while the single-chain DoS cell (nothing to
    // forward) and all honest cells must be violation-free.
    const bool dos = cell.spec.network == SweepNetwork::kDosWindow;
    const bool cross_chain = cell.spec.shape.num_chains >= 2;
    if (dos && cross_chain && cell.report.violation_count == 0) {
      std::printf("  DOS CELL %s: expected the §5.3 violation, found none\n",
                  CellLabel(cell.spec).c_str());
      ok = false;
    }
    if ((!dos || !cross_chain) && cell.report.violation_count != 0) {
      std::printf("  SAFE CELL %s: %" PRIu64 " violating orders\n",
                  CellLabel(cell.spec).c_str(), cell.report.violation_count);
      ok = false;
    }
  }
  json.AddMetric("explore_orders_total", static_cast<double>(report.orders));
  json.AddMetric("explore_pruned_total",
                 static_cast<double>(report.sleep_blocked));
  json.AddMetric("explore_violations_total",
                 static_cast<double>(report.violations));
  json.AddMetric("explore_violation_cells",
                 static_cast<double>(report.violation_cells));
  json.AddMetric("explore_complete", report.complete ? 1 : 0);
  json.AddMetric("conformance_ok", ok ? 1 : 0);

  if (json_path != nullptr && !json.WriteFile(json_path)) ok = false;
  if (!ok) {
    std::printf("\nEXPLORE FAILED: violations, nondeterminism, or an "
                "exhausted budget\n");
    return 1;
  }
  std::printf("\nall thread counts agree bit-for-bit; every cell proved "
              "exhaustively\n");
  return 0;
}
