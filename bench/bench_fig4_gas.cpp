// Experiment E3 — reproduces Figure 4 (gas costs per phase).
//
// Paper's table:
//   Protocol  Escrow      Transfer    Validation  Commit or Abort
//   Timelock  O(m) writes O(t) writes none        O(mn^2) sig.ver + O(m) writes
//   CBC       O(m) writes O(t) writes none        O(m(2f+1)) sig.ver + O(m) writes
//
// We run generated (n, m, t) deals on the simulator and report *measured*
// gas and signature-verification counts, alongside the paper's bound for
// that cell. Expected shape: escrow gas linear in m (4 writes per escrow),
// transfer gas linear in t (2 writes per hop), timelock commit gas growing
// with n (up to n^2 per contract from path-signature chains), CBC commit
// gas flat in n and linear in f.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"

using namespace xdeal;
using namespace xdeal::bench;

namespace {

void Header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

void SweepEscrowTransfer() {
  Header("Escrow O(m) and Transfer O(t) — sweep m (timelock, n=4)");
  std::printf("%4s %4s %4s | %12s %10s | %12s %10s\n", "n", "m", "t",
              "escrow_gas", "gas/m", "transfer_gas", "gas/t");
  for (size_t m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    DealShape shape;
    shape.n = 4;
    shape.m = m;
    shape.t = 4 + m;  // generator clamps to n + m - 1
    shape.chains = 2;
    PhaseReport r = RunTimelockDeal(shape);
    std::printf("%4zu %4zu %4zu | %12" PRIu64 " %10.0f | %12" PRIu64
                " %10.0f\n",
                r.n, r.m, r.t, r.gas_escrow,
                static_cast<double>(r.gas_escrow) / r.m, r.gas_transfer,
                static_cast<double>(r.gas_transfer) / r.t);
  }
  std::printf("expected: gas/m constant (~4 writes = 20400 gas + init), "
              "gas/t constant (~2 writes = 10200 gas)\n");
}

void SweepTimelockCommit() {
  Header("Timelock commit — sweep n (m=4): O(mn^2) sig verifications bound");
  std::printf("%4s %4s | %12s %10s %14s | %10s\n", "n", "m", "commit_gas",
              "sig_ver", "bound m*n^2", "committed");
  for (size_t n : {2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    DealShape shape;
    shape.n = n;
    shape.m = 4;
    shape.t = n + 3;
    shape.chains = 2;
    PhaseReport r = RunTimelockDeal(shape);
    std::printf("%4zu %4zu | %12" PRIu64 " %10" PRIu64 " %14zu | %10s\n",
                r.n, r.m, r.gas_commit, r.sig_verifies, r.m * n * n,
                r.committed ? "yes" : "NO");
  }
  std::printf("expected: sig_ver grows superlinearly in n, within m*n^2\n");
}

void SweepCbcCommit() {
  Header("CBC commit — sweep n at f=1, then sweep f at n=4: O(m(2f+1))");
  std::printf("%4s %4s %4s | %12s %10s %14s | %10s\n", "n", "m", "f",
              "commit_gas", "sig_ver", "bound m(2f+1)", "committed");
  for (size_t n : {2u, 4u, 8u, 16u}) {
    DealShape shape;
    shape.n = n;
    shape.m = 4;
    shape.t = n + 3;
    shape.chains = 2;
    PhaseReport r = RunCbcDeal(shape, /*f=*/1);
    std::printf("%4zu %4zu %4d | %12" PRIu64 " %10" PRIu64 " %14zu | %10s\n",
                r.n, r.m, 1, r.gas_commit, r.sig_verifies, r.m * 3,
                r.committed ? "yes" : "NO");
  }
  for (size_t f : {1u, 2u, 4u, 7u, 10u}) {
    DealShape shape;
    shape.n = 4;
    shape.m = 4;
    shape.t = 8;
    shape.chains = 2;
    PhaseReport r = RunCbcDeal(shape, f);
    std::printf("%4zu %4zu %4zu | %12" PRIu64 " %10" PRIu64 " %14zu | %10s\n",
                r.n, r.m, f, r.gas_commit, r.sig_verifies,
                r.m * (2 * f + 1), r.committed ? "yes" : "NO");
  }
  std::printf("expected: sig_ver == m(2f+1) exactly (one quorum check per "
              "asset contract), flat in n\n");
}

void ReconfigChain() {
  Header("CBC commit with k validator reconfigurations: (k+1)(2f+1) per "
         "contract (§6.2)");
  std::printf("%4s %4s %4s | %10s %18s\n", "f", "m", "k", "sig_ver",
              "bound m(k+1)(2f+1)");
  for (size_t k : {0u, 1u, 2u, 4u}) {
    DealShape shape;
    shape.n = 3;
    shape.m = 2;
    shape.t = 5;
    shape.chains = 2;
    PhaseReport r = RunCbcDeal(shape, /*f=*/1, /*reconfigs=*/k);
    std::printf("%4d %4zu %4zu | %10" PRIu64 " %18zu\n", 1, r.m, k,
                r.sig_verifies, r.m * (k + 1) * 3);
  }
}

}  // namespace

int main() {
  std::printf("Figure 4 reproduction — gas costs per phase "
              "(storage write = %d gas, signature verification = %d gas)\n",
              static_cast<int>(kGasStorageWrite),
              static_cast<int>(kGasSigVerify));
  SweepEscrowTransfer();
  SweepTimelockCommit();
  SweepCbcCommit();
  ReconfigChain();
  return 0;
}
