// Experiment E6 — reproduces Figure 7 (delays under synchronous
// communication).
//
// Paper's table:
//   Protocol  Escrow  Transfer   Validation  Commit      Abort
//   Timelock  Δ       tΔ or Δ    Δ           O(n)Δ       O(n)Δ
//   CBC       Δ       tΔ or Δ    Δ           O(1)Δ       per-party timeout
//
// Δ here is the environment's one-hop bound (network delay + block
// inclusion). We report each phase's measured duration in ticks and as a
// multiple of Δ. Expected shape: escrow ~1 hop regardless of m; transfers
// t hops sequential vs ~1 hop parallel; timelock commit grows with n when
// votes propagate along the digraph but stays ~1 hop with direct
// (altruistic) voting; CBC commit is a constant number of hops in n.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"

using namespace xdeal;
using namespace xdeal::bench;

namespace {

// One protocol hop: worst-case submit delay + block inclusion + observation
// (matches EnvConfig defaults in core/env.h).
constexpr double kHop = 10 + 10 + 10;

void EscrowAndValidation() {
  std::printf("\n=== Escrow phase — constant in m (row 'Escrow: Δ') ===\n");
  std::printf("%4s %4s | %12s %8s\n", "n", "m", "escrow_ticks", "hops");
  for (size_t m : {1u, 4u, 16u}) {
    DealShape shape;
    shape.n = 4;
    shape.m = m;
    shape.t = 4 + m;
    PhaseReport r = RunTimelockDeal(shape);
    std::printf("%4zu %4zu | %12" PRIu64 " %8.2f\n", r.n, r.m,
                static_cast<uint64_t>(r.escrow_ticks), r.escrow_ticks / kHop);
  }
  std::printf("expected: ~1 hop, independent of m (all escrows parallel)\n");
}

void Transfers() {
  std::printf("\n=== Transfer phase — tΔ sequential vs Δ parallel ===\n");
  std::printf("%4s | %16s %8s | %16s %8s\n", "t", "sequential_ticks", "hops",
              "parallel_ticks", "hops");
  for (size_t t : {4u, 8u, 16u, 32u}) {
    DealShape shape;
    shape.n = 3;
    shape.m = 2;
    shape.t = t;
    PhaseReport seq = RunTimelockDeal(shape, false, false);
    PhaseReport par = RunTimelockDeal(shape, false, true);
    std::printf("%4zu | %16" PRIu64 " %8.2f | %16" PRIu64 " %8.2f\n",
                seq.t, static_cast<uint64_t>(seq.transfer_ticks),
                seq.transfer_ticks / kHop,
                static_cast<uint64_t>(par.transfer_ticks),
                par.transfer_ticks / kHop);
  }
  std::printf("expected: sequential grows ~linearly in t; parallel ~1 hop\n");
}

void CommitPhase() {
  // The worst case for the chained bound needs the ring topology: party i's
  // only incoming asset lives on chain i-1, so votes must be forwarded
  // hop-by-hop around the ring (each hop adds a Δ to the path deadline).
  std::printf("\n=== Commit phase on an n-party ring — timelock chained "
              "O(n)Δ vs direct Δ vs CBC O(1)Δ ===\n");
  std::printf("%4s | %14s %6s | %14s %6s | %14s %6s\n", "n",
              "tl_chained", "hops", "tl_direct", "hops", "cbc", "hops");
  for (size_t n : {2u, 3u, 4u, 6u, 8u, 12u}) {
    PhaseReport chained = RunTimelockRing(n, 5, /*direct_votes=*/false);
    PhaseReport direct = RunTimelockRing(n, 5, /*direct_votes=*/true);
    DealShape shape;
    shape.n = n;
    shape.m = 4;
    shape.t = n + 3;
    PhaseReport cbc = RunCbcDeal(shape, /*f=*/1);
    std::printf("%4zu | %14" PRIu64 " %6.2f%s | %13" PRIu64 " %6.2f%s | %13"
                PRIu64 " %6.2f\n",
                n, static_cast<uint64_t>(chained.commit_ticks),
                chained.commit_ticks / kHop, chained.committed ? "" : "!",
                static_cast<uint64_t>(direct.commit_ticks),
                direct.commit_ticks / kHop, direct.committed ? "" : "!",
                static_cast<uint64_t>(cbc.commit_ticks),
                cbc.commit_ticks / kHop);
  }
  std::printf("expected: chained grows ~linearly with n (vote forwarding "
              "around the ring); direct and CBC roughly constant\n");
}

void AbortTimes() {
  std::printf("\n=== Abort — timelock waits out t0 + N·Δ; CBC aborts on "
              "per-party timeout ===\n");
  std::printf("%4s | %18s | %18s\n", "n", "timelock_settle", "cbc_settle");
  for (size_t n : {2u, 4u, 8u}) {
    // Timelock: withhold every vote -> refunds at t0 + N*delta.
    EnvConfig e1;
    e1.seed = 7;
    DealEnv env1(std::move(e1));
    GenParams gen;
    gen.n_parties = n;
    gen.m_assets = 2;
    gen.t_transfers = n + 1;
    gen.num_chains = 2;
    gen.seed = n;
    DealSpec spec1 = GenerateRandomDeal(&env1, gen);
    TimelockConfig tc;
    tc.delta = 120;
    TimelockRun run1(&env1.world(), spec1, tc, [](PartyId) {
      struct Silent : TimelockParty {
        void OnCommitPhase() override {}
      };
      return std::make_unique<Silent>();
    });
    (void)run1.Start();
    env1.world().scheduler().Run();
    Tick tl_settle = LastInclusion(env1.world(), "refund");

    // CBC: same deviation; parties abort after their patience runs out.
    EnvConfig e2;
    e2.seed = 7;
    DealEnv env2(std::move(e2));
    gen.seed = n + 100;
    DealSpec spec2 = GenerateRandomDeal(&env2, gen);
    CbcService::Options service_options;
    service_options.validator_seed = "abort-bench";
    CbcService service(&env2.world(), service_options);
    CbcConfig cc;
    CbcRun run2(&env2.world(), spec2, cc, &service,
                [](PartyId) {
                  struct Silent : CbcParty {
                    void OnVotePhase() override {}
                  };
                  return std::make_unique<Silent>();
                });
    (void)run2.Start();
    env2.world().scheduler().Run();
    Tick cbc_settle = LastInclusion(env2.world(), "decide");

    std::printf("%4zu | %18" PRIu64 " | %18" PRIu64 "\n", n,
                static_cast<uint64_t>(tl_settle),
                static_cast<uint64_t>(cbc_settle));
  }
  std::printf("expected: timelock abort time grows with n (N·Δ timeout); "
              "CBC abort time set by the fixed per-party patience\n");
}

}  // namespace

int main() {
  std::printf("Figure 7 reproduction — phase delays (1 hop = %g ticks: "
              "submit + inclusion + observation)\n", kHop);
  EscrowAndValidation();
  Transfers();
  CommitPhase();
  AbortTimes();
  return 0;
}
