// Experiment E8 — §6.2's proof-of-work CBC analysis.
//
// Reproduces the economics behind: "the number of confirmations required
// should vary depending on the value of the deal, implying that high-value
// deals would take longer to resolve than lower-value deals."
//
// Monte-Carlo private-mining races (fake proof-of-abort) across adversary
// hash power α and confirmation depth k, against the analytic geometric
// bound; then the required-confirmations-for-value table.

#include <cstdio>

#include "cbc/pow.h"

using namespace xdeal;

namespace {

double SuccessRate(double alpha, unsigned k, int trials) {
  int wins = 0;
  for (int t = 0; t < trials; ++t) {
    PowAttackParams params;
    params.adversary_power = alpha;
    params.confirmations = k;
    params.seed = 0xC0FFEE + static_cast<uint64_t>(t) * 7919 +
                  static_cast<uint64_t>(k) * 104729 +
                  static_cast<uint64_t>(alpha * 1000) * 1299709;
    if (SimulatePrivateMiningAttack(params).success) ++wins;
  }
  return static_cast<double>(wins) / trials;
}

}  // namespace

int main() {
  const int kTrials = 20000;
  std::printf("Fake proof-of-abort success probability (simulated over %d "
              "trials | analytic catch-up bound (a/(1-a))^(k+1))\n\n",
              kTrials);

  std::vector<double> alphas = {0.10, 0.20, 0.30, 0.40, 0.45};
  std::printf("%4s", "k");
  for (double a : alphas) std::printf("        a=%.2f       ", a);
  std::printf("\n");
  for (unsigned k : {0u, 1u, 2u, 3u, 4u, 6u, 8u, 10u}) {
    std::printf("%4u", k);
    for (double a : alphas) {
      std::printf("   %8.5f|%8.5f", SuccessRate(a, k, kTrials),
                  AnalyticAttackProbability(a, k));
    }
    std::printf("\n");
  }
  std::printf("\nexpected: decays geometrically in k, rises sharply with "
              "adversary power; simulation (even-start race) tracks the "
              "analytic bound's shape.\n");

  std::printf("\nConfirmations required so expected attacker gain <= 1 coin "
              "(risk tolerance) per deal value:\n");
  std::printf("%12s", "value \\ a");
  for (double a : alphas) std::printf("%8.2f", a);
  std::printf("\n");
  for (double value : {10.0, 100.0, 1e4, 1e6, 1e9}) {
    std::printf("%12.0f", value);
    for (double a : alphas) {
      unsigned k = ConfirmationsForValue(value, a, 1.0);
      std::printf("%8u", k);
    }
    std::printf("\n");
  }
  std::printf("\nexpected: required depth grows logarithmically with deal "
              "value — high-value deals take longer to resolve (§6.2).\n"
              "Contrast: a BFT certificate is final at any value.\n");
  return 0;
}
