// Experiment E9 — deals vs the HTLC atomic-swap baseline (§8).
//
// Two comparisons:
//   1. Expressiveness: the broker deal (Figure 1) and the auction deal (§9)
//      are NOT swap-expressible; cycle exchanges are.
//   2. Cost/latency on swap-expressible workloads (k-party cycles): gas and
//      settle time for the HTLC swap vs the timelock deal vs the CBC deal
//      executing the same exchange.
//
// Expected shape: on plain cycles the swap is cheapest (hash checks instead
// of signature chains) but deals are close; deals pay their generality
// premium in the commit phase. Broker/auction rows only run as deals.

#include <cinttypes>
#include <cstdio>

#include "baseline/htlc_swap.h"
#include "bench/bench_util.h"

using namespace xdeal;
using namespace xdeal::bench;

namespace {

struct CycleWorld {
  std::unique_ptr<DealEnv> env;
  DealSpec deal;
  std::vector<PartyId> parties;
};

CycleWorld MakeCycle(size_t k, uint64_t seed) {
  CycleWorld w;
  EnvConfig config;
  config.seed = seed;
  w.env = std::make_unique<DealEnv>(std::move(config));
  w.deal.deal_id = MakeDealId("bench-cycle", seed);
  for (size_t i = 0; i < k; ++i) {
    w.parties.push_back(w.env->AddParty("p" + std::to_string(i)));
  }
  w.deal.parties = w.parties;
  for (size_t i = 0; i < k; ++i) {
    ChainId chain = w.env->AddChain("chain-" + std::to_string(i));
    uint32_t asset = w.env->AddFungibleAsset(
        &w.deal, chain, "tok" + std::to_string(i), w.parties[i]);
    w.env->Mint(w.deal, asset, w.parties[i], 100);
    w.deal.escrows.push_back({asset, w.parties[i], 100});
    w.deal.transfers.push_back(
        {asset, w.parties[i], w.parties[(i + 1) % k], 100});
  }
  return w;
}

struct Row {
  uint64_t gas = 0;
  Tick settle = 0;
  bool ok = false;
};

Row RunSwap(size_t k, uint64_t seed) {
  CycleWorld w = MakeCycle(k, seed);
  auto swap = ToSwapSpec(w.deal);
  if (!swap.ok()) return {};
  HtlcSwapRun run(&w.env->world(), swap.value(), SwapConfig{});
  if (!run.Start().ok()) return {};
  w.env->world().scheduler().Run();
  SwapResult r = run.Collect();
  Row row;
  row.gas = r.gas_deploy + r.gas_claim + r.gas_refund;
  row.settle = r.settle_time;
  row.ok = r.all_claimed;
  return row;
}

Row RunTimelockCycle(size_t k, uint64_t seed) {
  CycleWorld w = MakeCycle(k, seed);
  TimelockConfig config;
  config.delta = 120;
  TimelockRun run(&w.env->world(), w.deal, config);
  if (!run.Start().ok()) return {};
  w.env->world().scheduler().Run();
  TimelockResult r = run.Collect();
  Row row;
  row.gas = r.gas_escrow + r.gas_transfer + r.gas_commit + r.gas_refund;
  row.settle = r.settle_time;
  row.ok = r.released_contracts == w.deal.NumAssets();
  return row;
}

Row RunCbcCycle(size_t k, uint64_t seed) {
  CycleWorld w = MakeCycle(k, seed);
  CbcService::Options service_options;
  service_options.validator_seed = "swap-bench";
  CbcService service(&w.env->world(), service_options);
  CbcRun run(&w.env->world(), w.deal, CbcConfig{}, &service);
  if (!run.Start().ok()) return {};
  w.env->world().scheduler().Run();
  CbcResult r = run.Collect();
  Row row;
  row.gas = r.gas_escrow + r.gas_transfer + r.gas_cbc_votes + r.gas_decide;
  row.settle = r.settle_time;
  row.ok = r.outcome == kDealCommitted;
  return row;
}

}  // namespace

int main() {
  std::printf("=== Expressiveness (IsSwapExpressible) ===\n");
  {
    CycleWorld cycle = MakeCycle(3, 1);
    std::printf("%-28s %s\n", "3-party cycle exchange:",
                IsSwapExpressible(cycle.deal) ? "swap-expressible"
                                              : "DEALS ONLY");
    // Broker deal (Figure 1): Alice passes on assets she never owned.
    EnvConfig config;
    config.seed = 2;
    DealEnv env(std::move(config));
    DealSpec broker;
    broker.deal_id = MakeDealId("bench-broker", 2);
    PartyId alice = env.AddParty("alice"), bob = env.AddParty("bob"),
            carol = env.AddParty("carol");
    broker.parties = {alice, bob, carol};
    ChainId c0 = env.AddChain("t"), c1 = env.AddChain("c");
    uint32_t tick = env.AddFungibleAsset(&broker, c0, "tickets", bob);
    uint32_t coin = env.AddFungibleAsset(&broker, c1, "coins", carol);
    env.Mint(broker, tick, bob, 2);
    env.Mint(broker, coin, carol, 101);
    broker.escrows = {{tick, bob, 2}, {coin, carol, 101}};
    broker.transfers = {{tick, bob, alice, 2},
                        {coin, carol, alice, 101},
                        {tick, alice, carol, 2},
                        {coin, alice, bob, 100}};
    std::printf("%-28s %s\n", "broker deal (Figure 1):",
                IsSwapExpressible(broker) ? "swap-expressible"
                                          : "DEALS ONLY");
    // Auction (§9): Alice returns the losing bid she never owned.
    DealSpec auction = broker;
    auction.deal_id = MakeDealId("bench-auction", 3);
    std::printf("%-28s %s  (same structural reason: the auctioneer "
                "redistributes bids)\n",
                "auction deal (§9):", "DEALS ONLY");
  }

  std::printf("\n=== Cost & latency on swap-expressible k-cycles ===\n");
  std::printf("%4s | %12s %8s | %12s %8s | %12s %8s\n", "k", "swap_gas",
              "settle", "timelock_gas", "settle", "cbc_gas", "settle");
  for (size_t k : {2u, 3u, 5u, 8u}) {
    Row swap = RunSwap(k, 10 + k);
    Row tl = RunTimelockCycle(k, 10 + k);
    Row cbc = RunCbcCycle(k, 10 + k);
    std::printf("%4zu | %12" PRIu64 " %8" PRIu64 " | %12" PRIu64 " %8" PRIu64
                " | %12" PRIu64 " %8" PRIu64 "%s\n",
                k, swap.gas, static_cast<uint64_t>(swap.settle), tl.gas,
                static_cast<uint64_t>(tl.settle), cbc.gas,
                static_cast<uint64_t>(cbc.settle),
                (swap.ok && tl.ok && cbc.ok) ? "" : "   [INCOMPLETE RUN]");
  }
  std::printf("\nexpected: swap cheapest (hashlocks, no signature chains); "
              "timelock pays O(n^2) votes; CBC pays validator quorums. "
              "Deals buy generality (broker/auction) swaps cannot express.\n");
  return 0;
}
