// Parallel scenario-sweep benchmark: the full conformance matrix
// (shapes × {timelock, CBC, HTLC} × adversary gallery × networks, ≥ 500
// scenarios) at 1/2/4/8 worker threads.
//
// Reports wall-clock per thread count and the speedup over single-threaded,
// and verifies the two sweep invariants on every configuration:
//   - the report fingerprint is identical at every thread count, and
//   - the conformance matrix has zero violations (honest runs commit;
//     adversarial runs never hurt compliant parties).
//
// Exit status is nonzero if either invariant fails, so this binary doubles
// as a conformance gate.
//
// Build & run:  ./build/bench/bench_sweep

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/scenario_sweep.h"

using namespace xdeal;

int main() {
  SweepAxes axes = DefaultSweepAxes();
  std::vector<ScenarioSpec> specs = BuildScenarioMatrix(axes, /*base_seed=*/1);
  std::printf("=== scenario sweep: %zu scenarios, hardware threads: %u ===\n",
              specs.size(), std::thread::hardware_concurrency());

  struct Row {
    size_t threads;
    double ms;
    SweepReport report;
  };
  std::vector<Row> rows;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    SweepOptions opts;
    opts.base_seed = 1;
    opts.num_threads = threads;
    auto start = std::chrono::steady_clock::now();
    SweepReport report = RunSweep(axes, opts);
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    rows.push_back(Row{threads, ms, std::move(report)});
  }

  std::printf("%8s %12s %9s %12s %11s\n", "threads", "wall (ms)", "speedup",
              "scenarios/s", "violations");
  bool ok = true;
  for (const Row& row : rows) {
    double speedup = rows[0].ms / row.ms;
    std::printf("%8zu %12.1f %8.2fx %12.0f %11zu\n", row.threads, row.ms,
                speedup, specs.size() / (row.ms / 1000.0),
                row.report.violations.size());
    if (row.report.fingerprint != rows[0].report.fingerprint) {
      std::printf("  FINGERPRINT MISMATCH at %zu threads: %016" PRIx64
                  " != %016" PRIx64 "\n",
                  row.threads, row.report.fingerprint,
                  rows[0].report.fingerprint);
      ok = false;
    }
    if (!row.report.violations.empty()) ok = false;
  }

  std::printf("\n--- conformance report (single-threaded run) ---\n%s",
              rows[0].report.Summary().c_str());
  if (!ok) {
    std::printf("\nSWEEP FAILED: violations or nondeterminism detected\n");
    return 1;
  }
  std::printf("\nall thread counts agree bit-for-bit; zero violations\n");
  return 0;
}
