// Parallel scenario-sweep benchmark: the full conformance matrix
// (shapes × {timelock, CBC, HTLC} × adversary gallery × networks, ≥ 500
// scenarios) across a configurable list of worker-thread counts.
//
// Reports wall-clock per thread count and the speedup over single-threaded,
// and verifies the two sweep invariants on every configuration:
//   - the report fingerprint is identical at every thread count, and
//   - the conformance matrix has zero violations (honest runs commit;
//     adversarial runs never hurt compliant parties).
//
// Exit status is nonzero if either invariant fails, so this binary doubles
// as a conformance gate.
//
// Usage:  bench_sweep [--threads=1,2,4,8] [--json=BENCH_sweep.json]
//                     [--seed=1]
//
// --json writes the machine-readable report (schema in bench_util.h) that
// CI uploads as an artifact; diff two files by metric name + labels.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/scenario_sweep.h"

using namespace xdeal;

int main(int argc, char** argv) {
  std::vector<size_t> thread_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "threads"), {1, 2, 4, 8});
  const char* json_path = bench::FlagValue(argc, argv, "json");
  const char* seed_flag = bench::FlagValue(argc, argv, "seed");
  uint64_t base_seed = seed_flag != nullptr
                           ? std::strtoull(seed_flag, nullptr, 10)
                           : 1;
  if (base_seed == 0) base_seed = 1;

  SweepAxes axes = DefaultSweepAxes();
  std::vector<ScenarioSpec> specs = BuildScenarioMatrix(axes, base_seed);
  std::printf("=== scenario sweep: %zu scenarios, hardware threads: %u ===\n",
              specs.size(), std::thread::hardware_concurrency());

  bench::JsonReport json("bench_sweep");
  json.AddConfig("scenarios", static_cast<uint64_t>(specs.size()));
  json.AddConfig("base_seed", base_seed);
  json.AddConfig("hardware_threads",
                 static_cast<uint64_t>(std::thread::hardware_concurrency()));

  struct Row {
    size_t threads;
    double ms;
    SweepReport report;
  };
  std::vector<Row> rows;
  for (size_t threads : thread_counts) {
    SweepOptions opts;
    opts.base_seed = base_seed;
    opts.num_threads = threads;
    auto start = std::chrono::steady_clock::now();
    SweepReport report = RunSweep(axes, opts);
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    rows.push_back(Row{threads, ms, std::move(report)});
  }

  std::printf("%8s %12s %9s %12s %11s\n", "threads", "wall (ms)", "speedup",
              "scenarios/s", "violations");
  bool ok = true;
  for (const Row& row : rows) {
    double speedup = rows[0].ms / row.ms;
    double per_second = specs.size() / (row.ms / 1000.0);
    std::printf("%8zu %12.1f %8.2fx %12.0f %11zu\n", row.threads, row.ms,
                speedup, per_second, row.report.violations.size());
    if (row.report.fingerprint != rows[0].report.fingerprint) {
      std::printf("  FINGERPRINT MISMATCH at %zu threads: %016" PRIx64
                  " != %016" PRIx64 "\n",
                  row.threads, row.report.fingerprint,
                  rows[0].report.fingerprint);
      ok = false;
    }
    if (!row.report.violations.empty()) ok = false;

    bench::JsonReport::Labels labels = {
        {"threads", std::to_string(row.threads)}};
    json.AddMetric("wall_ms", row.ms, "ms", labels);
    json.AddMetric("scenarios_per_sec", per_second, "1/s", labels);
    json.AddMetric("speedup", speedup, "x", labels);
    json.AddMetric("violations",
                   static_cast<double>(row.report.violations.size()), "",
                   labels);
  }
  json.AddMetric("conformance_ok", ok ? 1 : 0);

  std::printf("\n--- conformance report (first configuration) ---\n%s",
              rows[0].report.Summary().c_str());
  if (json_path != nullptr && !json.WriteFile(json_path)) ok = false;
  if (!ok) {
    std::printf("\nSWEEP FAILED: violations or nondeterminism detected\n");
    return 1;
  }
  std::printf("\nall thread counts agree bit-for-bit; zero violations\n");
  return 0;
}
