// Concurrent multi-deal traffic benchmark: D deals (mixed timelock/CBC)
// contending on a shared chain pool inside one World, for D ∈ {1, 10, 100,
// 1000} and a configurable list of validation thread counts.
//
// Reports deals/sec (wall-clock), commit-latency P50/P99 in simulated
// ticks, per-deal gas percentiles, and scheduler backlog; verifies on every
// cell that
//   - the report fingerprint is identical across thread counts, and
//   - the workload is conformant (every compliant deal commits, zero
//     Property-1/2/3 violations, no unexplained double-spends).
//
// Exit status is nonzero if either invariant fails, so this binary doubles
// as the traffic conformance gate in CI.
//
// A second section sweeps the CbcService shard count on a CBC-heavy D=1000
// workload: every CBC deal hashed to one of S independent certified chains.
// With S = 1 (the paper's single shared CBC) every party observes every
// receipt of every deal — O(D²) observation work; sharding divides it by S,
// and the deals/sec-vs-shards table lands in BENCH_traffic.json. Each cell
// must stay fully conformant; on throughput the gate warns if no S>1 run
// beats S=1 (expected margin is >2x) and fails only below 0.8x — wall-clock
// comparisons of separate runs need headroom for noisy CI hosts.
//
// Usage:  bench_traffic [--deals=1,10,100,1000] [--threads=1,8]
//                       [--cbc_shards=1,2,4,8] [--shard_deals=1000]
//                       [--json=BENCH_traffic.json] [--seed=1]

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/traffic_engine.h"

using namespace xdeal;

namespace {

TrafficOptions OptionsFor(size_t deals, uint64_t base_seed, size_t threads) {
  TrafficOptions options;
  options.base_seed = base_seed;
  options.num_deals = deals;
  // Scale the shared pool with the workload (≈8 deals per chain) so load
  // per chain stays heavy but bounded as D grows.
  options.num_chains = deals / 8 < 4 ? 4 : deals / 8;
  options.num_threads = threads;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> deal_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "deals"), {1, 10, 100, 1000});
  std::vector<size_t> thread_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "threads"), {1, 8});
  const char* json_path = bench::FlagValue(argc, argv, "json");
  const char* seed_flag = bench::FlagValue(argc, argv, "seed");
  uint64_t base_seed = seed_flag != nullptr
                           ? std::strtoull(seed_flag, nullptr, 10)
                           : 1;
  if (base_seed == 0) base_seed = 1;

  std::printf("=== traffic engine: shared-chain contention workloads, "
              "hardware threads: %u ===\n",
              std::thread::hardware_concurrency());

  bench::JsonReport json("bench_traffic");
  json.AddConfig("base_seed", base_seed);
  json.AddConfig("hardware_threads",
                 static_cast<uint64_t>(std::thread::hardware_concurrency()));

  std::printf("%7s %8s %10s %10s %8s %8s %8s %10s %9s\n", "deals", "threads",
              "wall (ms)", "deals/s", "commit", "lat p50", "lat p99",
              "backlog", "viol");
  bool ok = true;
  for (size_t deals : deal_counts) {
    uint64_t reference_fp = 0;
    bool have_reference = false;
    for (size_t threads : thread_counts) {
      TrafficOptions options = OptionsFor(deals, base_seed, threads);
      auto start = std::chrono::steady_clock::now();
      TrafficReport report = RunTraffic(options);
      auto end = std::chrono::steady_clock::now();
      double ms =
          std::chrono::duration_cast<std::chrono::microseconds>(end - start)
              .count() /
          1000.0;
      double per_second = deals / (ms / 1000.0);

      std::printf("%7zu %8zu %10.1f %10.0f %8zu %8" PRIu64 " %8" PRIu64
                  " %10zu %9zu\n",
                  deals, threads, ms, per_second, report.committed,
                  report.latency_p50, report.latency_p99,
                  report.max_backlog, report.violations.size());

      if (!have_reference) {
        reference_fp = report.fingerprint;
        have_reference = true;
      } else if (report.fingerprint != reference_fp) {
        std::printf("  FINGERPRINT MISMATCH at deals=%zu threads=%zu: "
                    "%016" PRIx64 " != %016" PRIx64 "\n",
                    deals, threads, report.fingerprint, reference_fp);
        ok = false;
      }
      // Conformance: this benign workload (no injection, unlimited block
      // capacity) must commit every deal with zero property violations.
      if (report.committed != deals || !report.violations.empty() ||
          !report.double_spends.empty()) {
        std::printf("  CONFORMANCE FAILURE at deals=%zu threads=%zu\n%s",
                    deals, threads, report.Summary().c_str());
        ok = false;
      }

      bench::JsonReport::Labels labels = {
          {"deals", std::to_string(deals)},
          {"threads", std::to_string(threads)}};
      json.AddMetric("wall_ms", ms, "ms", labels);
      json.AddMetric("deals_per_sec", per_second, "1/s", labels);
      json.AddMetric("committed", static_cast<double>(report.committed), "",
                     labels);
      json.AddMetric("commit_latency_p50",
                     static_cast<double>(report.latency_p50), "ticks",
                     labels);
      json.AddMetric("commit_latency_p99",
                     static_cast<double>(report.latency_p99), "ticks",
                     labels);
      json.AddMetric("gas_per_deal_p50", static_cast<double>(report.gas_p50),
                     "gas", labels);
      json.AddMetric("gas_per_deal_p99", static_cast<double>(report.gas_p99),
                     "gas", labels);
      json.AddMetric("total_gas", static_cast<double>(report.total_gas),
                     "gas", labels);
      json.AddMetric("events_executed",
                     static_cast<double>(report.events_executed), "", labels);
      json.AddMetric("max_backlog", static_cast<double>(report.max_backlog),
                     "", labels);
      json.AddMetric("violations",
                     static_cast<double>(report.violations.size()), "",
                     labels);
    }
  }
  // --- CBC shard sweep: one CBC-heavy workload, S ∈ shard_counts ---
  std::vector<size_t> shard_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "cbc_shards"), {1, 2, 4, 8});
  const char* shard_deals_flag = bench::FlagValue(argc, argv, "shard_deals");
  size_t shard_deals = shard_deals_flag != nullptr
                           ? std::strtoull(shard_deals_flag, nullptr, 10)
                           : 1000;
  if (shard_deals == 0) shard_deals = 1000;

  std::printf("\n=== CBC shard sweep: D=%zu all-CBC deals, one shared "
              "service, deals hashed to S shards ===\n", shard_deals);
  std::printf("%7s %10s %10s %8s %10s %12s\n", "shards", "wall (ms)",
              "deals/s", "commit", "backlog", "deals/ktick");
  double single_shard_rate = 0.0;
  double best_multi_rate = 0.0;
  for (size_t shards : shard_counts) {
    TrafficOptions options = OptionsFor(shard_deals, base_seed, 1);
    options.protocol_mix = {Protocol::kCbc};
    options.cbc_shards = shards;
    auto start = std::chrono::steady_clock::now();
    TrafficReport report = RunTraffic(options);
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - start)
            .count() /
        1000.0;
    double per_second = shard_deals / (ms / 1000.0);
    std::printf("%7zu %10.1f %10.0f %8zu %10zu %12.2f\n", shards, ms,
                per_second, report.committed, report.max_backlog,
                report.deals_per_ktick);

    if (report.committed != shard_deals || !report.violations.empty()) {
      std::printf("  CONFORMANCE FAILURE at shards=%zu\n%s", shards,
                  report.Summary().c_str());
      ok = false;
    }
    if (shards == 1) {
      single_shard_rate = per_second;
    } else {
      best_multi_rate = std::max(best_multi_rate, per_second);
    }

    bench::JsonReport::Labels labels = {
        {"shards", std::to_string(shards)},
        {"deals", std::to_string(shard_deals)}};
    json.AddMetric("shard_sweep_wall_ms", ms, "ms", labels);
    json.AddMetric("shard_sweep_deals_per_sec", per_second, "1/s", labels);
    json.AddMetric("shard_sweep_committed",
                   static_cast<double>(report.committed), "", labels);
    json.AddMetric("shard_sweep_deals_per_ktick", report.deals_per_ktick,
                   "1/kt", labels);
  }
  if (single_shard_rate > 0.0 && best_multi_rate > 0.0) {
    double speedup = best_multi_rate / single_shard_rate;
    std::printf("best multi-shard speedup over S=1: %.2fx\n", speedup);
    json.AddMetric("shard_speedup", speedup, "x",
                   {{"deals", std::to_string(shard_deals)}});
    // The O(D²/S) observation win must be visible: on a 1000-deal CBC-heavy
    // workload it measures >2.5x locally. These are wall-clock timings of
    // separate runs, so leave headroom for noisy CI neighbours: warn below
    // 1x, and only fail the gate when sharding is a clear loss.
    if (speedup <= 0.8) {
      std::printf("SHARD SWEEP FAILURE: S>1 clearly slower than S=1 "
                  "(%.0f vs %.0f deals/s)\n",
                  best_multi_rate, single_shard_rate);
      ok = false;
    } else if (speedup <= 1.0) {
      std::printf("SHARD SWEEP WARNING: S>1 did not beat S=1 this run "
                  "(%.0f vs %.0f deals/s) — expected >2x; check for a "
                  "noisy host before suspecting a regression\n",
                  best_multi_rate, single_shard_rate);
    }
  }

  json.AddMetric("conformance_ok", ok ? 1 : 0);

  if (json_path != nullptr && !json.WriteFile(json_path)) ok = false;
  if (!ok) {
    std::printf("\nTRAFFIC FAILED: violations, nondeterminism, or "
                "non-committing compliant deals\n");
    return 1;
  }
  std::printf("\nall thread counts agree bit-for-bit; every compliant deal "
              "committed\n");
  return 0;
}
