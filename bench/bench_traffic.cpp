// Concurrent multi-deal traffic benchmark: D deals (mixed timelock/CBC)
// contending on a shared chain pool inside one World. Four sections, all
// landing in one BENCH_traffic.json that CI archives and diffs against the
// committed baseline:
//
//   scale sweep    D ∈ {1, 10, 100, 1000} × validation thread counts.
//                  Verifies per cell that the report fingerprint is
//                  identical across thread counts and that the benign
//                  workload is fully conformant.
//
//   shard sweep    CbcService shard count on a CBC-heavy D=1000 workload.
//                  S>1 must beat S=1 (the O(D²) observation win); the gate
//                  fails only below 0.8x to absorb noisy CI hosts.
//
//   rate sweep     THE open-loop section: seeded Poisson arrivals at
//                  λ ∈ --rates (deals per kilotick) against finite block
//                  capacity, each rate run with the admission controller
//                  off and on. Emits latency P50/P99, goodput, sheds per
//                  cell, so the JSON charts the latency knee; the gate
//                  requires the knee to exist (P99 at some rate > 2x the
//                  low-rate P99) and the controller to measurably bound
//                  P99 and goodput at the highest rate. These are
//                  simulated-tick metrics — deterministic, so the gate
//                  cannot flap on a noisy runner.
//
//   frontier       (block capacity × Δ) grid on a fixed-stagger timelock
//                  workload, mapping where Property 3 (strong liveness on
//                  schedule) starts failing — the paper's §5 "large enough
//                  Δ" made quantitative. Emits per-cell violations and a
//                  per-capacity min-safe-Δ; gates on the two corner cells
//                  (ample capacity safe, starved capacity unsafe).
//
//   broker sweep   (brokers × working capital × λ) on a fully brokered
//                  open-loop workload with FIXED ample chain capacity and
//                  the admission controller gating ONLY on broker capital/
//                  inventory occupancy: the knee this section charts is
//                  where working capital, not chain capacity, becomes the
//                  bottleneck (per-cell P99, goodput, sheds/delays, and a
//                  per-(B, λ) knee capital — the largest swept capital at
//                  which the gate had to shed). Gated on the ample corner
//                  being clean, scarcity degrading P99/goodput, and zero
//                  broker portfolio violations anywhere.
//
//   xshard sweep   cross-shard deal fraction (cbc_xshard_every) on an
//                  all-CBC S=4 workload: deals whose assets span shards
//                  settle via portable DecideProofs. Gated on exact
//                  conformance at every fraction, the ≥25% cross-shard
//                  quorum at the stock setting, and zero stale-proof
//                  rejections (nobody replays in a benign run).
//
//   hopchain sweep hop depth × margin pricing on a brokered open-loop
//                  workload: depth-H broker chains (goods walk seller →
//                  B1 → … → BH → buyer atomically) with occupancy-priced
//                  capital. Emits the margin-vs-occupancy market-clearing
//                  curve (bucketed price chart) per depth; gated on zero
//                  portfolio violations everywhere and a genuinely rising
//                  priced curve.
//
//   epoch service  TrafficService (long-lived mode): E epochs of fixed-size
//                  Poisson traffic with towers, brokers, sharded CBC, and
//                  tower-crash injection, run straight through and then
//                  once per checkpoint cadence k ∈ --epoch_cadences with a
//                  full serialize → destroy → restore cycle at every k-th
//                  boundary. Gated on the restored runs' cumulative
//                  fingerprints matching the straight-through run exactly
//                  (epoch_restore_parity), a corrupted snapshot being
//                  rejected (epoch_snapshot_reject_ok), and zero violations
//                  per epoch; also charts snapshot size and checkpoint/
//                  restore wall-time percentiles.
//
// A soak mode, --soak=N, replaces all sections with one long open-loop
// run (controller on) gated on full conformance and cross-thread-count
// fingerprint equality; the nightly workflow runs it at N=5000.
//
// An epoch-soak mode, --epoch_soak=E (with --epoch_deals=D), replaces all
// sections with a long-lived service run of E epochs × D deals, executed
// twice: once straight through and once with a forced kill + restore at
// the midpoint epoch boundary. Gated on bit-identical final fingerprints
// and zero violations; the nightly workflow runs it at E=20, D=5000
// (cumulative 100k deals).
//
// Exit status is nonzero if any gate fails, so this binary doubles as the
// traffic conformance + trajectory gate in CI.
//
// Usage:  bench_traffic [--deals=1,10,100,1000] [--threads=1,8]
//                       [--cbc_shards=1,2,4,8] [--shard_deals=1000]
//                       [--rates=10,20,40,80,160,320] [--rate_deals=300]
//                       [--frontier_caps=2,3,4,6,8]
//                       [--frontier_deltas=120,240,480,960]
//                       [--frontier_deals=60]
//                       [--broker_counts=4,8]
//                       [--broker_capitals=3200,1600,800,400]
//                       [--broker_rates=40,80] [--broker_deals=240]
//                       [--xshard_every=0,4,2,1] [--xshard_deals=200]
//                       [--hop_depths=1,2,3] [--hopchain_deals=160]
//                       [--hopchain_slope=300]
//                       [--bigd_deals=1000,10000,100000]
//                       [--epoch_cadences=1,2,4] [--epoch_count=6]
//                       [--epoch_deals=30]
//                       [--soak=5000] [--epoch_soak=20]
//                       [--json=BENCH_traffic.json] [--seed=1]

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/traffic_engine.h"

using namespace xdeal;

namespace {

TrafficOptions OptionsFor(size_t deals, uint64_t base_seed, size_t threads) {
  TrafficOptions options;
  options.base_seed = base_seed;
  options.num_deals = deals;
  // Scale the shared pool with the workload (≈8 deals per chain) so load
  // per chain stays heavy but bounded as D grows.
  options.num_chains = deals / 8 < 4 ? 4 : deals / 8;
  options.num_threads = threads;
  return options;
}

double WallMs(const std::chrono::steady_clock::time_point& start) {
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
             .count() /
         1000.0;
}

/// The backpressure policy the rate sweep and soak exercise: bound the
/// busiest chain's tx queue, retry a few times, then shed.
AdmissionOptions StockController() {
  AdmissionOptions admission;
  admission.enabled = true;
  admission.max_chain_occupancy = 24;
  admission.retry_delay = 20;
  admission.max_retries = 3;
  return admission;
}

// ---------------------------------------------------------------------------
// Section 1: scale sweep (D × threads) — fingerprint + conformance gate.
// ---------------------------------------------------------------------------
bool RunScaleSweep(int argc, char** argv, uint64_t base_seed,
                   bench::JsonReport* json) {
  std::vector<size_t> deal_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "deals"), {1, 10, 100, 1000});
  std::vector<size_t> thread_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "threads"), {1, 8});

  std::printf("%7s %8s %10s %10s %8s %8s %8s %10s %9s\n", "deals", "threads",
              "wall (ms)", "deals/s", "commit", "lat p50", "lat p99",
              "backlog", "viol");
  bool ok = true;
  for (size_t deals : deal_counts) {
    uint64_t reference_fp = 0;
    bool have_reference = false;
    for (size_t threads : thread_counts) {
      TrafficOptions options = OptionsFor(deals, base_seed, threads);
      auto start = std::chrono::steady_clock::now();
      TrafficReport report = RunTraffic(options);
      double ms = WallMs(start);
      double per_second = deals / (ms / 1000.0);

      std::printf("%7zu %8zu %10.1f %10.0f %8zu %8" PRIu64 " %8" PRIu64
                  " %10zu %9zu\n",
                  deals, threads, ms, per_second, report.committed,
                  report.latency_p50, report.latency_p99,
                  report.max_backlog, report.violations.size());

      if (!have_reference) {
        reference_fp = report.fingerprint;
        have_reference = true;
      } else if (report.fingerprint != reference_fp) {
        std::printf("  FINGERPRINT MISMATCH at deals=%zu threads=%zu: "
                    "%016" PRIx64 " != %016" PRIx64 "\n",
                    deals, threads, report.fingerprint, reference_fp);
        ok = false;
      }
      // Conformance: this benign workload (no injection, unlimited block
      // capacity) must commit every deal with zero property violations.
      if (report.committed != deals || !report.violations.empty() ||
          !report.double_spends.empty()) {
        std::printf("  CONFORMANCE FAILURE at deals=%zu threads=%zu\n%s",
                    deals, threads, report.Summary().c_str());
        ok = false;
      }

      bench::JsonReport::Labels labels = {
          {"deals", std::to_string(deals)},
          {"threads", std::to_string(threads)}};
      json->AddMetric("wall_ms", ms, "ms", labels);
      json->AddMetric("deals_per_sec", per_second, "1/s", labels);
      json->AddMetric("committed", static_cast<double>(report.committed), "",
                      labels);
      json->AddMetric("commit_latency_p50",
                      static_cast<double>(report.latency_p50), "ticks",
                      labels);
      json->AddMetric("commit_latency_p99",
                      static_cast<double>(report.latency_p99), "ticks",
                      labels);
      json->AddMetric("gas_per_deal_p50",
                      static_cast<double>(report.gas_p50), "gas", labels);
      json->AddMetric("gas_per_deal_p99",
                      static_cast<double>(report.gas_p99), "gas", labels);
      json->AddMetric("total_gas", static_cast<double>(report.total_gas),
                      "gas", labels);
      json->AddMetric("events_executed",
                      static_cast<double>(report.events_executed), "",
                      labels);
      json->AddMetric("max_backlog", static_cast<double>(report.max_backlog),
                      "", labels);
      json->AddMetric("violations",
                      static_cast<double>(report.violations.size()), "",
                      labels);
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 2: CBC shard sweep — one CBC-heavy workload, S ∈ shard_counts.
// ---------------------------------------------------------------------------
bool RunShardSweep(int argc, char** argv, uint64_t base_seed,
                   bench::JsonReport* json) {
  std::vector<size_t> shard_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "cbc_shards"), {1, 2, 4, 8});
  const char* shard_deals_flag = bench::FlagValue(argc, argv, "shard_deals");
  size_t shard_deals = shard_deals_flag != nullptr
                           ? std::strtoull(shard_deals_flag, nullptr, 10)
                           : 1000;
  if (shard_deals == 0) shard_deals = 1000;

  std::printf("\n=== CBC shard sweep: D=%zu all-CBC deals, one shared "
              "service, deals hashed to S shards ===\n", shard_deals);
  std::printf("%7s %10s %10s %8s %10s %12s\n", "shards", "wall (ms)",
              "deals/s", "commit", "backlog", "deals/ktick");
  bool ok = true;
  double single_shard_rate = 0.0;
  double best_multi_rate = 0.0;
  for (size_t shards : shard_counts) {
    TrafficOptions options = OptionsFor(shard_deals, base_seed, 1);
    options.protocol_mix = {Protocol::kCbc};
    options.cbc_shards = shards;
    auto start = std::chrono::steady_clock::now();
    TrafficReport report = RunTraffic(options);
    double ms = WallMs(start);
    double per_second = shard_deals / (ms / 1000.0);
    std::printf("%7zu %10.1f %10.0f %8zu %10zu %12.2f\n", shards, ms,
                per_second, report.committed, report.max_backlog,
                report.deals_per_ktick);

    if (report.committed != shard_deals || !report.violations.empty()) {
      std::printf("  CONFORMANCE FAILURE at shards=%zu\n%s", shards,
                  report.Summary().c_str());
      ok = false;
    }
    if (shards == 1) {
      single_shard_rate = per_second;
    } else {
      best_multi_rate = std::max(best_multi_rate, per_second);
    }

    bench::JsonReport::Labels labels = {
        {"shards", std::to_string(shards)},
        {"deals", std::to_string(shard_deals)}};
    json->AddMetric("shard_sweep_wall_ms", ms, "ms", labels);
    json->AddMetric("shard_sweep_deals_per_sec", per_second, "1/s", labels);
    json->AddMetric("shard_sweep_committed",
                    static_cast<double>(report.committed), "", labels);
    json->AddMetric("shard_sweep_deals_per_ktick", report.deals_per_ktick,
                    "1/kt", labels);
  }
  if (single_shard_rate > 0.0 && best_multi_rate > 0.0) {
    double speedup = best_multi_rate / single_shard_rate;
    std::printf("best multi-shard speedup over S=1: %.2fx\n", speedup);
    json->AddMetric("shard_speedup", speedup, "x",
                    {{"deals", std::to_string(shard_deals)}});
    // The O(D²/S) observation win must be visible: on a 1000-deal CBC-heavy
    // workload it measures >2.5x locally. These are wall-clock timings of
    // separate runs, so leave headroom for noisy CI neighbours: warn below
    // 1x, and only fail the gate when sharding is a clear loss.
    if (speedup <= 0.8) {
      std::printf("SHARD SWEEP FAILURE: S>1 clearly slower than S=1 "
                  "(%.0f vs %.0f deals/s)\n",
                  best_multi_rate, single_shard_rate);
      ok = false;
    } else if (speedup <= 1.0) {
      std::printf("SHARD SWEEP WARNING: S>1 did not beat S=1 this run "
                  "(%.0f vs %.0f deals/s) — expected >2x; check for a "
                  "noisy host before suspecting a regression\n",
                  best_multi_rate, single_shard_rate);
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 3: open-loop arrival-rate sweep — the latency/goodput knee, with
// the admission controller off and on at every rate.
// ---------------------------------------------------------------------------
bool RunRateSweep(int argc, char** argv, uint64_t base_seed,
                  bench::JsonReport* json) {
  std::vector<size_t> rates = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "rates"), {10, 20, 40, 80, 160, 320});
  const char* deals_flag = bench::FlagValue(argc, argv, "rate_deals");
  size_t rate_deals = deals_flag != nullptr
                          ? std::strtoull(deals_flag, nullptr, 10)
                          : 300;
  if (rate_deals == 0) rate_deals = 300;

  std::printf("\n=== open-loop rate sweep: D=%zu Poisson arrivals at λ "
              "deals/ktick, block capacity 6 on 4 chains, controller "
              "off/on ===\n", rate_deals);
  std::printf("%7s %5s %8s %6s %6s %6s %8s %8s %10s\n", "rate", "ctrl",
              "commit", "shed", "delay", "viol", "lat p50", "lat p99",
              "goodput/kt");

  bool ok = true;
  // Per-rate records for the knee analysis, controller-off and -on.
  struct Cell {
    size_t rate = 0;
    Tick p99_off = 0, p99_on = 0;
    double goodput_off = 0, goodput_on = 0;
    size_t shed_on = 0;
  };
  std::vector<Cell> cells;

  for (size_t rate : rates) {
    if (rate == 0) continue;
    Cell cell;
    cell.rate = rate;
    for (int controlled = 0; controlled <= 1; ++controlled) {
      TrafficOptions options;
      options.base_seed = base_seed;
      options.num_deals = rate_deals;
      options.num_chains = 4;
      options.block_capacity = 6;
      options.arrival = ArrivalProcess::kPoisson;
      options.mean_interarrival = 1000.0 / static_cast<double>(rate);
      if (controlled != 0) options.admission = StockController();

      auto start = std::chrono::steady_clock::now();
      TrafficReport report = RunTraffic(options);
      double ms = WallMs(start);

      std::printf("%7zu %5s %8zu %6zu %6zu %6zu %8" PRIu64 " %8" PRIu64
                  " %10.2f\n",
                  rate, controlled != 0 ? "on" : "off", report.committed,
                  report.shed, report.delayed_deals,
                  report.violations.size(), report.latency_p50,
                  report.latency_p99, report.deals_per_ktick);

      bench::JsonReport::Labels labels = {
          {"rate", std::to_string(rate)},
          {"controller", controlled != 0 ? "on" : "off"},
          {"deals", std::to_string(rate_deals)}};
      json->AddMetric("rate_sweep_latency_p50",
                      static_cast<double>(report.latency_p50), "ticks",
                      labels);
      json->AddMetric("rate_sweep_latency_p99",
                      static_cast<double>(report.latency_p99), "ticks",
                      labels);
      json->AddMetric("rate_sweep_goodput_per_ktick", report.deals_per_ktick,
                      "1/kt", labels);
      json->AddMetric("rate_sweep_offered_per_ktick",
                      report.offered_per_ktick, "1/kt", labels);
      json->AddMetric("rate_sweep_committed",
                      static_cast<double>(report.committed), "", labels);
      json->AddMetric("rate_sweep_shed", static_cast<double>(report.shed),
                      "", labels);
      json->AddMetric("rate_sweep_violations",
                      static_cast<double>(report.violations.size()), "",
                      labels);
      json->AddMetric("rate_sweep_wall_ms", ms, "ms", labels);

      if (controlled == 0) {
        cell.p99_off = report.latency_p99;
        cell.goodput_off = report.deals_per_ktick;
        // The lowest rate must be a clean baseline: open-loop arrivals at
        // a trickle are just a sparser version of the conformant stagger.
        if (rate == rates.front() &&
            (report.committed != rate_deals || !report.violations.empty())) {
          std::printf("  RATE SWEEP FAILURE: not conformant at the lowest "
                      "rate λ=%zu\n%s", rate, report.Summary().c_str());
          ok = false;
        }
      } else {
        cell.p99_on = report.latency_p99;
        cell.goodput_on = report.deals_per_ktick;
        cell.shed_on = report.shed;
      }
    }
    cells.push_back(cell);
  }

  if (cells.size() >= 2) {
    // Knee: the first rate whose controller-off P99 exceeds 2x the P99 at
    // the lowest (uncongested) rate. All simulated ticks — deterministic.
    const Tick base_p99 = cells.front().p99_off;
    size_t knee_rate = 0;
    for (const Cell& cell : cells) {
      if (cell.p99_off > 2 * base_p99) {
        knee_rate = cell.rate;
        break;
      }
    }
    json->AddMetric("rate_sweep_knee_rate",
                    static_cast<double>(knee_rate), "1/kt",
                    {{"deals", std::to_string(rate_deals)}});
    if (knee_rate == 0) {
      std::printf("RATE SWEEP FAILURE: no latency knee found — P99 never "
                  "exceeded 2x the low-rate baseline (%" PRIu64
                  " ticks); the sweep is not reaching congestion\n",
                  base_p99);
      ok = false;
    } else {
      std::printf("latency knee at λ=%zu deals/ktick (low-rate P99 %" PRIu64
                  " ticks)\n", knee_rate, base_p99);
    }

    // Past the knee the controller must earn its keep: bounded tail
    // latency, load actually shed, and better goodput than the
    // uncontrolled collapse. Deterministic in simulated time.
    const Cell& top = cells.back();
    if (knee_rate != 0) {
      if (top.shed_on == 0) {
        std::printf("RATE SWEEP FAILURE: controller shed nothing at "
                    "λ=%zu\n", top.rate);
        ok = false;
      }
      if (top.p99_on >= top.p99_off) {
        std::printf("RATE SWEEP FAILURE: controller did not bound P99 at "
                    "λ=%zu (%" PRIu64 " >= %" PRIu64 " ticks)\n",
                    top.rate, top.p99_on, top.p99_off);
        ok = false;
      }
      if (top.goodput_on <= top.goodput_off) {
        std::printf("RATE SWEEP FAILURE: controller did not improve "
                    "goodput at λ=%zu (%.2f <= %.2f per ktick)\n",
                    top.rate, top.goodput_on, top.goodput_off);
        ok = false;
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 4: block-capacity × Δ conformance frontier (Property 3).
// ---------------------------------------------------------------------------
bool RunFrontier(int argc, char** argv, uint64_t base_seed,
                 bench::JsonReport* json) {
  std::vector<size_t> caps = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "frontier_caps"), {2, 3, 4, 6, 8});
  std::vector<size_t> deltas = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "frontier_deltas"),
      {120, 240, 480, 960});
  const char* deals_flag = bench::FlagValue(argc, argv, "frontier_deals");
  size_t frontier_deals = deals_flag != nullptr
                              ? std::strtoull(deals_flag, nullptr, 10)
                              : 60;
  if (frontier_deals == 0) frontier_deals = 60;

  std::printf("\n=== capacity × Δ frontier: D=%zu timelock deals on 2 "
              "chains, 20-tick stagger — where Property 3 starts failing "
              "===\n", frontier_deals);
  std::printf("%5s", "cap");
  for (size_t delta : deltas) std::printf("  Δ=%-10zu", delta);
  std::printf("%14s\n", "min safe Δ");

  bool ok = true;
  size_t corner_safe_violations = SIZE_MAX;     // largest cap, smallest Δ
  size_t corner_starved_violations = 0;         // smallest cap, smallest Δ
  for (size_t cap : caps) {
    std::printf("%5zu", cap);
    size_t min_safe_delta = 0;
    for (size_t delta : deltas) {
      TrafficOptions options;
      options.base_seed = base_seed;
      options.num_deals = frontier_deals;
      options.num_chains = 2;
      options.block_capacity = cap;
      options.admission_gap = 20;
      options.delta = delta;
      options.protocol_mix = {Protocol::kTimelock};
      TrafficReport report = RunTraffic(options);

      size_t violations = report.violations.size();
      std::printf("  %3zu/%-3zu%s", report.committed, violations,
                  violations == 0 ? "ok " : "   ");
      if (violations == 0 && min_safe_delta == 0) min_safe_delta = delta;
      if (cap == caps.back() && delta == deltas.front()) {
        corner_safe_violations = violations;
      }
      if (cap == caps.front() && delta == deltas.front()) {
        corner_starved_violations = violations;
      }

      bench::JsonReport::Labels labels = {
          {"capacity", std::to_string(cap)},
          {"delta", std::to_string(delta)},
          {"deals", std::to_string(frontier_deals)}};
      json->AddMetric("frontier_committed",
                      static_cast<double>(report.committed), "", labels);
      json->AddMetric("frontier_violations",
                      static_cast<double>(violations), "", labels);
      json->AddMetric("frontier_latency_p99",
                      static_cast<double>(report.latency_p99), "ticks",
                      labels);
    }
    std::printf("%10zu\n", min_safe_delta);
    json->AddMetric("frontier_min_safe_delta",
                    static_cast<double>(min_safe_delta), "ticks",
                    {{"capacity", std::to_string(cap)},
                     {"deals", std::to_string(frontier_deals)}});
  }
  std::printf("(cells are committed/violations; 'ok' = Property 3 held; "
              "min safe Δ = 0 means no swept Δ rescues that capacity)\n");

  // The frontier must actually be a frontier: ample capacity safe at the
  // stock Δ, starved capacity unsafe — both deterministic.
  if (corner_safe_violations != 0) {
    std::printf("FRONTIER FAILURE: %zu violations at the ample-capacity "
                "corner (cap=%zu, Δ=%zu) — the safe region vanished\n",
                corner_safe_violations, caps.back(), deltas.front());
    ok = false;
  }
  if (corner_starved_violations == 0) {
    std::printf("FRONTIER FAILURE: zero violations at the starved corner "
                "(cap=%zu, Δ=%zu) — the sweep no longer reaches the "
                "unsafe region\n", caps.front(), deltas.front());
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 5: broker capital-contention sweep — (brokers × capital × λ) on a
// fully brokered workload; chain capacity is fixed and ample, so the knee
// this section locates is where WORKING CAPITAL becomes the bottleneck.
// ---------------------------------------------------------------------------
bool RunBrokerSweep(int argc, char** argv, uint64_t base_seed,
                    bench::JsonReport* json) {
  std::vector<size_t> broker_counts = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "broker_counts"), {4, 8});
  std::vector<size_t> capitals = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "broker_capitals"),
      {3200, 1600, 800, 400});
  // The gates compare against the most generous capital and knee_capital
  // means "largest capital at which the gate shed" — both require a
  // descending sweep, so enforce it regardless of flag order.
  std::sort(capitals.begin(), capitals.end(),
            [](size_t a, size_t b) { return a > b; });
  std::vector<size_t> rates = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "broker_rates"), {40, 80});
  const char* deals_flag = bench::FlagValue(argc, argv, "broker_deals");
  size_t broker_deals = deals_flag != nullptr
                            ? std::strtoull(deals_flag, nullptr, 10)
                            : 240;
  if (broker_deals == 0) broker_deals = 240;

  std::printf("\n=== broker sweep: D=%zu brokered Poisson deals, block "
              "capacity 24 on 4 chains (ample), admission gated on broker "
              "capital/inventory only ===\n", broker_deals);
  std::printf("%8s %8s %6s %8s %6s %6s %8s %8s %10s %8s\n", "brokers",
              "capital", "rate", "commit", "shed", "delay", "lat p50",
              "lat p99", "goodput/kt", "viol");

  bool ok = true;
  for (size_t brokers : broker_counts) {
    for (size_t rate : rates) {
      if (rate == 0) continue;
      // Capitals are swept largest-first (sorted above): the first cell
      // is the ample corner the gates compare against.
      Tick ample_p99 = 0;
      double ample_goodput = 0.0;
      size_t knee_capital = 0;  // largest capital at which the gate shed
      Tick last_p99 = 0;
      double last_goodput = 0.0;
      size_t last_shed = 0;
      for (size_t capital : capitals) {
        TrafficOptions options;
        options.base_seed = base_seed;
        options.num_deals = broker_deals;
        options.num_chains = 4;
        options.block_capacity = 24;  // fixed and ample: not the bottleneck
        options.arrival = ArrivalProcess::kPoisson;
        options.mean_interarrival = 1000.0 / static_cast<double>(rate);
        options.brokers.num_brokers = brokers;
        options.brokers.working_capital = capital;
        options.brokers.inventory = 64;
        options.admission.enabled = true;  // broker signal is the only gate
        options.admission.retry_delay = 25;
        options.admission.max_retries = 8;

        auto start = std::chrono::steady_clock::now();
        TrafficReport report = RunTraffic(options);
        double ms = WallMs(start);

        std::printf("%8zu %8zu %6zu %8zu %6zu %6zu %8" PRIu64 " %8" PRIu64
                    " %10.2f %8zu\n",
                    brokers, capital, rate, report.committed, report.shed,
                    report.delayed_deals, report.latency_p50,
                    report.latency_p99, report.deals_per_ktick,
                    report.violations.size());

        if (capital == capitals.front()) {
          ample_p99 = report.latency_p99;
          ample_goodput = report.deals_per_ktick;
          // The ample corner must be clean: with enough capital the broker
          // gate never fires, so any shed/violation here means the
          // contention is NOT coming from capital.
          if (report.shed != 0 || report.committed != broker_deals ||
              !report.violations.empty()) {
            std::printf("  BROKER SWEEP FAILURE: ample-capital corner not "
                        "clean at B=%zu λ=%zu\n%s",
                        brokers, rate, report.Summary().c_str());
            ok = false;
          }
        }
        if (report.shed > 0 && knee_capital == 0) knee_capital = capital;
        last_p99 = report.latency_p99;
        last_goodput = report.deals_per_ktick;
        last_shed = report.shed;

        // Compliant brokers must end whole in every cell — the portfolio
        // check is the cross-deal conformance gate of this section.
        if (report.broker_portfolio_violations != 0) {
          std::printf("  BROKER SWEEP FAILURE: %zu portfolio violations at "
                      "B=%zu capital=%zu λ=%zu\n%s",
                      report.broker_portfolio_violations, brokers, capital,
                      rate, report.Summary().c_str());
          ok = false;
        }

        bench::JsonReport::Labels labels = {
            {"brokers", std::to_string(brokers)},
            {"capital", std::to_string(capital)},
            {"rate", std::to_string(rate)},
            {"deals", std::to_string(broker_deals)}};
        json->AddMetric("broker_sweep_committed",
                        static_cast<double>(report.committed), "", labels);
        json->AddMetric("broker_sweep_shed",
                        static_cast<double>(report.shed), "", labels);
        json->AddMetric("broker_sweep_delayed",
                        static_cast<double>(report.delayed_deals), "",
                        labels);
        json->AddMetric("broker_sweep_latency_p50",
                        static_cast<double>(report.latency_p50), "ticks",
                        labels);
        json->AddMetric("broker_sweep_latency_p99",
                        static_cast<double>(report.latency_p99), "ticks",
                        labels);
        json->AddMetric("broker_sweep_goodput_per_ktick",
                        report.deals_per_ktick, "1/kt", labels);
        json->AddMetric("broker_sweep_violations",
                        static_cast<double>(report.violations.size()), "",
                        labels);
        json->AddMetric("broker_sweep_portfolio_violations",
                        static_cast<double>(report.broker_portfolio_violations),
                        "", labels);
        json->AddMetric("broker_sweep_blocked_decisions",
                        static_cast<double>(report.broker_blocked), "",
                        labels);
        json->AddMetric("broker_sweep_wall_ms", ms, "ms", labels);
      }

      bench::JsonReport::Labels pair_labels = {
          {"brokers", std::to_string(brokers)},
          {"rate", std::to_string(rate)},
          {"deals", std::to_string(broker_deals)}};
      json->AddMetric("broker_sweep_knee_capital",
                      static_cast<double>(knee_capital), "coins",
                      pair_labels);
      if (knee_capital == 0) {
        std::printf("BROKER SWEEP FAILURE: no capital knee at B=%zu λ=%zu "
                    "— even the smallest capital never forced a shed; the "
                    "sweep is not reaching capital contention\n",
                    brokers, rate);
        ok = false;
      } else {
        std::printf("capital knee at B=%zu λ=%zu: contention begins at "
                    "capital=%zu\n", brokers, rate, knee_capital);
      }
      // Shrinking capital must degrade the workload: at the scarcest
      // capital the gate sheds, the tail stretches (admission waits count
      // toward sojourn latency), and goodput drops below the ample corner.
      if (last_shed == 0 || last_p99 <= ample_p99 ||
          last_goodput >= ample_goodput) {
        std::printf("BROKER SWEEP FAILURE: capital scarcity did not "
                    "degrade B=%zu λ=%zu (shed=%zu, P99 %" PRIu64
                    " vs ample %" PRIu64 ", goodput %.2f vs ample %.2f)\n",
                    brokers, rate, last_shed, last_p99, ample_p99,
                    last_goodput, ample_goodput);
        ok = false;
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 6: cross-shard deal sweep — the fraction of CBC deals whose assets
// span shards (settling via portable DecideProofs) on an all-CBC S=4
// workload. Every metric here is simulated/deterministic, so the gate and
// the baseline diff are exact.
// ---------------------------------------------------------------------------
bool RunXShardSweep(int argc, char** argv, uint64_t base_seed,
                    bench::JsonReport* json) {
  std::vector<size_t> everies = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "xshard_every"), {0, 4, 2, 1});
  const char* deals_flag = bench::FlagValue(argc, argv, "xshard_deals");
  size_t xshard_deals = deals_flag != nullptr
                            ? std::strtoull(deals_flag, nullptr, 10)
                            : 200;
  if (xshard_deals == 0) xshard_deals = 200;

  std::printf("\n=== cross-shard sweep: D=%zu all-CBC deals on 4 shards, "
              "every k-th deal's assets placed across shard chains "
              "(k=0: off) ===\n", xshard_deals);
  std::printf("%7s %8s %8s %8s %8s %8s %10s\n", "every", "commit", "xshard",
              "frac %", "lat p50", "lat p99", "viol");

  bool ok = true;
  for (size_t every : everies) {
    TrafficOptions options;
    options.base_seed = base_seed;
    options.num_deals = xshard_deals;
    options.num_chains = 4;
    options.cbc_shards = 4;
    options.cbc_xshard_every = every;
    options.min_assets = 2;  // spanning deals really span >= 2 shards
    options.protocol_mix = {Protocol::kCbc};

    auto start = std::chrono::steady_clock::now();
    TrafficReport report = RunTraffic(options);
    double ms = WallMs(start);
    double fraction = 100.0 * static_cast<double>(report.cross_shard_deals) /
                      static_cast<double>(xshard_deals);
    std::printf("%7zu %8zu %8zu %7.1f%% %8" PRIu64 " %8" PRIu64 " %10zu\n",
                every, report.committed, report.cross_shard_deals, fraction,
                report.latency_p50, report.latency_p99,
                report.violations.size());

    // Cross-shard settlement must be conformance-invisible: every deal
    // commits at every fraction, and a benign run never trips the
    // stale-proof defense.
    if (report.committed != xshard_deals || !report.violations.empty() ||
        report.stale_decide_rejections != 0) {
      std::printf("  XSHARD SWEEP FAILURE at every=%zu\n%s", every,
                  report.Summary().c_str());
      ok = false;
    }
    if (every == 0 && report.cross_shard_deals != 0) {
      std::printf("  XSHARD SWEEP FAILURE: cross-shard deals reported with "
                  "placement off\n");
      ok = false;
    }
    // The stock setting (every=2) is the issue's acceptance quorum: at
    // least 25%% of CBC deals span >= 2 shards.
    if (every == 2 && report.cross_shard_deals * 4 < report.cbc_deals) {
      std::printf("  XSHARD SWEEP FAILURE: cross-shard quorum lost at "
                  "every=2 (%zu of %zu CBC deals)\n",
                  report.cross_shard_deals, report.cbc_deals);
      ok = false;
    }

    bench::JsonReport::Labels labels = {
        {"every", std::to_string(every)},
        {"deals", std::to_string(xshard_deals)}};
    json->AddMetric("xshard_committed",
                    static_cast<double>(report.committed), "", labels);
    json->AddMetric("xshard_cross_deals",
                    static_cast<double>(report.cross_shard_deals), "",
                    labels);
    json->AddMetric("xshard_violations",
                    static_cast<double>(report.violations.size()), "",
                    labels);
    json->AddMetric("xshard_stale_rejections",
                    static_cast<double>(report.stale_decide_rejections), "",
                    labels);
    json->AddMetric("xshard_latency_p50",
                    static_cast<double>(report.latency_p50), "ticks",
                    labels);
    json->AddMetric("xshard_latency_p99",
                    static_cast<double>(report.latency_p99), "ticks",
                    labels);
    json->AddMetric("xshard_gas_p99", static_cast<double>(report.gas_p99),
                    "gas", labels);
    json->AddMetric("xshard_wall_ms", ms, "ms", labels);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 7: hop-chain sweep — multi-hop broker chains with priced capital.
// Hop depth H ∈ hop_depths, margins flat (slope 0) and occupancy-priced
// (slope hopchain_slope) at each depth; the priced cells chart the
// margin-vs-occupancy market-clearing curve from the per-hop price points.
// ---------------------------------------------------------------------------
bool RunHopChainSweep(int argc, char** argv, uint64_t base_seed,
                      bench::JsonReport* json) {
  std::vector<size_t> depths = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "hop_depths"), {1, 2, 3});
  const char* deals_flag = bench::FlagValue(argc, argv, "hopchain_deals");
  size_t chain_deals = deals_flag != nullptr
                           ? std::strtoull(deals_flag, nullptr, 10)
                           : 160;
  if (chain_deals == 0) chain_deals = 160;
  const char* slope_flag = bench::FlagValue(argc, argv, "hopchain_slope");
  uint64_t priced_slope = slope_flag != nullptr
                              ? std::strtoull(slope_flag, nullptr, 10)
                              : 300;
  if (priced_slope == 0) priced_slope = 300;

  std::printf("\n=== hop-chain sweep: D=%zu brokered Poisson deals, 4 "
              "brokers, depth-H resale chains, margins flat vs "
              "occupancy-priced (slope %" PRIu64 ") ===\n",
              chain_deals, priced_slope);
  std::printf("%6s %7s %8s %6s %6s %8s %8s %8s %10s\n", "depth", "slope",
              "commit", "shed", "viol", "margins", "lat p99", "points",
              "goodput/kt");

  const uint64_t working_capital = 3000;
  const uint64_t flat_margin = BrokerOptions{}.unit_margin;
  bool ok = true;
  for (size_t depth : depths) {
    if (depth == 0) continue;
    for (int priced = 0; priced <= 1; ++priced) {
      const uint64_t slope = priced != 0 ? priced_slope : 0;
      TrafficOptions options;
      options.base_seed = base_seed;
      options.num_deals = chain_deals;
      options.num_chains = 4;
      options.block_capacity = 24;  // ample: capital is the only contention
      options.arrival = ArrivalProcess::kPoisson;
      options.mean_interarrival = 20.0;
      options.brokers.num_brokers = 4;
      options.brokers.working_capital = working_capital;
      options.brokers.inventory = 200;
      options.brokers.hop_depth = depth;
      options.brokers.margin_slope = slope;
      options.admission.enabled = true;  // hop-capital gate + live pricing
      options.admission.retry_delay = 25;
      options.admission.max_retries = 8;

      auto start = std::chrono::steady_clock::now();
      TrafficReport report = RunTraffic(options);
      double ms = WallMs(start);

      // The market-clearing chart: every admitted hop's (occupancy at
      // pricing time, margin charged) point, bucketed by occupancy decile
      // of the working capital.
      constexpr size_t kBuckets = 10;
      struct Bucket {
        double margin_sum = 0;
        size_t count = 0;
      };
      std::vector<Bucket> curve(kBuckets);
      uint64_t margin_min = UINT64_MAX, margin_max = 0;
      size_t points = 0;
      for (const TrafficDealRecord& rec : report.deals) {
        if (rec.shed) continue;
        for (const BrokerPool::PricePoint& point : rec.price_points) {
          size_t bucket = static_cast<size_t>(
              point.occupancy * kBuckets / working_capital);
          if (bucket >= kBuckets) bucket = kBuckets - 1;
          curve[bucket].margin_sum += static_cast<double>(point.margin);
          ++curve[bucket].count;
          margin_min = std::min(margin_min, point.margin);
          margin_max = std::max(margin_max, point.margin);
          ++points;
        }
      }
      if (points == 0) margin_min = 0;

      std::printf("%6zu %7" PRIu64 " %8zu %6zu %6zu %3" PRIu64 "-%-4" PRIu64
                  " %8" PRIu64 " %8zu %10.2f\n",
                  depth, slope, report.committed, report.shed,
                  report.violations.size(), margin_min, margin_max,
                  report.latency_p99, points, report.deals_per_ktick);

      // Conformance everywhere: zero property violations, zero portfolio
      // violations — every compliant hop ends whole at every depth/price.
      if (!report.violations.empty() ||
          report.broker_portfolio_violations != 0 ||
          !report.double_spends.empty() || report.committed == 0) {
        std::printf("  HOPCHAIN SWEEP FAILURE at depth=%zu slope=%" PRIu64
                    "\n%s", depth, slope, report.Summary().c_str());
        ok = false;
      }
      if (report.broker_hop_depth != depth) {
        std::printf("  HOPCHAIN SWEEP FAILURE: effective depth %zu != %zu\n",
                    report.broker_hop_depth, depth);
        ok = false;
      }
      // Flat cells price every hop at the stock margin; priced cells must
      // produce a genuinely rising curve (the market clears: occupancy
      // pushes margins above flat).
      if (priced == 0 && points > 0 &&
          (margin_min != flat_margin || margin_max != flat_margin)) {
        std::printf("  HOPCHAIN SWEEP FAILURE: flat run priced margins "
                    "%" PRIu64 "-%" PRIu64 " (expected %" PRIu64 ")\n",
                    margin_min, margin_max, flat_margin);
        ok = false;
      }
      if (priced != 0 && margin_max <= flat_margin) {
        std::printf("  HOPCHAIN SWEEP FAILURE: priced run never cleared "
                    "above the flat margin at depth=%zu — no occupancy "
                    "pressure reached the price\n", depth);
        ok = false;
      }

      bench::JsonReport::Labels labels = {
          {"depth", std::to_string(depth)},
          {"slope", std::to_string(slope)},
          {"deals", std::to_string(chain_deals)}};
      json->AddMetric("hopchain_committed",
                      static_cast<double>(report.committed), "", labels);
      json->AddMetric("hopchain_shed", static_cast<double>(report.shed), "",
                      labels);
      json->AddMetric("hopchain_violations",
                      static_cast<double>(report.violations.size()), "",
                      labels);
      json->AddMetric("hopchain_portfolio_violations",
                      static_cast<double>(report.broker_portfolio_violations),
                      "", labels);
      json->AddMetric("hopchain_latency_p99",
                      static_cast<double>(report.latency_p99), "ticks",
                      labels);
      json->AddMetric("hopchain_goodput_per_ktick", report.deals_per_ktick,
                      "1/kt", labels);
      json->AddMetric("hopchain_price_points", static_cast<double>(points),
                      "", labels);
      json->AddMetric("hopchain_margin_min",
                      static_cast<double>(margin_min), "coins", labels);
      json->AddMetric("hopchain_margin_max",
                      static_cast<double>(margin_max), "coins", labels);
      json->AddMetric("hopchain_wall_ms", ms, "ms", labels);
      if (priced != 0) {
        for (size_t b = 0; b < kBuckets; ++b) {
          if (curve[b].count == 0) continue;
          bench::JsonReport::Labels point_labels = labels;
          point_labels.push_back(
              {"occupancy_pct", std::to_string(b * 100 / kBuckets)});
          json->AddMetric("hopchain_curve_margin",
                          curve[b].margin_sum /
                              static_cast<double>(curve[b].count),
                          "coins", point_labels);
          json->AddMetric("hopchain_curve_points",
                          static_cast<double>(curve[b].count), "",
                          point_labels);
        }
      }
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 8: big-D scaling — D ∈ {10^3, 10^4, 10^5} open-loop deals under
// indexed observation delivery. The gate is the asymptotic itself: deals/sec
// may degrade by less than 2x per 10x growth in D. Under the old
// scan-the-world observation path the 10^4 → 10^5 step degraded by ~10x
// (O(D²) on the shared CBC chains); the indexed path keeps per-deal cost
// O(own receipts), so throughput stays within constant-factor range.
// ---------------------------------------------------------------------------
bool RunBigD(int argc, char** argv, uint64_t base_seed,
             bench::JsonReport* json) {
  std::vector<size_t> sizes = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "bigd_deals"), {1000, 10000, 100000});

  std::printf("\n=== big-D scaling: open-loop Poisson deals, indexed "
              "observation, 8 CBC shards, controller on ===\n");
  std::printf("%8s %10s %10s %9s %6s %6s %12s %10s\n", "deals", "wall (ms)",
              "deals/s", "commit", "shed", "viol", "deals/ktick",
              "makespan");

  bool ok = true;
  std::vector<std::pair<size_t, double>> rates;  // (D, deals/sec)
  for (size_t deals : sizes) {
    if (deals == 0) continue;
    TrafficOptions options;
    options.base_seed = base_seed;
    options.num_deals = deals;
    // Chains scale with D so per-chain asset load stays bounded, but the 8
    // CBC shard chains are shared by EVERY CBC deal — the former O(D²)
    // observation hot spot this section exists to measure.
    options.num_chains = deals / 8 < 8 ? 8 : deals / 8;
    options.cbc_shards = 8;
    options.arrival = ArrivalProcess::kPoisson;
    options.mean_interarrival = 20.0;
    options.admission = StockController();
    options.indexed_observation = true;

    auto start = std::chrono::steady_clock::now();
    TrafficReport report = RunTraffic(options);
    double ms = WallMs(start);
    double per_second = deals / (ms / 1000.0);
    rates.emplace_back(deals, per_second);

    std::printf("%8zu %10.1f %10.0f %9zu %6zu %6zu %12.2f %10" PRIu64 "\n",
                deals, ms, per_second, report.committed, report.shed,
                report.violations.size(), report.deals_per_ktick,
                report.makespan);

    // Conformance: every deal admitted and committed, zero violations —
    // all deterministic counters, exact-gated against the baseline.
    if (report.committed != deals || report.shed != 0 ||
        !report.violations.empty() || !report.double_spends.empty()) {
      std::printf("  BIG-D FAILURE: non-conformant at D=%zu\n%s", deals,
                  report.Summary().c_str());
      ok = false;
    }

    bench::JsonReport::Labels labels = {{"deals", std::to_string(deals)}};
    json->AddMetric("bigd_wall_ms", ms, "ms", labels);
    json->AddMetric("bigd_deals_per_sec", per_second, "1/s", labels);
    json->AddMetric("bigd_committed", static_cast<double>(report.committed),
                    "", labels);
    json->AddMetric("bigd_shed", static_cast<double>(report.shed), "",
                    labels);
    json->AddMetric("bigd_violations",
                    static_cast<double>(report.violations.size()), "",
                    labels);
    json->AddMetric("bigd_goodput_per_ktick", report.deals_per_ktick, "1/kt",
                    labels);
  }

  // The scaling gate (in-binary, wall-clock — never baseline-diffed): for
  // every 10x step in D, deals/sec must degrade by less than 2x. A revived
  // O(D²) path fails this by a factor of ~10 at the top step, so the 2x
  // bound has ample headroom for noisy hosts while still being fatal to
  // the regression it guards against.
  for (size_t i = 1; i < rates.size(); ++i) {
    double ratio = rates[i - 1].second / rates[i].second;
    std::printf("scaling D=%zu -> D=%zu: deals/sec ratio %.2fx\n",
                rates[i - 1].first, rates[i].first, ratio);
    json->AddMetric("bigd_scaling_ratio", ratio, "x",
                    {{"from", std::to_string(rates[i - 1].first)},
                     {"to", std::to_string(rates[i].first)}});
    if (ratio >= 2.0) {
      std::printf("BIG-D FAILURE: deals/sec degraded %.2fx from D=%zu to "
                  "D=%zu (gate: < 2x per 10x growth) — a super-linear "
                  "observation path is back\n",
                  ratio, rates[i - 1].first, rates[i].first);
      ok = false;
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Soak mode (--soak=N): one long open-loop run, controller on, gated on
// full conformance + cross-thread-count fingerprint equality.
// ---------------------------------------------------------------------------
bool RunSoak(size_t soak_deals, uint64_t base_seed,
             bench::JsonReport* json) {
  std::printf("=== nightly soak: D=%zu open-loop Poisson deals, admission "
              "controller on ===\n", soak_deals);
  bool ok = true;
  uint64_t reference_fp = 0;
  for (size_t threads : {1u, 8u}) {
    TrafficOptions options = OptionsFor(soak_deals, base_seed, threads);
    options.arrival = ArrivalProcess::kPoisson;
    options.mean_interarrival = 20.0;
    // Controller armed with the stock policy: on this uncapped pool it
    // must never fire — a shed here means spurious backpressure.
    options.admission = StockController();

    auto start = std::chrono::steady_clock::now();
    TrafficReport report = RunTraffic(options);
    double ms = WallMs(start);
    double per_second = soak_deals / (ms / 1000.0);
    std::printf("threads=%zu: %.1f ms (%.0f deals/s)\n%s", threads, ms,
                per_second, report.Summary().c_str());

    if (threads == 1) {
      reference_fp = report.fingerprint;
    } else if (report.fingerprint != reference_fp) {
      std::printf("SOAK FAILURE: fingerprint mismatch across thread "
                  "counts\n");
      ok = false;
    }
    if (report.committed != soak_deals || !report.violations.empty() ||
        report.shed != 0 || !report.double_spends.empty()) {
      std::printf("SOAK FAILURE at threads=%zu: non-conformant run\n",
                  threads);
      ok = false;
    }

    bench::JsonReport::Labels labels = {
        {"deals", std::to_string(soak_deals)},
        {"threads", std::to_string(threads)}};
    json->AddMetric("soak_wall_ms", ms, "ms", labels);
    json->AddMetric("soak_deals_per_sec", per_second, "1/s", labels);
    json->AddMetric("soak_committed", static_cast<double>(report.committed),
                    "", labels);
    json->AddMetric("soak_violations",
                    static_cast<double>(report.violations.size()), "",
                    labels);
    json->AddMetric("soak_shed", static_cast<double>(report.shed), "",
                    labels);
    json->AddMetric("soak_latency_p99",
                    static_cast<double>(report.latency_p99), "ticks",
                    labels);
    json->AddMetric("soak_goodput_per_ktick", report.deals_per_ktick,
                    "1/kt", labels);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Section 9: epoch service — TrafficService checkpoint cadence sweep. One
// straight-through reference run, then one run per cadence k that
// serializes, destroys, and restores the service at every k-th epoch
// boundary. Parity and per-epoch conformance are exact-gated; snapshot
// size and checkpoint/restore cycle times are charted.
// ---------------------------------------------------------------------------

/// The epoch-mode workload every epoch cell runs: Poisson traffic with
/// watchtowers (including crash + recovery injection), brokers, and a
/// 2-shard CBC service with cross-shard placement.
TrafficOptions EpochOptions(uint64_t base_seed, size_t deals_per_epoch) {
  TrafficOptions options;
  options.base_seed = base_seed;
  options.num_chains = 4;
  options.deals_per_epoch = deals_per_epoch;
  options.indexed_observation = true;
  options.arrival = ArrivalProcess::kPoisson;
  options.mean_interarrival = 20.0;
  options.watchtower_every = 5;
  options.tower_crash_every = 3;
  options.tower_crash_after = 15;
  options.tower_recover_after = 300;
  options.brokers.num_brokers = 2;
  options.brokers.broker_every = 4;
  options.cbc_shards = 2;
  options.cbc_xshard_every = 2;
  return options;
}

bool RunEpochSection(int argc, char** argv, uint64_t base_seed,
                     bench::JsonReport* json) {
  std::vector<size_t> cadences = bench::ParseSizeList(
      bench::FlagValue(argc, argv, "epoch_cadences"), {1, 2, 4});
  const char* count_flag = bench::FlagValue(argc, argv, "epoch_count");
  size_t epochs = count_flag != nullptr
                      ? std::strtoull(count_flag, nullptr, 10)
                      : 6;
  if (epochs < 2) epochs = 2;
  const char* deals_flag = bench::FlagValue(argc, argv, "epoch_deals");
  size_t per_epoch = deals_flag != nullptr
                         ? std::strtoull(deals_flag, nullptr, 10)
                         : 30;
  if (per_epoch == 0) per_epoch = 30;

  std::printf("\n=== epoch service: %zu epochs x %zu Poisson deals, towers "
              "(with crash+recover), brokers, 2 CBC shards; checkpoint "
              "cadences {",
              epochs, per_epoch);
  for (size_t i = 0; i < cadences.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : ",", cadences[i]);
  }
  std::printf("} ===\n");

  const TrafficOptions options = EpochOptions(base_seed, per_epoch);
  bool ok = true;

  // --- straight-through reference ---
  auto straight_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<TrafficService>> straight =
      TrafficService::Create(options);
  if (!straight.ok()) {
    std::printf("EPOCH FAILURE: Create: %s\n",
                straight.status().ToString().c_str());
    return false;
  }
  for (size_t e = 0; e < epochs; ++e) {
    EpochReport epoch = straight.value()->RunEpoch();
    bench::JsonReport::Labels labels = {
        {"epoch", std::to_string(e)},
        {"per_epoch", std::to_string(per_epoch)}};
    json->AddMetric("epoch_committed",
                    static_cast<double>(epoch.committed), "", labels);
    json->AddMetric("epoch_violations",
                    static_cast<double>(epoch.violations), "", labels);
    json->AddMetric("epoch_double_spends",
                    static_cast<double>(epoch.double_spends), "", labels);
    json->AddMetric("epoch_untagged_gas",
                    static_cast<double>(epoch.untagged_gas), "gas", labels);
    json->AddMetric("epoch_latency_p50",
                    static_cast<double>(epoch.latency_p50), "ticks", labels);
    json->AddMetric("epoch_latency_p99",
                    static_cast<double>(epoch.latency_p99), "ticks", labels);
    if (epoch.violations != 0) {
      std::printf("EPOCH FAILURE: %zu violations in epoch %zu\n",
                  epoch.violations, e);
      ok = false;
    }
  }
  ServiceReport reference = straight.value()->Finish();
  double straight_ms = WallMs(straight_start);
  std::printf("straight-through: %.1f ms, fp=%016" PRIx64 "\n%s",
              straight_ms, reference.final_fingerprint,
              reference.Summary().c_str());
  json->AddMetric("epoch_straight_wall_ms", straight_ms, "ms",
                  {{"epochs", std::to_string(epochs)},
                   {"per_epoch", std::to_string(per_epoch)}});

  // --- cadence sweep: checkpoint + kill + restore at every k-th boundary ---
  std::vector<double> cycle_ms;  // full serialize -> destroy -> restore
  for (size_t cadence : cadences) {
    if (cadence == 0) continue;
    auto run_start = std::chrono::steady_clock::now();
    Result<std::unique_ptr<TrafficService>> service =
        TrafficService::Create(options);
    if (!service.ok()) {
      std::printf("EPOCH FAILURE: Create(cadence=%zu): %s\n", cadence,
                  service.status().ToString().c_str());
      ok = false;
      continue;
    }
    size_t restores = 0;
    double snapshot_bytes = 0;
    for (size_t e = 0; e < epochs; ++e) {
      service.value()->RunEpoch();
      if ((e + 1) % cadence != 0 || e + 1 >= epochs) continue;
      auto cycle_start = std::chrono::steady_clock::now();
      Result<Bytes> snapshot = service.value()->Checkpoint();
      if (!snapshot.ok()) {
        std::printf("EPOCH FAILURE: Checkpoint(cadence=%zu, epoch=%zu): "
                    "%s\n", cadence, e,
                    snapshot.status().ToString().c_str());
        ok = false;
        break;
      }
      snapshot_bytes = static_cast<double>(snapshot.value().size());
      service.value().reset();  // the old process dies here
      Result<std::unique_ptr<TrafficService>> restored =
          TrafficService::FromSnapshot(options, snapshot.value());
      if (!restored.ok()) {
        std::printf("EPOCH FAILURE: FromSnapshot(cadence=%zu, epoch=%zu): "
                    "%s\n", cadence, e,
                    restored.status().ToString().c_str());
        ok = false;
        break;
      }
      service = std::move(restored);
      ++restores;
      cycle_ms.push_back(WallMs(cycle_start));
    }
    if (!service.ok()) continue;
    ServiceReport report = service.value()->Finish();
    double run_ms = WallMs(run_start);
    const bool parity =
        report.final_fingerprint == reference.final_fingerprint &&
        report.Summary() == reference.Summary();
    std::printf("cadence %zu: %zu restores, %.1f ms, fp=%016" PRIx64
                " parity=%s\n",
                cadence, restores, run_ms, report.final_fingerprint,
                parity ? "ok" : "MISMATCH");
    if (!parity) {
      std::printf("EPOCH FAILURE: restored run diverged from the "
                  "straight-through reference at cadence %zu\n", cadence);
      ok = false;
    }

    bench::JsonReport::Labels labels = {
        {"cadence", std::to_string(cadence)},
        {"epochs", std::to_string(epochs)},
        {"per_epoch", std::to_string(per_epoch)}};
    json->AddMetric("epoch_restore_parity", parity ? 1 : 0, "", labels);
    json->AddMetric("epoch_restores", static_cast<double>(restores), "",
                    labels);
    json->AddMetric("epoch_checkpoint_bytes", snapshot_bytes, "bytes",
                    labels);
    json->AddMetric("epoch_run_wall_ms", run_ms, "ms", labels);
  }

  // Recovery-cycle wall-time percentiles across every cadence's cycles
  // (serialize + destroy + restore, the full crash-recovery path).
  if (!cycle_ms.empty()) {
    std::sort(cycle_ms.begin(), cycle_ms.end());
    double p50 = cycle_ms[cycle_ms.size() / 2];
    double p99 = cycle_ms[cycle_ms.size() * 99 / 100];
    std::printf("recovery cycle (checkpoint+restore): p50 %.2f ms, p99 "
                "%.2f ms over %zu cycles\n", p50, p99, cycle_ms.size());
    bench::JsonReport::Labels labels = {
        {"epochs", std::to_string(epochs)},
        {"per_epoch", std::to_string(per_epoch)}};
    json->AddMetric("epoch_recovery_wall_ms_p50", p50, "ms", labels);
    json->AddMetric("epoch_recovery_wall_ms_p99", p99, "ms", labels);
  }

  // --- corrupted snapshot must be rejected, never restored ---
  bool reject_ok = false;
  {
    Result<std::unique_ptr<TrafficService>> service =
        TrafficService::Create(options);
    if (service.ok()) {
      service.value()->RunEpoch();
      Result<Bytes> snapshot = service.value()->Checkpoint();
      if (snapshot.ok()) {
        Bytes corrupt = snapshot.value();
        corrupt[corrupt.size() / 2] ^= 0xFF;
        reject_ok = !TrafficService::FromSnapshot(options, corrupt).ok() &&
                    TrafficService::FromSnapshot(options, snapshot.value())
                        .ok();
      }
    }
  }
  if (!reject_ok) {
    std::printf("EPOCH FAILURE: corrupted snapshot was not rejected (or an "
                "intact one failed to restore)\n");
    ok = false;
  }
  json->AddMetric("epoch_snapshot_reject_ok", reject_ok ? 1 : 0, "",
                  {{"per_epoch", std::to_string(per_epoch)}});
  return ok;
}

// ---------------------------------------------------------------------------
// Epoch-soak mode (--epoch_soak=E): the long-lived service at nightly
// scale. Two runs of E epochs x --epoch_deals deals: straight through, and
// with a forced kill + restore at the midpoint boundary. Exact parity gate.
// ---------------------------------------------------------------------------
bool RunEpochSoak(int argc, char** argv, size_t epochs, uint64_t base_seed,
                  bench::JsonReport* json) {
  const char* deals_flag = bench::FlagValue(argc, argv, "epoch_deals");
  size_t per_epoch = deals_flag != nullptr
                         ? std::strtoull(deals_flag, nullptr, 10)
                         : 5000;
  if (per_epoch == 0) per_epoch = 5000;
  if (epochs < 2) epochs = 2;
  const size_t total = epochs * per_epoch;

  std::printf("=== epoch soak: %zu epochs x %zu deals (%zu cumulative), "
              "forced kill+restore at the midpoint boundary ===\n",
              epochs, per_epoch, total);

  TrafficOptions options = EpochOptions(base_seed, per_epoch);
  // Scale the pool with the per-epoch load (≈8 concurrent deals per chain)
  // and validate on all cores; the fingerprint is thread-count-invariant.
  options.num_chains = per_epoch / 8 < 4 ? 4 : per_epoch / 8;
  options.num_threads = 0;

  bool ok = true;
  auto straight_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<TrafficService>> straight =
      TrafficService::Create(options);
  if (!straight.ok()) {
    std::printf("EPOCH SOAK FAILURE: Create: %s\n",
                straight.status().ToString().c_str());
    return false;
  }
  for (size_t e = 0; e < epochs; ++e) straight.value()->RunEpoch();
  ServiceReport reference = straight.value()->Finish();
  straight.value().reset();
  double straight_ms = WallMs(straight_start);
  std::printf("straight-through: %.1f ms\n%s", straight_ms,
              reference.Summary().c_str());

  const size_t kill_at = epochs / 2;
  auto restored_start = std::chrono::steady_clock::now();
  Result<std::unique_ptr<TrafficService>> service =
      TrafficService::Create(options);
  if (!service.ok()) return false;
  for (size_t e = 0; e < kill_at; ++e) service.value()->RunEpoch();
  Result<Bytes> snapshot = service.value()->Checkpoint();
  if (!snapshot.ok()) {
    std::printf("EPOCH SOAK FAILURE: Checkpoint: %s\n",
                snapshot.status().ToString().c_str());
    return false;
  }
  service.value().reset();  // forced kill
  Result<std::unique_ptr<TrafficService>> restored =
      TrafficService::FromSnapshot(options, snapshot.value());
  if (!restored.ok()) {
    std::printf("EPOCH SOAK FAILURE: FromSnapshot: %s\n",
                restored.status().ToString().c_str());
    return false;
  }
  for (size_t e = kill_at; e < epochs; ++e) restored.value()->RunEpoch();
  ServiceReport report = restored.value()->Finish();
  double restored_ms = WallMs(restored_start);

  const bool parity =
      report.final_fingerprint == reference.final_fingerprint &&
      report.Summary() == reference.Summary();
  std::printf("kill+restore at epoch %zu: %.1f ms (snapshot %zu bytes), "
              "parity=%s\n",
              kill_at, restored_ms, snapshot.value().size(),
              parity ? "ok" : "MISMATCH");
  if (!parity) {
    std::printf("EPOCH SOAK FAILURE: restored run diverged from the "
                "straight-through reference\n");
    ok = false;
  }
  if (report.deals != total || !report.violations.empty() ||
      report.broker_portfolio_violations != 0) {
    std::printf("EPOCH SOAK FAILURE: non-conformant service run\n%s",
                report.Summary().c_str());
    ok = false;
  }

  bench::JsonReport::Labels labels = {
      {"epochs", std::to_string(epochs)},
      {"per_epoch", std::to_string(per_epoch)}};
  json->AddMetric("epoch_soak_parity", parity ? 1 : 0, "", labels);
  json->AddMetric("epoch_soak_committed",
                  static_cast<double>(report.committed), "", labels);
  json->AddMetric("epoch_soak_violations",
                  static_cast<double>(report.violations.size()), "", labels);
  json->AddMetric("epoch_soak_checkpoint_bytes",
                  static_cast<double>(snapshot.value().size()), "bytes",
                  labels);
  json->AddMetric("epoch_soak_straight_wall_ms", straight_ms, "ms", labels);
  json->AddMetric("epoch_soak_restored_wall_ms", restored_ms, "ms", labels);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = bench::FlagValue(argc, argv, "json");
  const char* seed_flag = bench::FlagValue(argc, argv, "seed");
  uint64_t base_seed = seed_flag != nullptr
                           ? std::strtoull(seed_flag, nullptr, 10)
                           : 1;
  if (base_seed == 0) base_seed = 1;

  bench::JsonReport json("bench_traffic");
  json.AddConfig("base_seed", base_seed);
  json.AddConfig("hardware_threads",
                 static_cast<uint64_t>(std::thread::hardware_concurrency()));

  bool ok = true;
  const char* soak_flag = bench::FlagValue(argc, argv, "soak");
  const char* epoch_soak_flag = bench::FlagValue(argc, argv, "epoch_soak");
  if (epoch_soak_flag != nullptr) {
    size_t soak_epochs = std::strtoull(epoch_soak_flag, nullptr, 10);
    json.AddConfig("mode", "epoch_soak");
    ok = RunEpochSoak(argc, argv, soak_epochs, base_seed, &json);
  } else if (soak_flag != nullptr) {
    size_t soak_deals = std::strtoull(soak_flag, nullptr, 10);
    if (soak_deals < 100) soak_deals = 100;
    json.AddConfig("mode", "soak");
    ok = RunSoak(soak_deals, base_seed, &json);
  } else {
    std::printf("=== traffic engine: shared-chain contention workloads, "
                "hardware threads: %u ===\n",
                std::thread::hardware_concurrency());
    ok = RunScaleSweep(argc, argv, base_seed, &json) && ok;
    ok = RunShardSweep(argc, argv, base_seed, &json) && ok;
    ok = RunRateSweep(argc, argv, base_seed, &json) && ok;
    ok = RunFrontier(argc, argv, base_seed, &json) && ok;
    ok = RunBrokerSweep(argc, argv, base_seed, &json) && ok;
    ok = RunXShardSweep(argc, argv, base_seed, &json) && ok;
    ok = RunHopChainSweep(argc, argv, base_seed, &json) && ok;
    ok = RunBigD(argc, argv, base_seed, &json) && ok;
    ok = RunEpochSection(argc, argv, base_seed, &json) && ok;
  }

  json.AddMetric("conformance_ok", ok ? 1 : 0);

  if (json_path != nullptr && !json.WriteFile(json_path)) ok = false;
  if (!ok) {
    std::printf("\nTRAFFIC FAILED: violations, nondeterminism, missing "
                "knee/frontier, or an ineffective admission controller\n");
    return 1;
  }
  std::printf("\nall gates passed: thread counts agree bit-for-bit, benign "
              "workloads conform, the knee and frontier are where the "
              "engine can chart them\n");
  return 0;
}
