// Shared helpers for the benchmark binaries: run a generated (n, m, t) deal
// under either protocol and report per-phase gas and timing, plus the
// machine-readable JSON report writer CI archives as BENCH_*.json artifacts.

#ifndef XDEAL_BENCH_BENCH_UTIL_H_
#define XDEAL_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cbc/cbc_service.h"
#include "core/cbc_run.h"
#include "core/deal_gen.h"
#include "core/protocol_driver.h"
#include "core/timelock_run.h"

namespace xdeal {
namespace bench {

// ---------------------------------------------------------------------------
// Machine-readable bench reports
//
// Schema (stable; diffing two BENCH files means diffing metrics[] by name
// and labels):
//   {
//     "bench": "<binary name>",
//     "git_rev": "<GITHUB_SHA / XDEAL_GIT_REV / unknown>",
//     "config": {"key": "value", ...},
//     "metrics": [
//       {"name": "...", "value": 1.5, "unit": "...",
//        "labels": {"deals": "100", "threads": "8"}},
//       ...
//     ]
//   }
// ---------------------------------------------------------------------------

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string JsonNumber(double value) {
  // JSON has no NaN/Infinity literals — "%g" would print `nan`/`inf` and
  // every downstream parser (including the CI regression gate) would choke
  // on the whole file. Degenerate measurements (a rate over a 0 ms wall
  // time, a percentile of an empty set) serialize as 0 instead.
  if (!std::isfinite(value)) return "0";
  char buf[64];
  // %.12g round-trips every value these benches emit (counts, ticks, ms)
  // without float noise like 0.30000000000000004.
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

/// Collects config + metrics and serializes the report above.
class JsonReport {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void AddConfig(const std::string& key, const std::string& value) {
    config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  }
  void AddConfig(const std::string& key, uint64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void AddConfig(const std::string& key, double value) {
    config_.emplace_back(key, JsonNumber(value));
  }

  void AddMetric(const std::string& name, double value,
                 const std::string& unit = "", const Labels& labels = {}) {
    std::string m = "{\"name\": \"" + JsonEscape(name) +
                    "\", \"value\": " + JsonNumber(value);
    if (!unit.empty()) m += ", \"unit\": \"" + JsonEscape(unit) + "\"";
    if (!labels.empty()) {
      m += ", \"labels\": {";
      for (size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) m += ", ";
        m += "\"" + JsonEscape(labels[i].first) + "\": \"" +
             JsonEscape(labels[i].second) + "\"";
      }
      m += "}";
    }
    m += "}";
    metrics_.push_back(std::move(m));
  }

  /// CI exports GITHUB_SHA; local runs may set XDEAL_GIT_REV.
  static std::string GitRev() {
    const char* rev = std::getenv("GITHUB_SHA");
    if (rev == nullptr || rev[0] == '\0') rev = std::getenv("XDEAL_GIT_REV");
    return rev != nullptr && rev[0] != '\0' ? rev : "unknown";
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + JsonEscape(bench_name_) +
                      "\",\n  \"git_rev\": \"" + JsonEscape(GitRev()) +
                      "\",\n  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + JsonEscape(config_[i].first) +
             "\": " + config_[i].second;
    }
    out += "},\n  \"metrics\": [\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out += "    " + metrics_[i];
      if (i + 1 < metrics_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-encoded
  std::vector<std::string> metrics_;
};

/// `--flag=` argv helper: returns the value after "--name=" or nullptr.
inline const char* FlagValue(int argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

/// Parses "1,2,4,8" into sizes; returns fallback on absence or garbage.
inline std::vector<size_t> ParseSizeList(const char* value,
                                         std::vector<size_t> fallback) {
  if (value == nullptr) return fallback;
  std::vector<size_t> out;
  size_t current = 0;
  bool have_digit = false;
  for (const char* p = value;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<size_t>(*p - '0');
      have_digit = true;
    } else if (*p == ',' || *p == '\0') {
      if (!have_digit) return fallback;
      out.push_back(current);
      current = 0;
      have_digit = false;
      if (*p == '\0') break;
    } else {
      return fallback;
    }
  }
  return out.empty() ? fallback : out;
}

struct DealShape {
  size_t n = 3;       // parties
  size_t m = 2;       // assets
  size_t t = 4;       // transfers (clamped up by the generator)
  size_t chains = 2;  // chains hosting the assets
  uint64_t seed = 1;
};

struct PhaseReport {
  size_t n = 0, m = 0, t = 0;
  uint64_t gas_escrow = 0;
  uint64_t gas_transfer = 0;
  uint64_t gas_commit = 0;       // timelock: votes; CBC: cbc votes + decide
  uint64_t sig_verifies = 0;     // in the commit/decide phase
  uint64_t storage_writes_commit = 0;
  Tick escrow_ticks = 0;         // phase durations measured from receipts
  Tick transfer_ticks = 0;
  Tick commit_ticks = 0;
  bool committed = false;
};

/// Measures phase durations from tagged receipts: duration = last inclusion
/// time within the tag minus the phase's scheduled start.
inline Tick LastInclusion(const World& world, const std::string& tag) {
  Tick last = 0;
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    for (const Receipt& r : world.chain(ChainId{c})->receipts()) {
      if (r.tag == tag && r.status.ok()) {
        last = std::max(last, r.included_at);
      }
    }
  }
  return last;
}

inline uint64_t WritesForTag(const World& world, const std::string& tag) {
  uint64_t writes = 0;
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    for (const Receipt& r : world.chain(ChainId{c})->receipts()) {
      if (r.tag == tag && r.status.ok()) writes += r.storage_writes;
    }
  }
  return writes;
}

/// Knobs for RunProtocolDeal beyond the shape (protocol-specific fields are
/// ignored by the other protocol's driver).
struct ProtocolDealOptions {
  Tick delta = 0;  // 0 = the benches' stock Δ of 120
  bool direct_votes = false;        // timelock
  bool parallel_transfers = false;
  size_t f = 1;                     // CBC validator fault budget
  size_t reconfigs = 0;             // CBC mid-deal validator rotations
};

/// Runs one generated deal of the given shape under either commit protocol
/// through the ProtocolDriver API; all parties compliant. This is the one
/// deal-execution path every bench shares — what used to be parallel
/// RunTimelockDeal/RunCbcDeal implementations.
inline PhaseReport RunProtocolDeal(Protocol protocol, const DealShape& shape,
                                   const ProtocolDealOptions& options = {}) {
  EnvConfig env_config;
  env_config.seed = shape.seed;
  DealEnv env(std::move(env_config));
  GenParams gen;
  gen.n_parties = shape.n;
  gen.m_assets = shape.m;
  gen.t_transfers = shape.t;
  gen.num_chains = shape.chains;
  gen.seed = shape.seed;
  DealSpec spec = GenerateRandomDeal(&env, gen);

  DealTimings timings = DealTimings::DefaultsFor(protocol);
  timings.delta = options.delta != 0 ? options.delta : 120;
  timings.parallel_transfers = options.parallel_transfers;

  std::unique_ptr<CbcService> service;
  std::unique_ptr<ProtocolDriver> driver;
  if (protocol == Protocol::kCbc) {
    CbcService::Options service_options;
    service_options.f = options.f;
    service_options.validator_seed = "bench-" + std::to_string(shape.seed);
    service = std::make_unique<CbcService>(&env.world(), service_options);
    CbcDriver::Options driver_options;
    driver_options.reconfigs_before_claim = options.reconfigs;
    driver = std::make_unique<CbcDriver>(service.get(), driver_options);
  } else {
    TimelockDriver::Options driver_options;
    driver_options.direct_votes = options.direct_votes;
    driver = std::make_unique<TimelockDriver>(driver_options);
  }

  std::unique_ptr<DealRuntime> runtime =
      driver->CreateDeal(&env.world(), spec, timings);
  Status st = runtime->Deploy();
  if (!st.ok()) {
    std::fprintf(stderr, "%s start failed: %s\n", ToString(protocol),
                 st.ToString().c_str());
    return {};
  }
  env.world().scheduler().Run();
  DealResult result = runtime->Collect();

  PhaseReport report;
  report.n = shape.n;
  report.m = spec.NumAssets();
  report.t = spec.NumTransfers();
  report.gas_escrow = result.gas_escrow;
  report.gas_transfer = result.gas_transfer;
  report.gas_commit = result.gas_vote + result.gas_decide;
  report.sig_verifies = result.sig_verifies;
  report.storage_writes_commit =
      protocol == Protocol::kCbc
          ? WritesForTag(env.world(), "decide") +
                WritesForTag(env.world(), "cbc-vote")
          : WritesForTag(env.world(), "commit");
  report.committed = result.committed;
  report.escrow_ticks =
      LastInclusion(env.world(), "escrow") - timings.escrow_time;
  report.transfer_ticks =
      LastInclusion(env.world(), "transfer") - timings.transfer_start;
  report.commit_ticks = result.commit_phase_end - result.decision_open;
  return report;
}

/// Runs one timelock deal of the given shape; all parties compliant.
inline PhaseReport RunTimelockDeal(const DealShape& shape,
                                   bool direct_votes = false,
                                   bool parallel_transfers = false) {
  ProtocolDealOptions options;
  options.direct_votes = direct_votes;
  options.parallel_transfers = parallel_transfers;
  return RunProtocolDeal(Protocol::kTimelock, shape, options);
}

/// Runs one CBC deal of the given shape; all parties compliant.
inline PhaseReport RunCbcDeal(const DealShape& shape, size_t f,
                              size_t reconfigs = 0,
                              bool parallel_transfers = false) {
  ProtocolDealOptions options;
  options.f = f;
  options.reconfigs = reconfigs;
  options.parallel_transfers = parallel_transfers;
  return RunProtocolDeal(Protocol::kCbc, shape, options);
}

/// Builds a k-party ring deal: asset i (on its own chain) moves from party i
/// to party i+1. Each party's only incoming asset lives on one chain, so
/// timelock votes must propagate hop-by-hop around the ring — the worst case
/// behind Figure 7's O(n)Δ commit bound.
struct RingDeal {
  std::unique_ptr<DealEnv> env;
  DealSpec spec;
};

inline RingDeal MakeRingDeal(size_t k, uint64_t seed) {
  RingDeal ring;
  EnvConfig config;
  config.seed = seed;
  ring.env = std::make_unique<DealEnv>(std::move(config));
  ring.spec.deal_id = MakeDealId("ring", seed);
  std::vector<PartyId> parties;
  for (size_t i = 0; i < k; ++i) {
    parties.push_back(ring.env->AddParty("r" + std::to_string(i)));
  }
  ring.spec.parties = parties;
  for (size_t i = 0; i < k; ++i) {
    ChainId chain = ring.env->AddChain("ring-chain-" + std::to_string(i));
    uint32_t asset = ring.env->AddFungibleAsset(
        &ring.spec, chain, "rtok" + std::to_string(i), parties[i]);
    ring.env->Mint(ring.spec, asset, parties[i], 100);
    ring.spec.escrows.push_back({asset, parties[i], 100});
    ring.spec.transfers.push_back(
        {asset, parties[i], parties[(i + 1) % k], 100});
  }
  return ring;
}

/// Runs a ring deal under the timelock protocol and reports the commit
/// phase duration (t0 -> last release).
inline PhaseReport RunTimelockRing(size_t k, uint64_t seed,
                                   bool direct_votes) {
  RingDeal ring = MakeRingDeal(k, seed);
  DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
  timings.delta = 150;
  timings.parallel_transfers = true;  // transfers are independent legs
  TimelockDriver::Options options;
  options.direct_votes = direct_votes;
  TimelockDriver driver(options);
  std::unique_ptr<DealRuntime> runtime =
      driver.CreateDeal(&ring.env->world(), ring.spec, timings);
  if (!runtime->Deploy().ok()) return {};
  ring.env->world().scheduler().Run();
  DealResult result = runtime->Collect();
  PhaseReport report;
  report.n = k;
  report.m = k;
  report.t = k;
  report.gas_commit = result.gas_vote;
  report.sig_verifies = result.sig_verifies;
  report.committed = result.committed;
  report.commit_ticks = result.commit_phase_end - result.decision_open;
  return report;
}

}  // namespace bench
}  // namespace xdeal

#endif  // XDEAL_BENCH_BENCH_UTIL_H_
