// Adversary gallery — the paper's attack scenarios, end to end.
//
//   1. A sweep of deviating-party strategies against the broker deal on
//      both protocols: the deal may abort, but no compliant party is ever
//      worse off (Theorem 5.1, §6.1).
//   2. The §5.3 denial-of-service window: Bob collects everyone's votes and
//      claims his coins while Alice and Carol are driven offline past their
//      forwarding deadlines — Bob ends up with coins AND tickets.
//      "Technically, this outcome is correct because Alice and Carol have
//      deviated from the protocol by not claiming their assets in time."
//   3. The §6.2 proof-of-work fake proof-of-abort: structurally valid, only
//      economics protects the deal; with a BFT CBC the forgery is rejected
//      outright.
//
// Build & run:  ./build/examples/adversary_gallery

#include <cstdio>

#include "cbc/pow.h"
#include "core/adversaries.h"
#include "core/checker.h"
#include "core/env.h"
#include "core/protocol_driver.h"

using namespace xdeal;

namespace {

struct Broker {
  std::unique_ptr<DealEnv> env;
  DealSpec spec;
  PartyId alice, bob, carol;
  uint32_t tickets, coins;
  uint64_t t1, t2;
};

Broker MakeBroker(uint64_t seed, std::unique_ptr<NetworkModel> net = nullptr) {
  Broker b;
  EnvConfig config;
  config.seed = seed;
  config.network = std::move(net);
  b.env = std::make_unique<DealEnv>(std::move(config));
  b.alice = b.env->AddParty("alice");
  b.bob = b.env->AddParty("bob");
  b.carol = b.env->AddParty("carol");
  ChainId tc = b.env->AddChain("ticket-chain");
  ChainId cc = b.env->AddChain("coin-chain");
  b.spec.deal_id = MakeDealId("gallery", seed);
  b.spec.parties = {b.alice, b.bob, b.carol};
  b.tickets = b.env->AddNftAsset(&b.spec, tc, "tickets", b.bob);
  b.coins = b.env->AddFungibleAsset(&b.spec, cc, "coins", b.carol);
  b.t1 = b.env->MintTicket(b.spec, b.tickets, b.bob, "play", "A1", 95);
  b.t2 = b.env->MintTicket(b.spec, b.tickets, b.bob, "play", "A2", 95);
  b.env->Mint(b.spec, b.coins, b.carol, 101);
  b.spec.escrows = {{b.tickets, b.bob, b.t1},
                    {b.tickets, b.bob, b.t2},
                    {b.coins, b.carol, 101}};
  b.spec.transfers = {{b.tickets, b.bob, b.alice, b.t1},
                      {b.tickets, b.bob, b.alice, b.t2},
                      {b.coins, b.carol, b.alice, 101},
                      {b.tickets, b.alice, b.carol, b.t1},
                      {b.tickets, b.alice, b.carol, b.t2},
                      {b.coins, b.alice, b.bob, 100}};
  return b;
}

void RunGallerySweep() {
  std::printf("--- 1. deviation sweep on the broker deal (timelock) ---\n");
  struct Entry {
    const char* name;
    std::function<std::unique_ptr<TimelockParty>()> make;
    uint32_t deviant;
  };
  std::vector<Entry> gallery = {
      {"bob crashes before escrowing",
       [] { return std::make_unique<CrashingTimelockParty>(TlPhase::kEscrow); },
       1},
      {"alice crashes before transferring",
       [] {
         return std::make_unique<CrashingTimelockParty>(TlPhase::kTransfer);
       },
       0},
      {"carol withholds her vote",
       [] { return std::make_unique<VoteWithholdingParty>(); }, 2},
      {"alice shorts bob 1 coin",
       [] { return std::make_unique<ShortTransferParty>(); }, 0},
      {"bob votes 100000 ticks late",
       [] { return std::make_unique<LateVotingParty>(100000); }, 1},
      {"bob double-spends his tickets",
       [] { return std::make_unique<DoubleSpendingParty>(); }, 1},
  };
  std::printf("%-38s %-10s %-22s\n", "deviation", "outcome",
              "compliant parties");
  for (auto& entry : gallery) {
    Broker b = MakeBroker(100 + entry.deviant);
    DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
    timings.delta = 80;
    TimelockDriver driver;
    SingleDeviantFactory factory(entry.deviant, entry.make);
    std::unique_ptr<DealRuntime> runtime =
        driver.CreateDeal(&b.env->world(), b.spec, timings, &factory);
    (void)runtime->Deploy();
    DealChecker checker(&b.env->world(), b.spec,
                        runtime->escrow_contracts());
    checker.CaptureInitial();
    b.env->world().scheduler().Run();
    DealResult r = runtime->Collect();

    std::vector<PartyId> compliant;
    for (PartyId p : b.spec.parties) {
      if (p.v != entry.deviant) compliant.push_back(p);
    }
    bool safe = checker.SafetyHolds(compliant);
    bool live = checker.WeakLivenessHolds(compliant);
    const char* outcome = r.released_contracts == b.spec.NumAssets()
                              ? "COMMIT"
                              : (r.released_contracts == 0 ? "abort"
                                                           : "mixed");
    std::printf("%-38s %-10s safety:%s liveness:%s\n", entry.name, outcome,
                safe ? "OK" : "VIOLATED", live ? "OK" : "VIOLATED");
  }
}

void RunDosWindow() {
  std::printf("\n--- 2. the §5.3 DoS window (timelock) ---\n");
  // Attack window: after the commit phase opens, Alice and Carol are driven
  // offline (their messages are held) until after every vote deadline.
  // Bob has already harvested their votes from his incoming (coin) chain
  // and claims the coins; the ticket chain never sees Alice's and Carol's
  // forwarded votes in time and refunds the tickets... to Bob.
  auto base = std::make_unique<SynchronousNetwork>(1, 10);
  // Votes are cast at t0=440 and included by ~450-460. The attack begins at
  // 450: Alice's and Carol's own votes are already in flight, but they are
  // cut off before they can OBSERVE Bob's vote on the coin chain and
  // forward it to the ticket chain. Bob (untargeted) still forwards
  // Carol's vote to the coin chain, collects the coins, and the ticket
  // escrow times out — refunding the tickets to Bob.
  Tick attack_start = 450;
  Tick attack_end = 3000;  // beyond every deadline
  auto dos = std::make_unique<TargetedDosNetwork>(std::move(base),
                                                  attack_start, attack_end);
  TargetedDosNetwork* dos_ptr = dos.get();
  Broker b = MakeBroker(7, std::move(dos));
  dos_ptr->AddTarget(Endpoint{b.alice.v});
  dos_ptr->AddTarget(Endpoint{b.carol.v});

  DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
  timings.delta = 80;
  TimelockDriver driver;
  std::unique_ptr<DealRuntime> runtime =
      driver.CreateDeal(&b.env->world(), b.spec, timings);
  (void)runtime->Deploy();
  DealChecker checker(&b.env->world(), b.spec,
                      runtime->escrow_contracts());
  checker.CaptureInitial();
  b.env->world().scheduler().Run();
  DealResult r = runtime->Collect();

  auto* registry = b.env->RegistryOf(b.spec, b.tickets);
  auto* token = b.env->TokenOf(b.spec, b.coins);
  auto name_of = [&](Holder h) -> std::string {
    if (!h.is_party()) return "escrow";
    return b.env->world().keys().NameOf(h.party()).value_or("?");
  };
  std::printf("released=%zu refunded=%zu (a MIXED outcome)\n",
              r.released_contracts, r.refunded_contracts);
  std::printf("ticket A1 -> %s, coins: bob=%llu carol=%llu alice=%llu\n",
              name_of(registry->OwnerOf(b.t1)).c_str(),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(b.bob))),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(b.carol))),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(b.alice))));
  PartyVerdict carol_verdict = checker.Evaluate(b.carol);
  std::printf("carol paid but got no tickets: outgoing_transferred=%s "
              "all_incoming_received=%s\n",
              carol_verdict.outgoing_transferred ? "yes" : "no",
              carol_verdict.all_incoming_received ? "yes" : "no");
  std::printf("paper's verdict: this is formally ALLOWED — by failing to "
              "forward/claim within Δ, Alice and Carol deviated (§5.3). "
              "The cure is a larger Δ or watchtowers.\n");

  // Same attack with Δ large enough to outlast the DoS: everyone is safe.
  auto base2 = std::make_unique<SynchronousNetwork>(1, 10);
  auto dos2 = std::make_unique<TargetedDosNetwork>(std::move(base2),
                                                   attack_start, attack_end);
  TargetedDosNetwork* dos2_ptr = dos2.get();
  Broker b2 = MakeBroker(7, std::move(dos2));
  dos2_ptr->AddTarget(Endpoint{b2.alice.v});
  dos2_ptr->AddTarget(Endpoint{b2.carol.v});
  DealTimings timings2 = DealTimings::DefaultsFor(Protocol::kTimelock);
  timings2.delta = 4000;  // Δ chosen to make the DoS "prohibitively expensive"
  std::unique_ptr<DealRuntime> runtime2 =
      driver.CreateDeal(&b2.env->world(), b2.spec, timings2);
  (void)runtime2->Deploy();
  DealChecker checker2(&b2.env->world(), b2.spec,
                       runtime2->escrow_contracts());
  checker2.CaptureInitial();
  b2.env->world().scheduler().Run();
  DealResult r2 = runtime2->Collect();
  std::printf("with Δ=4000 outlasting the attack: released=%zu — %s\n",
              r2.released_contracts,
              checker2.StrongLivenessHolds() ? "deal COMMITS, everyone whole"
                                             : "still broken?!");
}

void RunPowForgery() {
  std::printf("\n--- 3. §6.2 fake proof-of-abort on a PoW CBC ---\n");
  const unsigned difficulty = 12;
  PowChain honest(difficulty);
  honest.Extend(Sha256Digest("startDeal D; commit alice; commit bob; "
                             "commit carol"),
                1);
  for (int i = 0; i < 4; ++i) {
    honest.Extend(Sha256Digest("confirmation"), 100 + i);
  }
  PowChain alice_private(difficulty);
  alice_private.Extend(Sha256Digest("startDeal D; abort alice"), 7);
  for (int i = 0; i < 4; ++i) {
    alice_private.Extend(Sha256Digest("private confirmation"), 900 + i);
  }
  auto honest_proof = honest.ProofSuffix(4);
  auto fake_proof = alice_private.ProofSuffix(4);
  std::printf("honest proof-of-commit verifies: %s\n",
              PowChain::VerifySegment(honest_proof.value(), difficulty).ok()
                  ? "yes"
                  : "no");
  std::printf("alice's PRIVATE proof-of-abort verifies: %s  <- a contract "
              "cannot tell the chains apart\n",
              PowChain::VerifySegment(fake_proof.value(), difficulty).ok()
                  ? "yes"
                  : "no");
  std::printf("economics is the only defense — confirmations needed so the "
              "expected gain of a 30%%-hashpower attacker stays under 1 "
              "coin:\n");
  for (double value : {100.0, 10000.0, 1000000.0}) {
    std::printf("  deal value %8.0f -> %u confirmations\n", value,
                ConfirmationsForValue(value, 0.30, 1.0));
  }
  std::printf("contrast: with a BFT CBC the same forgery carries only f "
              "signatures and is rejected (see cbc_integration_test "
              "FakeProofRejected).\n");
}

}  // namespace

int main() {
  std::printf("=== Adversary gallery: deviations, the DoS window, and PoW "
              "forgeries ===\n\n");
  RunGallerySweep();
  RunDosWindow();
  RunPowForgery();
  return 0;
}
