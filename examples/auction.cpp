// Auction — the §9 example that cannot be expressed as an atomic swap.
//
// Alice auctions a ticket. Bob and Carol submit sealed bids (commit-reveal,
// per the paper's footnote: "Bob and Carol should use a commit-reveal
// pattern to ensure neither can observe the other's bid"). Both bids are
// transferred to Alice inside the deal; Alice transfers the ticket to the
// winner and the losing bid back to the loser. Alice moves assets she did
// not own when the deal started — exactly why no swap protocol can run this.
//
// The deal executes under the CBC commit protocol (§6).
//
// Build & run:  ./build/examples/auction

#include <cstdio>

#include "baseline/htlc_swap.h"
#include "core/cbc_run.h"
#include "core/checker.h"
#include "core/env.h"

using namespace xdeal;

namespace {

/// A sealed bid: commitment = H(bidder || amount || salt).
struct SealedBid {
  PartyId bidder;
  uint64_t amount;
  std::string salt;

  Hash256 Commitment() const {
    ByteWriter w;
    w.U32(bidder.v);
    w.U64(amount);
    w.Str(salt);
    return Sha256Digest(w.bytes());
  }
};

}  // namespace

int main() {
  std::printf("=== §9 auction: Alice sells one ticket to the higher of "
              "Bob's and Carol's sealed bids ===\n\n");

  DealEnv env(EnvConfig{});
  PartyId alice = env.AddParty("alice");
  PartyId bob = env.AddParty("bob");
  PartyId carol = env.AddParty("carol");
  ChainId ticket_chain = env.AddChain("ticket-chain");
  ChainId coin_chain = env.AddChain("coin-chain");

  DealSpec spec;
  spec.deal_id = MakeDealId("auction", 42);
  spec.parties = {alice, bob, carol};
  uint32_t tickets = env.AddNftAsset(&spec, ticket_chain, "ticket", alice);
  uint32_t coins = env.AddFungibleAsset(&spec, coin_chain, "coins", alice);
  uint64_t ticket = env.MintTicket(spec, tickets, alice, "opera", "box-1", 99);
  env.Mint(spec, coins, bob, 90);
  env.Mint(spec, coins, carol, 95);

  // --- commit-reveal bidding (off-deal; the clearing phase) ---
  SealedBid bob_bid{bob, 90, "bob-salt-7261"};
  SealedBid carol_bid{carol, 95, "carol-salt-1893"};
  std::printf("sealed commitments published:\n  bob:   %s\n  carol: %s\n",
              bob_bid.Commitment().ShortHex().c_str(),
              carol_bid.Commitment().ShortHex().c_str());
  // Reveal: each bidder opens; everyone recomputes and checks.
  bool bob_ok = bob_bid.Commitment() == SealedBid{bob, 90, "bob-salt-7261"}
                                            .Commitment();
  bool carol_ok =
      carol_bid.Commitment() ==
      SealedBid{carol, 95, "carol-salt-1893"}.Commitment();
  std::printf("reveals verified: bob=%s carol=%s\n", bob_ok ? "yes" : "NO",
              carol_ok ? "yes" : "NO");
  const SealedBid& winner = carol_bid.amount > bob_bid.amount ? carol_bid
                                                              : bob_bid;
  const SealedBid& loser = carol_bid.amount > bob_bid.amount ? bob_bid
                                                             : carol_bid;
  std::printf("winner: %s at %llu coins (loser bid %llu is returned)\n\n",
              env.world().keys().NameOf(winner.bidder).value().c_str(),
              static_cast<unsigned long long>(winner.amount),
              static_cast<unsigned long long>(loser.amount));

  // --- the deal: both bids escrowed and moved to Alice; Alice returns the
  //     losing bid and hands over the ticket ---
  spec.escrows = {{tickets, alice, ticket},
                  {coins, bob, bob_bid.amount},
                  {coins, carol, carol_bid.amount}};
  spec.transfers = {
      {coins, bob, alice, bob_bid.amount},
      {coins, carol, alice, carol_bid.amount},
      {coins, alice, loser.bidder, loser.amount},   // losing bid returned
      {tickets, alice, winner.bidder, ticket},      // ticket to the winner
  };
  std::printf("swap-expressible? %s  (Alice redistributes assets she did "
              "not own at the start)\n\n",
              IsSwapExpressible(spec) ? "yes" : "no — deals only");

  // --- execute under the CBC protocol ---
  CbcService::Options service_options;
  service_options.validator_seed = "auction-cbc";
  CbcService service(&env.world(), service_options);
  CbcRun run(&env.world(), spec, CbcConfig{}, &service);
  Status st = run.Start();
  if (!st.ok()) {
    std::printf("failed to start: %s\n", st.ToString().c_str());
    return 1;
  }
  DealChecker checker(&env.world(), spec, run.deployment().escrow_contracts);
  checker.CaptureInitial();
  env.world().scheduler().Run();
  CbcResult result = run.Collect();

  std::printf("CBC outcome: %s (atomic: %s)\n",
              DealOutcomeName(result.outcome),
              result.atomic ? "yes" : "NO");

  auto* registry = env.RegistryOf(spec, tickets);
  auto* token = env.TokenOf(spec, coins);
  Holder ticket_owner = registry->OwnerOf(ticket);
  std::printf("ticket owner: %s\n",
              ticket_owner.is_party()
                  ? env.world().keys().NameOf(ticket_owner.party())
                        .value()
                        .c_str()
                  : "escrow");
  std::printf("coins: alice=%llu bob=%llu carol=%llu\n",
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(alice))),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(bob))),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(carol))));
  std::printf("strong liveness: %s\n",
              checker.StrongLivenessHolds() ? "PASS" : "FAIL");
  return checker.StrongLivenessHolds() ? 0 : 1;
}
