// Decentralization demo (§5.1): a five-party ring deal across five
// independent blockchains under the timelock protocol.
//
// "This protocol is decentralized in the sense that there is no single
//  blockchain that must be accessed by all compliant parties." Each party
// here submits transactions to exactly two chains — the chain of its
// incoming asset (to escrow nothing, but vote) and of its outgoing asset
// (to escrow and monitor) — and the deal still commits. The example prints
// the chain-access matrix to make the decentralization visible, then runs
// the same deal on the CBC protocol, where one shared chain (the CBC)
// necessarily appears (§6: no protocol tolerating asynchrony can be
// decentralized).
//
// Build & run:  ./build/examples/five_chain_ring

#include <cstdio>

#include "core/cbc_run.h"
#include "core/checker.h"
#include "core/env.h"
#include "core/timelock_run.h"

using namespace xdeal;

namespace {

constexpr size_t kParties = 5;

struct Ring {
  std::unique_ptr<DealEnv> env;
  DealSpec spec;
  std::vector<PartyId> parties;
};

Ring MakeRing(uint64_t seed) {
  Ring r;
  EnvConfig config;
  config.seed = seed;
  r.env = std::make_unique<DealEnv>(std::move(config));
  r.spec.deal_id = MakeDealId("ring-demo", seed);
  const char* names[kParties] = {"ann", "ben", "cy", "dee", "eve"};
  for (size_t i = 0; i < kParties; ++i) {
    r.parties.push_back(r.env->AddParty(names[i]));
  }
  r.spec.parties = r.parties;
  for (size_t i = 0; i < kParties; ++i) {
    ChainId chain = r.env->AddChain(std::string("chain-") + names[i]);
    uint32_t asset = r.env->AddFungibleAsset(
        &r.spec, chain, std::string("tok-") + names[i], r.parties[i]);
    r.env->Mint(r.spec, asset, r.parties[i], 100);
    r.spec.escrows.push_back({asset, r.parties[i], 100});
    r.spec.transfers.push_back(
        {asset, r.parties[i], r.parties[(i + 1) % kParties], 100});
  }
  return r;
}

void PrintAccessMatrix(const Ring& r, const World& world) {
  std::printf("chain-access matrix (x = party submitted at least one "
              "transaction to that chain):\n%8s", "");
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    std::printf("%12s", world.chain(ChainId{c})->name().c_str());
  }
  std::printf("\n");
  for (PartyId p : r.parties) {
    std::printf("%8s", world.keys().NameOf(p).value().c_str());
    for (uint32_t c = 0; c < world.num_chains(); ++c) {
      bool touched = false;
      for (const Receipt& receipt : world.chain(ChainId{c})->receipts()) {
        touched = touched || receipt.sender == p;
      }
      std::printf("%12s", touched ? "x" : ".");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Five parties, five chains, one ring deal ===\n\n");

  // --- timelock: fully decentralized ---
  {
    Ring r = MakeRing(3);
    TimelockConfig config;
    config.delta = 150;
    config.parallel_transfers = true;  // each leg is independent
    TimelockRun run(&r.env->world(), r.spec, config);
    Status st = run.Start();
    if (!st.ok()) {
      std::printf("start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    DealChecker checker(&r.env->world(), r.spec,
                        run.deployment().escrow_contracts);
    checker.CaptureInitial();
    r.env->world().scheduler().Run();
    TimelockResult result = run.Collect();

    std::printf("timelock protocol: %zu/%zu contracts released, strong "
                "liveness %s\n\n",
                result.released_contracts, r.spec.NumAssets(),
                checker.StrongLivenessHolds() ? "PASS" : "FAIL");
    PrintAccessMatrix(r, r.env->world());
    std::printf("note: no column is touched by every party — no single "
                "blockchain all parties must access (§5.1).\n\n");
  }

  // --- CBC: the certified blockchain is a shared point of contact ---
  {
    Ring r = MakeRing(4);
    CbcService::Options service_options;
    service_options.chain_name = "CBC";
    service_options.validator_seed = "ring-cbc";
    CbcService service(&r.env->world(), service_options);
    CbcRun run(&r.env->world(), r.spec, CbcConfig{}, &service);
    Status st = run.Start();
    if (!st.ok()) {
      std::printf("start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    DealChecker checker(&r.env->world(), r.spec,
                        run.deployment().escrow_contracts);
    checker.CaptureInitial();
    r.env->world().scheduler().Run();
    CbcResult result = run.Collect();

    std::printf("CBC protocol: outcome=%s, strong liveness %s\n\n",
                DealOutcomeName(result.outcome),
                checker.StrongLivenessHolds() ? "PASS" : "FAIL");
    PrintAccessMatrix(r, r.env->world());
    std::printf("note: the CBC column is touched by EVERY party — the "
                "centralization that buys tolerance of asynchrony (§6).\n");
  }
  return 0;
}
