// Quickstart — the paper's running example (Figure 1 / Figure 2).
//
// Alice is a ticket broker. Bob sells two tickets for 100 coins; Carol pays
// 101 coins for them; Alice keeps the 1-coin commission. Tickets live on a
// ticket blockchain, coins on a coin blockchain. The deal executes under the
// timelock commit protocol (§5) with all parties compliant.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/checker.h"
#include "core/env.h"
#include "core/protocol_driver.h"

using namespace xdeal;

namespace {

void PrintHoldings(const char* when, DealEnv& env, const DealSpec& spec,
                   PartyId alice, PartyId bob, PartyId carol,
                   uint32_t tickets, uint32_t coins, uint64_t t1,
                   uint64_t t2) {
  auto* registry = env.RegistryOf(spec, tickets);
  auto* token = env.TokenOf(spec, coins);
  auto owner_name = [&](uint64_t ticket) -> std::string {
    Holder h = registry->OwnerOf(ticket);
    if (!h.valid()) return "nobody";
    if (!h.is_party()) return "escrow contract";
    return env.world().keys().NameOf(h.party()).value_or("?");
  };
  std::printf("%s\n", when);
  std::printf("  ticket A1 owner: %-8s  ticket A2 owner: %s\n",
              owner_name(t1).c_str(), owner_name(t2).c_str());
  std::printf("  coins:  alice=%llu  bob=%llu  carol=%llu\n\n",
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(alice))),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(bob))),
              static_cast<unsigned long long>(
                  token->BalanceOf(Holder::Party(carol))));
}

}  // namespace

int main() {
  std::printf("=== Cross-chain deal quickstart: Alice brokers Bob's "
              "tickets to Carol ===\n\n");

  // --- 1. The world: two independent blockchains, three parties. ---
  DealEnv env(EnvConfig{});
  PartyId alice = env.AddParty("alice");
  PartyId bob = env.AddParty("bob");
  PartyId carol = env.AddParty("carol");
  ChainId ticket_chain = env.AddChain("ticket-chain");
  ChainId coin_chain = env.AddChain("coin-chain");

  // --- 2. Assets: Bob's tickets (NFTs), Carol's coins (fungible). ---
  DealSpec spec;
  spec.deal_id = MakeDealId("quickstart", 1);
  spec.parties = {alice, bob, carol};
  uint32_t tickets = env.AddNftAsset(&spec, ticket_chain, "tickets", bob);
  uint32_t coins = env.AddFungibleAsset(&spec, coin_chain, "coins", carol);
  uint64_t t1 = env.MintTicket(spec, tickets, bob, "hit-play", "orch-A1", 95);
  uint64_t t2 = env.MintTicket(spec, tickets, bob, "hit-play", "orch-A2", 95);
  env.Mint(spec, coins, carol, 101);

  // --- 3. The deal matrix (Figure 1), as escrows + tentative transfers. ---
  spec.escrows = {{tickets, bob, t1}, {tickets, bob, t2}, {coins, carol, 101}};
  spec.transfers = {
      {tickets, bob, alice, t1},   {tickets, bob, alice, t2},
      {coins, carol, alice, 101},  {tickets, alice, carol, t1},
      {tickets, alice, carol, t2}, {coins, alice, bob, 100},
  };

  std::printf("deal digraph arcs (Figure 2):\n");
  for (const auto& [from, to] : spec.Arcs()) {
    std::printf("  %s -> %s\n",
                env.world().keys().NameOf(from).value().c_str(),
                env.world().keys().NameOf(to).value().c_str());
  }
  std::printf("well-formed (strongly connected): %s\n\n",
              spec.IsWellFormed() ? "yes" : "NO");

  PrintHoldings("before the deal:", env, spec, alice, bob, carol, tickets,
                coins, t1, t2);

  // --- 4. Execute under the timelock commit protocol (§5), through the
  //     ProtocolDriver API every harness shares. ---
  DealTimings timings = DealTimings::DefaultsFor(Protocol::kTimelock);
  timings.delta = SuggestDelta(EnvConfig{});
  TimelockDriver driver;
  std::unique_ptr<DealRuntime> runtime =
      driver.CreateDeal(&env.world(), spec, timings);
  Status st = runtime->Deploy();
  if (!st.ok()) {
    std::printf("failed to start: %s\n", st.ToString().c_str());
    return 1;
  }
  DealChecker checker(&env.world(), spec, runtime->escrow_contracts());
  checker.CaptureInitial();

  env.world().scheduler().Run();
  DealResult result = runtime->Collect();

  std::printf("deal executed: %zu/%zu escrow contracts released "
              "(commit phase ended at tick %llu; Δ = %llu)\n\n",
              result.released_contracts, spec.NumAssets(),
              static_cast<unsigned long long>(result.commit_phase_end),
              static_cast<unsigned long long>(timings.delta));

  PrintHoldings("after the deal:", env, spec, alice, bob, carol, tickets,
                coins, t1, t2);

  std::printf("checks: strong liveness (all transfers happened): %s\n",
              checker.StrongLivenessHolds() ? "PASS" : "FAIL");
  for (PartyId p : spec.parties) {
    PartyVerdict v = checker.Evaluate(p);
    std::printf("  %s: got everything expected: %s, safety: %s\n",
                env.world().keys().NameOf(p).value().c_str(),
                v.all_incoming_received ? "yes" : "no",
                v.property1 ? "holds" : "VIOLATED");
  }
  std::printf("\ngas: escrow=%llu transfer=%llu commit=%llu "
              "(signature verifications in commit: %llu)\n",
              static_cast<unsigned long long>(result.gas_escrow),
              static_cast<unsigned long long>(result.gas_transfer),
              static_cast<unsigned long long>(result.gas_vote),
              static_cast<unsigned long long>(result.sig_verifies));
  return checker.StrongLivenessHolds() ? 0 : 1;
}
