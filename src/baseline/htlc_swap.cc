#include "baseline/htlc_swap.h"

#include <algorithm>
#include <cassert>

namespace xdeal {

bool IsSwapExpressible(const DealSpec& spec) {
  // Every asset must be moved exactly once, directly by its escrower.
  std::map<uint32_t, size_t> transfer_count;
  for (const TransferStep& t : spec.transfers) ++transfer_count[t.asset];
  for (const auto& [asset, count] : transfer_count) {
    if (count != 1) return false;
  }
  for (const TransferStep& t : spec.transfers) {
    bool from_is_escrower = false;
    for (const EscrowStep& e : spec.escrows) {
      if (e.asset == t.asset && e.party == t.from) from_is_escrower = true;
    }
    if (!from_is_escrower) return false;  // passes on assets it never owned
  }
  // Every escrowed asset must actually move (otherwise it is pointless).
  for (const EscrowStep& e : spec.escrows) {
    if (transfer_count.find(e.asset) == transfer_count.end()) return false;
  }
  return !spec.transfers.empty();
}

Result<SwapSpec> ToSwapSpec(const DealSpec& spec) {
  if (!IsSwapExpressible(spec)) {
    return Status::FailedPrecondition(
        "deal is not swap-expressible (multi-hop or broker-style transfers)");
  }
  // The arcs must form a single cycle covering all parties.
  std::map<uint32_t, const TransferStep*> next;
  for (const TransferStep& t : spec.transfers) {
    if (next.count(t.from.v) > 0) {
      return Status::FailedPrecondition("swap: party has multiple out-arcs");
    }
    next[t.from.v] = &t;
  }
  if (next.size() != spec.parties.size()) {
    return Status::FailedPrecondition("swap: not a single cycle");
  }
  SwapSpec swap;
  PartyId cur = spec.parties.front();
  for (size_t i = 0; i < spec.parties.size(); ++i) {
    auto it = next.find(cur.v);
    if (it == next.end()) {
      return Status::FailedPrecondition("swap: cycle broken");
    }
    const TransferStep* t = it->second;
    swap.parties.push_back(cur);
    swap.legs.push_back(
        SwapLeg{spec.assets[t->asset], t->from, t->to, t->value});
    cur = t->to;
  }
  if (!(cur == spec.parties.front())) {
    return Status::FailedPrecondition("swap: arcs do not close a cycle");
  }
  return swap;
}

// ---------------------------------------------------------------------------
// SwapParty
// ---------------------------------------------------------------------------

World& SwapParty::world() { return run_->world(); }
const SwapSpec& SwapParty::spec() const { return run_->spec(); }

void SwapParty::FundOwnLeg() {
  if (funded_) return;
  funded_ = true;
  const SwapLeg& leg = spec().legs[index_];
  ByteWriter w;
  w.U64(leg.value);
  world().Submit(self_, leg.asset.chain, run_->ContractIdOfLeg(index_),
                 CallData{"deposit", w.Take()}, "swap-deploy");
}

void SwapParty::ClaimIncoming(const Bytes& secret) {
  if (claimed_) return;
  claimed_ = true;
  size_t incoming = (index_ + spec().legs.size() - 1) % spec().legs.size();
  const SwapLeg& leg = spec().legs[incoming];
  ByteWriter w;
  w.Blob(secret);
  world().Submit(self_, leg.asset.chain, run_->ContractIdOfLeg(incoming),
                 CallData{"claim", w.Take()}, "swap-claim");
}

void SwapParty::OnStart() {
  // Leader (index 0) funds first; everyone else reacts to observations.
  if (index_ == 0) FundOwnLeg();
}

void SwapParty::OnObservedReceipt(const Receipt& receipt) {
  if (!receipt.status.ok()) return;
  size_t k = spec().legs.size();
  // Identify which leg this receipt touches.
  size_t leg_index = k;
  for (size_t i = 0; i < k; ++i) {
    if (spec().legs[i].asset.chain == receipt.chain &&
        run_->ContractIdOfLeg(i) == receipt.contract) {
      leg_index = i;
      break;
    }
  }
  if (leg_index == k) return;

  if (receipt.function == "deposit") {
    // Deployment propagates: we fund after our predecessor funds.
    size_t predecessor = (index_ + k - 1) % k;
    if (leg_index == predecessor && index_ != 0) FundOwnLeg();
    // Leader claims once the last leg (its incoming) is funded.
    if (index_ == 0 && leg_index == k - 1) {
      ClaimIncoming(run_->leader_secret());
    }
    return;
  }
  if (receipt.function == "claim") {
    // Our outgoing leg was claimed: the secret is now public — claim our
    // incoming leg with it.
    if (leg_index == index_) {
      const HtlcContract* contract = run_->ContractOfLeg(index_);
      if (contract != nullptr && contract->revealed_secret().has_value()) {
        ClaimIncoming(*contract->revealed_secret());
      }
    }
  }
}

void SwapParty::OnRefundWatch() {
  const HtlcContract* contract = run_->ContractOfLeg(index_);
  if (contract == nullptr || !contract->funded() || contract->claimed() ||
      contract->refunded()) {
    return;
  }
  const SwapLeg& leg = spec().legs[index_];
  world().Submit(self_, leg.asset.chain, run_->ContractIdOfLeg(index_),
                 CallData{"refund", {}}, "swap-refund");
}

// ---------------------------------------------------------------------------
// HtlcSwapRun
// ---------------------------------------------------------------------------

HtlcSwapRun::HtlcSwapRun(World* world, SwapSpec spec, SwapConfig config,
                         StrategyFactory factory)
    : world_(world), spec_(std::move(spec)), config_(config) {
  for (size_t i = 0; i < spec_.parties.size(); ++i) {
    PartyId p = spec_.parties[i];
    std::unique_ptr<SwapParty> strategy;
    if (factory) strategy = factory(p);
    if (!strategy) strategy = std::make_unique<SwapParty>();
    strategy->run_ = this;
    strategy->self_ = p;
    strategy->index_ = i;
    parties_[p.v] = std::move(strategy);
  }
}

HtlcContract* HtlcSwapRun::ContractOfLeg(size_t leg) const {
  return world_->chain(spec_.legs[leg].asset.chain)
      ->As<HtlcContract>(contracts_[leg]);
}

Tick HtlcSwapRun::TimeoutOfLeg(size_t leg) const {
  // Strictly decreasing along the cycle: leg i times out at
  // start + (2k - i) * deploy_gap + claim_margin.
  size_t k = spec_.legs.size();
  return config_.start_time +
         static_cast<Tick>(2 * k - leg) * config_.deploy_gap +
         config_.claim_margin;
}

Status HtlcSwapRun::Start() {
  if (spec_.parties.size() < 2 || spec_.legs.size() != spec_.parties.size()) {
    return Status::InvalidArgument("swap: need a cycle of >= 2 parties");
  }
  // The leader's secret and hashlock.
  ByteWriter w;
  w.Str("swap-secret");
  w.U32(spec_.parties.front().v);
  secret_ = Sha256Digest(w.bytes()).bytes.size() ? Bytes(32) : Bytes();
  Hash256 seed = Sha256Digest(w.bytes());
  std::copy(seed.bytes.begin(), seed.bytes.end(), secret_.begin());
  hashlock_ = Sha256Digest(secret_);

  // Deploy one HTLC per leg on the leg's chain.
  for (size_t i = 0; i < spec_.legs.size(); ++i) {
    const SwapLeg& leg = spec_.legs[i];
    Blockchain* chain = world_->chain(leg.asset.chain);
    if (chain == nullptr) return Status::NotFound("swap: chain missing");
    contracts_.push_back(chain->Deploy(std::make_unique<HtlcContract>(
        leg.asset.kind, leg.asset.token, leg.from, leg.to, hashlock_,
        TimeoutOfLeg(i))));
  }

  // Approvals (setup, untimed in the analysis).
  for (size_t i = 0; i < spec_.legs.size(); ++i) {
    const SwapLeg& leg = spec_.legs[i];
    Holder spender = Holder::OfContract(contracts_[i]);
    ByteWriter args;
    if (leg.asset.kind == AssetKind::kFungible) {
      args.U8(static_cast<uint8_t>(spender.kind));
      args.U32(spender.id);
      args.U64(leg.value);
    } else {
      args.U64(leg.value);
      args.U8(static_cast<uint8_t>(spender.kind));
      args.U32(spender.id);
    }
    size_t leg_copy = i;
    world_->scheduler().ScheduleAt(
        config_.setup_time, EventLabel::Timer(spec_.legs[i].from.v),
        [this, leg_copy, a = args.Take()]() mutable {
          const SwapLeg& l = spec_.legs[leg_copy];
          world_->Submit(l.from, l.asset.chain, l.asset.token,
                         CallData{"approve", std::move(a)}, "setup");
        });
  }

  // Observation wiring: every party watches every leg's chain.
  std::set<ChainId> chains;
  for (const SwapLeg& leg : spec_.legs) chains.insert(leg.asset.chain);
  for (const auto& [pid, strategy] : parties_) {
    SwapParty* raw = strategy.get();
    for (ChainId c : chains) {
      world_->chain(c)->Subscribe(
          world_->PartyEndpoint(PartyId{pid}),
          [raw](const Receipt& r) { raw->OnObservedReceipt(r); });
    }
  }

  // Kickoff + refund watchdogs.
  for (const auto& [pid, strategy] : parties_) {
    SwapParty* raw = strategy.get();
    world_->scheduler().ScheduleAt(config_.start_time, EventLabel::Timer(pid),
                                   [raw] { raw->OnStart(); });
    Tick watch = TimeoutOfLeg(raw->index_) + config_.refund_margin;
    world_->scheduler().ScheduleAt(watch, EventLabel::Timer(pid),
                                   [raw] { raw->OnRefundWatch(); });
  }
  return Status::OK();
}

SwapResult HtlcSwapRun::Collect() const {
  SwapResult result;
  result.all_claimed = true;
  result.all_refunded = true;
  for (size_t i = 0; i < spec_.legs.size(); ++i) {
    const HtlcContract* c = ContractOfLeg(i);
    if (c == nullptr) continue;
    if (c->claimed()) ++result.claimed_legs;
    if (c->refunded()) ++result.refunded_legs;
    result.all_claimed = result.all_claimed && c->claimed();
    result.all_refunded = result.all_refunded && c->refunded();
  }
  for (uint32_t c = 0; c < world_->num_chains(); ++c) {
    const Blockchain* chain = world_->chain(ChainId{c});
    for (const Receipt& r : chain->receipts()) {
      if (!r.status.ok()) continue;
      if (r.tag == "swap-deploy") result.gas_deploy += r.gas_used;
      if (r.tag == "swap-claim") {
        result.gas_claim += r.gas_used;
        result.settle_time = std::max(result.settle_time, r.included_at);
      }
      if (r.tag == "swap-refund") {
        result.gas_refund += r.gas_used;
        result.settle_time = std::max(result.settle_time, r.included_at);
      }
    }
  }
  return result;
}

}  // namespace xdeal
