// HTLC atomic cross-chain swap — the baseline protocol (paper §8).
//
// In a swap "each party transfers an asset directly to another party and
// halts". We implement the hashed-timelock construction (Herlihy PODC'18,
// specialized to a single leader on a swap cycle):
//
//   - the leader generates a secret s and publishes H(s);
//   - party v_i funds an HTLC paying its outgoing asset to v_{i+1},
//     hash-locked on H(s), with timeout T_i strictly decreasing in i, after
//     observing v_{i-1}'s contract funded (deployment propagates along the
//     cycle);
//   - the leader claims its incoming asset by revealing s on-chain; the
//     revealed secret propagates backwards as each party claims in turn;
//   - if anything stalls, timeouts refund depositors, and the decreasing-
//     timeout discipline guarantees every compliant party that pays also
//     gets paid.
//
// The point of the baseline (experiment E9): swaps cover direct pairwise
// exchanges but cannot express deals where a party transfers assets it does
// not initially own — the paper's broker (Figure 1) and auction (§9)
// examples. IsSwapExpressible() checks exactly that.

#ifndef XDEAL_BASELINE_HTLC_SWAP_H_
#define XDEAL_BASELINE_HTLC_SWAP_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "chain/world.h"
#include "contracts/htlc.h"
#include "core/deal_spec.h"

namespace xdeal {

/// One leg of a swap: `from` pays `value` of `asset` to `to`.
struct SwapLeg {
  AssetRef asset;
  PartyId from;
  PartyId to;
  uint64_t value = 0;
};

/// A swap: legs forming (at least) one cycle through all parties; leader is
/// parties[0] == legs[0].from.
struct SwapSpec {
  std::vector<PartyId> parties;  // cycle order
  std::vector<SwapLeg> legs;     // leg i: parties[i] -> parties[i+1 mod k]
};

/// True if `spec` can be run as an atomic swap: every asset is transferred
/// exactly once, directly from its escrower, in one hop — i.e. no party
/// passes on assets it did not bring to the deal.
bool IsSwapExpressible(const DealSpec& spec);

/// Converts a swap-expressible DealSpec whose arcs form a single cycle into
/// a SwapSpec. Fails for broker/auction-style deals.
Result<SwapSpec> ToSwapSpec(const DealSpec& spec);

struct SwapConfig {
  Tick setup_time = 0;
  Tick start_time = 20;
  Tick deploy_gap = 40;   // used only to size timeouts; deployment is
                          // event-driven (on observing the predecessor)
  Tick claim_margin = 40;
  Tick refund_margin = 20;
};

class HtlcSwapRun;

/// Per-party swap strategy; default is compliant.
class SwapParty {
 public:
  virtual ~SwapParty() = default;

  PartyId self() const { return self_; }

  /// Leader only: fund the first HTLC.
  virtual void OnStart();
  /// Receipt observed on some chain (funding and claim notifications).
  virtual void OnObservedReceipt(const Receipt& receipt);
  /// Refund watchdog for our own deposit.
  virtual void OnRefundWatch();

 protected:
  friend class HtlcSwapRun;

  World& world();
  const SwapSpec& spec() const;
  HtlcSwapRun& run() { return *run_; }

  void FundOwnLeg();
  void ClaimIncoming(const Bytes& secret);

  HtlcSwapRun* run_ = nullptr;
  PartyId self_;
  size_t index_ = 0;  // position in the cycle
  bool funded_ = false;
  bool claimed_ = false;
};

struct SwapResult {
  bool all_claimed = false;
  bool all_refunded = false;
  size_t claimed_legs = 0;
  size_t refunded_legs = 0;
  Tick settle_time = 0;
  uint64_t gas_deploy = 0;
  uint64_t gas_claim = 0;
  uint64_t gas_refund = 0;
};

class HtlcSwapRun {
 public:
  using StrategyFactory = std::function<std::unique_ptr<SwapParty>(PartyId)>;

  HtlcSwapRun(World* world, SwapSpec spec, SwapConfig config,
              StrategyFactory factory = nullptr);

  Status Start();
  SwapResult Collect() const;

  World& world() { return *world_; }
  const SwapSpec& spec() const { return spec_; }
  const SwapConfig& config() const { return config_; }
  const Hash256& hashlock() const { return hashlock_; }
  const Bytes& leader_secret() const { return secret_; }
  HtlcContract* ContractOfLeg(size_t leg) const;
  ContractId ContractIdOfLeg(size_t leg) const { return contracts_[leg]; }
  Tick TimeoutOfLeg(size_t leg) const;

 private:
  World* world_;
  SwapSpec spec_;
  SwapConfig config_;
  Bytes secret_;
  Hash256 hashlock_;
  std::vector<ContractId> contracts_;  // parallel to legs
  std::map<uint32_t, std::unique_ptr<SwapParty>> parties_;
};

}  // namespace xdeal

#endif  // XDEAL_BASELINE_HTLC_SWAP_H_
