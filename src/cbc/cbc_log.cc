#include "cbc/cbc_log.h"

#include <algorithm>

namespace xdeal {

namespace {

Result<Hash256> ReadHash32(ByteReader& args) {
  auto bytes = args.Raw(32);
  if (!bytes.ok()) return bytes.status();
  Hash256 h;
  std::copy(bytes.value().begin(), bytes.value().end(), h.bytes.begin());
  return h;
}

}  // namespace

Result<Bytes> CbcLogContract::Invoke(CallContext& ctx, const std::string& fn,
                                     ByteReader& args) {
  Status st;
  if (fn == "startDeal") {
    st = HandleStartDeal(ctx, args);
  } else if (fn == "commit") {
    st = HandleVote(ctx, args, /*is_abort=*/false);
  } else if (fn == "abort") {
    st = HandleVote(ctx, args, /*is_abort=*/true);
  } else {
    st = Status::NotFound("CbcLog: unknown function " + fn);
  }
  if (!st.ok()) return st;
  return Bytes{};
}

Status CbcLogContract::HandleStartDeal(CallContext& ctx, ByteReader& args) {
  auto deal_id = ReadHash32(args);
  if (!deal_id.ok()) return deal_id.status();
  auto count = args.U32();
  if (!count.ok()) return count.status();
  if (count.value() == 0 || count.value() > 4096) {
    return Status::InvalidArgument("startDeal: bad plist size");
  }
  std::vector<PartyId> plist;
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto p = args.U32();
    if (!p.ok()) return p.status();
    plist.push_back(PartyId{p.value()});
  }
  // The calling party must appear in the plist (§6, Clearing Phase).
  if (std::find(plist.begin(), plist.end(), ctx.sender) == plist.end()) {
    return Status::PermissionDenied("startDeal: sender not in plist");
  }
  // "If more than one startDeal for D is recorded on the CBC, the earliest
  //  is considered definitive."
  if (deals_.count(deal_id.value()) > 0) {
    return Status::AlreadyExists("startDeal: deal already started");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  DealRecord record;
  record.deal_id = deal_id.value();
  record.plist = std::move(plist);

  // h: the hash of the definitive startDeal entry — binds escrows to this
  // exact plist and log position.
  ByteWriter w;
  w.Str("xdeal-cbc-startdeal");
  w.Raw(record.deal_id.bytes.data(), 32);
  for (PartyId p : record.plist) w.U32(p.v);
  w.U64(next_order_);
  record.start_hash = Sha256Digest(w.bytes());
  ++next_order_;

  deals_.emplace(record.deal_id, std::move(record));
  return Status::OK();
}

Status CbcLogContract::HandleVote(CallContext& ctx, ByteReader& args,
                                  bool is_abort) {
  auto deal_id = ReadHash32(args);
  if (!deal_id.ok()) return deal_id.status();
  auto h = ReadHash32(args);
  if (!h.ok()) return h.status();

  auto it = deals_.find(deal_id.value());
  if (it == deals_.end()) {
    return Status::NotFound("vote: unknown deal");
  }
  DealRecord& record = it->second;
  if (!(record.start_hash == h.value())) {
    return Status::FailedPrecondition("vote: startDeal hash mismatch");
  }
  // Each voter must be in the start-of-deal plist (§6, Commit Phase).
  if (std::find(record.plist.begin(), record.plist.end(), ctx.sender) ==
      record.plist.end()) {
    return Status::PermissionDenied("vote: sender not in plist");
  }
  // Duplicate identical votes are pointless; reject so parties notice.
  for (const VoteEntry& v : record.votes) {
    if (v.voter == ctx.sender && v.is_abort == is_abort) {
      return Status::AlreadyExists("vote: already recorded");
    }
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  record.votes.push_back(VoteEntry{ctx.sender, is_abort, next_order_++});
  return Status::OK();
}

Result<const CbcLogContract::DealRecord*> CbcLogContract::RecordOf(
    const Hash256& deal_id) const {
  auto it = deals_.find(deal_id);
  if (it == deals_.end()) return Status::NotFound("no such deal");
  return &it->second;
}

DealOutcome CbcLogContract::OutcomeOf(const Hash256& deal_id) const {
  auto it = deals_.find(deal_id);
  if (it == deals_.end()) return kDealActive;
  const DealRecord& record = it->second;

  std::set<PartyId> committed;
  for (const VoteEntry& v : record.votes) {
    if (v.is_abort) {
      // Some party voted abort before every party voted commit.
      return kDealAborted;
    }
    committed.insert(v.voter);
    if (committed.size() == record.plist.size()) {
      // Every party voted commit before any abort: decisive.
      return kDealCommitted;
    }
  }
  return kDealActive;
}

Hash256 CbcLogContract::StartHashOf(const Hash256& deal_id) const {
  auto it = deals_.find(deal_id);
  return it == deals_.end() ? Hash256{} : it->second.start_hash;
}

}  // namespace xdeal
