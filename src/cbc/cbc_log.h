// CbcLogContract: the certified blockchain's deal log (paper §6).
//
// The CBC is "a kind of shared log" with no coordinator: parties publish
// startDeal / commit / abort entries, and the log's total order decides each
// deal's outcome:
//
//   - committed: every party in the plist voted commit before any party
//     voted abort;
//   - aborted:   some party voted abort before every party voted commit
//     (this includes rescinding one's own earlier commit vote).
//
// The contract records entries in order; the ValidatorSet (validators.h)
// reads this state to issue status certificates.

#ifndef XDEAL_CBC_CBC_LOG_H_
#define XDEAL_CBC_CBC_LOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cbc/types.h"
#include "chain/contract.h"

namespace xdeal {

class CbcLogContract : public Contract {
 public:
  struct VoteEntry {
    PartyId voter;
    bool is_abort = false;
    uint64_t order = 0;  // position in the log
  };

  struct DealRecord {
    Hash256 deal_id;
    Hash256 start_hash;        // h of the definitive (earliest) startDeal
    std::vector<PartyId> plist;
    std::vector<VoteEntry> votes;  // in log order
  };

  std::string TypeName() const override { return "CbcLog"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // --- public state ---
  /// Deal record, or NotFound if no startDeal was recorded.
  Result<const DealRecord*> RecordOf(const Hash256& deal_id) const;

  /// The outcome implied by the current log prefix.
  DealOutcome OutcomeOf(const Hash256& deal_id) const;

  /// The h value of the definitive startDeal (zero hash if unknown).
  Hash256 StartHashOf(const Hash256& deal_id) const;

  /// Total entries recorded (for tests).
  uint64_t num_entries() const { return next_order_; }

 private:
  Status HandleStartDeal(CallContext& ctx, ByteReader& args);
  Status HandleVote(CallContext& ctx, ByteReader& args, bool is_abort);

  std::map<Hash256, DealRecord> deals_;
  uint64_t next_order_ = 0;
};

}  // namespace xdeal

#endif  // XDEAL_CBC_CBC_LOG_H_
