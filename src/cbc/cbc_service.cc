#include "cbc/cbc_service.h"

#include <cassert>

namespace xdeal {

namespace {

std::string ShardSuffix(size_t shard) {
  return shard == 0 ? "" : "-s" + std::to_string(shard);
}

}  // namespace

CbcService::CbcService(World* world, Options options)
    : world_(world), options_(std::move(options)) {
  assert(options_.num_shards > 0);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    Blockchain* chain = world_->CreateChain(
        options_.chain_name + ShardSuffix(s), options_.block_interval);
    chain->set_max_txs_per_block(options_.block_capacity);
    shards_.push_back(Shard{
        chain->id(),
        ValidatorSet::Create(options_.f,
                             options_.validator_seed + ShardSuffix(s))});
  }
}

std::unique_ptr<CbcService> CbcService::Attach(
    World* world, Options options,
    const std::vector<uint32_t>& shard_epochs) {
  if (shard_epochs.size() != options.num_shards) return nullptr;
  std::unique_ptr<CbcService> service(
      new CbcService(world, std::move(options), AttachTag{}));
  const Options& opts = service->options_;
  service->shards_.reserve(opts.num_shards);
  for (size_t s = 0; s < opts.num_shards; ++s) {
    std::string want = opts.chain_name + ShardSuffix(s);
    ChainId found;
    for (size_t c = 0; c < world->num_chains(); ++c) {
      ChainId id{static_cast<uint32_t>(c)};
      if (world->chain(id)->name() == want) {
        found = id;
        break;
      }
    }
    if (!found.valid()) return nullptr;
    service->shards_.push_back(Shard{
        found,
        ValidatorSet::Create(opts.f, opts.validator_seed + ShardSuffix(s))});
    // Replay the rotation history: Reconfigure() is a pure function of
    // (seed, epoch), so each replayed certificate is bit-identical to the
    // one the uninterrupted service recorded.
    Shard& shard = service->shards_.back();
    while (shard.validators.epoch() < shard_epochs[s]) {
      shard.reconfig_history.push_back(shard.validators.Reconfigure());
    }
  }
  return service;
}

std::vector<uint32_t> CbcService::ShardEpochs() const {
  std::vector<uint32_t> epochs;
  epochs.reserve(shards_.size());
  for (const Shard& s : shards_) epochs.push_back(s.validators.epoch());
  return epochs;
}

size_t CbcService::ShardOf(const Hash256& deal_id) const {
  // The deal id is already a SHA-256 digest; fold its first 8 bytes into a
  // word. Any fixed byte window of a cryptographic hash is uniform, and
  // using only the id keeps the assignment stable across service instances.
  uint64_t h = 0;
  for (size_t i = 0; i < 8; ++i) {
    h = (h << 8) | deal_id.bytes[i];
  }
  return static_cast<size_t>(h % shards_.size());
}

size_t CbcService::Placement::SpanCount() const {
  size_t count = 1;  // the home shard
  for (size_t i = 0; i < asset_shards.size(); ++i) {
    if (asset_shards[i] == home_shard) continue;
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (asset_shards[j] == asset_shards[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) ++count;
  }
  return count;
}

CbcService::Placement CbcService::PlaceAssets(
    const Hash256& deal_id, const std::vector<ChainId>& asset_chains) const {
  Placement placement;
  placement.home_shard = ShardOf(deal_id);
  placement.asset_shards.reserve(asset_chains.size());
  for (const ChainId& chain : asset_chains) {
    // Assets on non-shard chains (pool chains, examples) settle against the
    // home shard's log directly, like every pre-redesign deal did.
    size_t shard = placement.home_shard;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].chain == chain) {
        shard = s;
        break;
      }
    }
    placement.asset_shards.push_back(shard);
  }
  return placement;
}

StatusCertificate CbcService::IssueStatus(const CbcLogContract& log,
                                          const Hash256& deal_id) const {
  return validators(ShardOf(deal_id)).IssueStatus(log, deal_id);
}

DecideProof CbcService::IssueDecideProof(const CbcLogContract& log,
                                         const Hash256& deal_id,
                                         uint32_t escrow_epoch) const {
  size_t shard = ShardOf(deal_id);
  DecideProof dp;
  dp.shard = static_cast<uint32_t>(shard);
  dp.proof.reconfigs = ReconfigsSince(shard, escrow_epoch);
  dp.proof.status = validators(shard).IssueStatus(log, deal_id);
  return dp;
}

ReconfigCertificate CbcService::Reconfigure(size_t shard) {
  ReconfigCertificate cert = shards_[shard].validators.Reconfigure();
  shards_[shard].reconfig_history.push_back(cert);
  return cert;
}

std::vector<ReconfigCertificate> CbcService::ReconfigsSince(
    size_t shard, uint32_t epoch) const {
  std::vector<ReconfigCertificate> chain;
  for (const ReconfigCertificate& rc : shards_[shard].reconfig_history) {
    if (rc.new_epoch > epoch) chain.push_back(rc);
  }
  return chain;
}

}  // namespace xdeal
