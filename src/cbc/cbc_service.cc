#include "cbc/cbc_service.h"

#include <cassert>

namespace xdeal {

namespace {

std::string ShardSuffix(size_t shard) {
  return shard == 0 ? "" : "-s" + std::to_string(shard);
}

}  // namespace

CbcService::CbcService(World* world, Options options)
    : world_(world), options_(std::move(options)) {
  assert(options_.num_shards > 0);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    Blockchain* chain = world_->CreateChain(
        options_.chain_name + ShardSuffix(s), options_.block_interval);
    chain->set_max_txs_per_block(options_.block_capacity);
    shards_.push_back(Shard{
        chain->id(),
        ValidatorSet::Create(options_.f,
                             options_.validator_seed + ShardSuffix(s))});
  }
}

size_t CbcService::ShardOf(const Hash256& deal_id) const {
  // The deal id is already a SHA-256 digest; fold its first 8 bytes into a
  // word. Any fixed byte window of a cryptographic hash is uniform, and
  // using only the id keeps the assignment stable across service instances.
  uint64_t h = 0;
  for (size_t i = 0; i < 8; ++i) {
    h = (h << 8) | deal_id.bytes[i];
  }
  return static_cast<size_t>(h % shards_.size());
}

StatusCertificate CbcService::IssueStatus(const CbcLogContract& log,
                                          const Hash256& deal_id) const {
  return validators(ShardOf(deal_id)).IssueStatus(log, deal_id);
}

ReconfigCertificate CbcService::Reconfigure(size_t shard) {
  return shards_[shard].validators.Reconfigure();
}

}  // namespace xdeal
