// CbcService: the sharded certified-blockchain backend (§6 at scale).
//
// The paper's CBC protocol routes every deal through ONE certified chain
// backed by ONE validator set. Under multi-deal traffic that chain is the
// first quadratic hotspot: every party of every CBC deal observes every
// receipt the shared log produces, so D concurrent deals cost O(D²)
// observation work (and O(D²) receipt scans at collection time). The classic
// remedy from partial replication (Sutra & Shapiro 2008) applies directly:
// run S independent certified logs, hash each deal to one of them, and let
// each shard carry its own validator set — deals on different shards never
// contend, and a validator reconfiguration on one shard leaves the others'
// certificate chains untouched.
//
// The service is the single point protocol drivers resolve against: given a
// deal id it answers "which chain hosts this deal's log" and "which
// validators certify it", and it serves status certificates from the right
// shard. With num_shards = 1 it degenerates to exactly the paper's single
// shared CBC (bit-identical traffic fingerprints to the pre-sharding code).

#ifndef XDEAL_CBC_CBC_SERVICE_H_
#define XDEAL_CBC_CBC_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "cbc/validators.h"
#include "chain/world.h"
#include "crypto/sha256.h"
#include "util/det.h"

namespace xdeal {

class CbcService {
 public:
  struct Options {
    /// S: independent certified chains, each with its own validator set.
    size_t num_shards = 1;
    /// Per-shard BFT fault budget (3f+1 validators, quorum 2f+1).
    size_t f = 1;
    /// Shard 0's chain is named `chain_name` (matching the single-CBC
    /// convention); shard i > 0 appends "-s<i>".
    std::string chain_name = "cbc";
    /// Validator key seed; same suffix rule as chain_name, so a 1-shard
    /// service reproduces ValidatorSet::Create(f, validator_seed) exactly.
    std::string validator_seed = "cbc";
    Tick block_interval = 10;
    /// Max transactions per block on every shard chain (0 = unlimited).
    uint64_t block_capacity = 0;
  };

  /// Creates the S shard chains in `world` immediately (deterministic chain
  /// ids: shard i is the i-th chain created by this constructor).
  CbcService(World* world, Options options);

  /// Attach mode, for a World restored from a checkpoint: binds to the
  /// already-existing shard chains by name (creating nothing) and replays
  /// ValidatorSet::Reconfigure() on each shard until it reaches
  /// `shard_epochs[s]`. Validator keys and reconfiguration certificates are
  /// pure functions of (seed, epoch), so the replayed sets and the recorded
  /// history are bit-identical to the uninterrupted service's. Returns
  /// nullptr if any shard chain is missing from the world.
  static std::unique_ptr<CbcService> Attach(
      World* world, Options options,
      const std::vector<uint32_t>& shard_epochs);

  /// Current validator epoch of every shard, in shard order — exactly what
  /// a checkpoint must carry for Attach to replay.
  std::vector<uint32_t> ShardEpochs() const;

  size_t num_shards() const { return shards_.size(); }
  size_t f() const { return options_.f; }

  /// Deterministic, stable deal→shard assignment: a function of the deal id
  /// bytes and S only — independent of World state, insertion order, or how
  /// many deals the service has seen.
  XDEAL_DETERMINISTIC size_t ShardOf(const Hash256& deal_id) const;

  ChainId chain(size_t shard) const { return shards_[shard].chain; }
  ValidatorSet& validators(size_t shard) { return shards_[shard].validators; }
  const ValidatorSet& validators(size_t shard) const {
    return shards_[shard].validators;
  }

  /// Where a deal's pieces live once assets — not deals — map to shards: the
  /// deal's *home* shard hosts its CBC log (and issues its certificates),
  /// while each asset maps to the shard whose chain hosts it (assets on
  /// non-shard chains ride on the home shard). `asset_shards` is parallel to
  /// the `asset_chains` input of PlaceAssets.
  struct Placement {
    size_t home_shard = 0;
    std::vector<size_t> asset_shards;

    /// True when any asset settles on a shard other than the home shard —
    /// i.e. some escrow will need a portable DecideProof instead of reading
    /// its own shard's log.
    bool cross_shard() const {
      for (size_t s : asset_shards) {
        if (s != home_shard) return true;
      }
      return false;
    }

    /// Number of distinct shards the deal touches (home shard included).
    size_t SpanCount() const;
  };

  /// Resolves the placement of a deal: home shard from the deal id (so S=1
  /// and single-shard deals behave exactly as before), plus the shard of
  /// each asset chain. This is the one call site answering "which chain
  /// hosts the log / which shard settles this asset" for drivers and runs.
  XDEAL_DETERMINISTIC Placement PlaceAssets(
      const Hash256& deal_id, const std::vector<ChainId>& asset_chains) const;

  /// Serves a status certificate for `deal_id` from its shard's validators
  /// (the log must be the one hosted on that shard's chain).
  XDEAL_DETERMINISTIC StatusCertificate IssueStatus(const CbcLogContract& log,
                                const Hash256& deal_id) const;

  /// Issues the portable decide proof for `deal_id`: the home shard's status
  /// certificate plus the reconfiguration chain from `escrow_epoch` (the
  /// epoch the deal's escrows pinned) to the shard's current epoch. Escrows
  /// on *other* shards verify it against the pinned home-shard validators.
  XDEAL_DETERMINISTIC DecideProof IssueDecideProof(const CbcLogContract& log,
                                                   const Hash256& deal_id,
                                                   uint32_t escrow_epoch) const;

  /// Rotates one shard's validator set and returns the reconfiguration
  /// certificate. Other shards' epochs and keys are untouched. The service
  /// records the certificate so later decide proofs can chain from any
  /// escrow-time epoch (ReconfigsSince).
  ReconfigCertificate Reconfigure(size_t shard);

  /// The recorded reconfiguration chain of `shard` with new_epoch > `epoch`,
  /// in issue order — exactly what a proof built against an epoch-`epoch`
  /// escrow must carry.
  std::vector<ReconfigCertificate> ReconfigsSince(size_t shard,
                                                  uint32_t epoch) const;

  World& world() { return *world_; }

 private:
  struct Shard {
    ChainId chain;
    ValidatorSet validators;
    std::vector<ReconfigCertificate> reconfig_history;
  };

  // Attach-mode constructor: binds shards_ externally (see Attach).
  struct AttachTag {};
  CbcService(World* world, Options options, AttachTag)
      : world_(world), options_(std::move(options)) {}

  World* world_;
  Options options_;
  std::vector<Shard> shards_;
};

}  // namespace xdeal

#endif  // XDEAL_CBC_CBC_SERVICE_H_
