// CbcService: the sharded certified-blockchain backend (§6 at scale).
//
// The paper's CBC protocol routes every deal through ONE certified chain
// backed by ONE validator set. Under multi-deal traffic that chain is the
// first quadratic hotspot: every party of every CBC deal observes every
// receipt the shared log produces, so D concurrent deals cost O(D²)
// observation work (and O(D²) receipt scans at collection time). The classic
// remedy from partial replication (Sutra & Shapiro 2008) applies directly:
// run S independent certified logs, hash each deal to one of them, and let
// each shard carry its own validator set — deals on different shards never
// contend, and a validator reconfiguration on one shard leaves the others'
// certificate chains untouched.
//
// The service is the single point protocol drivers resolve against: given a
// deal id it answers "which chain hosts this deal's log" and "which
// validators certify it", and it serves status certificates from the right
// shard. With num_shards = 1 it degenerates to exactly the paper's single
// shared CBC (bit-identical traffic fingerprints to the pre-sharding code).

#ifndef XDEAL_CBC_CBC_SERVICE_H_
#define XDEAL_CBC_CBC_SERVICE_H_

#include <string>
#include <vector>

#include "cbc/validators.h"
#include "chain/world.h"
#include "crypto/sha256.h"
#include "util/det.h"

namespace xdeal {

class CbcService {
 public:
  struct Options {
    /// S: independent certified chains, each with its own validator set.
    size_t num_shards = 1;
    /// Per-shard BFT fault budget (3f+1 validators, quorum 2f+1).
    size_t f = 1;
    /// Shard 0's chain is named `chain_name` (matching the single-CBC
    /// convention); shard i > 0 appends "-s<i>".
    std::string chain_name = "cbc";
    /// Validator key seed; same suffix rule as chain_name, so a 1-shard
    /// service reproduces ValidatorSet::Create(f, validator_seed) exactly.
    std::string validator_seed = "cbc";
    Tick block_interval = 10;
    /// Max transactions per block on every shard chain (0 = unlimited).
    uint64_t block_capacity = 0;
  };

  /// Creates the S shard chains in `world` immediately (deterministic chain
  /// ids: shard i is the i-th chain created by this constructor).
  CbcService(World* world, Options options);

  size_t num_shards() const { return shards_.size(); }
  size_t f() const { return options_.f; }

  /// Deterministic, stable deal→shard assignment: a function of the deal id
  /// bytes and S only — independent of World state, insertion order, or how
  /// many deals the service has seen.
  XDEAL_DETERMINISTIC size_t ShardOf(const Hash256& deal_id) const;

  ChainId chain(size_t shard) const { return shards_[shard].chain; }
  ValidatorSet& validators(size_t shard) { return shards_[shard].validators; }
  const ValidatorSet& validators(size_t shard) const {
    return shards_[shard].validators;
  }

  ChainId ChainFor(const Hash256& deal_id) const {
    return chain(ShardOf(deal_id));
  }
  ValidatorSet& ValidatorsFor(const Hash256& deal_id) {
    return validators(ShardOf(deal_id));
  }

  /// Serves a status certificate for `deal_id` from its shard's validators
  /// (the log must be the one hosted on that shard's chain).
  XDEAL_DETERMINISTIC StatusCertificate IssueStatus(const CbcLogContract& log,
                                const Hash256& deal_id) const;

  /// Rotates one shard's validator set and returns the reconfiguration
  /// certificate. Other shards' epochs and keys are untouched.
  ReconfigCertificate Reconfigure(size_t shard);

  World& world() { return *world_; }

 private:
  struct Shard {
    ChainId chain;
    ValidatorSet validators;
  };

  World* world_;
  Options options_;
  std::vector<Shard> shards_;
};

}  // namespace xdeal

#endif  // XDEAL_CBC_CBC_SERVICE_H_
