#include "cbc/pow.h"

#include <cmath>

#include "util/serialize.h"

namespace xdeal {

Hash256 PowBlock::ComputeHash(const Hash256& parent,
                              const Hash256& entries_digest, uint64_t height,
                              uint64_t nonce) {
  ByteWriter w;
  w.Str("xdeal-pow-block");
  w.Raw(parent.bytes.data(), 32);
  w.Raw(entries_digest.bytes.data(), 32);
  w.U64(height);
  w.U64(nonce);
  return Sha256Digest(w.bytes());
}

bool MeetsDifficulty(const Hash256& hash, unsigned difficulty_bits) {
  if (difficulty_bits == 0) return true;
  if (difficulty_bits > 64) difficulty_bits = 64;
  uint64_t prefix = hash.Prefix64();
  return (prefix >> (64 - difficulty_bits)) == 0;
}

PowBlock MineBlock(const Hash256& parent, const Hash256& entries_digest,
                   uint64_t height, unsigned difficulty_bits,
                   uint64_t nonce_seed) {
  PowBlock block;
  block.parent = parent;
  block.entries_digest = entries_digest;
  block.height = height;
  for (uint64_t nonce = nonce_seed;; ++nonce) {
    Hash256 h = PowBlock::ComputeHash(parent, entries_digest, height, nonce);
    if (MeetsDifficulty(h, difficulty_bits)) {
      block.nonce = nonce;
      block.hash = h;
      return block;
    }
  }
}

const PowBlock& PowChain::Extend(const Hash256& entries_digest,
                                 uint64_t nonce_seed) {
  Hash256 parent = TipHash();
  uint64_t height = blocks_.size();
  blocks_.push_back(
      MineBlock(parent, entries_digest, height, difficulty_bits_, nonce_seed));
  return blocks_.back();
}

Status PowChain::VerifySegment(const std::vector<PowBlock>& segment,
                               unsigned difficulty_bits) {
  for (size_t i = 0; i < segment.size(); ++i) {
    const PowBlock& b = segment[i];
    Hash256 expect = PowBlock::ComputeHash(b.parent, b.entries_digest,
                                           b.height, b.nonce);
    if (!(expect == b.hash)) {
      return Status::Unverified("pow: block hash mismatch");
    }
    if (!MeetsDifficulty(b.hash, difficulty_bits)) {
      return Status::Unverified("pow: insufficient work");
    }
    if (i > 0) {
      if (!(b.parent == segment[i - 1].hash) ||
          b.height != segment[i - 1].height + 1) {
        return Status::Unverified("pow: broken linkage");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<PowBlock>> PowChain::ProofSuffix(
    size_t k_confirmations) const {
  if (blocks_.size() < k_confirmations + 1) {
    return Status::FailedPrecondition("pow: not enough confirmations yet");
  }
  return std::vector<PowBlock>(blocks_.end() - (k_confirmations + 1),
                               blocks_.end());
}

PowAttackResult SimulatePrivateMiningAttack(const PowAttackParams& params) {
  Rng rng(params.seed);
  PowAttackResult result;
  const unsigned target = params.confirmations + 1;
  // Race until one side has a decisive, k-confirmed chain. The adversary
  // acts first on ties (she watches the public chain and presents her proof
  // the moment it suffices).
  while (result.honest_blocks < target && result.adversary_blocks < target) {
    if (rng.Chance(params.adversary_power)) {
      ++result.adversary_blocks;
    } else {
      ++result.honest_blocks;
    }
  }
  result.success = result.adversary_blocks >= target;
  return result;
}

double AnalyticAttackProbability(double alpha, unsigned confirmations) {
  if (alpha >= 0.5) return 1.0;
  if (alpha <= 0.0) return 0.0;
  // Probability the adversary's Poisson race wins k+1 blocks before the
  // honest majority does; the geometric catch-up bound. Computed by exact
  // binary exponentiation — IEEE-754 multiplies are correctly rounded, so
  // the result is bit-identical everywhere, unlike libm's std::pow (the
  // same reasoning as admission.cc's libm-free -ln(u)). base < 1, so the
  // iteration underflows gracefully toward 0 and can never overflow.
  const double base = alpha / (1.0 - alpha);
  double result = 1.0;
  double sq = base;
  for (unsigned e = confirmations + 1; e != 0; e >>= 1) {
    if (e & 1u) result *= sq;
    sq *= sq;
  }
  return result;
}

unsigned ConfirmationsForValue(double deal_value, double alpha,
                               double acceptable_expected_loss) {
  if (alpha >= 0.5) return ~0u;  // no confirmation count suffices
  unsigned k = 0;
  while (AnalyticAttackProbability(alpha, k) * deal_value >
         acceptable_expected_loss) {
    ++k;
    if (k > 10000) return k;  // degenerate parameters
  }
  return k;
}

}  // namespace xdeal
