// Proof-of-work CBC (paper §6.2, "Proof-of-work (Nakamoto) Consensus").
//
// A proof-of-work CBC lacks finality: a proof of commit or abort can be
// contradicted by a later, heavier fork. The paper describes the attack:
// Alice privately mines a block containing her abort vote while publicly
// voting commit; if her private fork is long enough when the deal resolves,
// she presents the fake proof of abort to her outgoing escrows and the real
// proof of commit to her incoming ones.
//
// Two pieces here:
//   1. PowChain — an actual mined chain: blocks carry entries, mining grinds
//      nonces until the header hash clears a difficulty target, and a proof
//      is a connected segment with k confirmation blocks. Used to
//      demonstrate that a fake abort proof is *structurally valid* — only
//      economics (the race) protects the deal.
//   2. SimulatePrivateMiningAttack — the Monte-Carlo race between the
//      adversary's private fork and the honest chain, driving the
//      confirmation-depth benchmark (E8): success probability decays
//      geometrically in the confirmation count and rises with adversary
//      hash power, which is why "the number of confirmations required should
//      vary depending on the value of the deal".

#ifndef XDEAL_CBC_POW_H_
#define XDEAL_CBC_POW_H_

#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "util/result.h"
#include "util/rng.h"

namespace xdeal {

/// A proof-of-work block: entries digest + parent + nonce.
struct PowBlock {
  Hash256 parent;
  Hash256 entries_digest;  // commitment to this block's entries
  uint64_t height = 0;
  uint64_t nonce = 0;
  Hash256 hash;            // H(parent || entries || height || nonce)

  static Hash256 ComputeHash(const Hash256& parent,
                             const Hash256& entries_digest, uint64_t height,
                             uint64_t nonce);
};

/// True if `hash` clears a difficulty of `difficulty_bits` leading zero bits.
bool MeetsDifficulty(const Hash256& hash, unsigned difficulty_bits);

/// Grinds nonces (starting from a seed) until the block hash clears the
/// difficulty. Intended for small difficulties (<= ~20 bits) in tests.
PowBlock MineBlock(const Hash256& parent, const Hash256& entries_digest,
                   uint64_t height, unsigned difficulty_bits,
                   uint64_t nonce_seed);

/// A chain of mined blocks. Fork choice is longest chain (all blocks share
/// one difficulty, so longest == most work).
class PowChain {
 public:
  explicit PowChain(unsigned difficulty_bits)
      : difficulty_bits_(difficulty_bits) {}

  unsigned difficulty_bits() const { return difficulty_bits_; }
  size_t length() const { return blocks_.size(); }
  const std::vector<PowBlock>& blocks() const { return blocks_; }
  Hash256 TipHash() const {
    return blocks_.empty() ? Hash256{} : blocks_.back().hash;
  }

  /// Mines and appends a block committing to `entries_digest`.
  const PowBlock& Extend(const Hash256& entries_digest, uint64_t nonce_seed);

  /// Verifies a segment: linkage, heights, and difficulty for every block.
  /// This is what an escrow contract can check about a PoW proof — note it
  /// cannot check that the segment is on the *canonical* chain.
  static Status VerifySegment(const std::vector<PowBlock>& segment,
                              unsigned difficulty_bits);

  /// The last `k_confirmations + 1` blocks ending at the tip, as a proof
  /// that the entry in the (k+1)-from-tip block is buried k deep.
  Result<std::vector<PowBlock>> ProofSuffix(size_t k_confirmations) const;

 private:
  unsigned difficulty_bits_;
  std::vector<PowBlock> blocks_;
};

/// Parameters of the private-mining race.
struct PowAttackParams {
  double adversary_power = 0.25;   // fraction of total hash power, in (0, 1)
  unsigned confirmations = 3;      // k blocks required beyond the decisive vote
  uint64_t seed = 1;
};

struct PowAttackResult {
  bool success = false;            // adversary produced the fake abort proof
  unsigned honest_blocks = 0;
  unsigned adversary_blocks = 0;
};

/// One Monte-Carlo trial: honest miners and the adversary race from the
/// deal's start; each successive block belongs to the adversary with
/// probability `adversary_power`. The adversary wins if her private fork
/// reaches confirmations+1 blocks (abort vote + k confirmations) no later
/// than the honest chain confirms the commit decision at the same depth.
PowAttackResult SimulatePrivateMiningAttack(const PowAttackParams& params);

/// Closed-form catch-up probability (alpha/(1-alpha))^(k+1) for alpha < 1/2,
/// 1 otherwise — the classical Nakamoto race bound this simulation tracks.
double AnalyticAttackProbability(double alpha, unsigned confirmations);

/// Smallest confirmation count k such that the analytic attack probability
/// times `deal_value` is below `acceptable_expected_loss` — the paper's
/// "number of confirmations required should vary depending on the value of
/// the deal" made concrete.
unsigned ConfirmationsForValue(double deal_value, double alpha,
                               double acceptable_expected_loss);

}  // namespace xdeal

#endif  // XDEAL_CBC_POW_H_
