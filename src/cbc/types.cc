#include "cbc/types.h"

#include <set>

namespace xdeal {

const char* DealOutcomeName(DealOutcome o) {
  switch (o) {
    case kDealActive: return "active";
    case kDealCommitted: return "committed";
    case kDealAborted: return "aborted";
  }
  return "unknown";
}

Bytes StatusCertificate::Message(const Hash256& deal_id,
                                 const Hash256& start_hash,
                                 DealOutcome outcome, uint32_t epoch) {
  ByteWriter w;
  w.Str("xdeal-cbc-status");
  w.Raw(deal_id.bytes.data(), deal_id.bytes.size());
  w.Raw(start_hash.bytes.data(), start_hash.bytes.size());
  w.U8(outcome);
  w.U32(epoch);
  return w.Take();
}

Bytes ReconfigCertificate::Message(
    uint32_t new_epoch, const std::vector<PublicKey>& new_validators) {
  ByteWriter w;
  w.Str("xdeal-cbc-reconfig");
  w.U32(new_epoch);
  w.U32(static_cast<uint32_t>(new_validators.size()));
  for (const PublicKey& v : new_validators) w.Raw(v.Serialize());
  return w.Take();
}

namespace {

void WriteSigs(ByteWriter* w, const std::vector<ValidatorSig>& sigs) {
  w->U32(static_cast<uint32_t>(sigs.size()));
  for (const ValidatorSig& vs : sigs) {
    w->Raw(vs.validator.Serialize());
    w->Raw(vs.sig.Serialize());
  }
}

Result<std::vector<ValidatorSig>> ReadSigs(ByteReader* r) {
  auto count = r->U32();
  if (!count.ok()) return count.status();
  if (count.value() > 4096) {
    return Status::InvalidArgument("proof: too many signatures");
  }
  std::vector<ValidatorSig> sigs;
  sigs.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto key_bytes = r->Raw(32);
    if (!key_bytes.ok()) return key_bytes.status();
    Hash256 h;
    std::copy(key_bytes.value().begin(), key_bytes.value().end(),
              h.bytes.begin());
    auto sig_bytes = r->Raw(64);
    if (!sig_bytes.ok()) return sig_bytes.status();
    auto sig = Signature::Deserialize(sig_bytes.value());
    if (!sig.ok()) return sig.status();
    sigs.push_back(ValidatorSig{PublicKey{U256::FromHash(h)}, sig.value()});
  }
  return sigs;
}

Result<Hash256> ReadHash(ByteReader* r) {
  auto bytes = r->Raw(32);
  if (!bytes.ok()) return bytes.status();
  Hash256 h;
  std::copy(bytes.value().begin(), bytes.value().end(), h.bytes.begin());
  return h;
}

}  // namespace

Bytes CbcProof::Serialize() const {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(reconfigs.size()));
  for (const ReconfigCertificate& rc : reconfigs) {
    w.U32(rc.new_epoch);
    w.U32(static_cast<uint32_t>(rc.new_validators.size()));
    for (const PublicKey& v : rc.new_validators) w.Raw(v.Serialize());
    WriteSigs(&w, rc.sigs);
  }
  w.Raw(status.deal_id.bytes.data(), 32);
  w.Raw(status.start_hash.bytes.data(), 32);
  w.U8(status.outcome);
  w.U32(status.epoch);
  WriteSigs(&w, status.sigs);
  return w.Take();
}

Result<CbcProof> CbcProof::Deserialize(const Bytes& bytes) {
  ByteReader r(bytes);
  CbcProof proof;
  auto count = r.U32();
  if (!count.ok()) return count.status();
  if (count.value() > 1024) {
    return Status::InvalidArgument("proof: too many reconfigs");
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    ReconfigCertificate rc;
    auto epoch = r.U32();
    if (!epoch.ok()) return epoch.status();
    rc.new_epoch = epoch.value();
    auto nvals = r.U32();
    if (!nvals.ok()) return nvals.status();
    if (nvals.value() > 4096) {
      return Status::InvalidArgument("proof: too many validators");
    }
    for (uint32_t j = 0; j < nvals.value(); ++j) {
      auto h = ReadHash(&r);
      if (!h.ok()) return h.status();
      rc.new_validators.push_back(PublicKey{U256::FromHash(h.value())});
    }
    auto sigs = ReadSigs(&r);
    if (!sigs.ok()) return sigs.status();
    rc.sigs = std::move(sigs).value();
    proof.reconfigs.push_back(std::move(rc));
  }
  auto deal_id = ReadHash(&r);
  if (!deal_id.ok()) return deal_id.status();
  proof.status.deal_id = deal_id.value();
  auto start_hash = ReadHash(&r);
  if (!start_hash.ok()) return start_hash.status();
  proof.status.start_hash = start_hash.value();
  auto outcome = r.U8();
  if (!outcome.ok()) return outcome.status();
  proof.status.outcome = outcome.value();
  auto epoch = r.U32();
  if (!epoch.ok()) return epoch.status();
  proof.status.epoch = epoch.value();
  auto sigs = ReadSigs(&r);
  if (!sigs.ok()) return sigs.status();
  proof.status.sigs = std::move(sigs).value();
  return proof;
}

bool DecideProof::IsWrapped(const Bytes& bytes) {
  ByteReader r(bytes);
  auto word = r.U32();
  return word.ok() && word.value() == kMagic;
}

Bytes DecideProof::Serialize() const {
  ByteWriter w;
  w.U32(kMagic);
  w.U32(shard);
  w.Raw(proof.Serialize());
  return w.Take();
}

Result<DecideProof> DecideProof::Deserialize(const Bytes& bytes) {
  ByteReader r(bytes);
  auto magic = r.U32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kMagic) {
    return Status::InvalidArgument("proof: not a decide proof");
  }
  DecideProof dp;
  auto shard = r.U32();
  if (!shard.ok()) return shard.status();
  dp.shard = shard.value();
  auto rest = r.Raw(r.remaining());
  if (!rest.ok()) return rest.status();
  auto proof = CbcProof::Deserialize(rest.value());
  if (!proof.ok()) return proof.status();
  dp.proof = std::move(proof).value();
  return dp;
}

size_t CbcProof::NumSignatures() const {
  size_t n = status.sigs.size();
  for (const ReconfigCertificate& rc : reconfigs) n += rc.sigs.size();
  return n;
}

namespace {

/// Verifies that `sigs` contains at least 2f+1 distinct signatures by
/// members of `validators` (|validators| = 3f+1) over `message`.
Status VerifyQuorum(const std::vector<ValidatorSig>& sigs,
                    const std::vector<PublicKey>& validators,
                    const Bytes& message, GasMeter* gas) {
  if (validators.empty()) {
    return Status::InvalidArgument("proof: empty validator set");
  }
  size_t f = (validators.size() - 1) / 3;
  size_t quorum = 2 * f + 1;
  // No duplicate signers (cheap check before the expensive one).
  std::set<PublicKey> seen;
  for (const ValidatorSig& vs : sigs) {
    if (!seen.insert(vs.validator).second) {
      return Status::InvalidArgument("proof: duplicate validator signature");
    }
  }
  for (const ValidatorSig& vs : sigs) {
    bool member = false;
    for (const PublicKey& v : validators) {
      if (v == vs.validator) {
        member = true;
        break;
      }
    }
    if (!member) {
      return Status::PermissionDenied("proof: signer is not a validator");
    }
    // Gas is still charged per signature: the metered cost of checking a
    // certificate is unchanged by HOW the simulator verifies it, so
    // receipts (and every fingerprint folded over them) stay identical.
    if (gas != nullptr) {
      XDEAL_RETURN_IF_ERROR(gas->ChargeSigVerify());
    }
  }
  // The quorum's signatures are independent, so verify them as ONE batch
  // (a single shared-squaring multi-exponentiation instead of 2f+1
  // sequential PowMod pairs). On a bad batch, BatchVerify falls back to
  // per-signature verification and names the first culprit.
  std::vector<BatchItem> batch;
  batch.reserve(sigs.size());
  for (const ValidatorSig& vs : sigs) {
    batch.push_back(BatchItem{vs.validator, message, vs.sig});
  }
  BatchVerifyResult verdict = BatchVerify(batch);
  if (!verdict.ok) {
    std::string blame =
        verdict.first_bad >= 0
            ? "proof: bad validator signature (signer " +
                  sigs[verdict.first_bad].validator.Fingerprint() + ")"
            : "proof: bad validator signature";
    return Status::Unverified(blame);
  }
  if (sigs.size() < quorum) {
    return Status::Unverified("proof: not enough validator signatures");
  }
  return Status::OK();
}

}  // namespace

Result<DealOutcome> VerifyCbcProof(
    const CbcProof& proof, const Hash256& deal_id, const Hash256& start_hash,
    const std::vector<PublicKey>& initial_validators, uint32_t initial_epoch,
    GasMeter* gas) {
  // Walk the reconfiguration chain from the escrow-time validator set.
  std::vector<PublicKey> current = initial_validators;
  uint32_t epoch = initial_epoch;
  for (const ReconfigCertificate& rc : proof.reconfigs) {
    if (rc.new_epoch != epoch + 1) {
      return Status::InvalidArgument("proof: reconfig epoch gap");
    }
    if (rc.new_validators.empty() || rc.new_validators.size() % 3 != 1) {
      return Status::InvalidArgument("proof: new validator set not 3f+1");
    }
    Bytes message = ReconfigCertificate::Message(rc.new_epoch,
                                                 rc.new_validators);
    XDEAL_RETURN_IF_ERROR(VerifyQuorum(rc.sigs, current, message, gas));
    current = rc.new_validators;
    epoch = rc.new_epoch;
  }

  if (!(proof.status.deal_id == deal_id)) {
    return Status::InvalidArgument("proof: deal id mismatch");
  }
  if (!(proof.status.start_hash == start_hash)) {
    return Status::InvalidArgument("proof: startDeal hash mismatch");
  }
  if (proof.status.epoch != epoch) {
    return Status::InvalidArgument("proof: status epoch mismatch");
  }
  if (proof.status.outcome != kDealCommitted &&
      proof.status.outcome != kDealAborted) {
    return Status::InvalidArgument("proof: outcome must be decisive");
  }
  Bytes message = StatusCertificate::Message(
      proof.status.deal_id, proof.status.start_hash, proof.status.outcome,
      proof.status.epoch);
  XDEAL_RETURN_IF_ERROR(VerifyQuorum(proof.status.sigs, current, message,
                                     gas));
  return proof.status.outcome;
}

}  // namespace xdeal
