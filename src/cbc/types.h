// CBC proof types (paper §6.2).
//
// The certified blockchain (CBC) orders startDeal / commit / abort entries.
// A party claiming an asset presents a *proof of commit* (every party voted
// commit before any abort) or a *proof of abort* (some party voted abort
// before all commits were in) to each escrow contract.
//
// With a BFT CBC, a proof is a *status certificate*: the deal's outcome
// signed by at least 2f+1 of the CBC's 3f+1 validators — final and
// independent of deal value (§6.2). If the validator set has been
// reconfigured k times since escrow, the proof additionally carries k
// *reconfiguration certificates*, each signing the next validator set with
// 2f+1 signatures of the previous one, so verification costs
// (k+1)(2f+1) signature checks.

#ifndef XDEAL_CBC_TYPES_H_
#define XDEAL_CBC_TYPES_H_

#include <vector>

#include "chain/gas.h"
#include "chain/ids.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "util/det.h"
#include "util/serialize.h"

namespace xdeal {

using DealOutcome = uint8_t;
constexpr DealOutcome kDealActive = 0;
constexpr DealOutcome kDealCommitted = 1;
constexpr DealOutcome kDealAborted = 2;

const char* DealOutcomeName(DealOutcome o);

/// One validator's signature over a message.
struct ValidatorSig {
  PublicKey validator;
  Signature sig;
};

/// Certifies the outcome of a deal as of CBC epoch `epoch`.
struct StatusCertificate {
  Hash256 deal_id;
  Hash256 start_hash;   // h of the definitive startDeal entry
  DealOutcome outcome = kDealActive;
  uint32_t epoch = 0;
  std::vector<ValidatorSig> sigs;

  /// The byte string each validator signs.
  static Bytes Message(const Hash256& deal_id, const Hash256& start_hash,
                       DealOutcome outcome, uint32_t epoch);
};

/// Certifies that epoch `new_epoch`'s validator set is `new_validators`,
/// signed by 2f+1 validators of epoch `new_epoch - 1`.
struct ReconfigCertificate {
  uint32_t new_epoch = 0;
  std::vector<PublicKey> new_validators;
  std::vector<ValidatorSig> sigs;

  static Bytes Message(uint32_t new_epoch,
                       const std::vector<PublicKey>& new_validators);
};

/// A complete proof presented to an escrow contract: the reconfiguration
/// chain (possibly empty) followed by the status certificate.
struct CbcProof {
  std::vector<ReconfigCertificate> reconfigs;
  StatusCertificate status;

  Bytes Serialize() const;
  static Result<CbcProof> Deserialize(const Bytes& bytes);

  /// Total signatures a contract must verify: (k+1)(2f+1) when each
  /// certificate carries exactly the 2f+1 threshold.
  size_t NumSignatures() const;
};

/// A portable, shard-attributed decide proof for cross-shard deals: the CBC
/// proof wrapped with the index of the shard whose validators issued it (the
/// deal's *home* shard). Escrows hosted on other shards pin the home shard at
/// escrow time and accept the wrapped certificate as decide evidence — but a
/// proof replayed against an escrow bound to a different shard is rejected
/// with a cheap front check ("decide: shard mismatch") before any
/// signature-verification gas is burned.
///
/// Wire format: U32 magic, U32 shard, then the bare CbcProof bytes. The
/// magic is far above CbcProof's 1024-reconfig cap, so a wrapped blob can
/// never parse as a legacy bare proof (and vice versa); escrow contracts
/// accept both encodings.
struct DecideProof {
  uint32_t shard = 0;
  CbcProof proof;

  /// First wire word of a wrapped proof; deliberately > the 1024 reconfig
  /// cap so the two encodings are unambiguous.
  static constexpr uint32_t kMagic = 0x58444450u;  // "PDDX" little-endian

  /// True when `bytes` begins with the DecideProof magic (vs a legacy bare
  /// CbcProof blob).
  static bool IsWrapped(const Bytes& bytes);

  XDEAL_DETERMINISTIC Bytes Serialize() const;
  XDEAL_DETERMINISTIC static Result<DecideProof> Deserialize(
      const Bytes& bytes);
};

/// Verifies `proof` starting from the validator set recorded at escrow time.
/// `initial_validators` must be the 3f+1 epoch-`initial_epoch` validators.
/// Charges one kGasSigVerify per signature checked when `gas` is non-null.
/// On success returns the certified outcome.
Result<DealOutcome> VerifyCbcProof(const CbcProof& proof,
                                   const Hash256& deal_id,
                                   const Hash256& start_hash,
                                   const std::vector<PublicKey>&
                                       initial_validators,
                                   uint32_t initial_epoch, GasMeter* gas);

}  // namespace xdeal

#endif  // XDEAL_CBC_TYPES_H_
