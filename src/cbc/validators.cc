#include "cbc/validators.h"

#include <cassert>

namespace xdeal {

namespace {

std::vector<KeyPair> MakeEpochKeys(const std::string& seed, uint32_t epoch,
                                   size_t count) {
  std::vector<KeyPair> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(KeyPair::FromSeed(seed + "/validator/" +
                                     std::to_string(epoch) + "/" +
                                     std::to_string(i)));
  }
  return keys;
}

}  // namespace

ValidatorSet::ValidatorSet(size_t f, std::string seed)
    : f_(f), seed_(std::move(seed)) {
  history_.push_back(MakeEpochKeys(seed_, 0, size()));
}

ValidatorSet ValidatorSet::Create(size_t f, const std::string& seed) {
  return ValidatorSet(f, seed);
}

std::vector<PublicKey> ValidatorSet::CurrentPublicKeys() const {
  return PublicKeysAt(epoch_);
}

std::vector<PublicKey> ValidatorSet::PublicKeysAt(uint32_t epoch) const {
  assert(epoch < history_.size());
  std::vector<PublicKey> keys;
  keys.reserve(history_[epoch].size());
  for (const KeyPair& kp : history_[epoch]) keys.push_back(kp.public_key());
  return keys;
}

std::vector<ValidatorSig> ValidatorSet::QuorumSign(const Bytes& message) const {
  // The first 2f+1 validators of the current epoch are the honest quorum.
  std::vector<ValidatorSig> sigs;
  sigs.reserve(quorum());
  const auto& current = history_[epoch_];
  for (size_t i = 0; i < quorum(); ++i) {
    sigs.push_back(ValidatorSig{current[i].public_key(),
                                current[i].Sign(message)});
  }
  return sigs;
}

ReconfigCertificate ValidatorSet::Reconfigure() {
  uint32_t new_epoch = epoch_ + 1;
  std::vector<KeyPair> new_keys = MakeEpochKeys(seed_, new_epoch, size());

  ReconfigCertificate cert;
  cert.new_epoch = new_epoch;
  for (const KeyPair& kp : new_keys) {
    cert.new_validators.push_back(kp.public_key());
  }
  Bytes message = ReconfigCertificate::Message(new_epoch, cert.new_validators);
  cert.sigs = QuorumSign(message);  // signed by the OLD (current) epoch

  history_.push_back(std::move(new_keys));
  epoch_ = new_epoch;
  return cert;
}

StatusCertificate ValidatorSet::IssueStatus(const CbcLogContract& log,
                                            const Hash256& deal_id) const {
  StatusCertificate cert;
  cert.deal_id = deal_id;
  cert.start_hash = log.StartHashOf(deal_id);
  cert.outcome = log.OutcomeOf(deal_id);
  cert.epoch = epoch_;
  cert.sigs = QuorumSign(StatusCertificate::Message(
      cert.deal_id, cert.start_hash, cert.outcome, cert.epoch));
  return cert;
}

StatusCertificate ValidatorSet::IssueByzantineStatus(
    const Hash256& deal_id, const Hash256& start_hash,
    DealOutcome outcome) const {
  StatusCertificate cert;
  cert.deal_id = deal_id;
  cert.start_hash = start_hash;
  cert.outcome = outcome;
  cert.epoch = epoch_;
  Bytes message = StatusCertificate::Message(deal_id, start_hash, outcome,
                                             cert.epoch);
  // Only the last f validators (the Byzantine minority) sign.
  const auto& current = history_[epoch_];
  for (size_t i = current.size() - f_; i < current.size(); ++i) {
    cert.sigs.push_back(ValidatorSig{current[i].public_key(),
                                     current[i].Sign(message)});
  }
  return cert;
}

StatusCertificate ValidatorSet::IssueDuplicateSigStatus(
    const Hash256& deal_id, const Hash256& start_hash, DealOutcome outcome,
    size_t copies) const {
  StatusCertificate cert;
  cert.deal_id = deal_id;
  cert.start_hash = start_hash;
  cert.outcome = outcome;
  cert.epoch = epoch_;
  Bytes message = StatusCertificate::Message(deal_id, start_hash, outcome,
                                             cert.epoch);
  const KeyPair& one = history_[epoch_][0];
  for (size_t i = 0; i < copies; ++i) {
    cert.sigs.push_back(ValidatorSig{one.public_key(), one.Sign(message)});
  }
  return cert;
}

StatusCertificate ValidatorSet::IssueWrongStartHashStatus(
    const CbcLogContract& log, const Hash256& deal_id) const {
  StatusCertificate cert;
  cert.deal_id = deal_id;
  cert.start_hash = Sha256Digest("forged-startdeal");
  cert.outcome = log.OutcomeOf(deal_id);
  cert.epoch = epoch_;
  cert.sigs = QuorumSign(StatusCertificate::Message(
      cert.deal_id, cert.start_hash, cert.outcome, cert.epoch));
  return cert;
}

}  // namespace xdeal
