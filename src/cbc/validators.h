// ValidatorSet: the BFT validators backing a certified blockchain (§6.2).
//
// "Blocks are approved by a known set of 3f+1 validators, of which at most f
//  can deviate from the protocol. ... the blockchain can be reconfigured
//  periodically by having at least 2f+1 current validators elect a new set."
//
// The consensus internals are out of scope ("the details of how validators
// reach consensus on new blocks are not important here"); what matters is
// the artifact parties consume: status certificates with at least 2f+1
// validator signatures, plus reconfiguration certificates chaining validator
// sets. This class issues those artifacts by reading the CBC log contract's
// public state — including deliberately wrong ones from the Byzantine
// minority, for adversarial tests.

#ifndef XDEAL_CBC_VALIDATORS_H_
#define XDEAL_CBC_VALIDATORS_H_

#include <string>
#include <vector>

#include "cbc/cbc_log.h"
#include "cbc/types.h"

namespace xdeal {

class ValidatorSet {
 public:
  /// Creates an epoch-0 set of 3f+1 validators with deterministic keys.
  static ValidatorSet Create(size_t f, const std::string& seed);

  size_t f() const { return f_; }
  size_t size() const { return 3 * f_ + 1; }
  size_t quorum() const { return 2 * f_ + 1; }
  uint32_t epoch() const { return epoch_; }

  /// Public keys of the current epoch's validators.
  std::vector<PublicKey> CurrentPublicKeys() const;

  /// Public keys of a historical epoch (escrow contracts pin the epoch they
  /// saw at escrow time).
  std::vector<PublicKey> PublicKeysAt(uint32_t epoch) const;

  /// Rotates to a fresh validator set (epoch+1) and returns the
  /// reconfiguration certificate signed by a 2f+1 quorum of the old set.
  ReconfigCertificate Reconfigure();

  /// Issues a status certificate for `deal_id` reflecting the log's current
  /// outcome, signed by exactly a 2f+1 quorum of honest validators. The
  /// outcome may be kDealActive (not yet decisive); such a certificate will
  /// not verify as a proof.
  StatusCertificate IssueStatus(const CbcLogContract& log,
                                const Hash256& deal_id) const;

  // --- Byzantine behaviours (for adversarial tests and benches) ---

  /// A certificate asserting an arbitrary outcome, signed by only the f
  /// Byzantine validators (insufficient quorum — must be rejected).
  StatusCertificate IssueByzantineStatus(const Hash256& deal_id,
                                         const Hash256& start_hash,
                                         DealOutcome outcome) const;

  /// A certificate with `copies` duplicate signatures from one validator
  /// (must be rejected by the duplicate-signer check).
  StatusCertificate IssueDuplicateSigStatus(const Hash256& deal_id,
                                            const Hash256& start_hash,
                                            DealOutcome outcome,
                                            size_t copies) const;

  /// A quorum-signed certificate over the WRONG start hash (models a
  /// validator set trying to redirect a deal to a forged startDeal).
  StatusCertificate IssueWrongStartHashStatus(const CbcLogContract& log,
                                              const Hash256& deal_id) const;

 private:
  ValidatorSet(size_t f, std::string seed);

  std::vector<ValidatorSig> QuorumSign(const Bytes& message) const;

  size_t f_;
  std::string seed_;
  uint32_t epoch_ = 0;
  // One key-pair list per epoch; index epoch_ is current.
  std::vector<std::vector<KeyPair>> history_;
};

}  // namespace xdeal

#endif  // XDEAL_CBC_VALIDATORS_H_
