#include "chain/blockchain.h"

#include <algorithm>
#include <cassert>

#include "chain/world.h"

namespace xdeal {

Hash256 Block::ComputeHash(uint64_t height, Tick timestamp,
                           const Hash256& parent, const Hash256& root) {
  ByteWriter w;
  w.Str("xdeal-block");
  w.U64(height);
  w.U64(timestamp);
  w.Raw(parent.bytes.data(), parent.bytes.size());
  w.Raw(root.bytes.data(), root.bytes.size());
  return Sha256Digest(w.bytes());
}

const Receipt* ObservationCursor::Next() {
  if (chain_ == nullptr) return nullptr;
  if (indexes_ == nullptr) {
    auto it = chain_->tag_index_.find(deal_tag_);
    if (it == chain_->tag_index_.end()) return nullptr;
    indexes_ = &it->second;
  }
  if (pos_ >= indexes_->size()) return nullptr;
  return &chain_->receipts_[(*indexes_)[pos_++]];
}

Blockchain::Blockchain(World* world, ChainId id, std::string name,
                       Tick block_interval)
    : world_(world),
      id_(id),
      name_(std::move(name)),
      block_interval_(block_interval) {
  assert(block_interval_ > 0);
}

ContractId Blockchain::Deploy(std::unique_ptr<Contract> contract) {
  ContractId id{static_cast<uint32_t>(contracts_.size())};
  contract->OnDeployed(id);
  contracts_.push_back(std::move(contract));
  return id;
}

Contract* Blockchain::contract(ContractId id) {
  if (id.v >= contracts_.size()) return nullptr;
  return contracts_[id.v].get();
}

const Contract* Blockchain::contract(ContractId id) const {
  if (id.v >= contracts_.size()) return nullptr;
  return contracts_[id.v].get();
}

uint64_t Blockchain::SubmitAt(Tick arrival, PartyId sender,
                              ContractId contract, CallData call,
                              std::string tag, uint64_t deal_tag) {
  uint64_t seq = next_seq_++;
  Tick boundary = NextBoundaryAfter(arrival);
  bool schedule = mempool_.find(boundary) == mempool_.end();
  mempool_[boundary].push_back(PendingTx{seq, sender, contract,
                                         std::move(call), std::move(tag),
                                         deal_tag});
  if (schedule) {
    world_->scheduler().ScheduleAt(boundary, EventLabel::BlockProduction(id_.v),
                                   [this, boundary] { ProduceBlock(boundary); });
  }
  return seq;
}

void Blockchain::Subscribe(Endpoint who, Observer cb) {
  unfiltered_observers_.push_back(observers_.size());
  observers_.push_back(ObserverRec{who, std::move(cb), 0, false});
}

void Blockchain::Subscribe(Endpoint who, uint64_t deal_tag, Observer cb) {
  observers_by_tag_[deal_tag].push_back(observers_.size());
  observers_.push_back(ObserverRec{who, std::move(cb), deal_tag, true});
}

ReceiptView Blockchain::TaggedReceipts(uint64_t deal_tag) const {
  auto it = tag_index_.find(deal_tag);
  if (it == tag_index_.end()) return ReceiptView();
  return ReceiptView(&receipts_, &it->second);
}

ReceiptView Blockchain::ContractReceipts(uint64_t deal_tag,
                                         ContractId contract) const {
  auto it = tag_contract_index_.find(std::make_pair(deal_tag, contract.v));
  if (it == tag_contract_index_.end()) return ReceiptView();
  return ReceiptView(&receipts_, &it->second);
}

bool Blockchain::TagIndexMatchesFullScan() const {
  // std::map, not unordered: this oracle's mismatch path feeds test
  // diagnostics, and det-lint forbids unordered iteration anywhere under a
  // deterministic root. Sorted order costs nothing here (test-only oracle).
  std::map<uint64_t, std::vector<uint32_t>> scan_tags;
  std::map<std::pair<uint64_t, uint32_t>, std::vector<uint32_t>> scan_pairs;
  for (size_t i = 0; i < receipts_.size(); ++i) {
    const Receipt& r = receipts_[i];
    scan_tags[r.deal_tag].push_back(static_cast<uint32_t>(i));
    scan_pairs[std::make_pair(r.deal_tag, r.contract.v)].push_back(
        static_cast<uint32_t>(i));
  }
  if (scan_tags.size() != tag_index_.size() ||
      scan_pairs.size() != tag_contract_index_.size()) {
    return false;
  }
  for (const auto& [tag, indexes] : scan_tags) {
    auto it = tag_index_.find(tag);
    if (it == tag_index_.end() || it->second != indexes) return false;
  }
  for (const auto& [key, indexes] : scan_pairs) {
    auto it = tag_contract_index_.find(key);
    if (it == tag_contract_index_.end() || it->second != indexes) return false;
  }
  return true;
}

Receipt Blockchain::Execute(const PendingTx& tx, Tick now, uint64_t height) {
  Receipt receipt;
  receipt.tx_seq = tx.seq;
  receipt.chain = id_;
  receipt.contract = tx.contract;
  receipt.sender = tx.sender;
  receipt.function = tx.call.function;
  receipt.included_at = now;
  receipt.block_height = height;
  receipt.tag = tx.tag;
  receipt.deal_tag = tx.deal_tag;

  Contract* target = contract(tx.contract);
  if (target == nullptr) {
    receipt.status = Status::NotFound("no such contract");
    return receipt;
  }

  GasMeter gas;
  CallContext ctx;
  ctx.world = world_;
  ctx.chain = this;
  ctx.sender = tx.sender;
  ctx.now = now;
  ctx.block_height = height;
  ctx.gas = &gas;

  ByteReader args(tx.call.args);
  Result<Bytes> result = target->Invoke(ctx, tx.call.function, args);
  receipt.status = result.ok() ? Status::OK() : result.status();
  if (result.ok()) receipt.ret = std::move(result).value();
  receipt.gas_used = gas.used();
  receipt.sig_verifies = gas.sig_verifies();
  receipt.storage_writes = gas.storage_writes();
  return receipt;
}

void Blockchain::ScheduleDelivery(const ObserverRec& obs, Tick delay,
                                  size_t receipt_index) {
  // Copy the receipt into the closure: the vector may grow later.
  Receipt snapshot = receipts_[receipt_index];
  Observer observer = obs.cb;
  world_->scheduler().ScheduleAfter(
      delay, EventLabel::Observation(id_.v, obs.who.id),
      [observer = std::move(observer), snapshot = std::move(snapshot)] {
        observer(snapshot);
      });
}

void Blockchain::DeliverBroadcast(const std::vector<size_t>& receipt_indexes) {
  // Legacy delivery, bit-for-bit: one delay draw from the World's RNG per
  // (observer, block), every receipt to every observer — filtered consumers
  // keep ignoring foreign receipts themselves, exactly as before the index
  // existed. The golden fingerprints pin this path.
  Endpoint self = world_->ChainEndpoint(id_);
  for (const ObserverRec& obs : observers_) {
    Tick delay = world_->SampleDelay(self, obs.who);
    for (size_t idx : receipt_indexes) ScheduleDelivery(obs, delay, idx);
  }
}

void Blockchain::DeliverIndexed(const std::vector<size_t>& receipt_indexes,
                                uint64_t height) {
  // Indexed delivery: each receipt reaches only the observers subscribed to
  // its deal_tag (plus unfiltered observers), so per-block delivery is
  // O(receipts × interested observers), not O(receipts × all observers).
  // Delays come from a keyed per-(chain, observer, block) stream instead of
  // the World's sequential RNG, so skipping uninterested observers draws
  // nothing and cannot perturb anyone else's schedule.
  std::map<uint64_t, std::vector<size_t>> by_tag;
  for (size_t idx : receipt_indexes) {
    by_tag[receipts_[idx].deal_tag].push_back(idx);
  }
  for (const auto& [tag, idxs] : by_tag) {
    auto it = observers_by_tag_.find(tag);
    if (it == observers_by_tag_.end()) continue;
    for (size_t oi : it->second) {
      const ObserverRec& obs = observers_[oi];
      Tick delay = world_->KeyedObservationDelay(id_, obs.who, height);
      for (size_t idx : idxs) ScheduleDelivery(obs, delay, idx);
    }
  }
  for (size_t oi : unfiltered_observers_) {
    const ObserverRec& obs = observers_[oi];
    Tick delay = world_->KeyedObservationDelay(id_, obs.who, height);
    for (size_t idx : receipt_indexes) ScheduleDelivery(obs, delay, idx);
  }
}

namespace {

// Placeholder installed at restore for per-deal contracts whose deals had
// settled by the checkpoint boundary. It keeps ContractId numbering intact
// (later deployments land on the same ids as the uninterrupted run) while
// rejecting any invocation — nothing legitimately calls a settled deal's
// contracts, and the differential checkpoint tests prove it.
class RetiredContract : public Contract {
 public:
  explicit RetiredContract(std::string original_type)
      : original_type_(std::move(original_type)) {}

  std::string TypeName() const override {
    return "Retired:" + original_type_;
  }

  Result<Bytes> Invoke(CallContext& /*ctx*/, const std::string& fn,
                       ByteReader& /*args*/) override {
    return Status::FailedPrecondition("retired contract (" + original_type_ +
                                      ") cannot execute " + fn);
  }

 private:
  std::string original_type_;
};

}  // namespace

Status Blockchain::Checkpoint(ByteWriter* w) const {
  if (!mempool_.empty()) {
    return Status::FailedPrecondition(
        "chain " + name_ + ": checkpoint requires an empty mempool (" +
        std::to_string(pending_txs()) + " txs pending)");
  }
  w->U64(max_txs_per_block_);
  w->U64(next_seq_);
  w->U64(total_gas_);
  w->U64(blocks_.size());
  if (!blocks_.empty()) {
    w->Raw(blocks_.back().hash.bytes.data(), blocks_.back().hash.bytes.size());
  }
  w->U32(static_cast<uint32_t>(contracts_.size()));
  for (const auto& c : contracts_) {
    w->Str(c->TypeName());
    bool snap = c->SupportsSnapshot();
    w->Bool(snap);
    if (snap) {
      ByteWriter state;
      XDEAL_RETURN_IF_ERROR(c->SnapshotState(&state));
      w->Blob(state.bytes());
    }
  }
  return Status::OK();
}

Status Blockchain::Restore(ByteReader& r, const ContractFactory& factory) {
  if (!contracts_.empty() || !blocks_.empty() || next_seq_ != 0) {
    return Status::FailedPrecondition(
        "chain " + name_ + ": restore requires a freshly constructed chain");
  }
  auto cap = r.U64();
  auto seq = r.U64();
  auto gas = r.U64();
  auto n_blocks = r.U64();
  if (!cap.ok() || !seq.ok() || !gas.ok() || !n_blocks.ok()) {
    return Status::InvalidArgument("chain snapshot: truncated header");
  }
  max_txs_per_block_ = cap.value();
  next_seq_ = seq.value();
  total_gas_ = gas.value();
  Hash256 last_hash{};
  if (n_blocks.value() > 0) {
    auto raw = r.Raw(last_hash.bytes.size());
    if (!raw.ok()) return raw.status();
    std::copy(raw.value().begin(), raw.value().end(), last_hash.bytes.begin());
  }
  // Pad the block list with header-only placeholders so heights (which feed
  // keyed observation delays) and the parent link of the next real block
  // match the uninterrupted run; only the back() hash is load-bearing.
  blocks_.resize(n_blocks.value());
  for (uint64_t h = 0; h < n_blocks.value(); ++h) blocks_[h].height = h;
  if (!blocks_.empty()) blocks_.back().hash = last_hash;

  auto n_contracts = r.U32();
  if (!n_contracts.ok()) return n_contracts.status();
  for (uint32_t i = 0; i < n_contracts.value(); ++i) {
    auto type_name = r.Str();
    if (!type_name.ok()) return type_name.status();
    auto snap = r.Bool();
    if (!snap.ok()) return snap.status();
    std::unique_ptr<Contract> contract;
    if (snap.value()) {
      auto state = r.Blob();
      if (!state.ok()) return state.status();
      contract = factory ? factory(type_name.value()) : nullptr;
      if (contract == nullptr) {
        return Status::InvalidArgument(
            "chain snapshot: no factory for contract type " +
            type_name.value());
      }
      ByteReader state_reader(state.value());
      XDEAL_RETURN_IF_ERROR(contract->RestoreState(state_reader));
    } else {
      contract = std::make_unique<RetiredContract>(type_name.value());
    }
    Deploy(std::move(contract));
  }
  return Status::OK();
}

void Blockchain::ProduceBlock(Tick boundary) {
  auto it = mempool_.find(boundary);
  if (it == mempool_.end()) return;
  std::vector<PendingTx> txs = std::move(it->second);
  mempool_.erase(it);

  // Finite block capacity: include the first `cap` arrivals, roll the rest
  // over to the next boundary *ahead of* anything that arrives later (they
  // were submitted first). This is where heavy traffic turns into queueing
  // delay that can stretch past protocol deadlines.
  if (max_txs_per_block_ > 0 && txs.size() > max_txs_per_block_) {
    Tick next = boundary + block_interval_;
    auto next_it = mempool_.find(next);
    bool schedule = next_it == mempool_.end();
    std::vector<PendingTx>& overflow_queue = mempool_[next];
    overflow_queue.insert(
        overflow_queue.begin(),
        std::make_move_iterator(txs.begin() + max_txs_per_block_),
        std::make_move_iterator(txs.end()));
    txs.resize(max_txs_per_block_);
    if (schedule) {
      world_->scheduler().ScheduleAt(next, EventLabel::BlockProduction(id_.v),
                                     [this, next] { ProduceBlock(next); });
    }
  }

  uint64_t height = blocks_.size();
  Block block;
  block.height = height;
  block.timestamp = boundary;
  block.parent_hash = blocks_.empty() ? Hash256{} : blocks_.back().hash;

  std::vector<Hash256> leaf_hashes;
  std::vector<size_t> receipt_indexes;
  leaf_hashes.reserve(txs.size());
  for (const PendingTx& tx : txs) {
    Receipt r = Execute(tx, boundary, height);
    total_gas_ += r.gas_used;
    block.tx_seqs.push_back(r.tx_seq);

    ByteWriter w;
    w.U64(r.tx_seq).U32(r.sender.v).Str(r.function).Blob(r.ret);
    w.U8(static_cast<uint8_t>(r.status.code()));
    leaf_hashes.push_back(Sha256Digest(w.bytes()));

    uint32_t pos = static_cast<uint32_t>(receipts_.size());
    tag_index_[r.deal_tag].push_back(pos);
    tag_contract_index_[std::make_pair(r.deal_tag, r.contract.v)].push_back(
        pos);
    receipt_indexes.push_back(pos);
    receipts_.push_back(std::move(r));
  }
  block.entries_root = MerkleRoot(leaf_hashes);
  block.hash = Block::ComputeHash(block.height, block.timestamp,
                                  block.parent_hash, block.entries_root);
  blocks_.push_back(block);

  if (world_->observation_delivery() == ObservationDelivery::kBroadcast) {
    DeliverBroadcast(receipt_indexes);
  } else {
    DeliverIndexed(receipt_indexes, height);
  }
}

}  // namespace xdeal
