// Blockchain: a publicly-readable, tamper-evident, append-only ledger that
// hosts contracts (paper §3).
//
// The simulator's chain produces a block at each block-interval boundary for
// which transactions are pending. Each included transaction executes its
// target contract deterministically under a GasMeter and yields a Receipt.
// Parties subscribe to a chain and receive receipt notifications after a
// network-model observation delay — this is the only way information leaves
// a chain.
//
// Receipts are indexed at block-seal time by deal_tag and by
// (deal_tag, contract), so observation is O(own receipts): consumers read
// their slice through ReceiptView (a whole filtered history) or an
// ObservationCursor (only what appended since the last look) instead of
// scanning the world. The unfiltered receipts() vector remains available as
// the differential-testing oracle for the index.

#ifndef XDEAL_CHAIN_BLOCKCHAIN_H_
#define XDEAL_CHAIN_BLOCKCHAIN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/contract.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/det.h"

namespace xdeal {

class World;

/// The durable record of one executed transaction.
struct Receipt {
  uint64_t tx_seq = 0;          // unique per chain
  ChainId chain;
  ContractId contract;
  PartyId sender;
  std::string function;
  Status status;                // OK or the failed `require`
  Bytes ret;                    // serialized return value (empty on failure)
  uint64_t gas_used = 0;
  uint64_t sig_verifies = 0;
  uint64_t storage_writes = 0;
  Tick included_at = 0;
  uint64_t block_height = 0;
  std::string tag;              // caller-supplied label (phase attribution)
  uint64_t deal_tag = 0;        // workload label: which deal submitted this
                                // (0 = untagged / single-deal world)
};

/// A produced block: header + the receipts of its transactions.
struct Block {
  uint64_t height = 0;
  Tick timestamp = 0;
  Hash256 parent_hash;
  Hash256 entries_root;         // Merkle root over receipt digests
  Hash256 hash;                 // H(height || timestamp || parent || root)
  std::vector<uint64_t> tx_seqs;

  static Hash256 ComputeHash(uint64_t height, Tick timestamp,
                             const Hash256& parent, const Hash256& root);
};

/// A read-only, index-backed view over the subset of a chain's receipts
/// matching a deal_tag (optionally narrowed to one contract). Obtained from
/// Blockchain::TaggedReceipts / ContractReceipts in O(log #keys); iteration
/// costs O(matching receipts), never O(chain length). Views are invalidated
/// only by destroying the chain; producing more blocks simply extends them.
class ReceiptView {
 public:
  /// Forward iterator dereferencing to the underlying Receipt.
  class Iterator {
   public:
    Iterator(const std::vector<Receipt>* receipts,
             const std::vector<uint32_t>* indexes, size_t pos)
        : receipts_(receipts), indexes_(indexes), pos_(pos) {}
    const Receipt& operator*() const {
      return (*receipts_)[(*indexes_)[pos_]];
    }
    const Receipt* operator->() const { return &operator*(); }
    Iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return pos_ != o.pos_; }
    bool operator==(const Iterator& o) const { return pos_ == o.pos_; }

   private:
    const std::vector<Receipt>* receipts_;
    const std::vector<uint32_t>* indexes_;
    size_t pos_;
  };

  /// An empty view (no matching receipts).
  ReceiptView() = default;

  size_t size() const { return indexes_ == nullptr ? 0 : indexes_->size(); }
  bool empty() const { return size() == 0; }
  /// The i-th matching receipt, in chain order.
  const Receipt& operator[](size_t i) const {
    return (*receipts_)[(*indexes_)[i]];
  }
  Iterator begin() const { return Iterator(receipts_, indexes_, 0); }
  Iterator end() const { return Iterator(receipts_, indexes_, size()); }

 private:
  friend class Blockchain;
  ReceiptView(const std::vector<Receipt>* receipts,
              const std::vector<uint32_t>* indexes)
      : receipts_(receipts), indexes_(indexes) {}

  const std::vector<Receipt>* receipts_ = nullptr;
  const std::vector<uint32_t>* indexes_ = nullptr;  // nullptr = empty view
};

/// Incremental observation point over one chain's receipts for one deal_tag:
/// each Next() call returns the next matching receipt appended since the
/// cursor last looked, or nullptr when drained (more may appear after further
/// blocks — the cursor stays valid and picks them up). This is THE way for a
/// long-lived consumer to fold "what happened since my last observation"
/// without rescanning history. Default-constructed cursors are empty.
class ObservationCursor {
 public:
  ObservationCursor() = default;

  /// The next unseen matching receipt in chain order, or nullptr if drained.
  const Receipt* Next();

  /// Receipts consumed so far (== position in the tag's index).
  size_t consumed() const { return pos_; }
  uint64_t deal_tag() const { return deal_tag_; }

 private:
  friend class Blockchain;
  ObservationCursor(const Blockchain* chain, uint64_t deal_tag)
      : chain_(chain), deal_tag_(deal_tag) {}

  const Blockchain* chain_ = nullptr;
  uint64_t deal_tag_ = 0;
  size_t pos_ = 0;
  // Cached pointer into the chain's tag index (node-stable once created).
  const std::vector<uint32_t>* indexes_ = nullptr;
};

/// An append-only contract-hosting ledger.
class Blockchain {
 public:
  using Observer = std::function<void(const Receipt&)>;
  /// Constructs an empty contract of the named type for Restore (layering:
  /// the chain layer cannot name concrete contract types, so the caller —
  /// who can — supplies the factory). Returning nullptr means "unknown
  /// type"; Restore then installs an inert retired placeholder.
  using ContractFactory =
      std::function<std::unique_ptr<Contract>(const std::string& type_name)>;

  Blockchain(World* world, ChainId id, std::string name, Tick block_interval);

  ChainId id() const { return id_; }
  const std::string& name() const { return name_; }
  Tick block_interval() const { return block_interval_; }

  /// Installs a contract; returns its id. Deployment is instantaneous in the
  /// simulator (deploy-time gas is out of scope for the paper's analysis).
  ContractId Deploy(std::unique_ptr<Contract> contract);

  /// Direct state access. Contract state is public (§3), so parties may read
  /// it off-chain at no gas cost; tests and validation logic use this.
  Contract* contract(ContractId id);
  const Contract* contract(ContractId id) const;

  /// Typed convenience: dynamic_cast the contract to T.
  template <typename T>
  T* As(ContractId id) {
    return dynamic_cast<T*>(contract(id));
  }
  template <typename T>
  const T* As(ContractId id) const {
    return dynamic_cast<const T*>(contract(id));
  }

  /// Enqueues a transaction arriving at the chain at time `arrival`; it will
  /// execute in the block at the next interval boundary (or a later one when
  /// block capacity is limited and earlier arrivals fill the block). Returns
  /// the tx seq. `deal_tag` labels the receipt for per-deal accounting.
  XDEAL_DETERMINISTIC uint64_t SubmitAt(Tick arrival, PartyId sender, ContractId contract,
                    CallData call, std::string tag, uint64_t deal_tag = 0);

  /// Caps how many transactions one block may include; overflow rolls over
  /// to the next boundary in arrival order. 0 (the default) = unlimited.
  /// Finite capacity is how traffic workloads create real queueing delay.
  void set_max_txs_per_block(uint64_t cap) { max_txs_per_block_ = cap; }
  uint64_t max_txs_per_block() const { return max_txs_per_block_; }

  /// Registers an observer endpoint; every future receipt is delivered to it
  /// after an observation delay sampled from the network model.
  void Subscribe(Endpoint who, Observer cb);

  /// Tag-filtered subscription. Under the World's default broadcast delivery
  /// this behaves exactly like Subscribe (every receipt is delivered and the
  /// consumer's own matching stays the filter — bit-compatible with the
  /// legacy event stream); under indexed delivery only receipts whose
  /// deal_tag matches are delivered, making per-block delivery O(interested
  /// observers), not O(all observers).
  void Subscribe(Endpoint who, uint64_t deal_tag, Observer cb);

  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Receipt>& receipts() const { return receipts_; }

  /// All receipts carrying `deal_tag`, in chain order — O(log #tags), backed
  /// by the index built at block-seal time.
  ReceiptView TaggedReceipts(uint64_t deal_tag) const;

  /// All receipts carrying `deal_tag` that executed on `contract`.
  ReceiptView ContractReceipts(uint64_t deal_tag, ContractId contract) const;

  /// A fresh cursor over `deal_tag`'s receipts, positioned at the start.
  ObservationCursor MakeCursor(uint64_t deal_tag) const {
    return ObservationCursor(this, deal_tag);
  }

  /// Differential oracle: recomputes every tag/(tag, contract) bucket by
  /// full scan and compares against the incremental index. Returns true iff
  /// the index is exactly the scan. O(chain length) — test/debug only.
  XDEAL_DETERMINISTIC bool TagIndexMatchesFullScan() const;

  /// Test hook: forces both unordered indexes to at least `bucket_count`
  /// buckets, permuting their internal iteration order. Rehashing a
  /// node-based unordered_map moves no elements, so ReceiptView /
  /// ObservationCursor pointers into the bucket vectors stay valid; only
  /// bucket traversal order changes. Determinism tests call this between
  /// runs to prove no observable result depends on that order.
  void RehashIndexes(size_t bucket_count) {
    tag_index_.rehash(bucket_count);
    observers_by_tag_.rehash(bucket_count);
  }

  /// Total gas consumed by all executed transactions.
  uint64_t total_gas() const { return total_gas_; }

  /// Next block boundary strictly after `t`.
  Tick NextBoundaryAfter(Tick t) const {
    return (t / block_interval_ + 1) * block_interval_;
  }

  /// Transactions enqueued but not yet included in any block, across all
  /// pending boundaries. This is the chain-occupancy signal admission
  /// controllers read: under finite block capacity a deep queue here means
  /// inclusion delay is already stretching toward protocol deadlines.
  uint64_t pending_txs() const {
    uint64_t pending = 0;
    for (const auto& [boundary, txs] : mempool_) pending += txs.size();
    return pending;
  }

  /// Serializes the chain's durable state into `w`. Only valid at a
  /// quiescent boundary: the mempool must be empty (every submitted tx
  /// already sealed into a block), otherwise InvalidArgument. The snapshot
  /// is slim by design: block headers are carried as (count, last-hash) so
  /// heights and parent-chaining continue correctly; receipts are NOT
  /// carried (the restored chain's receipt history restarts empty — every
  /// deal that produced them has settled, and all cross-epoch accounting
  /// lives in the engine's cumulative counters, not in the chain).
  XDEAL_DETERMINISTIC Status Checkpoint(ByteWriter* w) const;

  /// Restores a freshly constructed chain (same name/id/interval) from a
  /// Checkpoint. Contracts that snapshot their state are rebuilt via
  /// `factory` + RestoreState; the rest become inert retired placeholders
  /// that preserve ContractId numbering and reject invocation.
  XDEAL_DETERMINISTIC Status Restore(ByteReader& r,
                                     const ContractFactory& factory);

 private:
  friend class ObservationCursor;

  struct PendingTx {
    uint64_t seq;
    PartyId sender;
    ContractId contract;
    CallData call;
    std::string tag;
    uint64_t deal_tag;
  };

  struct ObserverRec {
    Endpoint who;
    Observer cb;
    uint64_t deal_tag = 0;
    bool filtered = false;
  };

  XDEAL_DETERMINISTIC void ProduceBlock(Tick boundary);
  Receipt Execute(const PendingTx& tx, Tick now, uint64_t height);
  void DeliverBroadcast(const std::vector<size_t>& receipt_indexes);
  void DeliverIndexed(const std::vector<size_t>& receipt_indexes,
                      uint64_t height);
  void ScheduleDelivery(const ObserverRec& obs, Tick delay,
                        size_t receipt_index);

  World* world_;
  ChainId id_;
  std::string name_;
  Tick block_interval_;
  uint64_t next_seq_ = 0;
  uint64_t total_gas_ = 0;
  uint64_t max_txs_per_block_ = 0;  // 0 = unlimited

  std::vector<std::unique_ptr<Contract>> contracts_;
  std::map<Tick, std::vector<PendingTx>> mempool_;  // keyed by boundary
  std::vector<Block> blocks_;
  std::vector<Receipt> receipts_;
  // Receipt indexes, appended at block-seal time in chain order. Values are
  // positions in receipts_. Node-based maps: ReceiptView/ObservationCursor
  // cache pointers to the bucket vectors, which stay valid as buckets grow.
  std::unordered_map<uint64_t, std::vector<uint32_t>> tag_index_;
  std::map<std::pair<uint64_t, uint32_t>, std::vector<uint32_t>>
      tag_contract_index_;
  std::vector<ObserverRec> observers_;
  // Observer positions by subscription tag (filtered subscriptions only) —
  // lets indexed delivery fan a receipt out to exactly the observers that
  // asked for its deal, independent of how many others watch the chain.
  std::unordered_map<uint64_t, std::vector<size_t>> observers_by_tag_;
  std::vector<size_t> unfiltered_observers_;
};

}  // namespace xdeal

#endif  // XDEAL_CHAIN_BLOCKCHAIN_H_
