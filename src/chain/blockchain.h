// Blockchain: a publicly-readable, tamper-evident, append-only ledger that
// hosts contracts (paper §3).
//
// The simulator's chain produces a block at each block-interval boundary for
// which transactions are pending. Each included transaction executes its
// target contract deterministically under a GasMeter and yields a Receipt.
// Parties subscribe to a chain and receive receipt notifications after a
// network-model observation delay — this is the only way information leaves
// a chain.

#ifndef XDEAL_CHAIN_BLOCKCHAIN_H_
#define XDEAL_CHAIN_BLOCKCHAIN_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/contract.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace xdeal {

class World;

/// The durable record of one executed transaction.
struct Receipt {
  uint64_t tx_seq = 0;          // unique per chain
  ChainId chain;
  ContractId contract;
  PartyId sender;
  std::string function;
  Status status;                // OK or the failed `require`
  Bytes ret;                    // serialized return value (empty on failure)
  uint64_t gas_used = 0;
  uint64_t sig_verifies = 0;
  uint64_t storage_writes = 0;
  Tick included_at = 0;
  uint64_t block_height = 0;
  std::string tag;              // caller-supplied label (phase attribution)
  uint64_t deal_tag = 0;        // workload label: which deal submitted this
                                // (0 = untagged / single-deal world)
};

/// A produced block: header + the receipts of its transactions.
struct Block {
  uint64_t height = 0;
  Tick timestamp = 0;
  Hash256 parent_hash;
  Hash256 entries_root;         // Merkle root over receipt digests
  Hash256 hash;                 // H(height || timestamp || parent || root)
  std::vector<uint64_t> tx_seqs;

  static Hash256 ComputeHash(uint64_t height, Tick timestamp,
                             const Hash256& parent, const Hash256& root);
};

/// An append-only contract-hosting ledger.
class Blockchain {
 public:
  using Observer = std::function<void(const Receipt&)>;

  Blockchain(World* world, ChainId id, std::string name, Tick block_interval);

  ChainId id() const { return id_; }
  const std::string& name() const { return name_; }
  Tick block_interval() const { return block_interval_; }

  /// Installs a contract; returns its id. Deployment is instantaneous in the
  /// simulator (deploy-time gas is out of scope for the paper's analysis).
  ContractId Deploy(std::unique_ptr<Contract> contract);

  /// Direct state access. Contract state is public (§3), so parties may read
  /// it off-chain at no gas cost; tests and validation logic use this.
  Contract* contract(ContractId id);
  const Contract* contract(ContractId id) const;

  /// Typed convenience: dynamic_cast the contract to T.
  template <typename T>
  T* As(ContractId id) {
    return dynamic_cast<T*>(contract(id));
  }
  template <typename T>
  const T* As(ContractId id) const {
    return dynamic_cast<const T*>(contract(id));
  }

  /// Enqueues a transaction arriving at the chain at time `arrival`; it will
  /// execute in the block at the next interval boundary (or a later one when
  /// block capacity is limited and earlier arrivals fill the block). Returns
  /// the tx seq. `deal_tag` labels the receipt for per-deal accounting.
  uint64_t SubmitAt(Tick arrival, PartyId sender, ContractId contract,
                    CallData call, std::string tag, uint64_t deal_tag = 0);

  /// Caps how many transactions one block may include; overflow rolls over
  /// to the next boundary in arrival order. 0 (the default) = unlimited.
  /// Finite capacity is how traffic workloads create real queueing delay.
  void set_max_txs_per_block(uint64_t cap) { max_txs_per_block_ = cap; }
  uint64_t max_txs_per_block() const { return max_txs_per_block_; }

  /// Registers an observer endpoint; every future receipt is delivered to it
  /// after an observation delay sampled from the network model.
  void Subscribe(Endpoint who, Observer cb);

  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Receipt>& receipts() const { return receipts_; }

  /// Total gas consumed by all executed transactions.
  uint64_t total_gas() const { return total_gas_; }

  /// Sum of gas for receipts whose tag matches.
  uint64_t GasForTag(const std::string& tag) const;

  /// Next block boundary strictly after `t`.
  Tick NextBoundaryAfter(Tick t) const {
    return (t / block_interval_ + 1) * block_interval_;
  }

  /// Transactions enqueued but not yet included in any block, across all
  /// pending boundaries. This is the chain-occupancy signal admission
  /// controllers read: under finite block capacity a deep queue here means
  /// inclusion delay is already stretching toward protocol deadlines.
  uint64_t pending_txs() const {
    uint64_t pending = 0;
    for (const auto& [boundary, txs] : mempool_) pending += txs.size();
    return pending;
  }

 private:
  struct PendingTx {
    uint64_t seq;
    PartyId sender;
    ContractId contract;
    CallData call;
    std::string tag;
    uint64_t deal_tag;
  };

  void ProduceBlock(Tick boundary);
  Receipt Execute(const PendingTx& tx, Tick now, uint64_t height);

  World* world_;
  ChainId id_;
  std::string name_;
  Tick block_interval_;
  uint64_t next_seq_ = 0;
  uint64_t total_gas_ = 0;
  uint64_t max_txs_per_block_ = 0;  // 0 = unlimited

  std::vector<std::unique_ptr<Contract>> contracts_;
  std::map<Tick, std::vector<PendingTx>> mempool_;  // keyed by boundary
  std::vector<Block> blocks_;
  std::vector<Receipt> receipts_;
  std::vector<std::pair<Endpoint, Observer>> observers_;
};

}  // namespace xdeal

#endif  // XDEAL_CHAIN_BLOCKCHAIN_H_
