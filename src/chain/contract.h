// Contract interface (paper §3).
//
// Contracts are deterministic programs resident on one blockchain. They are
// passive (run only when a published entry calls them), can read any data on
// their own chain and call sibling contracts, but have no access to other
// chains or the outside world. Cross-chain information reaches a contract
// only as arguments supplied (and typically proven) by a calling party.

#ifndef XDEAL_CHAIN_CONTRACT_H_
#define XDEAL_CHAIN_CONTRACT_H_

#include <string>

#include "chain/gas.h"
#include "chain/ids.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/serialize.h"

namespace xdeal {

class Blockchain;
class World;
using Tick = uint64_t;  // must match sim/scheduler.h

/// A contract call as published in a chain entry: function name plus
/// canonically serialized arguments.
struct CallData {
  std::string function;
  Bytes args;
};

/// Execution context handed to a contract invocation.
struct CallContext {
  World* world = nullptr;        // public data only (key directory)
  Blockchain* chain = nullptr;   // the contract's own chain
  PartyId sender;                // authenticated publisher of the entry
  Tick now = 0;                  // block timestamp (height * interval)
  uint64_t block_height = 0;
  GasMeter* gas = nullptr;
};

/// Base class for on-chain programs. Invoke dispatches on function name and
/// deserializes arguments; a failed `require` is reported as a non-OK Status
/// (gas already charged stays charged).
class Contract {
 public:
  virtual ~Contract() = default;

  /// Human-readable type, for logs and receipts ("FungibleToken", ...).
  virtual std::string TypeName() const = 0;

  /// Executes `fn` with serialized arguments. Returns serialized results.
  virtual Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                               ByteReader& args) = 0;

  /// True if this contract type implements SnapshotState/RestoreState.
  /// Long-lived contracts (token ledgers) must; per-deal contracts whose
  /// deals have settled by the checkpoint boundary need not — the
  /// checkpointer retires them to inert placeholders instead.
  virtual bool SupportsSnapshot() const { return false; }

  /// Serializes mutable contract state into `w` (canonical encoding).
  virtual Status SnapshotState(ByteWriter* /*w*/) const {
    return Status::FailedPrecondition("contract type " + TypeName() +
                                 " does not support snapshot");
  }

  /// Restores mutable contract state from `r` (inverse of SnapshotState).
  virtual Status RestoreState(ByteReader& /*r*/) {
    return Status::FailedPrecondition("contract type " + TypeName() +
                                 " does not support restore");
  }

  /// The contract's own id on its chain (set at deployment). Escrow
  /// contracts use it to hold assets in their own name.
  ContractId self_id() const { return self_id_; }

  /// Called once by Blockchain::Deploy.
  void OnDeployed(ContractId id) { self_id_ = id; }

 private:
  ContractId self_id_;
};

}  // namespace xdeal

#endif  // XDEAL_CHAIN_CONTRACT_H_
