// Gas metering (paper §7.1).
//
// "Gas costs are dominated by two kinds of operations: writing to long-lived
//  storage is (usually) 5000 gas, and each signature verification is 3000
//  gas." Reads from long-lived storage are "double or triple digits" and
// simple arithmetic/control "single digits" — we charge matching constants.
//
// Contracts charge the meter explicitly at each metered operation; the
// per-transaction receipt records total gas, and benchmarks aggregate
// receipts per protocol phase to regenerate Figure 4.

#ifndef XDEAL_CHAIN_GAS_H_
#define XDEAL_CHAIN_GAS_H_

#include <cstdint>

#include "util/status.h"

namespace xdeal {

constexpr uint64_t kGasStorageWrite = 5000;
constexpr uint64_t kGasStorageRead = 200;
constexpr uint64_t kGasSigVerify = 3000;
constexpr uint64_t kGasCompute = 5;

/// Default per-transaction gas limit; generous, since deals are small.
constexpr uint64_t kDefaultGasLimit = 100'000'000;

/// Accumulates gas for one contract invocation. Charges past the limit
/// return kOutOfGas; the Blockchain aborts the call but records the receipt
/// (with gas consumed), like the EVM.
class GasMeter {
 public:
  explicit GasMeter(uint64_t limit = kDefaultGasLimit) : limit_(limit) {}

  Status ChargeStorageWrite(uint64_t count = 1) {
    return Charge(kGasStorageWrite * count, &storage_writes_, count);
  }
  Status ChargeStorageRead(uint64_t count = 1) {
    return Charge(kGasStorageRead * count, &storage_reads_, count);
  }
  Status ChargeSigVerify(uint64_t count = 1) {
    return Charge(kGasSigVerify * count, &sig_verifies_, count);
  }
  Status ChargeCompute(uint64_t count = 1) {
    return Charge(kGasCompute * count, &computes_, count);
  }

  uint64_t used() const { return used_; }
  uint64_t storage_writes() const { return storage_writes_; }
  uint64_t storage_reads() const { return storage_reads_; }
  uint64_t sig_verifies() const { return sig_verifies_; }

 private:
  Status Charge(uint64_t amount, uint64_t* counter, uint64_t count) {
    used_ += amount;
    *counter += count;
    if (used_ > limit_) {
      return Status::OutOfGas("gas limit exceeded");
    }
    return Status::OK();
  }

  uint64_t limit_;
  uint64_t used_ = 0;
  uint64_t storage_writes_ = 0;
  uint64_t storage_reads_ = 0;
  uint64_t sig_verifies_ = 0;
  uint64_t computes_ = 0;
};

}  // namespace xdeal

#endif  // XDEAL_CHAIN_GAS_H_
