#include "chain/ids.h"

#include <cassert>

namespace xdeal {

PartyId KeyDirectory::Register(const std::string& name,
                               const std::string& seed_domain) {
  PartyId id{static_cast<uint32_t>(entries_.size())};
  entries_.push_back(Entry{name, KeyPair::FromSeed(seed_domain + "/" + name)});
  return id;
}

Result<PublicKey> KeyDirectory::PublicKeyOf(PartyId p) const {
  if (p.v >= entries_.size()) {
    return Status::NotFound("unknown party id");
  }
  return entries_[p.v].keys.public_key();
}

Result<std::string> KeyDirectory::NameOf(PartyId p) const {
  if (p.v >= entries_.size()) {
    return Status::NotFound("unknown party id");
  }
  return entries_[p.v].name;
}

const KeyPair& KeyDirectory::KeyPairOf(PartyId p) const {
  assert(p.v < entries_.size());
  return entries_[p.v].keys;
}

}  // namespace xdeal
