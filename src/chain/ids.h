// Identifier types for parties, chains, and contracts, plus the global key
// directory.
//
// §3 of the paper: "We assume each party has a public key and a private key,
// and that any party's public key is known to all." The KeyDirectory is that
// assumption made concrete: a read-only mapping from party to public key that
// contracts and parties may consult freely.

#ifndef XDEAL_CHAIN_IDS_H_
#define XDEAL_CHAIN_IDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/schnorr.h"
#include "util/result.h"

namespace xdeal {

constexpr uint32_t kInvalidId = ~0u;

/// A party: a person, organization, or (in the paper's model) a contract.
struct PartyId {
  uint32_t v = kInvalidId;

  bool valid() const { return v != kInvalidId; }
  bool operator==(const PartyId& o) const { return v == o.v; }
  bool operator!=(const PartyId& o) const { return v != o.v; }
  bool operator<(const PartyId& o) const { return v < o.v; }
};

/// One of the independent blockchains.
struct ChainId {
  uint32_t v = kInvalidId;

  bool valid() const { return v != kInvalidId; }
  bool operator==(const ChainId& o) const { return v == o.v; }
  bool operator!=(const ChainId& o) const { return v != o.v; }
  bool operator<(const ChainId& o) const { return v < o.v; }
};

/// A contract resident on a specific chain.
struct ContractId {
  uint32_t v = kInvalidId;

  bool valid() const { return v != kInvalidId; }
  bool operator==(const ContractId& o) const { return v == o.v; }
  bool operator!=(const ContractId& o) const { return v != o.v; }
  bool operator<(const ContractId& o) const { return v < o.v; }
};

/// Global public-key directory (paper §3: all public keys are known to all).
/// Private keys are held by the World and handed only to the owning party's
/// strategy object.
class KeyDirectory {
 public:
  /// Registers a party with a deterministic key pair derived from
  /// (seed_domain, name). Returns its id.
  PartyId Register(const std::string& name, const std::string& seed_domain);

  size_t size() const { return entries_.size(); }

  Result<PublicKey> PublicKeyOf(PartyId p) const;
  Result<std::string> NameOf(PartyId p) const;

  /// Private-key access: only the simulation harness (World) calls this to
  /// wire a party's strategy to its keys.
  const KeyPair& KeyPairOf(PartyId p) const;

 private:
  struct Entry {
    std::string name;
    KeyPair keys;
  };
  std::vector<Entry> entries_;
};

}  // namespace xdeal

#endif  // XDEAL_CHAIN_IDS_H_
