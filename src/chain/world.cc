#include "chain/world.h"

#include <cassert>

namespace xdeal {

World::World(uint64_t seed, std::unique_ptr<NetworkModel> net)
    : seed_(seed), rng_(seed), network_(std::move(net)) {
  assert(network_ != nullptr);
}

PartyId World::RegisterParty(const std::string& name) {
  return key_directory_.Register(name, "world");
}

Blockchain* World::CreateChain(const std::string& name, Tick block_interval) {
  ChainId id{static_cast<uint32_t>(chains_.size())};
  chains_.push_back(
      std::make_unique<Blockchain>(this, id, name, block_interval));
  return chains_.back().get();
}

Blockchain* World::chain(ChainId id) {
  if (id.v >= chains_.size()) return nullptr;
  return chains_[id.v].get();
}

const Blockchain* World::chain(ChainId id) const {
  if (id.v >= chains_.size()) return nullptr;
  return chains_[id.v].get();
}

void World::Submit(PartyId from, ChainId chain_id, ContractId contract,
                   CallData call, std::string tag, uint64_t deal_tag) {
  Blockchain* target = chain(chain_id);
  assert(target != nullptr);
  Tick delay =
      SampleDelay(PartyEndpoint(from), ChainEndpoint(chain_id));
  Tick arrival_offset = delay;
  scheduler_.ScheduleAfter(
      arrival_offset, EventLabel::TxArrival(chain_id.v, from.v),
      [this, target, from, contract, call = std::move(call),
       tag = std::move(tag), deal_tag]() mutable {
        target->SubmitAt(scheduler_.now(), from, contract, std::move(call),
                         std::move(tag), deal_tag);
      });
}

Tick World::SampleDelay(Endpoint from, Endpoint to) {
  return network_->SampleDelay(scheduler_.now(), from, to, &rng_);
}

Tick World::KeyedObservationDelay(ChainId chain, Endpoint who,
                                  uint64_t block_height) {
  // Chained SplitMix64 mixes: each stage fully avalanches before the next
  // input is folded in, so (chain, who, height) tuples map to well-spread
  // stream seeds with no structured collisions.
  uint64_t h = SplitMix64(seed_ ^ 0x0b5e7a1d4ed0c9f3ULL).Next();
  h = SplitMix64(h ^ chain.v).Next();
  h = SplitMix64(h ^ who.id).Next();
  h = SplitMix64(h ^ block_height).Next();
  Rng local(h);
  return network_->SampleDelay(scheduler_.now(), ChainEndpoint(chain), who,
                               &local);
}

uint64_t World::TotalGas() const {
  uint64_t sum = 0;
  for (const auto& c : chains_) sum += c->total_gas();
  return sum;
}

Status World::Checkpoint(ByteWriter* w) const {
  if (observation_delivery_ != ObservationDelivery::kIndexed) {
    return Status::FailedPrecondition(
        "world checkpoint requires indexed observation delivery");
  }
  if (scheduler_.pending() != scheduler_.pending_durable()) {
    return Status::FailedPrecondition(
        "world checkpoint requires a drained scheduler (" +
        std::to_string(scheduler_.pending() - scheduler_.pending_durable()) +
        " non-durable events pending)");
  }
  uint64_t rng_state[4];
  rng_.GetState(rng_state);
  for (uint64_t s : rng_state) w->U64(s);
  w->U64(scheduler_.now());
  // next_seq is not directly readable; reconstruct it as max(imported seq)+1
  // at restore. Write the stats block the engine's backlog probes read.
  const SchedulerStats& stats = scheduler_.stats();
  w->U64(stats.executed);
  w->U64(stats.dropped);
  w->U64(stats.max_pending);
  w->U64(stats.max_pending_at);
  std::vector<DurableEvent> durable = scheduler_.PendingDurable();
  w->U32(static_cast<uint32_t>(durable.size()));
  uint64_t max_seq = 0;
  for (const DurableEvent& ev : durable) {
    w->U64(ev.seq);
    w->U64(ev.time);
    w->U8(static_cast<uint8_t>(ev.label.kind));
    w->U32(ev.label.chain);
    w->U32(ev.label.actor);
    w->Str(ev.handler);
    w->U64(ev.payload);
    if (ev.seq > max_seq) max_seq = ev.seq;
  }
  // The restored scheduler's next_seq must be past every live seq; any
  // fresh value beyond the durable tail works because all non-durable
  // events have fired (their seqs are dead and never compared again).
  w->U64(durable.empty() ? 0 : max_seq + 1);

  w->U32(static_cast<uint32_t>(key_directory_.size()));
  for (uint32_t i = 0; i < key_directory_.size(); ++i) {
    auto name = key_directory_.NameOf(PartyId{i});
    if (!name.ok()) return name.status();
    w->Str(name.value());
  }

  w->U32(static_cast<uint32_t>(chains_.size()));
  for (const auto& c : chains_) {
    w->Str(c->name());
    w->U64(c->block_interval());
    ByteWriter body;
    XDEAL_RETURN_IF_ERROR(c->Checkpoint(&body));
    w->Blob(body.bytes());
  }
  return Status::OK();
}

Status World::Restore(ByteReader& r,
                      const Blockchain::ContractFactory& factory) {
  if (key_directory_.size() != 0 || !chains_.empty() ||
      scheduler_.pending() != 0 || scheduler_.now() != 0) {
    return Status::FailedPrecondition(
        "world restore requires a freshly constructed World");
  }
  observation_delivery_ = ObservationDelivery::kIndexed;
  uint64_t rng_state[4];
  for (auto& s : rng_state) {
    auto v = r.U64();
    if (!v.ok()) return v.status();
    s = v.value();
  }
  rng_.SetState(rng_state);

  auto now = r.U64();
  auto executed = r.U64();
  auto dropped = r.U64();
  auto max_pending = r.U64();
  auto max_pending_at = r.U64();
  if (!now.ok() || !executed.ok() || !dropped.ok() || !max_pending.ok() ||
      !max_pending_at.ok()) {
    return Status::InvalidArgument("world snapshot: truncated scheduler state");
  }
  auto n_durable = r.U32();
  if (!n_durable.ok()) return n_durable.status();
  std::vector<DurableEvent> durable;
  durable.reserve(n_durable.value());
  for (uint32_t i = 0; i < n_durable.value(); ++i) {
    DurableEvent ev;
    auto seq = r.U64();
    auto time = r.U64();
    auto kind = r.U8();
    auto chain = r.U32();
    auto actor = r.U32();
    auto handler = r.Str();
    auto payload = r.U64();
    if (!seq.ok() || !time.ok() || !kind.ok() || !chain.ok() || !actor.ok() ||
        !handler.ok() || !payload.ok()) {
      return Status::InvalidArgument("world snapshot: truncated durable event");
    }
    ev.seq = seq.value();
    ev.time = time.value();
    ev.label.kind = static_cast<EventKind>(kind.value());
    ev.label.chain = chain.value();
    ev.label.actor = actor.value();
    ev.handler = handler.value();
    ev.payload = payload.value();
    durable.push_back(ev);
  }
  auto next_seq = r.U64();
  if (!next_seq.ok()) return next_seq.status();

  SchedulerStats stats;
  stats.executed = executed.value();
  stats.dropped = dropped.value();
  stats.max_pending = static_cast<size_t>(max_pending.value());
  stats.max_pending_at = max_pending_at.value();
  scheduler_.RestoreClock(now.value(), next_seq.value(), stats);
  scheduler_.ImportDurable(durable);

  auto n_parties = r.U32();
  if (!n_parties.ok()) return n_parties.status();
  for (uint32_t i = 0; i < n_parties.value(); ++i) {
    auto name = r.Str();
    if (!name.ok()) return name.status();
    RegisterParty(name.value());  // keys re-derive from (domain, name)
  }

  auto n_chains = r.U32();
  if (!n_chains.ok()) return n_chains.status();
  for (uint32_t i = 0; i < n_chains.value(); ++i) {
    auto name = r.Str();
    auto interval = r.U64();
    if (!name.ok() || !interval.ok()) {
      return Status::InvalidArgument("world snapshot: truncated chain header");
    }
    auto body = r.Blob();
    if (!body.ok()) return body.status();
    Blockchain* c = CreateChain(name.value(), interval.value());
    ByteReader body_reader(body.value());
    XDEAL_RETURN_IF_ERROR(c->Restore(body_reader, factory));
  }
  return Status::OK();
}

}  // namespace xdeal
