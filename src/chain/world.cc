#include "chain/world.h"

#include <cassert>

namespace xdeal {

World::World(uint64_t seed, std::unique_ptr<NetworkModel> net)
    : seed_(seed), rng_(seed), network_(std::move(net)) {
  assert(network_ != nullptr);
}

PartyId World::RegisterParty(const std::string& name) {
  return key_directory_.Register(name, "world");
}

Blockchain* World::CreateChain(const std::string& name, Tick block_interval) {
  ChainId id{static_cast<uint32_t>(chains_.size())};
  chains_.push_back(
      std::make_unique<Blockchain>(this, id, name, block_interval));
  return chains_.back().get();
}

Blockchain* World::chain(ChainId id) {
  if (id.v >= chains_.size()) return nullptr;
  return chains_[id.v].get();
}

const Blockchain* World::chain(ChainId id) const {
  if (id.v >= chains_.size()) return nullptr;
  return chains_[id.v].get();
}

void World::Submit(PartyId from, ChainId chain_id, ContractId contract,
                   CallData call, std::string tag, uint64_t deal_tag) {
  Blockchain* target = chain(chain_id);
  assert(target != nullptr);
  Tick delay =
      SampleDelay(PartyEndpoint(from), ChainEndpoint(chain_id));
  Tick arrival_offset = delay;
  scheduler_.ScheduleAfter(
      arrival_offset, EventLabel::TxArrival(chain_id.v, from.v),
      [this, target, from, contract, call = std::move(call),
       tag = std::move(tag), deal_tag]() mutable {
        target->SubmitAt(scheduler_.now(), from, contract, std::move(call),
                         std::move(tag), deal_tag);
      });
}

Tick World::SampleDelay(Endpoint from, Endpoint to) {
  return network_->SampleDelay(scheduler_.now(), from, to, &rng_);
}

Tick World::KeyedObservationDelay(ChainId chain, Endpoint who,
                                  uint64_t block_height) {
  // Chained SplitMix64 mixes: each stage fully avalanches before the next
  // input is folded in, so (chain, who, height) tuples map to well-spread
  // stream seeds with no structured collisions.
  uint64_t h = SplitMix64(seed_ ^ 0x0b5e7a1d4ed0c9f3ULL).Next();
  h = SplitMix64(h ^ chain.v).Next();
  h = SplitMix64(h ^ who.id).Next();
  h = SplitMix64(h ^ block_height).Next();
  Rng local(h);
  return network_->SampleDelay(scheduler_.now(), ChainEndpoint(chain), who,
                               &local);
}

uint64_t World::TotalGas() const {
  uint64_t sum = 0;
  for (const auto& c : chains_) sum += c->total_gas();
  return sum;
}

}  // namespace xdeal
