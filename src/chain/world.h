// World: the simulation container — scheduler, RNG, network model, key
// directory, and the set of independent blockchains.
//
// The World is the root object every scenario builds: create chains, register
// parties, deploy contracts, then drive parties that submit transactions and
// observe receipts. All cross-component timing flows through the network
// model so scenarios can swap synchrony assumptions without touching
// protocol code.

#ifndef XDEAL_CHAIN_WORLD_H_
#define XDEAL_CHAIN_WORLD_H_

#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "chain/ids.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "util/det.h"
#include "util/rng.h"

namespace xdeal {

/// How chains deliver receipt observations to subscribers.
///
/// kBroadcast is the legacy mode and the default: every receipt goes to
/// every observer of the chain (one delay draw from the World's sequential
/// RNG per observer per block), and tag-filtered subscriptions behave like
/// plain ones — consumers filter for themselves. Bit-compatible with every
/// historical fingerprint.
///
/// kIndexed delivers each receipt only to the observers subscribed to its
/// deal_tag (plus unfiltered observers), with observation delays drawn from
/// a keyed per-(chain, observer, block) stream instead of the sequential
/// RNG. Per-block delivery work becomes O(receipts × interested observers)
/// — the mode that makes D=10^5 shared-chain workloads linear. Schedules
/// (and thus fingerprints) differ from broadcast mode, but runs remain
/// fully deterministic for a given seed.
enum class ObservationDelivery { kBroadcast, kIndexed };

class World {
 public:
  /// `seed` drives every random choice; `net` supplies message delays.
  World(uint64_t seed, std::unique_ptr<NetworkModel> net);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Rng& rng() { return rng_; }
  Tick now() const { return scheduler_.now(); }
  uint64_t seed() const { return seed_; }

  /// Registers a party (keys derived deterministically from seed + name).
  PartyId RegisterParty(const std::string& name);

  /// Creates a new independent blockchain.
  Blockchain* CreateChain(const std::string& name, Tick block_interval);

  Blockchain* chain(ChainId id);
  const Blockchain* chain(ChainId id) const;
  size_t num_chains() const { return chains_.size(); }

  const KeyDirectory& keys() const { return key_directory_; }

  /// Private-key handle for a party's own strategy object.
  const KeyPair& KeyPairOf(PartyId p) const {
    return key_directory_.KeyPairOf(p);
  }

  /// Submits a transaction from `from` to a contract on `chain_id`.
  /// The message reaches the chain after a sampled network delay and executes
  /// at the following block boundary. Returns immediately (fire and forget);
  /// results arrive through chain subscription or direct state reads.
  /// `deal_tag` labels the resulting receipt so multi-deal workloads can
  /// attribute gas/latency per deal (0 = untagged).
  XDEAL_DETERMINISTIC void Submit(PartyId from, ChainId chain_id, ContractId contract,
              CallData call, std::string tag = "", uint64_t deal_tag = 0);

  /// Samples a one-way delay between two endpoints (exposed for components
  /// like block observation that need the same model). Consumes the World's
  /// sequential RNG stream.
  XDEAL_DETERMINISTIC Tick SampleDelay(Endpoint from, Endpoint to);

  /// Observation delay for kIndexed delivery: drawn through the network
  /// model from a private stream keyed on (world seed, chain, observer,
  /// block height). A pure function of its inputs — it consumes nothing
  /// from the sequential RNG, so delivery may skip any subset of observers
  /// without perturbing anyone else's draws.
  XDEAL_DETERMINISTIC Tick KeyedObservationDelay(ChainId chain, Endpoint who,
                             uint64_t block_height);

  /// Selects the observation delivery mode (see ObservationDelivery). Flip
  /// before the first block is produced; mid-run switches would mix the two
  /// delay streams.
  void set_observation_delivery(ObservationDelivery mode) {
    observation_delivery_ = mode;
  }
  ObservationDelivery observation_delivery() const {
    return observation_delivery_;
  }

  Endpoint PartyEndpoint(PartyId p) const { return Endpoint{p.v}; }
  Endpoint ChainEndpoint(ChainId c) const {
    return Endpoint{kChainEndpointBase + c.v};
  }

  /// Sum of gas across all chains (global cost, Figure 4 rows).
  uint64_t TotalGas() const;

  /// Serializes the World's durable state into `w`: RNG stream position,
  /// scheduler clock + pending durable events, party registry, and every
  /// chain's Checkpoint. Only valid at a quiescent boundary — the scheduler
  /// may hold nothing but durable events (pending() == pending_durable())
  /// and every mempool must be empty — and only under kIndexed delivery
  /// (broadcast delivery draws the sequential RNG per subscribed observer,
  /// including observers of long-settled deals that do not exist after a
  /// restore, so broadcast runs cannot resume bit-identically).
  XDEAL_DETERMINISTIC Status Checkpoint(ByteWriter* w) const;

  /// Restores a freshly constructed World (same seed + network model) from
  /// a Checkpoint: re-registers parties by name (keys re-derive
  /// deterministically), recreates chains and their contracts via
  /// `factory`, re-imports durable events at their original (time, seq)
  /// positions, and fast-forwards the RNG/clock. After Restore the next
  /// scheduled event fires bit-identically to the uninterrupted run.
  XDEAL_DETERMINISTIC Status Restore(ByteReader& r,
                                     const Blockchain::ContractFactory& factory);

 private:
  static constexpr uint32_t kChainEndpointBase = 1u << 24;

  Scheduler scheduler_;
  uint64_t seed_;
  Rng rng_;
  std::unique_ptr<NetworkModel> network_;
  KeyDirectory key_directory_;
  std::vector<std::unique_ptr<Blockchain>> chains_;
  ObservationDelivery observation_delivery_ = ObservationDelivery::kBroadcast;
};

}  // namespace xdeal

#endif  // XDEAL_CHAIN_WORLD_H_
