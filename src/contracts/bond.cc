#include "contracts/bond.h"

#include <algorithm>

#include "chain/blockchain.h"

namespace xdeal {

const TimelockEscrowContract* FirstFaultBondContract::Escrow(
    const CallContext& ctx) const {
  return ctx.chain->As<TimelockEscrowContract>(escrow_);
}

Result<Bytes> FirstFaultBondContract::Invoke(CallContext& ctx,
                                             const std::string& fn,
                                             ByteReader& /*args*/) {
  Status st;
  if (fn == "deposit") {
    st = HandleDeposit(ctx);
  } else if (fn == "claim") {
    st = HandleClaim(ctx);
  } else {
    st = Status::NotFound("FirstFaultBond: unknown function " + fn);
  }
  if (!st.ok()) return st;
  return Bytes{};
}

Status FirstFaultBondContract::HandleDeposit(CallContext& ctx) {
  if (std::find(plist_.begin(), plist_.end(), ctx.sender) == plist_.end()) {
    return Status::PermissionDenied("bond: sender not in plist");
  }
  if (deposited_.count(ctx.sender) > 0) {
    return Status::AlreadyExists("bond: already deposited");
  }
  auto* token = ctx.chain->As<FungibleToken>(bond_token_);
  if (token == nullptr) return Status::Internal("bond: token missing");
  Holder self = Holder::OfContract(self_id());
  XDEAL_RETURN_IF_ERROR(token->TransferFrom(
      ctx, self, Holder::Party(ctx.sender), self, bond_amount_));
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  deposited_[ctx.sender] = true;
  return Status::OK();
}

uint64_t FirstFaultBondContract::PayoutOf(const CallContext& ctx,
                                          PartyId p) const {
  const TimelockEscrowContract* escrow = Escrow(ctx);
  if (escrow == nullptr || !escrow->settled()) return 0;
  if (deposited_.count(p) == 0) return 0;

  if (escrow->released()) return bond_amount_;  // deal committed: full refund

  // Deal timed out here: blame the depositors whose votes never arrived.
  std::vector<PartyId> innocent, guilty;
  for (const auto& [party, unused] : deposited_) {
    (void)unused;
    if (escrow->HasVoted(party)) {
      innocent.push_back(party);
    } else {
      guilty.push_back(party);
    }
  }
  if (innocent.empty()) return bond_amount_;  // nobody voted: no first fault
  if (escrow->HasVoted(p)) {
    uint64_t forfeited = guilty.size() * bond_amount_;
    return bond_amount_ + forfeited / innocent.size();
  }
  return 0;  // p caused (or co-caused) the failure: bond forfeited
}

Status FirstFaultBondContract::HandleClaim(CallContext& ctx) {
  const TimelockEscrowContract* escrow = Escrow(ctx);
  if (escrow == nullptr || !escrow->settled()) {
    return Status::FailedPrecondition("bond: deal not settled yet");
  }
  if (deposited_.count(ctx.sender) == 0) {
    return Status::NotFound("bond: no deposit from sender");
  }
  if (claimed_.count(ctx.sender) > 0) {
    return Status::AlreadyExists("bond: already claimed");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead(2));
  uint64_t payout = PayoutOf(ctx, ctx.sender);
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  claimed_[ctx.sender] = true;
  if (payout == 0) return Status::OK();  // forfeited; claim records that
  auto* token = ctx.chain->As<FungibleToken>(bond_token_);
  if (token == nullptr) return Status::Internal("bond: token missing");
  Holder self = Holder::OfContract(self_id());
  return token->Transfer(ctx, self, self, Holder::Party(ctx.sender), payout);
}

}  // namespace xdeal
