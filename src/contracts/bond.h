// FirstFaultBondContract — the §9 incentive mechanism.
//
// "To discourage maliciously joining then aborting deals, a party might
//  escrow a small deposit that is lost if that party is the first to cause
//  the deal to fail."
//
// One bond contract is co-located with a timelock escrow contract (same
// chain, so it may read the escrow's public state, §3). Every party posts an
// equal fungible bond during setup. After the deal settles:
//   - if the escrow RELEASED (deal committed here): every party reclaims its
//     bond in full;
//   - if the escrow REFUNDED (timed out): parties whose commit votes the
//     escrow accepted are "innocent" — they reclaim their bond plus an equal
//     share of the forfeited bonds of the parties whose votes never arrived
//     (the ones who caused the failure);
//   - if nobody voted at all, bonds are simply returned (no one can be
//     blamed first).
//
// On-chain functions:
//   "deposit" ()            — post the bond (requires prior approval)
//   "claim"   ()            — after the escrow settles, pay out per above

#ifndef XDEAL_CONTRACTS_BOND_H_
#define XDEAL_CONTRACTS_BOND_H_

#include <map>
#include <string>
#include <vector>

#include "contracts/timelock_escrow.h"

namespace xdeal {

class FirstFaultBondContract : public Contract {
 public:
  FirstFaultBondContract(ContractId bond_token, ContractId escrow,
                         std::vector<PartyId> plist, uint64_t bond_amount)
      : bond_token_(bond_token),
        escrow_(escrow),
        plist_(std::move(plist)),
        bond_amount_(bond_amount) {}

  std::string TypeName() const override { return "FirstFaultBond"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // --- public state ---
  bool HasDeposited(PartyId p) const { return deposited_.count(p) > 0; }
  bool HasClaimed(PartyId p) const { return claimed_.count(p) > 0; }
  uint64_t bond_amount() const { return bond_amount_; }
  /// Payout `p` would receive right now (0 if not settled / not entitled).
  uint64_t PayoutOf(const CallContext& ctx, PartyId p) const;

 private:
  Status HandleDeposit(CallContext& ctx);
  Status HandleClaim(CallContext& ctx);
  const TimelockEscrowContract* Escrow(const CallContext& ctx) const;

  ContractId bond_token_;
  ContractId escrow_;
  std::vector<PartyId> plist_;
  uint64_t bond_amount_;
  std::map<PartyId, bool> deposited_;
  std::map<PartyId, bool> claimed_;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_BOND_H_
