#include "contracts/cbc_escrow.h"

#include <algorithm>

namespace xdeal {

namespace {

Result<Hash256> ReadHash32(ByteReader& args) {
  auto bytes = args.Raw(32);
  if (!bytes.ok()) return bytes.status();
  Hash256 h;
  std::copy(bytes.value().begin(), bytes.value().end(), h.bytes.begin());
  return h;
}

}  // namespace

Result<Bytes> CbcEscrowContract::Invoke(CallContext& ctx,
                                        const std::string& fn,
                                        ByteReader& args) {
  Status st;
  if (fn == "escrow") {
    st = HandleEscrow(ctx, args);
  } else if (fn == "transfer") {
    st = HandleTransfer(ctx, args);
  } else if (fn == "decide") {
    st = HandleDecide(ctx, args);
  } else {
    st = Status::NotFound("CbcEscrow: unknown function " + fn);
  }
  if (!st.ok()) return st;
  return Bytes{};
}

Status CbcEscrowContract::HandleEscrow(CallContext& ctx, ByteReader& args) {
  auto deal_id = ReadHash32(args);
  if (!deal_id.ok()) return deal_id.status();
  auto count = args.U32();
  if (!count.ok()) return count.status();
  if (count.value() == 0 || count.value() > 4096) {
    return Status::InvalidArgument("escrow: bad plist size");
  }
  std::vector<PartyId> plist;
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto p = args.U32();
    if (!p.ok()) return p.status();
    plist.push_back(PartyId{p.value()});
  }
  auto h = ReadHash32(args);
  if (!h.ok()) return h.status();
  // Validators of the CBC at escrow time ("passing the 3f+1 validators of
  // the initial block as an extra argument to each of the deal's escrow
  // contracts", §6.2).
  auto nvals = args.U32();
  if (!nvals.ok()) return nvals.status();
  if (nvals.value() == 0 || nvals.value() % 3 != 1 || nvals.value() > 4096) {
    return Status::InvalidArgument("escrow: validator set must be 3f+1");
  }
  std::vector<PublicKey> validators;
  for (uint32_t i = 0; i < nvals.value(); ++i) {
    auto key_hash = ReadHash32(args);
    if (!key_hash.ok()) return key_hash.status();
    validators.push_back(PublicKey{U256::FromHash(key_hash.value())});
  }
  auto epoch = args.U32();
  if (!epoch.ok()) return epoch.status();
  auto value = args.U64();
  if (!value.ok()) return value.status();
  // Optional trailing home-shard binding (cross-shard deals). Legacy
  // clients omit it; their escrows stay unbound.
  bool shard_bound = false;
  uint32_t home_shard = 0;
  if (!args.AtEnd()) {
    auto shard = args.U32();
    if (!shard.ok()) return shard.status();
    shard_bound = true;
    home_shard = shard.value();
  }

  if (!initialized_) {
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
    deal_id_ = deal_id.value();
    start_hash_ = h.value();
    plist_ = std::move(plist);
    validators_ = std::move(validators);
    validator_epoch_ = epoch.value();
    shard_bound_ = shard_bound;
    home_shard_ = home_shard;
    initialized_ = true;
  } else {
    // Later escrows must agree on every parameter ("Parties must provide
    // the correct validators when putting assets in escrow, and they must
    // check their correctness before voting to commit").
    bool same = deal_id_ == deal_id.value() && start_hash_ == h.value() &&
                plist_ == plist && validator_epoch_ == epoch.value() &&
                shard_bound_ == shard_bound && home_shard_ == home_shard &&
                validators_.size() == validators.size();
    if (same) {
      for (size_t i = 0; i < validators.size(); ++i) {
        same = same && validators_[i] == validators[i];
      }
    }
    if (!same) {
      return Status::FailedPrecondition("escrow: deal parameters mismatch");
    }
  }
  if (std::find(plist_.begin(), plist_.end(), ctx.sender) == plist_.end()) {
    return Status::PermissionDenied("escrow: sender not in plist");
  }
  return core_.EscrowIn(ctx, Holder::OfContract(self_id()), ctx.sender,
                        value.value());
}

Status CbcEscrowContract::HandleTransfer(CallContext& ctx, ByteReader& args) {
  auto deal_id = ReadHash32(args);
  if (!deal_id.ok()) return deal_id.status();
  auto to = args.U32();
  auto value = args.U64();
  if (!to.ok() || !value.ok()) {
    return Status::InvalidArgument("transfer: bad args");
  }
  if (!initialized_ || !(deal_id_ == deal_id.value())) {
    return Status::NotFound("transfer: unknown deal");
  }
  PartyId target{to.value()};
  if (std::find(plist_.begin(), plist_.end(), target) == plist_.end()) {
    return Status::PermissionDenied("transfer: target not in plist");
  }
  return core_.TentativeTransfer(ctx, ctx.sender, target, value.value());
}

Status CbcEscrowContract::HandleDecide(CallContext& ctx, ByteReader& args) {
  auto deal_id = ReadHash32(args);
  if (!deal_id.ok()) return deal_id.status();
  if (!initialized_ || !(deal_id_ == deal_id.value())) {
    return Status::NotFound("decide: unknown deal");
  }
  if (settled()) {
    return Status::FailedPrecondition("decide: already settled");
  }
  auto proof_bytes = args.Blob();
  if (!proof_bytes.ok()) return proof_bytes.status();
  CbcProof inner;
  if (DecideProof::IsWrapped(proof_bytes.value())) {
    auto dp = DecideProof::Deserialize(proof_bytes.value());
    if (!dp.ok()) return dp.status();
    // Shard front check: a proof replayed from the wrong shard is rejected
    // here, before the contract spends any signature-verification gas.
    if (shard_bound_ && dp.value().shard != home_shard_) {
      return Status::PermissionDenied("decide: shard mismatch");
    }
    inner = std::move(dp).value().proof;
  } else {
    auto proof = CbcProof::Deserialize(proof_bytes.value());
    if (!proof.ok()) return proof.status();
    inner = std::move(proof).value();
  }

  // Figure 6: check the certificate chain — every signature costs gas.
  auto outcome = VerifyCbcProof(inner, deal_id_, start_hash_,
                                validators_, validator_epoch_, ctx.gas);
  if (!outcome.ok()) return outcome.status();

  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));  // outcome flag
  outcome_ = outcome.value();
  if (outcome_ == kDealCommitted) {
    return core_.ReleaseAll(ctx, Holder::OfContract(self_id()));
  }
  return core_.RefundAll(ctx, Holder::OfContract(self_id()));
}

}  // namespace xdeal
