// CbcEscrowContract: the escrow contract of the CBC commit protocol
// (paper §6, Figure 6).
//
// One instance manages one asset for one deal. Unlike the timelock escrow,
// there is no voting here: parties vote commit/abort on the CBC itself, and
// this contract only *checks proofs*. A party claiming assets (or a refund)
// presents a CbcProof; the contract verifies the certificate chain against
// the validator set pinned at escrow time and settles accordingly.
//
// On-chain functions (Invoke):
//   "escrow"   (deal_id, plist, h, validators, epoch, value[, home_shard])
//   "transfer" (deal_id, to, value)
//   "decide"   (deal_id, serialized CbcProof or DecideProof)
//
// Cross-shard deals: the escrow may live on a different shard's chain than
// the deal's CBC log. The optional trailing `home_shard` escrow argument
// pins the issuing shard; a shard-bound escrow then accepts only
// DecideProofs declaring that shard ("decide: shard mismatch" otherwise —
// a cheap front check before any signature-verification gas is spent).
// Legacy bare-CbcProof decide payloads and unbound escrows keep working
// unchanged.

#ifndef XDEAL_CONTRACTS_CBC_ESCROW_H_
#define XDEAL_CONTRACTS_CBC_ESCROW_H_

#include <string>
#include <vector>

#include "cbc/types.h"
#include "contracts/deal_info.h"
#include "contracts/escrow_core.h"
#include "contracts/escrow_view.h"

namespace xdeal {

class CbcEscrowContract : public Contract, public DealEscrowView {
 public:
  CbcEscrowContract(AssetKind kind, ContractId token) {
    core_.Bind(kind, token);
  }

  std::string TypeName() const override { return "CbcEscrow"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // --- public state ---
  const EscrowCore& core() const { return core_; }
  bool initialized() const { return initialized_; }
  const DealId& deal_id() const { return deal_id_; }
  const Hash256& start_hash() const { return start_hash_; }
  const std::vector<PartyId>& plist() const { return plist_; }
  const std::vector<PublicKey>& validators() const { return validators_; }
  DealOutcome outcome() const { return outcome_; }
  bool settled() const { return outcome_ != kDealActive; }
  bool shard_bound() const { return shard_bound_; }
  uint32_t home_shard() const { return home_shard_; }

  // DealEscrowView:
  const EscrowCore& escrow_core() const override { return core_; }
  bool Released() const override { return outcome_ == kDealCommitted; }
  bool Refunded() const override { return outcome_ == kDealAborted; }

 private:
  Status HandleEscrow(CallContext& ctx, ByteReader& args);
  Status HandleTransfer(CallContext& ctx, ByteReader& args);
  Status HandleDecide(CallContext& ctx, ByteReader& args);

  EscrowCore core_;
  bool initialized_ = false;
  DealId deal_id_;
  Hash256 start_hash_;
  std::vector<PartyId> plist_;
  std::vector<PublicKey> validators_;  // pinned at escrow time
  uint32_t validator_epoch_ = 0;
  // Cross-shard binding: when set, only DecideProofs declaring this home
  // shard are accepted (the pinned validators are that shard's).
  bool shard_bound_ = false;
  uint32_t home_shard_ = 0;
  DealOutcome outcome_ = kDealActive;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_CBC_ESCROW_H_
