// DealInfo: the deal metadata broadcast by the market-clearing service and
// checked by escrow contracts (paper §5 "Clearing Phase").
//
// Also defines the canonical byte format of timelock commit-vote messages.
// A vote from voter v forwarded along a path of parties carries one
// signature per path element; the signature at depth i is over
// TimelockVoteMessage(D, v, i). Both the signing parties and the verifying
// contracts derive these bytes, so they live here, shared.

#ifndef XDEAL_CONTRACTS_DEAL_INFO_H_
#define XDEAL_CONTRACTS_DEAL_INFO_H_

#include <algorithm>
#include <vector>

#include "chain/contract.h"
#include "crypto/sha256.h"
#include "util/serialize.h"

namespace xdeal {

/// Globally unique deal identifier ("effectively a nonce", §5).
using DealId = Hash256;

/// Deal metadata for the timelock protocol: participant list, commit-phase
/// starting time t0, and the synchrony bound Δ.
struct DealInfo {
  DealId deal_id;
  std::vector<PartyId> plist;
  Tick t0 = 0;
  Tick delta = 0;

  bool HasParty(PartyId p) const {
    return std::find(plist.begin(), plist.end(), p) != plist.end();
  }

  size_t NumParties() const { return plist.size(); }

  /// Timeout for a vote with a path signature of length `path_len`:
  /// t0 + |p| * Δ (§5).
  Tick VoteDeadline(size_t path_len) const {
    return t0 + static_cast<Tick>(path_len) * delta;
  }

  /// Final contract timeout: t0 + N * Δ, after which missing votes can never
  /// be accepted and escrows refund (§5).
  Tick RefundTime() const {
    return t0 + static_cast<Tick>(plist.size()) * delta;
  }

  /// Canonical serialization (for hashing / consistency checks).
  Bytes Serialize() const {
    ByteWriter w;
    w.Raw(deal_id.bytes.data(), deal_id.bytes.size());
    w.U32(static_cast<uint32_t>(plist.size()));
    for (PartyId p : plist) w.U32(p.v);
    w.U64(t0);
    w.U64(delta);
    return w.Take();
  }

  bool operator==(const DealInfo& o) const {
    return Serialize() == o.Serialize();
  }
};

/// Derives a fresh deal id from a human-readable label plus entropy.
inline DealId MakeDealId(std::string_view label, uint64_t nonce) {
  ByteWriter w;
  w.Str("xdeal-deal-id");
  w.Str(label);
  w.U64(nonce);
  return Sha256Digest(w.bytes());
}

/// The byte string signed at depth `depth` of a path signature for
/// `voter`'s commit vote on deal `deal_id` (timelock protocol, §5).
inline Bytes TimelockVoteMessage(const DealId& deal_id, PartyId voter,
                                 uint32_t depth) {
  ByteWriter w;
  w.Str("xdeal-timelock-vote");
  w.Raw(deal_id.bytes.data(), deal_id.bytes.size());
  w.U32(voter.v);
  w.U32(depth);
  return w.Take();
}

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_DEAL_INFO_H_
