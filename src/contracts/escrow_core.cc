#include "contracts/escrow_core.h"

#include "chain/blockchain.h"

namespace xdeal {

FungibleToken* EscrowCore::Fungible(CallContext& ctx) const {
  return ctx.chain->As<FungibleToken>(token_);
}

TicketRegistry* EscrowCore::Nft(CallContext& ctx) const {
  return ctx.chain->As<TicketRegistry>(token_);
}

Status EscrowCore::EscrowIn(CallContext& ctx, const Holder& self,
                            PartyId party, uint64_t value) {
  if (settled_) {
    return Status::FailedPrecondition("escrow: deal already settled");
  }
  Holder owner = Holder::Party(party);
  if (kind_ == AssetKind::kFungible) {
    FungibleToken* token = Fungible(ctx);
    if (token == nullptr) return Status::Internal("escrow: token missing");
    // Pull the deposit (2 storage writes inside transferFrom).
    XDEAL_RETURN_IF_ERROR(
        token->TransferFrom(ctx, self, owner, self, value));
    // escrow map + onCommit map: 1 write each (Figure 3 lines 9-10).
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
    escrowed_[party] += value;
    on_commit_[party] += value;
    return Status::OK();
  }
  TicketRegistry* registry = Nft(ctx);
  if (registry == nullptr) return Status::Internal("escrow: registry missing");
  XDEAL_RETURN_IF_ERROR(
      registry->TransferFrom(ctx, self, owner, self, value));
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
  nft_refund_[value] = party;
  nft_commit_[value] = party;
  return Status::OK();
}

Status EscrowCore::TentativeTransfer(CallContext& ctx, PartyId from,
                                     PartyId to, uint64_t value) {
  if (settled_) {
    return Status::FailedPrecondition("transfer: deal already settled");
  }
  if (kind_ == AssetKind::kFungible) {
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead());
    auto it = on_commit_.find(from);
    if (it == on_commit_.end() || it->second < value) {
      // §4 precondition OwnsC(P, a) violated.
      return Status::FailedPrecondition(
          "transfer: sender lacks commit-ownership");
    }
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
    it->second -= value;
    on_commit_[to] += value;
    return Status::OK();
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead());
  auto it = nft_commit_.find(value);
  if (it == nft_commit_.end() || it->second != from) {
    return Status::FailedPrecondition(
        "transfer: sender lacks commit-ownership of ticket");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  it->second = to;
  return Status::OK();
}

Status EscrowCore::ReleaseAll(CallContext& ctx, const Holder& self) {
  if (settled_) return Status::OK();  // idempotent
  settled_ = true;
  if (kind_ == AssetKind::kFungible) {
    FungibleToken* token = Fungible(ctx);
    if (token == nullptr) return Status::Internal("release: token missing");
    for (const auto& [party, amount] : on_commit_) {
      if (amount == 0) continue;
      XDEAL_RETURN_IF_ERROR(
          token->Transfer(ctx, self, self, Holder::Party(party), amount));
    }
    return Status::OK();
  }
  TicketRegistry* registry = Nft(ctx);
  if (registry == nullptr) return Status::Internal("release: registry missing");
  for (const auto& [ticket, party] : nft_commit_) {
    XDEAL_RETURN_IF_ERROR(registry->TransferFrom(ctx, self, self,
                                                 Holder::Party(party), ticket));
  }
  return Status::OK();
}

Status EscrowCore::RefundAll(CallContext& ctx, const Holder& self) {
  if (settled_) return Status::OK();  // idempotent
  settled_ = true;
  if (kind_ == AssetKind::kFungible) {
    FungibleToken* token = Fungible(ctx);
    if (token == nullptr) return Status::Internal("refund: token missing");
    for (const auto& [party, amount] : escrowed_) {
      if (amount == 0) continue;
      XDEAL_RETURN_IF_ERROR(
          token->Transfer(ctx, self, self, Holder::Party(party), amount));
    }
    return Status::OK();
  }
  TicketRegistry* registry = Nft(ctx);
  if (registry == nullptr) return Status::Internal("refund: registry missing");
  for (const auto& [ticket, party] : nft_refund_) {
    XDEAL_RETURN_IF_ERROR(registry->TransferFrom(ctx, self, self,
                                                 Holder::Party(party), ticket));
  }
  return Status::OK();
}

uint64_t EscrowCore::OnCommitOf(PartyId p) const {
  if (kind_ == AssetKind::kFungible) {
    auto it = on_commit_.find(p);
    return it == on_commit_.end() ? 0 : it->second;
  }
  uint64_t count = 0;
  for (const auto& [ticket, party] : nft_commit_) {
    if (party == p) ++count;
  }
  return count;
}

uint64_t EscrowCore::EscrowedOf(PartyId p) const {
  if (kind_ == AssetKind::kFungible) {
    auto it = escrowed_.find(p);
    return it == escrowed_.end() ? 0 : it->second;
  }
  uint64_t count = 0;
  for (const auto& [ticket, party] : nft_refund_) {
    if (party == p) ++count;
  }
  return count;
}

PartyId EscrowCore::NftCommitOwner(uint64_t ticket_id) const {
  auto it = nft_commit_.find(ticket_id);
  return it == nft_commit_.end() ? PartyId{} : it->second;
}

PartyId EscrowCore::NftRefundOwner(uint64_t ticket_id) const {
  auto it = nft_refund_.find(ticket_id);
  return it == nft_refund_.end() ? PartyId{} : it->second;
}

std::vector<PartyId> EscrowCore::Depositors() const {
  std::vector<PartyId> out;
  if (kind_ == AssetKind::kFungible) {
    for (const auto& [party, amount] : escrowed_) {
      if (amount > 0) out.push_back(party);
    }
    return out;
  }
  for (const auto& [ticket, party] : nft_refund_) {
    bool seen = false;
    for (PartyId p : out) seen = seen || (p == party);
    if (!seen) out.push_back(party);
  }
  return out;
}

}  // namespace xdeal
