// EscrowCore: the asset-holding and tentative-transfer bookkeeping shared by
// both commit protocols' escrow contracts.
//
// Implements the §4 escrow state machine. For a deal D and asset a:
//
//   escrow:   Pre:  Owns(P, a)
//             Post: Owns(D, a) ∧ OwnsC(P, a) ∧ OwnsA(P, a)
//   transfer: Pre:  Owns(D, a) ∧ OwnsC(P, a)
//             Post: OwnsC(Q, a)
//
// where OwnsC is the `onCommit` map (who gets the asset if the deal commits)
// and OwnsA is the `escrow` map (who gets it back on abort). The escrow
// contract itself becomes the owner of record on the token ledger, which is
// what prevents double-spending (§10: "Escrow contracts replace classical
// locks").
//
// Gas profile matches Figure 3: escrow = 4 storage writes (2 in the token
// transferFrom + 1 escrow map + 1 onCommit map); tentative transfer = 2
// writes (fungible debit+credit) or 1 (NFT owner update).

#ifndef XDEAL_CONTRACTS_ESCROW_CORE_H_
#define XDEAL_CONTRACTS_ESCROW_CORE_H_

#include <map>
#include <vector>

#include "chain/contract.h"
#include "contracts/fungible_token.h"
#include "contracts/ticket_registry.h"

namespace xdeal {

enum class AssetKind : uint8_t { kFungible = 0, kNft = 1 };

/// Bookkeeping component embedded in TimelockEscrowContract and
/// CbcEscrowContract. Not itself a Contract.
class EscrowCore {
 public:
  EscrowCore() = default;

  /// Binds the core to the token contract it escrows (same chain).
  void Bind(AssetKind kind, ContractId token) {
    kind_ = kind;
    token_ = token;
  }

  AssetKind kind() const { return kind_; }
  ContractId token() const { return token_; }

  /// Escrow-phase deposit. For fungible assets `value` is an amount; for
  /// NFTs it is a ticket id. `self` is the enclosing escrow contract's
  /// holder identity. Requires a prior on-chain approval by `party`.
  Status EscrowIn(CallContext& ctx, const Holder& self, PartyId party,
                  uint64_t value);

  /// Tentative transfer of `value` (amount or ticket id) from `from`'s
  /// commit-ownership to `to`. Enforces the §4 precondition OwnsC(from, a).
  Status TentativeTransfer(CallContext& ctx, PartyId from, PartyId to,
                           uint64_t value);

  /// Commit outcome: pays every onCommit owner and clears state.
  Status ReleaseAll(CallContext& ctx, const Holder& self);

  /// Abort outcome: refunds every original owner and clears state.
  Status RefundAll(CallContext& ctx, const Holder& self);

  // --- public state (off-chain readable) ---

  /// OwnsC: commit-ownership. Amount for fungible; for NFTs, the total count
  /// of tickets tentatively owned.
  uint64_t OnCommitOf(PartyId p) const;
  /// OwnsA: abort-ownership (what was deposited).
  uint64_t EscrowedOf(PartyId p) const;
  /// NFT view: tentative owner of a specific ticket (invalid if not held).
  PartyId NftCommitOwner(uint64_t ticket_id) const;
  /// NFT view: refund owner of a specific ticket.
  PartyId NftRefundOwner(uint64_t ticket_id) const;
  /// All parties with any escrowed stake.
  std::vector<PartyId> Depositors() const;
  /// True once ReleaseAll or RefundAll has run.
  bool settled() const { return settled_; }

 private:
  FungibleToken* Fungible(CallContext& ctx) const;
  TicketRegistry* Nft(CallContext& ctx) const;

  AssetKind kind_ = AssetKind::kFungible;
  ContractId token_;
  bool settled_ = false;

  // Fungible: party -> amount.
  std::map<PartyId, uint64_t> escrowed_;
  std::map<PartyId, uint64_t> on_commit_;
  // NFT: ticket -> party.
  std::map<uint64_t, PartyId> nft_refund_;
  std::map<uint64_t, PartyId> nft_commit_;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_ESCROW_CORE_H_
