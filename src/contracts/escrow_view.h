// DealEscrowView: read-only interface over a deal's escrow contract state,
// implemented by both TimelockEscrowContract and CbcEscrowContract so that
// outcome evaluation (core/checker.h) is protocol-agnostic.

#ifndef XDEAL_CONTRACTS_ESCROW_VIEW_H_
#define XDEAL_CONTRACTS_ESCROW_VIEW_H_

#include "contracts/escrow_core.h"

namespace xdeal {

class DealEscrowView {
 public:
  virtual ~DealEscrowView() = default;

  virtual const EscrowCore& escrow_core() const = 0;
  /// Deal committed at this asset: escrow released to onCommit owners.
  virtual bool Released() const = 0;
  /// Deal aborted at this asset: escrow refunded to original owners.
  virtual bool Refunded() const = 0;

  bool Settled() const { return Released() || Refunded(); }
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_ESCROW_VIEW_H_
