#include "contracts/fungible_token.h"

namespace xdeal {

Result<Bytes> FungibleToken::Invoke(CallContext& ctx, const std::string& fn,
                                    ByteReader& args) {
  Holder sender = Holder::Party(ctx.sender);
  if (fn == "transfer") {
    // args: to_kind u8, to_id u32, amount u64
    auto kind = args.U8();
    auto id = args.U32();
    auto amount = args.U64();
    if (!kind.ok() || !id.ok() || !amount.ok()) {
      return Status::InvalidArgument("transfer: bad args");
    }
    Holder to{static_cast<Holder::Kind>(kind.value()), id.value()};
    XDEAL_RETURN_IF_ERROR(Transfer(ctx, sender, sender, to, amount.value()));
    return Bytes{};
  }
  if (fn == "approve") {
    auto kind = args.U8();
    auto id = args.U32();
    auto amount = args.U64();
    if (!kind.ok() || !id.ok() || !amount.ok()) {
      return Status::InvalidArgument("approve: bad args");
    }
    Holder spender{static_cast<Holder::Kind>(kind.value()), id.value()};
    XDEAL_RETURN_IF_ERROR(Approve(ctx, sender, sender, spender,
                                  amount.value()));
    return Bytes{};
  }
  return Status::NotFound("FungibleToken: unknown function " + fn);
}

uint64_t FungibleToken::BalanceOf(const Holder& h) const {
  auto it = balances_.find(h);
  return it == balances_.end() ? 0 : it->second;
}

uint64_t FungibleToken::Allowance(const Holder& owner,
                                  const Holder& spender) const {
  auto it = allowances_.find({owner, spender});
  return it == allowances_.end() ? 0 : it->second;
}

Status FungibleToken::Mint(const Holder& to, uint64_t amount) {
  balances_[to] += amount;
  total_supply_ += amount;
  return Status::OK();
}

Status FungibleToken::Transfer(CallContext& ctx, const Holder& caller,
                               const Holder& from, const Holder& to,
                               uint64_t amount) {
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead());
  if (caller != from) {
    return Status::PermissionDenied("transfer: caller is not the owner");
  }
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("transfer: insufficient balance");
  }
  // Two long-lived storage writes: debit and credit.
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
  it->second -= amount;
  balances_[to] += amount;
  return Status::OK();
}

Status FungibleToken::TransferFrom(CallContext& ctx, const Holder& caller,
                                   const Holder& from, const Holder& to,
                                   uint64_t amount) {
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead(2));
  if (caller != from) {
    auto allowance = allowances_.find({from, caller});
    if (allowance == allowances_.end() || allowance->second < amount) {
      return Status::PermissionDenied("transferFrom: insufficient allowance");
    }
    allowance->second -= amount;
  }
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("transferFrom: insufficient balance");
  }
  // Two long-lived storage writes (Figure 3 line 8 is counted as 2 writes).
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
  it->second -= amount;
  balances_[to] += amount;
  return Status::OK();
}

Status FungibleToken::Approve(CallContext& ctx, const Holder& caller,
                              const Holder& owner, const Holder& spender,
                              uint64_t amount) {
  if (caller != owner) {
    return Status::PermissionDenied("approve: caller is not the owner");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  allowances_[{owner, spender}] = amount;
  return Status::OK();
}

namespace {

void WriteHolder(ByteWriter* w, const Holder& h) {
  w->U8(static_cast<uint8_t>(h.kind)).U32(h.id);
}

Result<Holder> ReadHolder(ByteReader& r) {
  auto kind = r.U8();
  if (!kind.ok()) return kind.status();
  auto id = r.U32();
  if (!id.ok()) return id.status();
  return Holder{static_cast<Holder::Kind>(kind.value()), id.value()};
}

}  // namespace

Status FungibleToken::SnapshotState(ByteWriter* w) const {
  w->Str(symbol_).U32(issuer_.v).U64(total_supply_);
  w->U32(static_cast<uint32_t>(balances_.size()));
  for (const auto& [holder, amount] : balances_) {
    WriteHolder(w, holder);
    w->U64(amount);
  }
  w->U32(static_cast<uint32_t>(allowances_.size()));
  for (const auto& [pair, amount] : allowances_) {
    WriteHolder(w, pair.first);
    WriteHolder(w, pair.second);
    w->U64(amount);
  }
  return Status::OK();
}

Status FungibleToken::RestoreState(ByteReader& r) {
  auto symbol = r.Str();
  auto issuer = r.U32();
  auto supply = r.U64();
  if (!symbol.ok() || !issuer.ok() || !supply.ok()) {
    return Status::InvalidArgument("FungibleToken snapshot: bad header");
  }
  symbol_ = symbol.value();
  issuer_ = PartyId{issuer.value()};
  total_supply_ = supply.value();
  balances_.clear();
  allowances_.clear();
  auto n_bal = r.U32();
  if (!n_bal.ok()) return n_bal.status();
  for (uint32_t i = 0; i < n_bal.value(); ++i) {
    auto holder = ReadHolder(r);
    if (!holder.ok()) return holder.status();
    auto amount = r.U64();
    if (!amount.ok()) return amount.status();
    balances_[holder.value()] = amount.value();
  }
  auto n_allow = r.U32();
  if (!n_allow.ok()) return n_allow.status();
  for (uint32_t i = 0; i < n_allow.value(); ++i) {
    auto owner = ReadHolder(r);
    if (!owner.ok()) return owner.status();
    auto spender = ReadHolder(r);
    if (!spender.ok()) return spender.status();
    auto amount = r.U64();
    if (!amount.ok()) return amount.status();
    allowances_[{owner.value(), spender.value()}] = amount.value();
  }
  return Status::OK();
}

}  // namespace xdeal
