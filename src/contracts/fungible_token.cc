#include "contracts/fungible_token.h"

namespace xdeal {

Result<Bytes> FungibleToken::Invoke(CallContext& ctx, const std::string& fn,
                                    ByteReader& args) {
  Holder sender = Holder::Party(ctx.sender);
  if (fn == "transfer") {
    // args: to_kind u8, to_id u32, amount u64
    auto kind = args.U8();
    auto id = args.U32();
    auto amount = args.U64();
    if (!kind.ok() || !id.ok() || !amount.ok()) {
      return Status::InvalidArgument("transfer: bad args");
    }
    Holder to{static_cast<Holder::Kind>(kind.value()), id.value()};
    XDEAL_RETURN_IF_ERROR(Transfer(ctx, sender, sender, to, amount.value()));
    return Bytes{};
  }
  if (fn == "approve") {
    auto kind = args.U8();
    auto id = args.U32();
    auto amount = args.U64();
    if (!kind.ok() || !id.ok() || !amount.ok()) {
      return Status::InvalidArgument("approve: bad args");
    }
    Holder spender{static_cast<Holder::Kind>(kind.value()), id.value()};
    XDEAL_RETURN_IF_ERROR(Approve(ctx, sender, sender, spender,
                                  amount.value()));
    return Bytes{};
  }
  return Status::NotFound("FungibleToken: unknown function " + fn);
}

uint64_t FungibleToken::BalanceOf(const Holder& h) const {
  auto it = balances_.find(h);
  return it == balances_.end() ? 0 : it->second;
}

uint64_t FungibleToken::Allowance(const Holder& owner,
                                  const Holder& spender) const {
  auto it = allowances_.find({owner, spender});
  return it == allowances_.end() ? 0 : it->second;
}

Status FungibleToken::Mint(const Holder& to, uint64_t amount) {
  balances_[to] += amount;
  total_supply_ += amount;
  return Status::OK();
}

Status FungibleToken::Transfer(CallContext& ctx, const Holder& caller,
                               const Holder& from, const Holder& to,
                               uint64_t amount) {
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead());
  if (caller != from) {
    return Status::PermissionDenied("transfer: caller is not the owner");
  }
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("transfer: insufficient balance");
  }
  // Two long-lived storage writes: debit and credit.
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
  it->second -= amount;
  balances_[to] += amount;
  return Status::OK();
}

Status FungibleToken::TransferFrom(CallContext& ctx, const Holder& caller,
                                   const Holder& from, const Holder& to,
                                   uint64_t amount) {
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead(2));
  if (caller != from) {
    auto allowance = allowances_.find({from, caller});
    if (allowance == allowances_.end() || allowance->second < amount) {
      return Status::PermissionDenied("transferFrom: insufficient allowance");
    }
    allowance->second -= amount;
  }
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) {
    return Status::FailedPrecondition("transferFrom: insufficient balance");
  }
  // Two long-lived storage writes (Figure 3 line 8 is counted as 2 writes).
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
  it->second -= amount;
  balances_[to] += amount;
  return Status::OK();
}

Status FungibleToken::Approve(CallContext& ctx, const Holder& caller,
                              const Holder& owner, const Holder& spender,
                              uint64_t amount) {
  if (caller != owner) {
    return Status::PermissionDenied("approve: caller is not the owner");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  allowances_[{owner, spender}] = amount;
  return Status::OK();
}

}  // namespace xdeal
