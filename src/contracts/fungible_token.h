// FungibleToken: an ERC20-style token ledger (paper §7.1, Figure 3 models
// the escrowed asset "as an ERC20-standard token").
//
// Supports mint (issuer only), transfer, approve, and transferFrom. The
// escrow contract uses transferFrom to pull approved funds into escrow —
// charged as 2 storage writes, matching the paper's count.
//
// On-chain entry points (via Invoke): "transfer", "approve".
// Sibling-contract entry points (C++ methods with explicit caller): the
// escrow contract calls TransferFrom / TransferInternal directly, passing the
// CallContext so gas lands on the enclosing transaction.

#ifndef XDEAL_CONTRACTS_FUNGIBLE_TOKEN_H_
#define XDEAL_CONTRACTS_FUNGIBLE_TOKEN_H_

#include <map>
#include <string>

#include "chain/contract.h"
#include "contracts/holder.h"

namespace xdeal {

class FungibleToken : public Contract {
 public:
  /// `symbol` is decorative ("COIN"); `issuer` may mint.
  FungibleToken(std::string symbol, PartyId issuer)
      : symbol_(std::move(symbol)), issuer_(issuer) {}

  std::string TypeName() const override { return "FungibleToken"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // Token ledgers are long-lived (they outlive every deal that touches
  // them), so they are the one contract family a World checkpoint must
  // carry with full state: symbol, issuer, supply, balances, allowances.
  bool SupportsSnapshot() const override { return true; }
  Status SnapshotState(ByteWriter* w) const override;
  Status RestoreState(ByteReader& r) override;

  // --- off-chain reads (contract state is public, §3) ---
  uint64_t BalanceOf(const Holder& h) const;
  uint64_t Allowance(const Holder& owner, const Holder& spender) const;
  uint64_t total_supply() const { return total_supply_; }
  const std::string& symbol() const { return symbol_; }

  // --- sibling-contract / harness entry points ---

  /// Mints new tokens to `to` (test/scenario setup; issuer authority).
  Status Mint(const Holder& to, uint64_t amount);

  /// Moves tokens; `caller` must be the current owner `from`.
  Status Transfer(CallContext& ctx, const Holder& caller, const Holder& from,
                  const Holder& to, uint64_t amount);

  /// Moves tokens using `caller`'s allowance from `from`.
  Status TransferFrom(CallContext& ctx, const Holder& caller,
                      const Holder& from, const Holder& to, uint64_t amount);

  /// Sets `spender`'s allowance from `owner`; `caller` must be `owner`.
  Status Approve(CallContext& ctx, const Holder& caller, const Holder& owner,
                 const Holder& spender, uint64_t amount);

 private:
  std::string symbol_;
  PartyId issuer_;
  uint64_t total_supply_ = 0;
  std::map<Holder, uint64_t> balances_;
  std::map<std::pair<Holder, Holder>, uint64_t> allowances_;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_FUNGIBLE_TOKEN_H_
