// Holder: an asset owner — either a party or a contract.
//
// §4: "A party may be a person or a contract". Escrow works by making the
// escrow contract itself the owner of record ("the escrow mechanism prevents
// double-spending by making the escrow contract itself the asset owner"), so
// token ledgers are keyed by Holder rather than PartyId.

#ifndef XDEAL_CONTRACTS_HOLDER_H_
#define XDEAL_CONTRACTS_HOLDER_H_

#include <cstdint>
#include <string>

#include "chain/ids.h"

namespace xdeal {

struct Holder {
  enum class Kind : uint8_t { kParty = 0, kContract = 1 };

  Kind kind = Kind::kParty;
  uint32_t id = kInvalidId;

  static Holder Party(PartyId p) { return Holder{Kind::kParty, p.v}; }
  static Holder OfContract(ContractId c) {
    return Holder{Kind::kContract, c.v};
  }

  bool valid() const { return id != kInvalidId; }
  bool is_party() const { return kind == Kind::kParty; }
  PartyId party() const { return PartyId{id}; }
  ContractId contract() const { return ContractId{id}; }

  bool operator==(const Holder& o) const {
    return kind == o.kind && id == o.id;
  }
  bool operator!=(const Holder& o) const { return !(*this == o); }
  bool operator<(const Holder& o) const {
    if (kind != o.kind) return kind < o.kind;
    return id < o.id;
  }

  std::string ToString() const {
    return (is_party() ? "party:" : "contract:") + std::to_string(id);
  }
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_HOLDER_H_
