#include "contracts/htlc.h"

namespace xdeal {

Result<Bytes> HtlcContract::Invoke(CallContext& ctx, const std::string& fn,
                                   ByteReader& args) {
  Status st;
  if (fn == "deposit") {
    st = HandleDeposit(ctx, args);
  } else if (fn == "claim") {
    st = HandleClaim(ctx, args);
  } else if (fn == "refund") {
    st = HandleRefund(ctx);
  } else {
    st = Status::NotFound("HTLC: unknown function " + fn);
  }
  if (!st.ok()) return st;
  return Bytes{};
}

Status HtlcContract::HandleDeposit(CallContext& ctx, ByteReader& args) {
  auto value = args.U64();
  if (!value.ok()) return value.status();
  if (ctx.sender != depositor_) {
    return Status::PermissionDenied("deposit: only the depositor funds");
  }
  if (funded_) {
    return Status::AlreadyExists("deposit: already funded");
  }
  XDEAL_RETURN_IF_ERROR(core_.EscrowIn(ctx, Holder::OfContract(self_id()),
                                       ctx.sender, value.value()));
  // Route commit-ownership to the counterparty so a claim pays them out.
  XDEAL_RETURN_IF_ERROR(
      core_.TentativeTransfer(ctx, depositor_, counterparty_, value.value()));
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  funded_ = true;
  return Status::OK();
}

Status HtlcContract::HandleClaim(CallContext& ctx, ByteReader& args) {
  auto preimage = args.Blob();
  if (!preimage.ok()) return preimage.status();
  if (!funded_ || claimed_ || refunded_) {
    return Status::FailedPrecondition("claim: not claimable");
  }
  if (ctx.now >= timeout_) {
    return Status::TimedOut("claim: past the timelock");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeCompute(10));  // hash evaluation
  if (!(Sha256Digest(preimage.value()) == hashlock_)) {
    return Status::Unverified("claim: preimage does not match hashlock");
  }
  // Publishing the preimage on-chain is the point: observers learn s.
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));  // secret + flag
  secret_ = preimage.value();
  claimed_ = true;
  return core_.ReleaseAll(ctx, Holder::OfContract(self_id()));
}

Status HtlcContract::HandleRefund(CallContext& ctx) {
  if (!funded_ || claimed_ || refunded_) {
    return Status::FailedPrecondition("refund: not refundable");
  }
  if (ctx.now < timeout_) {
    return Status::FailedPrecondition("refund: timelock not expired");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  refunded_ = true;
  return core_.RefundAll(ctx, Holder::OfContract(self_id()));
}

}  // namespace xdeal
