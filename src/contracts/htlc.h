// HtlcContract: a hashed timelock contract, the building block of atomic
// cross-chain swaps (paper §8; Herlihy, PODC'18; BIP-199).
//
// An HTLC escrows one asset from a depositor for a counterparty behind a
// hashlock H(s) and a timelock T:
//   - claim(s): before T, anyone presenting the preimage s with
//     H(s) == hashlock sends the asset to the counterparty — and publishes
//     s on-chain, which is how the secret propagates through a swap;
//   - refund(): at or after T, the asset returns to the depositor.
//
// This is the baseline the deal protocols are compared against (experiment
// E9): swaps handle direct pairwise transfers but cannot express the
// broker or auction deals.

#ifndef XDEAL_CONTRACTS_HTLC_H_
#define XDEAL_CONTRACTS_HTLC_H_

#include <optional>
#include <string>

#include "contracts/escrow_core.h"

namespace xdeal {

class HtlcContract : public Contract {
 public:
  /// The hashlock is SHA-256 over the raw secret bytes.
  HtlcContract(AssetKind kind, ContractId token, PartyId depositor,
               PartyId counterparty, Hash256 hashlock, Tick timeout)
      : depositor_(depositor),
        counterparty_(counterparty),
        hashlock_(hashlock),
        timeout_(timeout) {
    core_.Bind(kind, token);
  }

  std::string TypeName() const override { return "HTLC"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // --- public state ---
  PartyId depositor() const { return depositor_; }
  PartyId counterparty() const { return counterparty_; }
  const Hash256& hashlock() const { return hashlock_; }
  Tick timeout() const { return timeout_; }
  bool funded() const { return funded_; }
  bool claimed() const { return claimed_; }
  bool refunded() const { return refunded_; }
  /// The revealed preimage, once claimed (public on the chain).
  const std::optional<Bytes>& revealed_secret() const { return secret_; }

 private:
  Status HandleDeposit(CallContext& ctx, ByteReader& args);
  Status HandleClaim(CallContext& ctx, ByteReader& args);
  Status HandleRefund(CallContext& ctx);

  EscrowCore core_;
  PartyId depositor_;
  PartyId counterparty_;
  Hash256 hashlock_;
  Tick timeout_;
  bool funded_ = false;
  bool claimed_ = false;
  bool refunded_ = false;
  std::optional<Bytes> secret_;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_HTLC_H_
