#include "contracts/ticket_registry.h"

namespace xdeal {

Result<Bytes> TicketRegistry::Invoke(CallContext& ctx, const std::string& fn,
                                     ByteReader& args) {
  Holder sender = Holder::Party(ctx.sender);
  if (fn == "transfer") {
    auto kind = args.U8();
    auto id = args.U32();
    auto ticket = args.U64();
    if (!kind.ok() || !id.ok() || !ticket.ok()) {
      return Status::InvalidArgument("transfer: bad args");
    }
    Holder to{static_cast<Holder::Kind>(kind.value()), id.value()};
    XDEAL_RETURN_IF_ERROR(
        TransferFrom(ctx, sender, sender, to, ticket.value()));
    return Bytes{};
  }
  if (fn == "approve") {
    auto ticket = args.U64();
    auto kind = args.U8();
    auto id = args.U32();
    if (!ticket.ok() || !kind.ok() || !id.ok()) {
      return Status::InvalidArgument("approve: bad args");
    }
    Holder spender{static_cast<Holder::Kind>(kind.value()), id.value()};
    XDEAL_RETURN_IF_ERROR(Approve(ctx, sender, ticket.value(), spender));
    return Bytes{};
  }
  return Status::NotFound("TicketRegistry: unknown function " + fn);
}

Holder TicketRegistry::OwnerOf(uint64_t ticket_id) const {
  auto it = owners_.find(ticket_id);
  return it == owners_.end() ? Holder{} : it->second;
}

Result<TicketInfo> TicketRegistry::InfoOf(uint64_t ticket_id) const {
  auto it = info_.find(ticket_id);
  if (it == info_.end()) return Status::NotFound("no such ticket");
  return it->second;
}

std::vector<uint64_t> TicketRegistry::TicketsOwnedBy(const Holder& h) const {
  std::vector<uint64_t> out;
  for (const auto& [id, owner] : owners_) {
    if (owner == h) out.push_back(id);
  }
  return out;
}

bool TicketRegistry::IsApproved(uint64_t ticket_id,
                                const Holder& spender) const {
  auto it = approvals_.find(ticket_id);
  return it != approvals_.end() && it->second == spender;
}

uint64_t TicketRegistry::Mint(const Holder& to, TicketInfo info) {
  uint64_t id = next_id_++;
  owners_[id] = to;
  info_[id] = std::move(info);
  return id;
}

Status TicketRegistry::TransferFrom(CallContext& ctx, const Holder& caller,
                                    const Holder& from, const Holder& to,
                                    uint64_t ticket_id) {
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead(2));
  auto it = owners_.find(ticket_id);
  if (it == owners_.end()) {
    return Status::NotFound("transferFrom: no such ticket");
  }
  if (it->second != from) {
    return Status::FailedPrecondition("transferFrom: `from` is not the owner");
  }
  if (caller != from && !IsApproved(ticket_id, caller)) {
    return Status::PermissionDenied("transferFrom: caller not authorized");
  }
  // Ownership update + approval clear: 2 storage writes, mirroring the
  // fungible path so Figure 4's escrow write-count analysis applies to both.
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(2));
  it->second = to;
  approvals_.erase(ticket_id);
  return Status::OK();
}

Status TicketRegistry::Approve(CallContext& ctx, const Holder& caller,
                               uint64_t ticket_id, const Holder& spender) {
  auto it = owners_.find(ticket_id);
  if (it == owners_.end()) {
    return Status::NotFound("approve: no such ticket");
  }
  if (it->second != caller) {
    return Status::PermissionDenied("approve: caller is not the owner");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  approvals_[ticket_id] = spender;
  return Status::OK();
}

}  // namespace xdeal
