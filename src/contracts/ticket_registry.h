// TicketRegistry: an ERC721-style non-fungible asset ledger.
//
// The paper's running example tracks theater tickets — non-fungible assets
// with attributes a buyer validates ("the seats are (at least as good as)
// the ones agreed upon", §4.1). Each ticket has an id, a seat label, and a
// numeric quality used by validation policies.

#ifndef XDEAL_CONTRACTS_TICKET_REGISTRY_H_
#define XDEAL_CONTRACTS_TICKET_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "chain/contract.h"
#include "contracts/holder.h"

namespace xdeal {

/// Immutable attributes of one ticket.
struct TicketInfo {
  std::string event;
  std::string seat;
  uint32_t quality = 0;  // higher is better; used by validation policies
};

class TicketRegistry : public Contract {
 public:
  explicit TicketRegistry(PartyId issuer) : issuer_(issuer) {}

  std::string TypeName() const override { return "TicketRegistry"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // --- off-chain reads ---
  /// Owner of a ticket; invalid Holder if the ticket does not exist.
  Holder OwnerOf(uint64_t ticket_id) const;
  Result<TicketInfo> InfoOf(uint64_t ticket_id) const;
  std::vector<uint64_t> TicketsOwnedBy(const Holder& h) const;
  bool IsApproved(uint64_t ticket_id, const Holder& spender) const;

  // --- harness / sibling-contract entry points ---

  /// Issues a new ticket to `to`; returns its id.
  uint64_t Mint(const Holder& to, TicketInfo info);

  /// Moves a ticket; `caller` must be the owner or per-ticket approved.
  Status TransferFrom(CallContext& ctx, const Holder& caller,
                      const Holder& from, const Holder& to,
                      uint64_t ticket_id);

  /// Grants `spender` the right to move `ticket_id` once.
  Status Approve(CallContext& ctx, const Holder& caller, uint64_t ticket_id,
                 const Holder& spender);

 private:
  PartyId issuer_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, Holder> owners_;
  std::map<uint64_t, TicketInfo> info_;
  std::map<uint64_t, Holder> approvals_;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_TICKET_REGISTRY_H_
