#include "contracts/timelock_escrow.h"

#include "chain/blockchain.h"
#include "chain/world.h"

namespace xdeal {

void PathVote::AppendTo(ByteWriter* w) const {
  w->U32(voter.v);
  w->U32(static_cast<uint32_t>(path.size()));
  for (const auto& [signer, sig] : path) {
    w->U32(signer.v);
    w->Raw(sig.Serialize());
  }
}

Result<PathVote> PathVote::Parse(ByteReader* r) {
  PathVote vote;
  auto voter = r->U32();
  if (!voter.ok()) return voter.status();
  vote.voter = PartyId{voter.value()};
  auto count = r->U32();
  if (!count.ok()) return count.status();
  if (count.value() == 0 || count.value() > 1024) {
    return Status::InvalidArgument("vote: bad path length");
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto signer = r->U32();
    if (!signer.ok()) return signer.status();
    auto sig_bytes = r->Raw(64);
    if (!sig_bytes.ok()) return sig_bytes.status();
    auto sig = Signature::Deserialize(sig_bytes.value());
    if (!sig.ok()) return sig.status();
    vote.path.emplace_back(PartyId{signer.value()}, sig.value());
  }
  return vote;
}

namespace {

/// Reads a DealInfo from escrow-call arguments.
Result<DealInfo> ParseDealInfo(ByteReader& args) {
  DealInfo info;
  auto id_bytes = args.Raw(32);
  if (!id_bytes.ok()) return id_bytes.status();
  std::copy(id_bytes.value().begin(), id_bytes.value().end(),
            info.deal_id.bytes.begin());
  auto count = args.U32();
  if (!count.ok()) return count.status();
  if (count.value() == 0 || count.value() > 4096) {
    return Status::InvalidArgument("escrow: bad plist size");
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto p = args.U32();
    if (!p.ok()) return p.status();
    info.plist.push_back(PartyId{p.value()});
  }
  auto t0 = args.U64();
  auto delta = args.U64();
  if (!t0.ok() || !delta.ok()) {
    return Status::InvalidArgument("escrow: bad timing args");
  }
  info.t0 = t0.value();
  info.delta = delta.value();
  return info;
}

Result<DealId> ParseDealId(ByteReader& args) {
  auto id_bytes = args.Raw(32);
  if (!id_bytes.ok()) return id_bytes.status();
  DealId id;
  std::copy(id_bytes.value().begin(), id_bytes.value().end(),
            id.bytes.begin());
  return id;
}

}  // namespace

Result<Bytes> TimelockEscrowContract::Invoke(CallContext& ctx,
                                             const std::string& fn,
                                             ByteReader& args) {
  Status st;
  if (fn == "escrow") {
    st = HandleEscrow(ctx, args);
  } else if (fn == "transfer") {
    st = HandleTransfer(ctx, args);
  } else if (fn == "commit") {
    st = HandleCommit(ctx, args);
  } else if (fn == "claimRefund") {
    st = HandleClaimRefund(ctx, args);
  } else {
    st = Status::NotFound("TimelockEscrow: unknown function " + fn);
  }
  if (!st.ok()) return st;
  return Bytes{};
}

Status TimelockEscrowContract::HandleEscrow(CallContext& ctx,
                                            ByteReader& args) {
  auto info = ParseDealInfo(args);
  if (!info.ok()) return info.status();
  auto value = args.U64();
  if (!value.ok()) return value.status();

  if (!initialized_) {
    // First escrow call fixes the deal parameters for this contract.
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
    deal_ = info.value();
    initialized_ = true;
  } else if (!(deal_ == info.value())) {
    return Status::FailedPrecondition("escrow: deal info mismatch");
  }
  if (!deal_.HasParty(ctx.sender)) {
    return Status::PermissionDenied("escrow: sender not in plist");
  }
  return core_.EscrowIn(ctx, Holder::OfContract(self_id()), ctx.sender,
                        value.value());
}

Status TimelockEscrowContract::HandleTransfer(CallContext& ctx,
                                              ByteReader& args) {
  auto deal_id = ParseDealId(args);
  if (!deal_id.ok()) return deal_id.status();
  auto to = args.U32();
  auto value = args.U64();
  if (!to.ok() || !value.ok()) {
    return Status::InvalidArgument("transfer: bad args");
  }
  if (!initialized_ || !(deal_.deal_id == deal_id.value())) {
    return Status::NotFound("transfer: unknown deal");
  }
  PartyId target{to.value()};
  if (!deal_.HasParty(target)) {
    return Status::PermissionDenied("transfer: target not in plist");
  }
  return core_.TentativeTransfer(ctx, ctx.sender, target, value.value());
}

Status TimelockEscrowContract::ValidateVote(CallContext& ctx,
                                            const PathVote& vote) {
  // Figure 5 line 6: not timed out (deadline scales with path length).
  if (ctx.now >= deal_.VoteDeadline(vote.path.size())) {
    return Status::TimedOut("commit: vote arrived past its path deadline");
  }
  // Line 7: legit voters only.
  if (!deal_.HasParty(vote.voter)) {
    return Status::PermissionDenied("commit: voter not in plist");
  }
  // Line 8: no duplicate votes.
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageRead());
  if (voted_.count(vote.voter) > 0) {
    return Status::AlreadyExists("commit: vote already accepted");
  }
  // Line 9: signers unique and in the plist; path starts at the voter.
  if (vote.path.empty() || vote.path.front().first != vote.voter) {
    return Status::InvalidArgument("commit: path must start with the voter");
  }
  std::set<PartyId> seen;
  for (const auto& [signer, sig] : vote.path) {
    if (!deal_.HasParty(signer)) {
      return Status::PermissionDenied("commit: signer not in plist");
    }
    if (!seen.insert(signer).second) {
      return Status::InvalidArgument("commit: duplicate signer");
    }
  }
  // Lines 10-12: verify every signature in the path (the expensive step).
  for (uint32_t depth = 0; depth < vote.path.size(); ++depth) {
    const auto& [signer, sig] = vote.path[depth];
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeSigVerify());
    auto key = ctx.world->keys().PublicKeyOf(signer);
    if (!key.ok()) return key.status();
    Bytes message = TimelockVoteMessage(deal_.deal_id, vote.voter, depth);
    if (!Verify(key.value(), message, sig)) {
      return Status::Unverified("commit: bad signature at depth " +
                                std::to_string(depth));
    }
  }
  return Status::OK();
}

Status TimelockEscrowContract::HandleCommit(CallContext& ctx,
                                            ByteReader& args) {
  auto deal_id = ParseDealId(args);
  if (!deal_id.ok()) return deal_id.status();
  if (!initialized_ || !(deal_.deal_id == deal_id.value())) {
    return Status::NotFound("commit: unknown deal");
  }
  if (settled()) {
    return Status::FailedPrecondition("commit: already settled");
  }
  auto vote = PathVote::Parse(&args);
  if (!vote.ok()) return vote.status();

  XDEAL_RETURN_IF_ERROR(ValidateVote(ctx, vote.value()));

  // Figure 5 line 13: record the voter (long-lived storage).
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));
  voted_.insert(vote.value().voter);
  accepted_votes_[vote.value().voter.v] = vote.value();

  // Release once every party's vote has been accepted.
  if (voted_.size() == deal_.plist.size()) {
    XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));  // outcome flag
    released_ = true;
    return core_.ReleaseAll(ctx, Holder::OfContract(self_id()));
  }
  return Status::OK();
}

Status TimelockEscrowContract::HandleClaimRefund(CallContext& ctx,
                                                 ByteReader& args) {
  auto deal_id = ParseDealId(args);
  if (!deal_id.ok()) return deal_id.status();
  if (!initialized_ || !(deal_.deal_id == deal_id.value())) {
    return Status::NotFound("claimRefund: unknown deal");
  }
  if (settled()) {
    return Status::FailedPrecondition("claimRefund: already settled");
  }
  // Missing votes can no longer arrive after t0 + N·Δ (§5): every vote's
  // deadline is at most that, so the contract may safely refund.
  if (ctx.now < deal_.RefundTime()) {
    return Status::FailedPrecondition("claimRefund: deal not timed out yet");
  }
  XDEAL_RETURN_IF_ERROR(ctx.gas->ChargeStorageWrite(1));  // outcome flag
  refunded_ = true;
  return core_.RefundAll(ctx, Holder::OfContract(self_id()));
}

}  // namespace xdeal
