// TimelockEscrowContract: the escrow + voting contract of the timelock
// commit protocol (paper §5, Figure 5).
//
// One instance manages one asset (one token contract) for one deal. Parties
// escrow outgoing assets, perform tentative transfers, then register commit
// votes. A vote from party X carried by path signature p is accepted only if
// it arrives before t0 + |p|·Δ. When the contract has accepted a vote from
// every party in the plist, it releases escrowed assets to their tentative
// (onCommit) owners. If some vote is still missing at t0 + N·Δ, it can never
// be accepted, and anyone may trigger a refund.
//
// On-chain functions (Invoke):
//   "escrow"       (deal_id, plist, t0, delta, value)
//   "transfer"     (deal_id, to, value)
//   "commit"       (deal_id, voter, [signer, sig]... )  — Figure 5
//   "claimRefund"  (deal_id)                            — after t0 + N·Δ

#ifndef XDEAL_CONTRACTS_TIMELOCK_ESCROW_H_
#define XDEAL_CONTRACTS_TIMELOCK_ESCROW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "contracts/deal_info.h"
#include "contracts/escrow_core.h"
#include "contracts/escrow_view.h"

namespace xdeal {

/// A parsed path-signature vote: the voter plus (signer, signature) pairs,
/// index 0 being the voter's own signature.
struct PathVote {
  PartyId voter;
  std::vector<std::pair<PartyId, Signature>> path;

  /// Serializes into "commit" call arguments (after the deal id).
  void AppendTo(ByteWriter* w) const;
  static Result<PathVote> Parse(ByteReader* r);
};

class TimelockEscrowContract : public Contract, public DealEscrowView {
 public:
  TimelockEscrowContract(AssetKind kind, ContractId token) {
    core_.Bind(kind, token);
  }

  std::string TypeName() const override { return "TimelockEscrow"; }

  Result<Bytes> Invoke(CallContext& ctx, const std::string& fn,
                       ByteReader& args) override;

  // --- public state (off-chain readable, §3) ---
  const EscrowCore& core() const { return core_; }
  bool initialized() const { return initialized_; }
  const DealInfo& deal() const { return deal_; }
  bool HasVoted(PartyId p) const { return voted_.count(p) > 0; }
  size_t NumVotes() const { return voted_.size(); }
  /// Accepted votes with their path signatures — public contract state that
  /// monitoring parties read in order to forward votes (§5).
  const std::map<uint32_t, PathVote>& accepted_votes() const {
    return accepted_votes_;
  }
  bool released() const { return released_; }
  bool refunded() const { return refunded_; }
  bool settled() const { return released_ || refunded_; }

  // DealEscrowView:
  const EscrowCore& escrow_core() const override { return core_; }
  bool Released() const override { return released_; }
  bool Refunded() const override { return refunded_; }

 private:
  Status HandleEscrow(CallContext& ctx, ByteReader& args);
  Status HandleTransfer(CallContext& ctx, ByteReader& args);
  Status HandleCommit(CallContext& ctx, ByteReader& args);
  Status HandleClaimRefund(CallContext& ctx, ByteReader& args);

  /// Figure 5's checks: deadline, legit voter, no duplicate vote, unique
  /// signers in plist, and one signature verification per path element.
  Status ValidateVote(CallContext& ctx, const PathVote& vote);

  EscrowCore core_;
  bool initialized_ = false;
  DealInfo deal_;
  std::set<PartyId> voted_;
  std::map<uint32_t, PathVote> accepted_votes_;  // voter id -> vote
  bool released_ = false;
  bool refunded_ = false;
};

}  // namespace xdeal

#endif  // XDEAL_CONTRACTS_TIMELOCK_ESCROW_H_
