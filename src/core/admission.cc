#include "core/admission.h"

#include <cmath>  // frexp only: exact, no rounding-mode dependence

#include "chain/world.h"
#include "util/rng.h"

namespace xdeal {

const char* ToString(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kFixedStagger: return "fixed";
    case ArrivalProcess::kPoisson: return "poisson";
  }
  return "?";
}

const char* ToString(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kDelay: return "delay";
    case AdmissionDecision::kShed: return "shed";
  }
  return "?";
}

double NegLogU01(double u) {
  if (!(u > 0.0)) return 0.0;  // defensive: callers pass (0, 1]
  if (u >= 1.0) return 0.0;

  // u = m * 2^e with m in [0.5, 1); ln u = ln m + e ln 2. frexp is exact.
  int e = 0;
  double m = std::frexp(u, &e);

  // ln m = 2 atanh(s) with s = (m-1)/(m+1) in [-1/3, 0): the odd series
  // 2(s + s^3/3 + s^5/5 + ...) needs 13 terms for ~1e-14 relative error at
  // |s| = 1/3. Only IEEE +,-,*,/ — no libm, so every platform agrees.
  double s = (m - 1.0) / (m + 1.0);
  double s2 = s * s;
  double sum = 0.0;
  for (int k = 12; k >= 0; --k) {
    sum = sum * s2 + 1.0 / static_cast<double>(2 * k + 1);
  }
  double ln_m = 2.0 * s * sum;

  constexpr double kLn2 = 0.6931471805599453;  // nearest double to ln 2
  return -(ln_m + static_cast<double>(e) * kLn2);
}

Tick PoissonArrivalGap(uint64_t base_seed, uint64_t deal_index,
                       double mean_gap) {
  if (!(mean_gap > 0.0)) return 0;
  // Independent stream from TrafficDealSeed/ScenarioSeed: arrival timing
  // must never correlate with the shapes the per-deal seeds draw.
  SplitMix64 base(base_seed ^ 0x6172726976616CULL);  // "arrival" stream
  SplitMix64 mixed(base.Next() ^
                   (deal_index * 0xD1B54A32D192ED03ULL +
                    0x9E3779B97F4A7C15ULL));
  // 53 uniform bits mapped to (0, 1]: u = 0 is impossible, so NegLogU01 is
  // finite, and u = 1 (gap 0 — simultaneous arrivals) stays representable.
  uint64_t bits = mixed.Next();
  double u = static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
  double gap = mean_gap * NegLogU01(u);
  return static_cast<Tick>(gap + 0.5);
}

std::vector<Tick> BuildArrivalSchedule(ArrivalProcess process,
                                       size_t num_deals, uint64_t base_seed,
                                       double mean_gap) {
  std::vector<Tick> arrivals(num_deals, 0);
  if (process == ArrivalProcess::kFixedStagger) {
    Tick gap = static_cast<Tick>(mean_gap + 0.5);
    for (size_t d = 0; d < num_deals; ++d) {
      arrivals[d] = static_cast<Tick>(d) * gap;
    }
    return arrivals;
  }
  Tick at = 0;
  for (size_t d = 0; d < num_deals; ++d) {
    // The gap *preceding* deal d; deal 0 arrives after its own first gap,
    // so even the first arrival is load-dependent, as in an open queue.
    at += PoissonArrivalGap(base_seed, d, mean_gap);
    arrivals[d] = at;
  }
  return arrivals;
}

namespace {

uint64_t BusiestOccupancy(const World* world) {
  uint64_t busiest = 0;
  for (uint32_t c = 0; c < world->num_chains(); ++c) {
    uint64_t pending = world->chain(ChainId{c})->pending_txs();
    if (pending > busiest) busiest = pending;
  }
  return busiest;
}

/// Built-in: the scheduler's pending-event queue, minus the caller's own
/// admission machinery. Threshold 0 = record only.
class BacklogSignal : public AdmissionSignal {
 public:
  explicit BacklogSignal(const AdmissionOptions* options)
      : options_(options) {}
  const char* name() const override { return "backlog"; }
  Reading Sample(const AdmissionContext& ctx) override {
    const size_t pending = ctx.world->scheduler().pending();
    const size_t backlog =
        pending > ctx.self_pending ? pending - ctx.self_pending : 0;
    Reading r;
    r.load = backlog;
    r.over = options_->max_scheduler_backlog > 0 &&
             backlog > options_->max_scheduler_backlog;
    return r;
  }

 private:
  const AdmissionOptions* options_;
};

/// Built-in: the deepest not-yet-included tx queue across all chains.
class OccupancySignal : public AdmissionSignal {
 public:
  explicit OccupancySignal(const AdmissionOptions* options)
      : options_(options) {}
  const char* name() const override { return "occupancy"; }
  Reading Sample(const AdmissionContext& ctx) override {
    const uint64_t occupancy = BusiestOccupancy(ctx.world);
    Reading r;
    r.load = occupancy;
    r.over = options_->max_chain_occupancy > 0 &&
             occupancy > options_->max_chain_occupancy;
    return r;
  }

 private:
  const AdmissionOptions* options_;
};

/// Built-in: the deal's broker capital/inventory reading, when the caller
/// supplies one. broker_gate off = record-only.
class BrokerCapitalSignal : public AdmissionSignal {
 public:
  explicit BrokerCapitalSignal(const AdmissionOptions* options)
      : options_(options) {}
  const char* name() const override { return "broker"; }
  Reading Sample(const AdmissionContext& ctx) override {
    Reading r;
    r.gating = options_->broker_gate;
    if (ctx.broker == nullptr) return r;
    r.load = ctx.broker->need_capital;
    r.over = ctx.broker->need_capital > ctx.broker->free_capital ||
             ctx.broker->need_inventory > ctx.broker->free_inventory;
    return r;
  }

 private:
  const AdmissionOptions* options_;
};

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const World* world)
    : options_(options), world_(world) {
  RegisterSignal(std::make_unique<BacklogSignal>(&options_));
  RegisterSignal(std::make_unique<OccupancySignal>(&options_));
  RegisterSignal(std::make_unique<BrokerCapitalSignal>(&options_));
}

void AdmissionController::RegisterSignal(
    std::unique_ptr<AdmissionSignal> signal) {
  AdmissionSignalStats stats;
  stats.name = signal->name();
  signal_stats_.push_back(std::move(stats));
  signals_.push_back(std::move(signal));
}

uint64_t AdmissionController::BusiestChainOccupancy() const {
  return BusiestOccupancy(world_);
}

AdmissionDecision AdmissionController::Decide(size_t retries,
                                              size_t self_pending,
                                              const BrokerSignal* broker,
                                              size_t deal_index) {
  AdmissionContext ctx;
  ctx.world = world_;
  ctx.self_pending = self_pending;
  ctx.broker = broker;
  ctx.deal_index = deal_index;

  bool any_over = false;
  for (size_t i = 0; i < signals_.size(); ++i) {
    const AdmissionSignal::Reading r = signals_[i]->Sample(ctx);
    AdmissionSignalStats& ss = signal_stats_[i];
    if (r.load > ss.peak_load) ss.peak_load = r.load;
    if (r.over) {
      ++ss.blocked;
      if (r.gating) any_over = true;
    }
  }
  // Back-fill the legacy aggregate stats: backlog/occupancy peaks from the
  // first two built-ins, capital blocks from the broker built-in plus every
  // registered extension (a hop-capital block is a broker block).
  stats_.peak_backlog_seen = static_cast<size_t>(signal_stats_[0].peak_load);
  stats_.peak_occupancy_seen = signal_stats_[1].peak_load;
  size_t capital_blocked = 0;
  for (size_t i = 2; i < signal_stats_.size(); ++i) {
    capital_blocked += signal_stats_[i].blocked;
  }
  stats_.broker_blocked = capital_blocked;

  if (!any_over) {
    ++stats_.admitted;
    return AdmissionDecision::kAdmit;
  }
  if (retries >= options_.max_retries) {
    ++stats_.shed;
    return AdmissionDecision::kShed;
  }
  ++stats_.delays;
  return AdmissionDecision::kDelay;
}

}  // namespace xdeal
