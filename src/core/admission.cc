#include "core/admission.h"

#include <cmath>  // frexp only: exact, no rounding-mode dependence

#include "chain/world.h"
#include "util/rng.h"

namespace xdeal {

const char* ToString(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kFixedStagger: return "fixed";
    case ArrivalProcess::kPoisson: return "poisson";
  }
  return "?";
}

const char* ToString(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kDelay: return "delay";
    case AdmissionDecision::kShed: return "shed";
  }
  return "?";
}

double NegLogU01(double u) {
  if (!(u > 0.0)) return 0.0;  // defensive: callers pass (0, 1]
  if (u >= 1.0) return 0.0;

  // u = m * 2^e with m in [0.5, 1); ln u = ln m + e ln 2. frexp is exact.
  int e = 0;
  double m = std::frexp(u, &e);

  // ln m = 2 atanh(s) with s = (m-1)/(m+1) in [-1/3, 0): the odd series
  // 2(s + s^3/3 + s^5/5 + ...) needs 13 terms for ~1e-14 relative error at
  // |s| = 1/3. Only IEEE +,-,*,/ — no libm, so every platform agrees.
  double s = (m - 1.0) / (m + 1.0);
  double s2 = s * s;
  double sum = 0.0;
  for (int k = 12; k >= 0; --k) {
    sum = sum * s2 + 1.0 / static_cast<double>(2 * k + 1);
  }
  double ln_m = 2.0 * s * sum;

  constexpr double kLn2 = 0.6931471805599453;  // nearest double to ln 2
  return -(ln_m + static_cast<double>(e) * kLn2);
}

Tick PoissonArrivalGap(uint64_t base_seed, uint64_t deal_index,
                       double mean_gap) {
  if (!(mean_gap > 0.0)) return 0;
  // Independent stream from TrafficDealSeed/ScenarioSeed: arrival timing
  // must never correlate with the shapes the per-deal seeds draw.
  SplitMix64 base(base_seed ^ 0x6172726976616CULL);  // "arrival" stream
  SplitMix64 mixed(base.Next() ^
                   (deal_index * 0xD1B54A32D192ED03ULL +
                    0x9E3779B97F4A7C15ULL));
  // 53 uniform bits mapped to (0, 1]: u = 0 is impossible, so NegLogU01 is
  // finite, and u = 1 (gap 0 — simultaneous arrivals) stays representable.
  uint64_t bits = mixed.Next();
  double u = static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
  double gap = mean_gap * NegLogU01(u);
  return static_cast<Tick>(gap + 0.5);
}

std::vector<Tick> BuildArrivalSchedule(ArrivalProcess process,
                                       size_t num_deals, uint64_t base_seed,
                                       double mean_gap) {
  std::vector<Tick> arrivals(num_deals, 0);
  if (process == ArrivalProcess::kFixedStagger) {
    Tick gap = static_cast<Tick>(mean_gap + 0.5);
    for (size_t d = 0; d < num_deals; ++d) {
      arrivals[d] = static_cast<Tick>(d) * gap;
    }
    return arrivals;
  }
  Tick at = 0;
  for (size_t d = 0; d < num_deals; ++d) {
    // The gap *preceding* deal d; deal 0 arrives after its own first gap,
    // so even the first arrival is load-dependent, as in an open queue.
    at += PoissonArrivalGap(base_seed, d, mean_gap);
    arrivals[d] = at;
  }
  return arrivals;
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const World* world)
    : options_(options), world_(world) {}

uint64_t AdmissionController::BusiestChainOccupancy() const {
  uint64_t busiest = 0;
  for (uint32_t c = 0; c < world_->num_chains(); ++c) {
    uint64_t pending = world_->chain(ChainId{c})->pending_txs();
    if (pending > busiest) busiest = pending;
  }
  return busiest;
}

AdmissionDecision AdmissionController::Decide(size_t retries,
                                              size_t self_pending,
                                              const BrokerSignal* broker) {
  const size_t pending = world_->scheduler().pending();
  const size_t backlog = pending > self_pending ? pending - self_pending : 0;
  const uint64_t occupancy = BusiestChainOccupancy();
  if (backlog > stats_.peak_backlog_seen) stats_.peak_backlog_seen = backlog;
  if (occupancy > stats_.peak_occupancy_seen) {
    stats_.peak_occupancy_seen = occupancy;
  }

  const bool over_backlog = options_.max_scheduler_backlog > 0 &&
                            backlog > options_.max_scheduler_backlog;
  const bool over_occupancy = options_.max_chain_occupancy > 0 &&
                              occupancy > options_.max_chain_occupancy;
  bool over_broker = false;
  if (broker != nullptr &&
      (broker->need_capital > broker->free_capital ||
       broker->need_inventory > broker->free_inventory)) {
    ++stats_.broker_blocked;
    over_broker = options_.broker_gate;
  }
  if (!over_backlog && !over_occupancy && !over_broker) {
    ++stats_.admitted;
    return AdmissionDecision::kAdmit;
  }
  if (retries >= options_.max_retries) {
    ++stats_.shed;
    return AdmissionDecision::kShed;
  }
  ++stats_.delays;
  return AdmissionDecision::kDelay;
}

}  // namespace xdeal
