// Open-loop arrival generation + admission control for traffic workloads.
//
// The paper's §5 traffic claims assume deals arrive continuously, not as a
// fixed pre-staggered batch. This header supplies the two pieces the
// TrafficEngine needs to act as an open-loop load generator:
//
//   ArrivalSchedule   seeded arrival times for D deals. kFixedStagger is the
//                     legacy deterministic stagger (deal i at i * gap);
//                     kPoisson draws exponential inter-arrival times from a
//                     SplitMix64 stream derived from (base_seed, index), so
//                     the schedule is a pure function of the options — bit-
//                     identical across thread counts, platforms, and reruns.
//
//   AdmissionController   the backpressure policy consulted when a deal's
//                     arrival event fires. It reads two live congestion
//                     signals — scheduler backlog (pending events) and chain
//                     occupancy (transactions queued but not yet included) —
//                     and decides to admit the deal, delay it for a retry
//                     quantum, or shed it outright after too many retries.
//                     Shed/delayed deals and the congestion the controller
//                     saw are recorded so reports can chart the policy's
//                     effect on the latency/goodput knee.
//
// The exponential sampler deliberately avoids libm: log() can differ by an
// ulp between math libraries, which would round a tick boundary differently
// on another platform and silently fork the whole simulation. NegLogU01
// below uses only IEEE +,-,*,/ on doubles (frexp is exact), so arrival
// schedules are reproducible anywhere.

#ifndef XDEAL_CORE_ADMISSION_H_
#define XDEAL_CORE_ADMISSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "util/det.h"

namespace xdeal {

class World;

/// How deal arrival times are generated.
enum class ArrivalProcess : uint8_t {
  /// Legacy closed-loop replay: deal i arrives at exactly i * gap.
  kFixedStagger = 0,
  /// Open loop: exponential inter-arrival times with the given mean, drawn
  /// from a seeded stream (Poisson arrivals in expectation).
  kPoisson,
};

/// Display name ("fixed" / "poisson") for reports and logs.
const char* ToString(ArrivalProcess p);

/// -ln(u) for u in (0, 1], computed without libm so results are bit-stable
/// across platforms. Max relative error ~1e-11 — far below tick rounding.
XDEAL_DETERMINISTIC
double NegLogU01(double u);

/// Inter-arrival gap (ticks) preceding deal `deal_index` under kPoisson:
/// an exponential sample with mean `mean_gap`, rounded to the nearest tick.
/// Derived from an independent SplitMix64 stream of (base_seed, deal_index)
/// so arrivals never alias the per-deal shape seeds.
XDEAL_DETERMINISTIC
Tick PoissonArrivalGap(uint64_t base_seed, uint64_t deal_index,
                       double mean_gap);

/// Arrival time per deal (nondecreasing, arrivals[0] may be 0). For
/// kFixedStagger this is exactly {0, gap, 2*gap, ...} — the schedule the
/// legacy admission_gap stagger produced.
XDEAL_DETERMINISTIC
std::vector<Tick> BuildArrivalSchedule(ArrivalProcess process,
                                       size_t num_deals, uint64_t base_seed,
                                       double mean_gap);

/// Backpressure thresholds. A threshold of 0 means "don't consider this
/// signal"; with both at 0 the controller admits everything (but still
/// records the congestion it sampled).
struct AdmissionOptions {
  /// Master switch: off = every deal is admitted at its arrival time on the
  /// legacy pre-deployed path (bit-compatible with pre-admission reports).
  bool enabled = false;
  /// Shed/delay when the scheduler's pending-event queue is deeper.
  size_t max_scheduler_backlog = 0;
  /// Shed/delay when any chain's not-yet-included tx queue is deeper.
  uint64_t max_chain_occupancy = 0;
  /// How long a delayed deal waits before its admission retry.
  Tick retry_delay = 40;
  /// Retries before an over-threshold deal is shed (0 = shed immediately).
  size_t max_retries = 4;
  /// Honor the broker working-capital signal when the caller supplies one
  /// (see BrokerSignal): a deal whose broker lacks free capital or
  /// inventory is delayed/shed like any other congestion. Off = the signal
  /// is recorded in stats but never blocks admission.
  bool broker_gate = true;
};

/// The broker-capital admission input: the free working capital and token
/// inventory of the deal's broker versus what this deal would lock up.
/// Computed by the BrokerPool (core/broker_pool.h) and passed per decision;
/// deals without a broker pass nullptr and are unaffected.
struct BrokerSignal {
  uint64_t free_capital = 0;
  uint64_t need_capital = 0;
  uint64_t free_inventory = 0;
  uint64_t need_inventory = 0;
};

/// Everything an admission signal may sample at one decision: the World
/// (scheduler + chains), the caller's own pending-event count (subtracted
/// from the backlog so the load generator never mistakes its future arrivals
/// for congestion), the per-deal broker reading (if any), and which deal is
/// being decided — extension signals look the deal up in their own
/// subsystem (e.g. the hop-chain capital signal asks the BrokerPool about
/// every broker along the deal's resale chain).
struct AdmissionContext {
  const World* world = nullptr;
  size_t self_pending = 0;
  const BrokerSignal* broker = nullptr;
  size_t deal_index = 0;
};

/// One admission input, promoted to a first-class interface. Scheduler
/// backlog, chain occupancy, broker capital, and any registered extension
/// all answer the same question per decision: how loaded is this resource,
/// and does it want to block this deal? The controller samples every
/// registered signal in order, tracks per-signal peaks and block counts,
/// and blocks the deal iff some signal is over AND its policy gate is on.
class AdmissionSignal {
 public:
  struct Reading {
    /// Sampled load, recorded for per-signal peak stats.
    uint64_t load = 0;
    /// The signal wants to block this admission (counted whether or not the
    /// gate lets it).
    bool over = false;
    /// Policy gate: false = record-only, the signal never blocks.
    bool gating = true;
  };

  virtual ~AdmissionSignal() = default;
  /// Short stable name ("backlog", "occupancy", "broker", "hop-capital")
  /// for stats and reports.
  virtual const char* name() const = 0;
  /// Sample the resource at one admission decision. Runs on the simulation
  /// thread, so it may read live World state through `ctx`; it must be
  /// deterministic in that state (no ambient entropy) to keep admission
  /// schedules seed-reproducible.
  virtual Reading Sample(const AdmissionContext& ctx) = 0;
};

/// Per-signal telemetry, parallel to the controller's signal list.
struct AdmissionSignalStats {
  std::string name;
  uint64_t peak_load = 0;
  /// Readings with over=true, gated or not.
  size_t blocked = 0;
};

/// What the controller can do with one arrival/retry event.
enum class AdmissionDecision : uint8_t { kAdmit, kDelay, kShed };

/// Display name ("admit" / "delay" / "shed") for reports and logs.
const char* ToString(AdmissionDecision d);

/// What the controller did and the worst congestion it sampled. The peak /
/// blocked fields are back-filled from the built-in signals' per-signal
/// stats, so legacy consumers keep reading the same numbers.
struct AdmissionStats {
  size_t admitted = 0;
  size_t delays = 0;  // delay events, not distinct deals
  size_t shed = 0;
  size_t peak_backlog_seen = 0;
  uint64_t peak_occupancy_seen = 0;
  /// Decisions at which a capital signal (broker built-in or a registered
  /// extension like hop-capital) reported insufficient free resources
  /// (whether or not its gate let it block).
  size_t broker_blocked = 0;
};

/// The admission policy: consulted once per arrival/retry event, on the
/// simulation thread (never concurrently). Decisions are a deterministic
/// function of the World's state at the consult tick. The constructor
/// registers the three built-in signals (scheduler backlog, chain
/// occupancy, broker capital); callers may register further signals, which
/// are sampled after the built-ins in registration order.
class AdmissionController {
 public:
  /// `world` must outlive the controller; its scheduler and chains are the
  /// congestion signals.
  AdmissionController(const AdmissionOptions& options, const World* world);

  /// Registers an extension signal (e.g. the hop-chain capital signal).
  /// Evaluated at every subsequent decision, after the built-ins.
  void RegisterSignal(std::unique_ptr<AdmissionSignal> signal);

  /// Decision for a deal that has already been delayed `retries` times.
  /// `self_pending` is how many of the scheduler's pending events belong to
  /// the caller's own admission machinery (not-yet-fired arrival and retry
  /// events). `broker`, if non-null, is the deal's broker
  /// capital/inventory reading, consumed by the broker built-in signal;
  /// with broker_gate on, a broker short on either resource delays/sheds
  /// the deal exactly like scheduler or chain congestion. `deal_index`
  /// names the deal for registered extension signals.
  AdmissionDecision Decide(size_t retries, size_t self_pending = 0,
                           const BrokerSignal* broker = nullptr,
                           size_t deal_index = 0);

  const AdmissionOptions& options() const { return options_; }
  const AdmissionStats& stats() const { return stats_; }
  /// Per-signal peaks and block counts, in signal registration order
  /// (built-ins first).
  const std::vector<AdmissionSignalStats>& signal_stats() const {
    return signal_stats_;
  }

  /// Deepest not-yet-included tx queue across the World's chains right now.
  uint64_t BusiestChainOccupancy() const;

 private:
  AdmissionOptions options_;
  const World* world_;
  AdmissionStats stats_;
  std::vector<std::unique_ptr<AdmissionSignal>> signals_;
  std::vector<AdmissionSignalStats> signal_stats_;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_ADMISSION_H_
