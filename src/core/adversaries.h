// The adversary gallery: deviating-party strategies for both protocols.
//
// The paper's model distinguishes only compliant parties (follow the
// protocol) from deviating parties (anything else) and makes NO assumption
// about how many deviate (§2.2). These strategies are used by the
// adversarial test suites and benchmark E10 to check that compliant parties
// are never left worse off (Property 1) and never locked up (Property 2),
// whatever the deviators do.

#ifndef XDEAL_CORE_ADVERSARIES_H_
#define XDEAL_CORE_ADVERSARIES_H_

#include <memory>

#include "core/cbc_run.h"
#include "core/timelock_run.h"

namespace xdeal {

// ---------------------------------------------------------------------------
// Timelock-protocol deviators (§5)
// ---------------------------------------------------------------------------

/// Phases of the timelock protocol, for crash injection.
enum class TlPhase {
  kEscrow = 0,
  kTransfer,
  kValidate,
  kCommit,
  kForward,   // participates up to voting but never forwards
  kNever,     // fully compliant (crash "never")
};

/// Crashes at the given phase: performs no actions from that phase onward
/// (including refund claims — a truly dead party; its assets' fate rests on
/// the timeout mechanism and is allowed to be lost only if it deviated).
class CrashingTimelockParty : public TimelockParty {
 public:
  explicit CrashingTimelockParty(TlPhase crash_at) : crash_at_(crash_at) {}

  void OnEscrowPhase() override {
    if (crash_at_ > TlPhase::kEscrow) TimelockParty::OnEscrowPhase();
  }
  void OnTransferStep(size_t i) override {
    if (crash_at_ > TlPhase::kTransfer) TimelockParty::OnTransferStep(i);
  }
  void OnValidatePhase() override {
    if (crash_at_ > TlPhase::kValidate) TimelockParty::OnValidatePhase();
  }
  void OnCommitPhase() override {
    if (crash_at_ > TlPhase::kCommit) TimelockParty::OnCommitPhase();
  }
  void OnObservedReceipt(const Receipt& r) override {
    if (crash_at_ > TlPhase::kForward) TimelockParty::OnObservedReceipt(r);
  }
  void OnRefundWatch() override {
    // A crashed party never claims; compliant counterparties are protected
    // because *anyone* may trigger the refund, and they do.
    if (crash_at_ == TlPhase::kNever) TimelockParty::OnRefundWatch();
  }

 private:
  TlPhase crash_at_;
};

/// Never votes (silently withholds its commit vote) but otherwise behaves.
/// Forces every escrow to time out and refund.
class VoteWithholdingParty : public TimelockParty {
 public:
  void OnCommitPhase() override {}
};

/// Votes but never forwards others' votes (violates the §5.1 monitoring
/// duty). Deals still commit if the remaining parties forward.
class NonForwardingParty : public TimelockParty {
 public:
  void OnObservedReceipt(const Receipt&) override {}
};

/// §5.3's victim behaviour: votes, then drops offline — neither forwards
/// votes nor claims refunds/assets. With a well-chosen Δ this is survivable;
/// the §5.3 DoS scenario makes it lose assets, which the paper classifies
/// as deviation ("parties may lose their assets by going offline at the
/// wrong time").
class OfflineAfterVoteParty : public TimelockParty {
 public:
  void OnObservedReceipt(const Receipt&) override {}
  void OnRefundWatch() override {}
};

/// Attempts to double-spend: performs its spec'd transfer, then tries to
/// transfer the same value again to a different party. The escrow contract
/// must reject the second (commit-ownership already moved).
class DoubleSpendingParty : public TimelockParty {
 public:
  void OnTransferStep(size_t i) override {
    TimelockParty::OnTransferStep(i);
    const TransferStep& step = spec().transfers[i];
    if (step.from != self()) return;
    // Pick any other party as the conflicting recipient.
    for (PartyId p : spec().parties) {
      if (p != step.to && p != self()) {
        TransferStep conflict = step;
        conflict.to = p;
        SubmitTransfer(conflict);  // expected to fail on-chain
        break;
      }
    }
  }
};

/// Transfers less than the agreed amount (fungible assets only): receivers'
/// validation fails, so they never vote, and the deal aborts.
class ShortTransferParty : public TimelockParty {
 public:
  void OnTransferStep(size_t i) override {
    const TransferStep& step = spec().transfers[i];
    if (step.from != self()) return;
    if (spec().assets[step.asset].kind == AssetKind::kFungible &&
        step.value > 1) {
      TransferStep shorted = step;
      shorted.value = step.value - 1;
      SubmitTransfer(shorted);
    } else {
      TimelockParty::OnTransferStep(i);
    }
  }
};

/// Votes `lateness` ticks after the commit phase opens. If lateness pushes
/// the vote past t0 + Δ, contracts reject it and the deal aborts.
class LateVotingParty : public TimelockParty {
 public:
  explicit LateVotingParty(Tick lateness) : lateness_(lateness) {}

  void OnCommitPhase() override {
    if (!satisfied()) return;
    auto* self_ptr = this;
    world().scheduler().ScheduleAfter(
        lateness_, EventLabel::Timer(self().v),
        [self_ptr] { self_ptr->TimelockParty::OnCommitPhase(); });
  }

 private:
  Tick lateness_;
};

// ---------------------------------------------------------------------------
// CBC-protocol deviators (§6)
// ---------------------------------------------------------------------------

/// Crashes before voting on the CBC; peers eventually rescind/abort.
class CbcCrashBeforeVoteParty : public CbcParty {
 public:
  void OnVotePhase() override {}
  void OnObservedCbcReceipt(const Receipt&) override {}
  void OnAbortDeadline() override {}
};

/// Votes abort regardless of validation (griefing). The deal aborts —
/// everywhere, atomically; no compliant party loses assets.
class CbcAlwaysAbortParty : public CbcParty {
 public:
  void OnVotePhase() override { SubmitCbcVote(/*abort=*/true); }
};

/// Votes commit and then immediately tries to rescind with an abort (not
/// waiting Δ as compliance requires). The CBC's total order still yields
/// one decisive outcome for everyone.
class CbcRescindRacerParty : public CbcParty {
 public:
  void OnVotePhase() override {
    SubmitCbcVote(/*abort=*/false);
    voted_abort_ = false;  // bypass the local dedup; race the log
    SubmitCbcVote(/*abort=*/true);
  }
};

/// Presents a forged status certificate (signed only by the f Byzantine
/// validators) asserting ABORT to the escrows of its outgoing assets, while
/// otherwise following the protocol — the §6.2 attack pattern transplanted
/// to BFT. Contracts must reject the forgery (insufficient quorum).
class CbcFakeProofParty : public CbcParty {
 public:
  void OnVotePhase() override {
    CbcParty::OnVotePhase();
    // Attack: try to halt outgoing transfers with a fake proof of abort.
    CbcProof fake;
    fake.status = run().validators().IssueByzantineStatus(
        deployment().deal_id, start_hash_, kDealAborted);
    for (uint32_t a = 0; a < spec().NumAssets(); ++a) {
      if (spec().Deposits(self(), a)) {
        SubmitDecide(a, fake);
      }
    }
    // Allow genuine claims later despite the dedup set.
    decided_assets_.clear();
  }
};

/// The cross-shard replay attack: takes the home shard's genuine decide
/// evidence, re-declares it as coming from a DIFFERENT shard, and presents
/// it to the escrows of its outgoing assets — as if a certificate minted
/// for one shard could settle deals bound to another. Shard-bound escrows
/// must reject the replay on the declared-shard check alone ("decide: shard
/// mismatch"), before burning any signature-verification gas. Otherwise the
/// party follows the protocol.
class CbcStaleShardProofParty : public CbcParty {
 public:
  void OnVotePhase() override {
    CbcParty::OnVotePhase();
    DecideProof stale = run().service().IssueDecideProof(
        *Log(), deployment().deal_id, run().escrow_epoch());
    stale.shard = stale.shard + 1;  // declare a shard this deal is not on
    for (uint32_t a = 0; a < spec().NumAssets(); ++a) {
      if (spec().Deposits(self(), a)) {
        SubmitDecideProof(a, stale);
      }
    }
    // Allow genuine claims later despite the dedup set.
    decided_assets_.clear();
  }
};

}  // namespace xdeal

#endif  // XDEAL_CORE_ADVERSARIES_H_
