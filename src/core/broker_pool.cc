#include "core/broker_pool.h"

#include <algorithm>
#include <cassert>

#include "contracts/escrow_view.h"
#include "contracts/fungible_token.h"
#include "util/percentile.h"
#include "util/rng.h"

namespace xdeal {

BrokerPool::BrokerPool(DealEnv* env, const BrokerOptions& options,
                       const std::vector<ChainId>& chains)
    : env_(env), options_(options) {
  if (options_.num_brokers == 0) return;  // inert: no World mutation at all
  assert(!chains.empty());
  if (options_.broker_every == 0) options_.broker_every = 1;
  if (options_.hop_depth == 0) options_.hop_depth = 1;
  if (options_.max_units < options_.min_units) {
    options_.max_units = options_.min_units;
  }

  for (size_t b = 0; b < options_.num_brokers; ++b) {
    brokers_.push_back(env_->AddParty("broker-" + std::to_string(b)));
  }

  // The settlement coin lives on the first pool chain; each broker's
  // commodity token on one of the remaining chains — so a broker deal's buy
  // side (coins) and sell side (goods) escrow on different chains whenever
  // the pool has more than one.
  World& world = env_->world();
  ContractId coin_contract = world.chain(chains[0])->Deploy(
      std::make_unique<FungibleToken>("broker-coin", brokers_[0]));
  coin_ = AssetRef{chains[0], coin_contract, AssetKind::kFungible,
                   "broker-coin"};

  reserved_.resize(options_.num_brokers);
  evidence_.resize(options_.num_brokers);
  crashed_.assign(options_.num_brokers, 0);
  for (size_t b = 0; b < options_.num_brokers; ++b) {
    ChainId chain = chains[chains.size() > 1 ? 1 + (b % (chains.size() - 1))
                                             : 0];
    std::string label = "commodity-" + std::to_string(b);
    ContractId contract = world.chain(chain)->Deploy(
        std::make_unique<FungibleToken>(label, brokers_[b]));
    commodities_.push_back(
        AssetRef{chain, contract, AssetKind::kFungible, label});

    FungibleToken* coin =
        world.chain(coin_.chain)->As<FungibleToken>(coin_.token);
    Status minted = coin->Mint(Holder::Party(brokers_[b]),
                               options_.working_capital);
    assert(minted.ok());
    FungibleToken* commodity =
        world.chain(chain)->As<FungibleToken>(contract);
    minted = commodity->Mint(Holder::Party(brokers_[b]), options_.inventory);
    assert(minted.ok());
    (void)minted;
  }
}

BrokerPool::BrokerPool(DealEnv* env, const BrokerOptions& options, AttachTag)
    : env_(env), options_(options) {
  if (options_.num_brokers == 0) return;
  if (options_.broker_every == 0) options_.broker_every = 1;
  if (options_.hop_depth == 0) options_.hop_depth = 1;
  if (options_.max_units < options_.min_units) {
    options_.max_units = options_.min_units;
  }
  // Bindings arrive via Restore(); nothing is created or minted — the
  // restored world already holds the parties, tokens, and balances.
}

bool BrokerPool::IsBrokerDeal(size_t deal_index) const {
  return enabled() && deal_index % options_.broker_every == 0;
}

size_t BrokerPool::BrokerOf(size_t deal_index) const {
  return (deal_index / options_.broker_every) % options_.num_brokers;
}

size_t BrokerPool::ChainDepth() const {
  return std::min(options_.hop_depth, options_.num_brokers);
}

uint64_t BrokerPool::PricedMarginFor(size_t broker, uint64_t* occupancy_out) {
  if (occupancy_out != nullptr) *occupancy_out = 0;
  if (options_.margin_slope == 0 || options_.working_capital == 0) {
    return options_.unit_margin;
  }
  uint64_t free = FreeCapital(broker);
  uint64_t in_use = options_.working_capital > free
                        ? options_.working_capital - free
                        : 0;
  if (occupancy_out != nullptr) *occupancy_out = in_use;
  return options_.unit_margin +
         options_.margin_slope * in_use / options_.working_capital;
}

DealSpec BrokerPool::MakeDeal(size_t deal_index, uint64_t seed) {
  assert(IsBrokerDeal(deal_index));
  // Independent stream from the shape/arrival seeds: the broker plan must
  // not correlate with anything else drawn from the deal seed.
  Rng rng(seed ^ 0x62726F6B657273ULL);  // "brokers" stream
  Plan plan;
  plan.broker = BrokerOf(deal_index);
  plan.units = options_.min_units +
               rng.Below(options_.max_units - options_.min_units + 1);
  // Drawn unconditionally so the per-deal stream is identical at every
  // depth; hop chains ignore it (they are always capital-fronting).
  plan.sell_side = rng.Below(2) == 1;

  const size_t depth = ChainDepth();
  if (depth > 1) {
    plan.sell_side = false;
    BrokerChainParams params;
    params.commodity = commodities_[plan.broker];
    params.coin = coin_;
    params.units = plan.units;
    params.unit_price = options_.unit_price;
    params.seed = seed;
    params.name_prefix = "d" + std::to_string(deal_index) + "-";
    // Hop i's float covers what it pays upstream: the seller's price for
    // the first hop, then the accumulating margins of every hop before it.
    uint64_t upstream_cost = plan.units * options_.unit_price;
    for (size_t i = 0; i < depth; ++i) {
      Hop hop;
      hop.broker = (plan.broker + i) % options_.num_brokers;
      hop.asset = static_cast<uint32_t>(1 + i);
      hop.capital = upstream_cost;
      hop.margin = PricedMarginFor(hop.broker, &hop.occupancy);
      plan.capital += hop.capital;
      params.brokers.push_back(brokers_[hop.broker]);
      params.margins.push_back(hop.margin);
      upstream_cost += plan.units * hop.margin;
      plan.hops.push_back(hop);
    }
    plan.margin = plan.hops[0].margin;
    plan.occupancy = plan.hops[0].occupancy;
    plans_[deal_index] = plan;
    return GenerateBrokerChainDeal(env_, params);
  }

  plan.margin = PricedMarginFor(plan.broker, &plan.occupancy);
  if (plan.sell_side) {
    plan.inventory = plan.units;
  } else {
    plan.capital = plan.units * options_.unit_price;
  }
  plans_[deal_index] = plan;

  BrokerDealParams params;
  params.broker = brokers_[plan.broker];
  params.commodity = commodities_[plan.broker];
  params.coin = coin_;
  params.sell_side = plan.sell_side;
  params.units = plan.units;
  params.unit_price = options_.unit_price;
  params.unit_margin = plan.margin;
  params.seed = seed;
  params.name_prefix = "d" + std::to_string(deal_index) + "-";
  return GenerateBrokerDeal(env_, params);
}

uint64_t BrokerPool::CapitalNeed(size_t deal_index) const {
  auto it = plans_.find(deal_index);
  return it == plans_.end() ? 0 : it->second.capital;
}

uint64_t BrokerPool::InventoryNeed(size_t deal_index) const {
  auto it = plans_.find(deal_index);
  return it == plans_.end() ? 0 : it->second.inventory;
}

uint64_t BrokerPool::BalanceOf(const AssetRef& asset, PartyId party) const {
  const FungibleToken* token =
      env_->world().chain(asset.chain)->As<FungibleToken>(asset.token);
  assert(token != nullptr);
  return token->BalanceOf(Holder::Party(party));
}

void BrokerPool::Prune(size_t broker) {
  PartyId party = brokers_[broker];
  auto done = [party](const Reservation& r) {
    // Once the deposit is on chain the broker's balance already reflects it
    // (and a settled escrow has been paid back out), so the reservation's
    // job is done.
    return r.view == nullptr || r.view->Settled() ||
           r.view->escrow_core().EscrowedOf(party) > 0;
  };
  std::vector<Reservation>& reservations = reserved_[broker];
  reservations.erase(
      std::remove_if(reservations.begin(), reservations.end(), done),
      reservations.end());
  std::vector<Reservation>& evidence = evidence_[broker];
  evidence.erase(std::remove_if(evidence.begin(), evidence.end(), done),
                 evidence.end());
}

void BrokerPool::PruneAll() {
  for (size_t b = 0; b < brokers_.size(); ++b) Prune(b);
}

void BrokerPool::CrashBroker(size_t broker) {
  if (broker >= brokers_.size()) return;
  crashed_[broker] = 1;
  // The in-memory reservation book dies with the process; the evidence list
  // models what is re-derivable from public chain state and survives.
  reserved_[broker].clear();
}

void BrokerPool::RecoverBroker(size_t broker) {
  if (broker >= brokers_.size() || crashed_[broker] == 0) return;
  crashed_[broker] = 0;
  // Rebuild the book from on-chain evidence: prune first so only deals whose
  // deposit is still outstanding come back — exactly the entries a
  // never-crashed book would hold at this instant.
  Prune(broker);
  reserved_[broker] = evidence_[broker];
}

uint64_t BrokerPool::FreeCapital(size_t broker) {
  Prune(broker);
  uint64_t pending = 0;
  for (const Reservation& r : reserved_[broker]) {
    pending += r.capital;
  }
  uint64_t coins = BalanceOf(coin_, brokers_[broker]);
  return coins > pending ? coins - pending : 0;
}

BrokerSignal BrokerPool::SignalFor(size_t deal_index) {
  BrokerSignal signal;
  auto it = plans_.find(deal_index);
  if (it == plans_.end()) return signal;
  const Plan& plan = it->second;
  Prune(plan.broker);

  uint64_t pending_capital = 0;
  uint64_t pending_inventory = 0;
  for (const Reservation& r : reserved_[plan.broker]) {
    pending_capital += r.capital;
    pending_inventory += r.inventory;
  }
  uint64_t coins = BalanceOf(coin_, brokers_[plan.broker]);
  uint64_t stock = BalanceOf(commodities_[plan.broker], brokers_[plan.broker]);
  signal.free_capital = coins > pending_capital ? coins - pending_capital : 0;
  signal.free_inventory =
      stock > pending_inventory ? stock - pending_inventory : 0;
  signal.need_capital = plan.capital;
  signal.need_inventory = plan.inventory;
  return signal;
}

bool BrokerPool::ChainCapitalShort(size_t deal_index, uint64_t* total_need) {
  if (total_need != nullptr) *total_need = 0;
  auto it = plans_.find(deal_index);
  if (it == plans_.end() || it->second.hops.empty()) return false;
  const Plan& plan = it->second;
  uint64_t total = 0;
  bool over = false;
  // Hops never repeat a broker (depth is clamped to the pool size), so each
  // hop's float competes only with that broker's OTHER in-flight deals.
  for (const Hop& hop : plan.hops) {
    total += hop.capital;
    if (hop.capital > FreeCapital(hop.broker)) over = true;
  }
  if (total_need != nullptr) *total_need = total;
  return over;
}

std::vector<PartyId> BrokerPool::SharedPartiesOf(size_t deal_index) const {
  std::vector<PartyId> parties;
  auto it = plans_.find(deal_index);
  if (it == plans_.end()) return parties;
  const Plan& plan = it->second;
  if (plan.hops.empty()) {
    parties.push_back(brokers_[plan.broker]);
    return parties;
  }
  for (const Hop& hop : plan.hops) {
    parties.push_back(brokers_[hop.broker]);
  }
  return parties;
}

std::vector<BrokerPool::PricePoint> BrokerPool::PricePointsOf(
    size_t deal_index) const {
  std::vector<PricePoint> points;
  auto it = plans_.find(deal_index);
  if (it == plans_.end()) return points;
  const Plan& plan = it->second;
  if (plan.hops.empty()) {
    points.push_back(PricePoint{plan.occupancy, plan.margin});
    return points;
  }
  for (const Hop& hop : plan.hops) {
    points.push_back(PricePoint{hop.occupancy, hop.margin});
  }
  return points;
}

const DealEscrowView* BrokerPool::EscrowViewOf(DealRuntime& runtime,
                                               uint32_t asset) const {
  const AssetRef& ref = runtime.spec().assets[asset];
  const Blockchain* chain = env_->world().chain(ref.chain);
  return chain == nullptr
             ? nullptr
             : dynamic_cast<const DealEscrowView*>(
                   chain->contract(runtime.escrow_contracts()[asset]));
}

void BrokerPool::OnDealDeployed(size_t deal_index, DealRuntime& runtime) {
  auto it = plans_.find(deal_index);
  if (it == plans_.end()) return;
  const Plan& plan = it->second;

  // One reservation per hop: each broker along the chain has her own float
  // in her own escrow contract (see GenerateBrokerChainDeal). Evidence is
  // recorded unconditionally (it models public chain state); the live book
  // only when the broker's accounting process is up.
  if (!plan.hops.empty()) {
    for (const Hop& hop : plan.hops) {
      Reservation reservation;
      reservation.deal_index = deal_index;
      reservation.capital = hop.capital;
      reservation.view = EscrowViewOf(runtime, hop.asset);
      evidence_[hop.broker].push_back(reservation);
      if (crashed_[hop.broker] == 0) {
        reserved_[hop.broker].push_back(reservation);
      }
    }
    return;
  }

  // The asset the broker deposits into: her inventory (index 0) for
  // sell-side deals, her coin float (index 2) for buy-side — each the sole
  // stake of its own escrow contract (see GenerateBrokerDeal).
  uint32_t asset = plan.sell_side ? 0 : 2;
  Reservation reservation;
  reservation.deal_index = deal_index;
  reservation.capital = plan.capital;
  reservation.inventory = plan.inventory;
  reservation.view = EscrowViewOf(runtime, asset);
  evidence_[plan.broker].push_back(reservation);
  if (crashed_[plan.broker] == 0) {
    reserved_[plan.broker].push_back(reservation);
  }
}

Status BrokerPool::Checkpoint(ByteWriter* w) const {
  for (size_t b = 0; b < brokers_.size(); ++b) {
    if (!reserved_[b].empty() || !evidence_[b].empty()) {
      return Status::FailedPrecondition(
          "broker pool checkpoint: broker " + std::to_string(b) +
          " still holds live reservations (PruneAll before checkpointing; a "
          "compliant quiescent boundary leaves none)");
    }
  }
  auto write_asset = [w](const AssetRef& a) {
    w->U32(a.chain.v).U32(a.token.v).U8(static_cast<uint8_t>(a.kind));
    w->Str(a.label);
  };
  w->U32(static_cast<uint32_t>(brokers_.size()));
  for (PartyId b : brokers_) w->U32(b.v);
  write_asset(coin_);
  for (const AssetRef& c : commodities_) write_asset(c);
  for (uint8_t c : crashed_) w->U8(c);
  w->U64(plans_.size());
  for (const auto& [deal_index, plan] : plans_) {
    w->U64(deal_index);
    w->U64(plan.broker);
    w->Bool(plan.sell_side);
    w->U64(plan.units).U64(plan.capital).U64(plan.inventory);
    w->U64(plan.margin).U64(plan.occupancy);
    w->U32(static_cast<uint32_t>(plan.hops.size()));
    for (const Hop& hop : plan.hops) {
      w->U64(hop.broker).U32(hop.asset);
      w->U64(hop.capital).U64(hop.margin).U64(hop.occupancy);
    }
  }
  return Status::OK();
}

Status BrokerPool::Restore(ByteReader& r) {
  auto read_asset = [&r](AssetRef* a) -> Status {
    auto chain = r.U32();
    auto token = r.U32();
    auto kind = r.U8();
    auto label = r.Str();
    if (!chain.ok() || !token.ok() || !kind.ok() || !label.ok()) {
      return Status::InvalidArgument("broker snapshot: truncated asset ref");
    }
    a->chain = ChainId{chain.value()};
    a->token = ContractId{token.value()};
    a->kind = static_cast<AssetKind>(kind.value());
    a->label = label.value();
    return Status::OK();
  };
  auto n_brokers = r.U32();
  if (!n_brokers.ok()) return n_brokers.status();
  if (n_brokers.value() != options_.num_brokers) {
    return Status::InvalidArgument(
        "broker snapshot: broker count mismatches options");
  }
  brokers_.clear();
  for (uint32_t b = 0; b < n_brokers.value(); ++b) {
    auto id = r.U32();
    if (!id.ok()) return id.status();
    brokers_.push_back(PartyId{id.value()});
  }
  XDEAL_RETURN_IF_ERROR(read_asset(&coin_));
  commodities_.assign(n_brokers.value(), AssetRef{});
  for (uint32_t b = 0; b < n_brokers.value(); ++b) {
    XDEAL_RETURN_IF_ERROR(read_asset(&commodities_[b]));
  }
  crashed_.assign(n_brokers.value(), 0);
  for (uint32_t b = 0; b < n_brokers.value(); ++b) {
    auto c = r.U8();
    if (!c.ok()) return c.status();
    crashed_[b] = c.value();
  }
  reserved_.assign(n_brokers.value(), {});
  evidence_.assign(n_brokers.value(), {});
  plans_.clear();
  auto n_plans = r.U64();
  if (!n_plans.ok()) return n_plans.status();
  for (uint64_t i = 0; i < n_plans.value(); ++i) {
    auto deal_index = r.U64();
    auto broker = r.U64();
    auto sell_side = r.Bool();
    auto units = r.U64();
    auto capital = r.U64();
    auto inventory = r.U64();
    auto margin = r.U64();
    auto occupancy = r.U64();
    auto n_hops = r.U32();
    if (!deal_index.ok() || !broker.ok() || !sell_side.ok() || !units.ok() ||
        !capital.ok() || !inventory.ok() || !margin.ok() || !occupancy.ok() ||
        !n_hops.ok()) {
      return Status::InvalidArgument("broker snapshot: truncated plan");
    }
    Plan plan;
    plan.broker = static_cast<size_t>(broker.value());
    plan.sell_side = sell_side.value();
    plan.units = units.value();
    plan.capital = capital.value();
    plan.inventory = inventory.value();
    plan.margin = margin.value();
    plan.occupancy = occupancy.value();
    for (uint32_t h = 0; h < n_hops.value(); ++h) {
      auto hop_broker = r.U64();
      auto hop_asset = r.U32();
      auto hop_capital = r.U64();
      auto hop_margin = r.U64();
      auto hop_occupancy = r.U64();
      if (!hop_broker.ok() || !hop_asset.ok() || !hop_capital.ok() ||
          !hop_margin.ok() || !hop_occupancy.ok()) {
        return Status::InvalidArgument("broker snapshot: truncated hop");
      }
      Hop hop;
      hop.broker = static_cast<size_t>(hop_broker.value());
      hop.asset = hop_asset.value();
      hop.capital = hop_capital.value();
      hop.margin = hop_margin.value();
      hop.occupancy = hop_occupancy.value();
      plan.hops.push_back(hop);
    }
    plans_[static_cast<size_t>(deal_index.value())] = std::move(plan);
  }
  return Status::OK();
}

std::vector<BrokerRecord> BrokerPool::BuildRecords(
    const std::vector<BrokerDealOutcome>& outcomes) const {
  std::vector<BrokerRecord> records(brokers_.size());

  struct Event {
    Tick at = 0;
    bool release = false;
    uint64_t capital = 0;
    uint64_t inventory = 0;
  };
  std::vector<std::vector<Event>> events(brokers_.size());
  std::vector<std::vector<Tick>> latencies(brokers_.size());

  // Per-broker attribution of each deal: a legacy deal touches one broker
  // with its flat needs; a hop chain touches every hop broker with that
  // hop's float. Gas and latency go to the FIRST hop only so chain deals
  // are not multiply counted in pool-wide sums.
  struct Stake {
    size_t broker = 0;
    uint64_t capital = 0;
    uint64_t inventory = 0;
  };
  for (const BrokerDealOutcome& outcome : outcomes) {
    auto it = plans_.find(outcome.deal_index);
    if (it == plans_.end()) continue;
    const Plan& plan = it->second;
    std::vector<Stake> stakes;
    if (plan.hops.empty()) {
      stakes.push_back(Stake{plan.broker, plan.capital, plan.inventory});
    } else {
      for (const Hop& hop : plan.hops) {
        stakes.push_back(Stake{hop.broker, hop.capital, 0});
      }
    }
    for (size_t s = 0; s < stakes.size(); ++s) {
      const Stake& stake = stakes[s];
      BrokerRecord& rec = records[stake.broker];
      ++rec.deals;
      if (outcome.committed) ++rec.committed;
      if (outcome.aborted) ++rec.aborted;
      if (outcome.shed) ++rec.shed;
      if (!outcome.shed && outcome.admitted_at > outcome.arrival_at) {
        ++rec.delayed;
      }
      if (s == 0) {
        rec.gas += outcome.gas;
        if (outcome.all_settled && outcome.settle_time > 0) {
          latencies[stake.broker].push_back(outcome.latency);
          rec.latency_max = std::max(rec.latency_max, outcome.latency);
        }
      }
      if (outcome.started) {
        events[stake.broker].push_back(Event{outcome.admitted_at, false,
                                             stake.capital, stake.inventory});
        // A deal that never fully settles holds its resources forever — the
        // timeline deliberately never releases it.
        if (outcome.all_settled && outcome.settle_time > 0) {
          events[stake.broker].push_back(Event{
              outcome.settle_time, true, stake.capital, stake.inventory});
        }
      }
    }
  }

  for (size_t b = 0; b < brokers_.size(); ++b) {
    BrokerRecord& rec = records[b];
    rec.index = b;
    rec.party = brokers_[b].v;
    rec.capital_limit = options_.working_capital;
    rec.inventory_limit = options_.inventory;
    rec.latency_p50 = Percentile(latencies[b], 50);

    // Releases sort before reserves at the same tick: capital freed by a
    // settlement is available to a deal admitted that instant.
    std::sort(events[b].begin(), events[b].end(),
              [](const Event& x, const Event& y) {
                if (x.at != y.at) return x.at < y.at;
                return x.release && !y.release;
              });
    uint64_t capital = 0;
    uint64_t inventory = 0;
    rec.timeline.reserve(events[b].size());
    for (const Event& event : events[b]) {
      if (event.release) {
        capital -= std::min(capital, event.capital);
        inventory -= std::min(inventory, event.inventory);
      } else {
        capital += event.capital;
        inventory += event.inventory;
      }
      rec.peak_capital_in_use = std::max(rec.peak_capital_in_use, capital);
      rec.peak_inventory_in_use =
          std::max(rec.peak_inventory_in_use, inventory);
      rec.timeline.push_back(BrokerSample{event.at, capital, inventory});
    }

    uint64_t coins = BalanceOf(coin_, brokers_[b]);
    uint64_t stock = BalanceOf(commodities_[b], brokers_[b]);
    rec.coin_delta = static_cast<int64_t>(coins) -
                     static_cast<int64_t>(options_.working_capital);
    rec.inventory_delta = static_cast<int64_t>(stock) -
                          static_cast<int64_t>(options_.inventory);
    rec.portfolio_ok = rec.coin_delta >= 0 && rec.inventory_delta >= 0;
  }
  return records;
}

}  // namespace xdeal
