// BrokerPool: Figure-1-style brokers as shared parties across many deals.
//
// The paper's headline example (§2, Figure 1) is a broker who resells
// tickets she does not yet own: she is a *middle* party whose buy side and
// sell side live on different chains, and whose solvency is a cross-deal
// resource. This subsystem generates that workload at traffic scale: B
// broker identities, created once and reused across deals (the specs of
// many concurrent deals name the same PartyId), each holding
//
//   working capital   a finite balance of the pool's settlement coin, locked
//                     deal-by-deal while buy-side deals front payment to the
//                     seller (escrowed at deal start, recouped plus margin on
//                     commit, refunded on abort);
//   token inventory   a finite stock of the broker's own commodity token,
//                     locked while sell-side deals deliver from stock and
//                     restock from the seller.
//
// Occupancy of those two resources is the third admission signal (see
// BrokerSignal in core/admission.h): a deal whose broker lacks free capital
// or inventory is delayed or shed instead of over-committing her. The live
// free-capital computation is evidence-based — the broker's on-chain token
// balance minus reservations whose escrow deposit has not yet landed — so
// the signal stays exact whether deposits are prompt or queued behind full
// blocks.
//
// After a run, BuildRecords folds every broker's deals into a BrokerRecord:
// per-broker gas/latency attribution, a capital/inventory occupancy
// timeline, and the portfolio conformance check — Property 1 lifted from
// deals to portfolios: a compliant broker must end no worse off across her
// WHOLE deal set (final coin balance >= initial capital, final commodity
// balance >= initial inventory), no matter how her deals interleaved.
//
// hop_depth > 1 generalizes the shape to multi-hop broker CHAINS: brokers
// resell to other brokers, goods walking seller -> B1 -> ... -> BH -> buyer
// inside one atomic deal, each hop fronting its own capital. margin_slope
// prices that capital: a hop's commission scales with its broker's live
// capital occupancy, so a sweep over load traces a market-clearing
// margin-vs-occupancy curve. Both default off (depth 1, slope 0) and are
// then bit-identical to the legacy pool.
//
// With num_brokers = 0 the pool is inert: it creates no parties, tokens, or
// state, so zero-broker traffic reproduces the legacy engine bit-for-bit.

#ifndef XDEAL_CORE_BROKER_POOL_H_
#define XDEAL_CORE_BROKER_POOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/deal_gen.h"
#include "core/env.h"
#include "core/protocol_driver.h"
#include "util/det.h"

namespace xdeal {

class DealEscrowView;

/// Workload knobs for the broker subsystem. num_brokers = 0 disables it
/// entirely (no World mutation; legacy traffic fingerprints preserved).
struct BrokerOptions {
  /// B: how many broker identities the pool creates and round-robins deals
  /// over. 0 = brokers disabled.
  size_t num_brokers = 0;
  /// Every k-th deal (deal index % k == 0) is a broker deal; the rest keep
  /// their generated random shape. 1 = every deal is brokered.
  size_t broker_every = 1;
  /// Coins minted to each broker up front — the capital ceiling her
  /// concurrent buy-side deals compete for.
  uint64_t working_capital = 1600;
  /// Commodity units minted to each broker up front — the inventory ceiling
  /// her concurrent sell-side deals compete for.
  uint64_t inventory = 64;
  /// Per-deal unit count is drawn uniformly from [min_units, max_units]
  /// with the deal's derived seed.
  size_t min_units = 1;
  size_t max_units = 3;
  /// Coins the broker pays the seller per unit (buy-side capital need =
  /// units * unit_price).
  uint64_t unit_price = 100;
  /// The broker's commission per unit (the buyer pays price + margin).
  uint64_t unit_margin = 5;
  /// Resale-chain depth (Figure 1 at hop depth > 1): 1 = the classic
  /// single-broker shape, bit-identical to the legacy pool. H > 1 turns
  /// every broker deal into a chain of H brokers — goods walk seller ->
  /// B1 -> ... -> BH -> buyer in ONE atomic deal, each hop fronting the
  /// capital to pay its upstream and recouping it plus margin from the
  /// next. Clamped to num_brokers so a chain never repeats a party.
  size_t hop_depth = 1;
  /// Priced capital: a broker's per-unit margin grows with her capital
  /// occupancy at pricing time — margin = unit_margin + margin_slope *
  /// in_use / working_capital (pure integer arithmetic). 0 = flat
  /// unit_margin, bit-identical to the legacy pool.
  uint64_t margin_slope = 0;
};

/// One point of a broker's resource-occupancy timeline: how much of her
/// capital/inventory was locked in in-flight deals as of `at`.
struct BrokerSample {
  Tick at = 0;
  uint64_t capital_in_use = 0;
  uint64_t inventory_in_use = 0;
};

/// Per-deal outcome summary the traffic engine hands back to the pool for
/// post-run aggregation (a protocol-independent slice of the deal record).
struct BrokerDealOutcome {
  size_t deal_index = 0;
  Tick arrival_at = 0;
  Tick admitted_at = 0;
  Tick settle_time = 0;
  Tick latency = 0;
  bool started = false;
  bool committed = false;
  bool aborted = false;
  bool shed = false;
  bool all_settled = false;
  uint64_t gas = 0;
};

/// Post-run aggregation of one broker's whole deal set.
struct BrokerRecord {
  size_t index = 0;
  uint32_t party = 0;  // the broker's PartyId
  uint64_t capital_limit = 0;
  uint64_t inventory_limit = 0;

  size_t deals = 0;
  size_t committed = 0;
  size_t aborted = 0;
  size_t shed = 0;
  size_t delayed = 0;  // admitted later than they arrived

  /// Gas summed over every receipt attributed to this broker's deals.
  uint64_t gas = 0;
  /// Sojourn-latency percentiles over this broker's settled deals.
  Tick latency_p50 = 0;
  Tick latency_max = 0;

  /// Final minus initial balances (coins / commodity units). A compliant
  /// broker's margin shows up here; a harmed broker goes negative.
  int64_t coin_delta = 0;
  int64_t inventory_delta = 0;

  /// High-water marks of the occupancy timeline below.
  uint64_t peak_capital_in_use = 0;
  uint64_t peak_inventory_in_use = 0;

  /// Property 1 lifted to the portfolio: the broker ended no worse off
  /// across her whole deal set (coin_delta >= 0 and inventory_delta >= 0).
  bool portfolio_ok = true;

  /// Occupancy over time, two events per deal (reserve at admission,
  /// release at settlement; a never-settling deal holds forever).
  std::vector<BrokerSample> timeline;
};

/// The broker subsystem of one traffic run. All methods run on the
/// simulation thread (or post-drain); nothing here is thread-shared.
class BrokerPool {
 public:
  /// Creates the broker parties and tokens inside `env` (a no-op when
  /// options.num_brokers == 0): one shared settlement coin on chains[0],
  /// one commodity token per broker spread over the remaining chains (the
  /// buy side and sell side of a broker deal live on different chains),
  /// and mints each broker's capital and inventory.
  BrokerPool(DealEnv* env, const BrokerOptions& options,
             const std::vector<ChainId>& chains);

  /// Attach-mode constructor, for a World restored from a checkpoint: binds
  /// nothing and mutates nothing (parties and token contracts already exist
  /// in the restored world). Restore() then fills the bindings and plans
  /// from the pool's Checkpoint blob.
  struct AttachTag {};
  BrokerPool(DealEnv* env, const BrokerOptions& options, AttachTag);

  /// False when num_brokers == 0: every other method is then inert.
  bool enabled() const { return options_.num_brokers > 0; }
  const BrokerOptions& options() const { return options_; }
  size_t num_brokers() const { return brokers_.size(); }

  /// True when deal `deal_index` should take the broker shape.
  bool IsBrokerDeal(size_t deal_index) const;
  /// Which broker hosts deal `deal_index` (round-robin over broker deals).
  /// For hop chains this is the FIRST hop; later hops follow round-robin
  /// from it.
  size_t BrokerOf(size_t deal_index) const;
  /// The broker's shared party identity.
  PartyId BrokerParty(size_t broker) const { return brokers_[broker]; }
  /// Effective resale-chain depth (hop_depth clamped to the pool size).
  size_t ChainDepth() const;
  /// True when margins are occupancy-priced (margin_slope > 0): spec
  /// generation must then be deferred to admission time so each hop's
  /// margin reflects live capital occupancy, not generation-time zero.
  bool DynamicPricing() const {
    return enabled() && options_.margin_slope > 0;
  }

  /// Generates the broker-linked spec for deal `deal_index` (buy- or
  /// sell-side, units drawn from `seed`) and records its resource needs.
  XDEAL_DETERMINISTIC DealSpec MakeDeal(size_t deal_index, uint64_t seed);

  /// Working capital (coins) deal `deal_index` locks while in flight;
  /// 0 for sell-side and non-broker deals.
  uint64_t CapitalNeed(size_t deal_index) const;
  /// Inventory (commodity units) deal `deal_index` locks while in flight;
  /// 0 for buy-side and non-broker deals.
  uint64_t InventoryNeed(size_t deal_index) const;

  /// The live admission signal for deal `deal_index`: free = the broker's
  /// on-chain balance minus reservations whose escrow deposit has not yet
  /// landed on chain. Prunes settled/landed reservations as a side effect.
  /// For hop chains this reports the FIRST hop; ChainCapitalShort covers
  /// the rest of the chain.
  XDEAL_DETERMINISTIC BrokerSignal SignalFor(size_t deal_index);

  /// Hop-chain capital reading for deal `deal_index` (the hop-capital
  /// admission signal's source): samples every hop broker's free capital
  /// against that hop's float, writes the chain's total capital demand to
  /// `*total_need`, and returns true when ANY hop is short — one
  /// over-committed hop blocks the whole chain. False (need 0) for
  /// non-broker deals.
  XDEAL_DETERMINISTIC bool ChainCapitalShort(size_t deal_index,
                                             uint64_t* total_need);

  /// Every shared party of deal `deal_index` — all hop brokers for chains,
  /// the single broker for legacy plans, empty for non-broker deals. The
  /// checker must mark each one so cross-deal balance accounting nets the
  /// whole portfolio.
  std::vector<PartyId> SharedPartiesOf(size_t deal_index) const;

  /// One (capital occupancy at pricing time, per-unit margin charged) point
  /// per hop of deal `deal_index` — the raw data of the margin-vs-occupancy
  /// market-clearing chart. Empty for non-broker deals.
  struct PricePoint {
    uint64_t occupancy = 0;  // capital in use when the margin was priced
    uint64_t margin = 0;     // per-unit margin the hop charged
  };
  /// The price points quoted for deal `deal_index`, in hop order.
  std::vector<PricePoint> PricePointsOf(size_t deal_index) const;

  /// PartyFactory::OnDeployed hook: registers the deployed deal's escrow
  /// view so the reservation it opened can be tracked until its deposit
  /// lands (the same hook watchtowers arm through).
  void OnDealDeployed(size_t deal_index, DealRuntime& runtime);

  /// Post-run: folds per-deal outcomes into per-broker records (gas/latency
  /// attribution, occupancy timeline, portfolio conformance). `outcomes`
  /// must cover exactly the broker deals, in index order.
  XDEAL_DETERMINISTIC std::vector<BrokerRecord> BuildRecords(
      const std::vector<BrokerDealOutcome>& outcomes) const;

  // --- crash/restart injection ---

  /// Kills broker `broker`'s off-chain accounting process: her in-memory
  /// reservation book is lost (free-capital signals then overstate what she
  /// can safely commit — the over-commit risk a real crash creates). Her
  /// on-chain balances and in-flight escrows are untouched.
  void CrashBroker(size_t broker);

  /// Restarts a crashed broker: rebuilds her reservation book from on-chain
  /// evidence — the escrow views of every deployed-but-unsettled deal whose
  /// deposit has not yet landed — exactly the entries a never-crashed book
  /// would still hold.
  void RecoverBroker(size_t broker);

  /// True while broker `broker` is down (between Crash and Recover).
  bool BrokerCrashed(size_t broker) const {
    return broker < crashed_.size() && crashed_[broker] != 0;
  }

  // --- checkpoint/restore ---

  /// Drops every reservation (and its recovery evidence) whose deposit has
  /// landed or whose escrow settled. The epoch seal calls this before a
  /// checkpoint; at a quiescent boundary of a compliant run every entry
  /// prunes away.
  void PruneAll();

  /// Serializes the pool's bindings (broker parties, token refs), crash
  /// flags, and deal plans into `w`. Requires a reservation-free pool
  /// (PruneAll leaves it so at any compliant quiescent boundary) — live
  /// reservations hold pointers into chain contracts that a restore
  /// retires, so they cannot cross a snapshot.
  Status Checkpoint(ByteWriter* w) const;

  /// Fills an attach-mode pool from a Checkpoint blob. The restored World
  /// must already hold the parties and token contracts the bindings name.
  Status Restore(ByteReader& r);

 private:
  /// One broker's stake in a hop chain, planned at MakeDeal time.
  struct Hop {
    size_t broker = 0;
    uint32_t asset = 0;      // the hop's coin-float escrow asset index
    uint64_t capital = 0;    // coins this hop fronts
    uint64_t margin = 0;     // per-unit margin the hop charged
    uint64_t occupancy = 0;  // capital in use when the margin was priced
  };

  /// What one broker deal locks, planned at MakeDeal time. `hops` is empty
  /// for legacy depth-1 plans (whose float is described by the flat fields)
  /// and carries one entry per chain hop otherwise (capital then totals the
  /// hop floats).
  struct Plan {
    size_t broker = 0;
    bool sell_side = false;
    uint64_t units = 0;
    uint64_t capital = 0;    // coins locked (buy-side)
    uint64_t inventory = 0;  // units locked (sell-side)
    uint64_t margin = 0;     // per-unit margin charged (priced or flat)
    uint64_t occupancy = 0;  // capital in use when the margin was priced
    std::vector<Hop> hops;
  };

  /// An admitted deal whose escrow deposit may not have landed yet: until
  /// it does, its need is subtracted from the broker's free balance.
  struct Reservation {
    size_t deal_index = 0;
    uint64_t capital = 0;
    uint64_t inventory = 0;
    const DealEscrowView* view = nullptr;  // where the deposit will appear
  };

  uint64_t BalanceOf(const AssetRef& asset, PartyId party) const;
  void Prune(size_t broker);
  const DealEscrowView* EscrowViewOf(DealRuntime& runtime,
                                     uint32_t asset) const;
  /// Coins of `broker`'s working capital not locked by live reservations
  /// (prunes as a side effect).
  uint64_t FreeCapital(size_t broker);
  /// The occupancy-priced per-unit margin `broker` charges right now, and
  /// the capital-in-use reading it was priced from. Equals unit_margin
  /// exactly (occupancy 0) when margin_slope == 0.
  XDEAL_DETERMINISTIC uint64_t PricedMarginFor(size_t broker,
                                               uint64_t* occupancy_out);

  DealEnv* env_ = nullptr;
  BrokerOptions options_;
  AssetRef coin_;
  std::vector<AssetRef> commodities_;  // one per broker
  std::vector<PartyId> brokers_;
  std::map<size_t, Plan> plans_;
  std::vector<std::vector<Reservation>> reserved_;  // per broker
  // Recovery evidence: the same entries as reserved_, but NOT cleared by a
  // crash — this is the on-chain-derivable record (each entry is backed by a
  // public escrow view) a restarted broker rebuilds her book from.
  std::vector<std::vector<Reservation>> evidence_;
  std::vector<uint8_t> crashed_;  // per broker; 1 = accounting process down
};

}  // namespace xdeal

#endif  // XDEAL_CORE_BROKER_POOL_H_
