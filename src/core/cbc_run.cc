#include "core/cbc_run.h"

#include <cassert>

namespace xdeal {

// ---------------------------------------------------------------------------
// CbcParty (compliant behaviour)
// ---------------------------------------------------------------------------

World& CbcParty::world() { return run_->world(); }
const DealSpec& CbcParty::spec() const { return run_->spec(); }
const CbcDeployment& CbcParty::deployment() const {
  return run_->deployment();
}

const CbcLogContract* CbcParty::Log() const {
  return run_->world()
      .chain(run_->deployment().cbc_chain)
      ->As<CbcLogContract>(run_->deployment().cbc_log);
}

CbcEscrowContract* CbcParty::EscrowOfAsset(uint32_t asset) const {
  return run_->world()
      .chain(run_->spec().assets[asset].chain)
      ->As<CbcEscrowContract>(run_->deployment().escrow_contracts[asset]);
}

void CbcParty::SubmitStartDeal() {
  ByteWriter w;
  w.Raw(deployment().deal_id.bytes.data(), 32);
  w.U32(static_cast<uint32_t>(spec().parties.size()));
  for (PartyId p : spec().parties) w.U32(p.v);
  world().Submit(self_, deployment().cbc_chain, deployment().cbc_log,
                 CallData{"startDeal", w.Take()}, "cbc-start",
                 run_->config().deal_tag);
}

void CbcParty::SubmitEscrow(const EscrowStep& step) {
  ByteWriter w;
  w.Raw(deployment().deal_id.bytes.data(), 32);
  w.U32(static_cast<uint32_t>(spec().parties.size()));
  for (PartyId p : spec().parties) w.U32(p.v);
  w.Raw(start_hash_.bytes.data(), 32);
  const auto& validators = run_->escrow_validators();
  w.U32(static_cast<uint32_t>(validators.size()));
  for (const PublicKey& v : validators) w.Raw(v.Serialize());
  w.U32(run_->escrow_epoch());
  w.U64(step.value);
  // Bind the escrow to the deal's home shard: decide proofs replayed from
  // any other shard are rejected before signature verification.
  w.U32(static_cast<uint32_t>(run_->home_shard()));
  world().Submit(self_, spec().assets[step.asset].chain,
                 deployment().escrow_contracts[step.asset],
                 CallData{"escrow", w.Take()}, "escrow",
                 run_->config().deal_tag);
}

void CbcParty::SubmitTransfer(const TransferStep& step) {
  ByteWriter w;
  w.Raw(deployment().deal_id.bytes.data(), 32);
  w.U32(step.to.v);
  w.U64(step.value);
  world().Submit(self_, spec().assets[step.asset].chain,
                 deployment().escrow_contracts[step.asset],
                 CallData{"transfer", w.Take()}, "transfer",
                 run_->config().deal_tag);
}

void CbcParty::SubmitCbcVote(bool abort) {
  if (!start_hash_known_) return;
  if (abort && voted_abort_) return;
  if (!abort && voted_commit_) return;
  ByteWriter w;
  w.Raw(deployment().deal_id.bytes.data(), 32);
  w.Raw(start_hash_.bytes.data(), 32);
  world().Submit(self_, deployment().cbc_chain, deployment().cbc_log,
                 CallData{abort ? "abort" : "commit", w.Take()}, "cbc-vote",
                 run_->config().deal_tag);
  if (abort) {
    voted_abort_ = true;
  } else {
    voted_commit_ = true;
  }
}

void CbcParty::SubmitDecide(uint32_t asset, const CbcProof& proof) {
  DecideProof dp;
  dp.shard = static_cast<uint32_t>(run_->home_shard());
  dp.proof = proof;
  SubmitDecideProof(asset, dp);
}

void CbcParty::SubmitDecideProof(uint32_t asset, const DecideProof& proof) {
  if (!decided_assets_.insert(asset).second) return;
  ByteWriter w;
  w.Raw(deployment().deal_id.bytes.data(), 32);
  w.Blob(proof.Serialize());
  world().Submit(self_, spec().assets[asset].chain,
                 deployment().escrow_contracts[asset],
                 CallData{"decide", w.Take()}, "decide",
                 run_->config().deal_tag);
}

bool CbcParty::RunValidationChecks() const {
  if (!start_hash_known_) return false;
  const DealSpec& s = spec();
  std::vector<DealSpec::Expectation> expect = s.ExpectationsOf(self_);
  for (uint32_t a : s.IncomingAssetsOf(self_)) {
    const CbcEscrowContract* esc = EscrowOfAsset(a);
    if (esc == nullptr || !esc->initialized()) return false;
    if (!(esc->deal_id() == deployment().deal_id)) return false;
    if (!(esc->start_hash() == start_hash_)) return false;
    // "they must check their correctness before voting to commit" — the
    // pinned validators must match the CBC's real validator set.
    const auto& pinned = esc->validators();
    const auto& real = run_->escrow_validators();
    if (pinned.size() != real.size()) return false;
    for (size_t i = 0; i < pinned.size(); ++i) {
      if (!(pinned[i] == real[i])) return false;
    }
    const AssetRef& asset = s.assets[a];
    Blockchain* chain = run_->world().chain(asset.chain);
    Holder escrow_holder = Holder::OfContract(esc->self_id());
    if (asset.kind == AssetKind::kFungible) {
      if (esc->core().OnCommitOf(self_) != expect[a].fungible_amount) {
        return false;
      }
      const auto* token = chain->As<FungibleToken>(asset.token);
      if (token == nullptr ||
          token->BalanceOf(escrow_holder) < expect[a].fungible_amount) {
        return false;
      }
    } else {
      const auto* registry = chain->As<TicketRegistry>(asset.token);
      if (registry == nullptr) return false;
      for (uint64_t ticket : expect[a].tickets) {
        if (!(esc->core().NftCommitOwner(ticket) == self_)) return false;
        if (!(registry->OwnerOf(ticket) == escrow_holder)) return false;
      }
    }
  }
  return true;
}

void CbcParty::ClaimAll(DealOutcome outcome) {
  // Collect the escrows still needing a decision before building any proof:
  // a status certificate costs 2f+1 validator signatures, and on a shared
  // CBC chain ClaimAll is re-triggered by every observed receipt — including
  // other deals' — long after everything of ours has settled.
  std::vector<uint32_t> todo;
  if (outcome == kDealCommitted) {
    // Motivated to claim incoming assets.
    for (uint32_t a : spec().IncomingAssetsOf(self_)) {
      if (decided_assets_.count(a) > 0) continue;
      const CbcEscrowContract* esc = EscrowOfAsset(a);
      if (esc != nullptr && !esc->settled()) todo.push_back(a);
    }
  } else {
    // Motivated to recover deposits.
    for (uint32_t a = 0; a < spec().NumAssets(); ++a) {
      if (decided_assets_.count(a) > 0 || !spec().Deposits(self_, a)) {
        continue;
      }
      const CbcEscrowContract* esc = EscrowOfAsset(a);
      if (esc != nullptr && !esc->settled()) todo.push_back(a);
    }
  }
  if (todo.empty()) return;

  // The proof: reconfig chain from the epoch our escrows pinned (the
  // service records every rotation, including ones scheduled outside this
  // run) + a fresh status certificate from the current validator set,
  // stamped with the home shard so escrows on other shards accept it.
  DecideProof proof = run_->service().IssueDecideProof(
      *Log(), deployment().deal_id, run_->escrow_epoch());
  if (proof.proof.status.outcome != outcome) return;  // view changed; stale
  for (uint32_t a : todo) SubmitDecideProof(a, proof);
}

void CbcParty::OnStartDealPhase() { SubmitStartDeal(); }

void CbcParty::OnEscrowPhase() {
  if (!start_hash_known_) return;  // never observed startDeal: do nothing
  if (escrowed_) return;
  escrowed_ = true;
  for (const EscrowStep& step : spec().escrows) {
    if (step.party == self_) SubmitEscrow(step);
  }
}

void CbcParty::OnTransferStep(size_t step_index) {
  const TransferStep& step = spec().transfers[step_index];
  if (step.from == self_) SubmitTransfer(step);
}

void CbcParty::OnValidatePhase() { satisfied_ = RunValidationChecks(); }

void CbcParty::OnVotePhase() {
  // "they vote to commit if validation succeeds, and they vote to abort if
  //  validation fails" (§6).
  SubmitCbcVote(/*abort=*/!satisfied_);
}

void CbcParty::OnObservedCbcReceipt(const Receipt& receipt) {
  if (!receipt.status.ok()) return;
  if (receipt.function == "startDeal") {
    const CbcLogContract* log = Log();
    if (log == nullptr) return;
    Hash256 h = log->StartHashOf(deployment().deal_id);
    if (!h.IsZero()) {
      start_hash_ = h;
      start_hash_known_ = true;
      // If our abort deadline already passed while we were partitioned and
      // could not even learn h, vote abort now so escrows come home.
      if (abort_pending_ &&
          log->OutcomeOf(deployment().deal_id) == kDealActive) {
        SubmitCbcVote(/*abort=*/true);
        return;
      }
      // If the escrow phase already passed while we were partitioned,
      // escrow now — late escrows at worst make validation fail and the
      // deal abort consistently. But never escrow into a deal that is
      // already decided: under pre-GST asynchrony the decisive outcome can
      // be observed before startDeal, and a deposit made after everyone
      // else claimed would have no one left to refund it.
      if (world().now() >= run_->config().escrow_time && !escrowed_ &&
          log->OutcomeOf(deployment().deal_id) == kDealActive) {
        OnEscrowPhase();
      }
    }
    return;
  }
  if (receipt.function == "commit" || receipt.function == "abort") {
    const CbcLogContract* log = Log();
    if (log == nullptr) return;
    DealOutcome outcome = log->OutcomeOf(deployment().deal_id);
    if (outcome != kDealActive) ClaimAll(outcome);
  }
}

void CbcParty::OnAbortDeadline() {
  const CbcLogContract* log = Log();
  if (log == nullptr) return;
  if (!start_hash_known_) {
    // We have not even seen the deal start; abort the moment we do.
    abort_pending_ = true;
    return;
  }
  DealOutcome outcome = log->OutcomeOf(deployment().deal_id);
  if (outcome != kDealActive) return;  // already decided
  // Too much time has passed: rescind/abort so escrowed assets come home.
  SubmitCbcVote(/*abort=*/true);
}

// ---------------------------------------------------------------------------
// CbcRun
// ---------------------------------------------------------------------------

CbcRun::CbcRun(World* world, DealSpec spec, CbcConfig config,
               CbcService* service, StrategyFactory factory)
    : world_(world),
      spec_(std::move(spec)),
      config_(config),
      service_(service) {
  std::vector<ChainId> asset_chains;
  asset_chains.reserve(spec_.assets.size());
  for (const AssetRef& asset : spec_.assets) {
    asset_chains.push_back(asset.chain);
  }
  placement_ = service->PlaceAssets(spec_.deal_id, asset_chains);
  cbc_chain_ = service->chain(placement_.home_shard);
  validators_ = &service->validators(placement_.home_shard);
  for (PartyId p : spec_.parties) {
    std::unique_ptr<CbcParty> strategy;
    if (factory) strategy = factory(p);
    if (!strategy) strategy = std::make_unique<CbcParty>();
    strategy->run_ = this;
    strategy->self_ = p;
    parties_[p.v] = std::move(strategy);
  }
}

CbcParty* CbcRun::party(PartyId p) {
  auto it = parties_.find(p.v);
  return it == parties_.end() ? nullptr : it->second.get();
}

Status CbcRun::Start() {
  XDEAL_RETURN_IF_ERROR(spec_.Validate());
  // §6: a party may rescind its commit vote only "after waiting at least Δ".
  // A patience below Δ would let compliant parties rescind while their own
  // votes are still legitimately in flight — reject it outright instead of
  // silently running an unsafe schedule.
  if (config_.abort_patience < config_.delta) {
    return Status::InvalidArgument(
        "CbcConfig.abort_patience (" +
        std::to_string(config_.abort_patience) + ") must be >= delta (" +
        std::to_string(config_.delta) + ")");
  }

  deployment_.deal_id = spec_.deal_id;
  deployment_.cbc_chain = cbc_chain_;
  Blockchain* cbc = world_->chain(cbc_chain_);
  if (cbc == nullptr) return Status::NotFound("CBC chain missing");
  deployment_.cbc_log = cbc->Deploy(std::make_unique<CbcLogContract>());

  escrow_validators_ = validators_->CurrentPublicKeys();
  escrow_epoch_ = validators_->epoch();

  for (const AssetRef& asset : spec_.assets) {
    Blockchain* chain = world_->chain(asset.chain);
    if (chain == nullptr) return Status::NotFound("asset chain missing");
    deployment_.escrow_contracts.push_back(chain->Deploy(
        std::make_unique<CbcEscrowContract>(asset.kind, asset.token)));
  }

  deployment_.validation_time =
      config_.ValidationTime(spec_.transfers.size());
  deployment_.vote_time = deployment_.validation_time;

  // Every party watches the CBC — scoped to this deal's tag, so under
  // indexed delivery a party on a shared CBC chain is woken only by its own
  // deal's startDeal/vote receipts, not by every deal's. The decisive
  // receipt of our deal (the vote that flips the log's outcome) always
  // carries our tag, so claim liveness is preserved.
  for (const auto& [pid, strategy] : parties_) {
    CbcParty* raw = strategy.get();
    cbc->Subscribe(world_->PartyEndpoint(PartyId{pid}), config_.deal_tag,
                   [raw](const Receipt& r) { raw->OnObservedCbcReceipt(r); });
  }

  SetupApprovals();
  SchedulePhases();
  return Status::OK();
}

void CbcRun::SetupApprovals() {
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> fungible_totals;
  for (const EscrowStep& e : spec_.escrows) {
    const AssetRef& asset = spec_.assets[e.asset];
    Holder spender = Holder::OfContract(deployment_.escrow_contracts[e.asset]);
    if (asset.kind == AssetKind::kFungible) {
      fungible_totals[{e.asset, e.party.v}] += e.value;
    } else {
      ByteWriter w;
      w.U64(e.value);
      w.U8(static_cast<uint8_t>(spender.kind));
      w.U32(spender.id);
      world_->scheduler().ScheduleAt(
          config_.setup_time, EventLabel::Timer(e.party.v),
          [this, e, args = w.Take()]() mutable {
            world_->Submit(e.party, spec_.assets[e.asset].chain,
                           spec_.assets[e.asset].token,
                           CallData{"approve", std::move(args)}, "setup",
                           config_.deal_tag);
          });
    }
  }
  for (const auto& [key, total] : fungible_totals) {
    auto [asset_index, party_id] = key;
    Holder spender =
        Holder::OfContract(deployment_.escrow_contracts[asset_index]);
    ByteWriter w;
    w.U8(static_cast<uint8_t>(spender.kind));
    w.U32(spender.id);
    w.U64(total);
    uint32_t asset_copy = asset_index;
    uint32_t party_copy = party_id;
    world_->scheduler().ScheduleAt(
        config_.setup_time, EventLabel::Timer(party_copy),
        [this, asset_copy, party_copy, args = w.Take()]() mutable {
          world_->Submit(PartyId{party_copy}, spec_.assets[asset_copy].chain,
                         spec_.assets[asset_copy].token,
                         CallData{"approve", std::move(args)}, "setup",
                         config_.deal_tag);
        });
  }
}

void CbcRun::SchedulePhases() {
  // Clearing: the first party records startDeal.
  CbcParty* starter = parties_.at(spec_.parties.front().v).get();
  world_->scheduler().ScheduleAt(config_.start_deal_time,
                                 EventLabel::Timer(spec_.parties.front().v),
                                 [starter] { starter->OnStartDealPhase(); });

  for (const auto& [pid, strategy] : parties_) {
    CbcParty* raw = strategy.get();
    world_->scheduler().ScheduleAt(config_.escrow_time, EventLabel::Timer(pid),
                                   [raw] { raw->OnEscrowPhase(); });
    world_->scheduler().ScheduleAt(deployment_.validation_time,
                                   EventLabel::Timer(pid), [raw] {
      raw->OnValidatePhase();
      raw->OnVotePhase();
    });
    world_->scheduler().ScheduleAt(
        deployment_.vote_time + config_.abort_patience, EventLabel::Timer(pid),
        [raw] { raw->OnAbortDeadline(); });
  }
  for (size_t i = 0; i < spec_.transfers.size(); ++i) {
    Tick when = config_.transfer_start +
                (config_.parallel_transfers
                     ? 0
                     : static_cast<Tick>(i) * config_.step_gap);
    CbcParty* actor = parties_.at(spec_.transfers[i].from.v).get();
    world_->scheduler().ScheduleAt(when,
                                   EventLabel::Timer(spec_.transfers[i].from.v),
                                   [actor, i] { actor->OnTransferStep(i); });
  }
  // Optional mid-deal validator reconfigurations — routed through the
  // service so its per-shard history (the source of decide-proof chains)
  // records them.
  for (size_t k = 0; k < config_.reconfigs_before_claim; ++k) {
    world_->scheduler().ScheduleAt(config_.reconfig_time + k, [this] {
      reconfig_chain_.push_back(service_->Reconfigure(home_shard()));
    });
  }
}

CbcResult CbcRun::Collect() const {
  CbcResult result;
  const Blockchain* cbc = world_->chain(cbc_chain_);
  const auto* log = cbc->As<CbcLogContract>(deployment_.cbc_log);
  if (log != nullptr) result.outcome = log->OutcomeOf(deployment_.deal_id);

  result.all_settled = true;
  bool any_released = false, any_refunded = false;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const Blockchain* chain = world_->chain(spec_.assets[a].chain);
    const auto* esc =
        chain->As<CbcEscrowContract>(deployment_.escrow_contracts[a]);
    if (esc == nullptr) continue;
    if (esc->Released()) {
      ++result.released_contracts;
      any_released = true;
    }
    if (esc->Refunded()) {
      ++result.refunded_contracts;
      any_refunded = true;
    }
    // A contract nobody deposited into is vacuously settled.
    bool vacuous = esc->core().Depositors().empty();
    result.all_settled = result.all_settled && (esc->settled() || vacuous);
  }
  result.atomic = !(any_released && any_refunded);

  // Phase gas + timing from the per-tag receipt index: O(this deal's own
  // receipts) per chain. On a shared CBC chain carrying 10^5 deals' votes
  // the old full scan was the quadratic hot path.
  std::set<uint32_t> deal_chains = {cbc_chain_.v};
  for (const AssetRef& asset : spec_.assets) deal_chains.insert(asset.chain.v);
  for (uint32_t c : deal_chains) {
    const Blockchain* chain = world_->chain(ChainId{c});
    if (chain == nullptr) continue;
    for (const Receipt& r : chain->TaggedReceipts(config_.deal_tag)) {
      if (!r.status.ok()) continue;
      if (r.tag == "escrow") result.gas_escrow += r.gas_used;
      if (r.tag == "transfer") result.gas_transfer += r.gas_used;
      if (r.tag == "cbc-vote" || r.tag == "cbc-start") {
        result.gas_cbc_votes += r.gas_used;
      }
      if (r.tag == "decide") {
        result.gas_decide += r.gas_used;
        result.sig_verifies_decide += r.sig_verifies;
        result.settle_time = std::max(result.settle_time, r.included_at);
      }
    }
  }
  return result;
}

}  // namespace xdeal
