// CbcRun: executes a deal under the certified-blockchain commit protocol
// (§6).
//
// A designated party records startDeal(D, plist) on the CBC; parties escrow
// their outgoing assets (pinning the CBC's validator set and the startDeal
// hash h), perform tentative transfers, validate, then vote commit or abort
// *on the CBC* (not per asset). The CBC log's total order decides the deal;
// parties extract status certificates from the validators and present them
// to escrow contracts, which verify 2f+1 signatures and settle.
//
// There are no per-asset timeouts: a party whose deal is taking too long
// votes abort (rescinding its earlier commit vote if necessary, after
// waiting at least Δ, §6). This protocol tolerates pre-GST asynchrony: the
// deal may abort, but it aborts *everywhere* — never a mixed outcome.

#ifndef XDEAL_CORE_CBC_RUN_H_
#define XDEAL_CORE_CBC_RUN_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cbc/cbc_service.h"
#include "cbc/validators.h"
#include "chain/world.h"
#include "contracts/cbc_escrow.h"
#include "core/deal_spec.h"
#include "core/protocol_driver.h"
#include "util/det.h"

namespace xdeal {

/// Phase schedule (inherited — one source of truth in DealTimings) plus the
/// CBC protocol's own knobs.
struct CbcConfig : DealTimings {
  CbcConfig() : DealTimings(DefaultsFor(Protocol::kCbc)) {}
  explicit CbcConfig(const DealTimings& timings) : DealTimings(timings) {}

  /// How long after its commit vote a party waits before rescinding with an
  /// abort vote if the deal is still undecided. Must be >= Δ (§6); Start()
  /// rejects configs that violate the precondition.
  Tick abort_patience = 400;
  /// Number of validator-set reconfigurations to perform mid-deal (between
  /// escrow and claim) — exercises the (k+1)(2f+1) proof chain.
  size_t reconfigs_before_claim = 0;
  Tick reconfig_time = 260;
};

struct CbcDeployment {
  DealId deal_id;
  ChainId cbc_chain;
  ContractId cbc_log;
  std::vector<ContractId> escrow_contracts;  // parallel to spec.assets
  Tick validation_time = 0;
  Tick vote_time = 0;
};

class CbcRun;

/// Per-party strategy for the CBC protocol; default is compliant.
class CbcParty {
 public:
  virtual ~CbcParty() = default;

  PartyId self() const { return self_; }
  bool satisfied() const { return satisfied_; }
  bool voted_commit() const { return voted_commit_; }
  bool voted_abort() const { return voted_abort_; }

  // --- phase hooks ---
  virtual void OnStartDealPhase();     // only the starter acts
  virtual void OnEscrowPhase();
  virtual void OnTransferStep(size_t step_index);
  virtual void OnValidatePhase();
  virtual void OnVotePhase();          // commit if satisfied, abort otherwise
  virtual void OnObservedCbcReceipt(const Receipt& receipt);
  virtual void OnAbortDeadline();      // rescind if still undecided

 protected:
  friend class CbcRun;

  World& world();
  const DealSpec& spec() const;
  const CbcDeployment& deployment() const;
  CbcRun& run() { return *run_; }
  const CbcLogContract* Log() const;
  CbcEscrowContract* EscrowOfAsset(uint32_t asset) const;

  void SubmitStartDeal();
  void SubmitEscrow(const EscrowStep& step);
  void SubmitTransfer(const TransferStep& step);
  void SubmitCbcVote(bool abort);
  /// Wraps `proof` into a DecideProof declaring this deal's home shard and
  /// presents it to asset `a`'s escrow.
  void SubmitDecide(uint32_t asset, const CbcProof& proof);
  /// Presents an explicit DecideProof (adversaries use this to declare the
  /// wrong shard; compliant code goes through SubmitDecide).
  void SubmitDecideProof(uint32_t asset, const DecideProof& proof);
  bool RunValidationChecks() const;
  /// Claims every escrow this party cares about, given a decisive outcome.
  void ClaimAll(DealOutcome outcome);

  CbcRun* run_ = nullptr;
  PartyId self_;
  bool satisfied_ = false;
  bool start_hash_known_ = false;
  Hash256 start_hash_;
  bool voted_commit_ = false;
  bool voted_abort_ = false;
  bool escrowed_ = false;
  bool abort_pending_ = false;  // deadline passed before we learned h
  std::set<uint32_t> decided_assets_;  // where we already sent a proof
};

struct CbcResult {
  DealOutcome outcome = kDealActive;  // per the CBC log
  bool all_settled = false;
  bool atomic = true;                 // no mixed settle across asset chains
  size_t released_contracts = 0;
  size_t refunded_contracts = 0;
  Tick settle_time = 0;

  uint64_t gas_escrow = 0;
  uint64_t gas_transfer = 0;
  uint64_t gas_cbc_votes = 0;   // writes on the CBC itself
  uint64_t gas_decide = 0;      // proof checking on asset chains
  uint64_t sig_verifies_decide = 0;
};

class CbcRun {
 public:
  using StrategyFactory = std::function<std::unique_ptr<CbcParty>(PartyId)>;

  /// `service` hosts the certified logs; CbcService::PlaceAssets resolves
  /// the deal's placement — the *home* shard (hashed from the deal id) hosts
  /// the log and certifies the deal, while each asset settles on the shard
  /// hosting its chain (possibly a different one: its escrow then consumes a
  /// portable DecideProof from the home shard). The service must outlive the
  /// run.
  CbcRun(World* world, DealSpec spec, CbcConfig config, CbcService* service,
         StrategyFactory factory = nullptr);

  XDEAL_DETERMINISTIC Status Start();
  XDEAL_DETERMINISTIC CbcResult Collect() const;

  const CbcDeployment& deployment() const { return deployment_; }
  const DealSpec& spec() const { return spec_; }
  const CbcConfig& config() const { return config_; }
  World& world() { return *world_; }
  CbcService& service() { return *service_; }
  /// This deal's home-shard validators (via the service).
  ValidatorSet& validators() { return *validators_; }
  /// Where the deal's log and assets landed (from CbcService::PlaceAssets).
  const CbcService::Placement& placement() const { return placement_; }
  size_t home_shard() const { return placement_.home_shard; }
  CbcParty* party(PartyId p);

  /// Validator keys pinned by escrows (epoch at escrow time).
  const std::vector<PublicKey>& escrow_validators() const {
    return escrow_validators_;
  }
  uint32_t escrow_epoch() const { return escrow_epoch_; }

  /// Reconfiguration certificates issued since escrow (parties attach these
  /// to their proofs).
  const std::vector<ReconfigCertificate>& reconfig_chain() const {
    return reconfig_chain_;
  }

 private:
  void SetupApprovals();
  void SchedulePhases();

  World* world_;
  DealSpec spec_;
  CbcConfig config_;
  CbcService* service_;
  CbcService::Placement placement_;
  ChainId cbc_chain_;
  ValidatorSet* validators_;
  CbcDeployment deployment_;
  std::vector<PublicKey> escrow_validators_;
  uint32_t escrow_epoch_ = 0;
  std::vector<ReconfigCertificate> reconfig_chain_;
  std::map<uint32_t, std::unique_ptr<CbcParty>> parties_;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_CBC_RUN_H_
