#include "core/checker.h"

#include <cassert>

namespace xdeal {

LedgerSnapshot LedgerSnapshot::Capture(const World& world,
                                       const DealSpec& spec) {
  LedgerSnapshot snap;
  snap.balances.resize(spec.NumAssets());
  snap.ticket_owners.resize(spec.NumAssets());
  for (uint32_t a = 0; a < spec.NumAssets(); ++a) {
    const AssetRef& asset = spec.assets[a];
    const Blockchain* chain = world.chain(asset.chain);
    if (chain == nullptr) continue;
    if (asset.kind == AssetKind::kFungible) {
      const auto* token = chain->As<FungibleToken>(asset.token);
      if (token == nullptr) continue;
      for (PartyId p : spec.parties) {
        snap.balances[a][p.v] = token->BalanceOf(Holder::Party(p));
      }
    } else {
      const auto* registry = chain->As<TicketRegistry>(asset.token);
      if (registry == nullptr) continue;
      for (const EscrowStep& e : spec.escrows) {
        if (e.asset != a) continue;
        Holder owner = registry->OwnerOf(e.value);
        if (owner.valid() && owner.is_party()) {
          snap.ticket_owners[a][e.value] = owner.party().v;
        }
      }
    }
  }
  return snap;
}

DealChecker::DealChecker(const World* world, DealSpec spec,
                         std::vector<ContractId> escrows, uint64_t deal_tag)
    : world_(world),
      spec_(std::move(spec)),
      escrows_(std::move(escrows)),
      deal_tag_(deal_tag) {
  assert(escrows_.size() == spec_.NumAssets());
}

void DealChecker::CaptureInitial() {
  initial_ = LedgerSnapshot::Capture(*world_, spec_);
  captured_ = true;
}

void DealChecker::MarkSharedParty(PartyId p) { shared_parties_.insert(p.v); }

const DealEscrowView* DealChecker::ViewOf(uint32_t asset) const {
  const Blockchain* chain = world_->chain(spec_.assets[asset].chain);
  if (chain == nullptr) return nullptr;
  return dynamic_cast<const DealEscrowView*>(chain->contract(escrows_[asset]));
}

bool DealChecker::ExecutedOutgoingTransfer(PartyId p, uint32_t asset) const {
  const Blockchain* chain = world_->chain(spec_.assets[asset].chain);
  if (chain == nullptr) return false;
  // Everything a deal submits to its own escrow contract carries the deal's
  // tag, so the (tag, contract) index sees exactly the receipts the old
  // full scan matched on `r.contract`.
  for (const Receipt& r :
       chain->ContractReceipts(deal_tag_, escrows_[asset])) {
    if (r.function == "transfer" && r.status.ok() && r.sender == p) {
      return true;
    }
  }
  return false;
}

PartyVerdict DealChecker::Evaluate(PartyId p) const {
  assert(captured_);
  PartyVerdict v;

  // --- outgoing transferred: some committed chain carries an executed
  //     outgoing tentative transfer of p ---
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const DealEscrowView* view = ViewOf(a);
    if (view == nullptr || !view->Released()) continue;
    if (ExecutedOutgoingTransfer(p, a)) {
      v.outgoing_transferred = true;
      break;
    }
  }

  // --- all incoming received ---
  std::vector<DealSpec::Expectation> expect = spec_.ExpectationsOf(p);
  v.all_incoming_received = true;
  for (uint32_t a : spec_.IncomingAssetsOf(p)) {
    const DealEscrowView* view = ViewOf(a);
    if (view == nullptr || !view->Released()) {
      v.all_incoming_received = false;
      break;
    }
    if (spec_.assets[a].kind == AssetKind::kFungible) {
      if (view->escrow_core().OnCommitOf(p) != expect[a].fungible_amount) {
        v.all_incoming_received = false;
        break;
      }
    } else {
      for (uint64_t ticket : expect[a].tickets) {
        if (!(view->escrow_core().NftCommitOwner(ticket) == p)) {
          v.all_incoming_received = false;
          break;
        }
      }
      if (!v.all_incoming_received) break;
    }
  }

  v.property1 = !v.outgoing_transferred || v.all_incoming_received;

  // --- weak liveness: every escrow p actually funded has settled ---
  v.weak_liveness = true;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const DealEscrowView* view = ViewOf(a);
    if (view == nullptr) continue;
    bool p_has_stake = view->escrow_core().EscrowedOf(p) > 0;
    if (p_has_stake && !view->Settled()) {
      v.weak_liveness = false;
      break;
    }
  }

  // --- token-level checks ---
  LedgerSnapshot now = LedgerSnapshot::Capture(*world_, spec_);
  std::vector<AssetOutcome> outcomes = spec_.ExpectedOutcomes();
  v.token_state_expected = true;
  v.token_state_unchanged = true;
  // Fungible state is accounted per (chain, token contract), not per asset
  // index: a deal may reference the same token as several assets (e.g. a
  // broker deal's buyer payment and broker float are both the pool coin),
  // but a party only has ONE balance there — so the expectations of all
  // asset indices sharing a token are summed before comparing.
  std::map<std::pair<uint32_t, uint32_t>, std::vector<uint32_t>> fungible;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    if (spec_.assets[a].kind == AssetKind::kFungible) {
      fungible[{spec_.assets[a].chain.v, spec_.assets[a].token.v}]
          .push_back(a);
    } else {
      for (const auto& [ticket, commit_owner] : outcomes[a].nft_commit) {
        bool initially_ours = false;
        auto iti = initial_.ticket_owners[a].find(ticket);
        if (iti != initial_.ticket_owners[a].end()) {
          initially_ours = iti->second == p.v;
        }
        bool finally_ours = false;
        auto itf = now.ticket_owners[a].find(ticket);
        // Re-capture only tracks escrowed tickets; look up live owner.
        const auto* registry =
            world_->chain(spec_.assets[a].chain)
                ->As<TicketRegistry>(spec_.assets[a].token);
        if (registry != nullptr) {
          Holder owner = registry->OwnerOf(ticket);
          finally_ours = owner.is_party() && owner.party() == p;
        }
        (void)itf;
        bool should_own_on_commit = commit_owner == p;
        if (finally_ours != should_own_on_commit) {
          v.token_state_expected = false;
        }
        if (finally_ours != initially_ours) v.token_state_unchanged = false;
      }
    }
  }
  for (const auto& [token, asset_indices] : fungible) {
    (void)token;
    // Every asset index of the group snapshots the same ledger; read the
    // balance once and sum the per-asset expectations.
    uint32_t a0 = asset_indices.front();
    uint64_t initial = 0, final_bal = 0;
    auto iti = initial_.balances[a0].find(p.v);
    if (iti != initial_.balances[a0].end()) initial = iti->second;
    auto itf = now.balances[a0].find(p.v);
    if (itf != now.balances[a0].end()) final_bal = itf->second;

    uint64_t deposited = 0;
    uint64_t commit_share = 0;
    for (uint32_t a : asset_indices) {
      auto itd = outcomes[a].fungible_deposited.find(p);
      if (itd != outcomes[a].fungible_deposited.end()) {
        deposited += itd->second;
      }
      auto itc = outcomes[a].fungible_commit.find(p);
      if (itc != outcomes[a].fungible_commit.end()) {
        commit_share += itc->second;
      }
    }
    uint64_t expected_final = initial - deposited + commit_share;
    if (final_bal != expected_final) v.token_state_expected = false;
    if (final_bal != initial) v.token_state_unchanged = false;
  }
  return v;
}

bool DealChecker::SafetyHolds(const std::vector<PartyId>& compliant) const {
  for (PartyId p : compliant) {
    if (!Evaluate(p).property1) return false;
  }
  return true;
}

bool DealChecker::WeakLivenessHolds(
    const std::vector<PartyId>& compliant) const {
  for (PartyId p : compliant) {
    if (!Evaluate(p).weak_liveness) return false;
  }
  return true;
}

bool DealChecker::StrongLivenessHolds() const {
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const DealEscrowView* view = ViewOf(a);
    if (view == nullptr || !view->Released()) return false;
  }
  for (PartyId p : spec_.parties) {
    // A shared party's balances fold every concurrent deal it touches;
    // its per-deal token expectation is undefined (the cross-deal
    // portfolio check owns its solvency instead).
    if (shared_parties_.count(p.v) > 0) continue;
    if (!Evaluate(p).token_state_expected) return false;
  }
  return true;
}

bool DealChecker::Atomic() const {
  bool any_released = false, any_refunded = false;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const DealEscrowView* view = ViewOf(a);
    if (view == nullptr) continue;
    any_released = any_released || view->Released();
    any_refunded = any_refunded || view->Refunded();
  }
  return !(any_released && any_refunded);
}

}  // namespace xdeal
