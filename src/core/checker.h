// DealChecker: evaluates the paper's correctness properties over a finished
// deal execution.
//
//   Property 1 (safety): for every compliant party X, if any of X's outgoing
//     assets is transferred then all of X's incoming assets are transferred
//     (equivalently: if some incoming asset is not transferred, no outgoing
//     asset is transferred).
//   Property 2 (weak liveness): no asset belonging to a compliant party is
//     locked up forever — every escrow X funded eventually settled.
//   Property 3 (strong liveness): if all parties are compliant, all
//     transfers happen.
//
// The checker snapshots token-level ownership before the deal, then combines
// final token state, escrow contract state, and transaction receipts:
//   - "X's outgoing asset transferred" := some asset chain *committed*
//     (escrow released) on which X executed an outgoing tentative transfer;
//   - "all of X's incoming assets transferred" := every asset on which X
//     expects incoming value committed with X's commit-ownership exactly as
//     the agreed spec says.

#ifndef XDEAL_CORE_CHECKER_H_
#define XDEAL_CORE_CHECKER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chain/world.h"
#include "contracts/escrow_view.h"
#include "core/deal_spec.h"
#include "util/det.h"

namespace xdeal {

/// Token-level ownership snapshot of every asset class in a deal.
struct LedgerSnapshot {
  // asset index -> party -> fungible balance.
  std::vector<std::map<uint32_t, uint64_t>> balances;
  // asset index -> ticket -> owner party (only tickets named in the spec).
  std::vector<std::map<uint64_t, uint32_t>> ticket_owners;

  static LedgerSnapshot Capture(const World& world, const DealSpec& spec);
};

/// Per-party evaluation of the run.
struct PartyVerdict {
  bool outgoing_transferred = false;  // paid something
  bool all_incoming_received = false; // got everything expected
  bool property1 = false;             // safety holds for this party
  bool weak_liveness = false;         // nothing left locked
  bool token_state_expected = false;  // token ledger matches full commit
  bool token_state_unchanged = false; // token ledger matches full abort
};

class DealChecker {
 public:
  /// `escrows` maps asset index -> the deal's escrow contract on that
  /// asset's chain (must implement DealEscrowView). `deal_tag` is the tag
  /// the deal's transactions carry (chain/blockchain.h); receipt lookups go
  /// through the per-tag receipt index, so evaluation costs O(this deal's
  /// receipts) even in a world running 10^5 concurrent deals.
  DealChecker(const World* world, DealSpec spec,
              std::vector<ContractId> escrows, uint64_t deal_tag = 0);

  /// Call before the run executes (after minting / before escrow phase).
  void CaptureInitial();

  /// Marks `p` as a party shared with other concurrent deals (e.g. a
  /// broker): its token balances move with every deal it touches, so this
  /// deal's token-state expectation is undefined for it and is skipped in
  /// StrongLivenessHolds. Escrow-contract-level checks (Properties 1-2,
  /// escrow release) still apply; the party's global solvency is asserted
  /// by the cross-deal portfolio check instead (core/broker_pool.h).
  void MarkSharedParty(PartyId p);

  /// Evaluates one party after the scheduler has drained.
  XDEAL_DETERMINISTIC PartyVerdict Evaluate(PartyId p) const;

  /// Property 1 over a set of compliant parties.
  XDEAL_DETERMINISTIC bool SafetyHolds(const std::vector<PartyId>& compliant) const;

  /// Property 2 over a set of compliant parties.
  XDEAL_DETERMINISTIC bool WeakLivenessHolds(const std::vector<PartyId>& compliant) const;

  /// Property 3: every escrow released and token ledgers match the expected
  /// commit outcome exactly (call only for all-compliant runs).
  XDEAL_DETERMINISTIC bool StrongLivenessHolds() const;

  /// True if every asset chain settled the same way (the CBC guarantee:
  /// "the deal either commits everywhere or aborts everywhere").
  bool Atomic() const;

  const DealSpec& spec() const { return spec_; }

 private:
  const DealEscrowView* ViewOf(uint32_t asset) const;
  bool ExecutedOutgoingTransfer(PartyId p, uint32_t asset) const;

  const World* world_;
  DealSpec spec_;
  std::vector<ContractId> escrows_;
  uint64_t deal_tag_ = 0;
  std::set<uint32_t> shared_parties_;  // PartyId values, see MarkSharedParty
  LedgerSnapshot initial_;
  bool captured_ = false;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_CHECKER_H_
