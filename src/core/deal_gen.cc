#include "core/deal_gen.h"

#include <cassert>

namespace xdeal {

DealSpec GenerateRandomDeal(DealEnv* env, const GenParams& params) {
  assert(params.n_parties >= 2);
  assert(params.m_assets >= 1);
  Rng rng(params.seed ^ 0x9E3779B97F4A7C15ULL);

  DealSpec spec;
  spec.deal_id = MakeDealId(params.name_prefix + "generated", params.seed);

  for (size_t i = 0; i < params.n_parties; ++i) {
    spec.parties.push_back(
        env->AddParty(params.name_prefix + "party-" + std::to_string(i)));
  }
  std::vector<ChainId> chains = params.use_chains;
  for (size_t c = chains.size(); c < params.num_chains; ++c) {
    chains.push_back(
        env->AddChain(params.name_prefix + "chain-" + std::to_string(c)));
  }

  // Assets round-robin over chains; owner of asset i is party i mod n.
  struct AssetPlan {
    uint32_t index;
    PartyId owner;
    bool nft;
    uint64_t ticket_or_amount;
    PartyId walk_end;  // current tentative owner along the transfer walk
  };
  std::vector<AssetPlan> plans;
  for (size_t a = 0; a < params.m_assets; ++a) {
    PartyId owner = spec.parties[a % params.n_parties];
    ChainId chain = chains[a % chains.size()];
    bool nft = params.nft_every > 0 && a > 0 && a % params.nft_every == 0;
    AssetPlan plan;
    plan.owner = owner;
    plan.nft = nft;
    plan.walk_end = owner;
    if (nft) {
      plan.index = env->AddNftAsset(
          &spec, chain, params.name_prefix + "nft-" + std::to_string(a),
          owner);
      plan.ticket_or_amount = env->MintTicket(
          spec, plan.index, owner,
          params.name_prefix + "event-" + std::to_string(a), "A1",
          /*quality=*/90);
    } else {
      plan.index = env->AddFungibleAsset(
          &spec, chain, params.name_prefix + "tok-" + std::to_string(a),
          owner);
      plan.ticket_or_amount = params.amount;
      env->Mint(spec, plan.index, owner, params.amount);
    }
    spec.escrows.push_back(
        EscrowStep{plan.index, owner, plan.ticket_or_amount});
    plans.push_back(plan);
  }

  // Asset 0 hops a full cycle through all parties: guarantees strong
  // connectivity. (Asset 0 is always fungible.)
  for (size_t i = 0; i < params.n_parties; ++i) {
    PartyId from = spec.parties[i];
    PartyId to = spec.parties[(i + 1) % params.n_parties];
    spec.transfers.push_back(
        TransferStep{plans[0].index, from, to, plans[0].ticket_or_amount});
  }
  plans[0].walk_end = spec.parties[0];

  // Each remaining asset makes at least one hop so it participates.
  for (size_t a = 1; a < plans.size(); ++a) {
    PartyId from = plans[a].walk_end;
    PartyId to = from;
    while (to == from) {
      to = spec.parties[rng.Below(params.n_parties)];
    }
    spec.transfers.push_back(
        TransferStep{plans[a].index, from, to, plans[a].ticket_or_amount});
    plans[a].walk_end = to;
  }

  // Distribute any remaining transfer budget as extra random hops.
  size_t target = params.t_transfers;
  while (spec.transfers.size() < target) {
    AssetPlan& plan = plans[rng.Below(plans.size())];
    PartyId from = plan.walk_end;
    PartyId to = from;
    while (to == from) {
      to = spec.parties[rng.Below(params.n_parties)];
    }
    spec.transfers.push_back(
        TransferStep{plan.index, from, to, plan.ticket_or_amount});
    plan.walk_end = to;
  }

  assert(spec.Validate().ok());
  assert(spec.IsWellFormed());
  return spec;
}

DealSpec GenerateBrokerDeal(DealEnv* env, const BrokerDealParams& params) {
  assert(params.units >= 1);
  const uint64_t cost = params.units * params.unit_price;
  const uint64_t price = cost + params.units * params.unit_margin;

  DealSpec spec;
  spec.deal_id = MakeDealId(params.name_prefix + "broker", params.seed);
  PartyId seller = env->AddParty(params.name_prefix + "seller");
  PartyId buyer = env->AddParty(params.name_prefix + "buyer");
  spec.parties = {params.broker, seller, buyer};

  // Three assets, each with exactly ONE depositor, so every stake lives in
  // its own escrow contract (the broker's float is never pooled with a
  // counterparty's payment, and a stranded deposit is attributable to its
  // owner alone). Two of the assets may reference the same token contract;
  // the checker accounts token state per (chain, token), not per asset.
  // All are pre-existing contracts — referenced, not deployed.
  if (params.sell_side) {
    // The broker delivers `units` from her own inventory (asset 0) and
    // restocks from the seller (asset 1); the seller's payment comes out
    // of the buyer's (asset 2), so no working capital is needed — only
    // stocked commodity.
    spec.assets.push_back(params.commodity);  // 0: broker's inventory
    spec.assets.push_back(params.commodity);  // 1: seller's restock supply
    spec.assets.push_back(params.coin);       // 2: buyer's payment
    env->Mint(spec, 1, seller, params.units);
    env->Mint(spec, 2, buyer, price);
    spec.escrows.push_back(EscrowStep{0, params.broker, params.units});
    spec.escrows.push_back(EscrowStep{1, seller, params.units});
    spec.escrows.push_back(EscrowStep{2, buyer, price});
    spec.transfers.push_back(
        TransferStep{0, params.broker, buyer, params.units});
    spec.transfers.push_back(TransferStep{2, buyer, params.broker, price});
    spec.transfers.push_back(TransferStep{2, params.broker, seller, cost});
    spec.transfers.push_back(TransferStep{1, seller, params.broker,
                                          params.units});
  } else {
    // Buy-side: the broker pays the seller (asset 0's goods) from her own
    // escrowed capital (asset 2) and recoups it plus margin from the
    // buyer (asset 1) — `cost` coins of working capital are locked for
    // the deal's whole lifetime.
    spec.assets.push_back(params.commodity);  // 0: seller's goods
    spec.assets.push_back(params.coin);       // 1: buyer's payment
    spec.assets.push_back(params.coin);       // 2: broker's float
    env->Mint(spec, 0, seller, params.units);
    env->Mint(spec, 1, buyer, price);
    spec.escrows.push_back(EscrowStep{0, seller, params.units});
    spec.escrows.push_back(EscrowStep{1, buyer, price});
    spec.escrows.push_back(EscrowStep{2, params.broker, cost});
    spec.transfers.push_back(
        TransferStep{0, seller, params.broker, params.units});
    spec.transfers.push_back(
        TransferStep{0, params.broker, buyer, params.units});
    spec.transfers.push_back(TransferStep{2, params.broker, seller, cost});
    spec.transfers.push_back(TransferStep{1, buyer, params.broker, price});
  }

  assert(spec.Validate().ok());
  assert(spec.IsWellFormed());
  return spec;
}

DealSpec GenerateBrokerChainDeal(DealEnv* env,
                                 const BrokerChainParams& params) {
  assert(params.units >= 1);
  assert(!params.brokers.empty());
  assert(params.margins.size() == params.brokers.size());
  const size_t depth = params.brokers.size();

  // cost[i] = what hop i pays its upstream, which is also hop i's escrowed
  // float (cost[0] = what the first broker pays the seller; cost[depth] =
  // the buyer's all-in price, every hop's margin stacked).
  std::vector<uint64_t> cost(depth + 1, 0);
  cost[0] = params.units * params.unit_price;
  for (size_t i = 0; i < depth; ++i) {
    cost[i + 1] = cost[i] + params.units * params.margins[i];
  }

  DealSpec spec;
  spec.deal_id = MakeDealId(params.name_prefix + "brokerchain", params.seed);
  PartyId seller = env->AddParty(params.name_prefix + "seller");
  PartyId buyer = env->AddParty(params.name_prefix + "buyer");
  spec.parties = params.brokers;
  spec.parties.push_back(seller);
  spec.parties.push_back(buyer);

  // One escrow per stake, each with exactly ONE depositor: asset 0 is the
  // seller's goods; asset 1+i is hop i's coin float (the capital it fronts
  // to pay its upstream); asset depth+1 is the buyer's payment. Brokers are
  // never minted here — their floats draw down finite pool capital.
  spec.assets.push_back(params.commodity);  // 0: the goods, passed along
  for (size_t i = 0; i < depth; ++i) {
    spec.assets.push_back(params.coin);  // 1+i: hop i's float
  }
  spec.assets.push_back(params.coin);  // depth+1: buyer's payment
  env->Mint(spec, 0, seller, params.units);
  env->Mint(spec, static_cast<uint32_t>(depth + 1), buyer, cost[depth]);

  spec.escrows.push_back(EscrowStep{0, seller, params.units});
  for (size_t i = 0; i < depth; ++i) {
    spec.escrows.push_back(EscrowStep{static_cast<uint32_t>(1 + i),
                                      params.brokers[i], cost[i]});
  }
  spec.escrows.push_back(
      EscrowStep{static_cast<uint32_t>(depth + 1), buyer, cost[depth]});

  // Goods walk the whole chain: seller -> B0 -> ... -> B(depth-1) -> buyer.
  spec.transfers.push_back(
      TransferStep{0, seller, params.brokers[0], params.units});
  for (size_t i = 0; i + 1 < depth; ++i) {
    spec.transfers.push_back(TransferStep{0, params.brokers[i],
                                          params.brokers[i + 1],
                                          params.units});
  }
  spec.transfers.push_back(
      TransferStep{0, params.brokers[depth - 1], buyer, params.units});

  // Payments flow back up: each hop pays its upstream from its own float,
  // and the buyer pays the last hop. Every adjacent pair thus trades in
  // both directions, so the deal digraph is strongly connected.
  spec.transfers.push_back(TransferStep{1, params.brokers[0], seller,
                                        cost[0]});
  for (size_t i = 1; i < depth; ++i) {
    spec.transfers.push_back(TransferStep{static_cast<uint32_t>(1 + i),
                                          params.brokers[i],
                                          params.brokers[i - 1], cost[i]});
  }
  spec.transfers.push_back(TransferStep{static_cast<uint32_t>(depth + 1),
                                        buyer, params.brokers[depth - 1],
                                        cost[depth]});

  assert(spec.Validate().ok());
  assert(spec.IsWellFormed());
  return spec;
}

}  // namespace xdeal
