#include "core/deal_gen.h"

#include <cassert>

namespace xdeal {

DealSpec GenerateRandomDeal(DealEnv* env, const GenParams& params) {
  assert(params.n_parties >= 2);
  assert(params.m_assets >= 1);
  Rng rng(params.seed ^ 0x9E3779B97F4A7C15ULL);

  DealSpec spec;
  spec.deal_id = MakeDealId(params.name_prefix + "generated", params.seed);

  for (size_t i = 0; i < params.n_parties; ++i) {
    spec.parties.push_back(
        env->AddParty(params.name_prefix + "party-" + std::to_string(i)));
  }
  std::vector<ChainId> chains = params.use_chains;
  for (size_t c = chains.size(); c < params.num_chains; ++c) {
    chains.push_back(
        env->AddChain(params.name_prefix + "chain-" + std::to_string(c)));
  }

  // Assets round-robin over chains; owner of asset i is party i mod n.
  struct AssetPlan {
    uint32_t index;
    PartyId owner;
    bool nft;
    uint64_t ticket_or_amount;
    PartyId walk_end;  // current tentative owner along the transfer walk
  };
  std::vector<AssetPlan> plans;
  for (size_t a = 0; a < params.m_assets; ++a) {
    PartyId owner = spec.parties[a % params.n_parties];
    ChainId chain = chains[a % chains.size()];
    bool nft = params.nft_every > 0 && a > 0 && a % params.nft_every == 0;
    AssetPlan plan;
    plan.owner = owner;
    plan.nft = nft;
    plan.walk_end = owner;
    if (nft) {
      plan.index = env->AddNftAsset(
          &spec, chain, params.name_prefix + "nft-" + std::to_string(a),
          owner);
      plan.ticket_or_amount = env->MintTicket(
          spec, plan.index, owner,
          params.name_prefix + "event-" + std::to_string(a), "A1",
          /*quality=*/90);
    } else {
      plan.index = env->AddFungibleAsset(
          &spec, chain, params.name_prefix + "tok-" + std::to_string(a),
          owner);
      plan.ticket_or_amount = params.amount;
      env->Mint(spec, plan.index, owner, params.amount);
    }
    spec.escrows.push_back(
        EscrowStep{plan.index, owner, plan.ticket_or_amount});
    plans.push_back(plan);
  }

  // Asset 0 hops a full cycle through all parties: guarantees strong
  // connectivity. (Asset 0 is always fungible.)
  for (size_t i = 0; i < params.n_parties; ++i) {
    PartyId from = spec.parties[i];
    PartyId to = spec.parties[(i + 1) % params.n_parties];
    spec.transfers.push_back(
        TransferStep{plans[0].index, from, to, plans[0].ticket_or_amount});
  }
  plans[0].walk_end = spec.parties[0];

  // Each remaining asset makes at least one hop so it participates.
  for (size_t a = 1; a < plans.size(); ++a) {
    PartyId from = plans[a].walk_end;
    PartyId to = from;
    while (to == from) {
      to = spec.parties[rng.Below(params.n_parties)];
    }
    spec.transfers.push_back(
        TransferStep{plans[a].index, from, to, plans[a].ticket_or_amount});
    plans[a].walk_end = to;
  }

  // Distribute any remaining transfer budget as extra random hops.
  size_t target = params.t_transfers;
  while (spec.transfers.size() < target) {
    AssetPlan& plan = plans[rng.Below(plans.size())];
    PartyId from = plan.walk_end;
    PartyId to = from;
    while (to == from) {
      to = spec.parties[rng.Below(params.n_parties)];
    }
    spec.transfers.push_back(
        TransferStep{plan.index, from, to, plan.ticket_or_amount});
    plan.walk_end = to;
  }

  assert(spec.Validate().ok());
  assert(spec.IsWellFormed());
  return spec;
}

}  // namespace xdeal
