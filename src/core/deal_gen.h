// Random deal generation for property tests and parameter sweeps.
//
// Produces well-formed deals with a controllable shape: n parties, m assets
// spread over `num_chains` chains, t transfers. Strong connectivity is
// guaranteed by construction: asset 0 is escrowed by party 0 and hops a full
// cycle through all parties; remaining assets take random feasible walks.
// Matches the paper's cost-analysis parameterization (§7: "a deal with n
// participating parties, m assets, and t >= m transfers").

#ifndef XDEAL_CORE_DEAL_GEN_H_
#define XDEAL_CORE_DEAL_GEN_H_

#include <string>
#include <vector>

#include "core/env.h"

namespace xdeal {

struct GenParams {
  size_t n_parties = 3;
  size_t m_assets = 2;
  size_t t_transfers = 4;  // clamped up to n + (m-1) for well-formedness
  size_t num_chains = 2;   // assets are placed round-robin
  uint64_t amount = 100;   // escrow size for fungible assets
  /// Every `nft_every`-th asset (>=1) is an NFT; 0 disables NFTs.
  size_t nft_every = 0;
  uint64_t seed = 1;
  /// If non-empty, assets are placed round-robin on these *existing* chains
  /// instead of creating `num_chains` fresh ones — this is how a traffic
  /// workload multiplexes many deals over a shared chain pool.
  std::vector<ChainId> use_chains;
  /// Prepended to generated party/token names so concurrent deals in one
  /// World get distinct identities (party keys derive from names).
  std::string name_prefix;
};

/// Builds chains/tokens/parties inside `env`, mints initial holdings, and
/// returns a valid, well-formed DealSpec.
DealSpec GenerateRandomDeal(DealEnv* env, const GenParams& params);

/// Shape of one Figure-1-style broker deal: a broker resells `units` of a
/// commodity between a fresh seller and a fresh buyer, keeping a margin.
/// Unlike GenerateRandomDeal, the commodity and coin tokens are *existing*
/// contracts (the broker's stock and the pool's settlement currency), so the
/// same broker identity and token inventory are reused across many deals.
struct BrokerDealParams {
  /// The middle party, created once by the BrokerPool and shared by all of
  /// this broker's deals.
  PartyId broker;
  /// The broker's stocked token (sell-side deals front inventory from it).
  AssetRef commodity;
  /// The settlement token every price/margin is denominated in (buy-side
  /// deals front working capital from the broker's balance of it).
  AssetRef coin;
  /// false: buy-side — the broker escrows `units * unit_price` coins to pay
  /// the seller up front (working capital at risk). true: sell-side — the
  /// broker escrows `units` commodity from her own inventory to deliver
  /// immediately and restocks from the seller within the deal.
  bool sell_side = false;
  uint64_t units = 1;
  uint64_t unit_price = 100;
  /// The broker's commission per unit; the buyer pays
  /// units * (unit_price + unit_margin).
  uint64_t unit_margin = 5;
  uint64_t seed = 1;
  /// Prepended to the fresh seller/buyer party names.
  std::string name_prefix;
};

/// Builds one broker deal: creates the seller and buyer, mints the seller's
/// supply and the buyer's payment, and returns a valid, well-formed spec in
/// which the broker is strictly better off on commit (margin > 0) and whole
/// on abort. The broker's own holdings are NOT minted here — her capital
/// and inventory are finite pool-level resources.
DealSpec GenerateBrokerDeal(DealEnv* env, const BrokerDealParams& params);

/// Shape of a multi-hop broker chain (Figure 1 at hop depth > 1): goods
/// flow seller -> B1 -> ... -> BH -> buyer in ONE atomic deal, with every
/// broker fronting the capital to pay its upstream and recouping it plus
/// its own per-unit margin from the next hop. Each stake lives in its own
/// escrow: the seller's goods, one coin float per broker, and the buyer's
/// payment — so a compliant hop is whole on abort and strictly better off
/// on commit, exactly like the single-hop shape, chained.
struct BrokerChainParams {
  /// The resale chain, upstream first: brokers[0] buys from the seller,
  /// brokers.back() sells to the buyer. Must be non-empty and free of
  /// repeated parties.
  std::vector<PartyId> brokers;
  /// The goods token the chain passes along (the first broker's commodity).
  AssetRef commodity;
  /// The settlement token every hop's price is denominated in.
  AssetRef coin;
  uint64_t units = 1;
  /// What brokers[0] pays the seller per unit.
  uint64_t unit_price = 100;
  /// Per-hop commission, parallel to `brokers`: hop i resells at its buy
  /// price plus units * margins[i] (priced capital feeds occupancy-scaled
  /// margins in here).
  std::vector<uint64_t> margins;
  uint64_t seed = 1;
  /// Prepended to the fresh seller/buyer party names.
  std::string name_prefix;
};

/// Builds one multi-hop broker-chain deal: creates the seller and buyer,
/// mints the seller's goods and the buyer's payment (the sum of every hop's
/// cost and margin), and returns a valid, well-formed spec. Broker holdings
/// are NOT minted here — each hop's float comes out of that broker's finite
/// pool capital.
DealSpec GenerateBrokerChainDeal(DealEnv* env,
                                 const BrokerChainParams& params);

}  // namespace xdeal

#endif  // XDEAL_CORE_DEAL_GEN_H_
