#include "core/deal_spec.h"

#include <algorithm>
#include <functional>

namespace xdeal {

bool DealSpec::HasParty(PartyId p) const {
  return std::find(parties.begin(), parties.end(), p) != parties.end();
}

Status DealSpec::Validate() const {
  if (parties.empty()) return Status::InvalidArgument("spec: no parties");
  std::set<PartyId> unique(parties.begin(), parties.end());
  if (unique.size() != parties.size()) {
    return Status::InvalidArgument("spec: duplicate parties");
  }
  for (const EscrowStep& e : escrows) {
    if (e.asset >= assets.size()) {
      return Status::InvalidArgument("spec: escrow asset out of range");
    }
    if (!HasParty(e.party)) {
      return Status::InvalidArgument("spec: escrower not a party");
    }
    if (assets[e.asset].kind == AssetKind::kFungible && e.value == 0) {
      return Status::InvalidArgument("spec: zero-amount escrow");
    }
  }
  // NFT tickets may be escrowed at most once.
  std::set<std::pair<uint32_t, uint64_t>> seen_tickets;
  for (const EscrowStep& e : escrows) {
    if (assets[e.asset].kind == AssetKind::kNft &&
        !seen_tickets.insert({e.asset, e.value}).second) {
      return Status::InvalidArgument("spec: ticket escrowed twice");
    }
  }
  // Replay transfers to confirm feasibility.
  std::vector<AssetOutcome> state(assets.size());
  for (const EscrowStep& e : escrows) {
    AssetOutcome& s = state[e.asset];
    if (assets[e.asset].kind == AssetKind::kFungible) {
      s.fungible_commit[e.party] += e.value;
    } else {
      s.nft_commit[e.value] = e.party;
    }
  }
  for (const TransferStep& t : transfers) {
    if (t.asset >= assets.size()) {
      return Status::InvalidArgument("spec: transfer asset out of range");
    }
    if (!HasParty(t.from) || !HasParty(t.to)) {
      return Status::InvalidArgument("spec: transfer endpoint not a party");
    }
    if (t.from == t.to) {
      return Status::InvalidArgument("spec: self-transfer");
    }
    AssetOutcome& s = state[t.asset];
    if (assets[t.asset].kind == AssetKind::kFungible) {
      auto it = s.fungible_commit.find(t.from);
      if (it == s.fungible_commit.end() || it->second < t.value) {
        return Status::FailedPrecondition(
            "spec: transfer infeasible (sender lacks commit-ownership)");
      }
      it->second -= t.value;
      s.fungible_commit[t.to] += t.value;
    } else {
      auto it = s.nft_commit.find(t.value);
      if (it == s.nft_commit.end() || !(it->second == t.from)) {
        return Status::FailedPrecondition(
            "spec: ticket transfer infeasible");
      }
      it->second = t.to;
    }
  }
  return Status::OK();
}

std::vector<std::pair<PartyId, PartyId>> DealSpec::Arcs() const {
  std::set<std::pair<PartyId, PartyId>> arcs;
  for (const TransferStep& t : transfers) arcs.insert({t.from, t.to});
  return {arcs.begin(), arcs.end()};
}

bool DealSpec::IsWellFormed() const {
  // Strong connectivity over all parties (Tarjan would do; with the small
  // party counts of deals, double DFS reachability is clearer).
  if (parties.empty()) return false;
  std::map<PartyId, std::vector<PartyId>> fwd, rev;
  for (PartyId p : parties) {
    fwd[p];
    rev[p];
  }
  for (const auto& [from, to] : Arcs()) {
    fwd[from].push_back(to);
    rev[to].push_back(from);
  }
  auto reaches_all = [&](const std::map<PartyId, std::vector<PartyId>>& g) {
    std::set<PartyId> visited;
    std::vector<PartyId> stack{parties[0]};
    visited.insert(parties[0]);
    while (!stack.empty()) {
      PartyId cur = stack.back();
      stack.pop_back();
      for (PartyId next : g.at(cur)) {
        if (visited.insert(next).second) stack.push_back(next);
      }
    }
    return visited.size() == parties.size();
  };
  return reaches_all(fwd) && reaches_all(rev);
}

std::vector<AssetOutcome> DealSpec::ExpectedOutcomes() const {
  std::vector<AssetOutcome> state(assets.size());
  for (const EscrowStep& e : escrows) {
    AssetOutcome& s = state[e.asset];
    if (assets[e.asset].kind == AssetKind::kFungible) {
      s.fungible_commit[e.party] += e.value;
      s.fungible_deposited[e.party] += e.value;
    } else {
      s.nft_commit[e.value] = e.party;
      s.nft_deposited[e.value] = e.party;
    }
  }
  for (const TransferStep& t : transfers) {
    AssetOutcome& s = state[t.asset];
    if (assets[t.asset].kind == AssetKind::kFungible) {
      s.fungible_commit[t.from] -= t.value;
      s.fungible_commit[t.to] += t.value;
    } else {
      s.nft_commit[t.value] = t.to;
    }
  }
  return state;
}

std::vector<DealSpec::Expectation> DealSpec::ExpectationsOf(PartyId p) const {
  std::vector<Expectation> out(assets.size());
  std::vector<AssetOutcome> outcomes = ExpectedOutcomes();
  for (size_t a = 0; a < assets.size(); ++a) {
    if (assets[a].kind == AssetKind::kFungible) {
      auto it = outcomes[a].fungible_commit.find(p);
      out[a].fungible_amount =
          it == outcomes[a].fungible_commit.end() ? 0 : it->second;
    } else {
      for (const auto& [ticket, owner] : outcomes[a].nft_commit) {
        if (owner == p) out[a].tickets.insert(ticket);
      }
    }
  }
  return out;
}

bool DealSpec::Deposits(PartyId p, uint32_t asset) const {
  for (const EscrowStep& e : escrows) {
    if (e.asset == asset && e.party == p) return true;
  }
  return false;
}

std::set<uint32_t> DealSpec::IncomingAssetsOf(PartyId p) const {
  std::set<uint32_t> out;
  for (const TransferStep& t : transfers) {
    if (t.to == p) out.insert(t.asset);
  }
  return out;
}

std::set<uint32_t> DealSpec::OutgoingAssetsOf(PartyId p) const {
  std::set<uint32_t> out;
  for (const TransferStep& t : transfers) {
    if (t.from == p) out.insert(t.asset);
  }
  for (const EscrowStep& e : escrows) {
    if (e.party == p) out.insert(e.asset);
  }
  return out;
}

}  // namespace xdeal
