// DealSpec: the specification of a cross-chain deal (paper §2).
//
// A deal is "a matrix where the entry at row i and column j shows the assets
// to be transferred from party i to party j". Executable form: the parties,
// the assets involved (each living on some chain), the escrow deposits, and
// the ordered *tentative transfer* steps that realize the matrix (possibly
// multi-hop: Bob -> Alice -> Carol).
//
// Well-formedness (§5.1): the deal digraph — vertices = parties, arcs =
// transfers — must be strongly connected, else the deal has free riders and
// compliant parties have no incentive to execute it.

#ifndef XDEAL_CORE_DEAL_SPEC_H_
#define XDEAL_CORE_DEAL_SPEC_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "contracts/deal_info.h"
#include "contracts/escrow_core.h"

namespace xdeal {

/// An asset class participating in a deal: a token contract on a chain.
struct AssetRef {
  ChainId chain;
  ContractId token;
  AssetKind kind = AssetKind::kFungible;
  std::string label;  // "coins", "tickets" — for reports
};

/// One escrow deposit: `party` places `value` (amount, or a ticket id for
/// NFTs) of asset `asset` into escrow.
struct EscrowStep {
  uint32_t asset = 0;
  PartyId party;
  uint64_t value = 0;
};

/// One tentative transfer: `from` moves `value` (amount or ticket id) of
/// asset `asset` to `to`, in commit-ownership.
struct TransferStep {
  uint32_t asset = 0;
  PartyId from;
  PartyId to;
  uint64_t value = 0;
};

/// The commit-time outcome of one asset, derived by replaying the spec.
struct AssetOutcome {
  // Fungible: final commit-ownership amounts, and deposits per party.
  std::map<PartyId, uint64_t> fungible_commit;
  std::map<PartyId, uint64_t> fungible_deposited;
  // NFT: final commit owner per ticket, and depositor per ticket.
  std::map<uint64_t, PartyId> nft_commit;
  std::map<uint64_t, PartyId> nft_deposited;
};

class DealSpec {
 public:
  DealId deal_id;
  std::vector<PartyId> parties;
  std::vector<AssetRef> assets;
  std::vector<EscrowStep> escrows;
  std::vector<TransferStep> transfers;

  size_t NumParties() const { return parties.size(); }
  size_t NumAssets() const { return assets.size(); }
  size_t NumTransfers() const { return transfers.size(); }

  bool HasParty(PartyId p) const;

  /// Structural validity: parties distinct, asset indices in range, all
  /// escrowers/transfer endpoints are parties, and the transfer sequence is
  /// feasible (each step's sender holds the value in commit-ownership when
  /// the step runs). Distinct from well-formedness.
  Status Validate() const;

  /// The deal digraph's arcs (from, to), deduplicated.
  std::vector<std::pair<PartyId, PartyId>> Arcs() const;

  /// §5.1: the digraph over *all* parties is strongly connected.
  bool IsWellFormed() const;

  /// Replays escrows + transfers to produce the expected commit outcome of
  /// each asset. Requires Validate().ok().
  std::vector<AssetOutcome> ExpectedOutcomes() const;

  /// Parties from which `p` expects incoming value per asset (for the
  /// validation phase): asset index -> expected commit ownership of p.
  /// Fungible: amount. NFT: set of ticket ids.
  struct Expectation {
    uint64_t fungible_amount = 0;
    std::set<uint64_t> tickets;
  };
  std::vector<Expectation> ExpectationsOf(PartyId p) const;

  /// True if `p` deposits into asset `a` under this spec.
  bool Deposits(PartyId p, uint32_t asset) const;

  /// Chains on which `p` has incoming assets (where it is motivated to
  /// vote) and outgoing assets (which it monitors to forward votes), §5.1.
  std::set<uint32_t> IncomingAssetsOf(PartyId p) const;
  std::set<uint32_t> OutgoingAssetsOf(PartyId p) const;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_DEAL_SPEC_H_
