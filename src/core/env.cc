#include "core/env.h"

#include <cassert>
#include <utility>

namespace xdeal {

Tick SuggestDelta(const EnvConfig& config) {
  // One protocol hop costs at most: observe (net) + submit (net) + inclusion
  // (block interval). Δ doubles that for headroom.
  return 2 * (2 * config.net_max_delay + config.block_interval);
}

namespace {
std::unique_ptr<NetworkModel> MakeNetwork(EnvConfig* config) {
  if (config->network) return std::move(config->network);
  return std::make_unique<SynchronousNetwork>(config->net_min_delay,
                                              config->net_max_delay);
}
}  // namespace

DealEnv::DealEnv(EnvConfig config)
    : config_block_interval_(config.block_interval),
      config_net_max_delay_(config.net_max_delay),
      world_(config.seed, MakeNetwork(&config)) {}

PartyId DealEnv::AddParty(const std::string& name) {
  return world_.RegisterParty(name);
}

ChainId DealEnv::AddChain(const std::string& name) {
  return world_.CreateChain(name, config_block_interval_)->id();
}

uint32_t DealEnv::AddFungibleAsset(DealSpec* spec, ChainId chain,
                                   const std::string& label, PartyId issuer) {
  Blockchain* c = world_.chain(chain);
  assert(c != nullptr);
  ContractId token = c->Deploy(std::make_unique<FungibleToken>(label, issuer));
  spec->assets.push_back(AssetRef{chain, token, AssetKind::kFungible, label});
  return static_cast<uint32_t>(spec->assets.size() - 1);
}

uint32_t DealEnv::AddNftAsset(DealSpec* spec, ChainId chain,
                              const std::string& label, PartyId issuer) {
  Blockchain* c = world_.chain(chain);
  assert(c != nullptr);
  ContractId token = c->Deploy(std::make_unique<TicketRegistry>(issuer));
  spec->assets.push_back(AssetRef{chain, token, AssetKind::kNft, label});
  return static_cast<uint32_t>(spec->assets.size() - 1);
}

void DealEnv::Mint(const DealSpec& spec, uint32_t asset, PartyId party,
                   uint64_t amount) {
  FungibleToken* token = TokenOf(spec, asset);
  assert(token != nullptr);
  Status st = token->Mint(Holder::Party(party), amount);
  assert(st.ok());
  (void)st;
}

uint64_t DealEnv::MintTicket(const DealSpec& spec, uint32_t asset,
                             PartyId party, const std::string& event,
                             const std::string& seat, uint32_t quality) {
  TicketRegistry* registry = RegistryOf(spec, asset);
  assert(registry != nullptr);
  return registry->Mint(Holder::Party(party), TicketInfo{event, seat, quality});
}

FungibleToken* DealEnv::TokenOf(const DealSpec& spec, uint32_t asset) {
  return world_.chain(spec.assets[asset].chain)
      ->As<FungibleToken>(spec.assets[asset].token);
}

TicketRegistry* DealEnv::RegistryOf(const DealSpec& spec, uint32_t asset) {
  return world_.chain(spec.assets[asset].chain)
      ->As<TicketRegistry>(spec.assets[asset].token);
}

}  // namespace xdeal
