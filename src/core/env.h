// DealEnv: scenario-construction helper.
//
// Wraps a World plus the bookkeeping needed to stand up a deal: create
// chains, register parties, deploy token contracts, mint initial holdings,
// and assemble a DealSpec. Used by examples, tests, and benchmarks so that
// scenario code stays at the level of the paper's prose ("Bob owns two
// tickets on the ticket chain; Carol owns 101 coins on the coin chain").

#ifndef XDEAL_CORE_ENV_H_
#define XDEAL_CORE_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "chain/world.h"
#include "core/deal_spec.h"

namespace xdeal {

struct EnvConfig {
  uint64_t seed = 1;
  Tick block_interval = 10;
  Tick net_min_delay = 1;
  Tick net_max_delay = 10;
  /// Custom network model (overrides the synchronous default if set).
  std::unique_ptr<NetworkModel> network;
};

/// A Δ consistent with the environment's worst-case submit + inclusion +
/// observation latency, with 2x headroom (see §5: "∆ should be large enough
/// to render irrelevant any imprecision in blockchain timekeeping").
Tick SuggestDelta(const EnvConfig& config);

class DealEnv {
 public:
  explicit DealEnv(EnvConfig config);

  World& world() { return world_; }

  PartyId AddParty(const std::string& name);

  /// Creates a chain; returns its id.
  ChainId AddChain(const std::string& name);

  /// Deploys a fungible token on `chain` and registers it as the next asset
  /// of `spec`; returns the asset index.
  uint32_t AddFungibleAsset(DealSpec* spec, ChainId chain,
                            const std::string& label, PartyId issuer);

  /// Deploys an NFT registry on `chain`; returns the asset index.
  uint32_t AddNftAsset(DealSpec* spec, ChainId chain, const std::string& label,
                       PartyId issuer);

  /// Mints `amount` of fungible asset `asset` to `party`.
  void Mint(const DealSpec& spec, uint32_t asset, PartyId party,
            uint64_t amount);

  /// Mints an NFT ticket; returns the ticket id.
  uint64_t MintTicket(const DealSpec& spec, uint32_t asset, PartyId party,
                      const std::string& event, const std::string& seat,
                      uint32_t quality);

  FungibleToken* TokenOf(const DealSpec& spec, uint32_t asset);
  TicketRegistry* RegistryOf(const DealSpec& spec, uint32_t asset);

  Tick block_interval() const { return config_block_interval_; }
  Tick net_max_delay() const { return config_net_max_delay_; }

 private:
  Tick config_block_interval_;
  Tick config_net_max_delay_;
  World world_;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_ENV_H_
