#include "core/explore.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "cbc/cbc_service.h"
#include "core/checker.h"
#include "core/deal_gen.h"
#include "core/env.h"
#include "sim/network.h"
#include "sim/worker_pool.h"
#include "util/fingerprint.h"

namespace xdeal {

bool DependentEvents(const EventLabel& a, const EventLabel& b) {
  if (a.kind == EventKind::kInternal || b.kind == EventKind::kInternal) {
    return true;
  }
  if (a.kind == EventKind::kBlockProduction ||
      b.kind == EventKind::kBlockProduction) {
    const EventLabel& block = a.kind == EventKind::kBlockProduction ? a : b;
    const EventLabel& other = a.kind == EventKind::kBlockProduction ? b : a;
    if (other.kind == EventKind::kBlockProduction ||
        other.kind == EventKind::kTxArrival) {
      // Same chain: both touch that chain's mempool/ledger.
      return block.chain == other.chain;
    }
    // Block production vs a party event: parties read chain state (escrow
    // status, balances) from their hooks, so order is observable.
    return true;
  }
  if (a.kind == EventKind::kTxArrival && b.kind == EventKind::kTxArrival) {
    // Mempool append order is block content order.
    return a.chain == b.chain;
  }
  const bool a_party =
      a.kind == EventKind::kObservation || a.kind == EventKind::kTimer;
  const bool b_party =
      b.kind == EventKind::kObservation || b.kind == EventKind::kTimer;
  if (a_party && b_party) {
    // Party events mutate only that party's local state (and schedule
    // future submissions, which land in per-sender channels).
    return a.actor == b.actor;
  }
  // TxArrival vs a party event: a mempool append is invisible to parties
  // until the block is produced.
  return false;
}

FaultInjectionPolicy::FaultInjectionPolicy(std::vector<DropRule> rules) {
  states_.reserve(rules.size());
  for (DropRule& r : rules) states_.push_back(RuleState{r, 0, 0});
}

size_t FaultInjectionPolicy::Choose(
    const std::vector<EnabledEvent>& /*enabled*/) {
  return 0;  // default FIFO order; the faults live in ShouldDrop
}

bool FaultInjectionPolicy::ShouldDrop(const EnabledEvent& chosen) {
  for (RuleState& s : states_) {
    const DropRule& r = s.rule;
    if (chosen.label.kind != r.kind) continue;
    if (r.chain != EventLabel::kNoId && chosen.label.chain != r.chain) {
      continue;
    }
    if (r.actor != EventLabel::kNoId && chosen.label.actor != r.actor) {
      continue;
    }
    ++s.seen;
    if (s.seen > r.skip_first && s.drops < r.max_drops) {
      ++s.drops;
      ++dropped_;
      return true;
    }
  }
  return false;
}

namespace {

/// Everything one execution of a cell needs kept alive, in construction
/// order (the World must outlive the runtime and checker).
struct RunInstance {
  std::unique_ptr<DealEnv> env;
  std::unique_ptr<CbcService> service;
  std::unique_ptr<ProtocolDriver> driver;
  std::unique_ptr<SingleDeviantFactory> factory;
  std::unique_ptr<DealRuntime> runtime;
  std::unique_ptr<DealChecker> checker;
  DealSpec spec;
  uint32_t deviant = 0;   // resolved deviant party id (if adversarial)
  bool adversarial = false;
  bool deploy_ok = false;
};

uint64_t CountReceipts(const World& world) {
  uint64_t n = 0;
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    n += world.chain(ChainId{c})->receipts().size();
  }
  return n;
}

/// Builds a fresh, un-run instance of the cell's deal: fixed-delay network
/// (optionally DoS-wrapped), generated spec, driver, deployed runtime, and
/// an armed checker. Identical across calls — execution is then a pure
/// function of the installed ChoicePolicy's decisions.
RunInstance BuildRun(const ExploreCell& cell) {
  RunInstance run;

  std::unique_ptr<NetworkModel> net = std::make_unique<SynchronousNetwork>(
      cell.fixed_delay, cell.fixed_delay);
  TargetedDosNetwork* dos = nullptr;
  if (cell.dos_window) {
    // Same window derivation as ScenarioSweep's kDosWindow: open just after
    // votes are cast at t0, close past every forwarding deadline. t0 depends
    // only on the transfer count, learned from a scratch generation (the
    // generator is deterministic in its params).
    size_t steps = 0;
    {
      EnvConfig scratch_config;
      scratch_config.seed = cell.gen.seed;
      DealEnv scratch(std::move(scratch_config));
      steps = GenerateRandomDeal(&scratch, cell.gen).NumTransfers();
    }
    Tick t0 = cell.timings.ValidationTime(steps);
    Tick attack_start = t0 + 10;
    Tick attack_end = t0 +
                      static_cast<Tick>(cell.gen.n_parties + 2) *
                          cell.timings.delta +
                      1000;
    auto dos_net = std::make_unique<TargetedDosNetwork>(
        std::move(net), attack_start, attack_end);
    dos = dos_net.get();
    net = std::move(dos_net);
  }

  EnvConfig env_config;
  env_config.seed = cell.gen.seed;
  env_config.block_interval = cell.block_interval;
  env_config.network = std::move(net);
  run.env = std::make_unique<DealEnv>(std::move(env_config));
  run.spec = GenerateRandomDeal(run.env.get(), cell.gen);

  run.adversarial = cell.protocol == Protocol::kTimelock
                        ? static_cast<bool>(cell.timelock_adversary)
                        : static_cast<bool>(cell.cbc_adversary);
  run.deviant =
      run.spec.parties[cell.deviant_position % run.spec.parties.size()].v;

  if (dos != nullptr) {
    uint32_t beneficiary =
        run.spec
            .parties[cell.dos_beneficiary_position % run.spec.parties.size()]
            .v;
    for (PartyId p : run.spec.parties) {
      if (p.v != beneficiary) {
        dos->AddTarget(run.env->world().PartyEndpoint(p));
      }
    }
  }

  if (cell.protocol == Protocol::kCbc) {
    CbcService::Options service_options;
    service_options.validator_seed =
        "explore-" + std::to_string(cell.gen.seed);
    run.service =
        std::make_unique<CbcService>(&run.env->world(), service_options);
    run.driver = std::make_unique<CbcDriver>(run.service.get());
  } else {
    run.driver = std::make_unique<TimelockDriver>();
  }

  run.factory = std::make_unique<SingleDeviantFactory>(
      run.adversarial ? run.deviant : 0xFFFFFFFFu, cell.timelock_adversary,
      cell.cbc_adversary);
  run.runtime = run.driver->CreateDeal(&run.env->world(), run.spec,
                                       cell.timings, run.factory.get());
  run.deploy_ok = run.runtime->Deploy().ok();
  if (run.deploy_ok) {
    run.checker = std::make_unique<DealChecker>(
        &run.env->world(), run.spec, run.runtime->escrow_contracts());
    run.checker->CaptureInitial();
  }
  return run;
}

/// Failed properties -> the run's violation string (empty = clean).
void FillViolation(ExploreRunResult* out) {
  std::string v;
  if (!out->safety_ok) v += "property1-safety ";
  if (!out->weak_liveness_ok) v += "property2-weak-liveness ";
  if (!out->strong_liveness_ok) v += "property3-strong-liveness ";
  if (!out->atomic) v += "atomicity ";
  if (!v.empty()) {
    v.pop_back();
    out->violation = v;
  }
}

/// Validates a drained run against Properties 1-3 (mirrors ScenarioSweep's
/// per-scenario validation) and fingerprints the outcome.
ExploreRunResult ValidateRun(const ExploreCell& cell, RunInstance* run) {
  ExploreRunResult out;
  if (!run->deploy_ok) {
    out.violation = std::string(ToString(cell.protocol)) + "-start-failed";
    return out;
  }
  out.started = true;
  DealResult result = run->runtime->Collect();
  out.committed = result.committed;
  out.aborted = result.aborted;
  out.mixed = result.mixed;
  out.all_settled = result.all_settled;
  out.atomic = result.atomic;
  if (cell.protocol == Protocol::kCbc) {
    out.atomic = out.atomic && run->checker->Atomic();
  }
  out.settle_time = result.settle_time;
  out.total_gas = run->env->world().TotalGas();
  out.messages = CountReceipts(run->env->world());

  std::vector<PartyId> compliant;
  for (PartyId p : run->spec.parties) {
    if (!run->adversarial || p.v != run->deviant) compliant.push_back(p);
  }
  out.safety_ok = run->checker->SafetyHolds(compliant);
  out.weak_liveness_ok = run->checker->WeakLivenessHolds(compliant);
  if (!run->adversarial && !cell.dos_window) {
    out.strong_liveness_ok =
        cell.protocol == Protocol::kCbc
            ? out.committed && run->checker->StrongLivenessHolds()
            : run->checker->StrongLivenessHolds();
  }
  FillViolation(&out);

  uint64_t fp = 0x9E3779B97F4A7C15ULL;
  fp = MixFingerprint(fp, static_cast<uint64_t>(out.started) |
                              static_cast<uint64_t>(out.committed) << 1 |
                              static_cast<uint64_t>(out.aborted) << 2 |
                              static_cast<uint64_t>(out.mixed) << 3 |
                              static_cast<uint64_t>(out.all_settled) << 4 |
                              static_cast<uint64_t>(out.atomic) << 5 |
                              static_cast<uint64_t>(out.safety_ok) << 6 |
                              static_cast<uint64_t>(out.weak_liveness_ok)
                                  << 7 |
                              static_cast<uint64_t>(out.strong_liveness_ok)
                                  << 8);
  fp = MixFingerprint(fp, out.total_gas);
  fp = MixFingerprint(fp, out.messages);
  fp = MixFingerprint(fp, out.settle_time);
  fp = MixFingerprint(fp, FingerprintString(out.violation));
  out.fingerprint = fp;
  return out;
}

/// Executes one run to completion (or sleep-block) under `policy`.
/// Returns false if the policy aborted the run.
template <typename AbortFn>
bool DrainRun(RunInstance* run, ChoicePolicy* policy, AbortFn aborted) {
  Scheduler& sched = run->env->world().scheduler();
  sched.SetChoicePolicy(policy);
  while (sched.Step()) {
    if (aborted()) {
      sched.SetChoicePolicy(nullptr);
      return false;
    }
  }
  sched.SetChoicePolicy(nullptr);
  return true;
}

/// One choose point on the DFS stack: the enabled snapshot, the sleep set
/// on entry, which enabled indices are explorable (not asleep), and which
/// branch is currently being explored.
struct Node {
  std::vector<EnabledEvent> enabled;
  std::vector<EnabledEvent> sleep_in;
  std::vector<uint32_t> explorable;  // indices into `enabled`
  size_t pos = 0;                    // current branch: explorable[pos]
};

bool SleepContains(const std::vector<EnabledEvent>& sleep, uint64_t seq) {
  for (const EnabledEvent& s : sleep) {
    if (s.seq == seq) return true;
  }
  return false;
}

/// The sleep-set DFS driver, usable three ways: as a probe (find the first
/// real branch point and abort), as a frozen-root worker (explore exactly
/// one root branch), and as a plain full-tree explorer (frozen_depth < 0).
class ExplorerPolicy : public ChoicePolicy {
 public:
  /// `stack` persists across the runs of one DFS; `root_branch` >= 0 pins
  /// the first multi-way choose point to that branch index.
  ExplorerPolicy(std::vector<Node>* stack, int64_t root_branch)
      : stack_(stack), root_branch_(root_branch) {}

  /// Resets per-run state; call before each execution.
  void BeginRun() {
    depth_ = 0;
    sleep_.clear();
    aborted_ = false;
  }

  bool aborted() const { return aborted_; }
  /// Depth of the pinned root node (-1 until a branch point was seen).
  int64_t frozen_depth() const { return frozen_depth_; }
  uint64_t max_frontier() const { return max_frontier_; }
  uint64_t max_depth() const { return max_depth_; }

  size_t Choose(const std::vector<EnabledEvent>& enabled) override {
    if (aborted_) return 0;  // one stray call while the executor notices
    size_t d = depth_++;
    max_frontier_ = std::max<uint64_t>(max_frontier_, enabled.size());
    max_depth_ = std::max<uint64_t>(max_depth_, depth_);
    if (d >= stack_->size()) {
      Node node;
      node.enabled = enabled;
      node.sleep_in = sleep_;
      for (uint32_t i = 0; i < enabled.size(); ++i) {
        if (!SleepContains(sleep_, enabled[i].seq)) {
          node.explorable.push_back(i);
        }
      }
      if (node.explorable.empty()) {
        // Sleep-blocked: every enabled event commutes into an already
        // explored subtree. This whole path is redundant — abort it.
        aborted_ = true;
        return 0;
      }
      if (root_branch_ >= 0 && frozen_depth_ < 0 &&
          node.explorable.size() > 1) {
        // First real branch point: pin this worker to its assigned branch.
        node.pos = static_cast<size_t>(root_branch_);
        frozen_depth_ = static_cast<int64_t>(d);
      }
      stack_->push_back(std::move(node));
    }
    Node& node = (*stack_)[d];
    assert(node.enabled.size() == enabled.size());
    size_t choice = node.explorable[node.pos];
    const EventLabel& chosen = enabled[choice].label;
    // Sleep propagation (Godefroid): keep slept events independent of the
    // chosen one, and put earlier-explored siblings to sleep for the rest
    // of this path.
    std::vector<EnabledEvent> next_sleep;
    for (const EnabledEvent& s : node.sleep_in) {
      if (!DependentEvents(s.label, chosen)) next_sleep.push_back(s);
    }
    for (size_t j = 0; j < node.pos; ++j) {
      const EnabledEvent& sib = node.enabled[node.explorable[j]];
      if (!DependentEvents(sib.label, chosen)) next_sleep.push_back(sib);
    }
    sleep_ = std::move(next_sleep);
    return choice;
  }

 private:
  std::vector<Node>* stack_;
  int64_t root_branch_;       // -1 = explore the whole tree
  int64_t frozen_depth_ = -1;
  size_t depth_ = 0;
  std::vector<EnabledEvent> sleep_;
  bool aborted_ = false;
  uint64_t max_frontier_ = 0;
  uint64_t max_depth_ = 0;
};

/// Finds the width of the first multi-way choose point (0 if the cell is
/// branch-free and the default order is the only order).
size_t ProbeRootWidth(const ExploreCell& cell) {
  class Probe : public ChoicePolicy {
   public:
    size_t Choose(const std::vector<EnabledEvent>& enabled) override {
      if (enabled.size() > 1) {
        width = enabled.size();
        done = true;
      }
      return 0;
    }
    size_t width = 0;
    bool done = false;
  };
  RunInstance run = BuildRun(cell);
  if (!run.deploy_ok) return 0;
  Probe probe;
  DrainRun(&run, &probe, [&probe] { return probe.done; });
  return probe.width;
}

/// Per-root-branch partial report, folded in branch order by ExploreDeal.
struct BranchResult {
  ExploreStats stats;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t mixed = 0;
  uint64_t violation_count = 0;
  std::vector<ExploreViolation> violations;
  uint64_t fingerprint = 0x243F6A8885A308D3ULL;
};

ChoiceTrace ExtractTrace(const std::vector<Node>& stack) {
  ChoiceTrace trace;
  trace.choices.reserve(stack.size());
  for (const Node& n : stack) {
    trace.choices.push_back(n.explorable[n.pos]);
  }
  return trace;
}

/// Exhausts the subtree rooted at `root_branch` of the first branch point
/// (or the whole tree if root_branch < 0) via stateless re-execution.
BranchResult ExploreBranch(const ExploreCell& cell,
                           const ExploreOptions& options,
                           int64_t root_branch) {
  BranchResult res;
  std::vector<Node> stack;
  ExplorerPolicy policy(&stack, root_branch);
  while (true) {
    if (res.stats.executions >= options.max_runs_per_branch) {
      res.stats.complete = false;
      break;
    }
    RunInstance run = BuildRun(cell);
    policy.BeginRun();
    bool drained =
        DrainRun(&run, &policy, [&policy] { return policy.aborted(); });
    ++res.stats.executions;
    if (!drained) {
      ++res.stats.sleep_blocked;
    } else {
      ++res.stats.orders;
      ExploreRunResult r = ValidateRun(cell, &run);
      if (r.committed) ++res.committed;
      if (r.aborted) ++res.aborted;
      if (r.mixed) ++res.mixed;
      if (!r.violation.empty()) {
        ++res.violation_count;
        if (res.violations.size() < options.max_violations) {
          res.violations.push_back(ExploreViolation{
              r.violation, ExtractTrace(stack), res.stats.orders - 1});
        }
      }
      res.fingerprint = MixFingerprint(res.fingerprint, r.fingerprint);
    }
    // Backtrack: advance the deepest node with an unexplored branch, never
    // touching the pinned root (that branch belongs to another worker).
    int64_t advance = -1;
    for (int64_t i = static_cast<int64_t>(stack.size()) - 1;
         i > policy.frozen_depth(); --i) {
      const Node& n = stack[static_cast<size_t>(i)];
      if (n.pos + 1 < n.explorable.size()) {
        advance = i;
        break;
      }
    }
    if (advance < 0) break;  // subtree exhausted
    stack.resize(static_cast<size_t>(advance) + 1);
    ++stack[static_cast<size_t>(advance)].pos;
  }
  res.stats.max_frontier = policy.max_frontier();
  res.stats.max_depth = policy.max_depth();
  return res;
}

}  // namespace

ExploreReport ExploreDeal(const ExploreCell& cell,
                          const ExploreOptions& options) {
  ExploreReport report;
  size_t width = ProbeRootWidth(cell);
  report.stats.root_branches = width;

  std::vector<BranchResult> branches;
  if (width == 0) {
    // Branch-free cell: the default order is the one and only order.
    branches.push_back(ExploreBranch(cell, options, -1));
  } else {
    branches.resize(width);
    WorkerPool pool(options.num_threads);
    pool.ParallelFor(width, [&](size_t b) {
      branches[b] = ExploreBranch(cell, options, static_cast<int64_t>(b));
    });
  }

  // Fold in branch order: bit-identical across thread counts.
  uint64_t fp = 0x243F6A8885A308D3ULL;
  for (const BranchResult& b : branches) {
    report.stats.executions += b.stats.executions;
    report.stats.orders += b.stats.orders;
    report.stats.sleep_blocked += b.stats.sleep_blocked;
    report.stats.max_frontier =
        std::max(report.stats.max_frontier, b.stats.max_frontier);
    report.stats.max_depth =
        std::max(report.stats.max_depth, b.stats.max_depth);
    report.stats.complete = report.stats.complete && b.stats.complete;
    report.committed += b.committed;
    report.aborted += b.aborted;
    report.mixed += b.mixed;
    report.violation_count += b.violation_count;
    for (const ExploreViolation& v : b.violations) {
      if (report.violations.size() < options.max_violations) {
        report.violations.push_back(v);
      }
    }
    fp = MixFingerprint(fp, b.fingerprint);
  }
  report.fingerprint = fp;
  return report;
}

ExploreRunResult RunCellWithPolicy(const ExploreCell& cell,
                                   ChoicePolicy* policy) {
  RunInstance run = BuildRun(cell);
  if (!run.deploy_ok) {
    ExploreRunResult out;
    out.violation = std::string(ToString(cell.protocol)) + "-start-failed";
    return out;
  }
  DrainRun(&run, policy, [] { return false; });
  return ValidateRun(cell, &run);
}

ExploreRunResult ReplayTrace(const ExploreCell& cell,
                             const ChoiceTrace& trace) {
  ScriptedChoicePolicy policy(trace.choices);
  return RunCellWithPolicy(cell, &policy);
}

std::string ExploreReport::Summary() const {
  char line[256];
  std::snprintf(line, sizeof(line),
                "orders=%llu blocked=%llu executions=%llu roots=%llu "
                "committed=%llu aborted=%llu mixed=%llu violations=%llu "
                "complete=%d fingerprint=%016llx",
                static_cast<unsigned long long>(stats.orders),
                static_cast<unsigned long long>(stats.sleep_blocked),
                static_cast<unsigned long long>(stats.executions),
                static_cast<unsigned long long>(stats.root_branches),
                static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted),
                static_cast<unsigned long long>(mixed),
                static_cast<unsigned long long>(violation_count),
                stats.complete ? 1 : 0,
                static_cast<unsigned long long>(fingerprint));
  return std::string(line);
}

}  // namespace xdeal
