// Exhaustive interleaving exploration (stateless model checking with
// dynamic partial-order reduction) over ProtocolDriver deals.
//
// ScenarioSweep samples delivery orders by seed; this subsystem enumerates
// them. A deal cell is executed under a fixed-delay network (the only
// execution-phase RNG draw in the simulator is the network delay sample, and
// SynchronousNetwork with min == max draws nothing), so a run's outcome is a
// pure function of the choice sequence fed to the Scheduler's choose-point
// seam (sim/scheduler.h). The explorer drives that seam with a sleep-set
// DFS: at every same-tick choose point it either replays a recorded branch
// or opens a new one, and events proven independent (commuting — see
// DependentEvents) of an already-explored sibling are put to sleep, so
// exactly one execution per Mazurkiewicz trace class reaches a terminal
// state. Every terminal state is validated with DealChecker against the
// paper's Properties 1-3; a violation carries the exact ChoiceTrace that
// reproduces it (the analog of a sweep seed, but bit-exact by construction).
//
// Exploration is stateless: there is no World snapshot/restore, each path is
// a full re-execution from deal construction. Parallelism is per root
// branch: the first choose point with more than one enabled event splits the
// search tree into independent subtrees, one WorkerPool job each, and the
// per-branch results are folded in branch order — reports are bit-identical
// across thread counts. Because the reduced order/prune counts are
// deterministic, bench_explore exact-gates them in BENCH_baseline.json.

#ifndef XDEAL_CORE_EXPLORE_H_
#define XDEAL_CORE_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/deal_gen.h"
#include "core/protocol_driver.h"
#include "sim/scheduler.h"
#include "util/det.h"

namespace xdeal {

class CbcParty;
class TimelockParty;

/// Whether two labeled events commute: executing them in either order from
/// the same state yields the same state. Conservative: any kInternal label
/// conflicts with everything; block production conflicts with same-chain
/// mempool traffic and with every party event (parties read chain state);
/// same-chain tx arrivals conflict (mempool order is block content order);
/// party-local events conflict only on the same actor.
bool DependentEvents(const EventLabel& a, const EventLabel& b);

/// One fully-determined run: the index chosen at every scheduler choose
/// point, in call order. Feeding it to a ScriptedChoicePolicy over the same
/// ExploreCell replays the execution bit-for-bit.
struct ChoiceTrace {
  std::vector<uint32_t> choices;
};

/// One deal configuration to explore. The network is always fixed-delay
/// (every message takes exactly `fixed_delay` ticks) so that execution is
/// RNG-free; `gen.seed` still controls the pre-execution deal generation.
struct ExploreCell {
  /// Commit protocol under test (kTimelock or kCbc; no HTLC driver).
  Protocol protocol = Protocol::kTimelock;
  /// Deal shape + generation seed (see core/deal_gen.h).
  GenParams gen;
  /// Phase schedule; callers usually start from DealTimings::DefaultsFor.
  DealTimings timings;
  /// Every message's one-way delay, exactly.
  Tick fixed_delay = 3;
  /// Block production period of every chain.
  Tick block_interval = 10;
  /// Position (mod n_parties) of the deviating party; ignored when the
  /// matching adversary maker below is null.
  uint32_t deviant_position = 0;
  /// Deviating strategy for timelock cells (null = all compliant).
  std::function<std::unique_ptr<TimelockParty>()> timelock_adversary;
  /// Deviating strategy for CBC cells (null = all compliant).
  std::function<std::unique_ptr<CbcParty>()> cbc_adversary;
  /// If true, wrap the network in the §5.3 targeted-DoS window: every party
  /// except the beneficiary is cut off right after votes are cast (the
  /// window is derived from `timings`, as in ScenarioSweep's kDosWindow).
  bool dos_window = false;
  /// Position (mod n_parties) of the untargeted beneficiary.
  uint32_t dos_beneficiary_position = 0;
};

/// Exploration knobs.
struct ExploreOptions {
  /// Worker threads for per-root-branch parallelism (0 = hardware).
  size_t num_threads = 1;
  /// Safety valve: max executions per root branch before giving up (the
  /// report's `complete` flag records whether any branch was truncated).
  uint64_t max_runs_per_branch = 250000;
  /// Keep at most this many violation reproducers (all are still counted).
  size_t max_violations = 16;
};

/// Outcome + property verdicts of one terminal execution (the per-run
/// analog of ScenarioOutcome, minus the sweep bookkeeping).
struct ExploreRunResult {
  bool started = false;    // Deploy() succeeded
  bool committed = false;  // every escrow released
  bool aborted = false;    // nothing released
  bool mixed = false;      // some released, some refunded
  bool all_settled = false;
  bool atomic = true;
  bool safety_ok = true;         // Property 1 over compliant parties
  bool weak_liveness_ok = true;  // Property 2 over compliant parties
  bool strong_liveness_ok = true;  // Property 3 (honest cells only)
  uint64_t total_gas = 0;
  uint64_t messages = 0;  // receipts across all chains
  Tick settle_time = 0;
  std::string violation;  // empty = conformant
  /// Order-sensitive hash of the fields above; equal values mean
  /// bit-identical runs (the replay-fidelity invariant).
  uint64_t fingerprint = 0;
};

/// A property violation found during exploration, with its reproducer.
struct ExploreViolation {
  /// Which failed properties (same encoding as SweepViolation::what).
  std::string what;
  /// Replay with ReplayTrace(cell, trace) to reproduce bit-for-bit.
  ChoiceTrace trace;
  /// 0-based index of the violating execution in exploration order.
  uint64_t execution_index = 0;
};

/// Deterministic exploration counters. `orders` is the DPOR-reduced number
/// of inequivalent interleavings — the quantity the bench exact-gates.
struct ExploreStats {
  uint64_t executions = 0;     // total runs, including sleep-blocked ones
  uint64_t orders = 0;         // runs that reached a terminal state
  uint64_t sleep_blocked = 0;  // runs pruned early (all enabled were asleep)
  uint64_t root_branches = 0;  // width of the first real choose point
  uint64_t max_frontier = 0;   // largest enabled set seen at a choose point
  uint64_t max_depth = 0;      // deepest choose-point stack
  bool complete = true;        // no branch hit max_runs_per_branch
};

/// The folded result of exploring one cell.
struct ExploreReport {
  ExploreStats stats;
  uint64_t committed = 0;  // terminal runs where the deal committed
  uint64_t aborted = 0;
  uint64_t mixed = 0;
  uint64_t violation_count = 0;  // terminal runs violating any property
  std::vector<ExploreViolation> violations;  // first max_violations of them
  /// Fold of every terminal run's fingerprint in exploration order;
  /// bit-identical across thread counts.
  uint64_t fingerprint = 0;

  /// One-line human-readable summary.
  std::string Summary() const;
};

/// Enumerates every inequivalent delivery order of `cell` and validates
/// each terminal state against Properties 1-3.
XDEAL_DETERMINISTIC
ExploreReport ExploreDeal(const ExploreCell& cell,
                          const ExploreOptions& options);

/// Re-executes `cell` under the recorded choice script and validates the
/// terminal state (the reproducer entry point for ExploreViolation traces).
XDEAL_DETERMINISTIC
ExploreRunResult ReplayTrace(const ExploreCell& cell,
                             const ChoiceTrace& trace);

/// Runs `cell` once under an externally supplied policy (e.g. a
/// FaultInjectionPolicy) and validates the terminal state. A null policy
/// runs the scheduler's built-in FIFO order.
ExploreRunResult RunCellWithPolicy(const ExploreCell& cell,
                                   ChoicePolicy* policy);

/// Matches scheduled events for targeted fault injection: kind plus
/// optional chain/actor constraints (EventLabel::kNoId = wildcard).
struct DropRule {
  EventKind kind = EventKind::kObservation;
  uint32_t chain = EventLabel::kNoId;  // kNoId matches any chain
  uint32_t actor = EventLabel::kNoId;  // kNoId matches any actor
  uint64_t skip_first = 0;  // let this many matches through, then drop
  uint64_t max_drops = ~static_cast<uint64_t>(0);
};

/// A deterministic message-loss adversary on the choose-point seam: follows
/// the default (FIFO) order but consumes, without executing, every event
/// matched by a DropRule. This reaches failure modes no seeded sweep can
/// (message loss is not in any network model's sample space).
class FaultInjectionPolicy : public ChoicePolicy {
 public:
  /// Drops events matching any of `rules`.
  explicit FaultInjectionPolicy(std::vector<DropRule> rules);

  size_t Choose(const std::vector<EnabledEvent>& enabled) override;
  bool ShouldDrop(const EnabledEvent& chosen) override;

  /// Total events dropped so far.
  uint64_t dropped() const { return dropped_; }

 private:
  struct RuleState {
    DropRule rule;
    uint64_t seen = 0;
    uint64_t drops = 0;
  };
  std::vector<RuleState> states_;
  uint64_t dropped_ = 0;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_EXPLORE_H_
