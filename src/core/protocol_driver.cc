#include "core/protocol_driver.h"

#include <utility>

#include "cbc/cbc_service.h"
#include "core/cbc_run.h"
#include "core/timelock_run.h"

namespace xdeal {

const char* ToString(Protocol p) {
  switch (p) {
    case Protocol::kTimelock: return "timelock";
    case Protocol::kCbc: return "cbc";
    case Protocol::kHtlc: return "htlc";
  }
  return "?";
}

DealTimings DealTimings::DefaultsFor(Protocol p) {
  DealTimings t;
  switch (p) {
    case Protocol::kTimelock:
      t.start_deal_time = 0;  // no startDeal phase
      t.escrow_time = 50;
      t.transfer_start = 150;
      break;
    case Protocol::kCbc:
    case Protocol::kHtlc:
      t.start_deal_time = 20;
      t.escrow_time = 80;
      t.transfer_start = 180;
      break;
  }
  return t;
}

DealTimings& DealTimings::ShiftBy(Tick offset) {
  setup_time += offset;
  start_deal_time += offset;
  escrow_time += offset;
  transfer_start += offset;
  return *this;
}

PartyFactory::~PartyFactory() = default;

std::unique_ptr<TimelockParty> PartyFactory::MakeTimelockParty(PartyId) {
  return nullptr;
}

std::unique_ptr<CbcParty> PartyFactory::MakeCbcParty(PartyId) {
  return nullptr;
}

void PartyFactory::OnDeployed(DealRuntime&) {}

std::unique_ptr<TimelockParty> SingleDeviantFactory::MakeTimelockParty(
    PartyId p) {
  if (timelock_maker_ && p.v == deviant_) return timelock_maker_();
  return nullptr;
}

std::unique_ptr<CbcParty> SingleDeviantFactory::MakeCbcParty(PartyId p) {
  if (cbc_maker_ && p.v == deviant_) return cbc_maker_();
  return nullptr;
}

DealRuntime::~DealRuntime() = default;
ProtocolDriver::~ProtocolDriver() = default;

namespace {

/// Shared scaffolding: a runtime owns its World pointer, spec, timings, and
/// the (optional) party factory; Deploy constructs the protocol engine.
template <typename Run>
class RuntimeBase : public DealRuntime {
 public:
  RuntimeBase(World* world, DealSpec spec, DealTimings timings,
              PartyFactory* factory)
      : world_(world),
        spec_(std::move(spec)),
        timings_(timings),
        factory_(factory) {}

  const DealSpec& spec() const override { return spec_; }
  World& world() override { return *world_; }

  const std::vector<ContractId>& escrow_contracts() const override {
    return run_->deployment().escrow_contracts;
  }

 protected:
  World* world_;
  DealSpec spec_;
  DealTimings timings_;
  PartyFactory* factory_;
  std::unique_ptr<Run> run_;
};

class TimelockRuntime : public RuntimeBase<TimelockRun> {
 public:
  TimelockRuntime(World* world, DealSpec spec, DealTimings timings,
                  TimelockDriver::Options options, PartyFactory* factory)
      : RuntimeBase(world, std::move(spec), timings, factory),
        options_(options) {}

  Protocol protocol() const override { return Protocol::kTimelock; }
  TimelockRun* timelock_run() override { return run_.get(); }

  Status Deploy() override {
    TimelockConfig config(timings_);
    config.direct_votes = options_.direct_votes;
    config.refund_margin = options_.refund_margin;
    PartyFactory* factory = factory_;
    run_ = std::make_unique<TimelockRun>(
        world_, spec_, config,
        factory == nullptr
            ? TimelockRun::StrategyFactory(nullptr)
            : [factory](PartyId p) { return factory->MakeTimelockParty(p); });
    XDEAL_RETURN_IF_ERROR(run_->Start());
    if (factory_ != nullptr) factory_->OnDeployed(*this);
    return Status::OK();
  }

  DealResult Collect() const override {
    TimelockResult t = run_->Collect();
    DealResult r;
    r.protocol = Protocol::kTimelock;
    r.released_contracts = t.released_contracts;
    r.refunded_contracts = t.refunded_contracts;
    r.committed = t.released_contracts == spec_.NumAssets();
    r.aborted = t.released_contracts == 0;
    r.mixed = !r.committed && !r.aborted;
    r.all_settled = t.all_settled;
    r.settle_time = t.settle_time;
    r.decision_open = run_->deployment().info.t0;
    r.commit_phase_end = t.commit_phase_end;
    r.gas_escrow = t.gas_escrow;
    r.gas_transfer = t.gas_transfer;
    r.gas_vote = t.gas_commit;
    r.gas_refund = t.gas_refund;
    r.sig_verifies = t.sig_verifies_commit;
    r.outcome = r.committed ? kDealCommitted
                            : (r.aborted && r.all_settled ? kDealAborted
                                                          : kDealActive);
    return r;
  }

  DealOutcome outcome() const override {
    return run_ == nullptr ? kDealActive : Collect().outcome;
  }

 private:
  TimelockDriver::Options options_;
};

class CbcRuntime : public RuntimeBase<CbcRun> {
 public:
  CbcRuntime(World* world, DealSpec spec, DealTimings timings,
             CbcService* service, CbcDriver::Options options,
             PartyFactory* factory)
      : RuntimeBase(world, std::move(spec), timings, factory),
        service_(service),
        options_(options) {}

  Protocol protocol() const override { return Protocol::kCbc; }
  CbcRun* cbc_run() override { return run_.get(); }

  Status Deploy() override {
    CbcConfig config(timings_);
    config.abort_patience = options_.abort_patience;
    config.reconfigs_before_claim = options_.reconfigs_before_claim;
    config.reconfig_time = options_.reconfig_time;
    PartyFactory* factory = factory_;
    run_ = std::make_unique<CbcRun>(
        world_, spec_, config, service_,
        factory == nullptr
            ? CbcRun::StrategyFactory(nullptr)
            : [factory](PartyId p) { return factory->MakeCbcParty(p); });
    XDEAL_RETURN_IF_ERROR(run_->Start());
    if (factory_ != nullptr) factory_->OnDeployed(*this);
    return Status::OK();
  }

  DealResult Collect() const override {
    CbcResult c = run_->Collect();
    DealResult r;
    r.protocol = Protocol::kCbc;
    r.outcome = c.outcome;
    r.committed = c.outcome == kDealCommitted;
    r.aborted = c.outcome == kDealAborted;
    r.mixed = !r.committed && !r.aborted && c.released_contracts > 0 &&
              c.refunded_contracts > 0;
    r.all_settled = c.all_settled;
    r.atomic = c.atomic;
    r.released_contracts = c.released_contracts;
    r.refunded_contracts = c.refunded_contracts;
    r.settle_time = c.settle_time;
    r.decision_open = run_->deployment().vote_time;
    r.commit_phase_end = c.settle_time;  // last decide inclusion
    r.gas_escrow = c.gas_escrow;
    r.gas_transfer = c.gas_transfer;
    r.gas_vote = c.gas_cbc_votes;
    r.gas_decide = c.gas_decide;
    r.sig_verifies = c.sig_verifies_decide;
    return r;
  }

  DealOutcome outcome() const override {
    if (run_ == nullptr) return kDealActive;
    const Blockchain* chain = world_->chain(run_->deployment().cbc_chain);
    const auto* log =
        chain->As<CbcLogContract>(run_->deployment().cbc_log);
    return log == nullptr ? kDealActive
                          : log->OutcomeOf(run_->deployment().deal_id);
  }

 private:
  CbcService* service_;
  CbcDriver::Options options_;
};

}  // namespace

std::unique_ptr<DealRuntime> TimelockDriver::CreateDeal(
    World* world, DealSpec spec, DealTimings timings, PartyFactory* factory) {
  return std::make_unique<TimelockRuntime>(world, std::move(spec), timings,
                                           options_, factory);
}

DealRuntime* TimelockDriver::CreateDealIn(Arena* arena, World* world,
                                          DealSpec spec, DealTimings timings,
                                          PartyFactory* factory) {
  return arena->Create<TimelockRuntime>(world, std::move(spec), timings,
                                        options_, factory);
}

std::unique_ptr<DealRuntime> CbcDriver::CreateDeal(World* world,
                                                   DealSpec spec,
                                                   DealTimings timings,
                                                   PartyFactory* factory) {
  return std::make_unique<CbcRuntime>(world, std::move(spec), timings,
                                      service_, options_, factory);
}

DealRuntime* CbcDriver::CreateDealIn(Arena* arena, World* world,
                                     DealSpec spec, DealTimings timings,
                                     PartyFactory* factory) {
  return arena->Create<CbcRuntime>(world, std::move(spec), timings, service_,
                                   options_, factory);
}

}  // namespace xdeal
