// ProtocolDriver: the one deal-execution API both commit protocols sit
// behind.
//
// Historically the timelock (§5) and CBC (§6) protocols exposed parallel but
// divergent driver APIs (TimelockRun/TimelockConfig vs CbcRun/CbcConfig), so
// every harness — the traffic engine, the scenario sweep, the bench helpers
// — re-implemented protocol dispatch and re-mirrored the phase schedule by
// hand. This header is the single seam instead:
//
//   Protocol        one enum for {timelock, cbc, htlc-baseline}, shared by
//                   traffic, sweeps, and bench reports.
//   DealTimings     ONE phase schedule (setup/startDeal/escrow/transfers/
//                   validation/Δ), the base of both protocol configs; per-
//                   protocol defaults come from DealTimings::DefaultsFor and
//                   multi-deal harnesses shift a whole schedule with ShiftBy
//                   instead of mirroring offsets.
//   PartyFactory    the uniform plug-in point for deviating strategies AND
//                   non-party observers: Make*Party supplies per-party
//                   strategies, OnDeployed fires once contracts exist (where
//                   watchtowers arm).
//   DealRuntime     one live deal: Deploy (contracts + schedule + wiring),
//                   Collect (a protocol-independent DealResult), outcome.
//   ProtocolDriver  creates runtimes; TimelockDriver is self-contained,
//                   CbcDriver executes against a CbcService shard.
//
// The underlying TimelockRun/CbcRun engines remain available for tests that
// poke protocol internals; harnesses go through this interface.

#ifndef XDEAL_CORE_PROTOCOL_DRIVER_H_
#define XDEAL_CORE_PROTOCOL_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cbc/types.h"
#include "chain/world.h"
#include "core/deal_spec.h"
#include "util/arena.h"

namespace xdeal {

class CbcParty;
class CbcRun;
class CbcService;
class TimelockParty;
class TimelockRun;

/// The one protocol enum shared by traffic, sweeps, and bench reports.
enum class Protocol : uint8_t {
  kTimelock = 0,
  kCbc,
  kHtlc,  // §8 baseline; swap-expressible ring deals only, no driver
};

/// Display name ("timelock" / "cbc" / "htlc") for reports and logs.
const char* ToString(Protocol p);

/// The phase schedule of one deal — the single source of truth both protocol
/// configs extend. Times are absolute ticks; a harness admitting deal after
/// deal shifts a default schedule with ShiftBy(admitted_at).
struct DealTimings {
  Tick setup_time = 0;         // token approvals
  Tick start_deal_time = 20;   // CBC clearing: startDeal recording
  Tick escrow_time = 80;
  Tick transfer_start = 180;
  Tick step_gap = 40;          // between sequential transfer steps
  bool parallel_transfers = false;
  Tick validation_slack = 50;  // after the last transfer step
  Tick delta = 200;            // the synchrony bound Δ
  /// Labels every transaction the run submits, so multi-deal worlds can
  /// attribute receipts/gas per deal. 0 = untagged (single-deal world).
  uint64_t deal_tag = 0;

  /// The stock schedule each protocol's config historically defaulted to
  /// (timelock escrows at 50 and transfers at 150; the CBC records startDeal
  /// at 20 first and runs each phase 30 ticks later).
  static DealTimings DefaultsFor(Protocol p);

  /// Shifts every absolute phase time by `offset` (Δ and the step gap are
  /// durations and stay put). Returns *this for chaining.
  DealTimings& ShiftBy(Tick offset);

  /// When validation (and voting) opens: transfer_start plus the sequential
  /// transfer window plus the slack.
  Tick ValidationTime(size_t num_transfer_steps) const {
    size_t sequential_steps = parallel_transfers ? 1 : num_transfer_steps;
    return transfer_start + static_cast<Tick>(sequential_steps) * step_gap +
           validation_slack;
  }
};

/// Protocol-independent result of one deal, collected after the scheduler
/// drains. Commit/abort/mixed partition the runs the same way for both
/// protocols; the gas fields cover the union of what the benches chart.
struct DealResult {
  Protocol protocol = Protocol::kTimelock;
  DealOutcome outcome = kDealActive;  // decisive outcome, if any
  bool committed = false;   // every escrow released / CBC log says commit
  bool aborted = false;     // nothing released / CBC log says abort
  bool mixed = false;       // neither, with both settles present
  bool all_settled = false;
  bool atomic = true;       // CBC: same outcome on every chain
  size_t released_contracts = 0;
  size_t refunded_contracts = 0;
  Tick settle_time = 0;       // last settlement (inclusion time)
  Tick decision_open = 0;     // timelock t0 / CBC vote time
  Tick commit_phase_end = 0;  // last commit-vote (timelock) / decide (CBC)

  uint64_t gas_escrow = 0;
  uint64_t gas_transfer = 0;
  uint64_t gas_vote = 0;    // timelock commit votes / CBC startDeal + votes
  uint64_t gas_decide = 0;  // CBC proof checking on asset chains
  uint64_t gas_refund = 0;
  uint64_t sig_verifies = 0;  // in the commit/decide phase
};

class DealRuntime;

/// Supplies the parties (and hangers-on) of one deal. The default factory is
/// all-compliant; adversarial harnesses override Make*Party for the
/// deviating position, and watchtower-style observers attach in OnDeployed
/// — the same hook for either protocol.
class PartyFactory {
 public:
  virtual ~PartyFactory();

  /// Strategy for `p` under the timelock protocol (nullptr = compliant).
  virtual std::unique_ptr<TimelockParty> MakeTimelockParty(PartyId p);
  /// Strategy for `p` under the CBC protocol (nullptr = compliant).
  virtual std::unique_ptr<CbcParty> MakeCbcParty(PartyId p);
  /// Called once per deal, after contracts are deployed and phases are
  /// scheduled but before the scheduler runs — the place to arm watchtowers
  /// or other non-party observers.
  virtual void OnDeployed(DealRuntime& runtime);
};

/// The one-deviant pattern every adversarial harness needs: exactly one
/// party id gets a strategy from the supplied maker (per protocol; a null
/// maker means that protocol's parties all stay compliant), everyone else
/// is compliant.
class SingleDeviantFactory : public PartyFactory {
 public:
  using TimelockMaker = std::function<std::unique_ptr<TimelockParty>()>;
  using CbcMaker = std::function<std::unique_ptr<CbcParty>()>;

  SingleDeviantFactory(uint32_t deviant, TimelockMaker timelock_maker,
                       CbcMaker cbc_maker = nullptr)
      : deviant_(deviant),
        timelock_maker_(std::move(timelock_maker)),
        cbc_maker_(std::move(cbc_maker)) {}

  std::unique_ptr<TimelockParty> MakeTimelockParty(PartyId p) override;
  std::unique_ptr<CbcParty> MakeCbcParty(PartyId p) override;

 private:
  uint32_t deviant_;
  TimelockMaker timelock_maker_;
  CbcMaker cbc_maker_;
};

/// One live deal behind the driver API.
class DealRuntime {
 public:
  virtual ~DealRuntime();

  /// Which commit protocol this runtime executes.
  virtual Protocol protocol() const = 0;
  /// Deploys contracts, schedules all phases, and wires subscriptions; then
  /// fires the factory's OnDeployed hook. Call once, then drive the World's
  /// scheduler. Fails (without scheduling anything) on invalid specs or
  /// unsafe configs, e.g. CBC abort_patience < Δ.
  virtual Status Deploy() = 0;
  /// Aggregates the outcome after the scheduler has drained.
  virtual DealResult Collect() const = 0;
  /// The decisive outcome so far (kDealActive while undecided).
  virtual DealOutcome outcome() const = 0;

  /// The deal being executed.
  virtual const DealSpec& spec() const = 0;
  /// Escrow contract per asset index (parallel to spec().assets); valid
  /// after Deploy.
  virtual const std::vector<ContractId>& escrow_contracts() const = 0;
  /// The World this deal lives in.
  virtual World& world() = 0;

  /// Engine escape hatches (non-null only for the matching protocol):
  /// watchtowers need the timelock deployment, CBC tests reach validators.
  virtual TimelockRun* timelock_run() { return nullptr; }
  virtual CbcRun* cbc_run() { return nullptr; }
};

/// Factory of DealRuntimes for one protocol. Drivers are cheap, stateless
/// dispatchers (the CBC driver additionally pins the CbcService backend);
/// one driver serves any number of concurrent deals in the same World.
class ProtocolDriver {
 public:
  virtual ~ProtocolDriver();

  /// Which commit protocol this driver's runtimes execute.
  virtual Protocol protocol() const = 0;
  /// Creates (but does not deploy) the runtime for one deal. `factory` may
  /// be nullptr (all parties compliant); it must outlive Deploy().
  virtual std::unique_ptr<DealRuntime> CreateDeal(
      World* world, DealSpec spec, DealTimings timings,
      PartyFactory* factory = nullptr) = 0;

  /// Arena-allocating variant for mass-deal harnesses (the traffic engine
  /// creates one runtime per deal, D of them per run): the runtime lives in
  /// `arena` and dies with it, so 10^5 runtimes cost pointer bumps instead
  /// of 10^5 heap round-trips. Semantics otherwise identical to CreateDeal.
  virtual DealRuntime* CreateDealIn(Arena* arena, World* world, DealSpec spec,
                                    DealTimings timings,
                                    PartyFactory* factory = nullptr) = 0;
};

/// Driver for the §5 timelock commit protocol (self-contained: the votes
/// live on the asset chains themselves).
class TimelockDriver : public ProtocolDriver {
 public:
  /// Timelock-specific knobs shared by every deal this driver creates.
  struct Options {
    bool direct_votes = false;  // altruistic: vote on every asset's chain
    Tick refund_margin = 20;    // watchdog fires at t0 + N·Δ + margin
  };

  TimelockDriver() : options_() {}
  explicit TimelockDriver(Options options) : options_(options) {}

  Protocol protocol() const override { return Protocol::kTimelock; }
  std::unique_ptr<DealRuntime> CreateDeal(
      World* world, DealSpec spec, DealTimings timings,
      PartyFactory* factory = nullptr) override;
  DealRuntime* CreateDealIn(Arena* arena, World* world, DealSpec spec,
                            DealTimings timings,
                            PartyFactory* factory = nullptr) override;

 private:
  Options options_;
};

/// Driver for the §6 CBC commit protocol; deals execute against a shard of
/// the supplied CbcService.
class CbcDriver : public ProtocolDriver {
 public:
  /// CBC-specific knobs shared by every deal this driver creates.
  struct Options {
    /// How long after its commit vote a party waits before rescinding with
    /// an abort. Must be >= Δ (§6); Deploy rejects unsafe configs.
    Tick abort_patience = 400;
    size_t reconfigs_before_claim = 0;
    Tick reconfig_time = 260;
  };

  /// `service` hosts the certified logs; it must outlive every runtime.
  explicit CbcDriver(CbcService* service) : service_(service), options_() {}
  CbcDriver(CbcService* service, Options options)
      : service_(service), options_(options) {}

  Protocol protocol() const override { return Protocol::kCbc; }
  std::unique_ptr<DealRuntime> CreateDeal(
      World* world, DealSpec spec, DealTimings timings,
      PartyFactory* factory = nullptr) override;
  DealRuntime* CreateDealIn(Arena* arena, World* world, DealSpec spec,
                            DealTimings timings,
                            PartyFactory* factory = nullptr) override;

  CbcService& service() { return *service_; }

 private:
  CbcService* service_;
  Options options_;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_PROTOCOL_DRIVER_H_
