#include "core/scenario_sweep.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <tuple>

#include "baseline/htlc_swap.h"
#include "cbc/cbc_service.h"
#include "core/adversaries.h"
#include "core/cbc_run.h"
#include "core/checker.h"
#include "core/deal_gen.h"
#include "core/env.h"
#include "core/protocol_driver.h"
#include "core/timelock_run.h"
#include "sim/worker_pool.h"
#include "util/fingerprint.h"
#include "util/rng.h"

namespace xdeal {
namespace {

// Δ for the benign sweeps (matches the bench defaults: ample headroom over
// the [1, 10] delay bound plus block inclusion).
constexpr Tick kSweepDelta = 120;
// Δ for the §5.3 DoS window: deliberately small enough that the attack can
// outlast the forwarding deadlines, as in the adversary_gallery example.
constexpr Tick kDosDelta = 80;

uint64_t CountReceipts(const World& world) {
  uint64_t n = 0;
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    n += world.chain(ChainId{c})->receipts().size();
  }
  return n;
}

bool BenignNetwork(SweepNetwork n) {
  return n == SweepNetwork::kSynchronous || n == SweepNetwork::kPostGstSync;
}

std::unique_ptr<NetworkModel> MakeBenignNetwork(SweepNetwork kind) {
  switch (kind) {
    case SweepNetwork::kSynchronous:
      return nullptr;  // DealEnv's default: SynchronousNetwork(1, 10)
    case SweepNetwork::kPostGstSync:
      return std::make_unique<SemiSynchronousNetwork>(
          /*gst=*/0, /*pre_gst_max=*/3000, /*min_delay=*/1, /*max_delay=*/10);
    case SweepNetwork::kPreGstAsync:
      return std::make_unique<SemiSynchronousNetwork>(
          /*gst=*/4000, /*pre_gst_max=*/3000, /*min_delay=*/1,
          /*max_delay=*/10);
    case SweepNetwork::kDosWindow:
      return nullptr;  // built by the timelock runner (window depends on t0)
  }
  return nullptr;
}

std::unique_ptr<TimelockParty> MakeTimelockAdversary(SweepAdversary kind) {
  switch (kind) {
    case SweepAdversary::kCrashAtEscrow:
      return std::make_unique<CrashingTimelockParty>(TlPhase::kEscrow);
    case SweepAdversary::kCrashAtTransfer:
      return std::make_unique<CrashingTimelockParty>(TlPhase::kTransfer);
    case SweepAdversary::kCrashAtCommit:
      return std::make_unique<CrashingTimelockParty>(TlPhase::kCommit);
    case SweepAdversary::kVoteWithholding:
      return std::make_unique<VoteWithholdingParty>();
    case SweepAdversary::kNonForwarding:
      return std::make_unique<NonForwardingParty>();
    case SweepAdversary::kOfflineAfterVote:
      return std::make_unique<OfflineAfterVoteParty>();
    case SweepAdversary::kDoubleSpend:
      return std::make_unique<DoubleSpendingParty>();
    case SweepAdversary::kShortTransfer:
      return std::make_unique<ShortTransferParty>();
    case SweepAdversary::kLateVote:
      return std::make_unique<LateVotingParty>(100000);
    default:
      return nullptr;
  }
}

std::unique_ptr<CbcParty> MakeCbcAdversary(SweepAdversary kind) {
  switch (kind) {
    case SweepAdversary::kCbcCrashBeforeVote:
      return std::make_unique<CbcCrashBeforeVoteParty>();
    case SweepAdversary::kCbcAlwaysAbort:
      return std::make_unique<CbcAlwaysAbortParty>();
    case SweepAdversary::kCbcRescindRacer:
      return std::make_unique<CbcRescindRacerParty>();
    case SweepAdversary::kCbcFakeProof:
      return std::make_unique<CbcFakeProofParty>();
    default:
      return nullptr;
  }
}

GenParams GenParamsFor(const ScenarioSpec& sc) {
  GenParams gen;
  gen.n_parties = sc.shape.n_parties;
  gen.m_assets = sc.shape.m_assets;
  gen.t_transfers = sc.shape.t_transfers;
  gen.num_chains = sc.shape.num_chains;
  gen.nft_every = sc.shape.nft_every;
  gen.seed = sc.seed;
  return gen;
}

/// Failed properties -> the scenario's violation string (empty = clean).
void FillViolation(ScenarioOutcome* out) {
  std::string v;
  if (!out->safety_ok) v += "property1-safety ";
  if (!out->weak_liveness_ok) v += "property2-weak-liveness ";
  if (!out->strong_liveness_ok) v += "property3-strong-liveness ";
  if (!out->atomic) v += "atomicity ";
  if (!v.empty()) {
    v.pop_back();
    out->violation = v;
  }
}

/// One runner for both commit protocols: what used to be two parallel
/// Run{Timelock,Cbc}Scenario functions is now a single path through the
/// ProtocolDriver API, with the protocol differences confined to the driver
/// choice and the strong-liveness predicate.
ScenarioOutcome RunDriverScenario(const ScenarioSpec& sc) {
  ScenarioOutcome out;
  out.index = sc.index;
  out.seed = sc.seed;

  GenParams gen = GenParamsFor(sc);
  DealTimings timings = DealTimings::DefaultsFor(sc.protocol);
  timings.delta =
      sc.network == SweepNetwork::kDosWindow ? kDosDelta : kSweepDelta;

  std::unique_ptr<NetworkModel> net;
  TargetedDosNetwork* dos = nullptr;
  if (sc.network == SweepNetwork::kDosWindow) {
    // The attack window opens just after votes are cast at t0 and closes
    // past every forwarding deadline and refund watchdog. t0 depends only on
    // the transfer count, which we learn from a scratch generation (the
    // generator is deterministic in its params, so the real run below
    // produces the same spec).
    size_t steps;
    {
      EnvConfig scratch_config;
      scratch_config.seed = sc.seed;
      DealEnv scratch(std::move(scratch_config));
      steps = GenerateRandomDeal(&scratch, gen).NumTransfers();
    }
    Tick t0 = timings.ValidationTime(steps);
    Tick attack_start = t0 + 10;
    Tick attack_end =
        t0 + static_cast<Tick>(sc.shape.n_parties + 2) * timings.delta + 1000;
    auto dos_net = std::make_unique<TargetedDosNetwork>(
        std::make_unique<SynchronousNetwork>(1, 10), attack_start, attack_end);
    dos = dos_net.get();
    net = std::move(dos_net);
  } else {
    net = MakeBenignNetwork(sc.network);
  }

  EnvConfig env_config;
  env_config.seed = sc.seed;
  env_config.network = std::move(net);
  DealEnv env(std::move(env_config));
  DealSpec spec = GenerateRandomDeal(&env, gen);

  // The "special" party: the deviator for adversarial runs, the untargeted
  // beneficiary for the DoS window.
  uint32_t special = spec.parties[sc.position % spec.parties.size()].v;
  if (dos != nullptr) {
    for (PartyId p : spec.parties) {
      if (p.v != special) dos->AddTarget(env.world().PartyEndpoint(p));
    }
  }

  const bool adversarial = sc.adversary != SweepAdversary::kNone;
  // A wiring mismatch (an adversary kind this protocol's factory does not
  // know) must fail the scenario, not silently degrade into an honest run.
  if (adversarial) {
    const bool known = sc.protocol == Protocol::kTimelock
                           ? MakeTimelockAdversary(sc.adversary) != nullptr
                           : MakeCbcAdversary(sc.adversary) != nullptr;
    if (!known) {
      out.violation = "adversary-protocol-mismatch";
      return out;
    }
  }

  std::unique_ptr<CbcService> service;
  std::unique_ptr<ProtocolDriver> driver;
  if (sc.protocol == Protocol::kCbc) {
    CbcService::Options service_options;
    service_options.validator_seed = "sweep-" + std::to_string(sc.seed);
    service =
        std::make_unique<CbcService>(&env.world(), service_options);
    driver = std::make_unique<CbcDriver>(service.get());
  } else {
    driver = std::make_unique<TimelockDriver>();
  }

  // One deviator at the special position, for either protocol.
  SingleDeviantFactory factory(
      special,
      adversarial ? [&sc] { return MakeTimelockAdversary(sc.adversary); }
                  : SingleDeviantFactory::TimelockMaker(nullptr),
      adversarial ? [&sc] { return MakeCbcAdversary(sc.adversary); }
                  : SingleDeviantFactory::CbcMaker(nullptr));
  std::unique_ptr<DealRuntime> runtime =
      driver->CreateDeal(&env.world(), spec, timings, &factory);
  if (!runtime->Deploy().ok()) {
    out.violation = std::string(ToString(sc.protocol)) + "-start-failed";
    return out;
  }
  out.started = true;
  DealChecker checker(&env.world(), spec, runtime->escrow_contracts());
  checker.CaptureInitial();
  env.world().scheduler().Run();
  DealResult result = runtime->Collect();

  out.committed = result.committed;
  out.aborted = result.aborted;
  out.mixed = result.mixed;
  out.all_settled = result.all_settled;
  out.atomic = result.atomic;
  if (sc.protocol == Protocol::kCbc) {
    out.atomic = out.atomic && checker.Atomic();
  }
  out.settle_time = result.settle_time;
  out.total_gas = env.world().TotalGas();
  out.messages = CountReceipts(env.world());

  // Under the DoS window no *party* deviates, so everyone counts as
  // compliant — which is exactly how the §5.3 mixed outcome surfaces as a
  // Property 1 violation.
  std::vector<PartyId> compliant;
  for (PartyId p : spec.parties) {
    if (!adversarial || p.v != special) compliant.push_back(p);
  }
  out.safety_ok = checker.SafetyHolds(compliant);
  out.weak_liveness_ok = checker.WeakLivenessHolds(compliant);
  if (!adversarial && BenignNetwork(sc.network)) {
    // Under synchrony an all-compliant CBC deal must commit outright.
    out.strong_liveness_ok =
        sc.protocol == Protocol::kCbc
            ? out.committed && checker.StrongLivenessHolds()
            : checker.StrongLivenessHolds();
  }
  FillViolation(&out);
  return out;
}

ScenarioOutcome RunHtlcScenario(const ScenarioSpec& sc) {
  ScenarioOutcome out;
  out.index = sc.index;
  out.seed = sc.seed;

  EnvConfig env_config;
  env_config.seed = sc.seed;
  env_config.network = MakeBenignNetwork(sc.network);
  DealEnv env(std::move(env_config));

  // Swaps only express direct pairwise exchanges, so the baseline runs a
  // k-party cycle: asset i (on its own chain) moves from party i to i+1.
  size_t k = std::max<size_t>(2, sc.shape.n_parties);
  DealSpec deal;
  deal.deal_id = MakeDealId("sweep-ring", sc.seed);
  std::vector<PartyId> parties;
  for (size_t i = 0; i < k; ++i) {
    parties.push_back(env.AddParty("p" + std::to_string(i)));
  }
  deal.parties = parties;
  for (size_t i = 0; i < k; ++i) {
    ChainId chain = env.AddChain("chain-" + std::to_string(i));
    uint32_t asset = env.AddFungibleAsset(&deal, chain,
                                          "tok" + std::to_string(i),
                                          parties[i]);
    env.Mint(deal, asset, parties[i], 100);
    deal.escrows.push_back({asset, parties[i], 100});
    deal.transfers.push_back({asset, parties[i], parties[(i + 1) % k], 100});
  }

  Result<SwapSpec> swap = ToSwapSpec(deal);
  if (!swap.ok()) {
    out.violation = "htlc-not-swap-expressible";
    return out;
  }
  HtlcSwapRun run(&env.world(), swap.value(), SwapConfig{});
  if (!run.Start().ok()) {
    out.violation = "htlc-start-failed";
    return out;
  }
  out.started = true;
  env.world().scheduler().Run();
  SwapResult result = run.Collect();

  out.committed = result.all_claimed;
  out.aborted = result.all_refunded;
  out.mixed = result.claimed_legs > 0 && result.refunded_legs > 0;
  out.all_settled = result.claimed_legs + result.refunded_legs == k;
  out.settle_time = result.settle_time;
  out.total_gas = env.world().TotalGas();
  out.messages = CountReceipts(env.world());

  // All parties are compliant: the decreasing-timeout discipline must claim
  // every leg under synchrony, and a mixed outcome is never acceptable.
  out.safety_ok = !out.mixed;
  out.weak_liveness_ok = out.all_settled;
  out.strong_liveness_ok = out.committed;
  FillViolation(&out);
  return out;
}

}  // namespace

const char* ToString(SweepAdversary a) {
  switch (a) {
    case SweepAdversary::kNone: return "none";
    case SweepAdversary::kCrashAtEscrow: return "crash-escrow";
    case SweepAdversary::kCrashAtTransfer: return "crash-transfer";
    case SweepAdversary::kCrashAtCommit: return "crash-commit";
    case SweepAdversary::kVoteWithholding: return "vote-withholding";
    case SweepAdversary::kNonForwarding: return "non-forwarding";
    case SweepAdversary::kOfflineAfterVote: return "offline-after-vote";
    case SweepAdversary::kDoubleSpend: return "double-spend";
    case SweepAdversary::kShortTransfer: return "short-transfer";
    case SweepAdversary::kLateVote: return "late-vote";
    case SweepAdversary::kCbcCrashBeforeVote: return "cbc-crash-before-vote";
    case SweepAdversary::kCbcAlwaysAbort: return "cbc-always-abort";
    case SweepAdversary::kCbcRescindRacer: return "cbc-rescind-racer";
    case SweepAdversary::kCbcFakeProof: return "cbc-fake-proof";
  }
  return "?";
}

const char* ToString(SweepNetwork n) {
  switch (n) {
    case SweepNetwork::kSynchronous: return "sync";
    case SweepNetwork::kPostGstSync: return "post-gst";
    case SweepNetwork::kPreGstAsync: return "pre-gst-async";
    case SweepNetwork::kDosWindow: return "dos-window";
  }
  return "?";
}

bool AdversaryAppliesTo(SweepAdversary a, Protocol p) {
  if (a == SweepAdversary::kNone) return true;
  const bool timelock_kind = a >= SweepAdversary::kCrashAtEscrow &&
                             a <= SweepAdversary::kLateVote;
  switch (p) {
    case Protocol::kTimelock: return timelock_kind;
    case Protocol::kCbc: return !timelock_kind;
    case Protocol::kHtlc: return false;  // no swap deviators (yet)
  }
  return false;
}

bool NetworkAppliesTo(SweepNetwork n, Protocol p) {
  switch (n) {
    case SweepNetwork::kSynchronous:
    case SweepNetwork::kPostGstSync:
      return true;
    case SweepNetwork::kPreGstAsync:
      // Only the CBC protocol tolerates pre-GST asynchrony (§6); the
      // timelock protocol and HTLC timeouts assume synchrony outright.
      return p == Protocol::kCbc;
    case SweepNetwork::kDosWindow:
      return p == Protocol::kTimelock;
  }
  return false;
}

bool SweepCellKey::operator<(const SweepCellKey& o) const {
  return std::tie(protocol, adversary, network) <
         std::tie(o.protocol, o.adversary, o.network);
}

uint64_t ScenarioSeed(uint64_t base_seed, uint64_t scenario_index) {
  SplitMix64 base(base_seed);
  SplitMix64 mixed(base.Next() ^
                   (scenario_index * 0x9E3779B97F4A7C15ULL +
                    0xD1B54A32D192ED03ULL));
  uint64_t seed = mixed.Next();
  return seed == 0 ? 1 : seed;
}

std::vector<ScenarioSpec> BuildScenarioMatrix(const SweepAxes& axes,
                                              uint64_t base_seed) {
  std::vector<ScenarioSpec> specs;
  const std::vector<uint32_t> kPositionZero = {0};
  const size_t replicates = std::max<size_t>(1, axes.seeds_per_cell);
  for (const SweepShape& shape : axes.shapes) {
    for (Protocol protocol : axes.protocols) {
      for (SweepNetwork network : axes.networks) {
        if (!NetworkAppliesTo(network, protocol)) continue;
        for (SweepAdversary adversary : axes.adversaries) {
          if (!AdversaryAppliesTo(adversary, protocol)) continue;
          // The DoS window is itself the attack; parties stay compliant.
          if (network == SweepNetwork::kDosWindow &&
              adversary != SweepAdversary::kNone) {
            continue;
          }
          const bool uses_position =
              adversary != SweepAdversary::kNone ||
              network == SweepNetwork::kDosWindow;
          const std::vector<uint32_t>& positions =
              uses_position && !axes.positions.empty() ? axes.positions
                                                       : kPositionZero;
          for (uint32_t position : positions) {
            for (uint64_t r = 0; r < replicates; ++r) {
              ScenarioSpec sc;
              sc.index = specs.size();
              sc.seed = ScenarioSeed(base_seed, sc.index);
              sc.shape = shape;
              sc.protocol = protocol;
              sc.adversary = adversary;
              sc.network = network;
              sc.position = position;
              sc.replicate = r;
              specs.push_back(sc);
            }
          }
        }
      }
    }
  }
  return specs;
}

ScenarioOutcome RunScenario(const ScenarioSpec& spec) {
  switch (spec.protocol) {
    case Protocol::kTimelock:
    case Protocol::kCbc:
      return RunDriverScenario(spec);
    case Protocol::kHtlc:
      return RunHtlcScenario(spec);
  }
  return {};
}

SweepReport AggregateOutcomes(const std::vector<ScenarioSpec>& specs,
                              const std::vector<ScenarioOutcome>& outcomes) {
  SweepReport report;
  report.num_scenarios = specs.size();
  uint64_t fp = 0x243F6A8885A308D3ULL;
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScenarioSpec& sc = specs[i];
    const ScenarioOutcome& o = outcomes[i];

    const bool honest = sc.adversary == SweepAdversary::kNone &&
                        BenignNetwork(sc.network);
    if (honest) {
      ++report.honest_runs;
    } else {
      ++report.adversarial_runs;
    }
    if (o.committed) ++report.committed;
    if (o.aborted) ++report.aborted;
    if (o.mixed) ++report.mixed;
    report.total_gas += o.total_gas;
    report.total_messages += o.messages;

    SweepCellStats& cell =
        report.cells[SweepCellKey{sc.protocol, sc.adversary, sc.network}];
    ++cell.runs;
    if (o.committed) ++cell.committed;
    if (o.aborted) ++cell.aborted;
    if (o.mixed) ++cell.mixed;
    cell.gas += o.total_gas;
    cell.messages += o.messages;
    if (!o.violation.empty()) {
      ++cell.violations;
      report.violations.push_back(SweepViolation{
          sc.index, sc.seed, sc.protocol, sc.adversary, sc.network,
          o.violation});
    }

    fp = MixFingerprint(fp, o.index);
    fp = MixFingerprint(fp, o.seed);
    fp = MixFingerprint(fp, static_cast<uint64_t>(o.started) |
                                static_cast<uint64_t>(o.committed) << 1 |
                                static_cast<uint64_t>(o.aborted) << 2 |
                                static_cast<uint64_t>(o.mixed) << 3 |
                                static_cast<uint64_t>(o.all_settled) << 4 |
                                static_cast<uint64_t>(o.atomic) << 5 |
                                static_cast<uint64_t>(o.safety_ok) << 6 |
                                static_cast<uint64_t>(o.weak_liveness_ok)
                                    << 7 |
                                static_cast<uint64_t>(o.strong_liveness_ok)
                                    << 8);
    fp = MixFingerprint(fp, o.total_gas);
    fp = MixFingerprint(fp, o.messages);
    fp = MixFingerprint(fp, o.settle_time);
    fp = MixFingerprint(fp, FingerprintString(o.violation));
  }
  report.fingerprint = fp;
  return report;
}

bool ExhaustivelyExplorable(const ScenarioSpec& sc) {
  if (sc.protocol != Protocol::kTimelock && sc.protocol != Protocol::kCbc) {
    return false;
  }
  if (sc.network != SweepNetwork::kSynchronous &&
      sc.network != SweepNetwork::kDosWindow) {
    return false;
  }
  return sc.shape.n_parties >= 2 && sc.shape.n_parties <= 4;
}

ExploreCell ToExploreCell(const ScenarioSpec& sc) {
  ExploreCell cell;
  cell.protocol = sc.protocol;
  cell.gen = GenParamsFor(sc);
  cell.timings = DealTimings::DefaultsFor(sc.protocol);
  cell.timings.delta =
      sc.network == SweepNetwork::kDosWindow ? kDosDelta : kSweepDelta;
  cell.deviant_position = sc.position;
  if (sc.adversary != SweepAdversary::kNone) {
    const SweepAdversary kind = sc.adversary;
    if (sc.protocol == Protocol::kTimelock) {
      cell.timelock_adversary = [kind] { return MakeTimelockAdversary(kind); };
    } else {
      cell.cbc_adversary = [kind] { return MakeCbcAdversary(kind); };
    }
  }
  cell.dos_window = sc.network == SweepNetwork::kDosWindow;
  cell.dos_beneficiary_position = sc.position;
  return cell;
}

ExhaustiveSweepReport RunExhaustiveSweep(const SweepAxes& axes,
                                         const SweepOptions& options) {
  ExhaustiveSweepReport report;
  std::vector<ScenarioSpec> specs =
      BuildScenarioMatrix(axes, options.base_seed);
  ExploreOptions explore_options;
  explore_options.num_threads = options.num_threads;
  explore_options.max_runs_per_branch = options.max_runs_per_branch;
  uint64_t fp = 0x243F6A8885A308D3ULL;
  for (const ScenarioSpec& sc : specs) {
    if (!ExhaustivelyExplorable(sc)) continue;
    ExhaustiveCellOutcome cell;
    cell.spec = sc;
    cell.report = ExploreDeal(ToExploreCell(sc), explore_options);
    report.orders += cell.report.stats.orders;
    report.executions += cell.report.stats.executions;
    report.sleep_blocked += cell.report.stats.sleep_blocked;
    report.violations += cell.report.violation_count;
    if (cell.report.violation_count > 0) ++report.violation_cells;
    report.complete = report.complete && cell.report.stats.complete;
    fp = MixFingerprint(fp, cell.report.fingerprint);
    report.cells.push_back(std::move(cell));
  }
  report.fingerprint = fp;
  return report;
}

std::string ExhaustiveSweepReport::Summary() const {
  std::string s;
  char line[256];
  std::snprintf(line, sizeof(line),
                "cells=%zu orders=%llu blocked=%llu executions=%llu "
                "violations=%llu violation_cells=%llu complete=%d "
                "fingerprint=%016llx\n",
                cells.size(), static_cast<unsigned long long>(orders),
                static_cast<unsigned long long>(sleep_blocked),
                static_cast<unsigned long long>(executions),
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(violation_cells),
                complete ? 1 : 0,
                static_cast<unsigned long long>(fingerprint));
  s += line;
  for (const ExhaustiveCellOutcome& c : cells) {
    std::snprintf(line, sizeof(line),
                  "%-9s %-22s %-14s n=%zu seed=%llu %s\n",
                  ToString(c.spec.protocol), ToString(c.spec.adversary),
                  ToString(c.spec.network), c.spec.shape.n_parties,
                  static_cast<unsigned long long>(c.spec.seed),
                  c.report.Summary().c_str());
    s += line;
  }
  return s;
}

SweepReport RunSweep(const SweepAxes& axes, const SweepOptions& options) {
  std::vector<ScenarioSpec> specs = BuildScenarioMatrix(axes,
                                                        options.base_seed);
  std::vector<ScenarioOutcome> outcomes(specs.size());
  WorkerPool pool(options.num_threads);
  pool.ParallelFor(specs.size(), [&specs, &outcomes](size_t i) {
    outcomes[i] = RunScenario(specs[i]);
  });
  return AggregateOutcomes(specs, outcomes);
}

std::string SweepReport::Summary() const {
  std::string s;
  char line[256];
  std::snprintf(line, sizeof(line),
                "scenarios=%zu honest=%zu adversarial=%zu committed=%zu "
                "aborted=%zu mixed=%zu violations=%zu\n"
                "total_gas=%llu total_messages=%llu fingerprint=%016llx\n",
                num_scenarios, honest_runs, adversarial_runs, committed,
                aborted, mixed, violations.size(),
                static_cast<unsigned long long>(total_gas),
                static_cast<unsigned long long>(total_messages),
                static_cast<unsigned long long>(fingerprint));
  s += line;
  std::snprintf(line, sizeof(line), "%-9s %-22s %-14s %5s %5s %5s %5s %5s\n",
                "protocol", "adversary", "network", "runs", "commt", "abort",
                "mixed", "viol");
  s += line;
  for (const auto& [key, cell] : cells) {
    std::snprintf(line, sizeof(line),
                  "%-9s %-22s %-14s %5zu %5zu %5zu %5zu %5zu\n",
                  ToString(key.protocol), ToString(key.adversary),
                  ToString(key.network), cell.runs, cell.committed,
                  cell.aborted, cell.mixed, cell.violations);
    s += line;
  }
  for (const SweepViolation& v : violations) {
    std::snprintf(line, sizeof(line),
                  "VIOLATION scenario=%zu seed=%llu %s/%s/%s: %s\n",
                  v.scenario_index, static_cast<unsigned long long>(v.seed),
                  ToString(v.protocol), ToString(v.adversary),
                  ToString(v.network), v.what.c_str());
    s += line;
  }
  return s;
}

SweepAxes DefaultSweepAxes() {
  SweepAxes axes;
  axes.shapes = {
      {2, 1, 2, 1, 0},
      {3, 2, 5, 2, 0},
      {4, 3, 8, 2, 3},   // every 3rd asset an NFT
      {5, 4, 10, 3, 0},
  };
  axes.protocols = {Protocol::kTimelock, Protocol::kCbc,
                    Protocol::kHtlc};
  axes.adversaries = {
      SweepAdversary::kNone,
      SweepAdversary::kCrashAtEscrow,
      SweepAdversary::kCrashAtTransfer,
      SweepAdversary::kCrashAtCommit,
      SweepAdversary::kVoteWithholding,
      SweepAdversary::kNonForwarding,
      SweepAdversary::kOfflineAfterVote,
      SweepAdversary::kDoubleSpend,
      SweepAdversary::kShortTransfer,
      SweepAdversary::kLateVote,
      SweepAdversary::kCbcCrashBeforeVote,
      SweepAdversary::kCbcAlwaysAbort,
      SweepAdversary::kCbcRescindRacer,
      SweepAdversary::kCbcFakeProof,
  };
  // kPreGstAsync applies to the CBC protocol only (the matrix filter skips
  // it elsewhere): deals may abort under pre-GST asynchrony, but atomically
  // and without hurting compliant parties.
  axes.networks = {SweepNetwork::kSynchronous, SweepNetwork::kPostGstSync,
                   SweepNetwork::kPreGstAsync};
  // {0, 1} stays distinct modulo every shape's party count (positions are
  // taken mod n, so {0, 2} would collapse to party 0 on 2-party deals).
  axes.positions = {0, 1};
  axes.seeds_per_cell = 3;
  return axes;
}

}  // namespace xdeal
