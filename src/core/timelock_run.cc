#include "core/timelock_run.h"

#include <cassert>

namespace xdeal {

// ---------------------------------------------------------------------------
// TimelockParty (compliant behaviour)
// ---------------------------------------------------------------------------

World& TimelockParty::world() { return run_->world(); }
const DealSpec& TimelockParty::spec() const { return run_->spec(); }
const TimelockDeployment& TimelockParty::deployment() const {
  return run_->deployment();
}
const TimelockConfig& TimelockParty::config() const { return run_->config(); }

Blockchain* TimelockParty::ChainOfAsset(uint32_t asset) const {
  return run_->world().chain(run_->spec().assets[asset].chain);
}

TimelockEscrowContract* TimelockParty::EscrowOfAsset(uint32_t asset) const {
  return ChainOfAsset(asset)->As<TimelockEscrowContract>(
      run_->deployment().escrow_contracts[asset]);
}

void TimelockParty::SubmitEscrow(const EscrowStep& step) {
  const DealInfo& info = deployment().info;
  ByteWriter w;
  w.Raw(info.deal_id.bytes.data(), 32);
  w.U32(static_cast<uint32_t>(info.plist.size()));
  for (PartyId p : info.plist) w.U32(p.v);
  w.U64(info.t0);
  w.U64(info.delta);
  w.U64(step.value);
  world().Submit(self_, spec().assets[step.asset].chain,
                 deployment().escrow_contracts[step.asset],
                 CallData{"escrow", w.Take()}, "escrow", config().deal_tag);
}

void TimelockParty::SubmitTransfer(const TransferStep& step) {
  ByteWriter w;
  w.Raw(deployment().info.deal_id.bytes.data(), 32);
  w.U32(step.to.v);
  w.U64(step.value);
  world().Submit(self_, spec().assets[step.asset].chain,
                 deployment().escrow_contracts[step.asset],
                 CallData{"transfer", w.Take()}, "transfer",
                 config().deal_tag);
}

PathVote TimelockParty::MakeOwnVote() const {
  const KeyPair& keys = run_->world().KeyPairOf(self_);
  PathVote vote;
  vote.voter = self_;
  vote.path.emplace_back(
      self_, keys.Sign(TimelockVoteMessage(deployment().info.deal_id, self_,
                                           /*depth=*/0)));
  return vote;
}

PathVote TimelockParty::ExtendVote(const PathVote& vote) const {
  const KeyPair& keys = run_->world().KeyPairOf(self_);
  PathVote extended = vote;
  extended.path.emplace_back(
      self_, keys.Sign(TimelockVoteMessage(
                 deployment().info.deal_id, vote.voter,
                 static_cast<uint32_t>(vote.path.size()))));
  return extended;
}

void TimelockParty::SubmitVote(uint32_t asset, const PathVote& vote) {
  if (!sent_votes_.insert({asset, vote.voter.v}).second) return;
  ByteWriter w;
  w.Raw(deployment().info.deal_id.bytes.data(), 32);
  vote.AppendTo(&w);
  world().Submit(self_, spec().assets[asset].chain,
                 deployment().escrow_contracts[asset],
                 CallData{"commit", w.Take()}, "commit", config().deal_tag);
}

bool TimelockParty::RunValidationChecks() const {
  const DealSpec& s = spec();
  std::vector<DealSpec::Expectation> expect = s.ExpectationsOf(self_);
  for (uint32_t a : s.IncomingAssetsOf(self_)) {
    const TimelockEscrowContract* esc = EscrowOfAsset(a);
    if (esc == nullptr || !esc->initialized()) return false;
    if (!(esc->deal() == deployment().info)) return false;
    const AssetRef& asset = s.assets[a];
    Blockchain* chain = run_->world().chain(asset.chain);
    Holder escrow_holder = Holder::OfContract(esc->self_id());
    if (asset.kind == AssetKind::kFungible) {
      if (esc->core().OnCommitOf(self_) != expect[a].fungible_amount) {
        return false;
      }
      // "properly escrowed (so they cannot be double-spent)": the escrow
      // contract must actually own the tokens backing our claim.
      const auto* token = chain->As<FungibleToken>(asset.token);
      if (token == nullptr ||
          token->BalanceOf(escrow_holder) < expect[a].fungible_amount) {
        return false;
      }
    } else {
      const auto* registry = chain->As<TicketRegistry>(asset.token);
      if (registry == nullptr) return false;
      for (uint64_t ticket : expect[a].tickets) {
        if (!(esc->core().NftCommitOwner(ticket) == self_)) return false;
        if (!(registry->OwnerOf(ticket) == escrow_holder)) return false;
      }
    }
  }
  return true;
}

void TimelockParty::OnEscrowPhase() {
  for (const EscrowStep& step : spec().escrows) {
    if (step.party == self_) SubmitEscrow(step);
  }
}

void TimelockParty::OnTransferStep(size_t step_index) {
  const TransferStep& step = spec().transfers[step_index];
  if (step.from == self_) SubmitTransfer(step);
}

void TimelockParty::OnValidatePhase() {
  satisfied_ = RunValidationChecks();
}

void TimelockParty::OnCommitPhase() {
  if (!satisfied_) return;  // validation failed: simply never vote (§5)
  PathVote own = MakeOwnVote();
  if (config().direct_votes) {
    // Altruistic: vote on every asset's chain directly.
    for (uint32_t a = 0; a < spec().NumAssets(); ++a) {
      SubmitVote(a, own);
    }
    return;
  }
  // Incentive-minimal: vote only where we are to be paid.
  for (uint32_t a : spec().IncomingAssetsOf(self_)) {
    SubmitVote(a, own);
  }
}

void TimelockParty::OnObservedReceipt(const Receipt& receipt) {
  if (receipt.function != "commit" || !receipt.status.ok()) return;
  // Locate the asset whose escrow contract this receipt touched.
  const DealSpec& s = spec();
  uint32_t observed_asset = kInvalidId;
  for (uint32_t a = 0; a < s.NumAssets(); ++a) {
    if (s.assets[a].chain == receipt.chain &&
        deployment().escrow_contracts[a] == receipt.contract) {
      observed_asset = a;
      break;
    }
  }
  if (observed_asset == kInvalidId) return;
  // Only votes on our outgoing assets' chains interest us (we monitor those
  // and are motivated to forward to where we get paid).
  std::set<uint32_t> outgoing = s.OutgoingAssetsOf(self_);
  if (outgoing.count(observed_asset) == 0) return;

  const TimelockEscrowContract* esc = EscrowOfAsset(observed_asset);
  if (esc == nullptr) return;
  std::set<uint32_t> incoming = s.IncomingAssetsOf(self_);
  for (const auto& [voter_id, vote] : esc->accepted_votes()) {
    if (vote.voter == self_) continue;  // our own vote traveled already
    // We cannot extend a path we already appear in (unique-signer rule).
    bool in_path = false;
    for (const auto& [signer, sig] : vote.path) {
      in_path = in_path || signer == self_;
    }
    if (in_path) continue;
    for (uint32_t b : incoming) {
      if (b == observed_asset) continue;
      const TimelockEscrowContract* target = EscrowOfAsset(b);
      if (target != nullptr && target->HasVoted(vote.voter)) continue;
      SubmitVote(b, ExtendVote(vote));
    }
  }
}

void TimelockParty::OnRefundWatch() {
  for (uint32_t a = 0; a < spec().NumAssets(); ++a) {
    if (!spec().Deposits(self_, a)) continue;
    const TimelockEscrowContract* esc = EscrowOfAsset(a);
    if (esc == nullptr || esc->settled()) continue;
    ByteWriter w;
    w.Raw(deployment().info.deal_id.bytes.data(), 32);
    world().Submit(self_, spec().assets[a].chain,
                   deployment().escrow_contracts[a],
                   CallData{"claimRefund", w.Take()}, "refund",
                   config().deal_tag);
  }
}

// ---------------------------------------------------------------------------
// TimelockRun
// ---------------------------------------------------------------------------

TimelockRun::TimelockRun(World* world, DealSpec spec, TimelockConfig config,
                         StrategyFactory factory)
    : world_(world), spec_(std::move(spec)), config_(config) {
  for (PartyId p : spec_.parties) {
    std::unique_ptr<TimelockParty> strategy;
    if (factory) strategy = factory(p);
    if (!strategy) strategy = std::make_unique<TimelockParty>();
    strategy->run_ = this;
    strategy->self_ = p;
    parties_[p.v] = std::move(strategy);
  }
}

TimelockParty* TimelockRun::party(PartyId p) {
  auto it = parties_.find(p.v);
  return it == parties_.end() ? nullptr : it->second.get();
}

Status TimelockRun::Start() {
  XDEAL_RETURN_IF_ERROR(spec_.Validate());

  // Clearing phase: fix the schedule and broadcast DealInfo (the
  // market-clearing service, §4.1 — centralized but untrusted; every party
  // independently re-checks everything against it).
  Tick validation_time = config_.ValidationTime(spec_.transfers.size());
  deployment_.info.deal_id = spec_.deal_id;
  deployment_.info.plist = spec_.parties;
  deployment_.info.t0 = validation_time;
  deployment_.info.delta = config_.delta;
  deployment_.validation_time = validation_time;

  // Deploy one escrow contract per asset on that asset's chain.
  deployment_.escrow_contracts.clear();
  for (const AssetRef& asset : spec_.assets) {
    Blockchain* chain = world_->chain(asset.chain);
    if (chain == nullptr) return Status::NotFound("asset chain missing");
    deployment_.escrow_contracts.push_back(chain->Deploy(
        std::make_unique<TimelockEscrowContract>(asset.kind, asset.token)));
  }

  // Wire observation: each party subscribes to every chain hosting one of
  // its outgoing assets (and, for simplicity, incoming too — parties may
  // watch any public chain; strategies filter). The subscription is scoped
  // to this deal's tag: under indexed delivery (chain/world.h) a party is
  // only woken for its own deal's receipts instead of every receipt on a
  // shared chain.
  for (const auto& [pid, strategy] : parties_) {
    std::set<ChainId> chains;
    for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
      chains.insert(spec_.assets[a].chain);
    }
    for (ChainId c : chains) {
      TimelockParty* raw = strategy.get();
      world_->chain(c)->Subscribe(
          world_->PartyEndpoint(PartyId{pid}), config_.deal_tag,
          [raw](const Receipt& r) { raw->OnObservedReceipt(r); });
    }
  }

  SetupApprovals();
  SchedulePhases();
  return Status::OK();
}

void TimelockRun::SetupApprovals() {
  // Each depositor approves the escrow contract to pull its outgoing assets.
  // Setup cost is not part of the paper's phase accounting (tag "setup").
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> fungible_totals;
  for (const EscrowStep& e : spec_.escrows) {
    const AssetRef& asset = spec_.assets[e.asset];
    Holder spender = Holder::OfContract(deployment_.escrow_contracts[e.asset]);
    if (asset.kind == AssetKind::kFungible) {
      fungible_totals[{e.asset, e.party.v}] += e.value;
    } else {
      ByteWriter w;
      w.U64(e.value);  // ticket id
      w.U8(static_cast<uint8_t>(spender.kind));
      w.U32(spender.id);
      world_->scheduler().ScheduleAt(
          config_.setup_time, EventLabel::Timer(e.party.v),
          [this, e, args = w.Take()]() mutable {
            world_->Submit(e.party, spec_.assets[e.asset].chain,
                           spec_.assets[e.asset].token,
                           CallData{"approve", std::move(args)}, "setup",
                           config_.deal_tag);
          });
    }
  }
  for (const auto& [key, total] : fungible_totals) {
    auto [asset_index, party_id] = key;
    Holder spender =
        Holder::OfContract(deployment_.escrow_contracts[asset_index]);
    ByteWriter w;
    w.U8(static_cast<uint8_t>(spender.kind));
    w.U32(spender.id);
    w.U64(total);
    uint32_t asset_copy = asset_index;
    uint32_t party_copy = party_id;
    world_->scheduler().ScheduleAt(
        config_.setup_time, EventLabel::Timer(party_copy),
        [this, asset_copy, party_copy, args = w.Take()]() mutable {
          world_->Submit(PartyId{party_copy}, spec_.assets[asset_copy].chain,
                         spec_.assets[asset_copy].token,
                         CallData{"approve", std::move(args)}, "setup",
                         config_.deal_tag);
        });
  }
}

void TimelockRun::SchedulePhases() {
  // Escrow phase.
  for (const auto& [pid, strategy] : parties_) {
    TimelockParty* raw = strategy.get();
    world_->scheduler().ScheduleAt(config_.escrow_time, EventLabel::Timer(pid),
                                   [raw] { raw->OnEscrowPhase(); });
  }
  // Transfer phase: sequential steps (or all at once).
  for (size_t i = 0; i < spec_.transfers.size(); ++i) {
    Tick when = config_.transfer_start +
                (config_.parallel_transfers
                     ? 0
                     : static_cast<Tick>(i) * config_.step_gap);
    TimelockParty* actor = parties_.at(spec_.transfers[i].from.v).get();
    world_->scheduler().ScheduleAt(when,
                                   EventLabel::Timer(spec_.transfers[i].from.v),
                                   [actor, i] { actor->OnTransferStep(i); });
  }
  // Validation + commit phases.
  for (const auto& [pid, strategy] : parties_) {
    TimelockParty* raw = strategy.get();
    world_->scheduler().ScheduleAt(deployment_.validation_time,
                                   EventLabel::Timer(pid), [raw] {
      raw->OnValidatePhase();
      raw->OnCommitPhase();
    });
  }
  // Refund watchdogs.
  Tick watch = deployment_.info.RefundTime() + config_.refund_margin;
  for (const auto& [pid, strategy] : parties_) {
    TimelockParty* raw = strategy.get();
    world_->scheduler().ScheduleAt(watch, EventLabel::Timer(pid),
                                   [raw] { raw->OnRefundWatch(); });
  }
}

TimelockResult TimelockRun::Collect() const {
  TimelockResult result;
  result.all_settled = true;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const Blockchain* chain = world_->chain(spec_.assets[a].chain);
    const auto* esc = chain->As<TimelockEscrowContract>(
        deployment_.escrow_contracts[a]);
    if (esc == nullptr) continue;
    if (esc->released()) ++result.released_contracts;
    if (esc->refunded()) ++result.refunded_contracts;
    bool vacuous = esc->core().Depositors().empty();
    result.all_settled = result.all_settled && (esc->settled() || vacuous);
  }
  // Phase gas + timing from the per-tag receipt index: O(this deal's own
  // receipts) per chain, regardless of how many other deals share them.
  std::set<uint32_t> deal_chains;
  for (const AssetRef& asset : spec_.assets) deal_chains.insert(asset.chain.v);
  for (uint32_t c : deal_chains) {
    const Blockchain* chain = world_->chain(ChainId{c});
    if (chain == nullptr) continue;
    for (const Receipt& r : chain->TaggedReceipts(config_.deal_tag)) {
      if (!r.status.ok()) continue;
      if (r.tag == "escrow") result.gas_escrow += r.gas_used;
      if (r.tag == "transfer") result.gas_transfer += r.gas_used;
      if (r.tag == "commit") {
        result.gas_commit += r.gas_used;
        result.sig_verifies_commit += r.sig_verifies;
        result.commit_phase_end =
            std::max(result.commit_phase_end, r.included_at);
      }
      if (r.tag == "refund") result.gas_refund += r.gas_used;
      if (r.tag == "commit" || r.tag == "refund") {
        result.settle_time = std::max(result.settle_time, r.included_at);
      }
    }
  }
  return result;
}

}  // namespace xdeal
