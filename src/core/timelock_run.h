// TimelockRun: executes a deal under the timelock commit protocol (§5).
//
// The driver deploys one TimelockEscrowContract per asset, computes the deal
// schedule (phase times, t0, Δ), and drives each party's *strategy object*
// through the five phases (§4.1):
//
//   clearing -> escrow -> transfer -> validation -> commit
//
// Compliant strategy (§5.1, incentive-minimal):
//   - escrows its outgoing assets, performs its transfer steps in order,
//   - validates its incoming assets against the agreed spec,
//   - votes commit on the escrow contracts of its *incoming* assets,
//   - monitors its *outgoing* assets' chains and forwards newly observed
//     votes (path-signature extended with its own signature) to its
//     incoming assets' contracts,
//   - claims a refund after t0 + N·Δ if an escrow it funded never settled.
//
// Deviating behaviours are subclasses overriding individual hooks (see
// adversaries.h). Phase timings are deterministic; all nondeterminism comes
// from the World's network model and seed.

#ifndef XDEAL_CORE_TIMELOCK_RUN_H_
#define XDEAL_CORE_TIMELOCK_RUN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chain/world.h"
#include "contracts/timelock_escrow.h"
#include "core/deal_spec.h"
#include "core/protocol_driver.h"
#include "util/det.h"

namespace xdeal {

/// Phase schedule (inherited — one source of truth in DealTimings) plus the
/// timelock protocol's own knobs.
struct TimelockConfig : DealTimings {
  TimelockConfig() : DealTimings(DefaultsFor(Protocol::kTimelock)) {}
  explicit TimelockConfig(const DealTimings& timings)
      : DealTimings(timings) {}

  bool direct_votes = false;    // altruistic: vote on every asset's chain
  Tick refund_margin = 20;      // watchdog fires at t0 + N·Δ + margin
};

/// Where the deal's contracts live: escrow contract per asset index.
struct TimelockDeployment {
  DealInfo info;  // deal id, plist, t0, Δ
  std::vector<ContractId> escrow_contracts;  // parallel to spec.assets

  Tick validation_time = 0;
};

class TimelockRun;

/// Per-party strategy. The default implementation is the compliant party;
/// adversaries override hooks. Strategies act only through `Submit*` helpers
/// and public chain state — the same interface a real party would have.
class TimelockParty {
 public:
  virtual ~TimelockParty() = default;

  PartyId self() const { return self_; }

  // --- phase hooks (called by the driver at scheduled times) ---
  virtual void OnEscrowPhase();
  virtual void OnTransferStep(size_t step_index);
  virtual void OnValidatePhase();
  virtual void OnCommitPhase();
  /// Observation of a receipt on a chain this party monitors.
  virtual void OnObservedReceipt(const Receipt& receipt);
  /// Refund watchdog at t0 + N·Δ + margin.
  virtual void OnRefundWatch();

  /// Validation verdict reached by this party (valid after validation).
  bool satisfied() const { return satisfied_; }

 protected:
  friend class TimelockRun;

  // --- helpers available to strategies ---
  World& world();
  const DealSpec& spec() const;
  const TimelockDeployment& deployment() const;
  const TimelockConfig& config() const;
  Blockchain* ChainOfAsset(uint32_t asset) const;
  TimelockEscrowContract* EscrowOfAsset(uint32_t asset) const;

  /// Submits an "escrow" call for one EscrowStep of this party.
  void SubmitEscrow(const EscrowStep& step);
  /// Submits a "transfer" call for one TransferStep (must be ours).
  void SubmitTransfer(const TransferStep& step);
  /// Builds this party's own commit vote (path length 1).
  PathVote MakeOwnVote() const;
  /// Extends `vote` with our signature at the next depth.
  PathVote ExtendVote(const PathVote& vote) const;
  /// Submits a commit vote to asset `a`'s escrow contract.
  void SubmitVote(uint32_t asset, const PathVote& vote);
  /// Runs the §4.1 validation checks; true if everything is satisfactory.
  bool RunValidationChecks() const;

  TimelockRun* run_ = nullptr;
  PartyId self_;
  bool satisfied_ = false;
  // (voter, asset) pairs we have already sent/forwarded, to avoid duplicates.
  std::set<std::pair<uint32_t, uint32_t>> sent_votes_;
};

/// Aggregated result of a run.
struct TimelockResult {
  bool all_settled = false;      // every escrow contract released or refunded
  size_t released_contracts = 0;
  size_t refunded_contracts = 0;
  Tick settle_time = 0;          // last settlement (inclusion time)
  Tick commit_phase_end = 0;     // last release, if any

  uint64_t gas_escrow = 0;
  uint64_t gas_transfer = 0;
  uint64_t gas_commit = 0;
  uint64_t gas_refund = 0;
  uint64_t sig_verifies_commit = 0;
};

class TimelockRun {
 public:
  /// `spec` must Validate(). Strategy factory: returns the strategy for each
  /// party (nullptr -> compliant).
  using StrategyFactory =
      std::function<std::unique_ptr<TimelockParty>(PartyId)>;

  TimelockRun(World* world, DealSpec spec, TimelockConfig config,
              StrategyFactory factory = nullptr);

  /// Deploys contracts, schedules all phases, and wires subscriptions.
  /// Call once, then world->scheduler().Run().
  XDEAL_DETERMINISTIC Status Start();

  /// Collects results after the scheduler has drained.
  XDEAL_DETERMINISTIC TimelockResult Collect() const;

  const TimelockDeployment& deployment() const { return deployment_; }
  const DealSpec& spec() const { return spec_; }
  const TimelockConfig& config() const { return config_; }
  World& world() { return *world_; }
  TimelockParty* party(PartyId p);

 private:
  void SetupApprovals();
  void SchedulePhases();

  World* world_;
  DealSpec spec_;
  TimelockConfig config_;
  TimelockDeployment deployment_;
  std::map<uint32_t, std::unique_ptr<TimelockParty>> parties_;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_TIMELOCK_RUN_H_
