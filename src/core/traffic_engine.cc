#include "core/traffic_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "cbc/cbc_service.h"
#include "contracts/fungible_token.h"
#include "core/adversaries.h"
#include "core/checker.h"
#include "core/deal_gen.h"
#include "core/env.h"
#include "core/watchtower.h"
#include "crypto/sha256.h"
#include "sim/worker_pool.h"
#include "util/fingerprint.h"
#include "util/percentile.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace xdeal {
namespace {

/// Per-deal PartyFactory: injects the offline-party strategy, arms the
/// watchtower, and registers broker reservations — all through the uniform
/// OnDeployed hook.
class TrafficPartyFactory : public PartyFactory {
 public:
  bool offline = false;
  PartyId offline_party;

  bool arm_tower = false;
  World* world = nullptr;
  PartyId tower_operator;
  std::vector<std::unique_ptr<Watchtower>>* towers = nullptr;

  /// Tower crash injection (default off): every `tower_crash_every`-th
  /// armed tower is killed `tower_crash_after` ticks after arming, and
  /// restarts `tower_recover_after` ticks later (0 = never). The shared
  /// counter spans the whole run so the k-th armed tower is the same tower
  /// whether epochs or a batch armed it.
  size_t tower_crash_every = 0;
  Tick tower_crash_after = 0;
  Tick tower_recover_after = 0;
  uint64_t* towers_armed = nullptr;

  /// Set on broker deals: once contracts exist, the pool starts tracking
  /// the capital/inventory reservation this deal opened.
  BrokerPool* broker_pool = nullptr;
  size_t deal_index = 0;

  /// Cross-shard replay injection: this party presents the home shard's
  /// decide evidence re-declared for the wrong shard.
  bool stale_proof = false;
  PartyId stale_party;

  std::unique_ptr<TimelockParty> MakeTimelockParty(PartyId p) override {
    if (offline && p == offline_party) {
      // Escrows, then goes dark: no transfers, votes, forwarding, or refund
      // claims. Its deposit is stranded unless a watchtower steps in.
      return std::make_unique<CrashingTimelockParty>(TlPhase::kTransfer);
    }
    return nullptr;
  }

  std::unique_ptr<CbcParty> MakeCbcParty(PartyId p) override {
    if (stale_proof && p == stale_party) {
      return std::make_unique<CbcStaleShardProofParty>();
    }
    return nullptr;
  }

  void OnDeployed(DealRuntime& runtime) override {
    if (broker_pool != nullptr) {
      broker_pool->OnDealDeployed(deal_index, runtime);
    }
    if (!arm_tower) return;
    TimelockRun* run = runtime.timelock_run();
    if (run == nullptr) return;  // towers relay timelock votes only
    auto tower = std::make_unique<Watchtower>(
        world, runtime.spec(), run->deployment(), tower_operator,
        runtime.spec().parties, run->config().deal_tag);
    tower->Arm();
    towers->push_back(std::move(tower));
    uint64_t seq = towers_armed != nullptr ? (*towers_armed)++ : 0;
    if (tower_crash_every > 0 && tower_crash_after > 0 &&
        seq % tower_crash_every == 0) {
      Watchtower* t = towers->back().get();
      world->scheduler().ScheduleAfter(tower_crash_after,
                                       [t] { t->Crash(); });
      if (tower_recover_after > 0) {
        world->scheduler().ScheduleAfter(
            tower_crash_after + tower_recover_after, [t] { t->Recover(); });
      }
    }
  }
};

/// One deal's full lifetime inside the shared World. The runtime and
/// checker are arena-allocated (one run-scoped Arena owns all D of them);
/// the slot holds non-owning pointers.
struct DealSlot {
  TrafficDealRecord rec;
  DealSpec spec;
  DealRuntime* runtime = nullptr;
  DealChecker* checker = nullptr;
  /// Configured at generation time; must outlive Deploy, which may fire from
  /// an admission event mid-run, so it lives in the slot.
  TrafficPartyFactory factory;
  /// Set on deals touched by injection (double-spend or offline party): the
  /// deviating party, excluded from this deal's compliant set.
  bool has_adversary = false;
  PartyId adversary;
  /// Dynamic-pricing broker deal whose spec generation is deferred to its
  /// first admission attempt, so hop margins are priced from live capital
  /// occupancy instead of generation-time zero.
  bool deferred_broker = false;
};

/// The hop-chain capital admission signal: samples every broker along the
/// deal's resale chain via the pool; one over-committed hop blocks the
/// whole chain. Registered only when the pool runs chains (depth > 1).
class HopCapitalSignal : public AdmissionSignal {
 public:
  HopCapitalSignal(BrokerPool* pool, bool gate) : pool_(pool), gate_(gate) {}
  const char* name() const override { return "hop-capital"; }
  Reading Sample(const AdmissionContext& ctx) override {
    Reading r;
    r.gating = gate_;
    uint64_t need = 0;
    r.over = pool_->ChainCapitalShort(ctx.deal_index, &need);
    r.load = need;
    return r;
  }

 private:
  BrokerPool* pool_;
  bool gate_;
};

void FillViolation(TrafficDealRecord* rec) {
  std::string v;
  if (!rec->safety_ok) v += "property1-safety ";
  if (!rec->weak_liveness_ok) v += "property2-weak-liveness ";
  if (!rec->strong_liveness_ok) v += "property3-strong-liveness ";
  if (!rec->atomic) v += "atomicity ";
  if (!v.empty()) {
    v.pop_back();
    rec->violation = v;
  }
}

std::vector<PartyId> CompliantPartiesOf(const DealSlot& slot) {
  std::vector<PartyId> compliant;
  for (PartyId p : slot.spec.parties) {
    if (!slot.has_adversary || p != slot.adversary) compliant.push_back(p);
  }
  return compliant;
}

/// Post-run evaluation of one deal; read-only on the World, safe to run
/// concurrently for distinct slots.
void ValidateDeal(DealSlot* slot) {
  TrafficDealRecord& rec = slot->rec;
  if (!rec.started) return;

  DealResult result = slot->runtime->Collect();
  rec.committed = result.committed;
  rec.aborted = result.aborted;
  rec.mixed = result.mixed;
  rec.all_settled = result.all_settled;
  rec.atomic = result.atomic;
  rec.settle_time = result.settle_time;
  // Open-loop sojourn time: measured from arrival, so any admission wait
  // the controller imposed is part of the latency the workload observed.
  rec.latency =
      rec.settle_time > rec.arrival_at ? rec.settle_time - rec.arrival_at : 0;

  std::vector<PartyId> compliant = CompliantPartiesOf(*slot);
  rec.safety_ok = slot->checker->SafetyHolds(compliant);
  rec.weak_liveness_ok = slot->checker->WeakLivenessHolds(compliant);
  if (slot->runtime->protocol() == Protocol::kCbc) {
    rec.atomic = rec.atomic && slot->checker->Atomic();
  }
  // Property 3 presumes every party compliant; injection-touched deals are
  // exempt (their abort is the expected defense, not a liveness failure).
  if (!rec.tainted) {
    if (slot->runtime->protocol() == Protocol::kTimelock) {
      rec.strong_liveness_ok = slot->checker->StrongLivenessHolds();
    } else {
      rec.strong_liveness_ok =
          rec.committed && slot->checker->StrongLivenessHolds();
    }
  }
  FillViolation(&rec);
}

/// Builds the 2-party over-commit swap for an injected double-spend: the
/// host deal's first escrower re-promises the SAME tokens to a fresh
/// counterparty. Only one of the two escrow pulls can succeed on-chain.
DealSpec BuildDoubleSpendSpec(DealEnv* env, const DealSlot& host,
                              size_t deal_index, uint64_t seed,
                              size_t num_chains, Rng* rng) {
  const std::string prefix = "d" + std::to_string(deal_index) + "-";
  PartyId spender = host.spec.escrows[0].party;
  uint64_t amount = host.spec.escrows[0].value;

  DealSpec spec;
  spec.deal_id = MakeDealId(prefix + "doublespend", seed);
  PartyId mark = env->AddParty(prefix + "mark");
  spec.parties = {spender, mark};
  // Asset 0: the host deal's asset 0 — same token contract, same chain.
  spec.assets.push_back(host.spec.assets[0]);
  // Asset 1: a fresh token the counterparty actually owns.
  ChainId chain = ChainId{static_cast<uint32_t>(rng->Below(num_chains))};
  uint32_t fresh =
      env->AddFungibleAsset(&spec, chain, prefix + "tok", mark);
  env->Mint(spec, fresh, mark, amount);

  spec.escrows.push_back(EscrowStep{0, spender, amount});
  spec.escrows.push_back(EscrowStep{fresh, mark, amount});
  spec.transfers.push_back(TransferStep{0, spender, mark, amount});
  spec.transfers.push_back(TransferStep{fresh, mark, spender, amount});
  return spec;
}

/// Cross-references escrow receipts between deals: a party whose escrow pull
/// failed in one deal while the same token funded its escrow in another is
/// a cross-deal double-spender. Evidence-based — independent of injection.
std::vector<DoubleSpendIncident> DetectDoubleSpends(
    const World& world, const std::vector<DealSlot>& slots,
    const std::vector<size_t>* receipt_start = nullptr) {
  // (chain, escrow contract) -> (deal, asset index).
  std::map<std::pair<uint32_t, uint32_t>, std::pair<size_t, uint32_t>>
      escrow_site;
  for (size_t d = 0; d < slots.size(); ++d) {
    // A deal whose Deploy() failed may have deployed only a prefix of its
    // escrow contracts; it submitted nothing, so it has no evidence to add.
    if (!slots[d].rec.started) continue;
    const std::vector<ContractId>& escrows =
        slots[d].runtime->escrow_contracts();
    for (uint32_t a = 0; a < slots[d].spec.NumAssets(); ++a) {
      escrow_site[{slots[d].spec.assets[a].chain.v, escrows[a].v}] = {d, a};
    }
  }

  // (token chain, token contract, party) -> deals where its escrow pull
  // succeeded / failed.
  struct Evidence {
    std::vector<size_t> funded;
    std::vector<size_t> bounced;
  };
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, Evidence> by_token;
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    const std::vector<Receipt>& all = world.chain(ChainId{c})->receipts();
    size_t start = receipt_start != nullptr ? (*receipt_start)[c] : 0;
    for (size_t ri = start; ri < all.size(); ++ri) {
      const Receipt& r = all[ri];
      if (r.tag != "escrow") continue;
      auto site = escrow_site.find({r.chain.v, r.contract.v});
      if (site == escrow_site.end()) continue;
      auto [deal, asset] = site->second;
      const AssetRef& token = slots[deal].spec.assets[asset];
      Evidence& ev = by_token[{token.chain.v, token.token.v, r.sender.v}];
      (r.status.ok() ? ev.funded : ev.bounced).push_back(deal);
    }
  }

  std::vector<DoubleSpendIncident> incidents;
  std::set<std::pair<size_t, size_t>> seen;
  for (const auto& [key, ev] : by_token) {
    for (size_t loser : ev.bounced) {
      for (size_t winner : ev.funded) {
        if (winner == loser || !seen.insert({loser, winner}).second) continue;
        DoubleSpendIncident incident;
        // Report GLOBAL deal indices (== the local slot index in batch mode,
        // where rec.index == d; the epoch offset in service mode).
        incident.loser_deal = slots[loser].rec.index;
        incident.winner_deal = slots[winner].rec.index;
        incident.party = std::get<2>(key);
        incident.seed = slots[loser].rec.seed;
        incidents.push_back(incident);
      }
    }
  }
  std::sort(incidents.begin(), incidents.end(),
            [](const DoubleSpendIncident& a, const DoubleSpendIncident& b) {
              return std::tie(a.loser_deal, a.winner_deal) <
                     std::tie(b.loser_deal, b.winner_deal);
            });
  return incidents;
}

/// Evidence-based taint of over-committed brokers: a broker whose escrow
/// pull bounced in some deal promised the same finite capital/inventory to
/// too many deals at once — she is that deal's deviating party (the bounced
/// deal must abort cleanly; Property 3 is not asserted for it), exactly as
/// an injected double-spender would be. Only possible when nothing gated
/// admission on broker occupancy; derived from receipts, so any replay of
/// the same seed taints the same deals.
void TaintBouncedBrokerEscrows(const World& world,
                               std::vector<DealSlot>* slots,
                               const BrokerPool& pool,
                               const std::vector<size_t>* receipt_start =
                                   nullptr) {
  // (chain, escrow contract) -> deal index, broker deals only.
  std::map<std::pair<uint32_t, uint32_t>, size_t> site;
  for (size_t d = 0; d < slots->size(); ++d) {
    const DealSlot& slot = (*slots)[d];
    if (slot.rec.broker == 0 || !slot.rec.started) continue;
    const std::vector<ContractId>& escrows =
        slot.runtime->escrow_contracts();
    for (uint32_t a = 0; a < slot.spec.NumAssets(); ++a) {
      site[{slot.spec.assets[a].chain.v, escrows[a].v}] = d;
    }
  }
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    const std::vector<Receipt>& all = world.chain(ChainId{c})->receipts();
    size_t start = receipt_start != nullptr ? (*receipt_start)[c] : 0;
    for (size_t ri = start; ri < all.size(); ++ri) {
      const Receipt& r = all[ri];
      if (r.tag != "escrow" || r.status.ok()) continue;
      auto it = site.find({r.chain.v, r.contract.v});
      if (it == site.end()) continue;
      DealSlot& slot = (*slots)[it->second];
      PartyId broker = pool.BrokerParty(slot.rec.broker - 1);
      if (!(r.sender == broker)) continue;
      slot.has_adversary = true;
      slot.adversary = broker;
      slot.rec.tainted = true;
    }
  }
}

}  // namespace

uint64_t TrafficDealSeed(uint64_t base_seed, uint64_t deal_index) {
  SplitMix64 base(base_seed ^ 0x7261666669636BULL);  // "traffick" stream
  SplitMix64 mixed(base.Next() ^
                   (deal_index * 0xD1B54A32D192ED03ULL +
                    0x9E3779B97F4A7C15ULL));
  uint64_t seed = mixed.Next();
  return seed == 0 ? 1 : seed;
}

TrafficReport RunTraffic(const TrafficOptions& options) {
  const size_t num_deals = options.num_deals;
  const size_t num_chains = std::max<size_t>(1, options.num_chains);

  EnvConfig env_config;
  env_config.seed = options.base_seed;
  env_config.block_interval = options.block_interval;
  DealEnv env(std::move(env_config));
  if (options.indexed_observation) {
    // Must flip before any block is produced: delivery mode is part of the
    // run's deterministic schedule (chain/world.h).
    env.world().set_observation_delivery(ObservationDelivery::kIndexed);
  }

  // Every per-deal runtime and checker lives here — one bump allocation
  // each instead of 2D heap round-trips at D = 10^5.
  Arena arena;

  // The shared chain pool every deal's assets are multiplexed onto.
  std::vector<ChainId> pool;
  for (size_t c = 0; c < num_chains; ++c) {
    ChainId id = env.AddChain("pool-" + std::to_string(c));
    env.world().chain(id)->set_max_txs_per_block(options.block_capacity);
    pool.push_back(id);
  }

  // The broker subsystem: B shared broker identities with finite working
  // capital and commodity inventory, deals round-robined over them. Inert
  // when num_brokers == 0 (no parties, tokens, or RNG draws), which is what
  // keeps zero-broker runs bit-identical to the legacy engine.
  BrokerPool broker_pool(&env, options.brokers, pool);

  const std::vector<Protocol>& mix =
      options.protocol_mix.empty()
          ? std::vector<Protocol>{Protocol::kTimelock}
          : options.protocol_mix;
  bool any_cbc = false;
  for (size_t d = 0; d < num_deals; ++d) {
    any_cbc = any_cbc || mix[d % mix.size()] == Protocol::kCbc;
  }

  // The certified backend all CBC deals execute against: S shards, each a
  // chain + validator set of its own, deals hashed to shards by deal id.
  // With S = 1 this is exactly §6's single shared CBC — one contention
  // point, as the paper envisions it.
  std::unique_ptr<CbcService> cbc_service;
  if (any_cbc) {
    CbcService::Options service_options;
    service_options.num_shards = std::max<size_t>(1, options.cbc_shards);
    service_options.f = 1;
    service_options.chain_name = "cbc";
    service_options.validator_seed =
        "traffic-" + std::to_string(options.base_seed);
    service_options.block_interval = options.block_interval;
    service_options.block_capacity = options.block_capacity;
    cbc_service = std::make_unique<CbcService>(&env.world(), service_options);
  }
  TimelockDriver timelock_driver;
  std::unique_ptr<CbcDriver> cbc_driver;
  if (any_cbc) {
    // The schedule carries options.delta into both protocols; keep the §6
    // "wait at least Δ before rescinding" precondition satisfied when the
    // workload asks for a Δ above the stock patience.
    CbcDriver::Options cbc_options;
    cbc_options.abort_patience =
        std::max(cbc_options.abort_patience, options.delta);
    cbc_driver =
        std::make_unique<CbcDriver>(cbc_service.get(), cbc_options);
  }

  // Watchtower infrastructure: one operator identity, one tower per guarded
  // deal (towers must outlive the scheduler drain).
  std::vector<std::unique_ptr<Watchtower>> towers;
  uint64_t towers_armed = 0;
  PartyId tower_operator;
  if (options.watchtower_every > 0) {
    tower_operator = env.AddParty("watchtower");
  }

  std::set<size_t> double_spend(options.double_spend_deals.begin(),
                                options.double_spend_deals.end());
  std::set<size_t> offline(options.offline_party_deals.begin(),
                           options.offline_party_deals.end());
  std::set<size_t> stale_proof(options.stale_proof_deals.begin(),
                               options.stale_proof_deals.end());

  // Arrival schedule: a pure function of (process, base_seed, mean gap) —
  // computed up front so it is identical whether deals deploy eagerly or
  // through admission events, and across any thread count.
  std::vector<Tick> arrivals = BuildArrivalSchedule(
      options.arrival, num_deals, options.base_seed,
      options.arrival == ArrivalProcess::kFixedStagger
          ? static_cast<double>(options.admission_gap)
          : options.mean_interarrival);

  std::vector<DealSlot> slots(num_deals);

  // Anchors slot d's schedule at `admit_time` and deploys it. On the legacy
  // path this runs inline during generation (bit-compatible with the
  // pre-admission engine); with the controller on it runs from an admission
  // event mid-simulation.
  auto deploy_deal = [&env, &slots, &options, &timelock_driver, &cbc_driver,
                      &arena, &broker_pool](size_t d, Tick admit_time) {
    DealSlot& slot = slots[d];
    TrafficDealRecord& rec = slot.rec;
    rec.admitted_at = admit_time;

    // One shifted schedule drives either protocol.
    DealTimings timings = DealTimings::DefaultsFor(rec.protocol);
    timings.ShiftBy(admit_time);
    timings.delta = options.delta;
    timings.deal_tag = static_cast<uint64_t>(d) + 1;

    ProtocolDriver& driver = rec.protocol == Protocol::kCbc
                                 ? static_cast<ProtocolDriver&>(*cbc_driver)
                                 : timelock_driver;
    slot.runtime = driver.CreateDealIn(&arena, &env.world(), slot.spec,
                                       timings, &slot.factory);
    Status started = slot.runtime->Deploy();
    if (!started.ok()) {
      rec.violation = "start-failed: " + started.ToString();
      return;
    }
    slot.checker = arena.Create<DealChecker>(
        &env.world(), slot.spec, slot.runtime->escrow_contracts(),
        timings.deal_tag);
    if (rec.broker != 0) {
      // The brokers' balances move with every concurrent deal they are in;
      // their per-deal token expectations are undefined. Solvency is
      // asserted across the whole deal set by the portfolio check — every
      // hop of a chain deal is such a shared party.
      for (PartyId p : broker_pool.SharedPartiesOf(d)) {
        slot.checker->MarkSharedParty(p);
      }
    }
    slot.checker->CaptureInitial();
    rec.started = true;
  };

  // Resolves where a CBC deal's assets landed (CbcService::PlaceAssets) and
  // records whether they span shards — the same resolution the deal's own
  // CbcRun performs at deploy time.
  auto note_placement = [&slots, &cbc_service](size_t d) {
    DealSlot& slot = slots[d];
    if (slot.rec.protocol != Protocol::kCbc || cbc_service == nullptr ||
        slot.spec.assets.empty()) {
      return;
    }
    std::vector<ChainId> asset_chains;
    asset_chains.reserve(slot.spec.assets.size());
    for (const AssetRef& a : slot.spec.assets) {
      asset_chains.push_back(a.chain);
    }
    slot.rec.cross_shard =
        cbc_service->PlaceAssets(slot.spec.deal_id, asset_chains)
            .cross_shard();
  };

  // Dynamic pricing defers broker spec generation to the admission event
  // (margins priced from live occupancy); without the controller there is
  // no admission event, so generation stays eager.
  const bool defer_broker =
      broker_pool.DynamicPricing() && options.admission.enabled;

  // --- generation: sequential by construction (mutates the World), every
  //     deal's randomness from its own derived seed ---
  size_t cbc_seen = 0;  // CBC deals so far, for cross-shard placement
  for (size_t d = 0; d < num_deals; ++d) {
    DealSlot& slot = slots[d];
    TrafficDealRecord& rec = slot.rec;
    rec.index = d;
    rec.seed = TrafficDealSeed(options.base_seed, d);
    rec.protocol = mix[d % mix.size()];
    rec.arrival_at = arrivals[d];
    rec.admitted_at = arrivals[d];
    Rng rng(rec.seed);

    const bool inject =
        double_spend.count(d) > 0 && d > 0 && double_spend.count(d - 1) == 0;
    if (inject) {
      slot.spec = BuildDoubleSpendSpec(&env, slots[d - 1], d, rec.seed,
                                       num_chains, &rng);
      PartyId adversary = slot.spec.parties[0];
      slot.has_adversary = true;
      slot.adversary = adversary;
      rec.tainted = true;
      slots[d - 1].has_adversary = true;
      slots[d - 1].adversary = adversary;
      slots[d - 1].rec.tainted = true;
    } else if (broker_pool.IsBrokerDeal(d)) {
      // Figure-1 shape: this deal's middle party is a shared broker (or a
      // chain of them) whose capital/inventory the deal locks in flight.
      rec.broker = broker_pool.BrokerOf(d) + 1;
      if (defer_broker) {
        slot.deferred_broker = true;  // spec built at first admission
      } else {
        slot.spec = broker_pool.MakeDeal(d, rec.seed);
        rec.broker_capital_need = broker_pool.CapitalNeed(d);
        rec.broker_inventory_need = broker_pool.InventoryNeed(d);
      }
    } else {
      GenParams gen;
      gen.n_parties = options.min_parties +
                      rng.Below(options.max_parties - options.min_parties + 1);
      gen.m_assets = options.min_assets +
                     rng.Below(options.max_assets - options.min_assets + 1);
      gen.t_transfers = gen.n_parties + (gen.m_assets - 1) +
                        rng.Below(options.extra_transfers + 1);
      gen.nft_every = options.nft_every;
      gen.seed = rec.seed;
      gen.name_prefix = "d" + std::to_string(d) + "-";
      const bool xshard = rec.protocol == Protocol::kCbc &&
                          options.cbc_xshard_every > 0 &&
                          cbc_service != nullptr &&
                          cbc_seen % options.cbc_xshard_every == 0;
      if (xshard) {
        // Cross-shard placement: assets land on a contiguous window of the
        // service's SHARD chains, so they settle on shards other than the
        // deal's home shard via portable DecideProofs.
        const size_t num_shards = cbc_service->num_shards();
        size_t span = std::min(gen.m_assets, num_shards);
        size_t start = rng.Below(num_shards);
        for (size_t j = 0; j < span; ++j) {
          gen.use_chains.push_back(
              cbc_service->chain((start + j) % num_shards));
        }
        gen.num_chains = span;
      } else {
        // A contiguous window of the pool, so deals overlap on chains.
        size_t span = std::min(gen.m_assets, num_chains);
        size_t start = rng.Below(num_chains);
        for (size_t j = 0; j < span; ++j) {
          gen.use_chains.push_back(pool[(start + j) % num_chains]);
        }
        gen.num_chains = span;  // everything placed on the shared pool
      }
      slot.spec = GenerateRandomDeal(&env, gen);
    }
    if (rec.protocol == Protocol::kCbc) ++cbc_seen;
    note_placement(d);
    rec.parties = slot.spec.NumParties();
    rec.assets = slot.spec.NumAssets();
    rec.transfers = slot.spec.NumTransfers();

    if (rec.protocol == Protocol::kHtlc) {
      rec.violation = "start-failed: htlc has no traffic driver";
      continue;
    }

    // The per-deal factory: offline-party injection + watchtower arming.
    TrafficPartyFactory& factory = slot.factory;
    if (offline.count(d) > 0 && !inject &&
        rec.protocol == Protocol::kTimelock && !slot.spec.escrows.empty()) {
      factory.offline = true;
      factory.offline_party = slot.spec.escrows[0].party;
      slot.has_adversary = true;
      slot.adversary = factory.offline_party;
      rec.tainted = true;
    }
    if (stale_proof.count(d) > 0 && !inject && rec.broker == 0 &&
        rec.protocol == Protocol::kCbc && !slot.spec.escrows.empty()) {
      // Cross-shard replay: the first escrower presents the home shard's
      // decide evidence re-declared for the wrong shard. The escrows must
      // reject it ("decide: shard mismatch"); the replayer is this deal's
      // deviating party.
      factory.stale_proof = true;
      factory.stale_party = slot.spec.escrows[0].party;
      slot.has_adversary = true;
      slot.adversary = factory.stale_party;
      rec.tainted = true;
    }
    if (options.watchtower_every > 0 &&
        d % options.watchtower_every == 0 &&
        rec.protocol == Protocol::kTimelock) {
      factory.arm_tower = true;
      factory.world = &env.world();
      factory.tower_operator = tower_operator;
      factory.towers = &towers;
      factory.tower_crash_every = options.tower_crash_every;
      factory.tower_crash_after = options.tower_crash_after;
      factory.tower_recover_after = options.tower_recover_after;
      factory.towers_armed = &towers_armed;
    }
    if (rec.broker != 0) {
      factory.broker_pool = &broker_pool;
      factory.deal_index = d;
    }

    // Legacy path: no controller, deploy up front at the arrival time —
    // the exact call sequence of the pre-admission engine, so fingerprints
    // are preserved bit-for-bit.
    if (!options.admission.enabled) {
      deploy_deal(d, rec.admitted_at);
    }
  }

  // --- admission events: with the controller on, deployment itself moves
  //     onto the scheduler. Each deal's arrival consults the controller
  //     against live backlog/occupancy; over-threshold deals retry after a
  //     delay quantum and are shed once out of retries. Events are created
  //     in index order, so equal-time arrivals stay deterministic. ---
  AdmissionController controller(options.admission, &env.world());
  if (broker_pool.enabled() && broker_pool.ChainDepth() > 1) {
    // Chain deals register the hop-capital extension signal instead of the
    // single-broker built-in: one short hop blocks the whole chain.
    controller.RegisterSignal(std::make_unique<HopCapitalSignal>(
        &broker_pool, options.admission.broker_gate));
  }
  std::function<void(size_t)> admission_event;
  // Arrival and retry events the engine itself has scheduled but that have
  // not fired yet. They sit in the same event queue the controller reads as
  // its backlog signal, so Decide() subtracts them — an open-loop generator
  // must not mistake its own future arrivals for congestion.
  size_t own_admission_events = 0;
  if (options.admission.enabled) {
    const Tick retry_delay =
        options.admission.retry_delay > 0 ? options.admission.retry_delay : 1;
    admission_event = [&env, &slots, &controller, &admission_event,
                       &deploy_deal, &own_admission_events, &broker_pool,
                       &note_placement, retry_delay](size_t d) {
      --own_admission_events;  // this event just fired
      DealSlot& slot = slots[d];
      TrafficDealRecord& rec = slot.rec;
      // Dynamic pricing: the deferred broker spec is built at the deal's
      // FIRST admission attempt, so each hop's margin is priced from live
      // capital occupancy; retries keep the first-arrival price.
      if (slot.deferred_broker && slot.spec.parties.empty()) {
        slot.spec = broker_pool.MakeDeal(d, rec.seed);
        rec.broker_capital_need = broker_pool.CapitalNeed(d);
        rec.broker_inventory_need = broker_pool.InventoryNeed(d);
        rec.parties = slot.spec.NumParties();
        rec.assets = slot.spec.NumAssets();
        rec.transfers = slot.spec.NumTransfers();
        note_placement(d);
      }
      // Broker deals carry the capital signal: single-hop deals pass this
      // broker's live free capital/inventory to the broker built-in; chain
      // deals are covered by the registered hop-capital signal instead.
      const bool chain_deal = rec.broker != 0 && broker_pool.ChainDepth() > 1;
      BrokerSignal broker_signal;
      const bool has_broker_signal = rec.broker != 0 && !chain_deal;
      if (has_broker_signal) broker_signal = broker_pool.SignalFor(d);
      AdmissionDecision decision =
          controller.Decide(rec.admission_retries, own_admission_events,
                            has_broker_signal ? &broker_signal : nullptr, d);
      if (decision == AdmissionDecision::kDelay) {
        ++rec.admission_retries;
        ++own_admission_events;
        env.world().scheduler().ScheduleAfter(
            retry_delay, [&admission_event, d] { admission_event(d); });
        return;
      }
      Tick now = env.world().now();
      if (decision == AdmissionDecision::kShed) {
        rec.shed = true;
        // The wait this deal's retries cost before the policy gave up.
        rec.admission_wait = now - rec.arrival_at;
        return;
      }
      rec.admission_wait = now - rec.arrival_at;
      deploy_deal(d, now);
    };
    for (size_t d = 0; d < num_deals; ++d) {
      if (slots[d].rec.protocol == Protocol::kHtlc) continue;  // no driver
      ++own_admission_events;
      env.world().scheduler().ScheduleAt(
          arrivals[d], [&admission_event, d] { admission_event(d); });
    }
  }

  // --- mid-run validator reconfiguration: at each listed tick every shard
  //     rotates its validator set (epoch + 1). Deals escrowed before the
  //     boundary still settle: their decide proofs chain the new epochs'
  //     certificates through the service's reconfiguration history. ---
  if (cbc_service != nullptr) {
    CbcService* service = cbc_service.get();
    for (Tick t : options.cbc_reconfig_times) {
      env.world().scheduler().ScheduleAt(t, [service] {
        for (size_t s = 0; s < service->num_shards(); ++s) {
          service->Reconfigure(s);
        }
      });
    }
  }

  // --- crash injection: listed ticks kill a broker (round-robin over the
  //     pool); a recovery delay, when set, brings it back after rebuilding
  //     its reservations from on-chain escrow evidence. ---
  if (broker_pool.enabled() && !options.broker_crash_times.empty()) {
    const size_t num_brokers = broker_pool.num_brokers();
    for (size_t i = 0; i < options.broker_crash_times.size(); ++i) {
      const size_t b = i % num_brokers;
      env.world().scheduler().ScheduleAt(
          options.broker_crash_times[i],
          [&broker_pool, b] { broker_pool.CrashBroker(b); });
      if (options.broker_recover_after > 0) {
        env.world().scheduler().ScheduleAt(
            options.broker_crash_times[i] + options.broker_recover_after,
            [&broker_pool, b] { broker_pool.RecoverBroker(b); });
      }
    }
  }

  // --- drive: one deterministic scheduler interleaves every deal's phases.
  //     The fairness hook tracks when the backlog peaks. ---
  Tick peak_backlog_at = 0;
  size_t peak_backlog = 0;
  env.world().scheduler().SetStepObserver(
      [&peak_backlog, &peak_backlog_at](Tick now, size_t pending) {
        if (pending > peak_backlog) {
          peak_backlog = pending;
          peak_backlog_at = now;
        }
      });
  env.world().scheduler().Run();
  env.world().scheduler().SetStepObserver(nullptr);

  // --- differential oracle: the incrementally built receipt indexes must
  //     agree with a from-scratch full scan on every chain ---
  std::vector<uint32_t> index_mismatch_chains;
  if (options.fullscan_oracle) {
    for (uint32_t c = 0; c < env.world().num_chains(); ++c) {
      if (!env.world().chain(ChainId{c})->TagIndexMatchesFullScan()) {
        index_mismatch_chains.push_back(c);
      }
    }
  }

  // --- broker over-commitment: identified from on-chain evidence (bounced
  //     broker escrow pulls) and tainted before validation, so the bounced
  //     deal's clean abort is judged as the defense it is ---
  if (broker_pool.enabled()) {
    TaintBouncedBrokerEscrows(env.world(), &slots, broker_pool);
  }

  // --- cross-shard replay evidence: decide submissions rejected on the
  //     escrow's shard-binding check. The rejections are counted and the
  //     replaying party's deal tainted from the receipts alone, so any
  //     replay of the same seed taints the same deals — injected or not. ---
  size_t stale_decide_rejections = 0;
  if (cbc_service != nullptr) {
    // (chain, escrow contract) -> deal index, CBC deals only.
    std::map<std::pair<uint32_t, uint32_t>, size_t> site;
    for (size_t d = 0; d < slots.size(); ++d) {
      const DealSlot& slot = slots[d];
      if (!slot.rec.started || slot.rec.protocol != Protocol::kCbc) continue;
      const std::vector<ContractId>& escrows =
          slot.runtime->escrow_contracts();
      for (uint32_t a = 0; a < slot.spec.NumAssets(); ++a) {
        site[{slot.spec.assets[a].chain.v, escrows[a].v}] = d;
      }
    }
    for (uint32_t c = 0; c < env.world().num_chains(); ++c) {
      for (const Receipt& r : env.world().chain(ChainId{c})->receipts()) {
        if (r.tag != "decide" || r.status.ok()) continue;
        if (r.status.ToString().find("shard mismatch") == std::string::npos) {
          continue;
        }
        ++stale_decide_rejections;
        auto it = site.find({r.chain.v, r.contract.v});
        if (it == site.end()) continue;
        DealSlot& slot = slots[it->second];
        slot.has_adversary = true;
        slot.adversary = r.sender;
        slot.rec.tainted = true;
      }
    }
  }

  // --- per-deal gas/receipt attribution: one sequential pass. Gas that
  //     reaches no deal's tag is leakage in the accounting and is reported
  //     (a conformant engine keeps it at zero). ---
  std::vector<uint64_t> gas_by_deal(num_deals + 1, 0);
  std::vector<uint64_t> messages_by_deal(num_deals + 1, 0);
  uint64_t untagged_gas = 0;
  for (uint32_t c = 0; c < env.world().num_chains(); ++c) {
    for (const Receipt& r : env.world().chain(ChainId{c})->receipts()) {
      if (r.deal_tag == 0 || r.deal_tag > num_deals) {
        untagged_gas += r.gas_used;
        continue;
      }
      gas_by_deal[r.deal_tag] += r.gas_used;
      ++messages_by_deal[r.deal_tag];
    }
  }
  for (size_t d = 0; d < num_deals; ++d) {
    slots[d].rec.gas = gas_by_deal[d + 1];
    slots[d].rec.messages = messages_by_deal[d + 1];
  }

  // --- validate: independent per deal, read-only on the World; workers
  //     write into their own slots, so any thread count folds identically ---
  WorkerPool pool_workers(options.num_threads);
  pool_workers.ParallelFor(num_deals,
                           [&slots](size_t d) { ValidateDeal(&slots[d]); });

  // --- aggregate: sequential, index-ordered ---
  TrafficReport report;
  report.num_deals = num_deals;
  report.cbc_shards = std::max<size_t>(1, options.cbc_shards);
  report.untagged_gas = untagged_gas;
  report.events_executed = env.world().scheduler().stats().executed;
  // Both backlog fields come from the same step-hook measurement so the
  // (depth, tick) pair is coherent; the scheduler's own max_pending counter
  // additionally counts the pre-run admission burst.
  report.max_backlog = peak_backlog;
  report.peak_backlog_at = peak_backlog_at;

  // The legacy fold is kept byte-identical in legacy mode; open-loop /
  // admission-controlled runs additionally fold every deal's admission fate
  // so a changed schedule or policy can never alias an old fingerprint.
  const bool open_loop_fp = options.arrival != ArrivalProcess::kFixedStagger ||
                            options.admission.enabled;
  const bool broker_fp = broker_pool.enabled();
  // Hop chains / priced margins and cross-shard placement each fold their
  // own per-deal facts, gated on their knobs so legacy configs keep their
  // exact historical fingerprints.
  const bool hopchain_fp =
      broker_pool.enabled() &&
      (broker_pool.ChainDepth() > 1 || broker_pool.DynamicPricing());
  const bool xshard_fp = options.cbc_xshard_every > 0;
  std::vector<Tick> latencies;
  std::vector<uint64_t> gas_values;
  uint64_t fp = 0x452821E638D01377ULL;
  for (size_t d = 0; d < num_deals; ++d) {
    TrafficDealRecord& rec = slots[d].rec;
    if (rec.protocol == Protocol::kTimelock) {
      ++report.timelock_deals;
    } else {
      ++report.cbc_deals;
    }
    if (rec.committed) ++report.committed;
    if (rec.aborted) ++report.aborted;
    if (rec.mixed) ++report.mixed;
    if (rec.shed) ++report.shed;
    if (rec.admitted_at > rec.arrival_at) ++report.delayed_deals;
    report.admission_retries += rec.admission_retries;
    report.max_admission_wait =
        std::max(report.max_admission_wait, rec.admission_wait);
    report.total_gas += rec.gas;
    report.total_messages += rec.messages;
    report.makespan = std::max(report.makespan, rec.settle_time);
    if (rec.all_settled && rec.settle_time > 0) {
      latencies.push_back(rec.latency);
    }
    gas_values.push_back(rec.gas);
    if (!rec.violation.empty()) {
      report.violations.push_back(
          TrafficViolation{d, rec.seed, rec.protocol, rec.violation});
    }

    fp = MixFingerprint(fp, rec.index);
    fp = MixFingerprint(fp, rec.seed);
    fp = MixFingerprint(fp, static_cast<uint64_t>(rec.started) |
                                static_cast<uint64_t>(rec.committed) << 1 |
                                static_cast<uint64_t>(rec.aborted) << 2 |
                                static_cast<uint64_t>(rec.mixed) << 3 |
                                static_cast<uint64_t>(rec.all_settled) << 4 |
                                static_cast<uint64_t>(rec.atomic) << 5 |
                                static_cast<uint64_t>(rec.safety_ok) << 6 |
                                static_cast<uint64_t>(rec.weak_liveness_ok)
                                    << 7 |
                                static_cast<uint64_t>(rec.strong_liveness_ok)
                                    << 8 |
                                static_cast<uint64_t>(rec.tainted) << 9);
    fp = MixFingerprint(fp, rec.gas);
    fp = MixFingerprint(fp, rec.messages);
    fp = MixFingerprint(fp, rec.settle_time);
    fp = MixFingerprint(fp, FingerprintString(rec.violation));
    if (open_loop_fp) {
      fp = MixFingerprint(fp, rec.arrival_at);
      fp = MixFingerprint(fp, rec.admitted_at);
      fp = MixFingerprint(fp, static_cast<uint64_t>(rec.shed) |
                                  static_cast<uint64_t>(rec.admission_retries)
                                      << 1);
      fp = MixFingerprint(fp, rec.admission_wait);
    }
    if (broker_fp) {
      if (rec.broker != 0) ++report.broker_deals;
      fp = MixFingerprint(fp, rec.broker);
      fp = MixFingerprint(fp, rec.broker_capital_need);
      fp = MixFingerprint(fp, rec.broker_inventory_need);
    }
    if (rec.broker != 0) {
      rec.price_points = broker_pool.PricePointsOf(d);
    }
    if (rec.cross_shard) ++report.cross_shard_deals;
    if (hopchain_fp) {
      fp = MixFingerprint(fp, rec.price_points.size());
      for (const BrokerPool::PricePoint& pt : rec.price_points) {
        fp = MixFingerprint(fp, pt.occupancy);
        fp = MixFingerprint(fp, pt.margin);
      }
    }
    if (xshard_fp) {
      fp = MixFingerprint(fp, rec.cross_shard ? 1 : 0);
    }
  }

  report.latency_p50 = Percentile(latencies, 50);
  report.latency_p90 = Percentile(latencies, 90);
  report.latency_p99 = Percentile(latencies, 99);
  report.gas_p50 = Percentile(gas_values, 50);
  report.gas_p99 = Percentile(gas_values, 99);
  if (report.makespan > 0) {
    report.deals_per_ktick =
        1000.0 * static_cast<double>(report.committed) /
        static_cast<double>(report.makespan);
  }
  // Offered load: (D-1) inter-arrival gaps over the arrival window.
  if (num_deals > 1 && arrivals.back() > arrivals.front()) {
    report.offered_per_ktick =
        1000.0 * static_cast<double>(num_deals - 1) /
        static_cast<double>(arrivals.back() - arrivals.front());
  }
  if (options.admission.enabled) {
    report.peak_backlog_seen = controller.stats().peak_backlog_seen;
    report.peak_occupancy_seen = controller.stats().peak_occupancy_seen;
  }

  for (uint32_t c : index_mismatch_chains) {
    report.violations.push_back(TrafficViolation{
        0, options.base_seed, Protocol::kTimelock,
        "receipt-index-mismatch: chain " + std::to_string(c) +
            " tag index disagrees with full scan"});
  }

  report.stale_decide_rejections = stale_decide_rejections;
  if (!options.stale_proof_deals.empty()) {
    fp = MixFingerprint(fp, stale_decide_rejections);
  }
  report.broker_hop_depth =
      broker_pool.enabled() ? broker_pool.ChainDepth() : 1;

  fp = MixFingerprint(fp, untagged_gas);
  report.double_spends = DetectDoubleSpends(env.world(), slots);
  for (const DoubleSpendIncident& incident : report.double_spends) {
    fp = MixFingerprint(fp, incident.loser_deal);
    fp = MixFingerprint(fp, incident.winner_deal);
    fp = MixFingerprint(fp, incident.party);
  }

  // --- per-broker aggregation: gas/latency attribution, occupancy
  //     timelines, and the portfolio conformance check, folded into the
  //     fingerprint so a changed broker fate can never alias a report ---
  if (broker_pool.enabled()) {
    std::vector<BrokerDealOutcome> outcomes;
    outcomes.reserve(report.broker_deals);
    for (size_t d = 0; d < num_deals; ++d) {
      const TrafficDealRecord& rec = slots[d].rec;
      if (rec.broker == 0) continue;
      BrokerDealOutcome outcome;
      outcome.deal_index = d;
      outcome.arrival_at = rec.arrival_at;
      outcome.admitted_at = rec.admitted_at;
      outcome.settle_time = rec.settle_time;
      outcome.latency = rec.latency;
      outcome.started = rec.started;
      outcome.committed = rec.committed;
      outcome.aborted = rec.aborted;
      outcome.shed = rec.shed;
      outcome.all_settled = rec.all_settled;
      outcome.gas = rec.gas;
      outcomes.push_back(outcome);
    }
    report.brokers = broker_pool.BuildRecords(outcomes);
    report.broker_blocked = controller.stats().broker_blocked;
    for (const BrokerRecord& broker : report.brokers) {
      if (!broker.portfolio_ok) ++report.broker_portfolio_violations;
      fp = MixFingerprint(fp, broker.index);
      fp = MixFingerprint(fp, broker.party);
      fp = MixFingerprint(fp, broker.deals);
      fp = MixFingerprint(fp, broker.committed);
      fp = MixFingerprint(fp, broker.aborted);
      fp = MixFingerprint(fp, broker.shed);
      fp = MixFingerprint(fp, broker.delayed);
      fp = MixFingerprint(fp, broker.gas);
      fp = MixFingerprint(fp, static_cast<uint64_t>(broker.coin_delta));
      fp = MixFingerprint(fp, static_cast<uint64_t>(broker.inventory_delta));
      fp = MixFingerprint(fp, broker.peak_capital_in_use);
      fp = MixFingerprint(fp, broker.peak_inventory_in_use);
      fp = MixFingerprint(fp, broker.portfolio_ok ? 1 : 0);
    }
  }
  report.fingerprint = fp;

  report.deals.reserve(num_deals);
  for (DealSlot& slot : slots) {
    report.deals.push_back(std::move(slot.rec));
  }
  return report;
}

std::string TrafficReport::Summary() const {
  std::string s;
  char line[320];
  std::snprintf(
      line, sizeof(line),
      "deals=%zu (timelock=%zu cbc=%zu, %zu cbc shard%s) committed=%zu "
      "aborted=%zu mixed=%zu violations=%zu double_spends=%zu\n",
      num_deals, timelock_deals, cbc_deals, cbc_shards,
      cbc_shards == 1 ? "" : "s", committed, aborted, mixed,
      violations.size(), double_spends.size());
  s += line;
  if (shed + delayed_deals + admission_retries > 0) {
    std::snprintf(
        line, sizeof(line),
        "admission: shed=%zu delayed=%zu retries=%zu max_wait=%llu ticks, "
        "peak backlog=%zu, peak chain occupancy=%llu\n",
        shed, delayed_deals, admission_retries,
        static_cast<unsigned long long>(max_admission_wait),
        peak_backlog_seen,
        static_cast<unsigned long long>(peak_occupancy_seen));
    s += line;
  }
  if (cross_shard_deals + stale_decide_rejections > 0) {
    std::snprintf(
        line, sizeof(line),
        "cross-shard: %zu deals spanned >=2 shards, stale decide "
        "rejections=%zu\n",
        cross_shard_deals, stale_decide_rejections);
    s += line;
  }
  if (broker_deals > 0) {
    std::snprintf(
        line, sizeof(line),
        "brokers: %zu brokers hosting %zu deals, portfolio violations=%zu, "
        "blocked admission decisions=%zu\n",
        brokers.size(), broker_deals, broker_portfolio_violations,
        broker_blocked);
    s += line;
    if (broker_hop_depth > 1) {
      std::snprintf(
          line, sizeof(line),
          "  hop chains: every broker deal is a chain of %zu "
          "capital-fronting brokers settling atomically\n",
          broker_hop_depth);
      s += line;
    }
    for (const BrokerRecord& b : brokers) {
      std::snprintf(
          line, sizeof(line),
          "  broker %zu: deals=%zu committed=%zu aborted=%zu shed=%zu "
          "delayed=%zu gas=%llu lat p50/max=%llu/%llu, peak capital %llu/"
          "%llu, peak inventory %llu/%llu, net %+lld coins %+lld units%s\n",
          b.index, b.deals, b.committed, b.aborted, b.shed, b.delayed,
          static_cast<unsigned long long>(b.gas),
          static_cast<unsigned long long>(b.latency_p50),
          static_cast<unsigned long long>(b.latency_max),
          static_cast<unsigned long long>(b.peak_capital_in_use),
          static_cast<unsigned long long>(b.capital_limit),
          static_cast<unsigned long long>(b.peak_inventory_in_use),
          static_cast<unsigned long long>(b.inventory_limit),
          static_cast<long long>(b.coin_delta),
          static_cast<long long>(b.inventory_delta),
          b.portfolio_ok ? "" : "  PORTFOLIO VIOLATION");
      s += line;
    }
  }
  std::snprintf(
      line, sizeof(line),
      "makespan=%llu ticks, offered %.2f arrivals/ktick, goodput %.2f "
      "committed deals/ktick, latency p50/p90/p99 = %llu/%llu/%llu ticks\n",
      static_cast<unsigned long long>(makespan), offered_per_ktick,
      deals_per_ktick,
      static_cast<unsigned long long>(latency_p50),
      static_cast<unsigned long long>(latency_p90),
      static_cast<unsigned long long>(latency_p99));
  s += line;
  std::snprintf(
      line, sizeof(line),
      "gas total=%llu untagged=%llu p50=%llu p99=%llu, messages=%llu, "
      "events=%llu, max_backlog=%zu (at tick %llu)\nfingerprint=%016llx\n",
      static_cast<unsigned long long>(total_gas),
      static_cast<unsigned long long>(untagged_gas),
      static_cast<unsigned long long>(gas_p50),
      static_cast<unsigned long long>(gas_p99),
      static_cast<unsigned long long>(total_messages),
      static_cast<unsigned long long>(events_executed), max_backlog,
      static_cast<unsigned long long>(peak_backlog_at),
      static_cast<unsigned long long>(fingerprint));
  s += line;
  for (const TrafficViolation& v : violations) {
    std::snprintf(line, sizeof(line),
                  "VIOLATION deal=%zu seed=%llu protocol=%s: %s\n",
                  v.deal_index, static_cast<unsigned long long>(v.seed),
                  ToString(v.protocol), v.what.c_str());
    s += line;
  }
  for (const DoubleSpendIncident& i : double_spends) {
    std::snprintf(line, sizeof(line),
                  "DOUBLE-SPEND party=%u funded deal %zu, bounced in deal "
                  "%zu (seed=%llu)\n",
                  i.party, i.winner_deal, i.loser_deal,
                  static_cast<unsigned long long>(i.seed));
    s += line;
  }
  return s;
}

// ===========================================================================
// TrafficService: the engine as a long-lived process with epochs,
// checkpoint/restore, and crash-recovery.
// ===========================================================================

namespace {

/// The fold every fingerprint in the engine starts from (RunTraffic uses the
/// same constant; service-mode fingerprints are a separate domain because
/// the epoch header is folded before any deal).
constexpr uint64_t kFpInit = 0x452821E638D01377ULL;

/// Snapshot envelope framing.
constexpr char kSnapshotMagic[8] = {'X', 'D', 'S', 'N', 'A', 'P', '0', '1'};
constexpr uint32_t kSnapshotVersion = 1;

Status ValidateServiceOptions(const TrafficOptions& options) {
  if (options.deals_per_epoch == 0) {
    return Status::InvalidArgument(
        "service mode requires deals_per_epoch > 0");
  }
  if (!options.indexed_observation) {
    return Status::InvalidArgument(
        "service mode requires indexed_observation: broadcast delivery "
        "draws sequential RNG for observers of settled deals that do not "
        "exist after a restore, so broadcast runs cannot resume "
        "bit-identically");
  }
  if (options.admission.enabled) {
    return Status::InvalidArgument(
        "service mode does not support the admission controller "
        "(controller state is not checkpointable)");
  }
  return Status::OK();
}

/// Order-sensitive fold over every workload-defining option. Stamped into
/// the snapshot envelope so a restore under different options is rejected
/// instead of silently diverging. num_threads is deliberately excluded:
/// validation threading must not affect results, and restoring under a
/// different thread count is a supported (and tested) configuration.
uint64_t OptionsFingerprint(const TrafficOptions& o) {
  uint64_t fp = 0x9E3779B97F4A7C15ULL;
  auto mix = [&fp](uint64_t v) { fp = MixFingerprint(fp, v); };
  mix(o.base_seed);
  mix(o.num_deals);
  mix(o.num_chains);
  mix(o.cbc_shards);
  mix(o.cbc_xshard_every);
  mix(o.cbc_reconfig_times.size());
  for (Tick t : o.cbc_reconfig_times) mix(t);
  mix(o.stale_proof_deals.size());
  for (size_t d : o.stale_proof_deals) mix(d);
  mix(o.block_capacity);
  mix(o.block_interval);
  mix(o.admission_gap);
  mix(o.delta);
  mix(static_cast<uint64_t>(o.arrival));
  mix(static_cast<uint64_t>(o.mean_interarrival * 1024.0));
  mix(o.admission.enabled ? 1 : 0);
  mix(o.min_parties);
  mix(o.max_parties);
  mix(o.min_assets);
  mix(o.max_assets);
  mix(o.extra_transfers);
  mix(o.nft_every);
  mix(o.protocol_mix.size());
  for (Protocol p : o.protocol_mix) mix(static_cast<uint64_t>(p));
  mix(o.double_spend_deals.size());
  for (size_t d : o.double_spend_deals) mix(d);
  mix(o.offline_party_deals.size());
  for (size_t d : o.offline_party_deals) mix(d);
  mix(o.watchtower_every);
  mix(o.brokers.num_brokers);
  mix(o.brokers.broker_every);
  mix(o.brokers.working_capital);
  mix(o.brokers.inventory);
  mix(o.brokers.min_units);
  mix(o.brokers.max_units);
  mix(o.brokers.unit_price);
  mix(o.brokers.unit_margin);
  mix(o.brokers.hop_depth);
  mix(o.brokers.margin_slope);
  mix(o.indexed_observation ? 1 : 0);
  mix(o.fullscan_oracle ? 1 : 0);
  mix(o.deals_per_epoch);
  mix(o.tower_crash_every);
  mix(o.tower_crash_after);
  mix(o.tower_recover_after);
  mix(o.broker_crash_times.size());
  for (Tick t : o.broker_crash_times) mix(t);
  mix(o.broker_recover_after);
  return fp;
}

}  // namespace

struct TrafficService::Impl {
  TrafficOptions options;
  size_t num_chains = 1;
  std::vector<Protocol> mix;
  bool any_cbc = false;
  std::set<size_t> double_spend;
  std::set<size_t> offline;
  std::set<size_t> stale_proof;

  std::unique_ptr<DealEnv> env;
  std::vector<ChainId> pool;
  std::unique_ptr<BrokerPool> broker_pool;
  std::unique_ptr<CbcService> cbc_service;
  TimelockDriver timelock_driver;
  std::unique_ptr<CbcDriver> cbc_driver;
  /// Towers armed this session; old towers stay subscribed but are inert
  /// (their tags never recur under indexed delivery).
  std::vector<std::unique_ptr<Watchtower>> towers;
  PartyId tower_operator;

  // --- cross-epoch state (everything here lands in the checkpoint) ---
  size_t next_deal = 0;
  size_t epochs_run = 0;
  uint64_t towers_armed = 0;
  uint64_t cbc_seen = 0;
  uint64_t cumulative_fp = kFpInit;
  size_t total_committed = 0;
  size_t total_aborted = 0;
  size_t total_timelock = 0;
  size_t total_cbc = 0;
  size_t total_broker_deals = 0;
  size_t total_cross_shard = 0;
  size_t total_stale = 0;
  size_t total_double_spends = 0;
  uint64_t total_gas = 0;
  uint64_t total_untagged = 0;
  uint64_t total_messages = 0;
  Tick makespan = 0;
  std::vector<EpochReport> reports;
  std::vector<TrafficViolation> violations;
  std::vector<BrokerDealOutcome> outcomes;

  /// Per-chain scan-start index: the epoch seal scans only receipts this
  /// epoch produced. NOT serialized — a restored chain starts with an empty
  /// receipt vector, so both paths scan exactly the new epoch's receipts.
  std::vector<size_t> receipt_cursor;

  void RegisterHandlers() {
    Scheduler& sched = env->world().scheduler();
    Impl* self = this;
    sched.RegisterDurableHandler("cbc-reconfig", [self](uint64_t shard) {
      if (self->cbc_service != nullptr) {
        self->cbc_service->Reconfigure(static_cast<size_t>(shard));
      }
    });
    sched.RegisterDurableHandler("broker-crash", [self](uint64_t b) {
      self->broker_pool->CrashBroker(static_cast<size_t>(b));
    });
    sched.RegisterDurableHandler("broker-recover", [self](uint64_t b) {
      self->broker_pool->RecoverBroker(static_cast<size_t>(b));
    });
  }

  /// Shared construction tail of Create and FromSnapshot: the pieces that
  /// are pure functions of the options.
  void InitDerived() {
    num_chains = std::max<size_t>(1, options.num_chains);
    mix = options.protocol_mix.empty()
              ? std::vector<Protocol>{Protocol::kTimelock}
              : options.protocol_mix;
    for (Protocol p : mix) any_cbc = any_cbc || p == Protocol::kCbc;
    double_spend = std::set<size_t>(options.double_spend_deals.begin(),
                                    options.double_spend_deals.end());
    offline = std::set<size_t>(options.offline_party_deals.begin(),
                               options.offline_party_deals.end());
    stale_proof = std::set<size_t>(options.stale_proof_deals.begin(),
                                   options.stale_proof_deals.end());
  }

  CbcService::Options CbcOptions() const {
    CbcService::Options service_options;
    service_options.num_shards = std::max<size_t>(1, options.cbc_shards);
    service_options.f = 1;
    service_options.chain_name = "cbc";
    service_options.validator_seed =
        "traffic-" + std::to_string(options.base_seed);
    service_options.block_interval = options.block_interval;
    service_options.block_capacity = options.block_capacity;
    return service_options;
  }

  void MakeCbcDriver() {
    CbcDriver::Options cbc_options;
    cbc_options.abort_patience =
        std::max(cbc_options.abort_patience, options.delta);
    cbc_driver = std::make_unique<CbcDriver>(cbc_service.get(), cbc_options);
  }

  EpochReport RunEpoch();
  Result<Bytes> DoCheckpoint();
  ServiceReport BuildFinal() const;
};

TrafficService::TrafficService() : impl_(new Impl) {}
TrafficService::~TrafficService() = default;

Result<std::unique_ptr<TrafficService>> TrafficService::Create(
    const TrafficOptions& options) {
  Status valid = ValidateServiceOptions(options);
  if (!valid.ok()) return valid;

  auto service = std::unique_ptr<TrafficService>(new TrafficService());
  Impl& im = *service->impl_;
  im.options = options;
  im.InitDerived();

  EnvConfig env_config;
  env_config.seed = options.base_seed;
  env_config.block_interval = options.block_interval;
  im.env = std::make_unique<DealEnv>(std::move(env_config));
  World& world = im.env->world();
  world.set_observation_delivery(ObservationDelivery::kIndexed);

  for (size_t c = 0; c < im.num_chains; ++c) {
    ChainId id = im.env->AddChain("pool-" + std::to_string(c));
    world.chain(id)->set_max_txs_per_block(options.block_capacity);
    im.pool.push_back(id);
  }
  im.broker_pool =
      std::make_unique<BrokerPool>(im.env.get(), options.brokers, im.pool);
  if (im.any_cbc) {
    im.cbc_service = std::make_unique<CbcService>(&world, im.CbcOptions());
    im.MakeCbcDriver();
  }
  if (options.watchtower_every > 0) {
    im.tower_operator = im.env->AddParty("watchtower");
  }
  im.receipt_cursor.assign(world.num_chains(), 0);
  im.RegisterHandlers();

  // Cross-epoch work is scheduled DURABLY so it survives a checkpoint: a
  // validator rotation or broker kill three epochs out re-fires at the
  // original (time, seq) position in a restored run.
  Scheduler& sched = world.scheduler();
  if (im.cbc_service != nullptr) {
    for (Tick t : options.cbc_reconfig_times) {
      for (size_t s = 0; s < im.cbc_service->num_shards(); ++s) {
        sched.ScheduleDurableAt(t, EventLabel{}, "cbc-reconfig", s);
      }
    }
  }
  if (im.broker_pool->enabled() && !options.broker_crash_times.empty()) {
    const size_t num_brokers = im.broker_pool->num_brokers();
    for (size_t i = 0; i < options.broker_crash_times.size(); ++i) {
      const uint64_t b = i % num_brokers;
      sched.ScheduleDurableAt(options.broker_crash_times[i], EventLabel{},
                              "broker-crash", b);
      if (options.broker_recover_after > 0) {
        sched.ScheduleDurableAt(
            options.broker_crash_times[i] + options.broker_recover_after,
            EventLabel{}, "broker-recover", b);
      }
    }
  }
  return service;
}

EpochReport TrafficService::Impl::RunEpoch() {
  World& world = env->world();
  Scheduler& sched = world.scheduler();
  const size_t first = next_deal;
  const size_t count = options.deals_per_epoch;
  const Tick epoch_base = world.now();

  // The global arrival schedule is a pure function of (process, base_seed)
  // over the deal-index prefix; the epoch re-anchors its slice at the
  // current clock. Offsets are identical whether the run was restored at
  // this boundary or ran straight through.
  std::vector<Tick> arrivals = BuildArrivalSchedule(
      options.arrival, first + count, options.base_seed,
      options.arrival == ArrivalProcess::kFixedStagger
          ? static_cast<double>(options.admission_gap)
          : options.mean_interarrival);

  // Runtimes and checkers live exactly as long as the epoch: every deal in
  // it settles before the seal, and the broker pool prunes every escrow-view
  // pointer at the boundary, so nothing dangles into the next epoch.
  Arena arena;
  std::vector<DealSlot> slots(count);

  auto deploy_deal = [this, &world, &slots, &arena, first](size_t i,
                                                           Tick admit_time) {
    DealSlot& slot = slots[i];
    TrafficDealRecord& rec = slot.rec;
    rec.admitted_at = admit_time;

    DealTimings timings = DealTimings::DefaultsFor(rec.protocol);
    timings.ShiftBy(admit_time);
    timings.delta = options.delta;
    // Deal tags are GLOBAL (index + 1) so gas attribution and indexed
    // observation stay collision-free across the whole service lifetime.
    timings.deal_tag = static_cast<uint64_t>(first + i) + 1;

    ProtocolDriver& driver = rec.protocol == Protocol::kCbc
                                 ? static_cast<ProtocolDriver&>(*cbc_driver)
                                 : timelock_driver;
    slot.runtime = driver.CreateDealIn(&arena, &world, slot.spec, timings,
                                       &slot.factory);
    Status started = slot.runtime->Deploy();
    if (!started.ok()) {
      rec.violation = "start-failed: " + started.ToString();
      return;
    }
    slot.checker = arena.Create<DealChecker>(
        &world, slot.spec, slot.runtime->escrow_contracts(),
        timings.deal_tag);
    if (rec.broker != 0) {
      for (PartyId p : broker_pool->SharedPartiesOf(first + i)) {
        slot.checker->MarkSharedParty(p);
      }
    }
    slot.checker->CaptureInitial();
    rec.started = true;
  };

  // --- generation: the same per-deal pipeline as RunTraffic, indexed
  //     globally so derived seeds, protocol mix, injections, and broker
  //     round-robin are continuations of the stream every prior epoch drew
  //     from ---
  for (size_t i = 0; i < count; ++i) {
    const size_t d = first + i;
    DealSlot& slot = slots[i];
    TrafficDealRecord& rec = slot.rec;
    rec.index = d;
    rec.seed = TrafficDealSeed(options.base_seed, d);
    rec.protocol = mix[d % mix.size()];
    rec.arrival_at = epoch_base + (arrivals[d] - arrivals[first]);
    rec.admitted_at = rec.arrival_at;
    Rng rng(rec.seed);

    // Double-spend hosts must live in the same epoch (the injected swap
    // re-promises the host's tokens; the host's slot must still be open).
    const bool inject = double_spend.count(d) > 0 && i > 0 &&
                        double_spend.count(d - 1) == 0;
    if (inject) {
      slot.spec = BuildDoubleSpendSpec(env.get(), slots[i - 1], d, rec.seed,
                                       num_chains, &rng);
      PartyId adversary = slot.spec.parties[0];
      slot.has_adversary = true;
      slot.adversary = adversary;
      rec.tainted = true;
      slots[i - 1].has_adversary = true;
      slots[i - 1].adversary = adversary;
      slots[i - 1].rec.tainted = true;
    } else if (broker_pool->IsBrokerDeal(d)) {
      rec.broker = broker_pool->BrokerOf(d) + 1;
      slot.spec = broker_pool->MakeDeal(d, rec.seed);
      rec.broker_capital_need = broker_pool->CapitalNeed(d);
      rec.broker_inventory_need = broker_pool->InventoryNeed(d);
    } else {
      GenParams gen;
      gen.n_parties = options.min_parties +
                      rng.Below(options.max_parties - options.min_parties + 1);
      gen.m_assets = options.min_assets +
                     rng.Below(options.max_assets - options.min_assets + 1);
      gen.t_transfers = gen.n_parties + (gen.m_assets - 1) +
                        rng.Below(options.extra_transfers + 1);
      gen.nft_every = options.nft_every;
      gen.seed = rec.seed;
      gen.name_prefix = "d" + std::to_string(d) + "-";
      const bool xshard = rec.protocol == Protocol::kCbc &&
                          options.cbc_xshard_every > 0 &&
                          cbc_service != nullptr &&
                          cbc_seen % options.cbc_xshard_every == 0;
      if (xshard) {
        const size_t num_shards = cbc_service->num_shards();
        size_t span = std::min(gen.m_assets, num_shards);
        size_t start = rng.Below(num_shards);
        for (size_t j = 0; j < span; ++j) {
          gen.use_chains.push_back(
              cbc_service->chain((start + j) % num_shards));
        }
        gen.num_chains = span;
      } else {
        size_t span = std::min(gen.m_assets, num_chains);
        size_t start = rng.Below(num_chains);
        for (size_t j = 0; j < span; ++j) {
          gen.use_chains.push_back(pool[(start + j) % num_chains]);
        }
        gen.num_chains = span;
      }
      slot.spec = GenerateRandomDeal(env.get(), gen);
    }
    if (rec.protocol == Protocol::kCbc) ++cbc_seen;
    if (rec.protocol == Protocol::kCbc && cbc_service != nullptr &&
        !slot.spec.assets.empty()) {
      std::vector<ChainId> asset_chains;
      asset_chains.reserve(slot.spec.assets.size());
      for (const AssetRef& a : slot.spec.assets) {
        asset_chains.push_back(a.chain);
      }
      rec.cross_shard =
          cbc_service->PlaceAssets(slot.spec.deal_id, asset_chains)
              .cross_shard();
    }
    rec.parties = slot.spec.NumParties();
    rec.assets = slot.spec.NumAssets();
    rec.transfers = slot.spec.NumTransfers();

    if (rec.protocol == Protocol::kHtlc) {
      rec.violation = "start-failed: htlc has no traffic driver";
      continue;
    }

    TrafficPartyFactory& factory = slot.factory;
    if (offline.count(d) > 0 && !inject &&
        rec.protocol == Protocol::kTimelock && !slot.spec.escrows.empty()) {
      factory.offline = true;
      factory.offline_party = slot.spec.escrows[0].party;
      slot.has_adversary = true;
      slot.adversary = factory.offline_party;
      rec.tainted = true;
    }
    if (stale_proof.count(d) > 0 && !inject && rec.broker == 0 &&
        rec.protocol == Protocol::kCbc && !slot.spec.escrows.empty()) {
      factory.stale_proof = true;
      factory.stale_party = slot.spec.escrows[0].party;
      slot.has_adversary = true;
      slot.adversary = factory.stale_party;
      rec.tainted = true;
    }
    if (options.watchtower_every > 0 &&
        d % options.watchtower_every == 0 &&
        rec.protocol == Protocol::kTimelock) {
      factory.arm_tower = true;
      factory.world = &world;
      factory.tower_operator = tower_operator;
      factory.towers = &towers;
      factory.tower_crash_every = options.tower_crash_every;
      factory.tower_crash_after = options.tower_crash_after;
      factory.tower_recover_after = options.tower_recover_after;
      factory.towers_armed = &towers_armed;
    }
    if (rec.broker != 0) {
      factory.broker_pool = broker_pool.get();
      factory.deal_index = d;
    }
    deploy_deal(i, rec.admitted_at);
  }

  // --- drive to the quiescent boundary: every non-durable event fires
  //     (tower refund watches and crash/recovery closures included); only
  //     future durable events may remain pending. Durable events whose time
  //     falls inside the epoch fire in time order like any other. ---
  while (sched.pending() > sched.pending_durable()) sched.Step();
  const Tick sealed_at = world.now();

  // --- evidence scans, receipt-cursor-scoped to this epoch's window ---
  if (broker_pool->enabled()) {
    TaintBouncedBrokerEscrows(world, &slots, *broker_pool, &receipt_cursor);
  }
  size_t epoch_stale = 0;
  if (cbc_service != nullptr) {
    std::map<std::pair<uint32_t, uint32_t>, size_t> site;  // -> local slot
    for (size_t i = 0; i < count; ++i) {
      const DealSlot& slot = slots[i];
      if (!slot.rec.started || slot.rec.protocol != Protocol::kCbc) continue;
      const std::vector<ContractId>& escrows =
          slot.runtime->escrow_contracts();
      for (uint32_t a = 0; a < slot.spec.NumAssets(); ++a) {
        site[{slot.spec.assets[a].chain.v, escrows[a].v}] = i;
      }
    }
    for (uint32_t c = 0; c < world.num_chains(); ++c) {
      const std::vector<Receipt>& all = world.chain(ChainId{c})->receipts();
      for (size_t ri = receipt_cursor[c]; ri < all.size(); ++ri) {
        const Receipt& r = all[ri];
        if (r.tag != "decide" || r.status.ok()) continue;
        if (r.status.ToString().find("shard mismatch") == std::string::npos) {
          continue;
        }
        ++epoch_stale;
        auto it = site.find({r.chain.v, r.contract.v});
        if (it == site.end()) continue;
        DealSlot& slot = slots[it->second];
        slot.has_adversary = true;
        slot.adversary = r.sender;
        slot.rec.tainted = true;
      }
    }
  }

  // Gas/receipt attribution over this epoch's window. Tags outside the
  // epoch's global range are leakage (a conformant engine keeps it zero:
  // every old deal settled before its epoch sealed).
  std::vector<uint64_t> gas_by(count, 0);
  std::vector<uint64_t> messages_by(count, 0);
  uint64_t epoch_untagged = 0;
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    const std::vector<Receipt>& all = world.chain(ChainId{c})->receipts();
    for (size_t ri = receipt_cursor[c]; ri < all.size(); ++ri) {
      const Receipt& r = all[ri];
      if (r.deal_tag <= first || r.deal_tag > first + count) {
        epoch_untagged += r.gas_used;
        continue;
      }
      gas_by[r.deal_tag - first - 1] += r.gas_used;
      ++messages_by[r.deal_tag - first - 1];
    }
  }
  for (size_t i = 0; i < count; ++i) {
    slots[i].rec.gas = gas_by[i];
    slots[i].rec.messages = messages_by[i];
  }

  // --- validate: parallel, read-only, per-slot; identical across any
  //     thread count ---
  WorkerPool workers(options.num_threads);
  workers.ParallelFor(count, [&slots](size_t i) { ValidateDeal(&slots[i]); });

  std::vector<DoubleSpendIncident> incidents =
      DetectDoubleSpends(world, slots, &receipt_cursor);

  // --- seal: fold the epoch fingerprint (same per-deal shape as RunTraffic,
  //     with the open-loop fields always folded and an epoch header in
  //     front), chain it into the cumulative fold, accumulate totals ---
  const bool broker_fp = broker_pool->enabled();
  const bool hopchain_fp =
      broker_pool->enabled() &&
      (broker_pool->ChainDepth() > 1 || broker_pool->DynamicPricing());
  const bool xshard_fp = options.cbc_xshard_every > 0;

  EpochReport epoch;
  epoch.index = epochs_run;
  epoch.first_deal = first;
  epoch.num_deals = count;
  const size_t violations_before = violations.size();

  std::vector<Tick> latencies;
  uint64_t fp = kFpInit;
  fp = MixFingerprint(fp, epochs_run);
  fp = MixFingerprint(fp, first);
  fp = MixFingerprint(fp, count);
  fp = MixFingerprint(fp, epoch_base);
  for (size_t i = 0; i < count; ++i) {
    TrafficDealRecord& rec = slots[i].rec;
    if (rec.protocol == Protocol::kTimelock) {
      ++total_timelock;
    } else {
      ++total_cbc;
    }
    if (rec.committed) {
      ++epoch.committed;
      ++total_committed;
    }
    if (rec.aborted) {
      ++epoch.aborted;
      ++total_aborted;
    }
    epoch.gas += rec.gas;
    total_gas += rec.gas;
    total_messages += rec.messages;
    makespan = std::max(makespan, rec.settle_time);
    if (rec.all_settled && rec.settle_time > 0) {
      latencies.push_back(rec.latency);
    }
    if (!rec.violation.empty()) {
      violations.push_back(
          TrafficViolation{rec.index, rec.seed, rec.protocol, rec.violation});
    }

    fp = MixFingerprint(fp, rec.index);
    fp = MixFingerprint(fp, rec.seed);
    fp = MixFingerprint(fp, static_cast<uint64_t>(rec.started) |
                                static_cast<uint64_t>(rec.committed) << 1 |
                                static_cast<uint64_t>(rec.aborted) << 2 |
                                static_cast<uint64_t>(rec.mixed) << 3 |
                                static_cast<uint64_t>(rec.all_settled) << 4 |
                                static_cast<uint64_t>(rec.atomic) << 5 |
                                static_cast<uint64_t>(rec.safety_ok) << 6 |
                                static_cast<uint64_t>(rec.weak_liveness_ok)
                                    << 7 |
                                static_cast<uint64_t>(rec.strong_liveness_ok)
                                    << 8 |
                                static_cast<uint64_t>(rec.tainted) << 9);
    fp = MixFingerprint(fp, rec.gas);
    fp = MixFingerprint(fp, rec.messages);
    fp = MixFingerprint(fp, rec.settle_time);
    fp = MixFingerprint(fp, FingerprintString(rec.violation));
    fp = MixFingerprint(fp, rec.arrival_at);
    fp = MixFingerprint(fp, rec.admitted_at);
    if (broker_fp) {
      if (rec.broker != 0) ++total_broker_deals;
      fp = MixFingerprint(fp, rec.broker);
      fp = MixFingerprint(fp, rec.broker_capital_need);
      fp = MixFingerprint(fp, rec.broker_inventory_need);
    }
    if (rec.broker != 0) {
      rec.price_points = broker_pool->PricePointsOf(rec.index);
    }
    if (rec.cross_shard) ++total_cross_shard;
    if (hopchain_fp) {
      fp = MixFingerprint(fp, rec.price_points.size());
      for (const BrokerPool::PricePoint& pt : rec.price_points) {
        fp = MixFingerprint(fp, pt.occupancy);
        fp = MixFingerprint(fp, pt.margin);
      }
    }
    if (xshard_fp) {
      fp = MixFingerprint(fp, rec.cross_shard ? 1 : 0);
    }

    if (rec.broker != 0) {
      BrokerDealOutcome outcome;
      outcome.deal_index = rec.index;
      outcome.arrival_at = rec.arrival_at;
      outcome.admitted_at = rec.admitted_at;
      outcome.settle_time = rec.settle_time;
      outcome.latency = rec.latency;
      outcome.started = rec.started;
      outcome.committed = rec.committed;
      outcome.aborted = rec.aborted;
      outcome.shed = rec.shed;
      outcome.all_settled = rec.all_settled;
      outcome.gas = rec.gas;
      outcomes.push_back(outcome);
    }
  }
  fp = MixFingerprint(fp, epoch_stale);
  fp = MixFingerprint(fp, epoch_untagged);
  for (const DoubleSpendIncident& incident : incidents) {
    fp = MixFingerprint(fp, incident.loser_deal);
    fp = MixFingerprint(fp, incident.winner_deal);
    fp = MixFingerprint(fp, incident.party);
  }
  fp = MixFingerprint(fp, sealed_at);

  epoch.violations = violations.size() - violations_before;
  epoch.double_spends = incidents.size();
  epoch.stale_decide_rejections = epoch_stale;
  epoch.untagged_gas = epoch_untagged;
  epoch.latency_p50 = Percentile(latencies, 50);
  epoch.latency_p99 = Percentile(latencies, 99);
  epoch.sealed_at = sealed_at;
  epoch.events_executed = sched.stats().executed;
  epoch.epoch_fingerprint = fp;
  total_stale += epoch_stale;
  total_untagged += epoch_untagged;
  total_double_spends += incidents.size();
  cumulative_fp = MixFingerprint(cumulative_fp, fp);
  epoch.cumulative_fingerprint = cumulative_fp;

  // --- boundary hygiene: every reservation's deposit has landed or settled
  //     by quiescence, so the pool drops its runtime pointers before the
  //     arena (and the epoch's runtimes) die; cursors advance so the next
  //     seal scans only its own window. ---
  broker_pool->PruneAll();
  receipt_cursor.resize(world.num_chains(), 0);
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    receipt_cursor[c] = world.chain(ChainId{c})->receipts().size();
  }

  ++epochs_run;
  next_deal = first + count;
  reports.push_back(epoch);
  return epoch;
}

Result<Bytes> TrafficService::Impl::DoCheckpoint() {
  World& world = env->world();
  broker_pool->PruneAll();

  ByteWriter body;
  ByteWriter world_writer;
  Status world_ok = world.Checkpoint(&world_writer);
  if (!world_ok.ok()) return world_ok;
  body.Blob(world_writer.Take());

  body.U64(next_deal)
      .U64(epochs_run)
      .U64(towers_armed)
      .U64(cbc_seen)
      .U64(cumulative_fp)
      .U64(total_committed)
      .U64(total_aborted)
      .U64(total_timelock)
      .U64(total_cbc)
      .U64(total_broker_deals)
      .U64(total_cross_shard)
      .U64(total_stale)
      .U64(total_double_spends)
      .U64(total_gas)
      .U64(total_untagged)
      .U64(total_messages)
      .U64(makespan)
      .U32(tower_operator.v);

  body.U32(static_cast<uint32_t>(pool.size()));
  for (ChainId id : pool) body.U32(id.v);

  body.U32(static_cast<uint32_t>(reports.size()));
  for (const EpochReport& e : reports) {
    body.U64(e.index)
        .U64(e.first_deal)
        .U64(e.num_deals)
        .U64(e.committed)
        .U64(e.aborted)
        .U64(e.violations)
        .U64(e.double_spends)
        .U64(e.stale_decide_rejections)
        .U64(e.gas)
        .U64(e.untagged_gas)
        .U64(e.latency_p50)
        .U64(e.latency_p99)
        .U64(e.sealed_at)
        .U64(e.events_executed)
        .U64(e.epoch_fingerprint)
        .U64(e.cumulative_fingerprint);
  }

  body.U32(static_cast<uint32_t>(violations.size()));
  for (const TrafficViolation& v : violations) {
    body.U64(v.deal_index)
        .U64(v.seed)
        .U8(static_cast<uint8_t>(v.protocol))
        .Str(v.what);
  }

  body.U32(static_cast<uint32_t>(outcomes.size()));
  for (const BrokerDealOutcome& o : outcomes) {
    body.U64(o.deal_index)
        .U64(o.arrival_at)
        .U64(o.admitted_at)
        .U64(o.settle_time)
        .U64(o.latency)
        .U64(o.gas)
        .Bool(o.started)
        .Bool(o.committed)
        .Bool(o.aborted)
        .Bool(o.shed)
        .Bool(o.all_settled);
  }

  body.Bool(cbc_service != nullptr);
  if (cbc_service != nullptr) {
    std::vector<uint32_t> shard_epochs = cbc_service->ShardEpochs();
    body.U32(static_cast<uint32_t>(shard_epochs.size()));
    for (uint32_t e : shard_epochs) body.U32(e);
  }

  body.Bool(broker_pool->enabled());
  if (broker_pool->enabled()) {
    ByteWriter pool_writer;
    Status pool_ok = broker_pool->Checkpoint(&pool_writer);
    if (!pool_ok.ok()) return pool_ok;
    body.Blob(pool_writer.Take());
  }

  Bytes payload = body.Take();
  Hash256 digest = Sha256Digest(payload);
  ByteWriter envelope;
  envelope.Raw(reinterpret_cast<const uint8_t*>(kSnapshotMagic),
               sizeof(kSnapshotMagic));
  envelope.U32(kSnapshotVersion);
  envelope.U64(OptionsFingerprint(options));
  envelope.Blob(payload);
  envelope.Raw(digest.bytes.data(), digest.bytes.size());
  return envelope.Take();
}

Result<std::unique_ptr<TrafficService>> TrafficService::FromSnapshot(
    const TrafficOptions& options, const Bytes& snapshot) {
  Status valid = ValidateServiceOptions(options);
  if (!valid.ok()) return valid;

  // --- envelope: every rejection is a distinct, versioned error; a
  //     corrupted snapshot must never restore into a silently diverging
  //     run ---
  ByteReader envelope(snapshot);
  XDEAL_ASSIGN_OR_RETURN(Bytes magic, envelope.Raw(sizeof(kSnapshotMagic)));
  if (std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument(
        "snapshot rejected: bad magic (not an XDSNAP stream)");
  }
  XDEAL_ASSIGN_OR_RETURN(uint32_t version, envelope.U32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot rejected: unsupported snapshot version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kSnapshotVersion) + ")");
  }
  XDEAL_ASSIGN_OR_RETURN(uint64_t options_fp, envelope.U64());
  if (options_fp != OptionsFingerprint(options)) {
    return Status::InvalidArgument(
        "snapshot rejected: options fingerprint mismatch (the snapshot was "
        "taken under different TrafficOptions)");
  }
  XDEAL_ASSIGN_OR_RETURN(Bytes payload, envelope.Blob());
  XDEAL_ASSIGN_OR_RETURN(Bytes digest, envelope.Raw(32));
  Hash256 expected = Sha256Digest(payload);
  if (std::memcmp(digest.data(), expected.bytes.data(), 32) != 0) {
    return Status::InvalidArgument(
        "snapshot rejected: payload digest mismatch (corrupted snapshot)");
  }

  auto service = std::unique_ptr<TrafficService>(new TrafficService());
  Impl& im = *service->impl_;
  im.options = options;
  im.InitDerived();

  EnvConfig env_config;
  env_config.seed = options.base_seed;
  env_config.block_interval = options.block_interval;
  im.env = std::make_unique<DealEnv>(std::move(env_config));
  World& world = im.env->world();

  ByteReader body(payload);
  XDEAL_ASSIGN_OR_RETURN(Bytes world_blob, body.Blob());
  ByteReader world_reader(world_blob);
  // Layering: the chain library cannot name contract types, so the caller
  // supplies the factory. Only token ledgers snapshot full state; every
  // other contract belonged to a settled deal and restores as a retired
  // placeholder (preserving ContractId numbering).
  Status restored = world.Restore(
      world_reader, [](const std::string& type) -> std::unique_ptr<Contract> {
        if (type == "FungibleToken") {
          return std::make_unique<FungibleToken>("", PartyId{});
        }
        return nullptr;
      });
  if (!restored.ok()) return restored;

  XDEAL_ASSIGN_OR_RETURN(uint64_t next_deal, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t epochs_run, body.U64());
  XDEAL_ASSIGN_OR_RETURN(im.towers_armed, body.U64());
  XDEAL_ASSIGN_OR_RETURN(im.cbc_seen, body.U64());
  XDEAL_ASSIGN_OR_RETURN(im.cumulative_fp, body.U64());
  im.next_deal = static_cast<size_t>(next_deal);
  im.epochs_run = static_cast<size_t>(epochs_run);
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_committed, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_aborted, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_timelock, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_cbc, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_broker_deals, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_cross_shard, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_stale, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint64_t total_double_spends, body.U64());
  im.total_committed = static_cast<size_t>(total_committed);
  im.total_aborted = static_cast<size_t>(total_aborted);
  im.total_timelock = static_cast<size_t>(total_timelock);
  im.total_cbc = static_cast<size_t>(total_cbc);
  im.total_broker_deals = static_cast<size_t>(total_broker_deals);
  im.total_cross_shard = static_cast<size_t>(total_cross_shard);
  im.total_stale = static_cast<size_t>(total_stale);
  im.total_double_spends = static_cast<size_t>(total_double_spends);
  XDEAL_ASSIGN_OR_RETURN(im.total_gas, body.U64());
  XDEAL_ASSIGN_OR_RETURN(im.total_untagged, body.U64());
  XDEAL_ASSIGN_OR_RETURN(im.total_messages, body.U64());
  XDEAL_ASSIGN_OR_RETURN(im.makespan, body.U64());
  XDEAL_ASSIGN_OR_RETURN(uint32_t tower_op, body.U32());
  im.tower_operator = PartyId{tower_op};

  XDEAL_ASSIGN_OR_RETURN(uint32_t pool_size, body.U32());
  for (uint32_t c = 0; c < pool_size; ++c) {
    XDEAL_ASSIGN_OR_RETURN(uint32_t id, body.U32());
    if (id >= world.num_chains()) {
      return Status::InvalidArgument(
          "snapshot rejected: pool chain id out of range");
    }
    im.pool.push_back(ChainId{id});
  }

  XDEAL_ASSIGN_OR_RETURN(uint32_t num_reports, body.U32());
  for (uint32_t i = 0; i < num_reports; ++i) {
    EpochReport e;
    XDEAL_ASSIGN_OR_RETURN(uint64_t index, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t first_deal, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t num_deals, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t committed, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t aborted, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t num_violations, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t num_double_spends, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint64_t stale, body.U64());
    e.index = static_cast<size_t>(index);
    e.first_deal = static_cast<size_t>(first_deal);
    e.num_deals = static_cast<size_t>(num_deals);
    e.committed = static_cast<size_t>(committed);
    e.aborted = static_cast<size_t>(aborted);
    e.violations = static_cast<size_t>(num_violations);
    e.double_spends = static_cast<size_t>(num_double_spends);
    e.stale_decide_rejections = static_cast<size_t>(stale);
    XDEAL_ASSIGN_OR_RETURN(e.gas, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.untagged_gas, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.latency_p50, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.latency_p99, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.sealed_at, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.events_executed, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.epoch_fingerprint, body.U64());
    XDEAL_ASSIGN_OR_RETURN(e.cumulative_fingerprint, body.U64());
    im.reports.push_back(std::move(e));
  }

  XDEAL_ASSIGN_OR_RETURN(uint32_t num_violations, body.U32());
  for (uint32_t i = 0; i < num_violations; ++i) {
    TrafficViolation v;
    XDEAL_ASSIGN_OR_RETURN(uint64_t deal_index, body.U64());
    v.deal_index = static_cast<size_t>(deal_index);
    XDEAL_ASSIGN_OR_RETURN(v.seed, body.U64());
    XDEAL_ASSIGN_OR_RETURN(uint8_t protocol, body.U8());
    v.protocol = static_cast<Protocol>(protocol);
    XDEAL_ASSIGN_OR_RETURN(v.what, body.Str());
    im.violations.push_back(std::move(v));
  }

  XDEAL_ASSIGN_OR_RETURN(uint32_t num_outcomes, body.U32());
  for (uint32_t i = 0; i < num_outcomes; ++i) {
    BrokerDealOutcome o;
    XDEAL_ASSIGN_OR_RETURN(uint64_t deal_index, body.U64());
    o.deal_index = static_cast<size_t>(deal_index);
    XDEAL_ASSIGN_OR_RETURN(o.arrival_at, body.U64());
    XDEAL_ASSIGN_OR_RETURN(o.admitted_at, body.U64());
    XDEAL_ASSIGN_OR_RETURN(o.settle_time, body.U64());
    XDEAL_ASSIGN_OR_RETURN(o.latency, body.U64());
    XDEAL_ASSIGN_OR_RETURN(o.gas, body.U64());
    XDEAL_ASSIGN_OR_RETURN(o.started, body.Bool());
    XDEAL_ASSIGN_OR_RETURN(o.committed, body.Bool());
    XDEAL_ASSIGN_OR_RETURN(o.aborted, body.Bool());
    XDEAL_ASSIGN_OR_RETURN(o.shed, body.Bool());
    XDEAL_ASSIGN_OR_RETURN(o.all_settled, body.Bool());
    im.outcomes.push_back(o);
  }

  XDEAL_ASSIGN_OR_RETURN(bool has_cbc, body.Bool());
  if (has_cbc != im.any_cbc) {
    return Status::InvalidArgument(
        "snapshot rejected: CBC backend presence disagrees with options");
  }
  if (has_cbc) {
    XDEAL_ASSIGN_OR_RETURN(uint32_t num_shards, body.U32());
    std::vector<uint32_t> shard_epochs;
    for (uint32_t s = 0; s < num_shards; ++s) {
      XDEAL_ASSIGN_OR_RETURN(uint32_t epoch, body.U32());
      shard_epochs.push_back(epoch);
    }
    // Validator keys and reconfiguration certificates are pure functions of
    // (seed, epoch): Attach replays Reconfigure() per shard until the
    // recorded epoch, rebuilding bit-identical sets and history.
    im.cbc_service = CbcService::Attach(&world, im.CbcOptions(), shard_epochs);
    if (im.cbc_service == nullptr) {
      return Status::InvalidArgument(
          "snapshot rejected: restored world is missing CBC shard chains");
    }
    im.MakeCbcDriver();
  }

  XDEAL_ASSIGN_OR_RETURN(bool has_brokers, body.Bool());
  im.broker_pool = std::make_unique<BrokerPool>(
      im.env.get(), options.brokers, BrokerPool::AttachTag{});
  if (has_brokers != im.broker_pool->enabled()) {
    return Status::InvalidArgument(
        "snapshot rejected: broker pool presence disagrees with options");
  }
  if (has_brokers) {
    XDEAL_ASSIGN_OR_RETURN(Bytes pool_blob, body.Blob());
    ByteReader pool_reader(pool_blob);
    Status pool_ok = im.broker_pool->Restore(pool_reader);
    if (!pool_ok.ok()) return pool_ok;
  }

  // Cursors start at the restored chains' receipt counts (empty: restored
  // chains carry no receipt history), so the next epoch seal scans exactly
  // the receipts it produces — the same window the uninterrupted run scans.
  im.receipt_cursor.assign(world.num_chains(), 0);
  for (uint32_t c = 0; c < world.num_chains(); ++c) {
    im.receipt_cursor[c] = world.chain(ChainId{c})->receipts().size();
  }
  // Durable events were re-imported by World::Restore at their original
  // (time, seq) positions; only their handlers need re-binding.
  im.RegisterHandlers();
  return service;
}

ServiceReport TrafficService::Impl::BuildFinal() const {
  ServiceReport report;
  report.epochs = epochs_run;
  report.deals = next_deal;
  report.committed = total_committed;
  report.aborted = total_aborted;
  report.timelock_deals = total_timelock;
  report.cbc_deals = total_cbc;
  report.broker_deals = total_broker_deals;
  report.cross_shard_deals = total_cross_shard;
  report.stale_decide_rejections = total_stale;
  report.double_spends = total_double_spends;
  report.total_gas = total_gas;
  report.untagged_gas = total_untagged;
  report.total_messages = total_messages;
  report.makespan = makespan;
  report.epoch_reports = reports;
  report.violations = violations;

  uint64_t fp = cumulative_fp;
  if (broker_pool->enabled()) {
    report.brokers = broker_pool->BuildRecords(outcomes);
    for (const BrokerRecord& broker : report.brokers) {
      if (!broker.portfolio_ok) ++report.broker_portfolio_violations;
      fp = MixFingerprint(fp, broker.index);
      fp = MixFingerprint(fp, broker.party);
      fp = MixFingerprint(fp, broker.deals);
      fp = MixFingerprint(fp, broker.committed);
      fp = MixFingerprint(fp, broker.aborted);
      fp = MixFingerprint(fp, broker.shed);
      fp = MixFingerprint(fp, broker.delayed);
      fp = MixFingerprint(fp, broker.gas);
      fp = MixFingerprint(fp, static_cast<uint64_t>(broker.coin_delta));
      fp = MixFingerprint(fp, static_cast<uint64_t>(broker.inventory_delta));
      fp = MixFingerprint(fp, broker.peak_capital_in_use);
      fp = MixFingerprint(fp, broker.peak_inventory_in_use);
      fp = MixFingerprint(fp, broker.portfolio_ok ? 1 : 0);
    }
  }
  report.final_fingerprint = fp;
  return report;
}

EpochReport TrafficService::RunEpoch() { return impl_->RunEpoch(); }
Result<Bytes> TrafficService::Checkpoint() { return impl_->DoCheckpoint(); }
ServiceReport TrafficService::Finish() const { return impl_->BuildFinal(); }
size_t TrafficService::epochs_run() const { return impl_->epochs_run; }
size_t TrafficService::deals_run() const { return impl_->next_deal; }
uint64_t TrafficService::cumulative_fingerprint() const {
  return impl_->cumulative_fp;
}
const std::vector<EpochReport>& TrafficService::epoch_reports() const {
  return impl_->reports;
}

std::string ServiceReport::Summary() const {
  std::string s;
  char line[320];
  std::snprintf(
      line, sizeof(line),
      "service: %zu epochs, %zu deals (timelock=%zu cbc=%zu broker=%zu "
      "xshard=%zu) committed=%zu aborted=%zu\n",
      epochs, deals, timelock_deals, cbc_deals, broker_deals,
      cross_shard_deals, committed, aborted);
  s += line;
  std::snprintf(
      line, sizeof(line),
      "violations=%zu double_spends=%zu stale_decide_rejections=%zu "
      "portfolio_violations=%zu untagged_gas=%llu\n",
      violations.size(), double_spends, stale_decide_rejections,
      broker_portfolio_violations,
      static_cast<unsigned long long>(untagged_gas));
  s += line;
  for (const EpochReport& e : epoch_reports) {
    std::snprintf(
        line, sizeof(line),
        "  epoch %zu: deals [%zu, %zu) committed=%zu aborted=%zu "
        "violations=%zu lat p50/p99=%llu/%llu sealed_at=%llu "
        "fp=%016llx cum=%016llx\n",
        e.index, e.first_deal, e.first_deal + e.num_deals, e.committed,
        e.aborted, e.violations,
        static_cast<unsigned long long>(e.latency_p50),
        static_cast<unsigned long long>(e.latency_p99),
        static_cast<unsigned long long>(e.sealed_at),
        static_cast<unsigned long long>(e.epoch_fingerprint),
        static_cast<unsigned long long>(e.cumulative_fingerprint));
    s += line;
  }
  std::snprintf(
      line, sizeof(line),
      "makespan=%llu ticks, gas=%llu, messages=%llu, "
      "final_fingerprint=%016llx\n",
      static_cast<unsigned long long>(makespan),
      static_cast<unsigned long long>(total_gas),
      static_cast<unsigned long long>(total_messages),
      static_cast<unsigned long long>(final_fingerprint));
  s += line;
  return s;
}

}  // namespace xdeal
