// TrafficEngine: concurrent multi-deal workloads over shared chains.
//
// Where ScenarioSweep runs every scenario in its own World, the traffic
// engine generates D deals (mixed shapes and protocols via deal_gen) that
// all live in ONE World, multiplexed over a shared pool of chains. Deals
// arrive on a schedule — the legacy fixed stagger, or an open-loop seeded
// Poisson process (core/admission.h) — and their protocol phases interleave
// on the single deterministic scheduler, so the engine sees cross-deal
// interference a single-deal sweep cannot: many escrows contending on one
// chain, block-capacity queueing that stretches timelock deadlines, gas
// accounting across deals, and double-spend pressure where one party
// over-commits the same funds to two deals at once.
//
// Protocol dispatch goes through the ProtocolDriver API: every deal is a
// DealRuntime created from one shifted DealTimings schedule, and CBC deals
// execute against a CbcService with `cbc_shards` independent certified
// chains (deals hashed to shards by deal id) — the knob that turns the
// single shared CBC log from the paper into a horizontally scaled backend.
// Watchtowers ride the same PartyFactory hook: with watchtower_every = k,
// every k-th timelock deal is guarded by an always-online relay that also
// claims refunds for parties that went dark.
//
// Every deal is validated with its own DealChecker (Properties 1-3 over its
// compliant parties); failed properties become TrafficViolations carrying
// the deal's derived seed. Escrow receipts are additionally cross-referenced
// between deals to detect cross-deal double-spends from on-chain evidence
// (a party whose escrow pull failed in one deal while the same token funded
// its escrow in another).
//
// With the admission controller enabled the engine becomes an open-loop
// load generator with backpressure: deal deployment moves onto the
// scheduler itself, and each arrival event consults an AdmissionController
// against live scheduler backlog and chain occupancy. Over-threshold deals
// are delayed for a retry quantum and eventually shed; every deal's fate
// (arrival vs admission time, retries, shed) lands in its record so the
// report charts what the policy cost and what it saved.
//
// Determinism contract (matches ScenarioSweep): the simulation itself is
// single-threaded and seed-driven; worker threads only parallelize the
// post-run per-deal validation, writing into per-deal slots that are folded
// in index order. A TrafficReport is therefore bit-identical across thread
// counts, and re-running the same options + base_seed replays every
// violation and incident exactly. With cbc_shards = 1 the engine reproduces
// the pre-sharding fingerprints bit-for-bit, and with the default
// kFixedStagger arrivals + controller off it reproduces the pre-admission
// fingerprints bit-for-bit (deals deploy up front exactly as before).

#ifndef XDEAL_CORE_TRAFFIC_ENGINE_H_
#define XDEAL_CORE_TRAFFIC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/broker_pool.h"
#include "core/protocol_driver.h"
#include "sim/scheduler.h"
#include "util/bytes.h"
#include "util/det.h"
#include "util/result.h"

namespace xdeal {

/// The full workload description of one traffic run: scale, arrival
/// process, admission policy, per-deal shape ranges, protocol mix, broker
/// subsystem, and injections. RunTraffic is a pure function of this struct.
struct TrafficOptions {
  uint64_t base_seed = 1;
  /// D: how many concurrent deals the workload admits.
  size_t num_deals = 100;
  /// Size of the shared chain pool all deals' assets are placed on.
  size_t num_chains = 8;
  /// S: how many certified chains (each with its own validator set) the
  /// CbcService runs; CBC deals are hashed to shards by deal id. 1 = the
  /// paper's single shared CBC.
  size_t cbc_shards = 1;
  /// Cross-shard placement: every k-th CBC deal (k > 0) draws its asset
  /// chains from the CbcService's shard chains instead of the shared pool,
  /// so its assets land on shards other than its home shard and settle via
  /// portable DecideProofs (CbcService::PlaceAssets). 0 = all deal assets
  /// live on pool chains (legacy, single-shard settlement).
  size_t cbc_xshard_every = 0;
  /// Mid-run validator reconfiguration: at each listed tick, every shard of
  /// the CbcService rotates its validator set (epoch + 1). Deals escrowed
  /// before a boundary chain their decide proofs through the service's
  /// reconfiguration history (ReconfigsSince), so in-flight deals settle
  /// across the epoch boundary.
  std::vector<Tick> cbc_reconfig_times;
  /// Cross-shard adversary injection: in each listed CBC deal, the deal's
  /// first escrower replays the home shard's decide evidence declaring the
  /// WRONG shard (CbcStaleShardProofParty). Shard-bound escrows must reject
  /// the replay ("decide: shard mismatch"); the engine counts the
  /// rejections and taints the deal from receipt evidence.
  std::vector<size_t> stale_proof_deals;
  /// Max transactions per block on every chain (0 = unlimited). Finite
  /// capacity turns heavy traffic into real queueing delay — tight enough
  /// values stretch timelock deadlines past Δ and the checker catches it.
  uint64_t block_capacity = 0;
  Tick block_interval = 10;
  /// Deal i is admitted (its phase schedule shifted) at i * admission_gap.
  /// Under kFixedStagger this IS the arrival schedule; under kPoisson it is
  /// ignored in favour of mean_interarrival.
  Tick admission_gap = 20;
  /// The timelock protocol's synchrony bound Δ.
  Tick delta = 120;

  // --- open-loop arrivals + admission control ---
  /// How arrival times are generated. The default reproduces the legacy
  /// fixed stagger bit-for-bit; kPoisson turns the engine into an open-loop
  /// load generator with seeded exponential inter-arrival times.
  ArrivalProcess arrival = ArrivalProcess::kFixedStagger;
  /// Mean inter-arrival gap in ticks for kPoisson (arrival rate λ =
  /// 1000 / mean_interarrival deals per kilotick).
  double mean_interarrival = 20.0;
  /// Backpressure policy. When enabled, deal deployment moves onto the
  /// scheduler: each deal's arrival fires an admission event that consults
  /// the controller against live scheduler backlog / chain occupancy and
  /// admits, delays, or sheds the deal. When disabled, every deal deploys
  /// up front at its arrival time (the legacy bit-compatible path).
  AdmissionOptions admission;

  // --- per-deal shape ranges, drawn from the deal's derived seed ---
  size_t min_parties = 2;
  size_t max_parties = 4;
  size_t min_assets = 1;
  size_t max_assets = 3;
  /// Extra transfer hops beyond the n + (m-1) well-formedness floor.
  size_t extra_transfers = 2;
  /// Every `nft_every`-th asset of a deal is an NFT (0 = fungible only).
  size_t nft_every = 0;

  /// Deal i runs protocol_mix[i % size]; empty = all timelock. (kHtlc has
  /// no traffic driver and fails the deal with a start violation.)
  std::vector<Protocol> protocol_mix = {Protocol::kTimelock,
                                        Protocol::kTimelock, Protocol::kCbc};

  /// Cross-deal double-spend injection: each listed deal index d (d >= 1)
  /// is replaced by a 2-party swap in which deal d-1's first escrower
  /// re-commits the SAME tokens it already promised to deal d-1. Exactly one
  /// of the two escrow pulls can succeed; the other deal must abort cleanly
  /// and the engine must report the incident. Indices whose predecessor is
  /// also listed (or out of range) are ignored.
  std::vector<size_t> double_spend_deals;

  /// Offline-party injection: in each listed timelock deal, the deal's
  /// first escrower goes dark right after escrowing (no transfers, votes,
  /// forwarding, or refund claims). Without a watchtower its deposit is
  /// stranded forever; with one, the tower claims the refund on its behalf.
  std::vector<size_t> offline_party_deals;

  /// Every k-th timelock deal (k > 0; deal index % k == 0) is guarded by a
  /// watchtower armed through the party-factory hook, with every deal party
  /// as a refund client. 0 = no watchtowers.
  size_t watchtower_every = 0;

  /// Broker subsystem (core/broker_pool.h): with num_brokers > 0, every
  /// `broker_every`-th deal becomes a Figure-1-style broker deal whose
  /// middle party is one of B shared broker identities with finite working
  /// capital and inventory; broker occupancy feeds the admission controller
  /// as a third signal, and per-broker records (portfolio conformance,
  /// occupancy timelines, gas/latency attribution) land in the report.
  /// Default (0 brokers) reproduces legacy traffic bit-for-bit.
  BrokerOptions brokers;

  /// Observation data path. Default (false) is legacy broadcast delivery —
  /// every receipt to every subscribed observer, bit-compatible with the
  /// pre-index fingerprints. True switches the World to indexed delivery
  /// (chain/world.h): receipts fan out only to observers subscribed to
  /// their deal tag, making per-block delivery O(deal's own receipts)
  /// instead of O(receipts x all observers) — the knob that removes the
  /// O(D^2) hot path on shared chains at D = 10^5. Indexed runs have their
  /// own (deterministic, thread-count-independent) fingerprints.
  bool indexed_observation = false;
  /// Differential-testing oracle: after the run, recompute every chain's
  /// per-tag receipt index by full scan and require it to match the
  /// incrementally built one; any mismatch is reported as a violation.
  /// Costs a full receipt sweep — for tests, not for big-D benches.
  bool fullscan_oracle = false;

  /// Worker threads for post-run per-deal validation (0 = hardware).
  size_t num_threads = 1;

  // --- long-lived service mode (TrafficService) + crash injection ---
  /// Deals generated per epoch by TrafficService::RunEpoch. Must be > 0 for
  /// service mode; ignored by batch RunTraffic.
  size_t deals_per_epoch = 0;

  /// Watchtower crash injection: every k-th armed tower (k > 0) is killed
  /// `tower_crash_after` ticks after arming — it stops relaying/refunding
  /// and loses its in-memory dedup state, exactly like a process kill.
  /// 0 = no tower ever crashes (default; preserves legacy fingerprints).
  size_t tower_crash_every = 0;
  Tick tower_crash_after = 0;
  /// Ticks after its crash at which a killed tower restarts and recovers
  /// purely from on-chain evidence (Watchtower::Recover). 0 = the tower
  /// never comes back — the negative control that re-exposes the §5.3
  /// stranded-deposit attack its clients relied on it to neutralize.
  Tick tower_recover_after = 0;

  /// Broker crash schedule: entry i kills broker (i % num_brokers)'s
  /// off-chain accounting process at the listed absolute tick
  /// (BrokerPool::CrashBroker — her in-memory reservation book is lost; her
  /// on-chain balances and escrows are untouched). Empty = no crashes
  /// (default; preserves legacy fingerprints).
  std::vector<Tick> broker_crash_times;
  /// Ticks after each crash at which the broker restarts and rebuilds her
  /// book from on-chain evidence (BrokerPool::RecoverBroker). 0 = she stays
  /// down (her book stays empty; over-commitment risk persists).
  Tick broker_recover_after = 0;
};

/// Per-deal outcome row (the unit the report fingerprint folds over).
struct TrafficDealRecord {
  size_t index = 0;
  uint64_t seed = 0;
  Protocol protocol = Protocol::kTimelock;
  /// When the deal arrived (open-loop offered load). Equals admitted_at
  /// unless the admission controller delayed it.
  Tick arrival_at = 0;
  /// When the deal was actually admitted (its phase schedule's origin).
  Tick admitted_at = 0;
  /// Admission fate: a shed deal was never deployed (started stays false).
  bool shed = false;
  /// How many times the controller delayed this deal before admitting
  /// (or shedding) it, and the total wait that cost.
  size_t admission_retries = 0;
  Tick admission_wait = 0;
  /// True for deals touched by injection (double-spend or offline party):
  /// the deviating party is excluded from their compliant sets, and
  /// Property 3 — which assumes all parties compliant — is not asserted.
  bool tainted = false;
  /// Broker hosting this deal, as index + 1 (0 = not a broker deal), plus
  /// the working capital / inventory the deal locks while in flight. For
  /// hop chains `broker` is the first hop and the capital need totals every
  /// hop's float.
  size_t broker = 0;
  uint64_t broker_capital_need = 0;
  uint64_t broker_inventory_need = 0;
  /// Per-hop (capital occupancy at pricing time, per-unit margin charged)
  /// points of a broker deal — one entry at hop depth 1, one per hop for
  /// chains. The raw data of the margin-vs-occupancy market-clearing chart.
  std::vector<BrokerPool::PricePoint> price_points;
  /// True when a CBC deal's assets span more than one shard: its escrows
  /// settled via portable DecideProofs issued by the home shard.
  bool cross_shard = false;
  size_t parties = 0;
  size_t assets = 0;
  size_t transfers = 0;

  bool started = false;
  bool committed = false;
  bool aborted = false;
  bool mixed = false;
  bool all_settled = false;
  bool atomic = true;
  bool safety_ok = true;
  bool weak_liveness_ok = true;
  bool strong_liveness_ok = true;

  uint64_t gas = 0;       // receipts submitted by this deal, per deal_tag
  uint64_t messages = 0;  // transaction receipts carrying this deal's tag
  Tick settle_time = 0;   // absolute tick of the last settlement
  /// settle_time - arrival_at (0 if never settled): open-loop sojourn time,
  /// including any admission wait the controller imposed.
  Tick latency = 0;
  std::string violation;  // empty = conformant
};

/// A property violation on some deal, with the reproducer: re-running
/// RunTraffic with the same options and base_seed replays it bit-for-bit.
struct TrafficViolation {
  size_t deal_index = 0;
  uint64_t seed = 0;
  Protocol protocol = Protocol::kTimelock;
  std::string what;
};

/// A detected cross-deal double-spend: `party` funded its escrow of some
/// token in `winner_deal` while its escrow pull of the same token failed in
/// `loser_deal`. Derived from on-chain receipts, not from injection
/// knowledge — the evidence survives in any replay of the same seed.
struct DoubleSpendIncident {
  size_t loser_deal = 0;
  size_t winner_deal = 0;
  uint32_t party = 0;
  uint64_t seed = 0;  // loser deal's derived seed
};

/// Everything one traffic run produced: per-deal records, per-broker
/// records, violations/incidents, and the aggregate metrics the benches
/// chart — all a deterministic function of the options.
struct TrafficReport {
  size_t num_deals = 0;
  size_t cbc_shards = 1;
  size_t committed = 0;
  size_t aborted = 0;
  size_t mixed = 0;
  size_t timelock_deals = 0;
  size_t cbc_deals = 0;
  /// How many deals took the broker shape (0 when brokers are disabled).
  size_t broker_deals = 0;
  /// Effective broker resale-chain depth (1 = classic single-hop deals).
  size_t broker_hop_depth = 1;
  /// CBC deals whose assets spanned >= 2 shards (settled via portable
  /// cross-shard DecideProofs).
  size_t cross_shard_deals = 0;
  /// Decide submissions rejected on the shard-binding check ("decide:
  /// shard mismatch") — the cross-shard replay defense firing.
  size_t stale_decide_rejections = 0;
  /// Brokers whose portfolio check failed: they ended worse off across
  /// their whole deal set (Property 1 lifted to portfolios).
  size_t broker_portfolio_violations = 0;
  /// Admission decisions at which the broker signal reported a shortfall.
  size_t broker_blocked = 0;

  // Admission-control outcome (all zero when the controller is disabled).
  size_t shed = 0;           // deals never deployed (load the policy refused)
  size_t delayed_deals = 0;  // deals admitted later than they arrived
  size_t admission_retries = 0;  // total delay events across all deals
  Tick max_admission_wait = 0;
  size_t peak_backlog_seen = 0;       // worst congestion the controller
  uint64_t peak_occupancy_seen = 0;   // sampled at its decision points

  uint64_t total_gas = 0;
  uint64_t total_messages = 0;
  /// Gas from receipts carrying no deal tag. Zero means per-deal gas
  /// attribution is complete: every transaction in the World is accounted
  /// to exactly one deal.
  uint64_t untagged_gas = 0;

  // Scheduler pressure (from the sim-layer step hook, so the depth/tick
  // pair is one coherent measurement of the queue while draining).
  uint64_t events_executed = 0;
  size_t max_backlog = 0;
  Tick peak_backlog_at = 0;  // when the event queue hit its high-water mark
  Tick makespan = 0;         // last settlement across all deals

  // Latency percentiles over settled deals, gas percentiles over all deals.
  Tick latency_p50 = 0;
  Tick latency_p90 = 0;
  Tick latency_p99 = 0;
  uint64_t gas_p50 = 0;
  uint64_t gas_p99 = 0;
  /// Committed deals per 1000 simulated ticks of makespan (goodput: shed
  /// and violating deals don't count — only commits do).
  double deals_per_ktick = 0.0;
  /// Arrivals per 1000 simulated ticks over the arrival window (offered
  /// load; compare against deals_per_ktick to see what the system kept).
  double offered_per_ktick = 0.0;

  std::vector<TrafficDealRecord> deals;
  std::vector<TrafficViolation> violations;
  std::vector<DoubleSpendIncident> double_spends;
  /// Per-broker aggregation (empty when brokers are disabled): capital /
  /// inventory occupancy timelines, gas/latency attribution, and the
  /// portfolio conformance verdict.
  std::vector<BrokerRecord> brokers;

  /// Order-sensitive hash over every per-deal record; equal fingerprints
  /// mean bit-identical reports (the thread-count-independence invariant).
  uint64_t fingerprint = 0;

  /// Human-readable throughput/latency/conformance table.
  std::string Summary() const;
};

/// Per-deal RNG seed: a SplitMix64 hash of (base_seed, deal_index), on an
/// independent stream from ScenarioSeed so sweep and traffic never alias.
XDEAL_DETERMINISTIC
uint64_t TrafficDealSeed(uint64_t base_seed, uint64_t deal_index);

/// The whole pipeline: generate D deals in one World over a shared chain
/// pool, drive the scheduler to quiescence, validate every deal (in
/// parallel), and fold the deterministic report.
XDEAL_DETERMINISTIC
TrafficReport RunTraffic(const TrafficOptions& options);

/// What one epoch of the long-lived service produced: this epoch's slice of
/// the per-deal outcome stream, folded into a per-epoch fingerprint and
/// chained into the run's cumulative fingerprint. Two runs whose epoch
/// streams carry equal cumulative fingerprints executed bit-identically —
/// the restore-parity gate compares exactly this.
struct EpochReport {
  size_t index = 0;       // epoch number, 0-based
  size_t first_deal = 0;  // global index of the epoch's first deal
  size_t num_deals = 0;
  size_t committed = 0;
  size_t aborted = 0;
  size_t violations = 0;
  size_t double_spends = 0;
  size_t stale_decide_rejections = 0;
  uint64_t gas = 0;
  uint64_t untagged_gas = 0;
  Tick latency_p50 = 0;
  Tick latency_p99 = 0;
  /// Scheduler time when the epoch reached its quiescent boundary.
  Tick sealed_at = 0;
  /// Cumulative scheduler events executed as of the seal.
  uint64_t events_executed = 0;
  /// Fold over this epoch's deal records only.
  uint64_t epoch_fingerprint = 0;
  /// Chained fold over every epoch fingerprint so far.
  uint64_t cumulative_fingerprint = 0;
};

/// The whole service run, sealed by TrafficService::Finish: cross-epoch
/// totals, the per-epoch report stream, every violation with its reproducer
/// seed, per-broker portfolio records, and the final fingerprint (the
/// cumulative epoch fold plus the broker-record fold).
struct ServiceReport {
  size_t epochs = 0;
  size_t deals = 0;
  size_t committed = 0;
  size_t aborted = 0;
  size_t timelock_deals = 0;
  size_t cbc_deals = 0;
  size_t broker_deals = 0;
  size_t cross_shard_deals = 0;
  size_t stale_decide_rejections = 0;
  size_t double_spends = 0;
  size_t broker_portfolio_violations = 0;
  uint64_t total_gas = 0;
  uint64_t untagged_gas = 0;
  uint64_t total_messages = 0;
  Tick makespan = 0;
  std::vector<EpochReport> epoch_reports;
  std::vector<TrafficViolation> violations;
  std::vector<BrokerRecord> brokers;
  uint64_t final_fingerprint = 0;

  /// Human-readable epoch/conformance table.
  std::string Summary() const;
};

/// TrafficService: the TrafficEngine run as a long-lived service instead of
/// a batch. An unbounded open-loop arrival stream is partitioned into
/// fixed-length epochs of `deals_per_epoch` deals; each RunEpoch generates
/// the next slice on the SAME World (chains, brokers, validator sets, and
/// the scheduler clock persist across epochs), drives it to a quiescent
/// boundary, and emits a streaming EpochReport.
///
/// At any epoch boundary the whole run can be serialized by Checkpoint()
/// into a versioned snapshot — chains (token ledgers in full, settled deals'
/// contracts retired in place so ContractId numbering survives), the
/// scheduler clock and its pending durable events (cross-epoch validator
/// reconfigurations and broker crash/recovery schedules), CbcService shard
/// epochs (validator keys and reconfig certificates replay from seeds),
/// broker capital/inventory bindings and plans, and the service's own
/// counters. FromSnapshot resumes a run killed at that boundary and
/// continues BIT-IDENTICALLY: every subsequent EpochReport, fingerprint,
/// and final ServiceReport equals the uninterrupted run's (the differential
/// checkpoint tests prove it across thread counts, shard counts, brokers,
/// and reconfigurations straddling the snapshot).
///
/// Requirements: deals_per_epoch > 0, indexed_observation = true (broadcast
/// delivery draws sequential RNG for observers of long-settled deals that
/// do not exist after a restore), and the admission controller off.
class TrafficService {
 public:
  /// Builds a fresh service world (chain pool, brokers, CBC shards) from
  /// the options. Fails on options service mode cannot honor.
  static Result<std::unique_ptr<TrafficService>> Create(
      const TrafficOptions& options);

  /// Restores a service from a Checkpoint snapshot taken under the SAME
  /// options. Rejects — with a distinct versioned error, never silent
  /// divergence — snapshots with a bad magic, an unsupported version, an
  /// options fingerprint mismatch, or a corrupted payload digest.
  static Result<std::unique_ptr<TrafficService>> FromSnapshot(
      const TrafficOptions& options, const Bytes& snapshot);

  ~TrafficService();

  /// Generates, drives, validates, and seals the next epoch.
  XDEAL_DETERMINISTIC EpochReport RunEpoch();

  /// Serializes the run at the current epoch boundary (see class comment).
  XDEAL_DETERMINISTIC Result<Bytes> Checkpoint();

  /// Seals the run: builds per-broker records over every epoch's outcomes
  /// and folds the final fingerprint. Callable repeatedly; RunEpoch may
  /// continue afterwards (Finish is a read-only aggregation).
  XDEAL_DETERMINISTIC ServiceReport Finish() const;

  /// Number of epochs sealed so far (restored runs count restored epochs).
  size_t epochs_run() const;
  /// Cumulative deals generated across all epochs (the next global index).
  size_t deals_run() const;
  /// The running fingerprint every sealed epoch has folded into.
  uint64_t cumulative_fingerprint() const;
  /// Per-epoch reports in seal order, including epochs before a restore.
  const std::vector<EpochReport>& epoch_reports() const;

 private:
  TrafficService();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_TRAFFIC_ENGINE_H_
