// TrafficEngine: concurrent multi-deal workloads over shared chains.
//
// Where ScenarioSweep runs every scenario in its own World, the traffic
// engine generates D deals (mixed shapes and protocols via deal_gen) that
// all live in ONE World, multiplexed over a shared pool of chains. Deals are
// admitted on a staggered schedule and their protocol phases interleave on
// the single deterministic scheduler, so the engine sees cross-deal
// interference a single-deal sweep cannot: many escrows contending on one
// chain, block-capacity queueing that stretches timelock deadlines, gas
// accounting across deals, and double-spend pressure where one party
// over-commits the same funds to two deals at once.
//
// Protocol dispatch goes through the ProtocolDriver API: every deal is a
// DealRuntime created from one shifted DealTimings schedule, and CBC deals
// execute against a CbcService with `cbc_shards` independent certified
// chains (deals hashed to shards by deal id) — the knob that turns the
// single shared CBC log from the paper into a horizontally scaled backend.
// Watchtowers ride the same PartyFactory hook: with watchtower_every = k,
// every k-th timelock deal is guarded by an always-online relay that also
// claims refunds for parties that went dark.
//
// Every deal is validated with its own DealChecker (Properties 1-3 over its
// compliant parties); failed properties become TrafficViolations carrying
// the deal's derived seed. Escrow receipts are additionally cross-referenced
// between deals to detect cross-deal double-spends from on-chain evidence
// (a party whose escrow pull failed in one deal while the same token funded
// its escrow in another).
//
// Determinism contract (matches ScenarioSweep): the simulation itself is
// single-threaded and seed-driven; worker threads only parallelize the
// post-run per-deal validation, writing into per-deal slots that are folded
// in index order. A TrafficReport is therefore bit-identical across thread
// counts, and re-running the same options + base_seed replays every
// violation and incident exactly. With cbc_shards = 1 the engine reproduces
// the pre-sharding fingerprints bit-for-bit.

#ifndef XDEAL_CORE_TRAFFIC_ENGINE_H_
#define XDEAL_CORE_TRAFFIC_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol_driver.h"
#include "sim/scheduler.h"

namespace xdeal {

struct TrafficOptions {
  uint64_t base_seed = 1;
  /// D: how many concurrent deals the workload admits.
  size_t num_deals = 100;
  /// Size of the shared chain pool all deals' assets are placed on.
  size_t num_chains = 8;
  /// S: how many certified chains (each with its own validator set) the
  /// CbcService runs; CBC deals are hashed to shards by deal id. 1 = the
  /// paper's single shared CBC.
  size_t cbc_shards = 1;
  /// Max transactions per block on every chain (0 = unlimited). Finite
  /// capacity turns heavy traffic into real queueing delay — tight enough
  /// values stretch timelock deadlines past Δ and the checker catches it.
  uint64_t block_capacity = 0;
  Tick block_interval = 10;
  /// Deal i is admitted (its phase schedule shifted) at i * admission_gap.
  Tick admission_gap = 20;
  /// The timelock protocol's synchrony bound Δ.
  Tick delta = 120;

  // --- per-deal shape ranges, drawn from the deal's derived seed ---
  size_t min_parties = 2;
  size_t max_parties = 4;
  size_t min_assets = 1;
  size_t max_assets = 3;
  /// Extra transfer hops beyond the n + (m-1) well-formedness floor.
  size_t extra_transfers = 2;
  /// Every `nft_every`-th asset of a deal is an NFT (0 = fungible only).
  size_t nft_every = 0;

  /// Deal i runs protocol_mix[i % size]; empty = all timelock. (kHtlc has
  /// no traffic driver and fails the deal with a start violation.)
  std::vector<Protocol> protocol_mix = {Protocol::kTimelock,
                                        Protocol::kTimelock, Protocol::kCbc};

  /// Cross-deal double-spend injection: each listed deal index d (d >= 1)
  /// is replaced by a 2-party swap in which deal d-1's first escrower
  /// re-commits the SAME tokens it already promised to deal d-1. Exactly one
  /// of the two escrow pulls can succeed; the other deal must abort cleanly
  /// and the engine must report the incident. Indices whose predecessor is
  /// also listed (or out of range) are ignored.
  std::vector<size_t> double_spend_deals;

  /// Offline-party injection: in each listed timelock deal, the deal's
  /// first escrower goes dark right after escrowing (no transfers, votes,
  /// forwarding, or refund claims). Without a watchtower its deposit is
  /// stranded forever; with one, the tower claims the refund on its behalf.
  std::vector<size_t> offline_party_deals;

  /// Every k-th timelock deal (k > 0; deal index % k == 0) is guarded by a
  /// watchtower armed through the party-factory hook, with every deal party
  /// as a refund client. 0 = no watchtowers.
  size_t watchtower_every = 0;

  /// Worker threads for post-run per-deal validation (0 = hardware).
  size_t num_threads = 1;
};

/// Per-deal outcome row (the unit the report fingerprint folds over).
struct TrafficDealRecord {
  size_t index = 0;
  uint64_t seed = 0;
  Protocol protocol = Protocol::kTimelock;
  Tick admitted_at = 0;
  /// True for deals touched by injection (double-spend or offline party):
  /// the deviating party is excluded from their compliant sets, and
  /// Property 3 — which assumes all parties compliant — is not asserted.
  bool tainted = false;
  size_t parties = 0;
  size_t assets = 0;
  size_t transfers = 0;

  bool started = false;
  bool committed = false;
  bool aborted = false;
  bool mixed = false;
  bool all_settled = false;
  bool atomic = true;
  bool safety_ok = true;
  bool weak_liveness_ok = true;
  bool strong_liveness_ok = true;

  uint64_t gas = 0;       // receipts submitted by this deal, per deal_tag
  uint64_t messages = 0;  // transaction receipts carrying this deal's tag
  Tick settle_time = 0;   // absolute tick of the last settlement
  Tick latency = 0;       // settle_time - admitted_at (0 if never settled)
  std::string violation;  // empty = conformant
};

/// A property violation on some deal, with the reproducer: re-running
/// RunTraffic with the same options and base_seed replays it bit-for-bit.
struct TrafficViolation {
  size_t deal_index = 0;
  uint64_t seed = 0;
  Protocol protocol = Protocol::kTimelock;
  std::string what;
};

/// A detected cross-deal double-spend: `party` funded its escrow of some
/// token in `winner_deal` while its escrow pull of the same token failed in
/// `loser_deal`. Derived from on-chain receipts, not from injection
/// knowledge — the evidence survives in any replay of the same seed.
struct DoubleSpendIncident {
  size_t loser_deal = 0;
  size_t winner_deal = 0;
  uint32_t party = 0;
  uint64_t seed = 0;  // loser deal's derived seed
};

struct TrafficReport {
  size_t num_deals = 0;
  size_t cbc_shards = 1;
  size_t committed = 0;
  size_t aborted = 0;
  size_t mixed = 0;
  size_t timelock_deals = 0;
  size_t cbc_deals = 0;

  uint64_t total_gas = 0;
  uint64_t total_messages = 0;
  /// Gas from receipts carrying no deal tag. Zero means per-deal gas
  /// attribution is complete: every transaction in the World is accounted
  /// to exactly one deal.
  uint64_t untagged_gas = 0;

  // Scheduler pressure (from the sim-layer step hook, so the depth/tick
  // pair is one coherent measurement of the queue while draining).
  uint64_t events_executed = 0;
  size_t max_backlog = 0;
  Tick peak_backlog_at = 0;  // when the event queue hit its high-water mark
  Tick makespan = 0;         // last settlement across all deals

  // Latency percentiles over settled deals, gas percentiles over all deals.
  Tick latency_p50 = 0;
  Tick latency_p90 = 0;
  Tick latency_p99 = 0;
  uint64_t gas_p50 = 0;
  uint64_t gas_p99 = 0;
  /// Committed deals per 1000 simulated ticks of makespan.
  double deals_per_ktick = 0.0;

  std::vector<TrafficDealRecord> deals;
  std::vector<TrafficViolation> violations;
  std::vector<DoubleSpendIncident> double_spends;

  /// Order-sensitive hash over every per-deal record; equal fingerprints
  /// mean bit-identical reports (the thread-count-independence invariant).
  uint64_t fingerprint = 0;

  /// Human-readable throughput/latency/conformance table.
  std::string Summary() const;
};

/// Per-deal RNG seed: a SplitMix64 hash of (base_seed, deal_index), on an
/// independent stream from ScenarioSeed so sweep and traffic never alias.
uint64_t TrafficDealSeed(uint64_t base_seed, uint64_t deal_index);

/// The whole pipeline: generate D deals in one World over a shared chain
/// pool, drive the scheduler to quiescence, validate every deal (in
/// parallel), and fold the deterministic report.
TrafficReport RunTraffic(const TrafficOptions& options);

}  // namespace xdeal

#endif  // XDEAL_CORE_TRAFFIC_ENGINE_H_
