#include "core/watchtower.h"

namespace xdeal {

Watchtower::Watchtower(World* world, const DealSpec& spec,
                       const TimelockDeployment& deployment,
                       PartyId operator_id, std::vector<PartyId> clients,
                       uint64_t deal_tag)
    : world_(world),
      spec_(spec),
      deployment_(deployment),
      operator_id_(operator_id),
      clients_(std::move(clients)),
      deal_tag_(deal_tag) {}

TimelockEscrowContract* Watchtower::EscrowOfAsset(uint32_t asset) const {
  return world_->chain(spec_.assets[asset].chain)
      ->As<TimelockEscrowContract>(deployment_.escrow_contracts[asset]);
}

void Watchtower::Arm() {
  std::set<ChainId> chains;
  for (const AssetRef& asset : spec_.assets) chains.insert(asset.chain);
  for (ChainId c : chains) {
    // Scoped to the guarded deal's tag: the tower only relays this deal's
    // votes, so under indexed delivery it is woken only by them.
    world_->chain(c)->Subscribe(
        world_->PartyEndpoint(operator_id_), deal_tag_,
        [this](const Receipt& r) { OnObservedReceipt(r); });
  }
  world_->scheduler().ScheduleAt(
      deployment_.info.RefundTime() + 1, [this] { OnRefundWatch(); });
}

void Watchtower::Crash() {
  crashed_ = true;
  // A killed process loses its in-memory dedup state; everything else the
  // tower knows is re-derivable from public contract state.
  relayed_votes_.clear();
}

void Watchtower::Recover() {
  if (!crashed_) return;
  crashed_ = false;
  // Catch up from on-chain evidence: every accepted vote is public contract
  // state, so scan each escrow and relay whatever the tower missed while
  // down. Votes already accepted on the target are skipped (HasVoted), so
  // recovery costs gas only for genuinely missing relays.
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    RelayMissingVotes(a);
  }
  // If the refund deadline passed while the tower was down, run the watch
  // now; claimRefund is callable by anyone and idempotent per contract.
  if (world_->now() > deployment_.info.RefundTime()) OnRefundWatch();
}

void Watchtower::OnObservedReceipt(const Receipt& receipt) {
  if (crashed_) return;
  if (receipt.function != "commit" || !receipt.status.ok()) return;
  // Find the asset this receipt's contract backs.
  uint32_t observed = kInvalidId;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    if (spec_.assets[a].chain == receipt.chain &&
        deployment_.escrow_contracts[a] == receipt.contract) {
      observed = a;
      break;
    }
  }
  if (observed == kInvalidId) return;
  RelayMissingVotes(observed);
}

void Watchtower::RelayMissingVotes(uint32_t observed) {
  const TimelockEscrowContract* source = EscrowOfAsset(observed);
  if (source == nullptr) return;

  // Relay every accepted vote, verbatim, to every other contract that has
  // not yet accepted a vote from that voter. The path signature and its
  // deadline are unchanged — the watchtower's value is pure speed.
  for (const auto& [voter_id, vote] : source->accepted_votes()) {
    for (uint32_t b = 0; b < spec_.NumAssets(); ++b) {
      if (b == observed) continue;
      const TimelockEscrowContract* target = EscrowOfAsset(b);
      if (target == nullptr || target->settled()) continue;
      if (target->HasVoted(PartyId{voter_id})) continue;
      if (!relayed_votes_.insert({b, voter_id}).second) continue;
      ByteWriter w;
      w.Raw(deployment_.info.deal_id.bytes.data(), 32);
      vote.AppendTo(&w);
      world_->Submit(operator_id_, spec_.assets[b].chain,
                     deployment_.escrow_contracts[b],
                     CallData{"commit", w.Take()}, "watchtower", deal_tag_);
      ++relayed_;
    }
  }
}

void Watchtower::OnRefundWatch() {
  if (crashed_) return;
  for (uint32_t a = 0; a < spec_.NumAssets(); ++a) {
    const TimelockEscrowContract* esc = EscrowOfAsset(a);
    if (esc == nullptr || esc->settled()) continue;
    // Refund on behalf of any client with a deposit here.
    bool client_stake = false;
    for (PartyId client : clients_) {
      client_stake = client_stake || esc->core().EscrowedOf(client) > 0;
    }
    if (!client_stake) continue;
    ByteWriter w;
    w.Raw(deployment_.info.deal_id.bytes.data(), 32);
    world_->Submit(operator_id_, spec_.assets[a].chain,
                   deployment_.escrow_contracts[a],
                   CallData{"claimRefund", w.Take()}, "watchtower",
                   deal_tag_);
  }
}

}  // namespace xdeal
