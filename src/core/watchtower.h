// Watchtower: an always-online vote relay (paper §5.3).
//
// "To address a similar risk, the Lightning payment network employs
//  watchtowers, parties that monitor escrow contracts and step in to act on
//  the behalf of off-line parties in danger of losing assets."
//
// A watchtower is NOT a deal party: it cannot extend a path signature (it is
// not in the plist), but the timelock contracts accept a valid vote from
// *any* sender, so the watchtower can
//   1. relay accepted votes verbatim from one escrow contract to the others
//      the moment it observes them (it is never offline, so it usually beats
//      the |p|·Δ deadline that a DoS'd party would miss), and
//   2. trigger claimRefund after t0 + N·Δ on behalf of clients (callable by
//      anyone).
// The watchtower_test shows this neutralizing the §5.3 attack that
// otherwise costs the offline parties their assets.

#ifndef XDEAL_CORE_WATCHTOWER_H_
#define XDEAL_CORE_WATCHTOWER_H_

#include <set>
#include <vector>

#include "core/timelock_run.h"

namespace xdeal {

class Watchtower {
 public:
  /// `operator_id` is the watchtower's own on-chain identity (any registered
  /// party; it needs no deal membership). `clients` are the parties whose
  /// deposits it guards for refund purposes; vote relaying helps everyone.
  /// `deal_tag` labels the tower's transactions so multi-deal worlds can
  /// attribute its gas to the deal it guards (0 = untagged).
  Watchtower(World* world, const DealSpec& spec,
             const TimelockDeployment& deployment, PartyId operator_id,
             std::vector<PartyId> clients, uint64_t deal_tag = 0);

  /// Subscribes to every deal chain and schedules the refund watch.
  void Arm();

  /// Number of votes this watchtower has relayed (for tests/metrics).
  size_t relayed() const { return relayed_; }

  /// Crash injection: the tower stops reacting to observations and refund
  /// watches, and loses its in-memory relay dedup state — exactly what a
  /// process kill would destroy. Subscriptions stay registered (they gate on
  /// crashed_), so Recover needs no re-subscription.
  void Crash();

  /// Restart: resumes reacting and rebuilds what the crash lost purely from
  /// on-chain evidence — every escrow's public accepted_votes() — then
  /// relays any vote the tower missed while down and, if past the refund
  /// deadline, re-runs the refund watch (claimRefund is idempotent).
  void Recover();

  bool crashed() const { return crashed_; }

 private:
  void OnObservedReceipt(const Receipt& receipt);
  void OnRefundWatch();
  void RelayMissingVotes(uint32_t source_asset);
  TimelockEscrowContract* EscrowOfAsset(uint32_t asset) const;

  World* world_;
  DealSpec spec_;
  TimelockDeployment deployment_;
  PartyId operator_id_;
  std::vector<PartyId> clients_;
  uint64_t deal_tag_;
  bool crashed_ = false;
  std::set<std::pair<uint32_t, uint32_t>> relayed_votes_;  // (asset, voter)
  size_t relayed_ = 0;
};

}  // namespace xdeal

#endif  // XDEAL_CORE_WATCHTOWER_H_
