#include "crypto/merkle.h"

namespace xdeal {

namespace {

Hash256 HashPair(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.Update("xdeal-merkle-node");
  h.Update(left.bytes.data(), left.bytes.size());
  h.Update(right.bytes.data(), right.bytes.size());
  return h.Finish();
}

// Computes all levels of the tree; level 0 is the leaves.
std::vector<std::vector<Hash256>> BuildLevels(
    const std::vector<Hash256>& leaves) {
  std::vector<std::vector<Hash256>> levels;
  levels.push_back(leaves);
  while (levels.back().size() > 1) {
    const auto& cur = levels.back();
    std::vector<Hash256> next;
    next.reserve((cur.size() + 1) / 2);
    for (size_t i = 0; i < cur.size(); i += 2) {
      const Hash256& left = cur[i];
      const Hash256& right = (i + 1 < cur.size()) ? cur[i + 1] : cur[i];
      next.push_back(HashPair(left, right));
    }
    levels.push_back(std::move(next));
  }
  return levels;
}

}  // namespace

Hash256 MerkleRoot(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  if (leaves.size() == 1) return HashPair(leaves[0], leaves[0]);
  return BuildLevels(leaves).back()[0];
}

Result<MerkleProof> BuildMerkleProof(const std::vector<Hash256>& leaves,
                                     size_t index) {
  if (index >= leaves.size()) {
    return Status::InvalidArgument("merkle proof index out of range");
  }
  MerkleProof proof;
  if (leaves.size() == 1) {
    // Single leaf: the root is HashPair(leaf, leaf); sibling is the leaf.
    proof.push_back({leaves[0], false});
    return proof;
  }
  auto levels = BuildLevels(leaves);
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels.size(); ++lvl) {
    const auto& cur = levels[lvl];
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling >= cur.size()) sibling = pos;  // duplicated last node
    proof.push_back({cur[sibling], pos % 2 == 1});
    pos /= 2;
  }
  return proof;
}

bool VerifyMerkleProof(const Hash256& leaf, const MerkleProof& proof,
                       const Hash256& root) {
  Hash256 acc = leaf;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_is_left ? HashPair(step.sibling, acc)
                               : HashPair(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace xdeal
