// Binary Merkle tree over entry hashes, used for block entry commitments.
//
// Blocks commit to their entries with a Merkle root; parties presenting a
// block subsequence as part of a cross-chain proof can (in the full design)
// also present Merkle membership proofs for individual entries. Duplicated
// last node at odd levels (Bitcoin-style).

#ifndef XDEAL_CRYPTO_MERKLE_H_
#define XDEAL_CRYPTO_MERKLE_H_

#include <vector>

#include "crypto/sha256.h"
#include "util/det.h"
#include "util/result.h"

namespace xdeal {

/// One step in a Merkle membership proof: the sibling hash and whether the
/// sibling is on the left.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

using MerkleProof = std::vector<MerkleStep>;

/// Computes the Merkle root of a list of leaf hashes.
/// The root of an empty list is the all-zero hash; a single leaf is its own
/// root after one hashing level (domain-separated from leaves).
XDEAL_DETERMINISTIC
Hash256 MerkleRoot(const std::vector<Hash256>& leaves);

/// Builds a membership proof for the leaf at `index`.
Result<MerkleProof> BuildMerkleProof(const std::vector<Hash256>& leaves,
                                     size_t index);

/// Verifies that `leaf` is committed under `root` via `proof`.
XDEAL_DETERMINISTIC
bool VerifyMerkleProof(const Hash256& leaf, const MerkleProof& proof,
                       const Hash256& root);

}  // namespace xdeal

#endif  // XDEAL_CRYPTO_MERKLE_H_
