#include "crypto/schnorr.h"

#include "util/serialize.h"

namespace xdeal {

const U256& SchnorrGroup::P() {
  static const U256 p = U256::FromLimbsBigEndian(
      0x7FFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
      0xFFFFFFFFFFFFFFEDULL);
  return p;
}

const U256& SchnorrGroup::N() {
  static const U256 n = U256::FromLimbsBigEndian(
      0x7FFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
      0xFFFFFFFFFFFFFFECULL);
  return n;
}

const U256& SchnorrGroup::G() {
  static const U256 g(2);
  return g;
}

namespace {

/// Hashes arbitrary bytes to a nonzero exponent mod n.
U256 HashToExponent(const Bytes& data) {
  U256 e = U256::Mod(U256::FromHash(Sha256Digest(data)), SchnorrGroup::N());
  if (e.IsZero()) e = U256(1);
  return e;
}

/// The challenge e = H(r || y || m) mod n.
U256 Challenge(const U256& r, const PublicKey& key, const Bytes& message) {
  ByteWriter w;
  w.Raw(r.ToBytes());
  w.Raw(key.y.ToBytes());
  w.Blob(message);
  return HashToExponent(w.bytes());
}

}  // namespace

std::string PublicKey::Fingerprint() const {
  return Sha256Digest(Serialize()).ShortHex();
}

Bytes Signature::Serialize() const {
  Bytes out = r.ToBytes();
  Bytes s_bytes = s.ToBytes();
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

Result<Signature> Signature::Deserialize(const Bytes& bytes) {
  if (bytes.size() != 64) {
    return Status::InvalidArgument("signature must be 64 bytes");
  }
  Hash256 hr, hs;
  std::copy(bytes.begin(), bytes.begin() + 32, hr.bytes.begin());
  std::copy(bytes.begin() + 32, bytes.end(), hs.bytes.begin());
  Signature sig;
  sig.r = U256::FromHash(hr);
  sig.s = U256::FromHash(hs);
  return sig;
}

KeyPair KeyPair::FromSeed(std::string_view seed) {
  ByteWriter w;
  w.Str("xdeal-keygen-v1");
  w.Str(seed);
  U256 x = HashToExponent(w.bytes());
  PublicKey pk{U256::PowMod(SchnorrGroup::G(), x, SchnorrGroup::P())};
  return KeyPair(x, pk);
}

Signature KeyPair::Sign(const Bytes& message) const {
  // Deterministic nonce: k = H(x || m) mod n (RFC6979-flavored, simplified).
  ByteWriter nonce_input;
  nonce_input.Str("xdeal-nonce-v1");
  nonce_input.Raw(x_.ToBytes());
  nonce_input.Blob(message);
  U256 k = HashToExponent(nonce_input.bytes());

  const U256& p = SchnorrGroup::P();
  const U256& n = SchnorrGroup::N();
  U256 r = U256::PowMod(SchnorrGroup::G(), k, p);
  U256 e = Challenge(r, public_key_, message);
  U256 s = U256::AddMod(k, U256::MulMod(e, x_, n), n);
  return Signature{r, s};
}

Signature KeyPair::Sign(std::string_view message) const {
  return Sign(ToBytes(message));
}

bool Verify(const PublicKey& key, const Bytes& message, const Signature& sig) {
  const U256& p = SchnorrGroup::P();
  // Reject degenerate values.
  if (sig.r.IsZero() || key.y.IsZero()) return false;
  if (sig.r >= p || key.y >= p) return false;

  U256 e = Challenge(sig.r, key, message);
  U256 lhs = U256::PowMod(SchnorrGroup::G(), sig.s, p);
  U256 rhs = U256::MulMod(sig.r, U256::PowMod(key.y, e, p), p);
  return lhs == rhs;
}

bool Verify(const PublicKey& key, std::string_view message,
            const Signature& sig) {
  return Verify(key, ToBytes(message), sig);
}

}  // namespace xdeal
