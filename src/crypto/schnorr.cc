#include "crypto/schnorr.h"

#include "util/serialize.h"

namespace xdeal {

const U256& SchnorrGroup::P() {
  static const U256 p = U256::FromLimbsBigEndian(
      0x7FFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
      0xFFFFFFFFFFFFFFEDULL);
  return p;
}

const U256& SchnorrGroup::N() {
  static const U256 n = U256::FromLimbsBigEndian(
      0x7FFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
      0xFFFFFFFFFFFFFFECULL);
  return n;
}

const U256& SchnorrGroup::G() {
  static const U256 g(2);
  return g;
}

namespace {

/// Hashes arbitrary bytes to a nonzero exponent mod n.
U256 HashToExponent(const Bytes& data) {
  U256 e = U256::Mod(U256::FromHash(Sha256Digest(data)), SchnorrGroup::N());
  if (e.IsZero()) e = U256(1);
  return e;
}

/// The challenge e = H(r || y || m) mod n.
U256 Challenge(const U256& r, const PublicKey& key, const Bytes& message) {
  ByteWriter w;
  w.Raw(r.ToBytes());
  w.Raw(key.y.ToBytes());
  w.Blob(message);
  return HashToExponent(w.bytes());
}

}  // namespace

std::string PublicKey::Fingerprint() const {
  return Sha256Digest(Serialize()).ShortHex();
}

Bytes Signature::Serialize() const {
  Bytes out = r.ToBytes();
  Bytes s_bytes = s.ToBytes();
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

Result<Signature> Signature::Deserialize(const Bytes& bytes) {
  if (bytes.size() != 64) {
    return Status::InvalidArgument("signature must be 64 bytes");
  }
  Hash256 hr, hs;
  std::copy(bytes.begin(), bytes.begin() + 32, hr.bytes.begin());
  std::copy(bytes.begin() + 32, bytes.end(), hs.bytes.begin());
  Signature sig;
  sig.r = U256::FromHash(hr);
  sig.s = U256::FromHash(hs);
  return sig;
}

KeyPair KeyPair::FromSeed(std::string_view seed) {
  ByteWriter w;
  w.Str("xdeal-keygen-v1");
  w.Str(seed);
  U256 x = HashToExponent(w.bytes());
  PublicKey pk{U256::PowMod(SchnorrGroup::G(), x, SchnorrGroup::P())};
  return KeyPair(x, pk);
}

Signature KeyPair::Sign(const Bytes& message) const {
  // Deterministic nonce: k = H(x || m) mod n (RFC6979-flavored, simplified).
  ByteWriter nonce_input;
  nonce_input.Str("xdeal-nonce-v1");
  nonce_input.Raw(x_.ToBytes());
  nonce_input.Blob(message);
  U256 k = HashToExponent(nonce_input.bytes());

  const U256& p = SchnorrGroup::P();
  const U256& n = SchnorrGroup::N();
  U256 r = U256::PowMod(SchnorrGroup::G(), k, p);
  U256 e = Challenge(r, public_key_, message);
  U256 s = U256::AddMod(k, U256::MulMod(e, x_, n), n);
  return Signature{r, s};
}

Signature KeyPair::Sign(std::string_view message) const {
  return Sign(ToBytes(message));
}

bool Verify(const PublicKey& key, const Bytes& message, const Signature& sig) {
  const U256& p = SchnorrGroup::P();
  // Reject degenerate values.
  if (sig.r.IsZero() || key.y.IsZero()) return false;
  if (sig.r >= p || key.y >= p) return false;

  U256 e = Challenge(sig.r, key, message);
  U256 lhs = U256::PowMod(SchnorrGroup::G(), sig.s, p);
  U256 rhs = U256::MulMod(sig.r, U256::PowMod(key.y, e, p), p);
  return lhs == rhs;
}

bool Verify(const PublicKey& key, std::string_view message,
            const Signature& sig) {
  return Verify(key, ToBytes(message), sig);
}

namespace {

/// The i-th batch coefficient: ~128 bits from H(batch_seed || i), forced
/// odd. Odd coefficients cannot annihilate the order-2 subgroup of Z_p*
/// (p-1 is even), closing the classic batch forgery where a -1 factor
/// hides behind an even z_i.
U256 BatchCoefficient(const Hash256& batch_seed, uint64_t index) {
  ByteWriter w;
  w.Str("xdeal-batch-z-v1");
  w.Raw(batch_seed.bytes.data(), batch_seed.bytes.size());
  w.U64(index);
  U256 z = U256::FromHash(Sha256Digest(w.bytes()));
  z = U256::FromLimbsBigEndian(0, 0, z.limb(1), z.limb(0));  // low 128 bits
  if (!z.IsOdd()) z = z.Add(U256(1));
  return z;
}

}  // namespace

BatchVerifyResult BatchVerify(const std::vector<BatchItem>& items) {
  BatchVerifyResult out;
  if (items.empty()) {
    out.ok = true;
    return out;
  }
  const U256& p = SchnorrGroup::P();
  const U256& n = SchnorrGroup::N();

  // Degenerate values fail individual verification outright — catch them
  // before they can poison (or trivially satisfy) the combined equation.
  for (size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    if (item.sig.r.IsZero() || item.key.y.IsZero() || item.sig.r >= p ||
        item.key.y >= p) {
      out.first_bad = static_cast<int>(i);
      return out;
    }
  }

  // Fiat-Shamir batch seed over every (r, y, m): coefficients are fixed
  // only after the whole batch is, so no item can be chosen against them.
  ByteWriter seed_writer;
  seed_writer.Str("xdeal-batch-seed-v1");
  for (const BatchItem& item : items) {
    seed_writer.Raw(item.sig.r.ToBytes());
    seed_writer.Raw(item.key.y.ToBytes());
    seed_writer.Blob(item.message);
  }
  Hash256 batch_seed = Sha256Digest(seed_writer.bytes());

  // g^(Σ z_i·s_i mod n)  ==  Π r_i^{z_i} · y_i^{(z_i·e_i mod n)}  (mod p).
  // Exponent arithmetic mod n = p-1 is sound: every group element's order
  // divides n, so oversized attacker-supplied s values reduce the same way
  // individual verification's g^s does.
  U256 s_combined;
  std::vector<std::pair<U256, U256>> terms;
  terms.reserve(items.size() * 2);
  for (size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    U256 z = BatchCoefficient(batch_seed, i);
    U256 e = Challenge(item.sig.r, item.key, item.message);
    s_combined = U256::AddMod(s_combined, U256::MulMod(z, item.sig.s, n), n);
    terms.emplace_back(item.sig.r, z);
    terms.emplace_back(item.key.y, U256::MulMod(z, e, n));
  }
  U256 lhs = U256::PowMod(SchnorrGroup::G(), s_combined, p);
  U256 rhs = U256::MultiExpMod(terms, p);
  if (lhs == rhs) {
    out.ok = true;
    return out;
  }

  // Combined check failed: at least one signature is bad. Re-verify
  // individually to attribute blame.
  out.used_fallback = true;
  for (size_t i = 0; i < items.size(); ++i) {
    if (!Verify(items[i].key, items[i].message, items[i].sig)) {
      out.first_bad = static_cast<int>(i);
      return out;
    }
  }
  // Unreachable in exact arithmetic (all-valid batches satisfy the combined
  // equation identically); individual verification is the ground truth.
  out.ok = true;
  return out;
}

}  // namespace xdeal
