// Schnorr signatures over the multiplicative group Z_p*, p = 2^255 - 19.
//
// This is the signature scheme used by parties (path-signature votes in the
// timelock protocol) and by CBC validators (block/status certificates).
//
// Substitution note (see DESIGN.md §6): the paper assumes an
// Ethereum/Bitcoin-style signature scheme (secp256k1). We implement textbook
// Schnorr over a 255-bit prime field instead of an elliptic curve: the
// protocol-visible interface (keygen / sign / verify, 64-byte signatures) and
// the metered cost (3000 gas per verification, §7.1) are identical, and the
// arithmetic is real — signatures genuinely verify only under the signing
// key. It is NOT hardened cryptography (deterministic nonces derived by
// hashing, no side-channel defenses, composite group order), which is fine
// for a simulator and wrong for production use.
//
//   keygen:  x <- H(seed) mod n,  y = g^x mod p        (n = p - 1, g = 2)
//   sign:    k = H(x || m) mod n, r = g^k mod p,
//            e = H(r || y || m) mod n, s = (k + e*x) mod n;  sig = (r, s)
//   verify:  g^s  ==  r * y^e  (mod p)

#ifndef XDEAL_CRYPTO_SCHNORR_H_
#define XDEAL_CRYPTO_SCHNORR_H_

#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/u256.h"
#include "util/bytes.h"
#include "util/det.h"
#include "util/result.h"

namespace xdeal {

/// Group parameters for the signature scheme.
struct SchnorrGroup {
  /// The field prime p = 2^255 - 19.
  static const U256& P();
  /// The exponent modulus n = p - 1.
  static const U256& N();
  /// The generator g = 2.
  static const U256& G();
};

/// A public verification key (group element y = g^x).
struct PublicKey {
  U256 y;

  bool operator==(const PublicKey& o) const { return y == o.y; }
  bool operator<(const PublicKey& o) const { return y < o.y; }

  /// Canonical 32-byte encoding, used in signed messages and certificates.
  Bytes Serialize() const { return y.ToBytes(); }

  /// Short fingerprint for logging.
  std::string Fingerprint() const;
};

/// A 64-byte signature (r, s).
struct Signature {
  U256 r;
  U256 s;

  bool operator==(const Signature& o) const { return r == o.r && s == o.s; }

  Bytes Serialize() const;
  static Result<Signature> Deserialize(const Bytes& bytes);
};

/// A signing key pair. The private exponent never leaves this object except
/// through Sign().
class KeyPair {
 public:
  /// Deterministically derives a key pair from a seed string (e.g. the party
  /// name plus a run seed). Same seed -> same keys, for reproducible runs.
  static KeyPair FromSeed(std::string_view seed);

  const PublicKey& public_key() const { return public_key_; }

  /// Signs a message (any byte string).
  XDEAL_DETERMINISTIC Signature Sign(const Bytes& message) const;
  Signature Sign(std::string_view message) const;

 private:
  KeyPair(U256 x, PublicKey pk) : x_(x), public_key_(pk) {}

  U256 x_;  // private exponent
  PublicKey public_key_;
};

/// Verifies that `sig` is a valid signature on `message` under `key`.
/// Counts as one "signature verification" for gas purposes (the caller,
/// i.e. a contract, charges kGasSigVerify).
XDEAL_DETERMINISTIC bool Verify(const PublicKey& key, const Bytes& message, const Signature& sig);
bool Verify(const PublicKey& key, std::string_view message,
            const Signature& sig);

/// One (key, message, signature) triple of a verification batch.
struct BatchItem {
  PublicKey key;
  Bytes message;
  Signature sig;
};

/// Outcome of BatchVerify. `ok` matches exactly what verifying each item
/// individually would conclude; `first_bad` names the first invalid item
/// when !ok; `used_fallback` reports that the combined check failed and the
/// per-signature fallback ran to attribute blame.
struct BatchVerifyResult {
  bool ok = false;
  bool used_fallback = false;
  int first_bad = -1;
};

/// Verifies a batch of independent Schnorr signatures with ONE combined
/// check: random 128-bit coefficients z_i (deterministically derived from
/// the whole batch, Fiat-Shamir style) reduce the k verification equations
/// to  g^(Σ z_i·s_i) == Π r_i^{z_i} · y_i^{z_i·e_i}  (mod p), evaluated as
/// a single shared-squaring multi-exponentiation — the O(1)-squaring-chains
/// fast path for 2f+1-signature status certificates. If the combined check
/// fails, falls back to per-signature verification to name the culprit.
/// Equivalent to individually verifying every item (up to ~2^-128 soundness
/// of the random linear combination). An empty batch verifies trivially.
XDEAL_DETERMINISTIC BatchVerifyResult BatchVerify(const std::vector<BatchItem>& items);

}  // namespace xdeal

#endif  // XDEAL_CRYPTO_SCHNORR_H_
