// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Every hash in the system goes through this implementation: block hashes,
// deal identifiers, vote messages, Merkle nodes, signature challenges, and
// proof-of-work. Validated against the FIPS test vectors in sha256_test.cc.

#ifndef XDEAL_CRYPTO_SHA256_H_
#define XDEAL_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/det.h"

namespace xdeal {

/// A 32-byte SHA-256 digest, comparable and hashable for use as a map key.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& o) const { return bytes == o.bytes; }
  bool operator!=(const Hash256& o) const { return bytes != o.bytes; }
  bool operator<(const Hash256& o) const { return bytes < o.bytes; }

  /// Lowercase hex (64 chars).
  std::string ToHex() const;

  /// First 8 hex chars — convenient for logs.
  std::string ShortHex() const;

  /// True if all bytes are zero (the default value).
  bool IsZero() const;

  /// Treats the first 8 bytes as a big-endian integer; used for PoW
  /// difficulty comparison and deterministic tie-breaking.
  uint64_t Prefix64() const;
};

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the digest. The hasher must not be reused.
  Hash256 Finish();

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// One-shot helpers.
XDEAL_DETERMINISTIC Hash256 Sha256Digest(const Bytes& data);
XDEAL_DETERMINISTIC Hash256 Sha256Digest(std::string_view data);

struct Hash256Hasher {
  size_t operator()(const Hash256& h) const {
    // Fold the first 8 digest bytes big-endian, byte by byte. A memcpy into
    // the size_t would read them in host order, making the hash value — and
    // any bucket layout derived from it — differ across endianness.
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v = (v << 8) | h.bytes[i];
    }
    return static_cast<size_t>(v);
  }
};

}  // namespace xdeal

#endif  // XDEAL_CRYPTO_SHA256_H_
