#include "crypto/u256.h"

#include <cstring>

namespace xdeal {

namespace {

// ---------------------------------------------------------------------------
// Digit-level division kernel (Knuth TAOCP vol 2, Algorithm D), base 2^32.
//
// Divides u (un digits, little-endian) by v (vn digits, v[vn-1] != 0),
// producing quotient q (un - vn + 1 digits) and remainder r (vn digits).
// Requires un >= vn. Adapted from the classic divmnu reference code.
// ---------------------------------------------------------------------------

constexpr int kMaxU = 17;  // 512 bits = 16 digits, +1 for normalization
constexpr int kMaxV = 8;   // 256 bits

void DivRemDigits(const uint32_t* u_in, int un, const uint32_t* v_in, int vn,
                  uint32_t* q, uint32_t* r) {
  const uint64_t kBase = 1ULL << 32;

  if (vn == 1) {
    uint64_t rem = 0;
    const uint32_t d = v_in[0];
    for (int j = un - 1; j >= 0; --j) {
      uint64_t acc = (rem << 32) | u_in[j];
      q[j] = static_cast<uint32_t>(acc / d);
      rem = acc % d;
    }
    r[0] = static_cast<uint32_t>(rem);
    return;
  }

  // D1: normalize so the divisor's top digit has its high bit set.
  const int s = __builtin_clz(v_in[vn - 1]);  // 0..31
  uint32_t v[kMaxV];
  uint32_t u[kMaxU];
  for (int i = vn - 1; i > 0; --i) {
    v[i] = (v_in[i] << s) | (s ? (v_in[i - 1] >> (32 - s)) : 0);
  }
  v[0] = v_in[0] << s;
  u[un] = s ? (u_in[un - 1] >> (32 - s)) : 0;
  for (int i = un - 1; i > 0; --i) {
    u[i] = (u_in[i] << s) | (s ? (u_in[i - 1] >> (32 - s)) : 0);
  }
  u[0] = u_in[0] << s;

  // D2..D7: main loop over quotient digits.
  for (int j = un - vn; j >= 0; --j) {
    // D3: estimate qhat from the top two digits.
    uint64_t num =
        (static_cast<uint64_t>(u[j + vn]) << 32) | u[j + vn - 1];
    uint64_t qhat = num / v[vn - 1];
    uint64_t rhat = num % v[vn - 1];
    while (qhat >= kBase ||
           qhat * v[vn - 2] >
               ((rhat << 32) | u[j + vn - 2])) {
      --qhat;
      rhat += v[vn - 1];
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (int i = 0; i < vn; ++i) {
      uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u[i + j]) -
                  static_cast<int64_t>(p & 0xFFFFFFFFULL) - borrow;
      u[i + j] = static_cast<uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    int64_t t = static_cast<int64_t>(u[j + vn]) -
                static_cast<int64_t>(carry) - borrow;
    u[j + vn] = static_cast<uint32_t>(t);
    q[j] = static_cast<uint32_t>(qhat);

    // D6: rare over-estimate — add the divisor back.
    if (t < 0) {
      --q[j];
      uint64_t c = 0;
      for (int i = 0; i < vn; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<uint32_t>(sum);
        c = sum >> 32;
      }
      u[j + vn] = static_cast<uint32_t>(u[j + vn] + c);
    }
  }

  // D8: denormalize the remainder.
  for (int i = 0; i < vn - 1; ++i) {
    r[i] = (u[i] >> s) |
           (s ? static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1])
                                      << (32 - s))
              : 0);
  }
  r[vn - 1] = u[vn - 1] >> s;
}

// Splits 64-bit limbs into 32-bit digits (little-endian).
void ToDigits(const uint64_t* limbs, int nlimbs, uint32_t* digits) {
  for (int i = 0; i < nlimbs; ++i) {
    digits[2 * i] = static_cast<uint32_t>(limbs[i]);
    digits[2 * i + 1] = static_cast<uint32_t>(limbs[i] >> 32);
  }
}

int SignificantDigits(const uint32_t* digits, int n) {
  while (n > 0 && digits[n - 1] == 0) --n;
  return n;
}

U256 FromDigits(const uint32_t* digits, int n) {
  uint64_t limbs[4] = {0, 0, 0, 0};
  for (int i = 0; i < n && i < 8; ++i) {
    limbs[i / 2] |= static_cast<uint64_t>(digits[i]) << (32 * (i % 2));
  }
  return U256::FromLimbsBigEndian(limbs[3], limbs[2], limbs[1], limbs[0]);
}

// Generic remainder: value given as digits (up to 16), modulus as U256.
U256 ModDigits(const uint32_t* val_digits, int val_n, const U256& m) {
  uint32_t vd[kMaxV];
  uint64_t mlimbs[4] = {m.limb(0), m.limb(1), m.limb(2), m.limb(3)};
  ToDigits(mlimbs, 4, vd);
  int vn = SignificantDigits(vd, 8);
  int un = SignificantDigits(val_digits, val_n);
  if (un < vn) return FromDigits(val_digits, un);
  uint32_t q[kMaxU];
  uint32_t r[kMaxV];
  DivRemDigits(val_digits, un, vd, vn, q, r);
  return FromDigits(r, vn);
}

// Full division of two U256 values: a = q*b + r.
void DivRem256(const U256& a, const U256& b, U256* q_out, U256* r_out) {
  uint32_t ud[kMaxU];
  uint32_t vd[kMaxV];
  uint64_t al[4] = {a.limb(0), a.limb(1), a.limb(2), a.limb(3)};
  uint64_t bl[4] = {b.limb(0), b.limb(1), b.limb(2), b.limb(3)};
  ToDigits(al, 4, ud);
  ToDigits(bl, 4, vd);
  int un = SignificantDigits(ud, 8);
  int vn = SignificantDigits(vd, 8);
  if (un < vn) {
    *q_out = U256();
    *r_out = a;
    return;
  }
  uint32_t q[kMaxU] = {0};
  uint32_t r[kMaxV] = {0};
  DivRemDigits(ud, un, vd, vn, q, r);
  *q_out = FromDigits(q, un - vn + 1);
  *r_out = FromDigits(r, vn);
}

}  // namespace

U256 U256::FromHex(std::string_view hex, bool* ok) {
  if (ok) *ok = false;
  U256 out;
  if (hex.size() > 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.empty() || hex.size() > 64) return out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return U256();
    }
    out = out.ShiftLeft(4);
    out.limbs_[0] |= static_cast<uint64_t>(v);
  }
  if (ok) *ok = true;
  return out;
}

U256 U256::FromHash(const Hash256& h) {
  U256 out;
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = 0;
    for (int j = 0; j < 8; ++j) {
      limb = (limb << 8) | h.bytes[i * 8 + j];
    }
    out.limbs_[3 - i] = limb;
  }
  return out;
}

Bytes U256::ToBytes() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = limbs_[3 - i];
    for (int j = 0; j < 8; ++j) {
      out[i * 8 + j] = static_cast<uint8_t>(limb >> (56 - 8 * j));
    }
  }
  return out;
}

std::string U256::ToHex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(64, '0');
  for (int i = 0; i < 64; ++i) {
    int limb = (63 - i) / 16;
    int shift = ((63 - i) % 16) * 4;
    out[i] = kDigits[(limbs_[limb] >> shift) & 0xF];
  }
  return out;
}

int U256::Compare(const U256& o) const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] < o.limbs_[i]) return -1;
    if (limbs_[i] > o.limbs_[i]) return 1;
  }
  return 0;
}

U256 U256::AddWithCarry(const U256& o, uint64_t* carry_out) const {
  U256 out;
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    __uint128_t sum = static_cast<__uint128_t>(limbs_[i]) + o.limbs_[i] + carry;
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry_out) *carry_out = carry;
  return out;
}

U256 U256::Add(const U256& o) const { return AddWithCarry(o, nullptr); }

U256 U256::Sub(const U256& o) const {
  U256 out;
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    __uint128_t diff = static_cast<__uint128_t>(limbs_[i]) - o.limbs_[i] - borrow;
    out.limbs_[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  return out;
}

U256 U256::ShiftLeft(unsigned bits) const {
  if (bits >= 256) return U256();
  U256 out;
  unsigned limb_shift = bits / 64;
  unsigned bit_shift = bits % 64;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = 0;
    int src = i - static_cast<int>(limb_shift);
    if (src >= 0) {
      v = limbs_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= limbs_[src - 1] >> (64 - bit_shift);
      }
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 U256::ShiftRight(unsigned bits) const {
  if (bits >= 256) return U256();
  U256 out;
  unsigned limb_shift = bits / 64;
  unsigned bit_shift = bits % 64;
  for (int i = 0; i < 4; ++i) {
    uint64_t v = 0;
    unsigned src = i + limb_shift;
    if (src < 4) {
      v = limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) {
        v |= limbs_[src + 1] << (64 - bit_shift);
      }
    }
    out.limbs_[i] = v;
  }
  return out;
}

int U256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) {
      return 64 * i + (64 - __builtin_clzll(limbs_[i]));
    }
  }
  return 0;
}

U512 U512::Mul(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      __uint128_t cur = static_cast<__uint128_t>(a.limb(i)) * b.limb(j) +
                        out.limbs[i + j] + carry;
      out.limbs[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs[i + 4] = carry;
  }
  return out;
}

U256 U512::Mod(const U256& m) const {
  uint32_t digits[16];
  ToDigits(limbs.data(), 8, digits);
  return ModDigits(digits, 16, m);
}

U256 U256::Mod(const U256& a, const U256& m) {
  uint32_t digits[8];
  uint64_t al[4] = {a.limb(0), a.limb(1), a.limb(2), a.limb(3)};
  ToDigits(al, 4, digits);
  return ModDigits(digits, 8, m);
}

U256 U256::AddMod(const U256& a, const U256& b, const U256& m) {
  // Inputs are reduced first so the carry logic below is exact.
  U256 ar = Mod(a, m);
  U256 br = Mod(b, m);
  uint64_t carry = 0;
  U256 sum = ar.AddWithCarry(br, &carry);
  if (carry || sum >= m) {
    // With a virtual carry bit, (sum - m) mod 2^256 is the true a+b-m.
    sum = sum.Sub(m);
  }
  return sum;
}

U256 U256::SubMod(const U256& a, const U256& b, const U256& m) {
  U256 ar = Mod(a, m);
  U256 br = Mod(b, m);
  if (ar >= br) return ar.Sub(br);
  return m.Sub(br.Sub(ar));
}

U256 U256::MulMod(const U256& a, const U256& b, const U256& m) {
  return U512::Mul(a, b).Mod(m);
}

U256 U256::PowMod(const U256& base, const U256& exp, const U256& m) {
  if (m == U256(1)) return U256();
  U256 result(1);
  U256 b = Mod(base, m);
  int bits = exp.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = MulMod(result, result, m);
    if (exp.Bit(i)) {
      result = MulMod(result, b, m);
    }
  }
  return result;
}

U256 U256::MultiExpMod(const std::vector<std::pair<U256, U256>>& terms,
                       const U256& m) {
  if (m == U256(1)) return U256();
  U256 result(1);
  if (terms.empty()) return result;

  std::vector<U256> bases;
  bases.reserve(terms.size());
  int bits = 0;
  for (const auto& [base, exp] : terms) {
    bases.push_back(Mod(base, m));
    if (exp.BitLength() > bits) bits = exp.BitLength();
  }
  // One shared squaring chain over the longest exponent; at each bit
  // position, multiply in every base whose exponent has that bit set.
  for (int i = bits - 1; i >= 0; --i) {
    result = MulMod(result, result, m);
    for (size_t t = 0; t < terms.size(); ++t) {
      if (terms[t].second.Bit(i)) {
        result = MulMod(result, bases[t], m);
      }
    }
  }
  return result;
}

U256 U256::InvMod(const U256& a, const U256& m) {
  // Extended Euclid, tracking the Bezout coefficient of `a` modulo m.
  U256 r0 = m;
  U256 r1 = Mod(a, m);
  U256 t0;        // 0
  U256 t1(1);
  while (!r1.IsZero()) {
    U256 q, r2;
    DivRem256(r0, r1, &q, &r2);
    U256 t2 = SubMod(t0, MulMod(Mod(q, m), t1, m), m);
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  if (r0 != U256(1)) return U256();  // not invertible
  return t0;
}

}  // namespace xdeal
