// U256: fixed-width 256-bit unsigned integer arithmetic.
//
// Built from scratch on 64-bit limbs (little-endian limb order) with a
// 512-bit intermediate for multiplication and Knuth Algorithm D division.
// This is the numeric substrate for the Schnorr signature scheme
// (schnorr.h): modular exponentiation over a 256-bit prime field.

#ifndef XDEAL_CRYPTO_U256_H_
#define XDEAL_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace xdeal {

/// 256-bit unsigned integer. Value semantics; all operations are constant
/// size (no allocation). Overflow wraps mod 2^256 for Add/Sub/Mul unless the
/// wide variants are used.
class U256 {
 public:
  /// Zero.
  constexpr U256() : limbs_{0, 0, 0, 0} {}

  /// From a 64-bit value.
  constexpr explicit U256(uint64_t v) : limbs_{v, 0, 0, 0} {}

  /// From four 64-bit limbs, most-significant first (reads like hex).
  static constexpr U256 FromLimbsBigEndian(uint64_t l3, uint64_t l2,
                                           uint64_t l1, uint64_t l0) {
    U256 out;
    out.limbs_ = {l0, l1, l2, l3};
    return out;
  }

  /// Parses a hex string of up to 64 digits (no 0x prefix required).
  /// Returns zero on malformed input paired with `ok=false`.
  static U256 FromHex(std::string_view hex, bool* ok = nullptr);

  /// Interprets a 32-byte big-endian buffer (e.g. a Hash256) as an integer.
  static U256 FromHash(const Hash256& h);

  /// Big-endian 32-byte encoding.
  Bytes ToBytes() const;

  /// 64 hex digits, most significant first.
  std::string ToHex() const;

  bool IsZero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  bool IsOdd() const { return limbs_[0] & 1; }

  uint64_t limb(int i) const { return limbs_[i]; }
  uint64_t Low64() const { return limbs_[0]; }

  /// Comparison.
  int Compare(const U256& o) const;
  bool operator==(const U256& o) const { return limbs_ == o.limbs_; }
  bool operator!=(const U256& o) const { return limbs_ != o.limbs_; }
  bool operator<(const U256& o) const { return Compare(o) < 0; }
  bool operator<=(const U256& o) const { return Compare(o) <= 0; }
  bool operator>(const U256& o) const { return Compare(o) > 0; }
  bool operator>=(const U256& o) const { return Compare(o) >= 0; }

  /// Wrapping arithmetic mod 2^256. AddWithCarry reports the carry-out.
  U256 Add(const U256& o) const;
  U256 AddWithCarry(const U256& o, uint64_t* carry_out) const;
  U256 Sub(const U256& o) const;  // wraps on underflow
  U256 ShiftLeft(unsigned bits) const;
  U256 ShiftRight(unsigned bits) const;

  /// Number of significant bits (0 for zero).
  int BitLength() const;
  bool Bit(int i) const {
    return (limbs_[i / 64] >> (i % 64)) & 1;
  }

  /// Modular arithmetic. `m` must be nonzero.
  static U256 AddMod(const U256& a, const U256& b, const U256& m);
  static U256 SubMod(const U256& a, const U256& b, const U256& m);
  static U256 MulMod(const U256& a, const U256& b, const U256& m);
  static U256 PowMod(const U256& base, const U256& exp, const U256& m);
  static U256 Mod(const U256& a, const U256& m);

  /// Simultaneous multi-exponentiation: Π base_i^{exp_i} mod m over all
  /// (base, exp) pairs in `terms`, via an interleaved square-and-multiply
  /// that shares ONE squaring chain across every term (Shamir's trick
  /// generalized to k bases). For k terms of b-bit exponents this costs
  /// b squarings + (set bits) multiplies instead of k·b squarings — the
  /// kernel behind batched Schnorr certificate verification. `m` must be
  /// nonzero; an empty `terms` yields 1 mod m.
  static U256 MultiExpMod(const std::vector<std::pair<U256, U256>>& terms,
                          const U256& m);

  /// Modular inverse via extended binary GCD; returns zero if gcd(a,m) != 1.
  static U256 InvMod(const U256& a, const U256& m);

 private:
  // limbs_[0] is least significant.
  std::array<uint64_t, 4> limbs_;
};

/// 512-bit product of two U256 values plus remainder operations; exposed for
/// testing the division kernel.
struct U512 {
  std::array<uint64_t, 8> limbs{};  // little-endian

  static U512 Mul(const U256& a, const U256& b);

  /// Remainder of this 512-bit value modulo a nonzero 256-bit modulus,
  /// via Knuth Algorithm D with 32-bit digits.
  U256 Mod(const U256& m) const;
};

}  // namespace xdeal

#endif  // XDEAL_CRYPTO_U256_H_
