#include "sim/network.h"

namespace xdeal {

Tick SynchronousNetwork::SampleDelay(Tick /*now*/, Endpoint /*from*/,
                                     Endpoint /*to*/, Rng* rng) {
  if (min_delay_ >= max_delay_) return min_delay_;
  return rng->Between(min_delay_, max_delay_);
}

Tick SemiSynchronousNetwork::SampleDelay(Tick now, Endpoint /*from*/,
                                         Endpoint /*to*/, Rng* rng) {
  if (now >= gst_) {
    if (min_delay_ >= max_delay_) return min_delay_;
    return rng->Between(min_delay_, max_delay_);
  }
  // Pre-GST: arbitrary delay, but delivery no later than gst + max_delay.
  Tick hi = pre_gst_max_ > min_delay_ ? pre_gst_max_ : min_delay_;
  Tick delay = rng->Between(min_delay_, hi);
  Tick latest = (gst_ - now) + max_delay_;  // arrive by GST + max_delay
  return delay < latest ? delay : latest;
}

Tick TargetedDosNetwork::SampleDelay(Tick now, Endpoint from, Endpoint to,
                                     Rng* rng) {
  Tick base = base_->SampleDelay(now, from, to, rng);
  bool targeted = targets_.count(from) > 0 || targets_.count(to) > 0;
  if (targeted && now >= attack_start_ && now < attack_end_) {
    // The message is held until the attack subsides.
    return (attack_end_ - now) + base;
  }
  return base;
}

}  // namespace xdeal
