// Network timing models.
//
// The paper's two protocols assume different communication models:
//   - Timelock (§5): synchronous — a known upper bound Δ on the time needed
//     to change any blockchain's state in a way observable by all parties.
//   - CBC (§6): eventually synchronous (Dwork-Lynch-Stockmeyer) — delays are
//     unbounded until a global stabilization time (GST), bounded by Δ after.
//
// A NetworkModel samples the one-way delay of a message between endpoints
// (party -> chain submissions, chain -> party observation notifications).
// Decorators model targeted denial-of-service attacks (§5.3, §9).

#ifndef XDEAL_SIM_NETWORK_H_
#define XDEAL_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <set>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace xdeal {

/// Opaque endpoint identifier. Parties and chains share one id space; the
/// World assigns them (parties first, then chains).
struct Endpoint {
  uint32_t id = 0;
  bool operator==(const Endpoint& o) const { return id == o.id; }
  bool operator<(const Endpoint& o) const { return id < o.id; }
};

/// Samples message delays. Implementations must be deterministic given the
/// Rng stream.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// One-way delay for a message sent at `now` from `from` to `to`.
  virtual Tick SampleDelay(Tick now, Endpoint from, Endpoint to, Rng* rng) = 0;
};

/// Synchronous model: uniform delay in [min_delay, max_delay]. The protocol's
/// Δ must be chosen >= max_delay plus block-inclusion latency.
class SynchronousNetwork : public NetworkModel {
 public:
  SynchronousNetwork(Tick min_delay, Tick max_delay)
      : min_delay_(min_delay), max_delay_(max_delay) {}

  Tick SampleDelay(Tick now, Endpoint from, Endpoint to, Rng* rng) override;

 private:
  Tick min_delay_;
  Tick max_delay_;
};

/// Eventually-synchronous model: before GST delays are uniform in
/// [min_delay, pre_gst_max] (pre_gst_max may be enormous); at/after GST the
/// bound drops to max_delay. A message sent before GST is additionally
/// guaranteed to arrive by GST + max_delay (the classical formulation).
class SemiSynchronousNetwork : public NetworkModel {
 public:
  SemiSynchronousNetwork(Tick gst, Tick pre_gst_max, Tick min_delay,
                         Tick max_delay)
      : gst_(gst),
        pre_gst_max_(pre_gst_max),
        min_delay_(min_delay),
        max_delay_(max_delay) {}

  Tick SampleDelay(Tick now, Endpoint from, Endpoint to, Rng* rng) override;

  Tick gst() const { return gst_; }

 private:
  Tick gst_;
  Tick pre_gst_max_;
  Tick min_delay_;
  Tick max_delay_;
};

/// Decorator: during [attack_start, attack_end), any message to or from a
/// targeted endpoint is delayed until the end of the attack window (plus the
/// base delay). Models the §5.3 scenario where parties are "driven offline
/// before they can forward Bob's vote".
class TargetedDosNetwork : public NetworkModel {
 public:
  TargetedDosNetwork(std::unique_ptr<NetworkModel> base, Tick attack_start,
                     Tick attack_end)
      : base_(std::move(base)),
        attack_start_(attack_start),
        attack_end_(attack_end) {}

  void AddTarget(Endpoint e) { targets_.insert(e); }

  Tick SampleDelay(Tick now, Endpoint from, Endpoint to, Rng* rng) override;

 private:
  std::unique_ptr<NetworkModel> base_;
  Tick attack_start_;
  Tick attack_end_;
  std::set<Endpoint> targets_;
};

}  // namespace xdeal

#endif  // XDEAL_SIM_NETWORK_H_
