#include "sim/scheduler.h"

#include <utility>

namespace xdeal {

void Scheduler::ScheduleAt(Tick t, Callback fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Scheduler::ScheduleAfter(Tick delay, Callback fn) {
  // Saturating add: kTickMax means "never" and must not wrap.
  Tick t = (delay > kTickMax - now_) ? kTickMax : now_ + delay;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the callback may schedule new events.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

size_t Scheduler::Run(Tick limit) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    Step();
    ++executed;
  }
  return executed;
}

}  // namespace xdeal
