#include "sim/scheduler.h"

#include <utility>

namespace xdeal {

void Scheduler::ScheduleAt(Tick t, Callback fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
  if (queue_.size() > stats_.max_pending) {
    stats_.max_pending = queue_.size();
    stats_.max_pending_at = now_;
  }
}

void Scheduler::ScheduleAfter(Tick delay, Callback fn) {
  // Saturating add: kTickMax means "never" and must not wrap.
  Tick t = (delay > kTickMax - now_) ? kTickMax : now_ + delay;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
  if (queue_.size() > stats_.max_pending) {
    stats_.max_pending = queue_.size();
    stats_.max_pending_at = now_;
  }
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  // Move out before pop: the callback may schedule new events. The const_cast
  // is safe because the event is popped immediately and never compared again.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  ++stats_.executed;
  if (step_observer_) step_observer_(now_, queue_.size());
  return true;
}

size_t Scheduler::Run(Tick limit) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    Step();
    ++executed;
  }
  return executed;
}

}  // namespace xdeal
