#include "sim/scheduler.h"

#include <utility>

namespace xdeal {

bool ChoicePolicy::ShouldDrop(const EnabledEvent& /*chosen*/) { return false; }

size_t DefaultChoicePolicy::Choose(
    const std::vector<EnabledEvent>& /*enabled*/) {
  return 0;
}

size_t ScriptedChoicePolicy::Choose(const std::vector<EnabledEvent>& enabled) {
  if (next_ >= script_.size()) {
    ++next_;
    return 0;
  }
  size_t choice = script_[next_++];
  return choice < enabled.size() ? choice : 0;
}

void Scheduler::Push(Event ev) {
  queue_.push(std::move(ev));
  if (queue_.size() > stats_.max_pending) {
    stats_.max_pending = queue_.size();
    stats_.max_pending_at = now_;
  }
}

void Scheduler::ScheduleAt(Tick t, EventLabel label, Callback fn) {
  if (t < now_) t = now_;
  Push(Event{t, next_seq_++, label, std::move(fn)});
}

void Scheduler::ScheduleAfter(Tick delay, EventLabel label, Callback fn) {
  // Saturating add: kTickMax means "never" and must not wrap.
  Tick t = (delay > kTickMax - now_) ? kTickMax : now_ + delay;
  Push(Event{t, next_seq_++, label, std::move(fn)});
}

void Scheduler::RegisterDurableHandler(std::string name,
                                       DurableHandler handler) {
  durable_handlers_[std::move(name)] = std::move(handler);
}

void Scheduler::ScheduleDurableAt(Tick t, EventLabel label,
                                  std::string handler, uint64_t payload) {
  if (t < now_) t = now_;
  uint64_t seq = next_seq_++;
  durable_[seq] = DurableEvent{seq, t, label, std::move(handler), payload};
  // The queued wrapper resolves the handler by name at fire time, so an
  // imported event works even if its handler was registered afterwards.
  Push(Event{t, seq, label, [this, seq]() {
         auto it = durable_.find(seq);
         if (it == durable_.end()) return;
         DurableEvent rec = std::move(it->second);
         durable_.erase(it);
         auto h = durable_handlers_.find(rec.handler);
         if (h != durable_handlers_.end()) h->second(rec.payload);
       }});
}

std::vector<DurableEvent> Scheduler::PendingDurable() const {
  std::vector<DurableEvent> out;
  out.reserve(durable_.size());
  for (const auto& [seq, rec] : durable_) out.push_back(rec);
  return out;  // map iteration order == seq ascending
}

void Scheduler::ImportDurable(const std::vector<DurableEvent>& events) {
  for (const DurableEvent& rec : events) {
    uint64_t seq = rec.seq;
    durable_[seq] = rec;
    Push(Event{rec.time, seq, rec.label, [this, seq]() {
           auto it = durable_.find(seq);
           if (it == durable_.end()) return;
           DurableEvent r = std::move(it->second);
           durable_.erase(it);
           auto h = durable_handlers_.find(r.handler);
           if (h != durable_handlers_.end()) h->second(r.payload);
         }});
  }
}

void Scheduler::RestoreClock(Tick now, uint64_t next_seq,
                             const SchedulerStats& stats) {
  now_ = now;
  next_seq_ = next_seq;
  stats_ = stats;
}

// With a policy installed: gather every event tied at the earliest pending
// time, collapse same-(kind, chain, actor) ties into FIFO channels (only the
// lowest-seq member of a channel is enabled — see the header), let the policy
// choose, and reinsert the rest. The pop order of the tie group is (time,
// seq), so `ties` is already seq-sorted.
bool Scheduler::PolicyStep() {
  std::vector<Event> ties;
  Tick t = queue_.top().time;
  while (!queue_.empty() && queue_.top().time == t) {
    // Move out before pop (see Step for why the const_cast is safe).
    ties.push_back(std::move(const_cast<Event&>(queue_.top())));
    queue_.pop();
  }

  std::vector<EnabledEvent> enabled;
  std::vector<size_t> tie_index;  // enabled index -> ties index
  enabled.reserve(ties.size());
  for (size_t i = 0; i < ties.size(); ++i) {
    const EventLabel& label = ties[i].label;
    bool shadowed = false;
    if (label.kind != EventKind::kInternal) {
      for (size_t j = 0; j < i && !shadowed; ++j) {
        const EventLabel& prev = ties[j].label;
        shadowed = prev.kind == label.kind && prev.chain == label.chain &&
                   prev.actor == label.actor;
      }
    }
    if (!shadowed) {
      enabled.push_back(EnabledEvent{ties[i].seq, ties[i].time, label});
      tie_index.push_back(i);
    }
  }

  size_t choice = policy_->Choose(enabled);
  if (choice >= enabled.size()) choice = 0;
  size_t chosen_tie = tie_index[choice];
  Event ev = std::move(ties[chosen_tie]);
  for (size_t i = 0; i < ties.size(); ++i) {
    if (i != chosen_tie) Push(std::move(ties[i]));
  }

  now_ = ev.time;
  if (policy_->ShouldDrop(enabled[choice])) {
    ++stats_.dropped;
    return true;
  }
  ev.fn();
  ++stats_.executed;
  if (step_observer_) step_observer_(now_, queue_.size());
  return true;
}

bool Scheduler::Step() {
  if (queue_.empty()) return false;
  if (policy_ != nullptr) return PolicyStep();
  // Move out before pop: the callback may schedule new events. The const_cast
  // is safe because the event is popped immediately and never compared again.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  ++stats_.executed;
  if (step_observer_) step_observer_(now_, queue_.size());
  return true;
}

size_t Scheduler::Run(Tick limit) {
  size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    Step();
    ++executed;
  }
  return executed;
}

}  // namespace xdeal
