// Deterministic discrete-event scheduler with a pluggable choose-point.
//
// All activity in the system — transaction submission, block production,
// observation notifications, party timeouts — is an event on this scheduler.
// With no ChoicePolicy installed (the default), events at equal times run in
// schedule order (FIFO by sequence number), so every run is exactly
// reproducible given the same seed.
//
// A ChoicePolicy turns the same-tick tie-break into an explicit choose-point:
// at each step the policy sees the set of currently-enabled events (all
// events at the earliest pending time, with their dependence labels) and
// picks which fires next. This is the seam the exhaustive interleaving
// explorer (core/explore.h) drives with dynamic partial-order reduction, and
// the same seam doubles as a deterministic fault-injection API (a policy may
// also drop the event it selected — a lost message).
//
// Determinism invariants:
//   - No policy (nullptr): execution order is exactly (time, seq) ascending —
//     bit-for-bit the historical order; golden fingerprints depend on this.
//   - DefaultChoicePolicy reproduces the no-policy order exactly (it always
//     picks the lowest-seq enabled event and drops nothing).
//   - Same policy decisions => same execution, because all other scheduler
//     state is deterministic.
//
// Channel discipline: same-tick events with identical non-internal labels
// (same kind, chain, actor) form a FIFO chain — only the lowest-seq member
// is presented as enabled, the rest become eligible after it fires. This
// encodes ordered per-actor message channels (a party's subscription socket
// delivers one block's receipts in on-chain order) and keeps the explored
// interleaving space free of spurious k! permutations that no real network
// could produce.

#ifndef XDEAL_SIM_SCHEDULER_H_
#define XDEAL_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "util/det.h"

namespace xdeal {

/// Simulated time, in abstract ticks. The protocols express Δ (the
/// synchrony bound) in the same unit.
using Tick = uint64_t;

constexpr Tick kTickMax = ~static_cast<Tick>(0);

/// What kind of system activity a scheduled event represents. Labels drive
/// the explorer's independence relation; kInternal (the default for the
/// unlabeled Schedule* overloads) conservatively conflicts with everything.
enum class EventKind : uint8_t {
  kInternal = 0,     // unlabeled: assume it may touch any state
  kTxArrival,        // a submitted transaction reaching a chain's mempool
  kBlockProduction,  // a chain producing the block at a boundary
  kObservation,      // a receipt notification delivered to an observer
  kTimer,            // a party/protocol phase hook firing
};

/// Dependence metadata for one scheduled event: which chain's queue/state the
/// callback touches and which actor's (party's/observer's) local state it
/// mutates. kNoId marks a dimension as not applicable.
struct EventLabel {
  /// Sentinel for "no chain" / "no actor".
  static constexpr uint32_t kNoId = 0xFFFFFFFFu;

  EventKind kind = EventKind::kInternal;
  uint32_t chain = kNoId;  // chain whose mempool/ledger the event touches
  uint32_t actor = kNoId;  // party/endpoint whose local state it mutates

  /// A transaction from party `sender` arriving at `chain`'s mempool.
  static EventLabel TxArrival(uint32_t chain, uint32_t sender) {
    return EventLabel{EventKind::kTxArrival, chain, sender};
  }
  /// `chain` producing the block at a boundary.
  static EventLabel BlockProduction(uint32_t chain) {
    return EventLabel{EventKind::kBlockProduction, chain, kNoId};
  }
  /// A receipt of `chain` delivered to observer endpoint `observer`.
  static EventLabel Observation(uint32_t chain, uint32_t observer) {
    return EventLabel{EventKind::kObservation, chain, observer};
  }
  /// A protocol phase hook owned by `actor` (a party id).
  static EventLabel Timer(uint32_t actor) {
    return EventLabel{EventKind::kTimer, EventLabel::kNoId, actor};
  }
};

/// One event eligible to fire now, as presented to a ChoicePolicy: identity
/// (seq — stable for the lifetime of the event), time, and dependence label.
struct EnabledEvent {
  uint64_t seq = 0;
  Tick time = 0;
  EventLabel label;
};

/// Chooses which of the currently-enabled events fires next. `enabled` is
/// sorted by seq ascending and never empty; index 0 is the default (FIFO)
/// choice. Implementations must be deterministic functions of the enabled
/// sets they have seen — the explorer's replay guarantee depends on it.
class ChoicePolicy {
 public:
  virtual ~ChoicePolicy() = default;

  /// Picks the index into `enabled` of the event to fire next. Out-of-range
  /// returns are clamped to 0.
  virtual size_t Choose(const std::vector<EnabledEvent>& enabled) = 0;

  /// Fault-injection hook: if true, the chosen event is consumed without
  /// running its callback (a dropped message). Default: never drop.
  virtual bool ShouldDrop(const EnabledEvent& chosen);
};

/// The explicit form of the built-in tie-break: always fire the lowest-seq
/// enabled event. Installing this policy is bit-for-bit equivalent to
/// installing none (tested by sim_test).
class DefaultChoicePolicy : public ChoicePolicy {
 public:
  size_t Choose(const std::vector<EnabledEvent>& enabled) override;
};

/// Replays a recorded decision sequence: the i-th Choose call returns the
/// i-th scripted index (clamped); after the script is exhausted every call
/// returns 0 (the default order). This is how an explorer trace becomes a
/// deterministic reproducer.
class ScriptedChoicePolicy : public ChoicePolicy {
 public:
  explicit ScriptedChoicePolicy(std::vector<uint32_t> script)
      : script_(std::move(script)) {}

  size_t Choose(const std::vector<EnabledEvent>& enabled) override;

  /// How many Choose calls have been served so far.
  size_t calls() const { return next_; }

 private:
  std::vector<uint32_t> script_;
  size_t next_ = 0;
};

/// Load counters maintained by the scheduler: how many events ran and how
/// deep the queue ever got. Heavy-traffic engines read these to quantify
/// backlog pressure (a proxy for scheduling fairness under contention).
struct SchedulerStats {
  uint64_t executed = 0;    // events run so far
  uint64_t dropped = 0;     // events consumed unrun by a policy drop
  size_t max_pending = 0;   // high-water mark of the event queue
  Tick max_pending_at = 0;  // sim time when the high-water mark was set
};

/// A scheduled event that survives serialization: instead of an opaque
/// closure it names a registered handler and carries a 64-bit payload. This
/// is the checkpointable subset of the event queue — cross-epoch work
/// (validator reconfiguration, broker crash/recovery) is scheduled durably
/// so a restored run re-fires it at the original (time, seq) position.
struct DurableEvent {
  uint64_t seq = 0;  // original sequence number; preserved across restore
  Tick time = 0;
  EventLabel label;
  std::string handler;  // name registered via RegisterDurableHandler
  uint64_t payload = 0;
};

/// Deterministic event loop.
class Scheduler {
 public:
  using Callback = std::function<void()>;
  /// Callback type for named durable-event handlers (payload-carrying).
  using DurableHandler = std::function<void(uint64_t)>;
  /// Observation hook invoked after every executed event with the current
  /// time and the number of still-pending events. Must not schedule or run
  /// events itself — it is a passive fairness/backlog probe.
  using StepObserver = std::function<void(Tick, size_t)>;

  Tick now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  const SchedulerStats& stats() const { return stats_; }

  /// Installs (or clears, with nullptr) the per-step observation hook.
  void SetStepObserver(StepObserver observer) {
    step_observer_ = std::move(observer);
  }

  /// Installs (or clears, with nullptr) the same-tick choose-point policy.
  /// Non-owning; the policy must outlive the scheduler or be cleared first.
  void SetChoicePolicy(ChoicePolicy* policy) { policy_ = policy; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void ScheduleAt(Tick t, Callback fn) { ScheduleAt(t, EventLabel{}, std::move(fn)); }
  /// Schedules `fn` at absolute time `t` with a dependence label.
  void ScheduleAt(Tick t, EventLabel label, Callback fn);

  /// Schedules `fn` `delay` ticks from now.
  void ScheduleAfter(Tick delay, Callback fn) {
    ScheduleAfter(delay, EventLabel{}, std::move(fn));
  }
  /// Schedules `fn` `delay` ticks from now with a dependence label.
  void ScheduleAfter(Tick delay, EventLabel label, Callback fn);

  /// Registers (or replaces) the handler a durable event of this name
  /// invokes at fire time. Lookup happens when the event fires, so durable
  /// events may be imported before their handlers are registered.
  void RegisterDurableHandler(std::string name, DurableHandler handler);

  /// Schedules a durable (serializable) event at absolute time `t`. The
  /// named handler receives `payload` when the event fires.
  void ScheduleDurableAt(Tick t, EventLabel label, std::string handler,
                         uint64_t payload);

  /// Number of still-pending durable events (subset of pending()). A
  /// checkpoint-safe drain runs while pending() > pending_durable().
  size_t pending_durable() const { return durable_.size(); }

  /// Snapshot of the pending durable events, sorted by seq ascending.
  std::vector<DurableEvent> PendingDurable() const;

  /// Re-inserts previously exported durable events with their ORIGINAL
  /// sequence numbers (so same-tick tie-breaks replay bit-identically).
  /// Callers must RestoreClock first so next_seq_ is already past every
  /// imported seq.
  void ImportDurable(const std::vector<DurableEvent>& events);

  /// Restores the clock, sequence counter, and load stats from a
  /// checkpoint. Only valid on a scheduler with an empty queue.
  void RestoreClock(Tick now, uint64_t next_seq, const SchedulerStats& stats);

  /// Runs a single event; returns false if the queue is empty.
  XDEAL_DETERMINISTIC bool Step();

  /// Runs events until the queue is empty or the next event is after
  /// `limit`. Returns the number of events executed.
  XDEAL_DETERMINISTIC size_t Run(Tick limit = kTickMax);

 private:
  struct Event {
    Tick time;
    uint64_t seq;
    EventLabel label;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Push(Event ev);
  bool PolicyStep();

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  SchedulerStats stats_;
  StepObserver step_observer_;
  ChoicePolicy* policy_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Durable-event bookkeeping: pending durable records keyed by seq (erased
  // when the queued wrapper fires) and the name -> handler registry.
  std::map<uint64_t, DurableEvent> durable_;
  std::map<std::string, DurableHandler> durable_handlers_;
};

}  // namespace xdeal

#endif  // XDEAL_SIM_SCHEDULER_H_
