// Deterministic discrete-event scheduler.
//
// All activity in the system — transaction submission, block production,
// observation notifications, party timeouts — is an event on this scheduler.
// Events at equal times run in schedule order (FIFO by sequence number), so
// every run is exactly reproducible given the same seed.

#ifndef XDEAL_SIM_SCHEDULER_H_
#define XDEAL_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xdeal {

/// Simulated time, in abstract ticks. The protocols express Δ (the
/// synchrony bound) in the same unit.
using Tick = uint64_t;

constexpr Tick kTickMax = ~static_cast<Tick>(0);

/// Load counters maintained by the scheduler: how many events ran and how
/// deep the queue ever got. Heavy-traffic engines read these to quantify
/// backlog pressure (a proxy for scheduling fairness under contention).
struct SchedulerStats {
  uint64_t executed = 0;    // events run so far
  size_t max_pending = 0;   // high-water mark of the event queue
  Tick max_pending_at = 0;  // sim time when the high-water mark was set
};

/// Deterministic event loop.
class Scheduler {
 public:
  using Callback = std::function<void()>;
  /// Observation hook invoked after every executed event with the current
  /// time and the number of still-pending events. Must not schedule or run
  /// events itself — it is a passive fairness/backlog probe.
  using StepObserver = std::function<void(Tick, size_t)>;

  Tick now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  const SchedulerStats& stats() const { return stats_; }

  /// Installs (or clears, with nullptr) the per-step observation hook.
  void SetStepObserver(StepObserver observer) {
    step_observer_ = std::move(observer);
  }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void ScheduleAt(Tick t, Callback fn);

  /// Schedules `fn` `delay` ticks from now.
  void ScheduleAfter(Tick delay, Callback fn);

  /// Runs a single event; returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue is empty or the next event is after
  /// `limit`. Returns the number of events executed.
  size_t Run(Tick limit = kTickMax);

 private:
  struct Event {
    Tick time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  SchedulerStats stats_;
  StepObserver step_observer_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace xdeal

#endif  // XDEAL_SIM_SCHEDULER_H_
