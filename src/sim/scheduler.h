// Deterministic discrete-event scheduler.
//
// All activity in the system — transaction submission, block production,
// observation notifications, party timeouts — is an event on this scheduler.
// Events at equal times run in schedule order (FIFO by sequence number), so
// every run is exactly reproducible given the same seed.

#ifndef XDEAL_SIM_SCHEDULER_H_
#define XDEAL_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xdeal {

/// Simulated time, in abstract ticks. The protocols express Δ (the
/// synchrony bound) in the same unit.
using Tick = uint64_t;

constexpr Tick kTickMax = ~static_cast<Tick>(0);

/// Deterministic event loop.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Tick now() const { return now_; }
  size_t pending() const { return queue_.size(); }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  void ScheduleAt(Tick t, Callback fn);

  /// Schedules `fn` `delay` ticks from now.
  void ScheduleAfter(Tick delay, Callback fn);

  /// Runs a single event; returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue is empty or the next event is after
  /// `limit`. Returns the number of events executed.
  size_t Run(Tick limit = kTickMax);

 private:
  struct Event {
    Tick time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace xdeal

#endif  // XDEAL_SIM_SCHEDULER_H_
