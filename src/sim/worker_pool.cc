#include "sim/worker_pool.h"

#include <atomic>

namespace xdeal {

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads_ = num_threads;
  if (num_threads_ <= 1) return;  // inline mode
  threads_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void WorkerPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One shared cursor; each worker task drains indices until exhausted.
  // Dynamic scheduling keeps cores busy even when item costs are skewed
  // (scenario run times vary by an order of magnitude across shapes).
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(num_threads_, n);
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace xdeal
