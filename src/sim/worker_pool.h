// WorkerPool: a fixed-size thread pool for fanning independent simulations
// across cores.
//
// Each simulated World is single-threaded and self-contained (its own
// scheduler, RNG, chains), so scenario-level parallelism needs no locking
// inside the simulation — the pool only hands out disjoint work items.
// Determinism is preserved by construction: workers write results into
// caller-owned slots indexed by work item, and any aggregation happens
// sequentially after Wait()/ParallelFor() returns.

#ifndef XDEAL_SIM_WORKER_POOL_H_
#define XDEAL_SIM_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xdeal {

class WorkerPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (itself falling back to 1 if the runtime reports 0). `num_threads == 1`
  /// starts no threads at all — tasks run inline on the submitting thread,
  /// which keeps single-threaded runs exactly as debuggable as a plain loop.
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(0) ... fn(n-1), distributing indices across the pool's workers
  /// (or inline when the pool is single-threaded). Returns when all calls
  /// have completed. `fn` must be safe to invoke concurrently for distinct
  /// indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
};

}  // namespace xdeal

#endif  // XDEAL_SIM_WORKER_POOL_H_
