// Arena: a bump allocator with a destructor registry.
//
// A traffic run at D = 10^5 deals creates hundreds of thousands of small,
// identically-scoped objects — one DealRuntime and one DealChecker per deal,
// all born during generation and all dying together when the run's report is
// folded. Allocating each through operator new costs a malloc round-trip and
// scatters them across the heap; the arena carves them out of large
// contiguous blocks instead (one pointer bump per object) and destroys the
// whole population in one sweep.
//
// Usage:
//   Arena arena;
//   Foo* foo = arena.Create<Foo>(args...);   // lives until the arena dies
//
// Objects are destroyed in reverse creation order when the arena is
// destroyed (or Reset). The arena never gives memory back mid-flight and is
// not thread-safe; it is meant for single-threaded build-up phases like deal
// generation, not concurrent allocation.

#ifndef XDEAL_UTIL_ARENA_H_
#define XDEAL_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace xdeal {

class Arena {
 public:
  Arena() = default;
  ~Arena() { Reset(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Constructs a T inside the arena. The object lives until Reset() or the
  /// arena's destruction; its destructor runs then (registered only for
  /// non-trivially-destructible types).
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    void* slot = Allocate(sizeof(T), alignof(T));
    T* obj = new (slot) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      destructors_.push_back(Finalizer{
          obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return obj;
  }

  /// Raw aligned storage from the current block (a fresh block if it does
  /// not fit). No destructor is registered.
  void* Allocate(size_t size, size_t align) {
    uintptr_t cur = reinterpret_cast<uintptr_t>(next_);
    uintptr_t aligned = (cur + (align - 1)) & ~(uintptr_t{align} - 1);
    size_t needed = (aligned - cur) + size;
    if (needed > remaining_) {
      NewBlock(size + align);
      cur = reinterpret_cast<uintptr_t>(next_);
      aligned = (cur + (align - 1)) & ~(uintptr_t{align} - 1);
      needed = (aligned - cur) + size;
    }
    next_ += needed;
    remaining_ -= needed;
    ++allocations_;
    return reinterpret_cast<void*>(aligned);
  }

  /// Runs every registered destructor (reverse creation order) and releases
  /// all blocks. The arena is reusable afterwards.
  void Reset() {
    for (auto it = destructors_.rbegin(); it != destructors_.rend(); ++it) {
      it->destroy(it->object);
    }
    destructors_.clear();
    blocks_.clear();
    next_ = nullptr;
    remaining_ = 0;
  }

  /// Observability for tests and benches.
  size_t allocations() const { return allocations_; }
  size_t blocks() const { return blocks_.size(); }
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Finalizer {
    void* object;
    void (*destroy)(void*);
  };

  static constexpr size_t kBlockSize = 64 * 1024;

  void NewBlock(size_t min_size) {
    size_t size = min_size > kBlockSize ? min_size : kBlockSize;
    blocks_.push_back(std::make_unique<char[]>(size));
    next_ = blocks_.back().get();
    remaining_ = size;
    bytes_reserved_ += size;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<Finalizer> destructors_;
  char* next_ = nullptr;
  size_t remaining_ = 0;
  size_t allocations_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace xdeal

#endif  // XDEAL_UTIL_ARENA_H_
