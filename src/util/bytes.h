// Byte-buffer aliases and helpers shared by serialization and crypto code.

#ifndef XDEAL_UTIL_BYTES_H_
#define XDEAL_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xdeal {

using Bytes = std::vector<uint8_t>;

/// Converts a string's bytes into a Bytes buffer.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Appends `src` to `dst`.
inline void Append(Bytes* dst, const Bytes& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

}  // namespace xdeal

#endif  // XDEAL_UTIL_BYTES_H_
