// Determinism annotation contract, enforced by tools/det_lint.py.
//
// Every result this repo ships — the golden fingerprints, DPOR trace
// replay, the CI-gated bench trajectory — rests on one invariant: a run is
// a pure function of (seed, config), bit-identical across thread counts,
// platforms, and optimization levels. det-lint turns that invariant from
// convention into a build-breaking check: it builds the call graph of
// src/, taint-propagates from nondeterminism *sources* (unordered-container
// iteration, std::hash on non-integral keys, pointer-valued ordering,
// wall clocks / ambient RNG, correctly-rounded-exempt libm calls, float
// accumulation under a parallel loop, host-endian memcpy serialization),
// and fails if any function reachable from an XDEAL_DETERMINISTIC root
// reaches a source without an audited XDEAL_DET_OK suppression.
//
// Contract:
//   - Mark the entry point of every path that feeds a fingerprint, receipt
//     stream, or report with XDEAL_DETERMINISTIC (on the declaration).
//   - A function on such a path that intentionally touches a source states
//     its order-insensitivity / exactness argument in-line:
//         XDEAL_DET_OK("result is a set-equality check; order cannot leak");
//     The suppression covers findings from its line to the end of the
//     enclosing function body, so put it directly above the audited site.
//   - An empty reason is a compile error (static_assert below) AND a lint
//     error: every suppression is an auditable claim, not a mute button.
//
// The full source taxonomy and the audit checklist for suppressions live in
// docs/ARCHITECTURE.md ("Determinism annotation contract").

#ifndef XDEAL_UTIL_DET_H_
#define XDEAL_UTIL_DET_H_

/// Marks a function as a determinism root: everything it (transitively)
/// calls must be free of nondeterminism sources, or carry an audited
/// XDEAL_DET_OK. Expands to a clang `annotate` attribute so AST tooling can
/// see it; on other compilers it is documentation plus a det-lint marker
/// (the analyzer matches the token, not the expansion).
#if defined(__clang__)
#define XDEAL_DETERMINISTIC __attribute__((annotate("xdeal::deterministic")))
#else
#define XDEAL_DETERMINISTIC
#endif

/// Suppresses det-lint findings from this line to the end of the enclosing
/// function, recording the reason in the lint report. The reason must be a
/// nonempty string literal making the order-insensitivity (or exactness)
/// argument — "it's fine" does not survive review; "bool-returning
/// set-equality check, iteration order cannot reach the return value" does.
#define XDEAL_DET_OK(reason)                                               \
  static_assert(sizeof(reason "") > 1,                                     \
                "XDEAL_DET_OK requires a nonempty reason string")

#endif  // XDEAL_UTIL_DET_H_
