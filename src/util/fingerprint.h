// Order-sensitive 64-bit fingerprint folds.
//
// Both parallel engines (scenario sweep, traffic) prove their determinism
// contract — reports bit-identical across worker-thread counts — by folding
// every per-item outcome through these mixes in index order. They live in
// one place so the two engines can never silently diverge on the recipe.

#ifndef XDEAL_UTIL_FINGERPRINT_H_
#define XDEAL_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "util/det.h"
#include "util/rng.h"

namespace xdeal {

/// Folds one 64-bit value into the running fingerprint.
XDEAL_DETERMINISTIC inline uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  SplitMix64 sm(h ^ (v + 0x9E3779B97F4A7C15ULL));
  return sm.Next();
}

/// FNV-1a over a string, for folding violation text into a fingerprint.
XDEAL_DETERMINISTIC inline uint64_t FingerprintString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace xdeal

#endif  // XDEAL_UTIL_FINGERPRINT_H_
