// Hex encoding/decoding for hashes, keys, and test vectors.

#ifndef XDEAL_UTIL_HEX_H_
#define XDEAL_UTIL_HEX_H_

#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace xdeal {

/// Encodes `data` as lowercase hex.
std::string HexEncode(const Bytes& data);

/// Encodes the first `len` bytes of `data` as lowercase hex.
std::string HexEncode(const uint8_t* data, size_t len);

/// Decodes a hex string (upper or lower case, even length).
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace xdeal

#endif  // XDEAL_UTIL_HEX_H_
