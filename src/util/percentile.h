// Deterministic nearest-rank percentile, shared by every report
// aggregation (traffic engine, broker pool) so the recipe can never
// silently diverge between per-run and per-broker statistics.

#ifndef XDEAL_UTIL_PERCENTILE_H_
#define XDEAL_UTIL_PERCENTILE_H_

#include <algorithm>
#include <vector>

namespace xdeal {

/// The smallest value with at least p% of the samples at or below it,
/// computed over a scratch copy (nearest-rank method; empty input -> T{}).
template <typename T>
T Percentile(std::vector<T> values, int p) {
  if (values.empty()) return T{};
  std::sort(values.begin(), values.end());
  size_t rank = (values.size() * static_cast<size_t>(p) + 99) / 100;
  if (rank == 0) rank = 1;
  if (rank > values.size()) rank = values.size();
  return values[rank - 1];
}

}  // namespace xdeal

#endif  // XDEAL_UTIL_PERCENTILE_H_
