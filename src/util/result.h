// Result<T>: value-or-Status, the library's replacement for exceptions.

#ifndef XDEAL_UTIL_RESULT_H_
#define XDEAL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace xdeal {

/// Holds either a T (success) or a non-OK Status (failure).
///
/// Usage:
///   Result<Receipt> r = contract.Call(...);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit from value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit from non-OK status: failure. Constructing from an OK status is
  /// a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or a fallback if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xdeal

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define XDEAL_ASSIGN_OR_RETURN(lhs, expr)          \
  auto XDEAL_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!XDEAL_CONCAT_(_res_, __LINE__).ok())        \
    return XDEAL_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(XDEAL_CONCAT_(_res_, __LINE__)).value()

#define XDEAL_CONCAT_(a, b) XDEAL_CONCAT_IMPL_(a, b)
#define XDEAL_CONCAT_IMPL_(a, b) a##b

#endif  // XDEAL_UTIL_RESULT_H_
