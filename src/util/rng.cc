#include "util/rng.h"

namespace xdeal {

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  if (bound == 0) return 0;
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::Between(uint64_t lo, uint64_t hi) {
  return lo + Below(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return (Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() {
  return Rng(Next64());
}

}  // namespace xdeal
