// Deterministic random number generation.
//
// All randomness in the library flows from explicitly seeded generators so
// that every simulation run, test, and benchmark is exactly reproducible.
// SplitMix64 is used for seeding/stream-splitting; Xoshiro256** is the
// workhorse generator (both are public-domain algorithms by Blackman/Vigna).

#ifndef XDEAL_UTIL_RNG_H_
#define XDEAL_UTIL_RNG_H_

#include <cstdint>

namespace xdeal {

/// SplitMix64: tiny, fast, good avalanche; used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: general-purpose deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next64();

  /// Uniform in [0, bound) using Lemire rejection; bound must be nonzero.
  uint64_t Below(uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  uint64_t Between(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Derives an independent child generator (for per-actor streams).
  Rng Fork();

  /// Copies the 256-bit generator state out (for checkpointing).
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Overwrites the generator state (for restore from a checkpoint).
  void SetState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace xdeal

#endif  // XDEAL_UTIL_RNG_H_
