// ByteWriter / ByteReader: canonical little-endian serialization.
//
// Used wherever bytes must be canonical: contract call arguments, vote
// messages that get signed, block hashing, and proofs. Canonical encoding is
// essential for the protocols: two parties must derive byte-identical
// messages for signature verification to succeed.

#ifndef XDEAL_UTIL_SERIALIZE_H_
#define XDEAL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace xdeal {

/// Appends fixed-width integers, length-prefixed strings/blobs to a buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  ByteWriter& U8(uint8_t v) {
    buf_.push_back(v);
    return *this;
  }
  ByteWriter& U16(uint16_t v) { return AppendLe(v); }
  ByteWriter& U32(uint32_t v) { return AppendLe(v); }
  ByteWriter& U64(uint64_t v) { return AppendLe(v); }
  ByteWriter& I64(int64_t v) { return AppendLe(static_cast<uint64_t>(v)); }
  ByteWriter& Bool(bool v) { return U8(v ? 1 : 0); }

  /// Length-prefixed (u32) string.
  ByteWriter& Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
    return *this;
  }

  /// Length-prefixed (u32) byte blob.
  ByteWriter& Blob(const Bytes& b) {
    U32(static_cast<uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
    return *this;
  }

  /// Raw bytes, no length prefix (for fixed-width fields like hashes).
  ByteWriter& Raw(const uint8_t* data, size_t len) {
    buf_.insert(buf_.end(), data, data + len);
    return *this;
  }
  ByteWriter& Raw(const Bytes& b) { return Raw(b.data(), b.size()); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  template <typename T>
  ByteWriter& AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    return *this;
  }

  Bytes buf_;
};

/// Reads values written by ByteWriter. All reads are bounds-checked and
/// return Status on truncation, so malformed contract call payloads from
/// deviating parties are rejected rather than crashing.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > buf_.size()) return Truncated();
    return buf_[pos_++];
  }
  Result<uint16_t> U16() { return ReadLe<uint16_t>(); }
  Result<uint32_t> U32() { return ReadLe<uint32_t>(); }
  Result<uint64_t> U64() { return ReadLe<uint64_t>(); }
  Result<int64_t> I64() {
    auto r = ReadLe<uint64_t>();
    if (!r.ok()) return r.status();
    return static_cast<int64_t>(r.value());
  }
  Result<bool> Bool() {
    auto r = U8();
    if (!r.ok()) return r.status();
    return r.value() != 0;
  }

  Result<std::string> Str() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (pos_ + len.value() > buf_.size()) return Truncated();
    std::string out(buf_.begin() + pos_, buf_.begin() + pos_ + len.value());
    pos_ += len.value();
    return out;
  }

  Result<Bytes> Blob() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (pos_ + len.value() > buf_.size()) return Truncated();
    Bytes out(buf_.begin() + pos_, buf_.begin() + pos_ + len.value());
    pos_ += len.value();
    return out;
  }

  /// Reads exactly `len` raw bytes.
  Result<Bytes> Raw(size_t len) {
    if (pos_ + len > buf_.size()) return Truncated();
    Bytes out(buf_.begin() + pos_, buf_.begin() + pos_ + len);
    pos_ += len;
    return out;
  }

  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  Result<T> ReadLe() {
    if (pos_ + sizeof(T) > buf_.size()) return Truncated();
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  static Status Truncated() {
    return Status::InvalidArgument("truncated byte buffer");
  }

  const Bytes& buf_;
  size_t pos_ = 0;
};

}  // namespace xdeal

#endif  // XDEAL_UTIL_SERIALIZE_H_
