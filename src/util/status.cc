#include "util/status.h"

namespace xdeal {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kPermissionDenied: return "PermissionDenied";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kUnverified: return "Unverified";
    case StatusCode::kOutOfGas: return "OutOfGas";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace xdeal
