// Status: error-handling primitive used throughout the library.
//
// The library does not throw exceptions (RocksDB/Arrow idiom); every fallible
// operation returns a Status or a Result<T> (see result.h). Contract calls in
// particular use Status to model EVM-style `require(...)` failures: a failed
// require aborts the call but still charges gas up to the failure point.

#ifndef XDEAL_UTIL_STATUS_H_
#define XDEAL_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace xdeal {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed malformed input
  kFailedPrecondition,// a contract `require` or protocol precondition failed
  kNotFound,          // unknown party / asset / contract / deal
  kAlreadyExists,     // duplicate registration (deal id, vote, escrow)
  kPermissionDenied,  // caller is not authorized (not owner, not in plist)
  kTimedOut,          // a timelock expired
  kUnverified,        // a signature or proof failed verification
  kOutOfGas,          // gas limit exceeded during contract execution
  kUnavailable,       // transient: network partition, pre-GST asynchrony
  kInternal,          // invariant violation inside the library (a bug)
};

/// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unverified(std::string msg) {
    return Status(StatusCode::kUnverified, std::move(msg));
  }
  static Status OutOfGas(std::string msg) {
    return Status(StatusCode::kOutOfGas, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace xdeal

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define XDEAL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::xdeal::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // XDEAL_UTIL_STATUS_H_
