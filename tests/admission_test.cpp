// Open-loop arrival generation + admission control: the libm-free
// exponential sampler matches std::log, seeded Poisson schedules are
// deterministic with the right mean, and the controller's admit/delay/shed
// policy follows its backlog/occupancy thresholds.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chain/world.h"
#include "core/admission.h"
#include "core/env.h"

namespace xdeal {
namespace {

TEST(NegLogU01Test, AgreesWithStdLog) {
  // The deterministic series must track libm to well below tick rounding,
  // across the magnitudes a 53-bit uniform can produce.
  for (double u : {1e-16, 1e-9, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.5001, 0.75,
                   0.9999, 1.0 - 1e-12}) {
    double expected = -std::log(u);
    double got = NegLogU01(u);
    EXPECT_NEAR(got, expected, 1e-9 * std::max(1.0, expected)) << "u=" << u;
  }
  EXPECT_EQ(NegLogU01(1.0), 0.0);
  EXPECT_EQ(NegLogU01(0.0), 0.0);   // defensive clamp, not a math claim
  EXPECT_EQ(NegLogU01(-1.0), 0.0);
}

TEST(ArrivalScheduleTest, PoissonGapsAreSeededAndHaveTheRightMean) {
  const double mean = 50.0;
  double sum = 0;
  size_t n = 20000;
  for (uint64_t d = 0; d < n; ++d) {
    Tick gap = PoissonArrivalGap(9, d, mean);
    EXPECT_EQ(gap, PoissonArrivalGap(9, d, mean));  // pure function
    sum += static_cast<double>(gap);
  }
  // Exponential with mean 50: the sample mean over 20k draws lands within
  // a few percent with overwhelming probability (and deterministically for
  // this fixed seed).
  EXPECT_NEAR(sum / static_cast<double>(n), mean, 0.05 * mean);

  // Different seeds give different schedules.
  size_t differing = 0;
  for (uint64_t d = 0; d < 100; ++d) {
    if (PoissonArrivalGap(9, d, mean) != PoissonArrivalGap(10, d, mean)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 90u);
}

TEST(ArrivalScheduleTest, FixedStaggerMatchesLegacyAdmissionGap) {
  std::vector<Tick> arrivals =
      BuildArrivalSchedule(ArrivalProcess::kFixedStagger, 10, 1, 20.0);
  ASSERT_EQ(arrivals.size(), 10u);
  for (size_t d = 0; d < arrivals.size(); ++d) {
    EXPECT_EQ(arrivals[d], static_cast<Tick>(d) * 20);
  }
}

TEST(ArrivalScheduleTest, PoissonScheduleIsNondecreasingAndReproducible) {
  std::vector<Tick> a =
      BuildArrivalSchedule(ArrivalProcess::kPoisson, 200, 5, 15.0);
  std::vector<Tick> b =
      BuildArrivalSchedule(ArrivalProcess::kPoisson, 200, 5, 15.0);
  EXPECT_EQ(a, b);
  for (size_t d = 1; d < a.size(); ++d) {
    EXPECT_GE(a[d], a[d - 1]);
  }
  // Open loop: the schedule is irregular, not a stagger.
  std::set<Tick> gaps;
  for (size_t d = 1; d < a.size(); ++d) gaps.insert(a[d] - a[d - 1]);
  EXPECT_GT(gaps.size(), 10u);
}

TEST(AdmissionControllerTest, AdmitsWhenUnderThresholds) {
  DealEnv env(EnvConfig{});
  AdmissionOptions options;
  options.enabled = true;
  options.max_scheduler_backlog = 5;
  options.max_chain_occupancy = 5;
  AdmissionController controller(options, &env.world());

  EXPECT_EQ(controller.Decide(0), AdmissionDecision::kAdmit);
  EXPECT_EQ(controller.stats().admitted, 1u);
  EXPECT_EQ(controller.stats().delays, 0u);
  EXPECT_EQ(controller.stats().shed, 0u);
}

TEST(AdmissionControllerTest, DelaysThenShedsOnSchedulerBacklog) {
  DealEnv env(EnvConfig{});
  for (int i = 0; i < 10; ++i) {
    env.world().scheduler().ScheduleAt(100, [] {});
  }
  AdmissionOptions options;
  options.enabled = true;
  options.max_scheduler_backlog = 5;  // 10 pending > 5
  options.max_retries = 2;
  AdmissionController controller(options, &env.world());

  EXPECT_EQ(controller.Decide(0), AdmissionDecision::kDelay);
  EXPECT_EQ(controller.Decide(1), AdmissionDecision::kDelay);
  EXPECT_EQ(controller.Decide(2), AdmissionDecision::kShed);
  EXPECT_EQ(controller.stats().delays, 2u);
  EXPECT_EQ(controller.stats().shed, 1u);
  EXPECT_EQ(controller.stats().peak_backlog_seen, 10u);

  // Once the backlog drains, the same controller admits again.
  env.world().scheduler().Run();
  EXPECT_EQ(controller.Decide(0), AdmissionDecision::kAdmit);
}

TEST(AdmissionControllerTest, ReadsChainOccupancy) {
  DealEnv env(EnvConfig{});
  ChainId chain = env.AddChain("busy");
  // Enqueue three transactions for a future boundary; they are pending
  // (not yet included), which is exactly the occupancy signal.
  for (int i = 0; i < 3; ++i) {
    env.world().chain(chain)->SubmitAt(0, PartyId{1}, ContractId{999},
                                       CallData{}, "probe");
  }
  EXPECT_EQ(env.world().chain(chain)->pending_txs(), 3u);

  AdmissionOptions options;
  options.enabled = true;
  options.max_chain_occupancy = 2;
  options.max_retries = 0;  // shed immediately when over
  AdmissionController controller(options, &env.world());
  EXPECT_EQ(controller.BusiestChainOccupancy(), 3u);
  EXPECT_EQ(controller.Decide(0), AdmissionDecision::kShed);
  EXPECT_EQ(controller.stats().peak_occupancy_seen, 3u);

  // After the block includes them, occupancy is back to zero.
  env.world().scheduler().Run();
  EXPECT_EQ(env.world().chain(chain)->pending_txs(), 0u);
  EXPECT_EQ(controller.Decide(0), AdmissionDecision::kAdmit);
}

TEST(AdmissionControllerTest, ZeroThresholdsAdmitEverything) {
  DealEnv env(EnvConfig{});
  for (int i = 0; i < 100; ++i) {
    env.world().scheduler().ScheduleAt(100, [] {});
  }
  AdmissionOptions options;
  options.enabled = true;  // thresholds left at 0 = unbounded
  AdmissionController controller(options, &env.world());
  EXPECT_EQ(controller.Decide(0), AdmissionDecision::kAdmit);
  // Congestion is still recorded even when no limit is configured.
  EXPECT_EQ(controller.stats().peak_backlog_seen, 100u);
}

}  // namespace
}  // namespace xdeal
