// The BENCH_*.json report writer must emit strictly valid JSON no matter
// what strings or doubles the benches feed it: the CI regression gate and
// any downstream dashboard parse these files with stock parsers, so one
// unescaped quote or a bare `inf` poisons the whole artifact.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "bench/bench_util.h"

namespace xdeal {
namespace {

// --- a tiny strict JSON validator (RFC 8259 grammar, no extensions) ---

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    Ws();
    if (!Value()) return false;
    Ws();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    Ws();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      Ws();
      if (!String()) return false;
      Ws();
      if (Peek() != ':') return false;
      ++pos_;
      Ws();
      if (!Value()) return false;
      Ws();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    Ws();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      Ws();
      if (!Value()) return false;
      Ws();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control char: invalid
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!Digits()) return false;
    if (Peek() == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return pos_ > start;
  }

  bool Digits() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  void Ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(BenchJsonTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(bench::JsonEscape("plain"), "plain");
  EXPECT_EQ(bench::JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(bench::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(bench::JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(bench::JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(bench::JsonEscape("cr\rend"), "cr\\rend");
  EXPECT_EQ(bench::JsonEscape(std::string("nul\x01mid")), "nul\\u0001mid");
  EXPECT_EQ(bench::JsonEscape(std::string(1, '\x1f')), "\\u001f");
}

TEST(BenchJsonTest, NumbersAreAlwaysValidJson) {
  EXPECT_EQ(bench::JsonNumber(1.5), "1.5");
  EXPECT_EQ(bench::JsonNumber(0.0), "0");
  EXPECT_EQ(bench::JsonNumber(-3.0), "-3");
  // Non-finite doubles have no JSON spelling; they degrade to 0 rather
  // than corrupting the file.
  EXPECT_EQ(bench::JsonNumber(1.0 / 0.0), "0");
  EXPECT_EQ(bench::JsonNumber(-1.0 / 0.0), "0");
  EXPECT_EQ(bench::JsonNumber(0.0 / 0.0), "0");
  // And %.12g does not emit float noise.
  EXPECT_EQ(bench::JsonNumber(0.1 + 0.2), "0.3");
}

TEST(BenchJsonTest, HostileStringsStillProduceParseableReports) {
  bench::JsonReport report("bench \"quoted\\name\"\n");
  report.AddConfig("path", "C:\\temp\\run \"final\"");
  report.AddConfig("note", std::string("ctrl\x02\x1f\ttab"));
  report.AddConfig("count", static_cast<uint64_t>(42));
  report.AddConfig("rate", 12.5);
  report.AddConfig("bad_rate", 1.0 / 0.0);
  report.AddMetric("lat\"p99\"", 1e9, "ti\\cks",
                   {{"la\nbel", "va\"lue\\"}, {"plain", "ok"}});
  report.AddMetric("nan_metric", 0.0 / 0.0, "x");
  report.AddMetric("no_unit_no_labels", 7);

  std::string json = report.ToJson();
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Valid()) << json;
  // The escapes really are escapes, not stripped content.
  EXPECT_NE(json.find("C:\\\\temp\\\\run \\\"final\\\""), std::string::npos);
  EXPECT_NE(json.find("\\u0002"), std::string::npos);
}

TEST(BenchJsonTest, WellFormedReportValidatesAndKeepsSchema) {
  bench::JsonReport report("bench_traffic");
  report.AddConfig("base_seed", static_cast<uint64_t>(1));
  bench::JsonReport::Labels labels = {{"deals", "100"}, {"threads", "8"}};
  report.AddMetric("deals_per_sec", 1234.5, "1/s", labels);
  report.AddMetric("conformance_ok", 1);

  std::string json = report.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"bench\": \"bench_traffic\""), std::string::npos);
  EXPECT_NE(json.find("\"git_rev\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\": {\"deals\": \"100\", \"threads\": "
                      "\"8\"}"),
            std::string::npos);
}

TEST(BenchJsonTest, ValidatorRejectsActualGarbage) {
  // Sanity-check the checker itself so the suite can trust it.
  EXPECT_FALSE(JsonValidator("{\"a\": inf}").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\": nan}").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\": \"unterminated}").Valid());
  EXPECT_FALSE(JsonValidator(std::string("{\"a\": \"raw\nnewline\"}"))
                   .Valid());
  EXPECT_FALSE(JsonValidator("{\"a\": 1,}").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\" 1}").Valid());
  EXPECT_TRUE(JsonValidator("{\"a\": [1, 2.5, -3e4, \"s\", true, null]}")
                  .Valid());
}

}  // namespace
}  // namespace xdeal
