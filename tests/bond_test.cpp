// FirstFaultBondContract (§9): bonds returned on commit, forfeited by the
// parties whose missing votes caused a timeout, redistributed to the
// innocent.

#include <gtest/gtest.h>

#include "contracts/bond.h"
#include "chain/world.h"

namespace xdeal {
namespace {

struct BondFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    a = world->RegisterParty("a");
    b = world->RegisterParty("b");
    c = world->RegisterParty("c");
    chain = world->CreateChain("chain", 10);

    // Asset token + escrow contract the bond is tied to.
    asset_token = chain->Deploy(std::make_unique<FungibleToken>("TOK", a));
    escrow_id = chain->Deploy(std::make_unique<TimelockEscrowContract>(
        AssetKind::kFungible, asset_token));
    escrow = chain->As<TimelockEscrowContract>(escrow_id);

    // Bond currency.
    bond_token = chain->Deploy(std::make_unique<FungibleToken>("BOND", a));
    bond_id = chain->Deploy(std::make_unique<FirstFaultBondContract>(
        bond_token, escrow_id, std::vector<PartyId>{a, b, c},
        /*bond_amount=*/10));
    bond = chain->As<FirstFaultBondContract>(bond_id);

    info.deal_id = MakeDealId("bond-unit", 1);
    info.plist = {a, b, c};
    info.t0 = 1000;
    info.delta = 100;

    auto* tok = chain->As<FungibleToken>(asset_token);
    auto* btok = chain->As<FungibleToken>(bond_token);
    for (PartyId p : {a, b, c}) {
      btok->Mint(Holder::Party(p), 10);
      CallContext ctx = Ctx(p, 0);
      btok->Approve(ctx, Holder::Party(p), Holder::Party(p),
                    Holder::OfContract(bond_id), 10);
    }
    tok->Mint(Holder::Party(a), 50);
    CallContext ctx = Ctx(a, 0);
    tok->Approve(ctx, Holder::Party(a), Holder::Party(a),
                 Holder::OfContract(escrow_id), 50);
    ASSERT_TRUE(InvokeEscrow(a, 0, 50).ok());
  }

  CallContext Ctx(PartyId sender, Tick now) {
    gas = std::make_unique<GasMeter>();
    CallContext ctx;
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = sender;
    ctx.now = now;
    ctx.gas = gas.get();
    return ctx;
  }

  Status InvokeEscrow(PartyId sender, Tick now, uint64_t value) {
    ByteWriter w;
    w.Raw(info.deal_id.bytes.data(), 32);
    w.U32(3);
    w.U32(a.v);
    w.U32(b.v);
    w.U32(c.v);
    w.U64(info.t0);
    w.U64(info.delta);
    w.U64(value);
    CallContext ctx = Ctx(sender, now);
    ByteReader args(w.bytes());
    auto r = escrow->Invoke(ctx, "escrow", args);
    return r.ok() ? Status::OK() : r.status();
  }

  Status Vote(PartyId voter, Tick now) {
    PathVote vote;
    vote.voter = voter;
    vote.path.emplace_back(
        voter, world->KeyPairOf(voter).Sign(
                   TimelockVoteMessage(info.deal_id, voter, 0)));
    ByteWriter w;
    w.Raw(info.deal_id.bytes.data(), 32);
    vote.AppendTo(&w);
    CallContext ctx = Ctx(voter, now);
    ByteReader args(w.bytes());
    auto r = escrow->Invoke(ctx, "commit", args);
    return r.ok() ? Status::OK() : r.status();
  }

  Status Refund(Tick now) {
    ByteWriter w;
    w.Raw(info.deal_id.bytes.data(), 32);
    CallContext ctx = Ctx(a, now);
    ByteReader args(w.bytes());
    auto r = escrow->Invoke(ctx, "claimRefund", args);
    return r.ok() ? Status::OK() : r.status();
  }

  Status BondCall(PartyId sender, const char* fn, Tick now = 0) {
    CallContext ctx = Ctx(sender, now);
    Bytes empty;
    ByteReader args(empty);
    auto r = bond->Invoke(ctx, fn, args);
    return r.ok() ? Status::OK() : r.status();
  }

  uint64_t BondBalance(PartyId p) {
    return chain->As<FungibleToken>(bond_token)->BalanceOf(Holder::Party(p));
  }

  std::unique_ptr<World> world;
  PartyId a, b, c;
  Blockchain* chain = nullptr;
  ContractId asset_token, escrow_id, bond_token, bond_id;
  TimelockEscrowContract* escrow = nullptr;
  FirstFaultBondContract* bond = nullptr;
  DealInfo info;
  std::unique_ptr<GasMeter> gas;
};

TEST_F(BondFixture, DepositRules) {
  EXPECT_TRUE(BondCall(a, "deposit").ok());
  EXPECT_TRUE(bond->HasDeposited(a));
  EXPECT_EQ(BondBalance(a), 0u);
  EXPECT_EQ(BondCall(a, "deposit").code(), StatusCode::kAlreadyExists);

  PartyId outsider = world->RegisterParty("m");
  EXPECT_EQ(BondCall(outsider, "deposit").code(),
            StatusCode::kPermissionDenied);
}

TEST_F(BondFixture, ClaimBeforeSettlementRejected) {
  ASSERT_TRUE(BondCall(a, "deposit").ok());
  EXPECT_EQ(BondCall(a, "claim").code(), StatusCode::kFailedPrecondition);
}

TEST_F(BondFixture, CommitReturnsAllBonds) {
  for (PartyId p : {a, b, c}) ASSERT_TRUE(BondCall(p, "deposit").ok());
  ASSERT_TRUE(Vote(a, info.t0 + 10).ok());
  ASSERT_TRUE(Vote(b, info.t0 + 10).ok());
  ASSERT_TRUE(Vote(c, info.t0 + 10).ok());
  ASSERT_TRUE(escrow->released());

  for (PartyId p : {a, b, c}) {
    EXPECT_TRUE(BondCall(p, "claim", info.t0 + 20).ok());
    EXPECT_EQ(BondBalance(p), 10u);
  }
}

TEST_F(BondFixture, TimeoutForfeitsNonVotersBonds) {
  for (PartyId p : {a, b, c}) ASSERT_TRUE(BondCall(p, "deposit").ok());
  // a and b vote; c never does -> timeout refund.
  ASSERT_TRUE(Vote(a, info.t0 + 10).ok());
  ASSERT_TRUE(Vote(b, info.t0 + 10).ok());
  ASSERT_TRUE(Refund(info.t0 + 301).ok());

  EXPECT_TRUE(BondCall(a, "claim", info.t0 + 310).ok());
  EXPECT_TRUE(BondCall(b, "claim", info.t0 + 310).ok());
  EXPECT_TRUE(BondCall(c, "claim", info.t0 + 310).ok());  // records forfeit
  // c's 10 split between a and b: 10 + 5 each; c gets nothing.
  EXPECT_EQ(BondBalance(a), 15u);
  EXPECT_EQ(BondBalance(b), 15u);
  EXPECT_EQ(BondBalance(c), 0u);
}

TEST_F(BondFixture, NobodyVotedNoFirstFault) {
  for (PartyId p : {a, b, c}) ASSERT_TRUE(BondCall(p, "deposit").ok());
  ASSERT_TRUE(Refund(info.t0 + 301).ok());
  for (PartyId p : {a, b, c}) {
    EXPECT_TRUE(BondCall(p, "claim", info.t0 + 310).ok());
    EXPECT_EQ(BondBalance(p), 10u);
  }
}

TEST_F(BondFixture, DoubleClaimRejected) {
  for (PartyId p : {a, b, c}) ASSERT_TRUE(BondCall(p, "deposit").ok());
  ASSERT_TRUE(Vote(a, info.t0 + 10).ok());
  ASSERT_TRUE(Refund(info.t0 + 301).ok());
  ASSERT_TRUE(BondCall(a, "claim", info.t0 + 310).ok());
  EXPECT_EQ(BondCall(a, "claim", info.t0 + 311).code(),
            StatusCode::kAlreadyExists);
  // a alone was innocent: it takes both forfeited bonds (10 + 20).
  EXPECT_EQ(BondBalance(a), 30u);
}

TEST_F(BondFixture, PayoutOfViewMatchesClaims) {
  for (PartyId p : {a, b, c}) ASSERT_TRUE(BondCall(p, "deposit").ok());
  ASSERT_TRUE(Vote(b, info.t0 + 10).ok());
  ASSERT_TRUE(Refund(info.t0 + 301).ok());
  CallContext ctx = Ctx(a, info.t0 + 305);
  EXPECT_EQ(bond->PayoutOf(ctx, a), 0u);
  EXPECT_EQ(bond->PayoutOf(ctx, b), 30u);
  EXPECT_EQ(bond->PayoutOf(ctx, c), 0u);
}

}  // namespace
}  // namespace xdeal
