// BrokerPool: Figure-1-style brokers as shared parties across many
// concurrent deals. Covers: a benign brokered workload conforms and every
// broker ends better off (portfolio check passes), the zero-broker config
// reproduces the legacy golden fingerprint bit-for-bit, a seeded portfolio
// violation under congestion is caught and replays, the capital-limit
// admission signal delays/sheds deals instead of letting brokers
// over-commit, an ungated over-commit is caught from on-chain evidence and
// aborts cleanly, reports are bit-identical across validation thread
// counts, and broker deals run unchanged over a sharded CbcService.

#include <gtest/gtest.h>

#include "core/traffic_engine.h"
#include "golden_fps.h"

namespace xdeal {
namespace {

/// Ample capital/inventory: brokers are never the bottleneck.
BrokerOptions AmpleBrokers(size_t num_brokers) {
  BrokerOptions brokers;
  brokers.num_brokers = num_brokers;
  brokers.working_capital = 8000;
  brokers.inventory = 200;
  return brokers;
}

TEST(BrokerPoolTest, BrokeredWorkloadConformsAndEarnsMargin) {
  TrafficOptions options;
  options.base_seed = 7;
  options.num_deals = 24;
  options.num_chains = 6;
  options.brokers = AmpleBrokers(2);
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.broker_deals, 24u);
  EXPECT_EQ(report.committed, 24u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_TRUE(report.double_spends.empty()) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();

  ASSERT_EQ(report.brokers.size(), 2u);
  uint64_t broker_gas = 0;
  for (const BrokerRecord& broker : report.brokers) {
    EXPECT_EQ(broker.deals, 12u);
    EXPECT_EQ(broker.committed, 12u);
    EXPECT_EQ(broker.shed, 0u);
    EXPECT_TRUE(broker.portfolio_ok) << report.Summary();
    // Every committed deal pays the broker her margin in coins; her
    // commodity inventory is exactly restocked.
    EXPECT_GT(broker.coin_delta, 0) << report.Summary();
    EXPECT_EQ(broker.inventory_delta, 0) << report.Summary();
    // Per-broker gas/latency attribution is populated.
    EXPECT_GT(broker.gas, 0u);
    EXPECT_GT(broker.latency_p50, 0u);
    EXPECT_GE(broker.latency_max, broker.latency_p50);
    broker_gas += broker.gas;
    // The occupancy timeline has two events per deal (reserve + release),
    // is time-ordered, and returns to zero once everything settled.
    ASSERT_EQ(broker.timeline.size(), 24u);
    for (size_t i = 1; i < broker.timeline.size(); ++i) {
      EXPECT_GE(broker.timeline[i].at, broker.timeline[i - 1].at);
    }
    EXPECT_EQ(broker.timeline.back().capital_in_use, 0u);
    EXPECT_EQ(broker.timeline.back().inventory_in_use, 0u);
    EXPECT_LE(broker.peak_capital_in_use, broker.capital_limit);
    EXPECT_LE(broker.peak_inventory_in_use, broker.inventory_limit);
    EXPECT_GT(broker.peak_capital_in_use + broker.peak_inventory_in_use, 0u);
  }
  // Broker deals' gas is exactly the per-deal attribution, summed.
  uint64_t deal_gas = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    EXPECT_GT(rec.broker, 0u);
    EXPECT_LE(rec.broker, 2u);
    deal_gas += rec.gas;
  }
  EXPECT_EQ(broker_gas, deal_gas);
}

TEST(BrokerPoolTest, ZeroBrokerConfigReproducesGoldenFingerprint) {
  // The acceptance contract of the subsystem: with num_brokers = 0 the
  // BrokerPool touches nothing, so the pre-broker golden fingerprints
  // still come out bit-for-bit.
  {
    TrafficOptions options;
    options.base_seed = 101;
    options.num_deals = 40;
    options.num_chains = 6;
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, kGoldenFpMixedSeed101)
        << report.Summary();
    EXPECT_TRUE(report.brokers.empty());
    EXPECT_EQ(report.broker_deals, 0u);
  }
  {
    TrafficOptions options;
    options.base_seed = 202;
    options.num_deals = 30;
    options.num_chains = 4;
    options.protocol_mix = {Protocol::kCbc};
    TrafficReport report = RunTraffic(options);
    EXPECT_EQ(report.fingerprint, kGoldenFpCbcSeed202)
        << report.Summary();
  }
}

TEST(BrokerPoolTest, BrokerEveryInterleavesBrokerAndRandomDeals) {
  TrafficOptions options;
  options.base_seed = 9;
  options.num_deals = 20;
  options.num_chains = 4;
  options.brokers = AmpleBrokers(2);
  options.brokers.broker_every = 4;  // deals 0, 4, 8, ... are brokered
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.broker_deals, 5u);
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.index % 4 == 0) {
      EXPECT_GT(rec.broker, 0u) << "deal " << rec.index;
      EXPECT_EQ(rec.parties, 3u);
    } else {
      EXPECT_EQ(rec.broker, 0u) << "deal " << rec.index;
    }
  }
  EXPECT_EQ(report.committed, 20u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.broker_portfolio_violations, 0u);
}

TEST(BrokerPoolTest, PortfolioViolationSeededAndReplayed) {
  // A compliant broker is never worse off — congestion only delays her
  // refunds (that is Property 1 doing its job). To seed a real portfolio
  // violation, a *sell-side* broker deal's first escrower — the broker
  // herself — goes dark right after escrowing her inventory: the deposit
  // strands forever, her commodity balance ends short, and the portfolio
  // check (Property 1 lifted to the whole deal set) catches her ending
  // worse off. The violation replays bit-for-bit from the same options.
  TrafficOptions options;
  options.base_seed = 11;
  options.num_deals = 16;
  options.num_chains = 4;
  options.protocol_mix = {Protocol::kTimelock};
  options.brokers = AmpleBrokers(2);

  // Find a sell-side broker deal (the side is a function of the deal seed,
  // so a clean dry run locates a stable target index).
  TrafficReport dry = RunTraffic(options);
  EXPECT_EQ(dry.broker_portfolio_violations, 0u) << dry.Summary();
  size_t target = options.num_deals;
  for (const TrafficDealRecord& rec : dry.deals) {
    if (rec.broker_inventory_need > 0) {
      target = rec.index;
      break;
    }
  }
  ASSERT_LT(target, options.num_deals) << "no sell-side deal in workload";

  options.offline_party_deals = {target};
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.broker_portfolio_violations, 1u) << report.Summary();
  EXPECT_TRUE(report.deals[target].tainted);
  EXPECT_FALSE(report.deals[target].all_settled);
  size_t violating = report.deals[target].broker - 1;
  ASSERT_LT(violating, report.brokers.size());
  EXPECT_FALSE(report.brokers[violating].portfolio_ok) << report.Summary();
  EXPECT_LT(report.brokers[violating].inventory_delta, 0);
  // The dark broker deviated in one deal only; the rest of the workload is
  // clean (no property violations anywhere — the stranded value is hers).
  EXPECT_TRUE(report.violations.empty()) << report.Summary();

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  EXPECT_EQ(replay.broker_portfolio_violations, 1u);
  EXPECT_FALSE(replay.brokers[violating].portfolio_ok);
}

/// A tight-capital broker workload under open-loop arrivals, admission
/// controller on with ONLY the broker signal armed (no backlog or chain
/// occupancy thresholds): contention comes from working capital alone.
TrafficOptions TightCapitalOptions() {
  TrafficOptions options;
  options.base_seed = 5;
  options.num_deals = 60;
  options.num_chains = 4;
  options.arrival = ArrivalProcess::kPoisson;
  options.mean_interarrival = 10.0;  // λ = 100 deals per kilotick
  options.brokers.num_brokers = 1;
  options.brokers.working_capital = 150;
  options.brokers.inventory = 64;
  options.brokers.min_units = 1;
  options.brokers.max_units = 1;  // every buy-side deal needs 100 coins
  options.admission.enabled = true;
  options.admission.retry_delay = 30;
  options.admission.max_retries = 6;
  return options;
}

TEST(BrokerPoolTest, CapitalLimitDelaysAndShedsInsteadOfOverCommitting) {
  TrafficOptions options = TightCapitalOptions();
  TrafficReport tight = RunTraffic(options);

  // The signal fired and the controller acted on it: deals waited for
  // capital, and some were shed when it never freed in time.
  EXPECT_GT(tight.broker_blocked, 0u) << tight.Summary();
  EXPECT_GT(tight.delayed_deals, 0u) << tight.Summary();
  EXPECT_GT(tight.shed, 0u) << tight.Summary();
  // Because the gate held, no broker escrow ever bounced: no evidence
  // taint, no double-spend incidents, no property violations — and every
  // admitted deal settled with the broker whole.
  EXPECT_TRUE(tight.violations.empty()) << tight.Summary();
  EXPECT_TRUE(tight.double_spends.empty()) << tight.Summary();
  EXPECT_EQ(tight.broker_portfolio_violations, 0u) << tight.Summary();
  ASSERT_EQ(tight.brokers.size(), 1u);
  // The timeline holds a deal's reservation from admission to its *final*
  // settlement across all chains, while the live gate frees capital the
  // moment the coin escrow pays it back — so peak-in-use may exceed the
  // limit by at most one deal's worth of settle lag, never more.
  EXPECT_GT(tight.brokers[0].peak_capital_in_use, 0u);
  EXPECT_LE(tight.brokers[0].peak_capital_in_use, 150u + 100u);
  EXPECT_EQ(tight.brokers[0].shed, tight.shed);
  EXPECT_GT(tight.brokers[0].delayed, 0u);
  for (const TrafficDealRecord& rec : tight.deals) {
    if (rec.shed) EXPECT_FALSE(rec.started);
  }

  // Ample capital, same workload: the broker signal never blocks, nothing
  // is delayed or shed, every deal commits.
  options.brokers.working_capital = 100000;
  TrafficReport ample = RunTraffic(options);
  EXPECT_EQ(ample.shed, 0u) << ample.Summary();
  EXPECT_EQ(ample.delayed_deals, 0u) << ample.Summary();
  EXPECT_EQ(ample.broker_blocked, 0u);
  EXPECT_EQ(ample.committed, options.num_deals) << ample.Summary();
  // Capital contention was the only thing standing between the two runs.
  EXPECT_GT(ample.committed, tight.committed);
}

TEST(BrokerPoolTest, UngatedOverCommitCaughtFromEvidenceAndAbortsCleanly) {
  // Same scarcity, but nothing gates admission: the broker's concurrent
  // buy-side escrows over-commit her 100-coin capital, the late pulls
  // bounce on chain, and the engine (a) taints those deals with the broker
  // as the deviating party, (b) reports the over-commitment as cross-deal
  // double-spend incidents from receipts alone, and (c) the bounced deals
  // abort cleanly — no compliant counterparty is harmed.
  TrafficOptions options;
  options.base_seed = 5;
  options.num_deals = 16;
  options.num_chains = 4;
  options.admission_gap = 20;
  options.protocol_mix = {Protocol::kTimelock};
  options.brokers.num_brokers = 1;
  options.brokers.working_capital = 100;
  options.brokers.inventory = 64;
  options.brokers.min_units = 1;
  options.brokers.max_units = 1;
  TrafficReport report = RunTraffic(options);

  EXPECT_FALSE(report.double_spends.empty()) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  size_t tainted = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (!rec.tainted) continue;
    ++tainted;
    EXPECT_FALSE(rec.committed) << "deal " << rec.index;
  }
  EXPECT_GT(tainted, 0u) << report.Summary();
  // Refunds make even the over-committed broker whole on the bounced
  // deals; her committed deals still earn margin.
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  EXPECT_EQ(replay.double_spends.size(), report.double_spends.size());
}

TEST(BrokerPoolTest, ReportBitIdenticalAcrossThreadCounts) {
  TrafficOptions options = TightCapitalOptions();
  options.num_threads = 1;
  TrafficReport baseline = RunTraffic(options);

  options.num_threads = 8;
  TrafficReport threaded = RunTraffic(options);
  EXPECT_EQ(threaded.fingerprint, baseline.fingerprint);
  EXPECT_EQ(threaded.Summary(), baseline.Summary());
  ASSERT_EQ(threaded.brokers.size(), baseline.brokers.size());
  for (size_t b = 0; b < baseline.brokers.size(); ++b) {
    EXPECT_EQ(threaded.brokers[b].gas, baseline.brokers[b].gas);
    EXPECT_EQ(threaded.brokers[b].coin_delta, baseline.brokers[b].coin_delta);
    ASSERT_EQ(threaded.brokers[b].timeline.size(),
              baseline.brokers[b].timeline.size());
    for (size_t i = 0; i < baseline.brokers[b].timeline.size(); ++i) {
      EXPECT_EQ(threaded.brokers[b].timeline[i].capital_in_use,
                baseline.brokers[b].timeline[i].capital_in_use);
    }
  }
}

// --- multi-hop broker chains + priced capital ---

TEST(BrokerPoolTest, HopChainDepthThreeConformsAndEveryHopEarnsMargin) {
  // Depth-3 resale chains: every broker deal routes goods seller -> B0 ->
  // B1 -> B2 -> buyer in ONE atomic deal, each hop fronting the capital to
  // pay its upstream. All chains commit, no portfolio violation anywhere,
  // and every hop broker nets her margin.
  TrafficOptions options;
  options.base_seed = 17;
  options.num_deals = 18;
  options.num_chains = 6;
  options.brokers = AmpleBrokers(3);
  options.brokers.hop_depth = 3;
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.broker_hop_depth, 3u);
  EXPECT_EQ(report.broker_deals, 18u);
  EXPECT_EQ(report.committed, 18u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_TRUE(report.double_spends.empty()) << report.Summary();
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);

  // Every deal stakes all three brokers (hop rotation covers the pool), so
  // per-broker deal counts see the whole workload.
  ASSERT_EQ(report.brokers.size(), 3u);
  for (const BrokerRecord& broker : report.brokers) {
    EXPECT_EQ(broker.deals, 18u);
    EXPECT_EQ(broker.committed, 18u);
    EXPECT_TRUE(broker.portfolio_ok) << report.Summary();
    EXPECT_GT(broker.coin_delta, 0) << report.Summary();
    EXPECT_EQ(broker.inventory_delta, 0) << report.Summary();
    EXPECT_GT(broker.peak_capital_in_use, 0u);
  }
  // Chain deals carry one price point per hop; with margin_slope = 0 every
  // hop charges the flat unit margin.
  for (const TrafficDealRecord& rec : report.deals) {
    ASSERT_EQ(rec.price_points.size(), 3u) << "deal " << rec.index;
    for (const BrokerPool::PricePoint& point : rec.price_points) {
      EXPECT_EQ(point.margin, options.brokers.unit_margin);
      EXPECT_EQ(point.occupancy, 0u);
    }
    // seller + buyer + 3 hop brokers.
    EXPECT_EQ(rec.parties, 5u);
  }

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

TEST(BrokerPoolTest, HopDepthOneIsTheLegacyBrokerPathBitForBit) {
  // hop_depth <= 1 must be byte-identical to the legacy single-broker pool:
  // 0 (normalized to 1) and 1 produce the same fingerprint, and the legacy
  // single-stake price chart is one flat point per deal.
  TrafficOptions options;
  options.base_seed = 7;
  options.num_deals = 24;
  options.num_chains = 6;
  options.brokers = AmpleBrokers(2);
  options.brokers.hop_depth = 1;
  TrafficReport depth_one = RunTraffic(options);
  EXPECT_EQ(depth_one.broker_hop_depth, 1u);

  options.brokers.hop_depth = 0;  // normalized to 1 by the pool
  TrafficReport depth_zero = RunTraffic(options);
  EXPECT_EQ(depth_zero.fingerprint, depth_one.fingerprint);

  for (const TrafficDealRecord& rec : depth_one.deals) {
    ASSERT_EQ(rec.price_points.size(), 1u);
    EXPECT_EQ(rec.price_points[0].margin, options.brokers.unit_margin);
  }
}

TEST(BrokerPoolTest, PricedCapitalMarginRisesWithOccupancy) {
  // margin_slope > 0 turns capital into a priced resource: spec generation
  // defers to admission time, and each hop's margin is priced off the
  // broker's LIVE capital occupancy — margin = unit_margin + slope *
  // in_use / working_capital. Under overlapping open-loop arrivals the
  // occupancy is nonzero for later deals, so the workload traces a rising
  // margin-vs-occupancy curve (the market-clearing price chart).
  TrafficOptions options;
  options.base_seed = 5;
  options.num_deals = 40;
  options.num_chains = 4;
  options.arrival = ArrivalProcess::kPoisson;
  options.mean_interarrival = 10.0;
  options.brokers.num_brokers = 2;
  options.brokers.working_capital = 2000;
  options.brokers.inventory = 200;
  options.brokers.hop_depth = 2;
  options.brokers.margin_slope = 200;
  options.admission.enabled = true;
  options.admission.retry_delay = 20;
  options.admission.max_retries = 6;
  TrafficReport report = RunTraffic(options);

  EXPECT_GT(report.committed, 0u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();

  size_t priced_above_flat = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.shed || rec.price_points.empty()) continue;
    for (const BrokerPool::PricePoint& point : rec.price_points) {
      // The pricing formula holds exactly for every point.
      EXPECT_EQ(point.margin,
                options.brokers.unit_margin +
                    options.brokers.margin_slope * point.occupancy /
                        options.brokers.working_capital);
      EXPECT_GE(point.margin, options.brokers.unit_margin);
      if (point.occupancy > 0) ++priced_above_flat;
    }
  }
  // The curve is not flat: overlapping chains really were priced against
  // nonzero occupancy.
  EXPECT_GT(priced_above_flat, 0u) << report.Summary();

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

TEST(BrokerPoolTest, ShardedCbcBrokerDealsConform) {
  TrafficOptions options;
  options.base_seed = 31;
  options.num_deals = 24;
  options.num_chains = 6;
  options.cbc_shards = 4;
  options.protocol_mix = {Protocol::kCbc};
  options.brokers = AmpleBrokers(3);
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.cbc_deals, 24u);
  EXPECT_EQ(report.committed, 24u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);
  for (const BrokerRecord& broker : report.brokers) {
    EXPECT_EQ(broker.committed, broker.deals);
    EXPECT_GT(broker.coin_delta, 0);
  }

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

}  // namespace
}  // namespace xdeal
