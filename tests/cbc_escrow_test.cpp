// CbcEscrowContract (Figure 6) at the contract level: parameter pinning at
// escrow time, transfer rules, and every decide/proof path.

#include <gtest/gtest.h>

#include "cbc/validators.h"
#include "chain/world.h"
#include "contracts/cbc_escrow.h"

namespace xdeal {
namespace {

struct CbcEscrowFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    a = world->RegisterParty("a");
    b = world->RegisterParty("b");
    outsider = world->RegisterParty("m");
    chain = world->CreateChain("c", 10);
    token_id = chain->Deploy(std::make_unique<FungibleToken>("TOK", a));
    escrow_id = chain->Deploy(std::make_unique<CbcEscrowContract>(
        AssetKind::kFungible, token_id));
    contract = chain->As<CbcEscrowContract>(escrow_id);

    validators = std::make_unique<ValidatorSet>(
        ValidatorSet::Create(/*f=*/1, "esc-unit"));
    deal = MakeDealId("cbc-escrow-unit", 1);
    start_hash = Sha256Digest("the-startdeal-entry");

    auto* token = chain->As<FungibleToken>(token_id);
    token->Mint(Holder::Party(a), 100);
    CallContext ctx = Ctx(a);
    token->Approve(ctx, Holder::Party(a), Holder::Party(a),
                   Holder::OfContract(escrow_id), 100);
    ASSERT_TRUE(InvokeEscrow(a, 100, validators->CurrentPublicKeys()).ok());
  }

  CallContext Ctx(PartyId sender) {
    gas = std::make_unique<GasMeter>();
    CallContext ctx;
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = sender;
    ctx.now = 0;
    ctx.gas = gas.get();
    return ctx;
  }

  Status InvokeEscrow(PartyId sender, uint64_t value,
                      const std::vector<PublicKey>& vals,
                      uint32_t epoch = 0) {
    ByteWriter w;
    w.Raw(deal.bytes.data(), 32);
    w.U32(2);
    w.U32(a.v);
    w.U32(b.v);
    w.Raw(start_hash.bytes.data(), 32);
    w.U32(static_cast<uint32_t>(vals.size()));
    for (const PublicKey& v : vals) w.Raw(v.Serialize());
    w.U32(epoch);
    w.U64(value);
    CallContext ctx = Ctx(sender);
    ByteReader args(w.bytes());
    auto r = contract->Invoke(ctx, "escrow", args);
    return r.ok() ? Status::OK() : r.status();
  }

  Status InvokeTransfer(PartyId sender, PartyId to, uint64_t value) {
    ByteWriter w;
    w.Raw(deal.bytes.data(), 32);
    w.U32(to.v);
    w.U64(value);
    CallContext ctx = Ctx(sender);
    ByteReader args(w.bytes());
    auto r = contract->Invoke(ctx, "transfer", args);
    return r.ok() ? Status::OK() : r.status();
  }

  CbcProof MakeProof(DealOutcome outcome) {
    CbcProof proof;
    proof.status.deal_id = deal;
    proof.status.start_hash = start_hash;
    proof.status.outcome = outcome;
    proof.status.epoch = 0;
    Bytes message = StatusCertificate::Message(deal, start_hash, outcome, 0);
    for (size_t i = 0; i < validators->quorum(); ++i) {
      KeyPair kp = KeyPair::FromSeed("esc-unit/validator/0/" +
                                     std::to_string(i));
      proof.status.sigs.push_back(
          ValidatorSig{kp.public_key(), kp.Sign(message)});
    }
    return proof;
  }

  Status InvokeDecide(PartyId sender, const CbcProof& proof,
                      const DealId& which_deal) {
    ByteWriter w;
    w.Raw(which_deal.bytes.data(), 32);
    w.Blob(proof.Serialize());
    CallContext ctx = Ctx(sender);
    ByteReader args(w.bytes());
    auto r = contract->Invoke(ctx, "decide", args);
    return r.ok() ? Status::OK() : r.status();
  }

  std::unique_ptr<World> world;
  PartyId a, b, outsider;
  Blockchain* chain = nullptr;
  ContractId token_id, escrow_id;
  CbcEscrowContract* contract = nullptr;
  std::unique_ptr<ValidatorSet> validators;
  DealId deal;
  Hash256 start_hash;
  std::unique_ptr<GasMeter> gas;
};

TEST_F(CbcEscrowFixture, EscrowPinsParameters) {
  EXPECT_TRUE(contract->initialized());
  EXPECT_EQ(contract->deal_id(), deal);
  EXPECT_EQ(contract->start_hash(), start_hash);
  EXPECT_EQ(contract->validators().size(), 4u);  // 3f+1, f=1
  EXPECT_EQ(contract->plist().size(), 2u);
}

TEST_F(CbcEscrowFixture, SecondEscrowMustMatchParameters) {
  auto* token = chain->As<FungibleToken>(token_id);
  token->Mint(Holder::Party(b), 10);
  CallContext ctx = Ctx(b);
  token->Approve(ctx, Holder::Party(b), Holder::Party(b),
                 Holder::OfContract(escrow_id), 10);
  // Matching parameters succeed.
  EXPECT_TRUE(InvokeEscrow(b, 10, validators->CurrentPublicKeys()).ok());
  // Mismatched validator set rejected.
  ValidatorSet other = ValidatorSet::Create(1, "evil");
  EXPECT_EQ(InvokeEscrow(b, 1, other.CurrentPublicKeys()).code(),
            StatusCode::kFailedPrecondition);
  // Mismatched start hash rejected.
  Hash256 saved = start_hash;
  start_hash = Sha256Digest("forged");
  EXPECT_EQ(InvokeEscrow(b, 1, validators->CurrentPublicKeys()).code(),
            StatusCode::kFailedPrecondition);
  start_hash = saved;
}

TEST_F(CbcEscrowFixture, ValidatorSetMustBe3fPlus1) {
  // Fresh contract; a 3-element validator set (3f+1 impossible) rejected.
  ContractId other_escrow = chain->Deploy(
      std::make_unique<CbcEscrowContract>(AssetKind::kFungible, token_id));
  auto* fresh = chain->As<CbcEscrowContract>(other_escrow);
  std::vector<PublicKey> three(3, validators->CurrentPublicKeys()[0]);
  ByteWriter w;
  w.Raw(deal.bytes.data(), 32);
  w.U32(2);
  w.U32(a.v);
  w.U32(b.v);
  w.Raw(start_hash.bytes.data(), 32);
  w.U32(3);
  for (const PublicKey& v : three) w.Raw(v.Serialize());
  w.U32(0);
  w.U64(1);
  CallContext ctx = Ctx(a);
  ByteReader args(w.bytes());
  EXPECT_EQ(fresh->Invoke(ctx, "escrow", args).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CbcEscrowFixture, NonPlistEscrowerRejected) {
  EXPECT_EQ(InvokeEscrow(outsider, 1, validators->CurrentPublicKeys()).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(CbcEscrowFixture, TransferRules) {
  EXPECT_TRUE(InvokeTransfer(a, b, 60).ok());
  EXPECT_EQ(contract->core().OnCommitOf(b), 60u);
  // Target outside the plist rejected.
  EXPECT_EQ(InvokeTransfer(a, outsider, 1).code(),
            StatusCode::kPermissionDenied);
  // Over-transfer rejected (double-spend inside the deal).
  EXPECT_EQ(InvokeTransfer(a, b, 50).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CbcEscrowFixture, DecideCommitReleases) {
  ASSERT_TRUE(InvokeTransfer(a, b, 100).ok());
  ASSERT_TRUE(InvokeDecide(b, MakeProof(kDealCommitted), deal).ok());
  EXPECT_EQ(contract->outcome(), kDealCommitted);
  EXPECT_TRUE(contract->Released());
  auto* token = chain->As<FungibleToken>(token_id);
  EXPECT_EQ(token->BalanceOf(Holder::Party(b)), 100u);
  // Gas: 2f+1 = 3 signature verifications.
  EXPECT_EQ(gas->sig_verifies(), 3u);
}

TEST_F(CbcEscrowFixture, DecideAbortRefunds) {
  ASSERT_TRUE(InvokeTransfer(a, b, 100).ok());
  ASSERT_TRUE(InvokeDecide(a, MakeProof(kDealAborted), deal).ok());
  EXPECT_TRUE(contract->Refunded());
  auto* token = chain->As<FungibleToken>(token_id);
  EXPECT_EQ(token->BalanceOf(Holder::Party(a)), 100u);
  EXPECT_EQ(token->BalanceOf(Holder::Party(b)), 0u);
}

TEST_F(CbcEscrowFixture, SecondDecideRejected) {
  ASSERT_TRUE(InvokeDecide(a, MakeProof(kDealCommitted), deal).ok());
  EXPECT_EQ(InvokeDecide(a, MakeProof(kDealAborted), deal).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(contract->outcome(), kDealCommitted);  // first decision sticks
}

TEST_F(CbcEscrowFixture, WrongDealIdRejected) {
  EXPECT_EQ(InvokeDecide(a, MakeProof(kDealCommitted),
                         MakeDealId("other", 2))
                .code(),
            StatusCode::kNotFound);
}

TEST_F(CbcEscrowFixture, UnderQuorumProofRejected) {
  CbcProof proof = MakeProof(kDealCommitted);
  proof.status.sigs.resize(2);  // below 2f+1 = 3
  EXPECT_EQ(InvokeDecide(a, proof, deal).code(), StatusCode::kUnverified);
  EXPECT_FALSE(contract->settled());
}

TEST_F(CbcEscrowFixture, GarbageProofBytesRejectedCleanly) {
  ByteWriter w;
  w.Raw(deal.bytes.data(), 32);
  w.Blob(Bytes{1, 2, 3, 4, 5});
  CallContext ctx = Ctx(a);
  ByteReader args(w.bytes());
  EXPECT_FALSE(contract->Invoke(ctx, "decide", args).ok());
  EXPECT_FALSE(contract->settled());
}

TEST_F(CbcEscrowFixture, ActiveOutcomeProofRejected) {
  EXPECT_EQ(InvokeDecide(a, MakeProof(kDealActive), deal).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xdeal
