// End-to-end CBC protocol (§6): broker deal commits via certified-blockchain
// proofs; aborts atomically under deviations, asynchrony, and Byzantine
// validator behaviour; validator reconfiguration chains verify.

#include <gtest/gtest.h>

#include "core/adversaries.h"
#include "core/checker.h"
#include "core/cbc_run.h"
#include "tests/scenario_util.h"

namespace xdeal {
namespace {

struct CbcRunOutput {
  CbcResult result;
  std::unique_ptr<DealChecker> checker;
  BrokerScenario scenario;
  std::unique_ptr<CbcService> service;
};

CbcRunOutput RunBrokerCbc(uint64_t seed, CbcRun::StrategyFactory factory,
                          CbcConfig config = CbcConfig{}, size_t f = 1,
                          std::unique_ptr<NetworkModel> net = nullptr) {
  CbcRunOutput out;
  out.scenario = MakeBrokerScenario(seed, std::move(net));
  auto& s = out.scenario;
  CbcService::Options service_options;
  service_options.f = f;
  service_options.validator_seed = "cbc-" + std::to_string(seed);
  out.service =
      std::make_unique<CbcService>(&s.env->world(), service_options);
  CbcRun run(&s.env->world(), s.spec, config, out.service.get(),
             std::move(factory));
  EXPECT_TRUE(run.Start().ok());
  out.checker = std::make_unique<DealChecker>(
      &s.env->world(), s.spec, run.deployment().escrow_contracts);
  out.checker->CaptureInitial();
  s.env->world().scheduler().Run();
  out.result = run.Collect();
  return out;
}

TEST(CbcBrokerTest, AllCompliantCommits) {
  CbcRunOutput out = RunBrokerCbc(21, nullptr);
  EXPECT_EQ(out.result.outcome, kDealCommitted);
  EXPECT_TRUE(out.result.all_settled);
  EXPECT_TRUE(out.result.atomic);
  EXPECT_EQ(out.result.released_contracts, 2u);
  EXPECT_TRUE(out.checker->StrongLivenessHolds());

  auto& s = out.scenario;
  auto* registry = s.env->RegistryOf(s.spec, s.tickets_asset);
  EXPECT_EQ(registry->OwnerOf(s.ticket1), Holder::Party(s.carol));
  auto* coins = s.env->TokenOf(s.spec, s.coins_asset);
  EXPECT_EQ(coins->BalanceOf(Holder::Party(s.bob)), 100u);
  EXPECT_EQ(coins->BalanceOf(Holder::Party(s.alice)), 1u);
}

TEST(CbcBrokerTest, CommitAcrossSeedsAndF) {
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    for (size_t f : {1u, 2u}) {
      CbcRunOutput out = RunBrokerCbc(seed, nullptr, CbcConfig{}, f);
      EXPECT_EQ(out.result.outcome, kDealCommitted)
          << "seed " << seed << " f " << f;
      EXPECT_TRUE(out.checker->StrongLivenessHolds());
    }
  }
}

TEST(CbcBrokerTest, CrashBeforeVoteAbortsAtomically) {
  auto out = RunBrokerCbc(41, [](PartyId p) -> std::unique_ptr<CbcParty> {
    if (p.v == 2) return std::make_unique<CbcCrashBeforeVoteParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.outcome, kDealAborted);
  EXPECT_TRUE(out.result.atomic);
  EXPECT_EQ(out.result.released_contracts, 0u);
  // Carol crashed before even escrowing, so only Bob's tickets contract has
  // deposits to refund; Carol's coins contract is vacuously settled.
  EXPECT_GE(out.result.refunded_contracts, 1u);
  EXPECT_TRUE(out.result.all_settled);
  auto& s = out.scenario;
  EXPECT_TRUE(out.checker->SafetyHolds({s.alice, s.bob}));
  EXPECT_TRUE(out.checker->WeakLivenessHolds({s.alice, s.bob}));
  EXPECT_TRUE(out.checker->Evaluate(s.bob).token_state_unchanged);
}

TEST(CbcBrokerTest, AlwaysAbortPartyAbortsEverywhere) {
  auto out = RunBrokerCbc(42, [](PartyId p) -> std::unique_ptr<CbcParty> {
    if (p.v == 1) return std::make_unique<CbcAlwaysAbortParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.outcome, kDealAborted);
  EXPECT_TRUE(out.result.atomic);
  auto& s = out.scenario;
  EXPECT_TRUE(out.checker->SafetyHolds({s.alice, s.carol}));
  for (PartyId p : s.spec.parties) {
    EXPECT_TRUE(out.checker->Evaluate(p).token_state_unchanged);
  }
}

TEST(CbcBrokerTest, RescindRacerIsAtomicEitherWay) {
  // A party votes commit then races an abort. Whatever order the CBC log
  // settles on, every chain follows the same outcome.
  for (uint64_t seed = 50; seed < 56; ++seed) {
    auto out =
        RunBrokerCbc(seed, [](PartyId p) -> std::unique_ptr<CbcParty> {
          if (p.v == 0) return std::make_unique<CbcRescindRacerParty>();
          return nullptr;
        });
    EXPECT_TRUE(out.result.atomic) << "seed " << seed;
    EXPECT_TRUE(out.result.all_settled) << "seed " << seed;
    auto& s = out.scenario;
    EXPECT_TRUE(out.checker->SafetyHolds({s.bob, s.carol}))
        << "seed " << seed;
  }
}

TEST(CbcBrokerTest, FakeProofRejected) {
  // Alice presents an f-signed forged abort certificate; contracts reject
  // it (quorum is 2f+1) and the deal commits normally.
  auto out = RunBrokerCbc(43, [](PartyId p) -> std::unique_ptr<CbcParty> {
    if (p.v == 0) return std::make_unique<CbcFakeProofParty>();
    return nullptr;
  });
  EXPECT_EQ(out.result.outcome, kDealCommitted);
  EXPECT_TRUE(out.result.atomic);
  EXPECT_EQ(out.result.released_contracts, 2u);

  // The forged decide transactions must appear as failed receipts.
  auto& s = out.scenario;
  size_t rejected = 0;
  for (uint32_t c = 0; c < s.env->world().num_chains(); ++c) {
    for (const Receipt& r : s.env->world().chain(ChainId{c})->receipts()) {
      if (r.function == "decide" && !r.status.ok()) ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(CbcBrokerTest, ReconfigurationChainVerifies) {
  // The validator set rotates twice between escrow and claim; parties must
  // present proofs carrying two reconfiguration certificates:
  // (k+1)(2f+1) signature verifications per contract.
  CbcConfig config;
  config.reconfigs_before_claim = 2;
  auto out = RunBrokerCbc(44, nullptr, config);
  EXPECT_EQ(out.result.outcome, kDealCommitted);
  EXPECT_TRUE(out.checker->StrongLivenessHolds());

  // f=1 -> quorum 3; (k+1)(2f+1) = 3*3 = 9 verifications per contract,
  // 2 contracts -> 18.
  EXPECT_EQ(out.result.sig_verifies_decide, 18u);
}

TEST(CbcBrokerTest, NoReconfigSignatureCount) {
  auto out = RunBrokerCbc(45, nullptr);
  ASSERT_EQ(out.result.outcome, kDealCommitted);
  // (0+1)(2f+1) = 3 per contract, 2 contracts.
  EXPECT_EQ(out.result.sig_verifies_decide, 6u);
}

TEST(CbcBrokerTest, PreGstAsynchronyAbortsAtomically) {
  // The network is asynchronous until far beyond every protocol deadline:
  // escrows and transfers straggle, validation fails, parties vote abort.
  // The deal must abort *everywhere* — never a mixed outcome — and all
  // compliant parties keep their assets.
  auto net = std::make_unique<SemiSynchronousNetwork>(
      /*gst=*/4000, /*pre_gst_max=*/3000, /*min_delay=*/1, /*max_delay=*/10);
  auto out = RunBrokerCbc(46, nullptr, CbcConfig{}, 1, std::move(net));
  EXPECT_TRUE(out.result.atomic);
  EXPECT_TRUE(out.result.all_settled);
  auto& s = out.scenario;
  EXPECT_TRUE(
      out.checker->SafetyHolds({s.alice, s.bob, s.carol}));
  EXPECT_TRUE(
      out.checker->WeakLivenessHolds({s.alice, s.bob, s.carol}));
}

TEST(CbcBrokerTest, PostGstCommits) {
  // GST passes before the deal starts: eventual synchrony behaves like
  // synchrony and the deal commits.
  auto net = std::make_unique<SemiSynchronousNetwork>(
      /*gst=*/0, /*pre_gst_max=*/3000, /*min_delay=*/1, /*max_delay=*/10);
  auto out = RunBrokerCbc(47, nullptr, CbcConfig{}, 1, std::move(net));
  EXPECT_EQ(out.result.outcome, kDealCommitted);
  EXPECT_TRUE(out.checker->StrongLivenessHolds());
}

TEST(CbcBrokerTest, AtomicityAcrossAdversarySweep) {
  // Whatever single-party deviation we inject, the CBC guarantee holds:
  // commit everywhere or abort everywhere.
  for (uint32_t deviant = 0; deviant < 3; ++deviant) {
    for (int kind = 0; kind < 3; ++kind) {
      auto out = RunBrokerCbc(
          100 + deviant * 10 + kind,
          [deviant, kind](PartyId p) -> std::unique_ptr<CbcParty> {
            if (p.v != deviant) return nullptr;
            switch (kind) {
              case 0: return std::make_unique<CbcCrashBeforeVoteParty>();
              case 1: return std::make_unique<CbcAlwaysAbortParty>();
              default: return std::make_unique<CbcRescindRacerParty>();
            }
          });
      EXPECT_TRUE(out.result.atomic)
          << "deviant " << deviant << " kind " << kind;
      // Every compliant party stays safe and unlocked; the deviant's own
      // deposits may stay locked (its problem — it can always claim later).
      std::vector<PartyId> compliant;
      for (PartyId p : out.scenario.spec.parties) {
        if (p.v != deviant) compliant.push_back(p);
      }
      EXPECT_TRUE(out.checker->SafetyHolds(compliant))
          << "deviant " << deviant << " kind " << kind;
      EXPECT_TRUE(out.checker->WeakLivenessHolds(compliant))
          << "deviant " << deviant << " kind " << kind;
    }
  }
}

}  // namespace
}  // namespace xdeal
