// CbcService: deal→shard assignment is a deterministic, stable function of
// the deal id; shards are independent certified chains with independent
// validator sets (reconfiguring one does not disturb the others); and deals
// hashed to distinct shards of one service settle independently in one
// World.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cbc/cbc_service.h"
#include "core/cbc_run.h"
#include "core/checker.h"
#include "core/deal_gen.h"
#include "core/env.h"
#include "core/protocol_driver.h"

namespace xdeal {
namespace {

TEST(CbcServiceTest, ShardAssignmentIsDeterministicAndStable) {
  EnvConfig config_a, config_b;
  config_a.seed = 1;
  config_b.seed = 99;  // a differently seeded world must not matter
  DealEnv env_a(std::move(config_a));
  DealEnv env_b(std::move(config_b));

  CbcService::Options options;
  options.num_shards = 4;
  CbcService a(&env_a.world(), options);
  CbcService b(&env_b.world(), options);

  std::set<size_t> used;
  for (uint64_t i = 0; i < 200; ++i) {
    DealId id = MakeDealId("stability-" + std::to_string(i), i);
    size_t shard = a.ShardOf(id);
    EXPECT_LT(shard, 4u);
    // Same id -> same shard, across calls and across service instances.
    EXPECT_EQ(shard, a.ShardOf(id));
    EXPECT_EQ(shard, b.ShardOf(id));
    used.insert(shard);
  }
  // 200 hashed ids spread over all 4 shards.
  EXPECT_EQ(used.size(), 4u);
}

TEST(CbcServiceTest, SingleShardMapsEverythingToShardZero) {
  DealEnv env(EnvConfig{});
  CbcService service(&env.world(), CbcService::Options{});
  ASSERT_EQ(service.num_shards(), 1u);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(service.ShardOf(MakeDealId("one", i)), 0u);
  }
}

TEST(CbcServiceTest, ShardsAreDistinctChainsWithDistinctValidators) {
  DealEnv env(EnvConfig{});
  CbcService::Options options;
  options.num_shards = 3;
  CbcService service(&env.world(), options);

  std::set<uint32_t> chains;
  for (size_t s = 0; s < 3; ++s) {
    chains.insert(service.chain(s).v);
    EXPECT_NE(env.world().chain(service.chain(s)), nullptr);
  }
  EXPECT_EQ(chains.size(), 3u);
  // Each shard's validator keys are derived from its own seed suffix.
  EXPECT_NE(service.validators(0).CurrentPublicKeys(),
            service.validators(1).CurrentPublicKeys());
  EXPECT_NE(service.validators(1).CurrentPublicKeys(),
            service.validators(2).CurrentPublicKeys());
}

TEST(CbcServiceTest, ReconfiguringOneShardLeavesOthersUntouched) {
  DealEnv env(EnvConfig{});
  CbcService::Options options;
  options.num_shards = 4;
  CbcService service(&env.world(), options);

  std::vector<std::vector<PublicKey>> before;
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(service.validators(s).epoch(), 0u);
    before.push_back(service.validators(s).CurrentPublicKeys());
  }

  ReconfigCertificate cert = service.Reconfigure(2);
  EXPECT_EQ(cert.new_epoch, 1u);

  for (size_t s = 0; s < 4; ++s) {
    if (s == 2) {
      EXPECT_EQ(service.validators(s).epoch(), 1u);
      EXPECT_NE(service.validators(s).CurrentPublicKeys(), before[s]);
    } else {
      EXPECT_EQ(service.validators(s).epoch(), 0u);
      EXPECT_EQ(service.validators(s).CurrentPublicKeys(), before[s]);
    }
  }
}

TEST(CbcServiceTest, DealsOnDistinctShardsSettleIndependently) {
  EnvConfig env_config;
  env_config.seed = 7;
  DealEnv env(std::move(env_config));

  CbcService::Options options;
  options.num_shards = 2;
  CbcService service(&env.world(), options);
  CbcDriver driver(&service);

  // Generate deals until we have one on each shard.
  std::vector<std::unique_ptr<DealRuntime>> runtimes;
  std::vector<std::unique_ptr<DealChecker>> checkers;
  std::set<size_t> shards_used;
  for (uint64_t d = 0; shards_used.size() < 2 && d < 16; ++d) {
    GenParams gen;
    gen.n_parties = 3;
    gen.m_assets = 2;
    gen.t_transfers = 5;
    gen.num_chains = 2;
    gen.seed = 1000 + d;
    gen.name_prefix = "svc" + std::to_string(d) + "-";
    DealSpec spec = GenerateRandomDeal(&env, gen);
    size_t shard = service.ShardOf(spec.deal_id);
    if (!shards_used.insert(shard).second) continue;

    DealTimings timings = DealTimings::DefaultsFor(Protocol::kCbc);
    timings.deal_tag = runtimes.size() + 1;
    runtimes.push_back(driver.CreateDeal(&env.world(), spec, timings));
    ASSERT_TRUE(runtimes.back()->Deploy().ok());
    checkers.push_back(std::make_unique<DealChecker>(
        &env.world(), spec, runtimes.back()->escrow_contracts(),
        timings.deal_tag));
    checkers.back()->CaptureInitial();
  }
  ASSERT_EQ(shards_used.size(), 2u);

  // A reconfiguration storm on shards nobody uses must not disturb either
  // deal: grow the service's world... there are only 2 shards, both in use,
  // so instead verify the runs' logs landed on different chains and both
  // deals commit with full settlement.
  EXPECT_NE(runtimes[0]->cbc_run()->deployment().cbc_chain,
            runtimes[1]->cbc_run()->deployment().cbc_chain);

  env.world().scheduler().Run();
  for (size_t i = 0; i < runtimes.size(); ++i) {
    DealResult result = runtimes[i]->Collect();
    EXPECT_TRUE(result.committed) << "deal " << i;
    EXPECT_TRUE(result.all_settled) << "deal " << i;
    EXPECT_TRUE(result.atomic) << "deal " << i;
    EXPECT_TRUE(checkers[i]->StrongLivenessHolds()) << "deal " << i;
  }
}

TEST(CbcServiceTest, ReconfigOfUnusedShardDoesNotDisturbALiveDeal) {
  EnvConfig env_config;
  env_config.seed = 11;
  DealEnv env(std::move(env_config));

  CbcService::Options options;
  options.num_shards = 4;
  CbcService service(&env.world(), options);
  CbcDriver driver(&service);

  GenParams gen;
  gen.n_parties = 3;
  gen.m_assets = 2;
  gen.t_transfers = 5;
  gen.num_chains = 2;
  gen.seed = 42;
  DealSpec spec = GenerateRandomDeal(&env, gen);
  size_t my_shard = service.ShardOf(spec.deal_id);

  std::unique_ptr<DealRuntime> runtime =
      driver.CreateDeal(&env.world(), spec, DealTimings::DefaultsFor(
                                                Protocol::kCbc));
  ASSERT_TRUE(runtime->Deploy().ok());

  // Mid-deal, rotate every OTHER shard's validator set (twice). The live
  // deal's escrows pinned its own shard's epoch-0 keys; foreign rotations
  // must not invalidate its proofs.
  env.world().scheduler().ScheduleAt(200, [&service, my_shard] {
    for (size_t s = 0; s < service.num_shards(); ++s) {
      if (s != my_shard) {
        service.Reconfigure(s);
        service.Reconfigure(s);
      }
    }
  });

  env.world().scheduler().Run();
  DealResult result = runtime->Collect();
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(result.all_settled);
  EXPECT_EQ(service.validators(my_shard).epoch(), 0u);
}

}  // namespace
}  // namespace xdeal
