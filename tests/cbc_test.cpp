// CBC substrate: log outcome rules (§6), validator certificates, proof
// verification including reconfiguration chains, and every rejection path
// of Figure 6's checks.

#include <gtest/gtest.h>

#include "cbc/cbc_log.h"
#include "cbc/types.h"
#include "cbc/validators.h"
#include "chain/world.h"
#include "contracts/deal_info.h"

namespace xdeal {
namespace {

struct CbcFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<World>(
        1, std::make_unique<SynchronousNetwork>(1, 5));
    a = world->RegisterParty("a");
    b = world->RegisterParty("b");
    c = world->RegisterParty("c");
    outsider = world->RegisterParty("m");
    chain = world->CreateChain("cbc", 10);
    log_id = chain->Deploy(std::make_unique<CbcLogContract>());
    log = chain->As<CbcLogContract>(log_id);
    deal = MakeDealId("cbc-unit", 1);
  }

  Status Invoke(PartyId sender, const std::string& fn, const Bytes& args) {
    GasMeter gas;
    CallContext ctx;
    ctx.world = world.get();
    ctx.chain = chain;
    ctx.sender = sender;
    ctx.now = 0;
    ctx.gas = &gas;
    ByteReader reader(args);
    auto r = log->Invoke(ctx, fn, reader);
    return r.ok() ? Status::OK() : r.status();
  }

  Status StartDeal(PartyId sender) {
    ByteWriter w;
    w.Raw(deal.bytes.data(), 32);
    w.U32(3);
    w.U32(a.v);
    w.U32(b.v);
    w.U32(c.v);
    return Invoke(sender, "startDeal", w.bytes());
  }

  Status Vote(PartyId sender, bool abort, Hash256 h = Hash256{}) {
    if (h.IsZero()) h = log->StartHashOf(deal);
    ByteWriter w;
    w.Raw(deal.bytes.data(), 32);
    w.Raw(h.bytes.data(), 32);
    return Invoke(sender, abort ? "abort" : "commit", w.bytes());
  }

  std::unique_ptr<World> world;
  PartyId a, b, c, outsider;
  Blockchain* chain = nullptr;
  ContractId log_id;
  CbcLogContract* log = nullptr;
  DealId deal;
};

TEST_F(CbcFixture, StartDealRules) {
  EXPECT_EQ(StartDeal(outsider).code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(StartDeal(a).ok());
  EXPECT_FALSE(log->StartHashOf(deal).IsZero());
  // "the earliest is considered definitive" — re-starting is rejected.
  EXPECT_EQ(StartDeal(b).code(), StatusCode::kAlreadyExists);
}

TEST_F(CbcFixture, AllCommitsDecideCommitted) {
  ASSERT_TRUE(StartDeal(a).ok());
  EXPECT_EQ(log->OutcomeOf(deal), kDealActive);
  EXPECT_TRUE(Vote(a, false).ok());
  EXPECT_TRUE(Vote(b, false).ok());
  EXPECT_EQ(log->OutcomeOf(deal), kDealActive);
  EXPECT_TRUE(Vote(c, false).ok());
  EXPECT_EQ(log->OutcomeOf(deal), kDealCommitted);
}

TEST_F(CbcFixture, AbortBeforeFullCommitDecidesAborted) {
  ASSERT_TRUE(StartDeal(a).ok());
  EXPECT_TRUE(Vote(a, false).ok());
  EXPECT_TRUE(Vote(b, true).ok());
  EXPECT_TRUE(Vote(c, false).ok());
  EXPECT_EQ(log->OutcomeOf(deal), kDealAborted);
}

TEST_F(CbcFixture, RescindBeforeCompletionAborts) {
  // "A party can rescind an earlier commit vote by voting to abort."
  ASSERT_TRUE(StartDeal(a).ok());
  EXPECT_TRUE(Vote(a, false).ok());
  EXPECT_TRUE(Vote(a, true).ok());  // rescind
  EXPECT_TRUE(Vote(b, false).ok());
  EXPECT_TRUE(Vote(c, false).ok());
  EXPECT_EQ(log->OutcomeOf(deal), kDealAborted);
}

TEST_F(CbcFixture, AbortAfterDecisiveCommitIsHarmless) {
  ASSERT_TRUE(StartDeal(a).ok());
  EXPECT_TRUE(Vote(a, false).ok());
  EXPECT_TRUE(Vote(b, false).ok());
  EXPECT_TRUE(Vote(c, false).ok());
  ASSERT_EQ(log->OutcomeOf(deal), kDealCommitted);
  EXPECT_TRUE(Vote(a, true).ok());  // too late
  EXPECT_EQ(log->OutcomeOf(deal), kDealCommitted);
}

TEST_F(CbcFixture, VoteRules) {
  ASSERT_TRUE(StartDeal(a).ok());
  EXPECT_EQ(Vote(outsider, false).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Vote(a, false, Sha256Digest("wrong-h")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(Vote(a, false).ok());
  EXPECT_EQ(Vote(a, false).code(), StatusCode::kAlreadyExists);

  DealId unknown = MakeDealId("nope", 9);
  ByteWriter w;
  w.Raw(unknown.bytes.data(), 32);
  w.Raw(Hash256{}.bytes.data(), 32);
  EXPECT_EQ(Invoke(a, "commit", w.bytes()).code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Validators + proofs
// ---------------------------------------------------------------------------

struct ProofFixture : public CbcFixture {
  void SetUp() override {
    CbcFixture::SetUp();
    validators = std::make_unique<ValidatorSet>(
        ValidatorSet::Create(/*f=*/2, "unit"));
    ASSERT_TRUE(StartDeal(a).ok());
    ASSERT_TRUE(Vote(a, false).ok());
    ASSERT_TRUE(Vote(b, false).ok());
    ASSERT_TRUE(Vote(c, false).ok());
    initial_keys = validators->CurrentPublicKeys();
  }

  std::unique_ptr<ValidatorSet> validators;
  std::vector<PublicKey> initial_keys;
};

TEST_F(ProofFixture, HonestStatusCertificateVerifies) {
  CbcProof proof;
  proof.status = validators->IssueStatus(*log, deal);
  EXPECT_EQ(proof.status.sigs.size(), validators->quorum());

  GasMeter gas;
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, &gas);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), kDealCommitted);
  // 2f+1 = 5 verifications at 3000 gas each.
  EXPECT_EQ(gas.sig_verifies(), 5u);
}

TEST_F(ProofFixture, ActiveOutcomeNotAcceptedAsProof) {
  DealId undecided = MakeDealId("undecided", 3);
  CbcProof proof;
  proof.status = validators->IssueStatus(*log, undecided);
  EXPECT_EQ(proof.status.outcome, kDealActive);
  auto outcome = VerifyCbcProof(proof, undecided, Hash256{}, initial_keys, 0,
                                nullptr);
  EXPECT_FALSE(outcome.ok());
}

TEST_F(ProofFixture, ByzantineMinorityCertificateRejected) {
  CbcProof proof;
  proof.status = validators->IssueByzantineStatus(
      deal, log->StartHashOf(deal), kDealAborted);
  EXPECT_EQ(proof.status.sigs.size(), validators->f());
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, nullptr);
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnverified);
}

TEST_F(ProofFixture, DuplicateSignaturesRejected) {
  CbcProof proof;
  proof.status = validators->IssueDuplicateSigStatus(
      deal, log->StartHashOf(deal), kDealCommitted, validators->quorum());
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, nullptr);
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProofFixture, WrongStartHashRejected) {
  CbcProof proof;
  proof.status = validators->IssueWrongStartHashStatus(*log, deal);
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, nullptr);
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProofFixture, NonValidatorSignerRejected) {
  CbcProof proof;
  proof.status = validators->IssueStatus(*log, deal);
  // Replace one signer with an outsider key (signature valid, key wrong).
  KeyPair mallory = KeyPair::FromSeed("mallory");
  Bytes message = StatusCertificate::Message(
      proof.status.deal_id, proof.status.start_hash, proof.status.outcome,
      proof.status.epoch);
  proof.status.sigs[0] = ValidatorSig{mallory.public_key(),
                                      mallory.Sign(message)};
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, nullptr);
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ProofFixture, TamperedSignatureRejected) {
  CbcProof proof;
  proof.status = validators->IssueStatus(*log, deal);
  proof.status.sigs[1].sig.s =
      U256::AddMod(proof.status.sigs[1].sig.s, U256(1), SchnorrGroup::N());
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, nullptr);
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnverified);
}

TEST_F(ProofFixture, ReconfigurationChainVerifies) {
  // Rotate twice; the proof must carry both certificates and the status
  // certificate must be signed by the NEWEST epoch.
  ReconfigCertificate rc1 = validators->Reconfigure();
  ReconfigCertificate rc2 = validators->Reconfigure();
  CbcProof proof;
  proof.reconfigs = {rc1, rc2};
  proof.status = validators->IssueStatus(*log, deal);

  GasMeter gas;
  auto outcome = VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                                initial_keys, 0, &gas);
  ASSERT_TRUE(outcome.ok());
  // (k+1)(2f+1) = 3 * 5 = 15 verifications.
  EXPECT_EQ(gas.sig_verifies(), 15u);
}

TEST_F(ProofFixture, StaleStatusEpochRejectedAfterReconfig) {
  StatusCertificate stale = validators->IssueStatus(*log, deal);
  validators->Reconfigure();
  CbcProof proof;
  proof.status = stale;  // no reconfig certs attached
  // Verifier starts at epoch 0 and the certificate claims epoch 0 — that is
  // fine. But with the reconfig chain attached, a stale epoch mismatches.
  ReconfigCertificate rc = ReconfigCertificate{};  // not used
  (void)rc;
  CbcProof chained;
  chained.reconfigs = {};  // pretend no rotation happened: still verifies
  chained.status = stale;
  EXPECT_TRUE(VerifyCbcProof(chained, deal, log->StartHashOf(deal),
                             initial_keys, 0, nullptr)
                  .ok());
  // A proof claiming the new epoch without the reconfig chain fails.
  CbcProof missing_chain;
  missing_chain.status = validators->IssueStatus(*log, deal);  // epoch 1
  EXPECT_FALSE(VerifyCbcProof(missing_chain, deal, log->StartHashOf(deal),
                              initial_keys, 0, nullptr)
                   .ok());
}

TEST_F(ProofFixture, ReconfigEpochGapRejected) {
  ReconfigCertificate rc1 = validators->Reconfigure();
  ReconfigCertificate rc2 = validators->Reconfigure();
  CbcProof proof;
  proof.reconfigs = {rc2};  // skipped rc1
  proof.status = validators->IssueStatus(*log, deal);
  EXPECT_FALSE(VerifyCbcProof(proof, deal, log->StartHashOf(deal),
                              initial_keys, 0, nullptr)
                   .ok());
  (void)rc1;
}

TEST_F(ProofFixture, ProofSerializationRoundTrip) {
  ReconfigCertificate rc1 = validators->Reconfigure();
  CbcProof proof;
  proof.reconfigs = {rc1};
  proof.status = validators->IssueStatus(*log, deal);

  Bytes wire = proof.Serialize();
  auto parsed = CbcProof::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumSignatures(), proof.NumSignatures());
  EXPECT_TRUE(VerifyCbcProof(parsed.value(), deal, log->StartHashOf(deal),
                             initial_keys, 0, nullptr)
                  .ok());

  // Truncated wire data must fail cleanly.
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(CbcProof::Deserialize(wire).ok());
}

TEST_F(ProofFixture, QuorumArithmetic) {
  EXPECT_EQ(validators->size(), 7u);    // 3f+1, f=2
  EXPECT_EQ(validators->quorum(), 5u);  // 2f+1
  EXPECT_EQ(validators->PublicKeysAt(0).size(), 7u);
}

}  // namespace
}  // namespace xdeal
