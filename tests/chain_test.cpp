// Blockchain substrate: block production, receipts, gas accounting,
// observation, and the World container.

#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "chain/world.h"
#include "contracts/fungible_token.h"

namespace xdeal {
namespace {

std::unique_ptr<World> MakeWorld(uint64_t seed = 1) {
  return std::make_unique<World>(
      seed, std::make_unique<SynchronousNetwork>(1, 5));
}

CallData TransferCall(Holder to, uint64_t amount) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(to.kind));
  w.U32(to.id);
  w.U64(amount);
  return CallData{"transfer", w.Take()};
}

TEST(BlockchainTest, ProducesBlocksAtBoundaries) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  PartyId bob = world->RegisterParty("bob");
  Blockchain* chain = world->CreateChain("c", /*block_interval=*/10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 50);

  world->Submit(alice, chain->id(), token, TransferCall(Holder::Party(bob), 20));
  world->scheduler().Run();

  ASSERT_EQ(chain->blocks().size(), 1u);
  const Block& block = chain->blocks()[0];
  EXPECT_EQ(block.height, 0u);
  EXPECT_EQ(block.timestamp % 10, 0u);
  EXPECT_FALSE(block.hash.IsZero());
  EXPECT_FALSE(block.entries_root.IsZero());

  ASSERT_EQ(chain->receipts().size(), 1u);
  EXPECT_TRUE(chain->receipts()[0].status.ok());
  EXPECT_EQ(chain->As<FungibleToken>(token)->BalanceOf(Holder::Party(bob)),
            20u);
}

TEST(BlockchainTest, BlockChainingAndHashes) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 100);

  // Two transactions far apart -> two blocks.
  world->Submit(alice, chain->id(), token,
                TransferCall(Holder::Party(alice), 1));
  world->scheduler().Run();
  world->scheduler().ScheduleAt(500, [&] {
    world->Submit(alice, chain->id(), token,
                  TransferCall(Holder::Party(alice), 1));
  });
  world->scheduler().Run();

  ASSERT_EQ(chain->blocks().size(), 2u);
  EXPECT_EQ(chain->blocks()[1].parent_hash, chain->blocks()[0].hash);
  EXPECT_EQ(chain->blocks()[1].height, 1u);
  // Hash recomputes from header fields.
  const Block& b = chain->blocks()[1];
  EXPECT_EQ(b.hash, Block::ComputeHash(b.height, b.timestamp, b.parent_hash,
                                       b.entries_root));
}

TEST(BlockchainTest, FailedCallLeavesStateUntouchedButChargesGas) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  PartyId bob = world->RegisterParty("bob");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 10);

  // Bob tries to move Alice's money via "transfer" (only moves own funds).
  world->Submit(bob, chain->id(), token, TransferCall(Holder::Party(bob), 5));
  world->scheduler().Run();

  ASSERT_EQ(chain->receipts().size(), 1u);
  const Receipt& r = chain->receipts()[0];
  EXPECT_FALSE(r.status.ok());
  EXPECT_GT(r.gas_used, 0u);  // the read before the require was charged
  EXPECT_EQ(chain->As<FungibleToken>(token)->BalanceOf(Holder::Party(alice)),
            10u);
}

TEST(BlockchainTest, ObserversNotifiedAfterDelay) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  PartyId bob = world->RegisterParty("bob");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 10);

  std::vector<std::pair<Tick, uint64_t>> seen;  // (observed_at, tx_seq)
  chain->Subscribe(world->PartyEndpoint(bob), [&](const Receipt& r) {
    seen.emplace_back(world->now(), r.tx_seq);
  });

  world->Submit(alice, chain->id(), token, TransferCall(Holder::Party(bob), 1));
  world->scheduler().Run();

  ASSERT_EQ(seen.size(), 1u);
  Tick included = chain->receipts()[0].included_at;
  EXPECT_GE(seen[0].first, included + 1);   // at least min network delay
  EXPECT_LE(seen[0].first, included + 5);   // at most max network delay
}

TEST(BlockchainTest, GasTagAggregation) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  Blockchain* chain = world->CreateChain("c", 10);
  ContractId token =
      chain->Deploy(std::make_unique<FungibleToken>("TOK", alice));
  chain->As<FungibleToken>(token)->Mint(Holder::Party(alice), 100);

  world->Submit(alice, chain->id(), token,
                TransferCall(Holder::Party(alice), 1), "phase-a");
  world->Submit(alice, chain->id(), token,
                TransferCall(Holder::Party(alice), 1), "phase-b");
  world->scheduler().Run();

  // Each OK transfer: 1 storage read (200) + 2 storage writes (10000).
  uint64_t phase_a = 0, phase_b = 0;
  for (const Receipt& r : chain->receipts()) {
    if (r.tag == "phase-a") phase_a += r.gas_used;
    if (r.tag == "phase-b") phase_b += r.gas_used;
  }
  EXPECT_EQ(phase_a, 10200u);
  EXPECT_EQ(phase_b, 10200u);
  EXPECT_EQ(world->TotalGas(), 20400u);
}

TEST(BlockchainTest, UnknownContractYieldsNotFoundReceipt) {
  auto world = MakeWorld();
  PartyId alice = world->RegisterParty("alice");
  Blockchain* chain = world->CreateChain("c", 10);
  world->Submit(alice, chain->id(), ContractId{99}, CallData{"foo", {}});
  world->scheduler().Run();
  ASSERT_EQ(chain->receipts().size(), 1u);
  EXPECT_EQ(chain->receipts()[0].status.code(), StatusCode::kNotFound);
}

TEST(GasMeterTest, ChargesAndLimits) {
  GasMeter gas(/*limit=*/12000);
  EXPECT_TRUE(gas.ChargeStorageWrite(2).ok());   // 10000
  EXPECT_TRUE(gas.ChargeStorageRead(5).ok());    // +1000 = 11000
  EXPECT_TRUE(gas.ChargeCompute(10).ok());       // +50 = 11050
  EXPECT_EQ(gas.used(), 11050u);
  // Exceeding the limit reports OutOfGas but still accumulates.
  EXPECT_EQ(gas.ChargeSigVerify(1).code(), StatusCode::kOutOfGas);
  EXPECT_EQ(gas.used(), 14050u);
  EXPECT_EQ(gas.storage_writes(), 2u);
  EXPECT_EQ(gas.sig_verifies(), 1u);
}

TEST(WorldTest, PartiesHaveDistinctDeterministicKeys) {
  auto w1 = MakeWorld(42);
  auto w2 = MakeWorld(42);
  PartyId a1 = w1->RegisterParty("alice");
  PartyId b1 = w1->RegisterParty("bob");
  PartyId a2 = w2->RegisterParty("alice");

  EXPECT_EQ(w1->keys().PublicKeyOf(a1).value(),
            w2->keys().PublicKeyOf(a2).value());
  EXPECT_FALSE(w1->keys().PublicKeyOf(a1).value() ==
               w1->keys().PublicKeyOf(b1).value());
  EXPECT_EQ(w1->keys().NameOf(b1).value(), "bob");
  EXPECT_FALSE(w1->keys().PublicKeyOf(PartyId{99}).ok());
}

TEST(WorldTest, EndpointsDisjoint) {
  auto world = MakeWorld();
  PartyId p = world->RegisterParty("p");
  Blockchain* chain = world->CreateChain("c", 10);
  EXPECT_FALSE(world->PartyEndpoint(p) == world->ChainEndpoint(chain->id()));
}

}  // namespace
}  // namespace xdeal
