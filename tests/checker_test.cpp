// DealChecker: the Property 1/2/3 evaluator itself, exercised on crafted
// end states (including the mixed-settlement case that distinguishes
// "worse off" from "merely aborted").

#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/timelock_run.h"
#include "core/adversaries.h"
#include "tests/scenario_util.h"

namespace xdeal {
namespace {

TEST(LedgerSnapshotTest, CapturesBalancesAndTickets) {
  BrokerScenario s = MakeBrokerScenario(1);
  LedgerSnapshot snap = LedgerSnapshot::Capture(s.env->world(), s.spec);
  ASSERT_EQ(snap.balances.size(), 2u);
  EXPECT_EQ(snap.balances[s.coins_asset].at(s.carol.v), 101u);
  EXPECT_EQ(snap.ticket_owners[s.tickets_asset].at(s.ticket1), s.bob.v);
  EXPECT_EQ(snap.ticket_owners[s.tickets_asset].at(s.ticket2), s.bob.v);
}

TEST(CheckerTest, CommittedRunVerdicts) {
  BrokerScenario s = MakeBrokerScenario(2);
  TimelockConfig config;
  config.delta = 80;
  TimelockRun run(&s.env->world(), s.spec, config);
  ASSERT_TRUE(run.Start().ok());
  DealChecker checker(&s.env->world(), s.spec,
                      run.deployment().escrow_contracts);
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  for (PartyId p : s.spec.parties) {
    PartyVerdict v = checker.Evaluate(p);
    EXPECT_TRUE(v.outgoing_transferred);
    EXPECT_TRUE(v.all_incoming_received);
    EXPECT_TRUE(v.property1);
    EXPECT_TRUE(v.weak_liveness);
    EXPECT_TRUE(v.token_state_expected);
    EXPECT_FALSE(v.token_state_unchanged);  // assets moved
  }
  EXPECT_TRUE(checker.Atomic());
  EXPECT_TRUE(checker.StrongLivenessHolds());
}

TEST(CheckerTest, AbortedRunVerdicts) {
  BrokerScenario s = MakeBrokerScenario(3);
  TimelockConfig config;
  config.delta = 80;
  TimelockRun run(&s.env->world(), s.spec, config,
                  [](PartyId) -> std::unique_ptr<TimelockParty> {
                    return std::make_unique<VoteWithholdingParty>();
                  });
  ASSERT_TRUE(run.Start().ok());
  DealChecker checker(&s.env->world(), s.spec,
                      run.deployment().escrow_contracts);
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  for (PartyId p : s.spec.parties) {
    PartyVerdict v = checker.Evaluate(p);
    EXPECT_FALSE(v.outgoing_transferred);
    EXPECT_FALSE(v.all_incoming_received);
    EXPECT_TRUE(v.property1);  // paid nothing => safe
    EXPECT_TRUE(v.weak_liveness);
    EXPECT_TRUE(v.token_state_unchanged);
    EXPECT_FALSE(v.token_state_expected);
  }
  EXPECT_TRUE(checker.Atomic());          // all refunded = not mixed
  EXPECT_FALSE(checker.StrongLivenessHolds());
}

TEST(CheckerTest, MixedOutcomeDetectedAsUnsafeForVictim) {
  // Reuse the §5.3 DoS attack: coins commit, tickets refund.
  auto base = std::make_unique<SynchronousNetwork>(1, 10);
  auto dos = std::make_unique<TargetedDosNetwork>(std::move(base), 450, 3000);
  TargetedDosNetwork* dos_ptr = dos.get();
  BrokerScenario s = MakeBrokerScenario(7, std::move(dos));
  dos_ptr->AddTarget(Endpoint{s.alice.v});
  dos_ptr->AddTarget(Endpoint{s.carol.v});
  TimelockConfig config;
  config.delta = 80;
  TimelockRun run(&s.env->world(), s.spec, config);
  ASSERT_TRUE(run.Start().ok());
  DealChecker checker(&s.env->world(), s.spec,
                      run.deployment().escrow_contracts);
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  EXPECT_FALSE(checker.Atomic());  // mixed settlement

  PartyVerdict carol = checker.Evaluate(s.carol);
  EXPECT_TRUE(carol.outgoing_transferred);     // her coins went out
  EXPECT_FALSE(carol.all_incoming_received);   // no tickets came in
  EXPECT_FALSE(carol.property1);               // worse off — detected

  PartyVerdict bob = checker.Evaluate(s.bob);
  EXPECT_TRUE(bob.property1);  // Bob got coins AND tickets back: not harmed

  // Weak liveness still holds for everyone: nothing stays locked.
  EXPECT_TRUE(
      checker.WeakLivenessHolds({s.alice, s.bob, s.carol}));
}

TEST(CheckerTest, SafetyHoldsShortCircuitsOnViolation) {
  auto base = std::make_unique<SynchronousNetwork>(1, 10);
  auto dos = std::make_unique<TargetedDosNetwork>(std::move(base), 450, 3000);
  TargetedDosNetwork* dos_ptr = dos.get();
  BrokerScenario s = MakeBrokerScenario(7, std::move(dos));
  dos_ptr->AddTarget(Endpoint{s.alice.v});
  dos_ptr->AddTarget(Endpoint{s.carol.v});
  TimelockConfig config;
  config.delta = 80;
  TimelockRun run(&s.env->world(), s.spec, config);
  ASSERT_TRUE(run.Start().ok());
  DealChecker checker(&s.env->world(), s.spec,
                      run.deployment().escrow_contracts);
  checker.CaptureInitial();
  s.env->world().scheduler().Run();

  EXPECT_FALSE(checker.SafetyHolds({s.alice, s.bob, s.carol}));
  EXPECT_TRUE(checker.SafetyHolds({s.bob}));
}

}  // namespace
}  // namespace xdeal
