// TrafficService checkpoint/restore: a run killed at any epoch boundary and
// restored from its snapshot finishes bit-identical to the uninterrupted
// run — same cumulative fingerprint, same epoch reports, same final report
// text — across thread counts, shard counts, broker configurations, and a
// validator reconfiguration scheduled beyond the checkpoint. Corrupted or
// mismatched snapshots are rejected with distinct errors, never restored.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/traffic_engine.h"
#include "golden_fps.h"

namespace xdeal {
namespace {

TrafficOptions ServiceOptions() {
  TrafficOptions options;
  options.base_seed = 77;
  options.num_chains = 4;
  options.deals_per_epoch = 12;
  options.indexed_observation = true;
  options.watchtower_every = 5;
  return options;
}

/// Runs `epochs` epochs straight through and returns the final report.
ServiceReport RunStraight(const TrafficOptions& options, size_t epochs) {
  Result<std::unique_ptr<TrafficService>> service =
      TrafficService::Create(options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  for (size_t e = 0; e < epochs; ++e) service.value()->RunEpoch();
  return service.value()->Finish();
}

/// Runs `before` epochs, checkpoints, restores into a fresh service under
/// `restore_options`, runs the remaining epochs there, and returns the
/// restored service's final report.
ServiceReport RunWithRestore(const TrafficOptions& options,
                             const TrafficOptions& restore_options,
                             size_t before, size_t total) {
  Result<std::unique_ptr<TrafficService>> first =
      TrafficService::Create(options);
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  for (size_t e = 0; e < before; ++e) first.value()->RunEpoch();
  Result<Bytes> snapshot = first.value()->Checkpoint();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  first.value().reset();  // the original process is gone

  Result<std::unique_ptr<TrafficService>> second =
      TrafficService::FromSnapshot(restore_options, snapshot.value());
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value()->epochs_run(), before);
  for (size_t e = before; e < total; ++e) second.value()->RunEpoch();
  return second.value()->Finish();
}

void ExpectBitIdentical(const ServiceReport& restored,
                        const ServiceReport& straight) {
  EXPECT_EQ(restored.final_fingerprint, straight.final_fingerprint);
  EXPECT_EQ(restored.Summary(), straight.Summary());
  ASSERT_EQ(restored.epoch_reports.size(), straight.epoch_reports.size());
  for (size_t e = 0; e < straight.epoch_reports.size(); ++e) {
    const EpochReport& a = restored.epoch_reports[e];
    const EpochReport& b = straight.epoch_reports[e];
    EXPECT_EQ(a.epoch_fingerprint, b.epoch_fingerprint) << "epoch " << e;
    EXPECT_EQ(a.cumulative_fingerprint, b.cumulative_fingerprint)
        << "epoch " << e;
    EXPECT_EQ(a.sealed_at, b.sealed_at) << "epoch " << e;
    EXPECT_EQ(a.gas, b.gas) << "epoch " << e;
    EXPECT_EQ(a.untagged_gas, b.untagged_gas) << "epoch " << e;
    EXPECT_EQ(a.violations, b.violations) << "epoch " << e;
  }
  EXPECT_EQ(restored.violations.size(), straight.violations.size());
  ASSERT_EQ(restored.brokers.size(), straight.brokers.size());
  for (size_t b = 0; b < straight.brokers.size(); ++b) {
    EXPECT_EQ(restored.brokers[b].coin_delta, straight.brokers[b].coin_delta);
    EXPECT_EQ(restored.brokers[b].portfolio_ok,
              straight.brokers[b].portfolio_ok);
  }
}

// --- the differential harness: every boundary, every configuration -------

TEST(CheckpointTest, RestoreAtEveryBoundaryIsBitIdentical) {
  const size_t kEpochs = 4;
  TrafficOptions options = ServiceOptions();
  ServiceReport straight = RunStraight(options, kEpochs);
  EXPECT_GT(straight.committed, 0u);
  for (size_t boundary = 1; boundary < kEpochs; ++boundary) {
    ServiceReport restored =
        RunWithRestore(options, options, boundary, kEpochs);
    ExpectBitIdentical(restored, straight);
  }
}

TEST(CheckpointTest, RestoreUnderDifferentThreadCountIsBitIdentical) {
  TrafficOptions one = ServiceOptions();
  one.num_threads = 1;
  ServiceReport straight = RunStraight(one, 3);
  // Validation threading must not affect results, so a snapshot taken by a
  // 1-thread process restores into an 8-thread one (and vice versa).
  TrafficOptions eight = ServiceOptions();
  eight.num_threads = 8;
  ExpectBitIdentical(RunWithRestore(one, eight, 1, 3), straight);
  ExpectBitIdentical(RunWithRestore(eight, one, 2, 3), straight);
}

TEST(CheckpointTest, RestoreWithShardedCbcIsBitIdentical) {
  TrafficOptions options = ServiceOptions();
  options.base_seed = 78;
  options.cbc_shards = 8;
  options.cbc_xshard_every = 2;
  ServiceReport straight = RunStraight(options, 3);
  EXPECT_GT(straight.cross_shard_deals, 0u);
  for (size_t boundary = 1; boundary < 3; ++boundary) {
    ExpectBitIdentical(RunWithRestore(options, options, boundary, 3),
                       straight);
  }
}

TEST(CheckpointTest, RestoreWithBrokersIsBitIdentical) {
  TrafficOptions options = ServiceOptions();
  options.base_seed = 79;
  options.brokers.num_brokers = 2;
  options.brokers.broker_every = 3;
  ServiceReport straight = RunStraight(options, 3);
  EXPECT_GT(straight.broker_deals, 0u);
  ASSERT_EQ(straight.brokers.size(), 2u);
  for (size_t boundary = 1; boundary < 3; ++boundary) {
    ExpectBitIdentical(RunWithRestore(options, options, boundary, 3),
                       straight);
  }
}

TEST(CheckpointTest, ReconfigurationBeyondTheCheckpointSurvivesRestore) {
  // Probe one epoch to find its seal time, then schedule a validator
  // rotation INSIDE epoch 2 — after the epoch-1 checkpoint. The rotation is
  // a durable scheduler event: it must ride through serialization and
  // re-fire at its original (time, seq) position in the restored run.
  TrafficOptions probe = ServiceOptions();
  probe.base_seed = 80;
  Result<std::unique_ptr<TrafficService>> probe_service =
      TrafficService::Create(probe);
  ASSERT_TRUE(probe_service.ok());
  Tick sealed_at = probe_service.value()->RunEpoch().sealed_at;

  TrafficOptions options = probe;
  options.cbc_reconfig_times = {sealed_at + 25};
  ServiceReport straight = RunStraight(options, 3);
  ExpectBitIdentical(RunWithRestore(options, options, 1, 3), straight);
  ExpectBitIdentical(RunWithRestore(options, options, 2, 3), straight);
}

TEST(CheckpointTest, CrashInjectionSurvivesRestore) {
  // Tower and broker kills are part of the workload; a snapshot between a
  // broker's crash and her scheduled recovery must restore the crashed
  // book and the pending durable recovery event.
  TrafficOptions probe = ServiceOptions();
  probe.base_seed = 81;
  probe.brokers.num_brokers = 2;
  probe.brokers.broker_every = 3;
  Result<std::unique_ptr<TrafficService>> probe_service =
      TrafficService::Create(probe);
  ASSERT_TRUE(probe_service.ok());
  Tick sealed_at = probe_service.value()->RunEpoch().sealed_at;

  TrafficOptions options = probe;
  options.tower_crash_every = 2;
  options.tower_crash_after = 40;
  options.tower_recover_after = 60;
  options.broker_crash_times = {sealed_at / 2, sealed_at + 30};
  options.broker_recover_after = sealed_at;  // spans the epoch-1 boundary
  ServiceReport straight = RunStraight(options, 3);
  for (size_t boundary = 1; boundary < 3; ++boundary) {
    ExpectBitIdentical(RunWithRestore(options, options, boundary, 3),
                       straight);
  }
}

// --- snapshot envelope rejection -----------------------------------------

class SnapshotRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_ = ServiceOptions();
    Result<std::unique_ptr<TrafficService>> service =
        TrafficService::Create(options_);
    ASSERT_TRUE(service.ok());
    service.value()->RunEpoch();
    Result<Bytes> snapshot = service.value()->Checkpoint();
    ASSERT_TRUE(snapshot.ok());
    snapshot_ = snapshot.value();
  }

  std::string RestoreError(const TrafficOptions& options,
                           const Bytes& snapshot) {
    Result<std::unique_ptr<TrafficService>> restored =
        TrafficService::FromSnapshot(options, snapshot);
    EXPECT_FALSE(restored.ok());
    return restored.ok() ? "" : restored.status().ToString();
  }

  TrafficOptions options_;
  Bytes snapshot_;
};

TEST_F(SnapshotRejectTest, IntactSnapshotRestores) {
  Result<std::unique_ptr<TrafficService>> restored =
      TrafficService::FromSnapshot(options_, snapshot_);
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
}

TEST_F(SnapshotRejectTest, BadMagic) {
  Bytes bad = snapshot_;
  bad[0] ^= 0xFF;
  EXPECT_NE(RestoreError(options_, bad).find("bad magic"), std::string::npos);
}

TEST_F(SnapshotRejectTest, UnsupportedVersion) {
  Bytes bad = snapshot_;
  bad[8] ^= 0xFF;  // envelope layout: magic[0,8) version[8,12)
  EXPECT_NE(RestoreError(options_, bad).find("unsupported snapshot version"),
            std::string::npos);
}

TEST_F(SnapshotRejectTest, OptionsMismatch) {
  TrafficOptions other = options_;
  other.base_seed += 1;
  EXPECT_NE(
      RestoreError(other, snapshot_).find("options fingerprint mismatch"),
      std::string::npos);
}

TEST_F(SnapshotRejectTest, CorruptedPayload) {
  Bytes bad = snapshot_;
  bad[bad.size() / 2] ^= 0xFF;  // deep inside the payload blob
  EXPECT_NE(RestoreError(options_, bad).find("payload digest mismatch"),
            std::string::npos);
}

TEST_F(SnapshotRejectTest, TruncatedSnapshot) {
  Bytes bad(snapshot_.begin(), snapshot_.begin() + snapshot_.size() / 2);
  Result<std::unique_ptr<TrafficService>> restored =
      TrafficService::FromSnapshot(options_, bad);
  EXPECT_FALSE(restored.ok());
}

// --- service-mode preconditions ------------------------------------------

TEST(CheckpointTest, ServiceModeRequiresEpochSizeAndIndexedDelivery) {
  TrafficOptions no_epoch = ServiceOptions();
  no_epoch.deals_per_epoch = 0;
  EXPECT_FALSE(TrafficService::Create(no_epoch).ok());

  TrafficOptions broadcast = ServiceOptions();
  broadcast.indexed_observation = false;
  EXPECT_FALSE(TrafficService::Create(broadcast).ok());

  TrafficOptions admission = ServiceOptions();
  admission.admission.enabled = true;
  EXPECT_FALSE(TrafficService::Create(admission).ok());
}

// --- golden regression: the new knobs, left at their defaults, must not
//     perturb the legacy batch engine by a single bit -----------------------

TEST(CheckpointTest, ServiceKnobsOffPreserveGoldenFingerprints) {
  TrafficOptions mixed;
  mixed.base_seed = 101;
  mixed.num_deals = 40;
  mixed.num_chains = 6;
  // Spell out the service/crash defaults so a default-value change that
  // would silently shift the goldens fails HERE, by name.
  mixed.deals_per_epoch = 0;
  mixed.tower_crash_every = 0;
  mixed.tower_crash_after = 0;
  mixed.tower_recover_after = 0;
  mixed.broker_crash_times = {};
  mixed.broker_recover_after = 0;
  EXPECT_EQ(RunTraffic(mixed).fingerprint, kGoldenFpMixedSeed101);

  TrafficOptions cbc;
  cbc.base_seed = 202;
  cbc.num_deals = 30;
  cbc.num_chains = 4;
  cbc.protocol_mix = {Protocol::kCbc};
  cbc.deals_per_epoch = 0;
  cbc.tower_crash_every = 0;
  cbc.broker_crash_times = {};
  EXPECT_EQ(RunTraffic(cbc).fingerprint, kGoldenFpCbcSeed202);
}

}  // namespace
}  // namespace xdeal
