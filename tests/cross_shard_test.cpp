// Cross-shard deals: assets — not deals — map to shards. PlaceAssets
// resolves a deal's home shard (hosting its CBC log) plus per-asset shards;
// escrows on foreign shards settle via portable DecideProofs (the home
// shard's 2f+1 status certificate wrapped with its shard index). Covers the
// placement/wire unit contracts, a seeded traffic run with a cross-shard
// quorum, mid-run per-shard validator reconfiguration under traffic, the
// stale-proof replay adversary (rejected + tainted, with reproducer seed),
// and the combined cross-shard + depth-3 hop-chain workload.

#include <gtest/gtest.h>

#include <vector>

#include "cbc/cbc_service.h"
#include "cbc/types.h"
#include "contracts/deal_info.h"
#include "core/env.h"
#include "core/traffic_engine.h"

namespace xdeal {
namespace {

TEST(CrossShardTest, PlacementResolvesAssetShardsHomeAndSpan) {
  DealEnv env(EnvConfig{});
  CbcService::Options options;
  options.num_shards = 4;
  CbcService service(&env.world(), options);

  DealId id = MakeDealId("placement", 1);
  const size_t home = service.ShardOf(id);

  // Assets on every shard chain plus one non-shard chain (which rides on
  // the home shard, like every pre-redesign deal did).
  std::vector<ChainId> chains;
  for (size_t s = 0; s < 4; ++s) chains.push_back(service.chain(s));
  chains.push_back(ChainId{9999});

  CbcService::Placement placement = service.PlaceAssets(id, chains);
  EXPECT_EQ(placement.home_shard, home);
  ASSERT_EQ(placement.asset_shards.size(), 5u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(placement.asset_shards[s], s);
  }
  EXPECT_EQ(placement.asset_shards[4], home);
  EXPECT_TRUE(placement.cross_shard());
  EXPECT_EQ(placement.SpanCount(), 4u);

  // Home-shard-only assets are not cross-shard — the S=1 degenerate case
  // and every single-shard deal behave exactly as before.
  CbcService::Placement local =
      service.PlaceAssets(id, {service.chain(home), ChainId{777}});
  EXPECT_FALSE(local.cross_shard());
  EXPECT_EQ(local.SpanCount(), 1u);
}

TEST(CrossShardTest, DecideProofWireRoundTripsAndStaysUnambiguous) {
  DecideProof dp;
  dp.shard = 3;
  dp.proof.status.deal_id = MakeDealId("wire", 7);
  dp.proof.status.outcome = kDealCommitted;
  dp.proof.status.epoch = 2;

  Bytes wrapped = dp.Serialize();
  EXPECT_TRUE(DecideProof::IsWrapped(wrapped));
  auto parsed = DecideProof::Deserialize(wrapped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().shard, 3u);
  EXPECT_EQ(parsed.value().proof.status.deal_id, dp.proof.status.deal_id);
  EXPECT_EQ(parsed.value().proof.status.outcome, kDealCommitted);
  EXPECT_EQ(parsed.value().proof.status.epoch, 2u);

  // The magic keeps the two encodings unambiguous: a bare CbcProof blob is
  // never mistaken for a wrapped one, and vice versa.
  Bytes bare = dp.proof.Serialize();
  EXPECT_FALSE(DecideProof::IsWrapped(bare));
  EXPECT_FALSE(DecideProof::Deserialize(bare).ok());
}

TEST(CrossShardTest, TrafficWithCrossShardQuorumConforms) {
  // Every other CBC deal places its assets on a window of SHARD chains, so
  // at least one asset settles away from the deal's home shard. Well over
  // the 25% cross-shard quorum, and the whole workload stays conformant.
  TrafficOptions options;
  options.base_seed = 71;
  options.num_deals = 32;
  options.num_chains = 4;
  options.cbc_shards = 3;
  options.cbc_xshard_every = 2;
  options.min_assets = 2;  // span >= 2 shards, so cross-shard is certain
  options.protocol_mix = {Protocol::kCbc};
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.cbc_deals, 32u);
  EXPECT_EQ(report.committed, 32u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);
  // >= 25% of CBC deals span >= 2 shards (here: every xshard deal does).
  EXPECT_GE(report.cross_shard_deals * 4, report.cbc_deals)
      << report.Summary();
  EXPECT_EQ(report.cross_shard_deals, 16u) << report.Summary();
  size_t flagged = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.cross_shard) ++flagged;
  }
  EXPECT_EQ(flagged, report.cross_shard_deals);

  // Replays bit-for-bit, and validation thread counts cannot change it.
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  options.num_threads = 8;
  TrafficReport threaded = RunTraffic(options);
  EXPECT_EQ(threaded.fingerprint, report.fingerprint);
}

TEST(CrossShardTest, ReconfigureUnderTrafficCommitsAcrossEpochBoundary) {
  // Mid-run, every shard's validator set rotates. Deals that escrowed
  // before the rotation pinned epoch-0 keys, so their decide proofs must
  // carry the reconfiguration certificate chain — and they still commit.
  TrafficOptions options;
  options.base_seed = 73;
  options.num_deals = 24;
  options.num_chains = 4;
  options.cbc_shards = 2;
  options.cbc_xshard_every = 2;
  options.min_assets = 2;
  options.protocol_mix = {Protocol::kCbc};
  options.cbc_reconfig_times = {300};
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.committed, 24u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_GT(report.cross_shard_deals, 0u);

  // The epoch boundary really fell mid-traffic: some deals arrived before
  // the rotation and settled after it.
  size_t straddlers = 0;
  for (const TrafficDealRecord& rec : report.deals) {
    if (rec.arrival_at < 300 && rec.settle_time > 300) ++straddlers;
  }
  EXPECT_GT(straddlers, 0u) << report.Summary();

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

TEST(CrossShardTest, StaleShardProofReplayRejectedAndTainted) {
  // The cross-shard replay attack: deal 2's first escrower presents the
  // home shard's genuine decide evidence re-declared for the wrong shard.
  // Every escrow rejects it on the cheap shard-binding check ("decide:
  // shard mismatch") before burning signature-verification gas; the engine
  // reports the rejections from receipts alone and taints the deal with
  // the replayer as its deviating party. The deal still settles through
  // the genuine path — nobody is harmed.
  TrafficOptions options;
  options.base_seed = 77;
  options.num_deals = 12;
  options.num_chains = 4;
  options.cbc_shards = 2;
  options.protocol_mix = {Protocol::kCbc};
  options.stale_proof_deals = {2};
  TrafficReport report = RunTraffic(options);

  EXPECT_GT(report.stale_decide_rejections, 0u) << report.Summary();
  const TrafficDealRecord& rec = report.deals[2];
  EXPECT_TRUE(rec.tainted);
  EXPECT_TRUE(rec.committed) << report.Summary();
  EXPECT_TRUE(rec.all_settled) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  // Untouched deals are oblivious to the replay attempt.
  for (const TrafficDealRecord& other : report.deals) {
    if (!other.tainted) EXPECT_TRUE(other.committed) << other.index;
  }

  // The reproducer: the record carries the deal's derived seed, and the
  // same options replay the incident bit-for-bit.
  EXPECT_EQ(rec.seed, TrafficDealSeed(options.base_seed, 2));
  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
  EXPECT_EQ(replay.stale_decide_rejections, report.stale_decide_rejections);
}

TEST(CrossShardTest, CrossShardAndHopChainWorkloadCommitsClean) {
  // The issue's acceptance run: >= 25% of CBC deals span >= 2 shards AND
  // broker chains reach hop depth 3, in one seeded workload — everything
  // commits with zero conformance or portfolio violations.
  TrafficOptions options;
  options.base_seed = 79;
  options.num_deals = 24;
  options.num_chains = 6;
  options.cbc_shards = 3;
  options.cbc_xshard_every = 2;
  options.min_assets = 2;
  options.protocol_mix = {Protocol::kCbc};
  options.brokers.num_brokers = 3;
  options.brokers.broker_every = 3;
  options.brokers.working_capital = 8000;
  options.brokers.inventory = 200;
  options.brokers.hop_depth = 3;
  TrafficReport report = RunTraffic(options);

  EXPECT_EQ(report.committed, 24u) << report.Summary();
  EXPECT_TRUE(report.violations.empty()) << report.Summary();
  EXPECT_TRUE(report.double_spends.empty()) << report.Summary();
  EXPECT_EQ(report.broker_portfolio_violations, 0u) << report.Summary();
  EXPECT_EQ(report.untagged_gas, 0u);
  EXPECT_EQ(report.broker_hop_depth, 3u);
  EXPECT_EQ(report.broker_deals, 8u);
  EXPECT_GE(report.cross_shard_deals * 4, report.cbc_deals)
      << report.Summary();

  TrafficReport replay = RunTraffic(options);
  EXPECT_EQ(replay.fingerprint, report.fingerprint);
}

}  // namespace
}  // namespace xdeal
