// Merkle tree: roots, membership proofs, and tamper rejection.

#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include <vector>

namespace xdeal {
namespace {

std::vector<Hash256> MakeLeaves(size_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256Digest("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(MerkleTest, EmptyRootIsZero) {
  EXPECT_TRUE(MerkleRoot({}).IsZero());
}

TEST(MerkleTest, SingleLeafProof) {
  auto leaves = MakeLeaves(1);
  Hash256 root = MerkleRoot(leaves);
  EXPECT_FALSE(root.IsZero());
  auto proof = BuildMerkleProof(leaves, 0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyMerkleProof(leaves[0], proof.value(), root));
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(8);
  Hash256 root = MerkleRoot(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i] = Sha256Digest("tampered");
    EXPECT_NE(MerkleRoot(mutated), root) << "leaf " << i;
  }
}

TEST(MerkleTest, ProofOutOfRange) {
  auto leaves = MakeLeaves(4);
  EXPECT_FALSE(BuildMerkleProof(leaves, 4).ok());
}

class MerkleProofSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofSweep, AllLeavesProve) {
  size_t n = GetParam();
  auto leaves = MakeLeaves(n);
  Hash256 root = MerkleRoot(leaves);
  for (size_t i = 0; i < n; ++i) {
    auto proof = BuildMerkleProof(leaves, i);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(VerifyMerkleProof(leaves[i], proof.value(), root))
        << "n=" << n << " i=" << i;
    // A proof for leaf i must not verify a different leaf.
    size_t other = (i + 1) % n;
    if (other != i) {
      EXPECT_FALSE(VerifyMerkleProof(leaves[other], proof.value(), root))
          << "n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 64));

TEST(MerkleTest, TamperedProofRejected) {
  auto leaves = MakeLeaves(8);
  Hash256 root = MerkleRoot(leaves);
  auto proof = BuildMerkleProof(leaves, 3);
  ASSERT_TRUE(proof.ok());
  auto bad = proof.value();
  bad[0].sibling = Sha256Digest("evil");
  EXPECT_FALSE(VerifyMerkleProof(leaves[3], bad, root));

  auto flipped = proof.value();
  flipped[0].sibling_is_left = !flipped[0].sibling_is_left;
  EXPECT_FALSE(VerifyMerkleProof(leaves[3], flipped, root));
}

}  // namespace
}  // namespace xdeal
