// Schnorr signature round-trips, forgery rejection, determinism, and
// serialization.

#include "crypto/schnorr.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace xdeal {
namespace {

TEST(SchnorrTest, SignVerifyRoundTrip) {
  KeyPair kp = KeyPair::FromSeed("alice");
  Bytes msg = ToBytes("transfer 100 coins to bob");
  Signature sig = kp.Sign(msg);
  EXPECT_TRUE(Verify(kp.public_key(), msg, sig));
}

TEST(SchnorrTest, WrongMessageRejected) {
  KeyPair kp = KeyPair::FromSeed("alice");
  Signature sig = kp.Sign(ToBytes("message one"));
  EXPECT_FALSE(Verify(kp.public_key(), ToBytes("message two"), sig));
}

TEST(SchnorrTest, WrongKeyRejected) {
  KeyPair alice = KeyPair::FromSeed("alice");
  KeyPair bob = KeyPair::FromSeed("bob");
  Bytes msg = ToBytes("a vote");
  Signature sig = alice.Sign(msg);
  EXPECT_FALSE(Verify(bob.public_key(), msg, sig));
}

TEST(SchnorrTest, TamperedSignatureRejected) {
  KeyPair kp = KeyPair::FromSeed("carol");
  Bytes msg = ToBytes("commit deal 42");
  Signature sig = kp.Sign(msg);

  Signature bad_r = sig;
  bad_r.r = U256::AddMod(bad_r.r, U256(1), SchnorrGroup::P());
  EXPECT_FALSE(Verify(kp.public_key(), msg, bad_r));

  Signature bad_s = sig;
  bad_s.s = U256::AddMod(bad_s.s, U256(1), SchnorrGroup::N());
  EXPECT_FALSE(Verify(kp.public_key(), msg, bad_s));
}

TEST(SchnorrTest, DegenerateValuesRejected) {
  KeyPair kp = KeyPair::FromSeed("dave");
  Bytes msg = ToBytes("m");
  Signature zero_sig{U256(), U256()};
  EXPECT_FALSE(Verify(kp.public_key(), msg, zero_sig));

  PublicKey zero_key{U256()};
  EXPECT_FALSE(Verify(zero_key, msg, kp.Sign(msg)));

  // r >= p must be rejected.
  Signature big_r = kp.Sign(msg);
  big_r.r = SchnorrGroup::P();
  EXPECT_FALSE(Verify(kp.public_key(), msg, big_r));
}

TEST(SchnorrTest, DeterministicKeysAndSignatures) {
  KeyPair a1 = KeyPair::FromSeed("seed-x");
  KeyPair a2 = KeyPair::FromSeed("seed-x");
  EXPECT_EQ(a1.public_key(), a2.public_key());

  Bytes msg = ToBytes("hello");
  EXPECT_EQ(a1.Sign(msg), a2.Sign(msg));

  KeyPair b = KeyPair::FromSeed("seed-y");
  EXPECT_FALSE(a1.public_key() == b.public_key());
}

TEST(SchnorrTest, SerializationRoundTrip) {
  KeyPair kp = KeyPair::FromSeed("erin");
  Signature sig = kp.Sign(ToBytes("payload"));
  Bytes wire = sig.Serialize();
  ASSERT_EQ(wire.size(), 64u);
  auto parsed = Signature::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), sig);
  EXPECT_TRUE(Verify(kp.public_key(), ToBytes("payload"), parsed.value()));
}

TEST(SchnorrTest, DeserializeBadLength) {
  EXPECT_FALSE(Signature::Deserialize(Bytes(63)).ok());
  EXPECT_FALSE(Signature::Deserialize(Bytes(65)).ok());
}

TEST(SchnorrTest, ManyKeysManyMessages) {
  Rng rng(2024);
  for (int i = 0; i < 10; ++i) {
    KeyPair kp = KeyPair::FromSeed("party-" + std::to_string(i));
    for (int j = 0; j < 3; ++j) {
      Bytes msg(16);
      for (auto& b : msg) b = static_cast<uint8_t>(rng.Below(256));
      Signature sig = kp.Sign(msg);
      EXPECT_TRUE(Verify(kp.public_key(), msg, sig));
      msg[0] ^= 0xFF;
      EXPECT_FALSE(Verify(kp.public_key(), msg, sig));
    }
  }
}

TEST(SchnorrTest, FingerprintStable) {
  KeyPair kp = KeyPair::FromSeed("frank");
  EXPECT_EQ(kp.public_key().Fingerprint(), kp.public_key().Fingerprint());
  EXPECT_EQ(kp.public_key().Fingerprint().size(), 8u);
}

// --- batched verification ---

std::vector<BatchItem> MakeBatch(size_t k, const std::string& prefix) {
  std::vector<BatchItem> items;
  for (size_t i = 0; i < k; ++i) {
    KeyPair kp = KeyPair::FromSeed(prefix + "-signer-" + std::to_string(i));
    Bytes msg = ToBytes(prefix + "-msg-" + std::to_string(i % 3));
    items.push_back({kp.public_key(), msg, kp.Sign(msg)});
  }
  return items;
}

TEST(SchnorrBatchTest, EmptyBatchVerifiesTrivially) {
  BatchVerifyResult verdict = BatchVerify({});
  EXPECT_TRUE(verdict.ok);
  EXPECT_FALSE(verdict.used_fallback);
  EXPECT_EQ(verdict.first_bad, -1);
}

TEST(SchnorrBatchTest, ValidBatchesMatchIndividualVerification) {
  // Batch sizes covering 2f+1 for f in {0..4} plus a single-item batch:
  // the combined check must accept exactly when every item verifies alone,
  // without running the fallback.
  for (size_t k : {1u, 3u, 5u, 7u, 9u}) {
    std::vector<BatchItem> items = MakeBatch(k, "ok-" + std::to_string(k));
    for (const BatchItem& item : items) {
      ASSERT_TRUE(Verify(item.key, item.message, item.sig));
    }
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_TRUE(verdict.ok) << "k=" << k;
    EXPECT_FALSE(verdict.used_fallback) << "k=" << k;
    EXPECT_EQ(verdict.first_bad, -1) << "k=" << k;
  }
}

TEST(SchnorrBatchTest, CorruptedBatchFallsBackAndNamesTheCulprit) {
  // Whichever single item is corrupted — tampered s, tampered r, wrong
  // message, swapped key — the combined check fails, the per-signature
  // fallback runs, and first_bad is exactly the corrupted index.
  for (size_t bad : {0u, 2u, 4u}) {
    std::vector<BatchItem> items = MakeBatch(5, "bad-s");
    items[bad].sig.s = U256::AddMod(items[bad].sig.s, U256(1),
                                    SchnorrGroup::N());
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_FALSE(verdict.ok) << "bad=" << bad;
    EXPECT_TRUE(verdict.used_fallback) << "bad=" << bad;
    EXPECT_EQ(verdict.first_bad, static_cast<int>(bad));
  }
  {
    std::vector<BatchItem> items = MakeBatch(5, "bad-msg");
    items[3].message = ToBytes("a different message");
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_FALSE(verdict.ok);
    EXPECT_TRUE(verdict.used_fallback);
    EXPECT_EQ(verdict.first_bad, 3);
  }
  {
    std::vector<BatchItem> items = MakeBatch(5, "bad-key");
    items[1].key = KeyPair::FromSeed("impostor").public_key();
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_FALSE(verdict.ok);
    EXPECT_TRUE(verdict.used_fallback);
    EXPECT_EQ(verdict.first_bad, 1);
  }
}

TEST(SchnorrBatchTest, MultipleBadItemsReportTheFirst) {
  std::vector<BatchItem> items = MakeBatch(7, "multi-bad");
  items[2].sig.s = U256::AddMod(items[2].sig.s, U256(1), SchnorrGroup::N());
  items[5].sig.s = U256::AddMod(items[5].sig.s, U256(1), SchnorrGroup::N());
  BatchVerifyResult verdict = BatchVerify(items);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(verdict.used_fallback);
  EXPECT_EQ(verdict.first_bad, 2);
}

TEST(SchnorrBatchTest, DegenerateValuesRejectedBeforeTheCombinedCheck) {
  // Zero r, zero y, and out-of-range r are caught by the pre-checks (the
  // combined equation would misbehave on them), attributed without running
  // the fallback path.
  {
    std::vector<BatchItem> items = MakeBatch(3, "degen-r");
    items[1].sig.r = U256();
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.used_fallback);
    EXPECT_EQ(verdict.first_bad, 1);
  }
  {
    std::vector<BatchItem> items = MakeBatch(3, "degen-y");
    items[2].key = PublicKey{U256()};
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.used_fallback);
    EXPECT_EQ(verdict.first_bad, 2);
  }
  {
    std::vector<BatchItem> items = MakeBatch(3, "degen-range");
    items[0].sig.r = SchnorrGroup::P();
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.used_fallback);
    EXPECT_EQ(verdict.first_bad, 0);
  }
}

TEST(SchnorrBatchTest, QuorumShapedBatchesAgreeWithPerSigOverManySeeds) {
  // Randomized differential sweep shaped like status certificates (same
  // message, 2f+1 distinct signers), occasionally corrupted: BatchVerify's
  // verdict must equal per-signature verification every time.
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    size_t f = 1 + rng.Below(4);
    size_t k = 2 * f + 1;
    Bytes msg(24);
    for (auto& b : msg) b = static_cast<uint8_t>(rng.Below(256));
    std::vector<BatchItem> items;
    for (size_t v = 0; v < k; ++v) {
      KeyPair kp = KeyPair::FromSeed("sweep-" + std::to_string(round) + "-" +
                                     std::to_string(v));
      items.push_back({kp.public_key(), msg, kp.Sign(msg)});
    }
    int corrupted = -1;
    if (rng.Below(2) == 0) {
      corrupted = static_cast<int>(rng.Below(k));
      items[corrupted].sig.s = U256::AddMod(items[corrupted].sig.s, U256(1),
                                            SchnorrGroup::N());
    }
    bool all_valid = true;
    int first_bad = -1;
    for (size_t i = 0; i < items.size(); ++i) {
      if (!Verify(items[i].key, items[i].message, items[i].sig)) {
        all_valid = false;
        if (first_bad < 0) first_bad = static_cast<int>(i);
      }
    }
    BatchVerifyResult verdict = BatchVerify(items);
    EXPECT_EQ(verdict.ok, all_valid) << "round " << round;
    EXPECT_EQ(verdict.first_bad, first_bad) << "round " << round;
    EXPECT_EQ(verdict.used_fallback, corrupted >= 0) << "round " << round;
  }
}

}  // namespace
}  // namespace xdeal
