// Schnorr signature round-trips, forgery rejection, determinism, and
// serialization.

#include "crypto/schnorr.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace xdeal {
namespace {

TEST(SchnorrTest, SignVerifyRoundTrip) {
  KeyPair kp = KeyPair::FromSeed("alice");
  Bytes msg = ToBytes("transfer 100 coins to bob");
  Signature sig = kp.Sign(msg);
  EXPECT_TRUE(Verify(kp.public_key(), msg, sig));
}

TEST(SchnorrTest, WrongMessageRejected) {
  KeyPair kp = KeyPair::FromSeed("alice");
  Signature sig = kp.Sign(ToBytes("message one"));
  EXPECT_FALSE(Verify(kp.public_key(), ToBytes("message two"), sig));
}

TEST(SchnorrTest, WrongKeyRejected) {
  KeyPair alice = KeyPair::FromSeed("alice");
  KeyPair bob = KeyPair::FromSeed("bob");
  Bytes msg = ToBytes("a vote");
  Signature sig = alice.Sign(msg);
  EXPECT_FALSE(Verify(bob.public_key(), msg, sig));
}

TEST(SchnorrTest, TamperedSignatureRejected) {
  KeyPair kp = KeyPair::FromSeed("carol");
  Bytes msg = ToBytes("commit deal 42");
  Signature sig = kp.Sign(msg);

  Signature bad_r = sig;
  bad_r.r = U256::AddMod(bad_r.r, U256(1), SchnorrGroup::P());
  EXPECT_FALSE(Verify(kp.public_key(), msg, bad_r));

  Signature bad_s = sig;
  bad_s.s = U256::AddMod(bad_s.s, U256(1), SchnorrGroup::N());
  EXPECT_FALSE(Verify(kp.public_key(), msg, bad_s));
}

TEST(SchnorrTest, DegenerateValuesRejected) {
  KeyPair kp = KeyPair::FromSeed("dave");
  Bytes msg = ToBytes("m");
  Signature zero_sig{U256(), U256()};
  EXPECT_FALSE(Verify(kp.public_key(), msg, zero_sig));

  PublicKey zero_key{U256()};
  EXPECT_FALSE(Verify(zero_key, msg, kp.Sign(msg)));

  // r >= p must be rejected.
  Signature big_r = kp.Sign(msg);
  big_r.r = SchnorrGroup::P();
  EXPECT_FALSE(Verify(kp.public_key(), msg, big_r));
}

TEST(SchnorrTest, DeterministicKeysAndSignatures) {
  KeyPair a1 = KeyPair::FromSeed("seed-x");
  KeyPair a2 = KeyPair::FromSeed("seed-x");
  EXPECT_EQ(a1.public_key(), a2.public_key());

  Bytes msg = ToBytes("hello");
  EXPECT_EQ(a1.Sign(msg), a2.Sign(msg));

  KeyPair b = KeyPair::FromSeed("seed-y");
  EXPECT_FALSE(a1.public_key() == b.public_key());
}

TEST(SchnorrTest, SerializationRoundTrip) {
  KeyPair kp = KeyPair::FromSeed("erin");
  Signature sig = kp.Sign(ToBytes("payload"));
  Bytes wire = sig.Serialize();
  ASSERT_EQ(wire.size(), 64u);
  auto parsed = Signature::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), sig);
  EXPECT_TRUE(Verify(kp.public_key(), ToBytes("payload"), parsed.value()));
}

TEST(SchnorrTest, DeserializeBadLength) {
  EXPECT_FALSE(Signature::Deserialize(Bytes(63)).ok());
  EXPECT_FALSE(Signature::Deserialize(Bytes(65)).ok());
}

TEST(SchnorrTest, ManyKeysManyMessages) {
  Rng rng(2024);
  for (int i = 0; i < 10; ++i) {
    KeyPair kp = KeyPair::FromSeed("party-" + std::to_string(i));
    for (int j = 0; j < 3; ++j) {
      Bytes msg(16);
      for (auto& b : msg) b = static_cast<uint8_t>(rng.Below(256));
      Signature sig = kp.Sign(msg);
      EXPECT_TRUE(Verify(kp.public_key(), msg, sig));
      msg[0] ^= 0xFF;
      EXPECT_FALSE(Verify(kp.public_key(), msg, sig));
    }
  }
}

TEST(SchnorrTest, FingerprintStable) {
  KeyPair kp = KeyPair::FromSeed("frank");
  EXPECT_EQ(kp.public_key().Fingerprint(), kp.public_key().Fingerprint());
  EXPECT_EQ(kp.public_key().Fingerprint().size(), 8u);
}

}  // namespace
}  // namespace xdeal
