// SHA-256 correctness against FIPS 180-4 / NIST test vectors, plus
// incremental-update equivalence and Hash256 helpers.

#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace xdeal {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256Digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding path where a second block is needed.
  std::string input(64, 'x');
  Hash256 a = Sha256Digest(input);
  Sha256 h;
  h.Update(input.substr(0, 31));
  h.Update(input.substr(31));
  EXPECT_EQ(a, h.Finish());
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t len = rng.Below(300);
    Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Below(256));

    Hash256 oneshot = Sha256Digest(data);

    Sha256 inc;
    size_t pos = 0;
    while (pos < len) {
      size_t take = 1 + rng.Below(17);
      take = std::min(take, len - pos);
      inc.Update(data.data() + pos, take);
      pos += take;
    }
    EXPECT_EQ(oneshot, inc.Finish()) << "trial " << trial << " len " << len;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256Digest("a"), Sha256Digest("b"));
  EXPECT_NE(Sha256Digest("abc"), Sha256Digest("abcd"));
}

TEST(Hash256Test, ZeroAndPrefix) {
  Hash256 zero{};
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.Prefix64(), 0u);

  Hash256 h = Sha256Digest("abc");
  EXPECT_FALSE(h.IsZero());
  // ba7816bf8f01cfea as big-endian prefix.
  EXPECT_EQ(h.Prefix64(), 0xba7816bf8f01cfeaULL);
  EXPECT_EQ(h.ShortHex(), "ba7816bf");
}

TEST(Hash256Test, Ordering) {
  Hash256 a = Sha256Digest("a");
  Hash256 b = Sha256Digest("b");
  EXPECT_TRUE((a < b) || (b < a));
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace xdeal
