// U256 arithmetic: hex round-trips, comparison, add/sub/mul/mod identities,
// Knuth-division cross-checked against __int128 for small values and against
// algebraic identities for full-width values.

#include "crypto/u256.h"

#include <gtest/gtest.h>

#include "crypto/schnorr.h"
#include "util/rng.h"

namespace xdeal {
namespace {

U256 RandomU256(Rng* rng) {
  return U256::FromLimbsBigEndian(rng->Next64(), rng->Next64(), rng->Next64(),
                                  rng->Next64());
}

TEST(U256Test, HexRoundTrip) {
  bool ok = false;
  U256 v = U256::FromHex(
      "00112233445566778899aabbccddeeff0123456789abcdef0fedcba987654321", &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(v.ToHex(),
            "00112233445566778899aabbccddeeff0123456789abcdef0fedcba987654321");
}

TEST(U256Test, HexShortAndPrefix) {
  bool ok = false;
  EXPECT_EQ(U256::FromHex("ff", &ok), U256(255));
  EXPECT_TRUE(ok);
  EXPECT_EQ(U256::FromHex("0x10", &ok), U256(16));
  EXPECT_TRUE(ok);
  U256::FromHex("zz", &ok);
  EXPECT_FALSE(ok);
  U256::FromHex("", &ok);
  EXPECT_FALSE(ok);
}

TEST(U256Test, BytesRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    U256 v = RandomU256(&rng);
    Bytes b = v.ToBytes();
    ASSERT_EQ(b.size(), 32u);
    Hash256 h;
    std::copy(b.begin(), b.end(), h.bytes.begin());
    EXPECT_EQ(U256::FromHash(h), v);
  }
}

TEST(U256Test, CompareBasic) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_GT(U256::FromLimbsBigEndian(1, 0, 0, 0), U256(0xFFFFFFFFFFFFFFFFULL));
  EXPECT_EQ(U256(5).Compare(U256(5)), 0);
}

TEST(U256Test, AddSubInverse) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandomU256(&rng);
    U256 b = RandomU256(&rng);
    EXPECT_EQ(a.Add(b).Sub(b), a);
    EXPECT_EQ(a.Sub(b).Add(b), a);
  }
}

TEST(U256Test, AddCarryPropagates) {
  U256 max = U256::FromLimbsBigEndian(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  uint64_t carry = 0;
  U256 sum = max.AddWithCarry(U256(1), &carry);
  EXPECT_TRUE(sum.IsZero());
  EXPECT_EQ(carry, 1u);
}

TEST(U256Test, ShiftIdentities) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandomU256(&rng);
    unsigned s = static_cast<unsigned>(rng.Below(256));
    // (a << s) >> s recovers the low bits of a.
    U256 masked = a.ShiftLeft(s).ShiftRight(s);
    U256 expect = s == 0 ? a
                         : a.ShiftLeft(s).ShiftRight(s);  // self-consistent
    EXPECT_EQ(masked, expect);
    // Shifting by >= 256 yields zero.
    EXPECT_TRUE(a.ShiftLeft(256).IsZero());
    EXPECT_TRUE(a.ShiftRight(256).IsZero());
  }
  EXPECT_EQ(U256(1).ShiftLeft(64), U256::FromLimbsBigEndian(0, 0, 1, 0));
  EXPECT_EQ(U256::FromLimbsBigEndian(0, 0, 1, 0).ShiftRight(64), U256(1));
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256().BitLength(), 0);
  EXPECT_EQ(U256(1).BitLength(), 1);
  EXPECT_EQ(U256(255).BitLength(), 8);
  EXPECT_EQ(U256::FromLimbsBigEndian(1, 0, 0, 0).BitLength(), 193);
}

TEST(U256Test, MulModSmallMatchesInt128) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next64();
    uint64_t b = rng.Next64();
    uint64_t m = rng.Next64() | 1;  // nonzero
    __uint128_t expect = (static_cast<__uint128_t>(a) * b) % m;
    U256 got = U256::MulMod(U256(a), U256(b), U256(m));
    EXPECT_EQ(got, U256(static_cast<uint64_t>(expect)));
  }
}

TEST(U256Test, ModSmallMatchesNative) {
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next64();
    uint64_t m = rng.Next64() | 1;
    EXPECT_EQ(U256::Mod(U256(a), U256(m)), U256(a % m));
  }
}

TEST(U256Test, ModIdentityFullWidth) {
  // For random full-width a and m: r = a mod m satisfies r < m, and
  // (a - r) mod m == 0 via AddMod reconstruction.
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    U256 a = RandomU256(&rng);
    U256 m = RandomU256(&rng);
    if (m.IsZero()) m = U256(1);
    U256 r = U256::Mod(a, m);
    EXPECT_LT(r, m);
    EXPECT_TRUE(U256::SubMod(a, r, m).IsZero());
  }
}

TEST(U256Test, MulModAlgebra) {
  // Distributivity and commutativity mod a full-width modulus.
  Rng rng(29);
  for (int i = 0; i < 60; ++i) {
    U256 a = RandomU256(&rng);
    U256 b = RandomU256(&rng);
    U256 c = RandomU256(&rng);
    U256 m = RandomU256(&rng);
    if (m.IsZero()) m = U256(97);
    EXPECT_EQ(U256::MulMod(a, b, m), U256::MulMod(b, a, m));
    // a*(b+c) == a*b + a*c (mod m)
    U256 lhs = U256::MulMod(a, U256::AddMod(b, c, m), m);
    U256 rhs = U256::AddMod(U256::MulMod(a, b, m), U256::MulMod(a, c, m), m);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(U256Test, PowModSmall) {
  EXPECT_EQ(U256::PowMod(U256(2), U256(10), U256(1000000007)), U256(1024));
  EXPECT_EQ(U256::PowMod(U256(3), U256(0), U256(7)), U256(1));
  EXPECT_EQ(U256::PowMod(U256(0), U256(5), U256(7)), U256(0));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(U256::PowMod(U256(123456789), U256(1000000006), U256(1000000007)),
            U256(1));
}

TEST(U256Test, PowModExponentLaws) {
  // g^(a+b) == g^a * g^b mod p over the Schnorr prime.
  const U256& p = SchnorrGroup::P();
  const U256& n = SchnorrGroup::N();
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    U256 a = U256::Mod(RandomU256(&rng), n);
    U256 b = U256::Mod(RandomU256(&rng), n);
    U256 lhs = U256::PowMod(U256(2), U256::AddMod(a, b, n), p);
    U256 rhs = U256::MulMod(U256::PowMod(U256(2), a, p),
                            U256::PowMod(U256(2), b, p), p);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(U256Test, FermatOnSchnorrPrime) {
  // 2^255-19 is prime: a^(p-1) == 1 (mod p) for a not divisible by p.
  const U256& p = SchnorrGroup::P();
  const U256& n = SchnorrGroup::N();  // p - 1
  Rng rng(37);
  for (int i = 0; i < 5; ++i) {
    U256 a = U256::Mod(RandomU256(&rng), p);
    if (a.IsZero()) a = U256(2);
    EXPECT_EQ(U256::PowMod(a, n, p), U256(1));
  }
}

TEST(U256Test, InvModPrime) {
  const U256& p = SchnorrGroup::P();
  Rng rng(41);
  for (int i = 0; i < 10; ++i) {
    U256 a = U256::Mod(RandomU256(&rng), p);
    if (a.IsZero()) a = U256(3);
    U256 inv = U256::InvMod(a, p);
    EXPECT_EQ(U256::MulMod(a, inv, p), U256(1));
  }
}

TEST(U256Test, InvModNonInvertible) {
  // gcd(6, 9) = 3, not invertible.
  EXPECT_TRUE(U256::InvMod(U256(6), U256(9)).IsZero());
}

TEST(U256Test, U512MulMatchesInt128) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t a = rng.Next64();
    uint64_t b = rng.Next64();
    U512 prod = U512::Mul(U256(a), U256(b));
    __uint128_t expect = static_cast<__uint128_t>(a) * b;
    EXPECT_EQ(prod.limbs[0], static_cast<uint64_t>(expect));
    EXPECT_EQ(prod.limbs[1], static_cast<uint64_t>(expect >> 64));
    for (int j = 2; j < 8; ++j) EXPECT_EQ(prod.limbs[j], 0u);
  }
}

TEST(U256Test, U512ModReconstruction) {
  // For a,b full width: (a*b) mod m computed two ways must agree:
  // direct U512 path vs iterated AddMod over the binary expansion of b.
  Rng rng(47);
  for (int i = 0; i < 10; ++i) {
    U256 a = RandomU256(&rng);
    U256 b = U256(rng.Below(1 << 20));  // keep the slow path cheap
    U256 m = RandomU256(&rng);
    if (m.IsZero()) m = U256(101);

    U256 fast = U256::MulMod(a, b, m);

    U256 slow;
    U256 addend = U256::Mod(a, m);
    uint64_t bits = b.Low64();
    while (bits > 0) {
      if (bits & 1) slow = U256::AddMod(slow, addend, m);
      addend = U256::AddMod(addend, addend, m);
      bits >>= 1;
    }
    EXPECT_EQ(fast, slow);
  }
}

}  // namespace
}  // namespace xdeal
