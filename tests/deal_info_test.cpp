// DealInfo: deadline arithmetic (§5), canonical serialization, vote-message
// domain separation.

#include <gtest/gtest.h>

#include "contracts/deal_info.h"

namespace xdeal {
namespace {

TEST(DealInfoTest, DeadlinesScaleWithPathLength) {
  DealInfo info;
  info.deal_id = MakeDealId("d", 1);
  info.plist = {PartyId{0}, PartyId{1}, PartyId{2}, PartyId{3}};
  info.t0 = 1000;
  info.delta = 50;

  EXPECT_EQ(info.VoteDeadline(1), 1050u);  // direct vote: t0 + Δ
  EXPECT_EQ(info.VoteDeadline(2), 1100u);  // one forward: t0 + 2Δ
  EXPECT_EQ(info.VoteDeadline(4), 1200u);
  // Refund wall equals the longest possible path deadline: t0 + N·Δ.
  EXPECT_EQ(info.RefundTime(), 1200u);
  EXPECT_EQ(info.RefundTime(), info.VoteDeadline(info.plist.size()));
}

TEST(DealInfoTest, HasPartyAndCount) {
  DealInfo info;
  info.plist = {PartyId{3}, PartyId{7}};
  EXPECT_TRUE(info.HasParty(PartyId{3}));
  EXPECT_FALSE(info.HasParty(PartyId{4}));
  EXPECT_EQ(info.NumParties(), 2u);
}

TEST(DealInfoTest, SerializationIsCanonicalAndComplete) {
  DealInfo a;
  a.deal_id = MakeDealId("x", 9);
  a.plist = {PartyId{1}, PartyId{2}};
  a.t0 = 500;
  a.delta = 60;
  DealInfo b = a;
  EXPECT_TRUE(a == b);

  // Every field participates in equality.
  DealInfo diff = a;
  diff.delta = 61;
  EXPECT_FALSE(a == diff);
  diff = a;
  diff.t0 = 501;
  EXPECT_FALSE(a == diff);
  diff = a;
  diff.plist.push_back(PartyId{3});
  EXPECT_FALSE(a == diff);
  diff = a;
  diff.deal_id = MakeDealId("y", 9);
  EXPECT_FALSE(a == diff);
}

TEST(DealInfoTest, DealIdsAreDistinct) {
  EXPECT_NE(MakeDealId("a", 1), MakeDealId("a", 2));
  EXPECT_NE(MakeDealId("a", 1), MakeDealId("b", 1));
  EXPECT_EQ(MakeDealId("a", 1), MakeDealId("a", 1));
}

TEST(DealInfoTest, VoteMessagesAreDomainSeparated) {
  DealId d1 = MakeDealId("d", 1);
  DealId d2 = MakeDealId("d", 2);
  // Distinct per deal, voter, and depth — replay across any dimension fails.
  EXPECT_NE(TimelockVoteMessage(d1, PartyId{0}, 0),
            TimelockVoteMessage(d2, PartyId{0}, 0));
  EXPECT_NE(TimelockVoteMessage(d1, PartyId{0}, 0),
            TimelockVoteMessage(d1, PartyId{1}, 0));
  EXPECT_NE(TimelockVoteMessage(d1, PartyId{0}, 0),
            TimelockVoteMessage(d1, PartyId{0}, 1));
  EXPECT_EQ(TimelockVoteMessage(d1, PartyId{0}, 0),
            TimelockVoteMessage(d1, PartyId{0}, 0));
}

}  // namespace
}  // namespace xdeal
