// DealSpec: structural validation, well-formedness (strong connectivity,
// §5.1), outcome replay, expectations, and the random deal generator.

#include <gtest/gtest.h>

#include "baseline/htlc_swap.h"
#include "core/deal_gen.h"
#include "core/deal_spec.h"
#include "tests/scenario_util.h"

namespace xdeal {
namespace {

PartyId P(uint32_t v) { return PartyId{v}; }

DealSpec TwoPartySwapSpec() {
  DealSpec spec;
  spec.deal_id = MakeDealId("swap", 1);
  spec.parties = {P(0), P(1)};
  spec.assets = {
      AssetRef{ChainId{0}, ContractId{0}, AssetKind::kFungible, "x"},
      AssetRef{ChainId{1}, ContractId{0}, AssetKind::kFungible, "y"},
  };
  spec.escrows = {{0, P(0), 10}, {1, P(1), 20}};
  spec.transfers = {{0, P(0), P(1), 10}, {1, P(1), P(0), 20}};
  return spec;
}

TEST(DealSpecTest, ValidSwapSpec) {
  DealSpec spec = TwoPartySwapSpec();
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_TRUE(spec.IsWellFormed());
}

TEST(DealSpecTest, RejectsEmptyAndDuplicates) {
  DealSpec empty;
  EXPECT_FALSE(empty.Validate().ok());

  DealSpec dup = TwoPartySwapSpec();
  dup.parties = {P(0), P(0)};
  EXPECT_FALSE(dup.Validate().ok());
}

TEST(DealSpecTest, RejectsOutOfRangeAndForeignParties) {
  DealSpec spec = TwoPartySwapSpec();
  spec.escrows.push_back({7, P(0), 5});  // asset 7 does not exist
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwoPartySwapSpec();
  spec.transfers.push_back({0, P(9), P(0), 1});  // P(9) not a party
  EXPECT_FALSE(spec.Validate().ok());

  spec = TwoPartySwapSpec();
  spec.transfers.push_back({0, P(0), P(0), 1});  // self transfer
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(DealSpecTest, RejectsInfeasibleTransferSequences) {
  // Transfer more than escrowed.
  DealSpec spec = TwoPartySwapSpec();
  spec.transfers[0].value = 11;
  EXPECT_FALSE(spec.Validate().ok());

  // Transfer by a party that holds nothing tentatively.
  spec = TwoPartySwapSpec();
  spec.transfers[0].from = P(1);
  spec.transfers[0].to = P(0);
  EXPECT_FALSE(spec.Validate().ok());

  // Double spend of an NFT.
  DealSpec nft;
  nft.deal_id = MakeDealId("nft", 2);
  nft.parties = {P(0), P(1), P(2)};
  nft.assets = {AssetRef{ChainId{0}, ContractId{0}, AssetKind::kNft, "t"}};
  nft.escrows = {{0, P(0), 42}};
  nft.transfers = {{0, P(0), P(1), 42}, {0, P(0), P(2), 42}};
  EXPECT_FALSE(nft.Validate().ok());

  // Same ticket escrowed twice.
  nft.transfers = {{0, P(0), P(1), 42}};
  nft.escrows = {{0, P(0), 42}, {0, P(1), 42}};
  EXPECT_FALSE(nft.Validate().ok());
}

TEST(DealSpecTest, WellFormednessRequiresStrongConnectivity) {
  // One-way payment: P0 -> P1 only. P1 is a free rider.
  DealSpec spec;
  spec.deal_id = MakeDealId("oneway", 3);
  spec.parties = {P(0), P(1)};
  spec.assets = {
      AssetRef{ChainId{0}, ContractId{0}, AssetKind::kFungible, "x"}};
  spec.escrows = {{0, P(0), 10}};
  spec.transfers = {{0, P(0), P(1), 10}};
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_FALSE(spec.IsWellFormed());

  // A party disconnected from all transfers also breaks well-formedness.
  DealSpec extra = TwoPartySwapSpec();
  extra.parties.push_back(P(2));
  EXPECT_TRUE(extra.Validate().ok());
  EXPECT_FALSE(extra.IsWellFormed());
}

TEST(DealSpecTest, BrokerDealIsWellFormedButNotSwap) {
  BrokerScenario s = MakeBrokerScenario(5);
  EXPECT_TRUE(s.spec.Validate().ok());
  EXPECT_TRUE(s.spec.IsWellFormed());
  // Alice passes on assets she never escrowed: not expressible as a swap.
  EXPECT_FALSE(IsSwapExpressible(s.spec));
  EXPECT_FALSE(ToSwapSpec(s.spec).ok());
}

TEST(DealSpecTest, SwapSpecIsSwapExpressible) {
  DealSpec spec = TwoPartySwapSpec();
  EXPECT_TRUE(IsSwapExpressible(spec));
  auto swap = ToSwapSpec(spec);
  ASSERT_TRUE(swap.ok());
  EXPECT_EQ(swap.value().parties.size(), 2u);
  EXPECT_EQ(swap.value().legs.size(), 2u);
}

TEST(DealSpecTest, ExpectedOutcomesReplay) {
  BrokerScenario s = MakeBrokerScenario(6);
  auto outcomes = s.spec.ExpectedOutcomes();
  ASSERT_EQ(outcomes.size(), 2u);

  // Tickets end with Carol.
  EXPECT_EQ(outcomes[s.tickets_asset].nft_commit.at(s.ticket1), s.carol);
  EXPECT_EQ(outcomes[s.tickets_asset].nft_commit.at(s.ticket2), s.carol);
  EXPECT_EQ(outcomes[s.tickets_asset].nft_deposited.at(s.ticket1), s.bob);

  // Coins: Bob 100, Alice 1, Carol 0 (deposited 101).
  EXPECT_EQ(outcomes[s.coins_asset].fungible_commit.at(s.bob), 100u);
  EXPECT_EQ(outcomes[s.coins_asset].fungible_commit.at(s.alice), 1u);
  EXPECT_EQ(outcomes[s.coins_asset].fungible_deposited.at(s.carol), 101u);
}

TEST(DealSpecTest, ExpectationsPerParty) {
  BrokerScenario s = MakeBrokerScenario(7);
  auto carol_expect = s.spec.ExpectationsOf(s.carol);
  EXPECT_EQ(carol_expect[s.tickets_asset].tickets.size(), 2u);
  EXPECT_EQ(carol_expect[s.coins_asset].fungible_amount, 0u);

  auto bob_expect = s.spec.ExpectationsOf(s.bob);
  EXPECT_EQ(bob_expect[s.coins_asset].fungible_amount, 100u);
  EXPECT_TRUE(bob_expect[s.tickets_asset].tickets.empty());
}

TEST(DealSpecTest, IncomingOutgoingAssets) {
  BrokerScenario s = MakeBrokerScenario(8);
  // Alice receives tickets and coins; sends tickets and coins.
  EXPECT_EQ(s.spec.IncomingAssetsOf(s.alice).size(), 2u);
  EXPECT_EQ(s.spec.OutgoingAssetsOf(s.alice).size(), 2u);
  // Bob receives coins only; outgoing = tickets (escrow + transfer).
  EXPECT_EQ(s.spec.IncomingAssetsOf(s.bob),
            (std::set<uint32_t>{s.coins_asset}));
  EXPECT_TRUE(s.spec.OutgoingAssetsOf(s.bob).count(s.tickets_asset) > 0);
  EXPECT_TRUE(s.spec.Deposits(s.bob, s.tickets_asset));
  EXPECT_FALSE(s.spec.Deposits(s.alice, s.tickets_asset));
}

TEST(DealSpecTest, ArcsDeduplicated) {
  BrokerScenario s = MakeBrokerScenario(9);
  // bob->alice (x2 tickets), alice->carol (x2), carol->alice, alice->bob:
  // 4 distinct arcs.
  EXPECT_EQ(s.spec.Arcs().size(), 4u);
}

// --- generator sweeps ---

struct GenCase {
  size_t n, m, t, chains;
};

class DealGenSweep : public ::testing::TestWithParam<GenCase> {};

TEST_P(DealGenSweep, GeneratedDealsAreValidAndWellFormed) {
  GenCase gc = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    EnvConfig config;
    config.seed = seed;
    DealEnv env(std::move(config));
    GenParams params;
    params.n_parties = gc.n;
    params.m_assets = gc.m;
    params.t_transfers = gc.t;
    params.num_chains = gc.chains;
    params.seed = seed;
    DealSpec spec = GenerateRandomDeal(&env, params);

    EXPECT_TRUE(spec.Validate().ok());
    EXPECT_TRUE(spec.IsWellFormed());
    EXPECT_EQ(spec.NumParties(), gc.n);
    EXPECT_EQ(spec.NumAssets(), gc.m);
    EXPECT_GE(spec.NumTransfers(), std::max(gc.t, gc.n + gc.m - 1));

    // Every party appears in the digraph (no free riders).
    std::set<uint32_t> seen;
    for (const auto& [from, to] : spec.Arcs()) {
      seen.insert(from.v);
      seen.insert(to.v);
    }
    EXPECT_EQ(seen.size(), gc.n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DealGenSweep,
    ::testing::Values(GenCase{2, 1, 2, 1}, GenCase{3, 2, 5, 2},
                      GenCase{4, 4, 8, 3}, GenCase{6, 3, 10, 2},
                      GenCase{8, 8, 20, 4}, GenCase{12, 2, 14, 2}));

TEST(DealGenTest, NftAssetsIncluded) {
  EnvConfig config;
  config.seed = 4;
  DealEnv env(std::move(config));
  GenParams params;
  params.n_parties = 4;
  params.m_assets = 6;
  params.t_transfers = 12;
  params.nft_every = 2;
  params.seed = 4;
  DealSpec spec = GenerateRandomDeal(&env, params);
  EXPECT_TRUE(spec.Validate().ok());
  size_t nft_count = 0;
  for (const AssetRef& a : spec.assets) {
    if (a.kind == AssetKind::kNft) ++nft_count;
  }
  EXPECT_GT(nft_count, 0u);
}

}  // namespace
}  // namespace xdeal
